// What-if explorer: a small CLI over the trained predictor.
//
//   ./build/examples/whatif_cli --primary=71 --with=26,33 [--seed=42]
//       predict the latency of template q71 running with q26 and q33
//       (MPL = 1 + number of partners), and verify with a steady-state
//       simulation (--no-verify to skip).
//
//   ./build/examples/whatif_cli --list
//       show the workload templates and their isolated profiles.

#include <iostream>
#include <sstream>

#include "core/predictor.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/table_printer.h"
#include "workload/sampler.h"
#include "workload/steady_state.h"

using namespace contender;

namespace {

std::vector<int> ParseIdList(const std::string& csv) {
  std::vector<int> ids;
  std::stringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) ids.push_back(std::stoi(item));
  }
  return ids;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  Workload workload = Workload::Paper();
  sim::SimConfig machine;

  WorkloadSampler::Options sampling;
  sampling.seed = flags.Seed();
  WorkloadSampler sampler(&workload, machine, sampling);

  if (flags.GetBool("list", false)) {
    std::cout << "Profiling the workload (isolated runs)...\n\n";
    TablePrinter table({"Template", "Description", "Isolated", "p_t",
                        "Working set"});
    for (int i = 0; i < workload.size(); ++i) {
      auto p = sampler.ProfileTemplate(i, {});
      CONTENDER_CHECK(p.ok()) << p.status();
      table.AddRow({"q" + std::to_string(workload.tmpl(i).id),
                    workload.tmpl(i).description,
                    FormatDouble(p->isolated_latency.value(), 0) + " s",
                    FormatDouble(p->io_fraction.value(), 2),
                    FormatDouble(p->working_set_bytes.value() / 1e6, 0) + " MB"});
    }
    table.Print(std::cout);
    return 0;
  }

  const int primary_id = static_cast<int>(flags.GetInt("primary", 71));
  const std::vector<int> partner_ids =
      ParseIdList(flags.GetString("with", "26,33"));
  const int primary = workload.IndexOfId(primary_id);
  CONTENDER_CHECK(primary >= 0) << "unknown template q" << primary_id;
  std::vector<int> partners;
  for (int id : partner_ids) {
    const int idx = workload.IndexOfId(id);
    CONTENDER_CHECK(idx >= 0) << "unknown template q" << id;
    partners.push_back(idx);
  }
  CONTENDER_CHECK(!partners.empty()) << "--with must name partners";
  CONTENDER_CHECK(partners.size() <= 4) << "MPL 2-5 supported";

  std::cout << "Training Contender (seed " << flags.Seed() << ")...\n";
  auto data = sampler.CollectAll();
  CONTENDER_CHECK(data.ok()) << data.status();
  auto predictor = ContenderPredictor::Train(
      data->profiles, data->scan_times, data->observations,
      ContenderPredictor::Options{});
  CONTENDER_CHECK(predictor.ok()) << predictor.status();

  auto predicted = predictor->PredictKnown(primary, partners);
  CONTENDER_CHECK(predicted.ok()) << predicted.status();
  const TemplateProfile& profile =
      data->profiles[static_cast<size_t>(primary)];

  std::cout << "\nq" << primary_id << " with {";
  for (size_t i = 0; i < partners.size(); ++i) {
    std::cout << (i ? ", q" : "q") << workload.tmpl(partners[i]).id;
  }
  std::cout << "}  (MPL " << partners.size() + 1 << ")\n";
  std::cout << "  isolated latency:  "
            << FormatDouble(profile.isolated_latency.value(), 0) << " s\n";
  std::cout << "  predicted latency: " << FormatDouble(predicted->value(), 0)
            << " s  (slowdown "
            << FormatDouble(*predicted / profile.isolated_latency, 2)
            << "x)\n";

  if (flags.GetBool("verify", true)) {
    std::vector<int> mix = {primary};
    mix.insert(mix.end(), partners.begin(), partners.end());
    SteadyStateOptions ss;
    ss.seed = flags.Seed() + 1;
    auto observed = RunSteadyState(workload, mix, machine, ss);
    CONTENDER_CHECK(observed.ok()) << observed.status();
    const double actual = observed->streams[0].mean_latency;
    std::cout << "  observed latency:  " << FormatDouble(actual, 0)
              << " s  (prediction error "
              << FormatPercent(std::abs(actual - predicted->value()) / actual)
              << ")\n";
  }
  return 0;
}

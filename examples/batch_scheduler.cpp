// Batch scheduling with CQPP (the paper's motivating application, §1):
// given a batch of analytical queries to execute at MPL 2, choose the
// pairing that minimizes predicted total latency, then verify in the
// simulator against a naive FIFO pairing.
//
//   ./build/examples/batch_scheduler [--seed=42] [--batch=12]

#include <algorithm>
#include <iostream>

#include "core/predictor.h"
#include "sim/engine.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/table_printer.h"
#include "workload/sampler.h"

using namespace contender;

namespace {

// Executes the batch as consecutive gangs of two: each planned pair runs
// to completion before the next pair starts. Returns the makespan.
double ExecuteBatch(const Workload& workload, const sim::SimConfig& machine,
                    const std::vector<int>& order, uint64_t seed) {
  Rng rng(seed);
  sim::Engine engine(machine, rng.Next());
  int outstanding = 0;
  size_t next = 0;
  auto launch_pair = [&]() {
    while (outstanding < 2 && next < order.size()) {
      engine.AddProcess(workload.Instantiate(order[next], &rng),
                        engine.now());
      ++next;
      ++outstanding;
    }
  };
  engine.SetCompletionCallback([&](const sim::ProcessResult&) {
    --outstanding;
    if (outstanding == 0) launch_pair();
  });
  launch_pair();
  CONTENDER_CHECK(engine.Run().ok());
  return engine.now().value();
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  Workload workload = Workload::Paper();
  sim::SimConfig machine;

  WorkloadSampler::Options sampling;
  sampling.seed = flags.Seed();
  WorkloadSampler sampler(&workload, machine, sampling);
  std::cout << "Training Contender...\n";
  auto data = sampler.CollectAll();
  CONTENDER_CHECK(data.ok()) << data.status();
  auto predictor = ContenderPredictor::Train(
      data->profiles, data->scan_times, data->observations,
      ContenderPredictor::Options{});
  CONTENDER_CHECK(predictor.ok()) << predictor.status();

  // The batch, in arrival order: scan-sharing opportunities exist (the
  // three-channel queries 33/56/60/71 share every fact table; 26/20 share
  // catalog_sales; 27/79/61/8 share store_sales; 62/90 share web_sales)
  // but arrivals interleave them badly.
  std::vector<int> batch;
  for (int id : {33, 26, 27, 62, 56, 20, 79, 90, 71, 61, 8, 60}) {
    batch.push_back(workload.IndexOfId(id));
  }

  // Greedy pairing: repeatedly pick the pair with the lowest predicted
  // combined latency (queries that share scans pair up).
  std::vector<int> remaining = batch;
  std::vector<int> planned;
  while (remaining.size() >= 2) {
    double best = 1e300;
    size_t bi = 0, bj = 1;
    for (size_t i = 0; i < remaining.size(); ++i) {
      for (size_t j = i + 1; j < remaining.size(); ++j) {
        auto a = predictor->PredictKnown(remaining[i], {remaining[j]});
        auto b = predictor->PredictKnown(remaining[j], {remaining[i]});
        if (!a.ok() || !b.ok()) continue;
        const double cost = (*a + *b).value();
        if (cost < best) {
          best = cost;
          bi = i;
          bj = j;
        }
      }
    }
    planned.push_back(remaining[bi]);
    planned.push_back(remaining[bj]);
    remaining.erase(remaining.begin() + static_cast<long>(bj));
    remaining.erase(remaining.begin() + static_cast<long>(bi));
  }
  planned.insert(planned.end(), remaining.begin(), remaining.end());

  const double fifo = ExecuteBatch(workload, machine, batch, flags.Seed());
  const double smart =
      ExecuteBatch(workload, machine, planned, flags.Seed());

  TablePrinter table({"Schedule", "Batch makespan", "Speedup"});
  table.AddRow({"FIFO (arrival order)", FormatDouble(fifo, 0) + " s", "1.00x"});
  table.AddRow({"Contender-aware pairing", FormatDouble(smart, 0) + " s",
                FormatDouble(fifo / smart, 2) + "x"});
  table.Print(std::cout);
  std::cout << "\nThe contention-aware schedule pairs queries that share "
               "fact-table scans and separates mutually antagonistic "
               "ones.\n";
  return 0;
}

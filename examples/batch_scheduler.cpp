// Admission control with CQPP (the paper's motivating application, §1):
// train Contender, generate one deterministic arrival stream, and run it
// through the sched/ admission controller under FIFO and under the greedy
// contention-aware policy. Everything interesting — queueing, policy
// scoring, prediction caching, execution — lives in src/sched/; this file
// only wires a workload to it and prints the comparison.
//
//   ./build/examples/batch_scheduler [--seed=42] [--requests=24] [--mpl=3]

#include <iostream>
#include <utility>

#include "core/predictor.h"
#include "sched/metrics.h"
#include "sched/mix_oracle.h"
#include "sched/policy.h"
#include "sched/request.h"
#include "sched/simulator.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/table_printer.h"
#include "workload/sampler.h"

using namespace contender;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  Workload workload = Workload::Paper();
  sim::SimConfig machine;

  WorkloadSampler::Options sampling;
  sampling.seed = flags.Seed();
  WorkloadSampler sampler(&workload, machine, sampling);
  std::cout << "Training Contender...\n";
  auto data = sampler.CollectAll();
  CONTENDER_CHECK(data.ok()) << data.status();
  auto predictor = ContenderPredictor::Train(
      data->profiles, data->scan_times, data->observations,
      ContenderPredictor::Options{});
  CONTENDER_CHECK(predictor.ok()) << predictor.status();

  // One shared arrival stream: both policies face the identical batch.
  std::vector<units::Seconds> reference;
  for (const TemplateProfile& p : data->profiles) {
    reference.push_back(p.isolated_latency);
  }
  sched::ArrivalOptions arrivals;
  arrivals.num_requests = static_cast<int>(flags.GetInt("requests", 24));
  arrivals.mean_interarrival = units::Seconds(30.0);
  arrivals.seed = flags.Seed();
  auto generated = sched::GenerateArrivals(reference, arrivals);
  CONTENDER_CHECK(generated.ok()) << generated.status();
  const std::vector<sched::Request> requests = std::move(*generated);

  sched::ScheduleSimulator simulator(&workload, machine);
  sched::MixOracle oracle(&*predictor);
  sched::ScheduleOptions options;
  options.target_mpl = static_cast<int>(flags.GetInt("mpl", 3));
  options.seed = flags.Seed();

  TablePrinter table({"Policy", "Makespan", "Mean wait", "p95 resp",
                      "Speedup"});
  units::Seconds fifo_makespan;
  for (sched::PolicyKind kind : {sched::PolicyKind::kFifo,
                                 sched::PolicyKind::kGreedyContention}) {
    auto policy = sched::MakePolicy(kind);
    auto result = simulator.Run(requests, policy.get(), &oracle, options);
    CONTENDER_CHECK(result.ok()) << result.status();
    const sched::ScheduleMetrics m = ComputeScheduleMetrics(*result);
    if (kind == sched::PolicyKind::kFifo) fifo_makespan = m.makespan;
    table.AddRow({policy->name(),
                  FormatDouble(m.makespan.value(), 0) + " s",
                  FormatDouble(m.mean_queue_wait.value(), 0) + " s",
                  FormatDouble(m.p95_response.value(), 0) + " s",
                  FormatDouble(fifo_makespan.value() / m.makespan.value(),
                               2) + "x"});
  }
  table.Print(std::cout);
  std::cout << "\nThe contention-aware policy admits queries that share "
               "scans with the running mix and defers mutually "
               "antagonistic ones.\n";
  return 0;
}

// Online prediction serving (the serve/ subsystem end-to-end): train
// Contender, stand up the PredictionService on snapshot v1, stream drifted
// latency observations into the ObservationLog, and let one deterministic
// RefitController::Step() refit the touched templates and hot-swap
// snapshot v2 — while a handle to v1 keeps answering with the old models,
// demonstrating that swaps never invalidate in-flight readers.
//
//   ./build/examples/serve_demo [--seed=42] [--template=3] [--drift=1.3]

#include <iostream>
#include <memory>
#include <utility>
#include <vector>

#include "core/predictor.h"
#include "serve/refit_controller.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/table_printer.h"
#include "workload/sampler.h"

using namespace contender;
using namespace contender::serve;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  Workload workload = Workload::Paper();
  sim::SimConfig machine;

  WorkloadSampler::Options sampling;
  sampling.seed = flags.Seed();
  WorkloadSampler sampler(&workload, machine, sampling);
  std::cout << "Training Contender...\n";
  auto data = sampler.CollectAll();
  CONTENDER_CHECK(data.ok()) << data.status();
  auto predictor = ContenderPredictor::Train(
      data->profiles, data->scan_times, data->observations, {});
  CONTENDER_CHECK(predictor.ok()) << predictor.status();

  // Serve snapshot v1 and wire the streaming-refit loop around it.
  PredictionService service(ModelSnapshot::Create(*predictor, 1));
  ObservationLog log(&service);
  RefitOptions refit_options;
  refit_options.min_new_observations = 16;
  RefitController controller(&service, &log, data->observations,
                             refit_options);

  const int target = static_cast<int>(flags.GetInt("template", 3));
  const double drift = flags.GetDouble("drift", 1.3);
  const auto v1 = service.snapshot();
  std::cout << "Serving snapshot v" << v1->version() << " ("
            << v1->num_templates() << " templates)\n\n";

  // The production moment the paper's §6 anticipates: template `target`
  // starts running `drift`x slower than the models were trained for.
  // Stream its observed in-mix latencies into the log.
  const TemplateProfile& profile =
      data->profiles[static_cast<size_t>(target)];
  size_t streamed = 0;
  for (const MixObservation& o : data->observations) {
    if (o.primary_index != target) continue;
    MixObservation observed = o;
    observed.latency = observed.latency * drift;
    // Keep the drifted latency inside the §6.1 continuum (105% of the
    // spoiler latency); anything beyond it is excluded from QS training
    // as an outlier and would teach the refit nothing.
    auto lmax = profile.spoiler_latency.find(observed.mpl);
    if (lmax != profile.spoiler_latency.end() &&
        observed.latency > lmax->second * 1.04) {
      observed.latency = lmax->second * 1.04;
    }
    auto result = log.Ingest(observed);
    CONTENDER_CHECK(result.ok()) << result.status();
    if (++streamed == refit_options.min_new_observations) break;
  }
  std::cout << "Ingested " << streamed << " drifted observations of "
            << "template " << target << " (latency x"
            << FormatDouble(drift, 2) << "), mean |continuum residual| "
            << FormatDouble(log.pending_mean_abs_residual(), 3) << "\n";

  // One deterministic control step: drain, refit the touched templates on
  // a copy, hot-swap. Serving never pauses.
  auto step = controller.Step();
  CONTENDER_CHECK(step.ok()) << step.status();
  CONTENDER_CHECK(step->refit);
  std::cout << "Refit step: trigger="
            << (step->trigger == RefitStep::Trigger::kCount ? "count"
                                                            : "drift")
            << ", consumed " << step->observations_consumed
            << " observations, published snapshot v"
            << step->published_version << "\n\n";

  const auto v2 = service.snapshot();
  TablePrinter table({"Mix", "v1 predicts", "v2 predicts"});
  const int n = v2->num_templates();
  const std::vector<std::vector<int>> mixes = {
      {}, {(target + 1) % n}, {(target + 2) % n, (target + 5) % n}};
  for (const std::vector<int>& mix : mixes) {
    std::string label = "T" + std::to_string(target) + " + {";
    for (size_t i = 0; i < mix.size(); ++i) {
      label += (i ? "," : "") + std::to_string(mix[i]);
    }
    label += "}";
    // The retained v1 handle still answers — hot-swap freed nothing out
    // from under it — while the service routes new traffic to v2.
    auto now_served = service.Predict(target, mix);
    CONTENDER_CHECK(now_served.ok()) << now_served.status();
    CONTENDER_CHECK(*now_served == v2->PredictInMix(target, mix));
    table.AddRow({label,
                  FormatDouble(v1->PredictInMix(target, mix).value(), 1) +
                      " s",
                  FormatDouble(now_served->value(), 1) + " s"});
  }
  table.Print(std::cout);

  std::cout << "\nThe service answered " << service.served()
            << " predictions across " << service.publishes()
            << " hot-swap(s); the refit moved template " << target
            << "'s in-mix estimates toward the drifted observations while "
            << "every other template kept its exact models.\n";
  return 0;
}

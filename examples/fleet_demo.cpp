// Cluster-scale fleet demo: a 4-node fleet serving a multi-tenant
// open-loop population under contention-aware routing, with one node
// draining mid-run (its predicted backlog fails over to the survivors)
// and a per-tenant blame ledger at the end — who lost seconds to
// contention, who inflicted them, and what each tenant kept as self
// blame. Everything interesting lives in src/fleet/; this file wires a
// workload to it and prints the story.
//
//   ./build/examples/fleet_demo [--seed=42] [--requests=64]
//       [--tenants=4] [--skew=1.0] [--mpl=3] [--mean_interarrival=20]
//       [--scenario=poisson-steady]
//
// --scenario selects any registered workload scenario (src/scenario/)
// to drive the population; --scenario=list prints the registry.

#include <cmath>
#include <cstdlib>
#include <iostream>
#include <string>

#include "core/predictor.h"
#include "fleet/fleet_simulator.h"
#include "fleet/metrics.h"
#include "fleet/population.h"
#include "fleet/router.h"
#include "scenario/scenario.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/table_printer.h"
#include "workload/sampler.h"

using namespace contender;
using namespace contender::fleet;

namespace {

/// Resolves --scenario, printing the registry and exiting on "list" or an
/// unknown name so the flag is self-documenting.
const scenario::Scenario& ResolveScenario(const std::string& name) {
  const scenario::Scenario* selected = scenario::FindScenario(name);
  if (selected != nullptr) return *selected;
  std::ostream& out = (name == "list") ? std::cout : std::cerr;
  if (name != "list") {
    out << "Unknown scenario '" << name << "'.\n";
  }
  out << "Registered scenarios:\n";
  for (const scenario::Scenario* s : scenario::AllScenarios()) {
    out << "  " << s->name() << " — " << s->description() << "\n";
  }
  std::exit(name == "list" ? 0 : 1);
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  const scenario::Scenario& scenario_choice =
      ResolveScenario(flags.GetString("scenario", "poisson-steady"));
  Workload workload = Workload::Paper();
  sim::SimConfig machine;

  WorkloadSampler::Options sampling;
  sampling.seed = flags.Seed();
  WorkloadSampler sampler(&workload, machine, sampling);
  std::cout << "Training Contender...\n";
  auto data = sampler.CollectAll();
  CONTENDER_CHECK(data.ok()) << data.status();
  auto predictor = ContenderPredictor::Train(
      data->profiles, data->scan_times, data->observations,
      ContenderPredictor::Options{});
  CONTENDER_CHECK(predictor.ok()) << predictor.status();

  std::vector<units::Seconds> reference;
  for (const TemplateProfile& p : data->profiles) {
    reference.push_back(p.isolated_latency);
  }

  PopulationOptions population_options;
  population_options.num_tenants =
      static_cast<int>(flags.GetInt("tenants", 4));
  population_options.num_requests =
      static_cast<int>(flags.GetInt("requests", 64));
  population_options.mean_interarrival =
      units::Seconds(flags.GetDouble("mean_interarrival", 20.0));
  population_options.skew = flags.GetDouble("skew", 1.0);
  population_options.templates_per_tenant = 10;
  population_options.deadline_probability = 0.6;
  population_options.seed = flags.Seed();
  auto population =
      GeneratePopulation(reference, population_options, scenario_choice);
  CONTENDER_CHECK(population.ok()) << population.status();
  std::cout << "Scenario: " << scenario_choice.name() << " — "
            << scenario_choice.description() << "\n";

  // Drain node 1 when the stream is halfway in: its predicted backlog
  // fails over through the live policy and new work avoids it.
  const sched::Request& midpoint =
      population->requests[population->requests.size() / 2];
  FleetOptions options;
  options.num_nodes = 4;
  options.target_mpl = static_cast<int>(flags.GetInt("mpl", 3));
  options.policy = RoutePolicy::kContentionAware;
  options.seed = flags.Seed();
  options.threads = 0;  // all cores; results are thread-count invariant
  options.drains.push_back(ScheduledDrain{1, midpoint.arrival_time});

  FleetSimulator simulator(&workload, machine, &*predictor);
  auto result = simulator.Run(*population, options);
  CONTENDER_CHECK(result.ok()) << result.status();
  const FleetMetrics m = ComputeFleetMetrics(*result);

  std::cout << "\nFleet of " << options.num_nodes << " nodes, "
            << RoutePolicyName(options.policy) << " routing; node 1 "
            << "drains at t=" << FormatDouble(midpoint.arrival_time.value(), 0)
            << " s (" << m.failovers << " failover"
            << (m.failovers == 1 ? "" : "s") << ").\n\n";

  TablePrinter nodes({"Node", "Requests", "Makespan", "State"});
  for (const FleetNodeSummary& node : result->nodes) {
    nodes.AddRow({std::to_string(node.node_id),
                  std::to_string(node.requests),
                  FormatDouble(node.makespan.value(), 0) + " s",
                  node.node_id == 1 ? "drained" : "healthy"});
  }
  nodes.Print(std::cout);

  std::cout << "\nFleet: makespan "
            << FormatDouble(m.makespan.value(), 0) << " s, p95 response "
            << FormatDouble(m.p95_response.value(), 0) << " s, SLA miss "
            << FormatPercent(m.sla_miss_rate, 0) << ", excess under "
            << "contention " << FormatDouble(m.total_excess_s, 0)
            << " s.\n\nPer-tenant blame ledger (seconds of attributed "
            << "slowdown):\n";

  TablePrinter blame({"Tenant", "Requests", "p95 resp", "SLA miss",
                      "Received", "Inflicted", "Self"});
  for (const auto& [tenant, totals] : m.blame_by_tenant) {
    const auto stats = m.per_tenant.find(tenant);
    const size_t requests =
        stats == m.per_tenant.end() ? 0 : stats->second.requests;
    blame.AddRow(
        {std::to_string(tenant), std::to_string(requests),
         stats == m.per_tenant.end()
             ? "-"
             : FormatDouble(stats->second.response.p95(), 0) + " s",
         stats == m.per_tenant.end()
             ? "-"
             : FormatPercent(stats->second.sla_miss_rate(), 0),
         FormatDouble(totals.received_s, 0) + " s",
         FormatDouble(totals.inflicted_s, 0) + " s",
         // The exact-conservation split can leave a ±1e-12 s residue.
         FormatDouble(std::abs(totals.self_s) < 1e-6 ? 0.0 : totals.self_s,
                      0) + " s"});
  }
  blame.Print(std::cout);

  std::cout << "\nReceived + self always reproduce each query's measured "
               "excess exactly; the ledger is conservation-checked in "
               "tests/fleet/.\n";
  return 0;
}

// Capacity planning / cloud provisioning with CQPP (paper §1): pick the
// highest multiprogramming level at which every query of a recurring
// workload mix is predicted to meet its latency SLO, then validate the
// choice in the simulator.
//
//   ./build/examples/capacity_planner [--seed=42] [--slo_factor=3.5]

#include <iostream>

#include "core/predictor.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/table_printer.h"
#include "workload/sampler.h"
#include "workload/steady_state.h"

using namespace contender;

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  Workload workload = Workload::Paper();
  sim::SimConfig machine;

  // SLO: each query must finish within slo_factor x isolated latency.
  const double slo_factor = flags.GetDouble("slo_factor", 3.5);

  WorkloadSampler::Options sampling;
  sampling.seed = flags.Seed();
  WorkloadSampler sampler(&workload, machine, sampling);
  std::cout << "Training Contender...\n";
  auto data = sampler.CollectAll();
  CONTENDER_CHECK(data.ok()) << data.status();
  auto predictor = ContenderPredictor::Train(
      data->profiles, data->scan_times, data->observations,
      ContenderPredictor::Options{});
  CONTENDER_CHECK(predictor.ok()) << predictor.status();

  // The recurring workload: analysts run these templates continuously.
  std::vector<int> pool = {workload.IndexOfId(15), workload.IndexOfId(26),
                           workload.IndexOfId(27), workload.IndexOfId(62),
                           workload.IndexOfId(71)};

  std::cout << "\nSLO: every query within " << slo_factor
            << "x of its isolated latency.\n\n";
  TablePrinter table({"MPL", "Predicted worst SLO ratio", "Meets SLO?",
                      "Observed worst ratio"});
  int chosen = 1;  // MPL 1 (isolation) always meets the SLO
  for (int mpl = 2; mpl <= 5; ++mpl) {
    // The mix at this MPL: the first `mpl` pool members.
    std::vector<int> mix(pool.begin(), pool.begin() + mpl);
    double worst_predicted = 0.0;
    for (size_t s = 0; s < mix.size(); ++s) {
      std::vector<int> partners;
      for (size_t o = 0; o < mix.size(); ++o) {
        if (o != s) partners.push_back(mix[o]);
      }
      auto pred = predictor->PredictKnown(mix[s], partners);
      CONTENDER_CHECK(pred.ok()) << pred.status();
      const double iso =
          data->profiles[static_cast<size_t>(mix[s])].isolated_latency.value();
      worst_predicted = std::max(worst_predicted, pred->value() / iso);
    }
    const bool ok = worst_predicted <= slo_factor;
    if (ok && chosen == mpl - 1) chosen = mpl;  // stop at the first miss

    // Validate with a steady-state execution.
    SteadyStateOptions ss;
    ss.seed = flags.Seed() + static_cast<uint64_t>(mpl);
    auto observed = RunSteadyState(workload, mix, machine, ss);
    CONTENDER_CHECK(observed.ok());
    double worst_observed = 0.0;
    for (const StreamResult& stream : observed->streams) {
      const double iso =
          data->profiles[static_cast<size_t>(stream.template_index)]
              .isolated_latency.value();
      worst_observed = std::max(worst_observed, stream.mean_latency / iso);
    }
    table.AddRow({std::to_string(mpl), FormatDouble(worst_predicted, 2) + "x",
                  ok ? "yes" : "no",
                  FormatDouble(worst_observed, 2) + "x"});
  }
  table.Print(std::cout);
  std::cout << "\nProvisioning decision: run this workload at MPL " << chosen
            << " (highest level predicted to meet the SLO).\n";
  return 0;
}

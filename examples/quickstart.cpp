// Quickstart: train Contender on a known analytical workload and predict
// concurrent query latency — for known templates and for a new, never
// sampled template.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart [--seed=42]

#include <iostream>

#include "core/predictor.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/table_printer.h"
#include "workload/sampler.h"
#include "workload/steady_state.h"

using namespace contender;

int main(int argc, char** argv) {
  Flags flags(argc, argv);

  // 1. The workload: a TPC-DS-like catalog with 25 query templates, and
  //    the simulated 8-core / 8 GB / single-disk machine.
  Workload workload = Workload::Paper();
  sim::SimConfig machine;

  // 2. Training: isolated profiles, spoiler latencies, fact-scan times,
  //    and steady-state mix samples (all pairs at MPL 2, LHS above).
  std::cout << "Collecting training data (simulated sampling)...\n";
  WorkloadSampler::Options sampling;
  sampling.seed = flags.Seed();
  WorkloadSampler sampler(&workload, machine, sampling);
  auto data = sampler.CollectAll();
  CONTENDER_CHECK(data.ok()) << data.status();
  std::cout << "  " << data->profiles.size() << " templates profiled, "
            << data->observations.size() << " mix observations, "
            << FormatDouble(data->sampling_seconds.value() / 3600.0, 1)
            << " simulated hours of sampling\n\n";

  // 3. Train the predictor.
  auto predictor = ContenderPredictor::Train(
      data->profiles, data->scan_times, data->observations,
      ContenderPredictor::Options{});
  CONTENDER_CHECK(predictor.ok()) << predictor.status();

  // 4. Predict latency for a known template in a few mixes and compare
  //    against fresh steady-state executions.
  const int q71 = workload.IndexOfId(71);  // I/O-bound primary
  TablePrinter table({"Mix (primary q71 with ...)", "Predicted", "Observed",
                      "Error"});
  Rng rng(flags.Seed() + 1);
  for (std::vector<int> partners :
       {std::vector<int>{workload.IndexOfId(26)},
        std::vector<int>{workload.IndexOfId(33)},  // shares all fact scans
        std::vector<int>{workload.IndexOfId(17), workload.IndexOfId(62)}}) {
    auto predicted = predictor->PredictKnown(q71, partners);
    CONTENDER_CHECK(predicted.ok()) << predicted.status();

    std::vector<int> mix = {q71};
    std::string label = "q71 + {";
    for (size_t i = 0; i < partners.size(); ++i) {
      mix.push_back(partners[i]);
      label += (i ? ", q" : "q") +
               std::to_string(workload.tmpl(partners[i]).id);
    }
    label += "}";
    SteadyStateOptions ss;
    ss.seed = rng.Next();
    auto observed = RunSteadyState(workload, mix, machine, ss);
    CONTENDER_CHECK(observed.ok()) << observed.status();
    const double actual = observed->streams[0].mean_latency;
    table.AddRow({label, FormatDouble(predicted->value(), 0) + " s",
                  FormatDouble(actual, 0) + " s",
                  FormatPercent(std::abs(actual - predicted->value()) / actual)});
  }
  table.Print(std::cout);

  // 5. Ad-hoc template: pretend q46 was never part of the workload.
  //    Contender needs only its isolated run (constant-time sampling) —
  //    the spoiler latency comes from the KNN model.
  std::cout << "\nAd-hoc template demo (q46 as a never-sampled query):\n";
  const TemplateProfile& q46 = data->profiles[static_cast<size_t>(
      workload.IndexOfId(46))];
  TemplateProfile adhoc = q46;
  adhoc.spoiler_latency.clear();  // only the isolated run is available
  auto adhoc_pred = predictor->PredictNew(
      adhoc, {workload.IndexOfId(27)}, SpoilerSource::kKnnPredicted);
  CONTENDER_CHECK(adhoc_pred.ok()) << adhoc_pred.status();
  std::cout << "  predicted latency of ad-hoc q46 running with q27: "
            << FormatDouble(adhoc_pred->value(), 0) << " s (isolated: "
            << FormatDouble(adhoc.isolated_latency.value(), 0) << " s)\n";
  return 0;
}

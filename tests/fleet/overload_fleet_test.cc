// Fleet-wide overload control: the conservation ledger (admitted + shed
// == offered, fleet-wide and per tenant), ShedReason stamping on every
// drop, criticality exemptions (only hard limits touch critical work),
// metastability recovery under a sustained overload, and bit-exact
// replay at every thread count and under armed door chaos.

#include <gtest/gtest.h>

#include <cstddef>
#include <map>
#include <utility>
#include <vector>

#include "fleet/fleet_simulator.h"
#include "fleet/metrics.h"
#include "fleet/population.h"
#include "overload/shed_reason.h"
#include "test_support.h"
#include "util/failpoint.h"

namespace contender::fleet {
namespace {

using contender::testing::DefaultConfig;
using contender::testing::PaperWorkload;
using contender::testing::SharedPredictor;

Population OverloadPopulation(int num_requests, double interarrival,
                              uint64_t seed = 42) {
  std::vector<units::Seconds> reference;
  for (const TemplateProfile& p : SharedPredictor().profiles()) {
    reference.push_back(p.isolated_latency);
  }
  PopulationOptions options;
  options.num_tenants = 6;  // two tenants per criticality tier
  options.num_requests = num_requests;
  options.mean_interarrival = units::Seconds(interarrival);
  options.skew = 1.0;
  options.templates_per_tenant = 10;
  options.deadline_probability = 0.5;
  options.seed = seed;
  auto population = GeneratePopulation(reference, options);
  CONTENDER_CHECK(population.ok()) << population.status();
  return std::move(*population);
}

/// Full controller: adaptive node limits, node CoDel, and the door's
/// codel/brownout/metastability stack.
FleetOptions FullControlOptions() {
  FleetOptions options;
  options.num_nodes = 2;
  options.target_mpl = 2;
  options.door.enabled = true;
  options.door.codel.target = units::Seconds(20.0);
  options.door.codel.interval = units::Seconds(60.0);
  options.node_overload.adaptive_limit = true;
  options.node_overload.limiter.max_limit = 2;
  options.node_overload.codel_shed = true;
  options.node_overload.codel.target = units::Seconds(40.0);
  options.node_overload.codel.interval = units::Seconds(120.0);
  return options;
}

StatusOr<FleetResult> RunFleet(const Population& population,
                               const FleetOptions& options) {
  FleetSimulator simulator(&PaperWorkload(), DefaultConfig(),
                           &SharedPredictor());
  return simulator.Run(population, options);
}

bool SameFleetResult(const FleetResult& a, const FleetResult& b) {
  if (a.makespan != b.makespan || a.outcomes.size() != b.outcomes.size()) {
    return false;
  }
  for (size_t i = 0; i < a.outcomes.size(); ++i) {
    const FleetQueryOutcome& x = a.outcomes[i];
    const FleetQueryOutcome& y = b.outcomes[i];
    if (x.node != y.node || x.rejected != y.rejected || x.shed != y.shed ||
        x.shed_reason != y.shed_reason || x.completed != y.completed ||
        x.failed_over != y.failed_over || x.admit_time != y.admit_time ||
        x.completion_time != y.completion_time ||
        x.execution_latency != y.execution_latency ||
        x.predicted_latency != y.predicted_latency ||
        x.missed_deadline != y.missed_deadline) {
      return false;
    }
  }
  return true;
}

void ExpectConservation(const FleetMetrics& m) {
  // Fleet-wide: every offered request is accounted for exactly once.
  EXPECT_EQ(m.offered, m.requests);
  EXPECT_EQ(m.offered, m.completed + m.shed_total);
  EXPECT_EQ(m.admitted, m.offered - m.rejected);
  EXPECT_EQ(m.admitted, m.completed + m.node_sheds);
  size_t by_reason = 0;
  for (const auto& [reason, count] : m.shed_by_reason) by_reason += count;
  EXPECT_EQ(by_reason, m.shed_total);

  // Per tenant: offered == completed + every stamped shed.
  std::map<int, size_t> completed_by_tenant;
  for (const auto& [tenant, stats] : m.per_tenant) {
    completed_by_tenant[tenant] = stats.requests;
  }
  size_t offered_sum = 0;
  for (const auto& [tenant, offered] : m.offered_by_tenant) {
    offered_sum += offered;
    size_t tenant_sheds = 0;
    auto it = m.shed_by_tenant.find(tenant);
    if (it != m.shed_by_tenant.end()) {
      for (const auto& [reason, count] : it->second) tenant_sheds += count;
    }
    EXPECT_EQ(offered, completed_by_tenant[tenant] + tenant_sheds)
        << "tenant " << tenant;
  }
  EXPECT_EQ(offered_sum, m.offered);
}

class OverloadFleetTest : public ::testing::Test {
 protected:
  void TearDown() override { FailPointRegistry::Global().DisarmAll(); }
};

TEST_F(OverloadFleetTest, FullControllerConservesAndStampsEveryDrop) {
  // ~10x the fleet's service rate: a sustained overload the controller
  // must shed its way through.
  const Population population = OverloadPopulation(96, 2.0);
  auto result = RunFleet(population, FullControlOptions());
  ASSERT_TRUE(result.ok()) << result.status();
  const FleetMetrics metrics = ComputeFleetMetrics(*result);
  ExpectConservation(metrics);
  EXPECT_GT(metrics.shed_total, 0u) << "10x overload never shed";
  EXPECT_GT(metrics.completed, 0u) << "controller shed everything";

  for (const FleetQueryOutcome& out : result->outcomes) {
    ASSERT_TRUE(out.completed || out.rejected || out.shed);
    if (!out.rejected && !out.shed) continue;
    // Critical work is exempt from every load-shedding signal; only the
    // hard limits may drop it, and no quota/memory limit is set here.
    EXPECT_NE(out.request.criticality, overload::Criticality::kCritical)
        << "request " << out.request.request_id << " shed with reason "
        << overload::ShedReasonName(out.shed_reason);
  }
  // The door's decision count covers every offered request.
  EXPECT_EQ(result->door.decisions, population.requests.size());
  EXPECT_EQ(result->door.admitted + result->door.shed,
            result->door.decisions);
}

TEST_F(OverloadFleetTest, MetastabilityRecoveryEngagesUnderSustainedJam) {
  const Population population = OverloadPopulation(128, 1.0);
  FleetOptions options = FullControlOptions();
  auto result = RunFleet(population, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->door.recovery_entries, 0u)
      << "goodput collapse + growing delay never tripped the detector";
  EXPECT_GT(result->door.recovery_sheds, 0u);
}

TEST_F(OverloadFleetTest, QuotaRejectionsAreStampedQuota) {
  const Population population = OverloadPopulation(64, 6.0);
  FleetOptions options;  // door disabled: quota is the only shed signal
  options.num_nodes = 2;
  options.tenant_quota = 2;
  auto result = RunFleet(population, options);
  ASSERT_TRUE(result.ok()) << result.status();
  const FleetMetrics metrics = ComputeFleetMetrics(*result);
  ExpectConservation(metrics);
  ASSERT_GT(metrics.rejected, 0u);
  EXPECT_EQ(metrics.shed_by_reason.at(overload::ShedReason::kQuota),
            metrics.rejected);
  size_t legacy_sum = 0;
  for (const auto& [tenant, count] : metrics.rejected_by_tenant) {
    legacy_sum += count;
  }
  EXPECT_EQ(legacy_sum, metrics.rejected);
  for (const FleetQueryOutcome& out : result->outcomes) {
    if (out.rejected) {
      EXPECT_EQ(out.shed_reason, overload::ShedReason::kQuota);
    }
  }
}

TEST_F(OverloadFleetTest, MemoryBudgetShedsWithMemoryPressure) {
  const Population population = OverloadPopulation(64, 4.0);
  FleetOptions options;
  options.num_nodes = 2;
  options.target_mpl = 3;
  options.door.enabled = true;
  // Neutralize the delay-driven signals so memory is the only live one:
  // an hour of acceptable delay can never accumulate in this run.
  options.door.codel.target = units::Seconds(3600.0);
  options.door.metastability.drain_delay = units::Seconds(3600.0);
  // Template working sets run 1e7..4e9 bytes: a 6 GB node budget admits
  // small mixes but saturates once a couple of big scans are resident.
  options.door.node_memory_budget = units::Bytes(6e9);
  auto result = RunFleet(population, options);
  ASSERT_TRUE(result.ok()) << result.status();
  const FleetMetrics metrics = ComputeFleetMetrics(*result);
  ExpectConservation(metrics);
  ASSERT_GT(metrics.rejected, 0u) << "6 GB budget never filled";
  EXPECT_GT(metrics.completed, 0u) << "budget shed everything";
  for (const FleetQueryOutcome& out : result->outcomes) {
    if (out.rejected) {
      EXPECT_EQ(out.shed_reason, overload::ShedReason::kMemoryPressure);
    }
  }
}

TEST_F(OverloadFleetTest, BrownoutShedsLowestTiersOnly) {
  const Population population = OverloadPopulation(96, 1.5);
  FleetOptions options = FullControlOptions();
  // Park the metastability detector (delay can never out-grow these
  // bounds) so the brownout ladder owns the criticality sheds.
  options.door.metastability.drain_delay = units::Seconds(3600.0);
  options.door.metastability.goodput_fraction = 0.01;
  options.door.brownout.enter_pressure = 1.5;
  options.door.brownout.rung_streak = 4;
  auto result = RunFleet(population, options);
  ASSERT_TRUE(result.ok()) << result.status();
  const FleetMetrics metrics = ComputeFleetMetrics(*result);
  ExpectConservation(metrics);
  auto brownout =
      metrics.shed_by_reason.find(overload::ShedReason::kCriticalityBrownout);
  ASSERT_NE(brownout, metrics.shed_by_reason.end())
      << "ladder never escalated under a 1.5x pressure threshold";
  ASSERT_GT(brownout->second, 0u);
  EXPECT_GT(result->door.brownout_escalations, 0u);
  // Every brownout shed hit a tier below critical, and the sheddable
  // tier — the first rung — was hit. (Standard-tier sheds mean the
  // ladder climbed to rung 2; their count depends on the Zipf arrival
  // mix, so only membership is asserted, not relative volume.)
  size_t sheddable = 0;
  size_t standard = 0;
  for (const FleetQueryOutcome& out : result->outcomes) {
    if (!(out.rejected || out.shed) ||
        out.shed_reason != overload::ShedReason::kCriticalityBrownout) {
      continue;
    }
    switch (out.request.criticality) {
      case overload::Criticality::kSheddable:
        ++sheddable;
        break;
      case overload::Criticality::kStandard:
        ++standard;
        break;
      case overload::Criticality::kCritical:
        FAIL() << "critical request " << out.request.request_id
               << " brownout-shed";
    }
  }
  EXPECT_GT(sheddable, 0u);
  EXPECT_GT(sheddable + standard, 0u);
}

TEST_F(OverloadFleetTest, FullControllerIsThreadCountInvariant) {
  const Population population = OverloadPopulation(96, 2.0);
  FleetOptions options = FullControlOptions();
  options.threads = 1;
  auto serial = RunFleet(population, options);
  ASSERT_TRUE(serial.ok()) << serial.status();
  for (int threads : {2, 4, 8}) {
    options.threads = threads;
    auto parallel = RunFleet(population, options);
    ASSERT_TRUE(parallel.ok()) << parallel.status();
    EXPECT_TRUE(SameFleetResult(*serial, *parallel))
        << "diverged at " << threads << " threads";
  }
}

TEST_F(OverloadFleetTest, DoorChaosReplaysBitExactly) {
  const Population population = OverloadPopulation(64, 4.0);
  FleetOptions options = FullControlOptions();
  auto& registry = FailPointRegistry::Global();

  registry.SetRootSeed(13);
  registry.ArmProbability("overload.door.shed", 0.1);
  auto first = RunFleet(population, options);
  registry.SetRootSeed(13);
  registry.ArmProbability("overload.door.shed", 0.1);
  auto second = RunFleet(population, options);
  registry.DisarmAll();

  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_TRUE(second.ok()) << second.status();
  ASSERT_GT(first->door.chaos_sheds, 0u) << "chaos shed never fired";
  EXPECT_EQ(first->door.chaos_sheds, second->door.chaos_sheds);
  EXPECT_TRUE(SameFleetResult(*first, *second));
  // Conservation holds with injected sheds too.
  ExpectConservation(ComputeFleetMetrics(*first));

  // Disarmed, the run differs (the injected sheds are gone) but still
  // conserves.
  auto clean = RunFleet(population, options);
  ASSERT_TRUE(clean.ok()) << clean.status();
  EXPECT_EQ(clean->door.chaos_sheds, 0u);
  ExpectConservation(ComputeFleetMetrics(*clean));
}

}  // namespace
}  // namespace contender::fleet

#include "fleet/blame.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "fleet/node.h"
#include "test_support.h"

namespace contender::fleet {
namespace {

using contender::testing::DefaultConfig;
using contender::testing::PaperWorkload;
using contender::testing::SharedPredictor;

sched::Request MakeRequest(int id, int template_index, double arrival) {
  sched::Request r;
  r.request_id = id;
  r.template_index = template_index;
  r.arrival_time = units::Seconds(arrival);
  return r;
}

/// Runs one node over `assigned` and attributes blame.
std::vector<QueryBlame> RunAndBlame(
    const std::vector<sched::Request>& assigned, int target_mpl = 3) {
  NodeOptions options;
  options.target_mpl = target_mpl;
  Node node(&PaperWorkload(), DefaultConfig(), &SharedPredictor(), options);
  auto result = node.Run(assigned);
  CONTENDER_CHECK(result.ok()) << result.status();
  return ComputeNodeBlame(*result, node.oracle());
}

TEST(BlameTest, SharesSumToExcessExactly) {
  // A burst of mutually-contending queries at t = 0: MPL 3 forces
  // co-residency, so excess exists and must decompose conservatively.
  std::vector<sched::Request> assigned;
  for (int i = 0; i < 9; ++i) {
    assigned.push_back(MakeRequest(/*id=*/100 + i, /*template=*/i % 4,
                                   /*arrival=*/0.0));
  }
  auto blames = RunAndBlame(assigned);
  ASSERT_EQ(blames.size(), assigned.size());

  bool any_shares = false;
  for (const QueryBlame& blame : blames) {
    EXPECT_GE(blame.excess.value(), 0.0);
    EXPECT_DOUBLE_EQ(
        blame.excess.value(),
        std::max(0.0, (blame.execution_latency - blame.isolated_latency)
                          .value()));
    double attributed = 0.0;
    for (const BlameShare& share : blame.shares) {
      EXPECT_GT(share.seconds.value(), 0.0);
      EXPECT_NE(share.culprit_request, blame.request_id);
      EXPECT_GE(share.culprit_request, 100);
      EXPECT_LT(share.culprit_request, 109);
      EXPECT_GE(share.culprit_template, 0);
      attributed += share.seconds.value();
      any_shares = true;
    }
    // The invariant: self blame absorbs exactly the unattributed excess.
    EXPECT_DOUBLE_EQ(blame.self_blame.value() + attributed,
                     blame.excess.value());
    EXPECT_GE(blame.self_blame.value(), -1e-9);
  }
  EXPECT_TRUE(any_shares) << "no co-residency in a 9-query MPL-3 burst";
}

TEST(BlameTest, LoneQueryKeepsAllExcessAsSelfBlame) {
  auto blames = RunAndBlame({MakeRequest(0, 2, 0.0)});
  ASSERT_EQ(blames.size(), 1u);
  EXPECT_TRUE(blames[0].shares.empty());
  EXPECT_DOUBLE_EQ(blames[0].self_blame.value(), blames[0].excess.value());
}

TEST(BlameTest, DisjointQueriesBlameNobody) {
  // Arrivals far apart: no execution overlap, so even if a query runs
  // over its isolated estimate the excess stays self-attributed.
  std::vector<sched::Request> assigned;
  for (int i = 0; i < 3; ++i) {
    assigned.push_back(MakeRequest(i, i, 1e5 * i));
  }
  auto blames = RunAndBlame(assigned);
  for (const QueryBlame& blame : blames) {
    EXPECT_TRUE(blame.shares.empty());
    EXPECT_DOUBLE_EQ(blame.self_blame.value(), blame.excess.value());
  }
}

TEST(BlameTest, BlameIsDeterministic) {
  std::vector<sched::Request> assigned;
  for (int i = 0; i < 8; ++i) {
    assigned.push_back(MakeRequest(i, i % 5, 0.25 * i));
  }
  auto first = RunAndBlame(assigned);
  auto second = RunAndBlame(assigned);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].request_id, second[i].request_id);
    EXPECT_EQ(first[i].excess, second[i].excess);
    EXPECT_EQ(first[i].self_blame, second[i].self_blame);
    ASSERT_EQ(first[i].shares.size(), second[i].shares.size());
    for (size_t j = 0; j < first[i].shares.size(); ++j) {
      EXPECT_EQ(first[i].shares[j].culprit_request,
                second[i].shares[j].culprit_request);
      EXPECT_EQ(first[i].shares[j].seconds, second[i].shares[j].seconds);
    }
  }
}

TEST(BlameTest, CarriesTenantAndTemplateIdentity) {
  std::vector<sched::Request> assigned;
  for (int i = 0; i < 4; ++i) {
    sched::Request r = MakeRequest(i, i % 2, 0.0);
    r.tenant_id = i % 2 == 0 ? 7 : 9;
    assigned.push_back(r);
  }
  auto blames = RunAndBlame(assigned);
  for (const QueryBlame& blame : blames) {
    EXPECT_TRUE(blame.tenant_id == 7 || blame.tenant_id == 9);
    for (const BlameShare& share : blame.shares) {
      EXPECT_TRUE(share.culprit_tenant == 7 || share.culprit_tenant == 9);
      EXPECT_TRUE(share.culprit_template == 0 || share.culprit_template == 1);
    }
  }
}

}  // namespace
}  // namespace contender::fleet

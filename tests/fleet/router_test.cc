#include "fleet/router.h"

#include <gtest/gtest.h>

#include <vector>

#include "sched/mix_oracle.h"
#include "test_support.h"
#include "util/failpoint.h"

namespace contender::fleet {
namespace {

using contender::testing::SharedPredictor;

sched::Request MakeRequest(int id, int template_index, double arrival,
                           int tenant = 0) {
  sched::Request r;
  r.request_id = id;
  r.template_index = template_index;
  r.tenant_id = tenant;
  r.arrival_time = units::Seconds(arrival);
  return r;
}

/// Marks a fixed template set degraded (breaker open).
class FakeHealth : public sched::TemplateHealth {
 public:
  explicit FakeHealth(std::vector<int> degraded)
      : degraded_(std::move(degraded)) {}
  bool Degraded(int template_index) const override {
    for (int t : degraded_) {
      if (t == template_index) return true;
    }
    return false;
  }

 private:
  const std::vector<int> degraded_;
};

TEST(RouterTest, RoundRobinCyclesOverNodes) {
  sched::MixOracle oracle(&SharedPredictor());
  RouterOptions options;
  options.num_nodes = 3;
  options.policy = RoutePolicy::kRoundRobin;
  Router router(&oracle, options);
  for (int i = 0; i < 9; ++i) {
    auto node = router.Route(MakeRequest(i, 0, 0.0));
    ASSERT_TRUE(node.ok()) << node.status();
    EXPECT_EQ(*node, i % 3);
  }
  EXPECT_EQ(router.stats().routed, 9u);
  EXPECT_EQ(router.stats().rejected, 0u);
}

TEST(RouterTest, RejectsNonDenseIdsAndTimeTravel) {
  sched::MixOracle oracle(&SharedPredictor());
  Router router(&oracle, RouterOptions{});
  ASSERT_TRUE(router.Route(MakeRequest(0, 0, 10.0)).ok());
  EXPECT_FALSE(router.Route(MakeRequest(5, 0, 11.0)).ok());  // gap in ids
  EXPECT_FALSE(router.Route(MakeRequest(1, 0, 9.0)).ok());   // backwards
  ASSERT_TRUE(router.Route(MakeRequest(1, 0, 10.0)).ok());   // ties are fine
}

TEST(RouterTest, ContentionAwareSpreadsLoadOffBusyNodes) {
  sched::MixOracle oracle(&SharedPredictor());
  RouterOptions options;
  options.num_nodes = 2;
  options.policy = RoutePolicy::kContentionAware;
  Router router(&oracle, options);
  // Simultaneous arrivals: each placement inflates the predicted slowdown
  // of the node it lands on, so the next request prefers the other node.
  auto first = router.Route(MakeRequest(0, 2, 0.0));
  auto second = router.Route(MakeRequest(1, 2, 0.0));
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_NE(*first, *second);
}

TEST(RouterTest, LeastLoadedPicksTheEmptiestNode) {
  sched::MixOracle oracle(&SharedPredictor());
  RouterOptions options;
  options.num_nodes = 3;
  options.policy = RoutePolicy::kLeastLoaded;
  Router router(&oracle, options);
  ASSERT_TRUE(router.Route(MakeRequest(0, 0, 0.0)).ok());
  ASSERT_TRUE(router.Route(MakeRequest(1, 0, 0.0)).ok());
  ASSERT_TRUE(router.Route(MakeRequest(2, 0, 0.0)).ok());
  // All nodes hold one outstanding request; the tie resolves to node 0.
  auto fourth = router.Route(MakeRequest(3, 0, 0.0));
  ASSERT_TRUE(fourth.ok()) << fourth.status();
  EXPECT_EQ(*fourth, 0);
  EXPECT_EQ(router.Outstanding(0), 2);
}

TEST(RouterTest, TenantQuotaRejectsAtTheDoor) {
  sched::MixOracle oracle(&SharedPredictor());
  RouterOptions options;
  options.num_nodes = 2;
  options.tenant_quota = 2;
  Router router(&oracle, options);
  ASSERT_TRUE(router.Route(MakeRequest(0, 0, 0.0, /*tenant=*/1)).ok());
  ASSERT_TRUE(router.Route(MakeRequest(1, 0, 0.0, /*tenant=*/1)).ok());
  auto over = router.Route(MakeRequest(2, 0, 0.0, /*tenant=*/1));
  ASSERT_TRUE(over.ok()) << over.status();
  EXPECT_EQ(*over, -1);
  EXPECT_TRUE(router.assignments()[2].rejected);
  // A different tenant is unaffected.
  auto other = router.Route(MakeRequest(3, 0, 0.0, /*tenant=*/2));
  ASSERT_TRUE(other.ok()) << other.status();
  EXPECT_GE(*other, 0);
  EXPECT_EQ(router.stats().rejected, 1u);
  EXPECT_EQ(router.stats().routed, 3u);
}

TEST(RouterTest, DrainFailsOverPredictedBacklog) {
  sched::MixOracle oracle(&SharedPredictor());
  RouterOptions options;
  options.num_nodes = 2;
  options.target_mpl = 2;
  options.policy = RoutePolicy::kRoundRobin;
  Router router(&oracle, options);
  // Six simultaneous arrivals round-robin to 3 per node: 2 predicted
  // running + 1 backlogged each.
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(router.Route(MakeRequest(i, 1, 0.0)).ok());
  }
  ASSERT_EQ(router.Outstanding(0), 3);
  ASSERT_EQ(router.Outstanding(1), 3);

  // Node 0's backlog holds request 4 (ids 0, 2, 4 landed there).
  ASSERT_TRUE(router.BeginDrain(0, units::Seconds(1.0)).ok());
  EXPECT_TRUE(router.draining(0));
  const Assignment& moved = router.assignments()[4];
  EXPECT_EQ(moved.node, 1);
  EXPECT_TRUE(moved.failed_over);
  EXPECT_EQ(moved.effective_arrival, units::Seconds(1.0));
  // Predicted-running queries stay on the draining node.
  EXPECT_EQ(router.assignments()[0].node, 0);
  EXPECT_FALSE(router.assignments()[0].failed_over);
  EXPECT_EQ(router.Outstanding(0), 2);
  EXPECT_EQ(router.Outstanding(1), 4);
  EXPECT_EQ(router.stats().failovers, 1u);
  ASSERT_EQ(router.stats().drains.size(), 1u);
  EXPECT_EQ(router.stats().drains[0].failovers, 1);

  // New arrivals only go to the healthy node; draining again is a no-op
  // and draining the last healthy node is refused.
  auto next = router.Route(MakeRequest(6, 1, 2.0));
  ASSERT_TRUE(next.ok()) << next.status();
  EXPECT_EQ(*next, 1);
  EXPECT_TRUE(router.BeginDrain(0, units::Seconds(3.0)).ok());
  EXPECT_EQ(router.stats().drains.size(), 1u);
  EXPECT_EQ(router.BeginDrain(1, units::Seconds(3.0)).code(),
            StatusCode::kFailedPrecondition);
  EXPECT_FALSE(router.BeginDrain(7, units::Seconds(3.0)).ok());
}

TEST(RouterTest, DegradedTemplateDescendsTheLadder) {
  FakeHealth health({3});
  sched::MixOracle::Options oracle_options;
  oracle_options.health = &health;
  sched::MixOracle oracle(&SharedPredictor(), oracle_options);
  RouterOptions options;
  options.num_nodes = 2;
  options.policy = RoutePolicy::kContentionAware;
  Router router(&oracle, options);
  auto node = router.Route(MakeRequest(0, 3, 0.0));
  ASSERT_TRUE(node.ok()) << node.status();
  EXPECT_TRUE(router.assignments()[0].degraded);
  EXPECT_EQ(router.stats().degraded_routes, 1u);
  // A healthy template joining a mix that contains the degraded one also
  // routes on the ladder (the mix prediction is untrusted).
  auto second = router.Route(MakeRequest(1, 2, 0.0));
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_EQ(router.stats().degraded_routes, 2u);
}

TEST(RouterTest, ChaosDrainReplaysBitExactly) {
  auto run = [] {
    sched::MixOracle oracle(&SharedPredictor());
    RouterOptions options;
    options.num_nodes = 4;
    options.policy = RoutePolicy::kContentionAware;
    Router router(&oracle, options);
    for (int i = 0; i < 40; ++i) {
      auto node = router.Route(MakeRequest(i, i % 5, 0.5 * i));
      CONTENDER_CHECK(node.ok()) << node.status();
    }
    return std::make_pair(std::vector<Assignment>(router.assignments()),
                          router.stats().drains);
  };

  auto& registry = FailPointRegistry::Global();
  registry.SetRootSeed(42);
  registry.ArmProbability("fleet.node.drain", 0.25);
  auto first = run();
  // Re-arming with the same root seed resets the evaluation counter, so
  // the fired subset — and every downstream failover — replays exactly.
  registry.SetRootSeed(42);
  registry.ArmProbability("fleet.node.drain", 0.25);
  auto second = run();
  registry.Disarm("fleet.node.drain");

  ASSERT_FALSE(first.second.empty()) << "chaos drain never fired";
  ASSERT_EQ(first.second.size(), second.second.size());
  for (size_t i = 0; i < first.second.size(); ++i) {
    EXPECT_EQ(first.second[i].node, second.second[i].node);
    EXPECT_EQ(first.second[i].time, second.second[i].time);
    EXPECT_EQ(first.second[i].failovers, second.second[i].failovers);
  }
  ASSERT_EQ(first.first.size(), second.first.size());
  for (size_t i = 0; i < first.first.size(); ++i) {
    EXPECT_EQ(first.first[i].node, second.first[i].node);
    EXPECT_EQ(first.first[i].failed_over, second.first[i].failed_over);
    EXPECT_EQ(first.first[i].effective_arrival,
              second.first[i].effective_arrival);
  }
}

}  // namespace
}  // namespace contender::fleet

#include "fleet/population.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "test_support.h"

namespace contender::fleet {
namespace {

using contender::testing::SharedPredictor;

std::vector<units::Seconds> ReferenceLatencies() {
  std::vector<units::Seconds> reference;
  for (const TemplateProfile& p : SharedPredictor().profiles()) {
    reference.push_back(p.isolated_latency);
  }
  return reference;
}

bool SameStream(const Population& a, const Population& b) {
  if (a.requests.size() != b.requests.size()) return false;
  for (size_t i = 0; i < a.requests.size(); ++i) {
    const sched::Request& x = a.requests[i];
    const sched::Request& y = b.requests[i];
    if (x.request_id != y.request_id || x.tenant_id != y.tenant_id ||
        x.template_index != y.template_index ||
        x.arrival_time != y.arrival_time || x.deadline != y.deadline) {
      return false;
    }
  }
  return true;
}

TEST(PopulationTest, SameSeedYieldsIdenticalStream) {
  const auto reference = ReferenceLatencies();
  PopulationOptions options;
  options.num_tenants = 4;
  options.num_requests = 64;
  options.skew = 1.0;
  options.templates_per_tenant = 8;
  options.deadline_probability = 0.4;
  auto a = GeneratePopulation(reference, options);
  auto b = GeneratePopulation(reference, options);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_TRUE(SameStream(*a, *b));

  options.seed = 43;
  auto c = GeneratePopulation(reference, options);
  ASSERT_TRUE(c.ok()) << c.status();
  EXPECT_FALSE(SameStream(*a, *c));
}

TEST(PopulationTest, IdsAreDenseAndArrivalsSorted) {
  const auto reference = ReferenceLatencies();
  PopulationOptions options;
  options.num_requests = 50;
  auto population = GeneratePopulation(reference, options);
  ASSERT_TRUE(population.ok()) << population.status();
  ASSERT_EQ(population->requests.size(), 50u);
  units::Seconds last;
  for (size_t i = 0; i < population->requests.size(); ++i) {
    const sched::Request& r = population->requests[i];
    EXPECT_EQ(r.request_id, static_cast<int>(i));
    EXPECT_GE(r.arrival_time, last);
    EXPECT_GE(r.tenant_id, 0);
    EXPECT_LT(r.tenant_id, options.num_tenants);
    last = r.arrival_time;
  }
}

TEST(PopulationTest, ApportionmentIsExactAndSkewConcentrates) {
  const auto reference = ReferenceLatencies();
  PopulationOptions options;
  options.num_tenants = 5;
  options.num_requests = 97;  // not divisible: exercises the remainders
  options.skew = 0.0;
  auto uniform = GeneratePopulation(reference, options);
  ASSERT_TRUE(uniform.ok()) << uniform.status();
  int total = 0;
  for (const TenantSpec& t : uniform->tenants) {
    total += t.num_requests;
    EXPECT_NEAR(t.rate_share, 0.2, 1e-12);
    EXPECT_GE(t.num_requests, 19);  // floor(97/5) = 19
  }
  EXPECT_EQ(total, 97);

  options.skew = 2.0;
  auto skewed = GeneratePopulation(reference, options);
  ASSERT_TRUE(skewed.ok()) << skewed.status();
  total = 0;
  for (const TenantSpec& t : skewed->tenants) total += t.num_requests;
  EXPECT_EQ(total, 97);
  EXPECT_GT(skewed->tenants.front().num_requests,
            skewed->tenants.back().num_requests);
  EXPECT_GT(skewed->tenants.front().rate_share,
            skewed->tenants.back().rate_share);
}

TEST(PopulationTest, TenantsDrawOnlyFromTheirTemplateBlock) {
  const auto reference = ReferenceLatencies();
  PopulationOptions options;
  options.num_tenants = 4;
  options.num_requests = 80;
  options.templates_per_tenant = 6;
  auto population = GeneratePopulation(reference, options);
  ASSERT_TRUE(population.ok()) << population.status();
  for (const TenantSpec& t : population->tenants) {
    EXPECT_EQ(t.templates.size(), 6u);
  }
  // Adjacent tenants overlap (rotating half-block windows).
  const auto& t0 = population->tenants[0].templates;
  const auto& t1 = population->tenants[1].templates;
  bool overlap = false;
  for (int x : t0) overlap |= std::count(t1.begin(), t1.end(), x) > 0;
  EXPECT_TRUE(overlap);
  EXPECT_NE(t0, t1);
  for (const sched::Request& r : population->requests) {
    const auto& allowed =
        population->tenants[static_cast<size_t>(r.tenant_id)].templates;
    EXPECT_TRUE(std::count(allowed.begin(), allowed.end(),
                           r.template_index) > 0)
        << "tenant " << r.tenant_id << " drew template "
        << r.template_index;
  }
}

TEST(PopulationTest, DeadlinesSitInsideTheSlackBand) {
  const auto reference = ReferenceLatencies();
  PopulationOptions options;
  options.num_requests = 120;
  options.deadline_probability = 1.0;
  options.min_slack = 2.0;
  options.max_slack = 4.0;
  auto population = GeneratePopulation(reference, options);
  ASSERT_TRUE(population.ok()) << population.status();
  for (const sched::Request& r : population->requests) {
    ASSERT_TRUE(r.deadline.has_value());
    const double ref =
        reference[static_cast<size_t>(r.template_index)].value();
    const double slack =
        (*r.deadline - r.arrival_time).value() / ref;
    EXPECT_GE(slack, 2.0 - 1e-9);
    EXPECT_LT(slack, 4.0);
  }
}

TEST(PopulationTest, RejectsInvalidOptions) {
  const auto reference = ReferenceLatencies();
  EXPECT_FALSE(GeneratePopulation({}, PopulationOptions{}).ok());

  PopulationOptions bad;
  bad.num_tenants = 0;
  EXPECT_FALSE(GeneratePopulation(reference, bad).ok());

  bad = PopulationOptions{};
  bad.num_requests = -1;
  EXPECT_FALSE(GeneratePopulation(reference, bad).ok());

  bad = PopulationOptions{};
  bad.mean_interarrival = units::Seconds(0.0);
  EXPECT_FALSE(GeneratePopulation(reference, bad).ok());

  bad = PopulationOptions{};
  bad.skew = -0.5;
  EXPECT_FALSE(GeneratePopulation(reference, bad).ok());

  bad = PopulationOptions{};
  bad.deadline_probability = 1.5;
  EXPECT_FALSE(GeneratePopulation(reference, bad).ok());

  bad = PopulationOptions{};
  bad.min_slack = 5.0;
  bad.max_slack = 2.0;
  EXPECT_FALSE(GeneratePopulation(reference, bad).ok());

  bad = PopulationOptions{};
  bad.templates_per_tenant =
      static_cast<int>(reference.size()) + 1;
  EXPECT_FALSE(GeneratePopulation(reference, bad).ok());
}

}  // namespace
}  // namespace contender::fleet

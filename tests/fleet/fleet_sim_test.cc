// End-to-end fleet determinism and correctness:
//   * the same root seed yields a bit-identical FleetResult at every
//     thread count (routing is sequential; node seeds pre-derive in node
//     order; results land in node-index slots);
//   * chaos drain/failover replays bit-exactly from the fail-point root
//     seed alone;
//   * explicit drains stop new placements and fail the predicted backlog
//     over; FleetMetrics conserves the blame ledgers.

#include "fleet/fleet_simulator.h"

#include <gtest/gtest.h>

#include <cmath>
#include <map>
#include <vector>

#include "fleet/metrics.h"
#include "fleet/population.h"
#include "test_support.h"
#include "util/failpoint.h"

namespace contender::fleet {
namespace {

using contender::testing::DefaultConfig;
using contender::testing::PaperWorkload;
using contender::testing::SharedPredictor;

Population TestPopulation(int num_requests = 48, double skew = 1.0,
                          uint64_t seed = 42) {
  std::vector<units::Seconds> reference;
  for (const TemplateProfile& p : SharedPredictor().profiles()) {
    reference.push_back(p.isolated_latency);
  }
  PopulationOptions options;
  options.num_tenants = 4;
  options.num_requests = num_requests;
  options.mean_interarrival = units::Seconds(8.0);
  options.skew = skew;
  options.templates_per_tenant = 10;
  options.deadline_probability = 0.5;
  options.seed = seed;
  auto population = GeneratePopulation(reference, options);
  CONTENDER_CHECK(population.ok()) << population.status();
  return std::move(*population);
}

StatusOr<FleetResult> RunFleet(const Population& population,
                               FleetOptions options) {
  FleetSimulator simulator(&PaperWorkload(), DefaultConfig(),
                           &SharedPredictor());
  return simulator.Run(population, options);
}

bool SameFleetResult(const FleetResult& a, const FleetResult& b) {
  if (a.makespan != b.makespan || a.outcomes.size() != b.outcomes.size() ||
      a.blame.size() != b.blame.size()) {
    return false;
  }
  for (size_t i = 0; i < a.outcomes.size(); ++i) {
    const FleetQueryOutcome& x = a.outcomes[i];
    const FleetQueryOutcome& y = b.outcomes[i];
    if (x.node != y.node || x.rejected != y.rejected ||
        x.failed_over != y.failed_over || x.completed != y.completed ||
        x.admit_time != y.admit_time ||
        x.completion_time != y.completion_time ||
        x.execution_latency != y.execution_latency ||
        x.response_time != y.response_time ||
        x.predicted_latency != y.predicted_latency ||
        x.missed_deadline != y.missed_deadline) {
      return false;
    }
  }
  for (size_t i = 0; i < a.blame.size(); ++i) {
    if (a.blame[i].request_id != b.blame[i].request_id ||
        a.blame[i].excess != b.blame[i].excess ||
        a.blame[i].self_blame != b.blame[i].self_blame ||
        a.blame[i].shares.size() != b.blame[i].shares.size()) {
      return false;
    }
    for (size_t j = 0; j < a.blame[i].shares.size(); ++j) {
      if (a.blame[i].shares[j].culprit_request !=
              b.blame[i].shares[j].culprit_request ||
          a.blame[i].shares[j].seconds != b.blame[i].shares[j].seconds) {
        return false;
      }
    }
  }
  return true;
}

TEST(FleetSimulatorTest, OutcomesCoverEveryRequest) {
  const Population population = TestPopulation();
  FleetOptions options;
  auto result = RunFleet(population, options);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->outcomes.size(), population.requests.size());
  size_t node_requests = 0;
  for (const FleetNodeSummary& node : result->nodes) {
    node_requests += node.requests;
    EXPECT_LE(node.makespan, result->makespan);
  }
  size_t completed = 0;
  for (size_t i = 0; i < result->outcomes.size(); ++i) {
    const FleetQueryOutcome& out = result->outcomes[i];
    EXPECT_EQ(out.request.request_id, static_cast<int>(i));
    ASSERT_TRUE(out.completed || out.rejected);
    if (!out.completed) continue;
    ++completed;
    EXPECT_GE(out.node, 0);
    EXPECT_LT(out.node, options.num_nodes);
    EXPECT_GE(out.admit_time, out.request.arrival_time);
    EXPECT_EQ(out.queue_wait, out.admit_time - out.request.arrival_time);
    EXPECT_EQ(out.response_time,
              out.completion_time - out.request.arrival_time);
    EXPECT_GT(out.execution_latency, units::Seconds(0.0));
  }
  EXPECT_EQ(node_requests, completed);
  EXPECT_EQ(result->blame.size(), completed);
  EXPECT_EQ(result->router.routed, completed);
}

TEST(FleetSimulatorTest, ThreadCountDoesNotChangeResults) {
  const Population population = TestPopulation();
  FleetOptions options;
  options.policy = RoutePolicy::kContentionAware;
  options.threads = 1;
  auto serial = RunFleet(population, options);
  ASSERT_TRUE(serial.ok()) << serial.status();
  for (int threads : {2, 4, 8}) {
    options.threads = threads;
    auto parallel = RunFleet(population, options);
    ASSERT_TRUE(parallel.ok()) << parallel.status();
    EXPECT_TRUE(SameFleetResult(*serial, *parallel))
        << "diverged at " << threads << " threads";
  }
}

TEST(FleetSimulatorTest, SameSeedSameResultDifferentSeedDiffers) {
  const Population population = TestPopulation();
  FleetOptions options;
  auto first = RunFleet(population, options);
  auto second = RunFleet(population, options);
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_TRUE(second.ok()) << second.status();
  EXPECT_TRUE(SameFleetResult(*first, *second));

  options.seed = 1234;
  auto reseeded = RunFleet(population, options);
  ASSERT_TRUE(reseeded.ok()) << reseeded.status();
  EXPECT_FALSE(SameFleetResult(*first, *reseeded));
}

TEST(FleetSimulatorTest, ExplicitDrainStopsPlacementsAndFailsOver) {
  const Population population = TestPopulation(/*num_requests=*/64);
  const units::Seconds drain_time =
      population.requests[20].arrival_time;
  FleetOptions options;
  options.policy = RoutePolicy::kRoundRobin;  // guarantees node 0 traffic
  options.drains.push_back({0, drain_time});
  auto result = RunFleet(population, options);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->router.drains.size(), 1u);
  EXPECT_EQ(result->router.drains[0].node, 0);
  for (const FleetQueryOutcome& out : result->outcomes) {
    ASSERT_TRUE(out.completed || out.rejected);
    // After the drain instant nothing new lands on node 0; only queries
    // the router already believed running may still finish there.
    if (out.request.arrival_time >= drain_time && !out.failed_over) {
      EXPECT_NE(out.node, 0) << "request " << out.request.request_id
                             << " routed to the drained node";
    }
    if (out.failed_over) {
      EXPECT_NE(out.node, 0);
      EXPECT_GE(out.admit_time, drain_time);
    }
  }
  // Draining an unknown node is rejected up front.
  FleetOptions bad = options;
  bad.drains = {{17, drain_time}};
  EXPECT_FALSE(RunFleet(population, bad).ok());
}

TEST(FleetSimulatorTest, TenantQuotaRejectsAndMetricsCountIt) {
  const Population population = TestPopulation(/*num_requests=*/64,
                                               /*skew=*/2.0);
  FleetOptions options;
  options.tenant_quota = 2;
  auto result = RunFleet(population, options);
  ASSERT_TRUE(result.ok()) << result.status();
  const FleetMetrics metrics = ComputeFleetMetrics(*result);
  EXPECT_GT(metrics.rejected, 0u) << "quota 2 never rejected under skew 2";
  size_t rejected_by_tenant = 0;
  for (const auto& [tenant, count] : metrics.rejected_by_tenant) {
    rejected_by_tenant += count;
  }
  EXPECT_EQ(rejected_by_tenant, metrics.rejected);
  EXPECT_EQ(metrics.completed + metrics.rejected, metrics.requests);
}

TEST(FleetSimulatorTest, FleetMetricsConserveBlame) {
  const Population population = TestPopulation(/*num_requests=*/56);
  FleetOptions options;
  options.target_mpl = 2;  // tighter nodes => more contention => blame
  auto result = RunFleet(population, options);
  ASSERT_TRUE(result.ok()) << result.status();
  const FleetMetrics metrics = ComputeFleetMetrics(*result);

  // Ledger conservation: received + self over all tenants == total excess.
  double received = 0.0;
  double inflicted = 0.0;
  double self = 0.0;
  for (const auto& [tenant, totals] : metrics.blame_by_tenant) {
    received += totals.received_s;
    inflicted += totals.inflicted_s;
    self += totals.self_s;
  }
  EXPECT_NEAR(received + self, metrics.total_excess_s,
              1e-6 * std::max(1.0, metrics.total_excess_s));
  EXPECT_NEAR(received, inflicted,
              1e-6 * std::max(1.0, received));
  EXPECT_DOUBLE_EQ(self, metrics.total_self_blame_s);

  // Matrix rows reproduce each victim's received seconds.
  std::map<int, double> row_sums;
  for (const auto& [edge, seconds] : metrics.tenant_blame_matrix_s) {
    row_sums[edge.first] += seconds;
  }
  for (const auto& [tenant, totals] : metrics.blame_by_tenant) {
    EXPECT_NEAR(row_sums[tenant], totals.received_s,
                1e-6 * std::max(1.0, totals.received_s));
  }

  // Per-tenant latency stats partition the completed set.
  size_t tenant_requests = 0;
  for (const auto& [tenant, stats] : metrics.per_tenant) {
    tenant_requests += stats.requests;
  }
  EXPECT_EQ(tenant_requests, metrics.completed);
}

TEST(FleetSimulatorTest, ChaosDrainReplayIsBitExact) {
  const Population population = TestPopulation(/*num_requests=*/40);
  FleetOptions options;
  options.num_nodes = 4;

  auto& registry = FailPointRegistry::Global();
  registry.SetRootSeed(7);
  registry.ArmProbability("fleet.node.drain", 0.08);
  auto first = RunFleet(population, options);
  registry.SetRootSeed(7);
  registry.ArmProbability("fleet.node.drain", 0.08);
  auto second = RunFleet(population, options);
  registry.Disarm("fleet.node.drain");

  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_TRUE(second.ok()) << second.status();
  ASSERT_FALSE(first->router.drains.empty()) << "chaos drain never fired";
  EXPECT_GT(first->router.failovers + first->router.rejected, 0u);
  EXPECT_TRUE(SameFleetResult(*first, *second));
  ASSERT_EQ(first->router.drains.size(), second->router.drains.size());
  for (size_t i = 0; i < first->router.drains.size(); ++i) {
    EXPECT_EQ(first->router.drains[i].node,
              second->router.drains[i].node);
    EXPECT_EQ(first->router.drains[i].time,
              second->router.drains[i].time);
  }

  // Disarmed, the same options produce a drain-free run.
  auto clean = RunFleet(population, options);
  ASSERT_TRUE(clean.ok()) << clean.status();
  EXPECT_TRUE(clean->router.drains.empty());
  EXPECT_FALSE(SameFleetResult(*first, *clean));
}

}  // namespace
}  // namespace contender::fleet

// Shared fixtures: the paper workload and a lazily-collected training data
// set, built once per test binary (collection is fast but not free).

#ifndef CONTENDER_TESTS_TEST_SUPPORT_H_
#define CONTENDER_TESTS_TEST_SUPPORT_H_

#include "util/logging.h"
#include "workload/sampler.h"
#include "workload/workload.h"

namespace contender::testing {

/// The paper workload (25 templates over TPC-DS SF=100).
inline const Workload& PaperWorkload() {
  static const Workload* w = new Workload(Workload::Paper());
  return *w;
}

/// Default hardware model.
inline const sim::SimConfig& DefaultConfig() {
  static const sim::SimConfig config;
  return config;
}

/// Full training data (profiles, scan times, mix observations at MPL 2-5),
/// collected once with a fixed seed.
inline const TrainingData& SharedTrainingData() {
  static const TrainingData* data = [] {
    WorkloadSampler::Options options;
    WorkloadSampler sampler(&PaperWorkload(), DefaultConfig(), options);
    auto collected = sampler.CollectAll();
    CONTENDER_CHECK(collected.ok()) << collected.status();
    return new TrainingData(std::move(*collected));
  }();
  return *data;
}

/// Profile lookup by paper template id; CHECK-fails when missing.
inline const TemplateProfile& ProfileById(const TrainingData& data, int id) {
  for (const TemplateProfile& p : data.profiles) {
    if (p.template_id == id) return p;
  }
  CONTENDER_CHECK(false) << "no profile for template id " << id;
  static TemplateProfile dummy;
  return dummy;
}

}  // namespace contender::testing

#endif  // CONTENDER_TESTS_TEST_SUPPORT_H_

// Shared fixtures: the paper workload, a lazily-collected training data set
// and a trained predictor, built once per test binary (collection is fast
// but not free), plus held-out-template reindexing helpers used by the
// predictor and reproduction suites.

#ifndef CONTENDER_TESTS_TEST_SUPPORT_H_
#define CONTENDER_TESTS_TEST_SUPPORT_H_

#include <vector>

#include "core/predictor.h"
#include "util/logging.h"
#include "workload/sampler.h"
#include "workload/workload.h"

namespace contender::testing {

/// The paper workload (25 templates over TPC-DS SF=100).
inline const Workload& PaperWorkload() {
  static const Workload* w = new Workload(Workload::Paper());
  return *w;
}

/// Default hardware model.
inline const sim::SimConfig& DefaultConfig() {
  static const sim::SimConfig config;
  return config;
}

/// Full training data (profiles, scan times, mix observations at MPL 2-5),
/// collected once with a fixed seed.
inline const TrainingData& SharedTrainingData() {
  static const TrainingData* data = [] {
    WorkloadSampler::Options options;
    WorkloadSampler sampler(&PaperWorkload(), DefaultConfig(), options);
    auto collected = sampler.CollectAll();
    CONTENDER_CHECK(collected.ok()) << collected.status();
    return new TrainingData(std::move(*collected));
  }();
  return *data;
}

/// Profile lookup by paper template id; CHECK-fails when missing.
inline const TemplateProfile& ProfileById(const TrainingData& data, int id) {
  for (const TemplateProfile& p : data.profiles) {
    if (p.template_id == id) return p;
  }
  CONTENDER_CHECK(false) << "no profile for template id " << id;
  static TemplateProfile dummy;
  return dummy;
}

/// A predictor trained once on SharedTrainingData with default options.
inline const ContenderPredictor& SharedPredictor() {
  static const ContenderPredictor* predictor = [] {
    const TrainingData& data = SharedTrainingData();
    ContenderPredictor::Options opts;
    auto trained = ContenderPredictor::Train(data.profiles, data.scan_times,
                                             data.observations, opts);
    CONTENDER_CHECK(trained.ok()) << trained.status();
    return new ContenderPredictor(std::move(*trained));
  }();
  return *predictor;
}

/// A training view with some templates held out: profiles reindexed,
/// observations touching a held-out template dropped.
struct HeldOutTraining {
  std::vector<TemplateProfile> profiles;
  std::vector<MixObservation> observations;
  /// Maps original template index -> reindexed position (-1 if held out).
  std::vector<int> remap;

  /// Remaps original concurrent indices; returns false when any partner is
  /// held out (the mix is unusable for held-out evaluation).
  bool RemapConcurrent(const std::vector<int>& concurrent,
                       std::vector<int>* out) const {
    out->clear();
    for (int c : concurrent) {
      const int mapped = remap[static_cast<size_t>(c)];
      if (mapped < 0) return false;
      out->push_back(mapped);
    }
    return true;
  }
};

/// Builds the held-out view of `data` (profiles reindexed contiguously;
/// observations whose primary or partners are held out dropped).
inline HeldOutTraining MakeHeldOutTraining(const TrainingData& data,
                                           const std::vector<int>& held_out) {
  HeldOutTraining view;
  view.remap.assign(data.profiles.size(), -1);
  auto is_held = [&held_out](int idx) {
    for (int h : held_out) {
      if (h == idx) return true;
    }
    return false;
  };
  int next = 0;
  for (const TemplateProfile& p : data.profiles) {
    if (is_held(p.template_index)) continue;
    TemplateProfile copy = p;
    view.remap[static_cast<size_t>(p.template_index)] = next;
    copy.template_index = next++;
    view.profiles.push_back(std::move(copy));
  }
  for (const MixObservation& o : data.observations) {
    bool touches = is_held(o.primary_index);
    for (int c : o.concurrent_indices) touches |= is_held(c);
    if (touches) continue;
    MixObservation copy = o;
    copy.primary_index = view.remap[static_cast<size_t>(o.primary_index)];
    for (int& c : copy.concurrent_indices) {
      c = view.remap[static_cast<size_t>(c)];
    }
    view.observations.push_back(std::move(copy));
  }
  return view;
}

}  // namespace contender::testing

#endif  // CONTENDER_TESTS_TEST_SUPPORT_H_

#include "serve/observation_log.h"

#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "core/continuum.h"
#include "serve/health.h"
#include "test_support.h"
#include "util/failpoint.h"

namespace contender::serve {
namespace {

using contender::testing::SharedPredictor;
using contender::testing::SharedTrainingData;

std::shared_ptr<const ModelSnapshot> MakeSnapshot(uint64_t version = 1) {
  return ModelSnapshot::Create(SharedPredictor(), version);
}

// The first training observation whose template has a spoiler range at the
// observation's MPL (in practice: the first one).
MixObservation RangedObservation() {
  for (const MixObservation& o : SharedTrainingData().observations) {
    const TemplateProfile& p =
        SharedPredictor().profiles()[static_cast<size_t>(o.primary_index)];
    auto it = p.spoiler_latency.find(o.mpl);
    if (it == p.spoiler_latency.end()) continue;
    if (units::LatencyRange::Make(p.isolated_latency, it->second).ok()) {
      return o;
    }
  }
  CONTENDER_CHECK(false) << "no observation with a spoiler range";
  return {};
}

TEST(ObservationLogTest, IngestComputesContinuumResidual) {
  PredictionService service(MakeSnapshot(5));
  ObservationLog log(&service);
  const MixObservation obs = RangedObservation();

  auto result = log.Ingest(obs);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->snapshot_version, 5u);

  // Recompute Eq. 6 by hand against the same snapshot.
  const auto snapshot = service.snapshot();
  const TemplateProfile& p =
      snapshot->predictor()
          .profiles()[static_cast<size_t>(obs.primary_index)];
  auto range = units::LatencyRange::Make(
      p.isolated_latency, p.spoiler_latency.at(obs.mpl));
  ASSERT_TRUE(range.ok());
  auto c_obs = ContinuumPoint(obs.latency, *range);
  auto c_pred = ContinuumPoint(
      snapshot->PredictInMix(obs.primary_index, obs.concurrent_indices),
      *range);
  ASSERT_TRUE(c_obs.ok() && c_pred.ok());
  EXPECT_EQ(result->continuum_residual, c_obs->value() - c_pred->value());

  EXPECT_EQ(log.pending(), 1u);
  EXPECT_EQ(log.ingested(), 1u);
  EXPECT_EQ(log.rejected(), 0u);
}

TEST(ObservationLogTest, ResidualSignTracksObservedShift) {
  PredictionService service(MakeSnapshot());
  ObservationLog log(&service);
  MixObservation obs = RangedObservation();
  const units::Seconds predicted = service.snapshot()->PredictInMix(
      obs.primary_index, obs.concurrent_indices);

  obs.latency = predicted * 1.2;
  auto slower = log.Ingest(obs);
  ASSERT_TRUE(slower.ok()) << slower.status();
  EXPECT_GT(slower->continuum_residual, 0.0);

  obs.latency = predicted * 0.8;
  auto faster = log.Ingest(obs);
  ASSERT_TRUE(faster.ok()) << faster.status();
  EXPECT_LT(faster->continuum_residual, 0.0);
}

TEST(ObservationLogTest, DrainPreservesIngestOrderAndResets) {
  PredictionService service(MakeSnapshot());
  ObservationLog log(&service);
  const auto& all = SharedTrainingData().observations;
  ASSERT_GE(all.size(), 6u);
  SummaryStats expected_abs;
  for (size_t i = 0; i < 6; ++i) {
    auto result = log.Ingest(all[i]);
    ASSERT_TRUE(result.ok()) << result.status();
    expected_abs.Add(std::abs(result->continuum_residual));
  }
  EXPECT_EQ(log.pending(), 6u);
  EXPECT_EQ(log.pending_mean_abs_residual(), expected_abs.mean());

  ObservationBatch batch = log.Drain();
  ASSERT_EQ(batch.observations.size(), 6u);
  for (size_t i = 0; i < 6; ++i) {
    EXPECT_EQ(batch.observations[i].primary_index, all[i].primary_index);
    EXPECT_EQ(batch.observations[i].latency, all[i].latency);
  }
  EXPECT_EQ(batch.mean_abs_residual, expected_abs.mean());
  EXPECT_EQ(log.pending(), 0u);
  EXPECT_EQ(log.pending_mean_abs_residual(), 0.0);
  EXPECT_EQ(log.ingested(), 6u);  // lifetime counter survives the drain
  EXPECT_TRUE(log.Drain().observations.empty());
}

TEST(ObservationLogTest, RejectsMalformedRecords) {
  PredictionService service(MakeSnapshot());
  ObservationLog log(&service);
  const int n = service.snapshot()->num_templates();
  const MixObservation good = RangedObservation();

  MixObservation bad = good;
  bad.primary_index = n;
  auto r1 = log.Ingest(bad);
  EXPECT_EQ(r1.status().code(), StatusCode::kInvalidArgument);

  bad = good;
  bad.concurrent_indices.push_back(-1);
  bad.mpl = static_cast<int>(bad.concurrent_indices.size()) + 1;
  auto r2 = log.Ingest(bad);
  EXPECT_EQ(r2.status().code(), StatusCode::kInvalidArgument);

  bad = good;
  bad.mpl = good.mpl + 1;  // MPL must equal mix size + 1
  auto r3 = log.Ingest(bad);
  EXPECT_EQ(r3.status().code(), StatusCode::kInvalidArgument);

  bad = good;
  bad.latency = units::Seconds(0.0);
  auto r4 = log.Ingest(bad);
  EXPECT_EQ(r4.status().code(), StatusCode::kInvalidArgument);

  EXPECT_EQ(log.rejected(), 4u);
  EXPECT_EQ(log.ingested(), 0u);
  EXPECT_EQ(log.pending(), 0u);
}

TEST(ObservationLogTest, BoundedBufferRejectsWithResourceExhausted) {
  PredictionService service(MakeSnapshot());
  ObservationLog::Options options;
  options.pending_capacity = 2;
  ObservationLog log(&service, options);
  const MixObservation obs = RangedObservation();

  EXPECT_TRUE(log.Ingest(obs).ok());
  EXPECT_TRUE(log.Ingest(obs).ok());
  auto overflow = log.Ingest(obs);
  EXPECT_EQ(overflow.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(log.pending(), 2u);
  EXPECT_EQ(log.rejected(), 1u);

  // Draining frees capacity again.
  EXPECT_EQ(log.Drain().observations.size(), 2u);
  EXPECT_TRUE(log.Ingest(obs).ok());
}

TEST(ObservationLogTest, OverflowDroppedCountsOnlyCapacityRejections) {
  PredictionService service(MakeSnapshot());
  ObservationLog::Options options;
  options.pending_capacity = 1;
  ObservationLog log(&service, options);
  const MixObservation good = RangedObservation();

  // A malformed record is rejected but NOT an overflow drop.
  MixObservation bad = good;
  bad.latency = units::Seconds(0.0);
  EXPECT_FALSE(log.Ingest(bad).ok());
  EXPECT_EQ(log.overflow_dropped(), 0u);

  ASSERT_TRUE(log.Ingest(good).ok());
  EXPECT_FALSE(log.Ingest(good).ok());
  EXPECT_FALSE(log.Ingest(good).ok());
  EXPECT_EQ(log.overflow_dropped(), 2u);
  EXPECT_EQ(log.rejected(), 3u);

  // Overflow -> drain -> re-ingest: the stream recovers completely, and
  // the overflow counter records history without blocking new records.
  EXPECT_EQ(log.Drain().observations.size(), 1u);
  ASSERT_TRUE(log.Ingest(good).ok());
  EXPECT_EQ(log.pending(), 1u);
  EXPECT_EQ(log.overflow_dropped(), 2u);
  EXPECT_EQ(log.ingested(), 2u);
}

TEST(ObservationLogTest, QuarantineParksRecordsInBoundedDeadLetter) {
  PredictionService service(MakeSnapshot());
  ObservationLog::Options options;
  options.dead_letter_capacity = 3;
  ObservationLog log(&service, options);
  const MixObservation obs = RangedObservation();

  log.Quarantine(std::vector<MixObservation>(2, obs));
  EXPECT_EQ(log.quarantined(), 2u);
  EXPECT_EQ(log.dead_letter_pending(), 2u);
  EXPECT_EQ(log.dead_letter_dropped(), 0u);

  // Past capacity the excess is dropped and counted, never unbounded.
  log.Quarantine(std::vector<MixObservation>(4, obs));
  EXPECT_EQ(log.quarantined(), 6u);
  EXPECT_EQ(log.dead_letter_pending(), 3u);
  EXPECT_EQ(log.dead_letter_dropped(), 3u);

  // Quarantined records never rejoin the pending (training) stream.
  EXPECT_EQ(log.pending(), 0u);
  std::vector<MixObservation> taken = log.TakeDeadLetter();
  EXPECT_EQ(taken.size(), 3u);
  EXPECT_EQ(log.dead_letter_pending(), 0u);
  EXPECT_EQ(log.quarantined(), 6u);  // lifetime counter survives the take
}

TEST(ObservationLogTest, IngestFailPointRejectsValidRecords) {
  auto& registry = FailPointRegistry::Global();
  PredictionService service(MakeSnapshot());
  ObservationLog log(&service);
  const MixObservation obs = RangedObservation();

  registry.ArmNthHit("serve.observation_log.ingest", 2);
  EXPECT_TRUE(log.Ingest(obs).ok());
  auto injected = log.Ingest(obs);
  EXPECT_EQ(injected.status().code(), StatusCode::kInternal);
  EXPECT_TRUE(log.Ingest(obs).ok());  // NthHit self-disarmed
  registry.DisarmAll();

  EXPECT_EQ(log.pending(), 2u);
  EXPECT_EQ(log.rejected(), 1u);
  EXPECT_EQ(log.overflow_dropped(), 0u);
}

TEST(ObservationLogTest, AcceptedResidualsFeedTheHealthTracker) {
  PredictionService::Options service_options;
  service_options.health = std::make_shared<HealthTracker>(
      static_cast<int>(SharedPredictor().profiles().size()));
  PredictionService service(MakeSnapshot(), service_options);
  ObservationLog log(&service);
  MixObservation obs = RangedObservation();

  ASSERT_TRUE(log.Ingest(obs).ok());
  EXPECT_EQ(service_options.health->records(), 1u);

  // Rejected records must not feed the breaker.
  MixObservation bad = obs;
  bad.latency = units::Seconds(0.0);
  EXPECT_FALSE(log.Ingest(bad).ok());
  EXPECT_EQ(service_options.health->records(), 1u);

  // A stream of wildly mispredicted observations trips the breaker.
  obs.latency = obs.latency * 50.0;
  for (int i = 0; i < 16; ++i) ASSERT_TRUE(log.Ingest(obs).ok());
  EXPECT_EQ(service_options.health->state(obs.primary_index),
            BreakerState::kOpen);
  EXPECT_GE(service_options.health->trips(), 1u);
}

}  // namespace
}  // namespace contender::serve

#include "serve/health.h"

#include <gtest/gtest.h>

#include <string>

namespace contender::serve {
namespace {

BreakerOptions TightOptions() {
  BreakerOptions options;
  options.error_threshold = 0.25;
  options.window = 8;
  options.min_samples = 4;
  options.open_cooldown = 3;
  options.half_open_probes = 2;
  return options;
}

TEST(NamesTest, TiersAndStatesHaveStableNames) {
  EXPECT_EQ(std::string(DegradationTierName(DegradationTier::kFullModel)),
            "full-model");
  EXPECT_EQ(std::string(DegradationTierName(DegradationTier::kTransferredQs)),
            "transferred-qs");
  EXPECT_EQ(
      std::string(DegradationTierName(DegradationTier::kIsolatedHeuristic)),
      "isolated-heuristic");
  EXPECT_EQ(std::string(BreakerStateName(BreakerState::kClosed)), "closed");
  EXPECT_EQ(std::string(BreakerStateName(BreakerState::kOpen)), "open");
  EXPECT_EQ(std::string(BreakerStateName(BreakerState::kHalfOpen)),
            "half-open");
}

TEST(CircuitBreakerTest, StaysClosedOnHealthyResiduals) {
  CircuitBreaker breaker(TightOptions());
  for (int i = 0; i < 100; ++i) breaker.Record(0.05);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  EXPECT_EQ(breaker.trips(), 0u);
}

TEST(CircuitBreakerTest, OneNoisyRecordCannotTrip) {
  CircuitBreaker breaker(TightOptions());
  // min_samples = 4: a single huge residual is not enough evidence.
  breaker.Record(100.0);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

TEST(CircuitBreakerTest, SustainedDriftTripsOpen) {
  CircuitBreaker breaker(TightOptions());
  for (int i = 0; i < 4; ++i) breaker.Record(0.5);
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.trips(), 1u);
}

TEST(CircuitBreakerTest, RollingWindowForgetsOldResiduals) {
  BreakerOptions options = TightOptions();
  options.window = 4;
  CircuitBreaker breaker(options);
  // Two bad then a stream of good: by the time min_samples is met the bad
  // ones still dominate the mean? 0.4+0.4+0.0+0.0 over 4 = 0.2 < 0.25, so
  // the breaker must hold closed — the window dilutes stale evidence.
  breaker.Record(0.4);
  breaker.Record(0.4);
  for (int i = 0; i < 20; ++i) breaker.Record(0.0);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

TEST(CircuitBreakerTest, OpenCoolsDownToHalfOpenThenCloses) {
  CircuitBreaker breaker(TightOptions());
  for (int i = 0; i < 4; ++i) breaker.Record(0.5);
  ASSERT_EQ(breaker.state(), BreakerState::kOpen);
  // open_cooldown = 3 records observed while open.
  breaker.Record(0.5);
  breaker.Record(0.5);
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  breaker.Record(0.5);
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  // half_open_probes = 2 consecutive healthy residuals close it.
  breaker.Record(0.1);
  EXPECT_EQ(breaker.state(), BreakerState::kHalfOpen);
  breaker.Record(0.1);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
}

TEST(CircuitBreakerTest, UnhealthyProbeReopensAndCountsATrip) {
  CircuitBreaker breaker(TightOptions());
  for (int i = 0; i < 4; ++i) breaker.Record(0.5);
  for (int i = 0; i < 3; ++i) breaker.Record(0.5);
  ASSERT_EQ(breaker.state(), BreakerState::kHalfOpen);
  breaker.Record(0.9);
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
  EXPECT_EQ(breaker.trips(), 2u);
}

TEST(CircuitBreakerTest, ReclosedBreakerJudgesAfresh) {
  CircuitBreaker breaker(TightOptions());
  for (int i = 0; i < 4; ++i) breaker.Record(0.5);
  for (int i = 0; i < 3; ++i) breaker.Record(0.5);
  breaker.Record(0.1);
  breaker.Record(0.1);
  ASSERT_EQ(breaker.state(), BreakerState::kClosed);
  // The poisoned window was cleared on trip: it takes min_samples fresh
  // bad residuals (not one) to trip again.
  breaker.Record(0.5);
  breaker.Record(0.5);
  breaker.Record(0.5);
  EXPECT_EQ(breaker.state(), BreakerState::kClosed);
  breaker.Record(0.5);
  EXPECT_EQ(breaker.state(), BreakerState::kOpen);
}

TEST(HealthTrackerTest, TracksTemplatesIndependently) {
  HealthTracker tracker(3, TightOptions());
  EXPECT_EQ(tracker.num_templates(), 3);
  for (int i = 0; i < 4; ++i) tracker.Record(1, 0.5);
  EXPECT_EQ(tracker.state(0), BreakerState::kClosed);
  EXPECT_EQ(tracker.state(1), BreakerState::kOpen);
  EXPECT_EQ(tracker.state(2), BreakerState::kClosed);
  EXPECT_FALSE(tracker.Degraded(0));
  EXPECT_TRUE(tracker.Degraded(1));
  EXPECT_EQ(tracker.trips(), 1u);
  EXPECT_EQ(tracker.records(), 4u);
  EXPECT_EQ(tracker.OpenTemplates(), std::vector<int>{1});
}

TEST(HealthTrackerTest, ImplementsSchedTemplateHealth) {
  HealthTracker tracker(2, TightOptions());
  sched::TemplateHealth* health = &tracker;
  EXPECT_FALSE(health->Degraded(0));
  for (int i = 0; i < 4; ++i) tracker.Record(0, 0.5);
  EXPECT_TRUE(health->Degraded(0));
}

}  // namespace
}  // namespace contender::serve

#include "serve/refit_controller.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "test_support.h"
#include "util/failpoint.h"
#include "util/retry.h"

namespace contender::serve {
namespace {

using contender::testing::SharedPredictor;
using contender::testing::SharedTrainingData;

std::shared_ptr<const ModelSnapshot> MakeSnapshot(uint64_t version = 1) {
  return ModelSnapshot::Create(SharedPredictor(), version);
}

// Up to `count` copies of the template's training observations with
// latencies scaled by `scale` but clamped under the §6.1 outlier cutoff
// (105% of the spoiler latency) so the refit cannot silently drop them.
std::vector<MixObservation> ShiftedObservations(int template_index,
                                                size_t count, double scale) {
  std::vector<MixObservation> shifted;
  const auto& profiles = SharedPredictor().profiles();
  for (const MixObservation& o : SharedTrainingData().observations) {
    if (o.primary_index != template_index) continue;
    MixObservation copy = o;
    copy.latency = copy.latency * scale;
    const auto& profile = profiles[static_cast<size_t>(template_index)];
    auto lmax = profile.spoiler_latency.find(o.mpl);
    if (lmax != profile.spoiler_latency.end() &&
        copy.latency > lmax->second * 1.04) {
      copy.latency = lmax->second * 1.04;
    }
    shifted.push_back(std::move(copy));
    if (shifted.size() == count) break;
  }
  return shifted;
}

struct Stack {
  Stack() : service(MakeSnapshot()), log(&service) {}
  PredictionService service;
  ObservationLog log;
};

TEST(RefitControllerTest, StepWithoutTriggerDoesNothing) {
  Stack s;
  RefitOptions options;
  options.min_new_observations = 8;
  options.residual_threshold = 0.10;
  options.drift_min_observations = 4;
  RefitController controller(&s.service, &s.log,
                             SharedTrainingData().observations, options);
  const size_t base = controller.training_set_size();

  // Empty log: nothing pending, nothing to do.
  auto idle = controller.Step();
  ASSERT_TRUE(idle.ok()) << idle.status();
  EXPECT_EQ(idle->trigger, RefitStep::Trigger::kNone);
  EXPECT_FALSE(idle->refit);

  // Three strongly drifted records: below both the count trigger (8) and
  // the drift quorum (4) — still nothing.
  for (const MixObservation& o : ShiftedObservations(2, 3, 1.3)) {
    ASSERT_TRUE(s.log.Ingest(o).ok());
  }
  auto below_quorum = controller.Step();
  ASSERT_TRUE(below_quorum.ok()) << below_quorum.status();
  EXPECT_EQ(below_quorum->trigger, RefitStep::Trigger::kNone);
  EXPECT_EQ(s.log.pending(), 3u);  // records stay pending for a later step
  EXPECT_EQ(s.service.snapshot()->version(), 1u);
  EXPECT_EQ(controller.refits(), 0u);
  EXPECT_EQ(controller.training_set_size(), base);
}

TEST(RefitControllerTest, CountTriggerRefitsTouchedTemplatesAndSwaps) {
  Stack s;
  RefitOptions options;
  options.min_new_observations = 12;
  RefitController controller(&s.service, &s.log,
                             SharedTrainingData().observations, options);
  const size_t base = controller.training_set_size();
  const auto old_snapshot = s.service.snapshot();

  const auto shifted = ShiftedObservations(3, 12, 1.25);
  ASSERT_EQ(shifted.size(), 12u);
  for (const MixObservation& o : shifted) {
    ASSERT_TRUE(s.log.Ingest(o).ok());
  }
  auto step = controller.Step();
  ASSERT_TRUE(step.ok()) << step.status();
  EXPECT_EQ(step->trigger, RefitStep::Trigger::kCount);
  EXPECT_TRUE(step->refit);
  EXPECT_EQ(step->observations_consumed, 12u);
  EXPECT_EQ(step->refit_templates, std::vector<int>{3});
  EXPECT_EQ(step->published_version, 2u);
  EXPECT_EQ(controller.refits(), 1u);
  EXPECT_EQ(controller.training_set_size(), base + 12);
  EXPECT_EQ(s.log.pending(), 0u);

  // The swap is visible to the service and the drifted template predicts
  // differently somewhere on its observed mixes.
  const auto new_snapshot = s.service.snapshot();
  EXPECT_EQ(new_snapshot->version(), 2u);
  EXPECT_EQ(s.service.publishes(), 1u);
  int changed = 0;
  for (const MixObservation& o : shifted) {
    if (new_snapshot->PredictInMix(o.primary_index, o.concurrent_indices) !=
        old_snapshot->PredictInMix(o.primary_index, o.concurrent_indices)) {
      ++changed;
    }
  }
  EXPECT_GT(changed, 0);

  // Untouched templates keep their exact models: the refit is surgical.
  EXPECT_EQ(new_snapshot->PredictInMix(7, {1, 2}),
            old_snapshot->PredictInMix(7, {1, 2}));
}

TEST(RefitControllerTest, DriftTriggerFiresOnResidualAlone) {
  Stack s;
  RefitOptions options;
  options.min_new_observations = 1000;  // count trigger out of reach
  options.residual_threshold = 1e-3;
  options.drift_min_observations = 4;
  RefitController controller(&s.service, &s.log,
                             SharedTrainingData().observations, options);

  for (const MixObservation& o : ShiftedObservations(5, 6, 1.3)) {
    ASSERT_TRUE(s.log.Ingest(o).ok());
  }
  ASSERT_GT(s.log.pending_mean_abs_residual(), options.residual_threshold);
  auto step = controller.Step();
  ASSERT_TRUE(step.ok()) << step.status();
  EXPECT_EQ(step->trigger, RefitStep::Trigger::kDrift);
  EXPECT_TRUE(step->refit);
  EXPECT_EQ(s.service.snapshot()->version(), 2u);
}

// The determinism contract: replaying the same ingest/step sequence on a
// fresh stack reproduces every post-refit prediction bit-exactly.
TEST(RefitControllerTest, ColdReplayReproducesPredictionsBitExactly) {
  auto run = [] {
    Stack s;
    RefitOptions options;
    options.min_new_observations = 10;
    RefitController controller(&s.service, &s.log,
                               SharedTrainingData().observations, options);
    for (const MixObservation& o : ShiftedObservations(2, 10, 1.2)) {
      CONTENDER_CHECK(s.log.Ingest(o).ok());
    }
    auto first = controller.Step();
    CONTENDER_CHECK(first.ok()) << first.status();
    for (const MixObservation& o : ShiftedObservations(6, 10, 0.85)) {
      CONTENDER_CHECK(s.log.Ingest(o).ok());
    }
    auto second = controller.Step();
    CONTENDER_CHECK(second.ok()) << second.status();

    const auto snapshot = s.service.snapshot();
    std::vector<units::Seconds> predictions;
    predictions.push_back(units::Seconds(
        static_cast<double>(snapshot->version())));
    for (int t = 0; t < snapshot->num_templates(); ++t) {
      predictions.push_back(snapshot->PredictInMix(t, {}));
      predictions.push_back(
          snapshot->PredictInMix(t, {(t + 1) % snapshot->num_templates()}));
      predictions.push_back(snapshot->PredictInMix(
          t, {(t + 3) % snapshot->num_templates(),
              (t + 7) % snapshot->num_templates()}));
    }
    return predictions;
  };
  const auto live = run();
  const auto replay = run();
  ASSERT_EQ(live.size(), replay.size());
  for (size_t i = 0; i < live.size(); ++i) {
    EXPECT_EQ(live[i], replay[i]) << "prediction " << i;
  }
}

// Failure-path suite: every test arms fail points, so each disarms on exit.
class RefitFailureTest : public ::testing::Test {
 protected:
  void TearDown() override { FailPointRegistry::Global().DisarmAll(); }

  static RefitOptions FailureOptions(FakeClock* clock) {
    RefitOptions options;
    options.min_new_observations = 8;
    options.refit_retry.max_attempts = 3;
    options.refit_retry.deadline = units::Seconds(60.0);
    options.clock = clock;
    return options;
  }

  FailPointRegistry& registry() { return FailPointRegistry::Global(); }
};

TEST_F(RefitFailureTest, ExhaustedFitQuarantinesBatchAndKeepsLiveSnapshot) {
  Stack s;
  FakeClock clock;
  RefitController controller(&s.service, &s.log,
                             SharedTrainingData().observations,
                             FailureOptions(&clock));
  const size_t base = controller.training_set_size();
  const auto live_before = s.service.snapshot();
  for (const MixObservation& o : ShiftedObservations(2, 8, 1.2)) {
    ASSERT_TRUE(s.log.Ingest(o).ok());
  }

  registry().ArmProbability("serve.refit.fit", 1.0);  // every attempt fails
  auto step = controller.Step();
  EXPECT_EQ(step.status().code(), StatusCode::kInternal);

  // The live snapshot is byte-for-byte the same object; nothing partial
  // was published and the committed training set is untouched.
  EXPECT_EQ(s.service.snapshot().get(), live_before.get());
  EXPECT_EQ(s.service.publishes(), 0u);
  EXPECT_EQ(controller.training_set_size(), base);
  EXPECT_EQ(controller.refits(), 0u);
  EXPECT_EQ(controller.failed_steps(), 1u);

  // The drained batch went to the dead-letter buffer, not back to pending.
  EXPECT_EQ(s.log.pending(), 0u);
  EXPECT_EQ(s.log.quarantined(), 8u);
  EXPECT_EQ(s.log.dead_letter_pending(), 8u);

  // All three attempts ran, with a seeded backoff sleep between each.
  EXPECT_EQ(clock.sleeps().size(), 2u);

  // The quarantined batch is replayable: after forensics clears the
  // fault, re-ingesting the dead letter drives a normal successful refit.
  registry().DisarmAll();
  for (const MixObservation& o : s.log.TakeDeadLetter()) {
    ASSERT_TRUE(s.log.Ingest(o).ok());
  }
  auto replay = controller.Step();
  ASSERT_TRUE(replay.ok()) << replay.status();
  EXPECT_TRUE(replay->refit);
  EXPECT_EQ(s.service.snapshot()->version(), 2u);
  EXPECT_EQ(controller.training_set_size(), base + 8);
}

TEST_F(RefitFailureTest, PublishAbortIsTerminalWithoutRetry) {
  Stack s;
  FakeClock clock;
  RefitController controller(&s.service, &s.log,
                             SharedTrainingData().observations,
                             FailureOptions(&clock));
  for (const MixObservation& o : ShiftedObservations(3, 8, 1.2)) {
    ASSERT_TRUE(s.log.Ingest(o).ok());
  }

  registry().ArmOnce("serve.refit.publish");
  auto step = controller.Step();
  EXPECT_EQ(step.status().code(), StatusCode::kAborted);

  // kAborted is non-retryable: one attempt, no backoff sleeps, and the
  // fitted-but-unpublished snapshot never reached the service.
  EXPECT_TRUE(clock.sleeps().empty());
  EXPECT_EQ(s.service.snapshot()->version(), 1u);
  EXPECT_EQ(s.service.publishes(), 0u);
  EXPECT_EQ(controller.failed_steps(), 1u);
  EXPECT_EQ(s.log.dead_letter_pending(), 8u);
}

TEST_F(RefitFailureTest, TransientFitFailureRetriesToSuccess) {
  Stack s;
  FakeClock clock;
  RefitController controller(&s.service, &s.log,
                             SharedTrainingData().observations,
                             FailureOptions(&clock));
  const size_t base = controller.training_set_size();
  for (const MixObservation& o : ShiftedObservations(4, 8, 1.2)) {
    ASSERT_TRUE(s.log.Ingest(o).ok());
  }

  registry().ArmNthHit("serve.refit.fit", 1);  // first attempt only
  auto step = controller.Step();
  ASSERT_TRUE(step.ok()) << step.status();
  EXPECT_TRUE(step->refit);
  EXPECT_EQ(step->published_version, 2u);
  EXPECT_EQ(clock.sleeps().size(), 1u);  // exactly one backoff
  EXPECT_EQ(controller.refits(), 1u);
  EXPECT_EQ(controller.failed_steps(), 0u);
  EXPECT_EQ(controller.training_set_size(), base + 8);
  EXPECT_EQ(s.log.dead_letter_pending(), 0u);
}

// Failure determinism: a run whose middle step exhausts its retries
// replays bit-exactly — same terminal status, same quarantine, and the
// same final predictions (the poisoned batch never contaminates the fit).
TEST_F(RefitFailureTest, ReplayAfterFailureIsBitExact) {
  auto run = [this] {
    Stack s;
    FakeClock clock;
    RefitController controller(&s.service, &s.log,
                               SharedTrainingData().observations,
                               FailureOptions(&clock));
    for (const MixObservation& o : ShiftedObservations(2, 8, 1.2)) {
      CONTENDER_CHECK(s.log.Ingest(o).ok());
    }
    auto ok_step = controller.Step();
    CONTENDER_CHECK(ok_step.ok()) << ok_step.status();

    registry().SetRootSeed(2026);
    registry().ArmProbability("serve.refit.fit", 1.0);
    for (const MixObservation& o : ShiftedObservations(6, 8, 0.9)) {
      CONTENDER_CHECK(s.log.Ingest(o).ok());
    }
    auto failed = controller.Step();
    CONTENDER_CHECK(!failed.ok());
    registry().DisarmAll();

    const auto snapshot = s.service.snapshot();
    std::vector<double> out;
    out.push_back(static_cast<double>(snapshot->version()));
    out.push_back(static_cast<double>(s.log.dead_letter_pending()));
    for (units::Seconds sleep : clock.sleeps()) out.push_back(sleep.value());
    for (int t = 0; t < snapshot->num_templates(); ++t) {
      out.push_back(snapshot->PredictInMix(t, {(t + 1) % 25}).value());
    }
    return out;
  };
  EXPECT_EQ(run(), run());
}

TEST(RefitControllerTest, BackgroundModeRunsTheSameStep) {
  Stack s;
  RefitOptions options;
  options.min_new_observations = 8;
  RefitController controller(&s.service, &s.log,
                             SharedTrainingData().observations, options);
  for (const MixObservation& o : ShiftedObservations(4, 8, 1.2)) {
    ASSERT_TRUE(s.log.Ingest(o).ok());
  }
  controller.StartBackground(std::chrono::milliseconds(5));
  // Wait (bounded) for the background loop to pick up the pending batch.
  for (int i = 0; i < 2000 && controller.refits() == 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  controller.Stop();
  EXPECT_EQ(controller.refits(), 1u);
  EXPECT_EQ(s.service.snapshot()->version(), 2u);
  // Stop is idempotent and restart works.
  controller.Stop();
  controller.StartBackground(std::chrono::milliseconds(5));
  controller.Stop();
}

}  // namespace
}  // namespace contender::serve

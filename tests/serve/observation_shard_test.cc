// Shard-merge determinism for the sharded ObservationLog: Drain's merged
// batch must be bit-identical — same record order, same replayed residual
// summary — to a single-shard log fed the canonical merged order
// sequentially. Randomized placements (seeded Rng, several trials) prove
// the property does not depend on how records landed across shards; the
// single-thread test proves a lone producer is indistinguishable from the
// unsharded implementation.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "serve/observation_log.h"
#include "serve/service.h"
#include "test_support.h"
#include "util/random.h"

namespace contender::serve {
namespace {

using contender::testing::SharedPredictor;
using contender::testing::SharedTrainingData;

PredictionService& SharedService() {
  static PredictionService* service = new PredictionService(
      ModelSnapshot::Create(SharedPredictor(), 1));
  return *service;
}

// A pool of valid observations to ingest (latencies perturbed so
// residuals are non-trivial and distinct).
std::vector<MixObservation> ObservationPool(size_t count) {
  const auto& base = SharedTrainingData().observations;
  std::vector<MixObservation> pool;
  pool.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    MixObservation obs = base[i % base.size()];
    obs.latency = obs.latency * (1.0 + 0.01 * static_cast<double>(i % 37));
    pool.push_back(std::move(obs));
  }
  return pool;
}

void ExpectSameObservation(const MixObservation& got,
                           const MixObservation& want, size_t at) {
  EXPECT_EQ(got.primary_index, want.primary_index) << "record " << at;
  EXPECT_EQ(got.concurrent_indices, want.concurrent_indices)
      << "record " << at;
  EXPECT_EQ(got.mpl, want.mpl) << "record " << at;
  EXPECT_EQ(got.latency.value(), want.latency.value()) << "record " << at;
}

TEST(ObservationShardTest, SingleThreadProducerLandsInExactlyOneShard) {
  ObservationLog::Options options;
  options.num_shards = 8;
  ObservationLog log(&SharedService(), options);
  const auto pool = ObservationPool(24);

  int home_shard = -1;
  for (const MixObservation& obs : pool) {
    auto result = log.Ingest(obs);
    ASSERT_TRUE(result.ok()) << result.status();
    if (home_shard < 0) home_shard = result->shard;
    // One thread, one shard — the precondition for single-threaded
    // bit-exactness with the unsharded implementation.
    EXPECT_EQ(result->shard, home_shard);
  }
  // Drain order == ingest order (one shard's sequence IS the merge).
  const ObservationBatch batch = log.Drain();
  ASSERT_EQ(batch.observations.size(), pool.size());
  for (size_t i = 0; i < pool.size(); ++i) {
    ExpectSameObservation(batch.observations[i], pool[i], i);
  }
}

// The core property, over randomized placements: scatter records across
// shards, read off the canonical merged order (shard 0's records in
// ingest order, then shard 1's, ...), feed that order sequentially into a
// single-shard log — both logs must drain bit-identically.
TEST(ObservationShardTest, MergedDrainBitIdenticalToSequentialSingleShard) {
  constexpr int kTrials = 4;
  constexpr int kShards = 4;
  constexpr size_t kRecords = 64;
  for (int trial = 0; trial < kTrials; ++trial) {
    Rng rng(7700 + static_cast<uint64_t>(trial));
    const auto pool = ObservationPool(kRecords);

    ObservationLog::Options sharded_options;
    sharded_options.num_shards = kShards;
    ObservationLog sharded(&SharedService(), sharded_options);

    std::vector<std::vector<MixObservation>> per_shard(kShards);
    for (const MixObservation& obs : pool) {
      const int shard = static_cast<int>(rng.UniformInt(kShards));
      auto result = sharded.IngestInShard(shard, obs);
      ASSERT_TRUE(result.ok()) << result.status();
      ASSERT_EQ(result->shard, shard);
      per_shard[static_cast<size_t>(shard)].push_back(obs);
    }

    ObservationLog::Options single_options;
    single_options.num_shards = 1;
    ObservationLog single(&SharedService(), single_options);
    std::vector<MixObservation> canonical;
    for (const auto& records : per_shard) {
      for (const MixObservation& obs : records) {
        canonical.push_back(obs);
        ASSERT_TRUE(single.Ingest(obs).ok());
      }
    }

    // The pre-drain trigger statistic replays the same merged order.
    EXPECT_EQ(sharded.pending_mean_abs_residual(),
              single.pending_mean_abs_residual());

    ObservationBatch merged = sharded.Drain();
    ObservationBatch sequential = single.Drain();
    ASSERT_EQ(merged.observations.size(), canonical.size());
    ASSERT_EQ(sequential.observations.size(), canonical.size());
    for (size_t i = 0; i < canonical.size(); ++i) {
      ExpectSameObservation(merged.observations[i], canonical[i], i);
      ExpectSameObservation(merged.observations[i],
                            sequential.observations[i], i);
    }
    // Bit-identical, not approximately equal: the summary is replayed in
    // merged order, never combined via moment merging.
    EXPECT_EQ(merged.mean_abs_residual, sequential.mean_abs_residual);
  }
}

TEST(ObservationShardTest, ConcurrentIngestConservesEveryRecord) {
  ObservationLog::Options options;
  options.num_shards = 8;
  ObservationLog log(&SharedService(), options);
  constexpr int kThreads = 4;
  constexpr size_t kPerThread = 200;
  const auto pool = ObservationPool(kPerThread);

  std::vector<std::thread> producers;
  producers.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    producers.emplace_back([&pool, &log] {
      for (const MixObservation& obs : pool) {
        ASSERT_TRUE(log.Ingest(obs).ok());
      }
    });
  }
  for (std::thread& t : producers) t.join();

  EXPECT_EQ(log.ingested(), kThreads * kPerThread);
  EXPECT_EQ(log.pending(), kThreads * kPerThread);
  const ObservationBatch batch = log.Drain();
  EXPECT_EQ(batch.observations.size(), kThreads * kPerThread);
  EXPECT_EQ(log.pending(), 0u);
  EXPECT_GT(batch.mean_abs_residual, 0.0);
}

TEST(ObservationShardTest, CapacityIsGlobalAcrossShards) {
  ObservationLog::Options options;
  options.num_shards = 4;
  options.pending_capacity = 6;
  ObservationLog log(&SharedService(), options);
  const auto pool = ObservationPool(8);

  for (size_t i = 0; i < 6; ++i) {
    ASSERT_TRUE(log.IngestInShard(static_cast<int>(i), pool[i]).ok());
  }
  // Full across shards: the 7th record is rejected no matter which shard
  // it targets.
  auto overflow = log.IngestInShard(3, pool[6]);
  ASSERT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(log.overflow_dropped(), 1u);
  EXPECT_EQ(log.pending(), 6u);
  // Draining frees the budget again.
  EXPECT_EQ(log.Drain().observations.size(), 6u);
  EXPECT_TRUE(log.IngestInShard(0, pool[7]).ok());
}

}  // namespace
}  // namespace contender::serve

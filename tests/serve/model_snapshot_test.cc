#include "serve/model_snapshot.h"

#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "sched/mix_oracle.h"
#include "test_support.h"

namespace contender::serve {
namespace {

using contender::testing::SharedPredictor;

std::shared_ptr<const ModelSnapshot> MakeSnapshot(uint64_t version = 1) {
  return ModelSnapshot::Create(SharedPredictor(), version);
}

TEST(ModelSnapshotTest, CarriesVersionAndWorkload) {
  const auto snapshot = MakeSnapshot(7);
  EXPECT_EQ(snapshot->version(), 7u);
  EXPECT_EQ(snapshot->num_templates(),
            static_cast<int>(SharedPredictor().profiles().size()));
}

TEST(ModelSnapshotTest, EmptyMixYieldsIsolatedLatency) {
  const auto snapshot = MakeSnapshot();
  for (int t = 0; t < snapshot->num_templates(); ++t) {
    EXPECT_EQ(snapshot->PredictInMix(t, {}), snapshot->IsolatedLatency(t));
    EXPECT_EQ(snapshot->IsolatedLatency(t),
              SharedPredictor()
                  .profiles()[static_cast<size_t>(t)]
                  .isolated_latency);
  }
}

TEST(ModelSnapshotTest, LockFreePathMatchesOracleBitExactly) {
  const auto snapshot = MakeSnapshot();
  const int n = snapshot->num_templates();
  for (int t = 0; t < n; t += 3) {
    for (const std::vector<int>& mix :
         {std::vector<int>{(t + 1) % n},
          std::vector<int>{(t + 2) % n, (t + 5) % n},
          std::vector<int>{(t + 1) % n, (t + 3) % n, (t + 7) % n}}) {
      const units::Seconds direct = snapshot->PredictInMix(t, mix);
      const units::Seconds cached = snapshot->oracle().PredictInMix(t, mix);
      EXPECT_EQ(direct, cached) << "template " << t;
      EXPECT_EQ(direct, sched::PredictInMixUncached(snapshot->predictor(),
                                                    t, mix));
    }
  }
  EXPECT_GT(snapshot->oracle().misses(), 0u);
}

TEST(ModelSnapshotTest, PredictionIsOrderInsensitive) {
  const auto snapshot = MakeSnapshot();
  EXPECT_EQ(snapshot->PredictInMix(0, {1, 2, 3}),
            snapshot->PredictInMix(0, {3, 1, 2}));
}

TEST(ModelSnapshotTest, UncoveredMplFallsBackToIsolatedLatency) {
  const auto snapshot = MakeSnapshot();
  // MPL 10 has no reference models; the answer degrades to l_min.
  const std::vector<int> huge_mix = {1, 2, 3, 4, 5, 6, 7, 8, 9};
  EXPECT_EQ(snapshot->PredictInMix(0, huge_mix),
            snapshot->IsolatedLatency(0));
  bool used_fallback = false;
  (void)sched::PredictInMixUncached(snapshot->predictor(), 0, huge_mix,
                                    &used_fallback);
  EXPECT_TRUE(used_fallback);
}

TEST(ModelSnapshotTest, OracleMemoizesRepeatedProbes) {
  const auto snapshot = MakeSnapshot();
  const std::vector<int> mix = {1, 2};
  const units::Seconds first = snapshot->oracle().PredictInMix(3, mix);
  const uint64_t misses = snapshot->oracle().misses();
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(snapshot->oracle().PredictInMix(3, mix), first);
  }
  EXPECT_EQ(snapshot->oracle().misses(), misses);
  EXPECT_GE(snapshot->oracle().hits(), 5u);
}

}  // namespace
}  // namespace contender::serve

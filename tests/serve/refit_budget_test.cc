// Satellite: the refit controller under an exhausted retry budget. A
// chaos-failing fit whose tenant budget is dry must be denied BEFORE any
// backoff sleep (FakeClock records none), surface kResourceExhausted,
// and still quarantine the drained batch into the dead-letter buffer —
// budget denial changes how fast the step gives up, never what happens
// to the data.

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

#include "overload/retry_budget.h"
#include "serve/refit_controller.h"
#include "test_support.h"
#include "util/failpoint.h"
#include "util/retry.h"

namespace contender::serve {
namespace {

using contender::testing::SharedPredictor;
using contender::testing::SharedTrainingData;

std::vector<MixObservation> DriftedObservations(int template_index,
                                                size_t count) {
  std::vector<MixObservation> drifted;
  const auto& profiles = SharedPredictor().profiles();
  for (const MixObservation& o : SharedTrainingData().observations) {
    if (o.primary_index != template_index) continue;
    MixObservation copy = o;
    copy.latency = copy.latency * 1.2;
    const auto& profile = profiles[static_cast<size_t>(template_index)];
    auto lmax = profile.spoiler_latency.find(o.mpl);
    if (lmax != profile.spoiler_latency.end() &&
        copy.latency > lmax->second * 1.04) {
      copy.latency = lmax->second * 1.04;
    }
    drifted.push_back(std::move(copy));
    if (drifted.size() == count) break;
  }
  return drifted;
}

class RefitBudgetTest : public ::testing::Test {
 protected:
  void TearDown() override { FailPointRegistry::Global().DisarmAll(); }

  static RefitOptions BudgetOptions(FakeClock* clock,
                                    overload::RetryBudget* budget) {
    RefitOptions options;
    options.min_new_observations = 8;
    options.refit_retry.max_attempts = 4;
    options.refit_retry.deadline = units::Seconds(60.0);
    options.clock = clock;
    options.retry_budget = budget;
    options.retry_budget_key = 1;
    return options;
  }
};

TEST_F(RefitBudgetTest, ExhaustedBudgetDeniesBeforeSleepAndQuarantines) {
  PredictionService service(ModelSnapshot::Create(SharedPredictor(), 1));
  ObservationLog log(&service);
  FakeClock clock;
  // One retry's worth of tokens and no refill headroom.
  overload::RetryBudgetOptions budget_options;
  budget_options.deposit_per_attempt = 0.0;
  budget_options.withdraw_per_retry = 10.0;
  budget_options.initial_balance = 0.0;
  budget_options.max_balance = 10.0;
  overload::RetryBudget budget(budget_options);

  RefitController controller(&service, &log,
                             SharedTrainingData().observations,
                             BudgetOptions(&clock, &budget));
  const size_t base = controller.training_set_size();
  for (const MixObservation& o : DriftedObservations(2, 8)) {
    ASSERT_TRUE(log.Ingest(o).ok());
  }

  FailPointRegistry::Global().ArmProbability("serve.refit.fit", 1.0);
  auto step = controller.Step();

  // The first fit attempt failed; the retry was denied by the dry
  // budget, surfaced as the budget's own status, with zero sleeps —
  // denial happens before the backoff, not after it.
  EXPECT_EQ(step.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(step.status().message().find("retry budget"),
            std::string::npos)
      << step.status();
  EXPECT_TRUE(clock.sleeps().empty());
  EXPECT_EQ(budget.denials(), 1u);
  EXPECT_EQ(budget.withdrawals(), 0u);

  // The failed step still runs the full quarantine protocol: batch to
  // the dead-letter buffer, live snapshot untouched, failure counted.
  EXPECT_EQ(controller.failed_steps(), 1u);
  EXPECT_EQ(controller.refits(), 0u);
  EXPECT_EQ(controller.training_set_size(), base);
  EXPECT_EQ(service.snapshot()->version(), 1u);
  EXPECT_EQ(service.publishes(), 0u);
  EXPECT_EQ(log.pending(), 0u);
  EXPECT_EQ(log.quarantined(), 8u);
  EXPECT_EQ(log.dead_letter_pending(), 8u);

  // The dead letter is replayable once the fault clears and the budget
  // is no longer consulted (the fit succeeds on its first attempt).
  FailPointRegistry::Global().DisarmAll();
  for (const MixObservation& o : log.TakeDeadLetter()) {
    ASSERT_TRUE(log.Ingest(o).ok());
  }
  auto replay = controller.Step();
  ASSERT_TRUE(replay.ok()) << replay.status();
  EXPECT_TRUE(replay->refit);
  EXPECT_EQ(service.snapshot()->version(), 2u);
}

TEST_F(RefitBudgetTest, FundedBudgetRidesOutTransientFitFailures) {
  PredictionService service(ModelSnapshot::Create(SharedPredictor(), 1));
  ObservationLog log(&service);
  FakeClock clock;
  overload::RetryBudget budget;  // defaults: 20 initial, 10 per retry

  RefitController controller(&service, &log,
                             SharedTrainingData().observations,
                             BudgetOptions(&clock, &budget));
  for (const MixObservation& o : DriftedObservations(3, 8)) {
    ASSERT_TRUE(log.Ingest(o).ok());
  }

  FailPointRegistry::Global().ArmNthHit("serve.refit.fit", 1);
  auto step = controller.Step();
  ASSERT_TRUE(step.ok()) << step.status();
  EXPECT_TRUE(step->refit);
  EXPECT_EQ(clock.sleeps().size(), 1u) << "one paid backoff retry";
  EXPECT_EQ(budget.withdrawals(), 1u);
  EXPECT_EQ(budget.denials(), 0u);
  EXPECT_EQ(controller.failed_steps(), 0u);
  EXPECT_EQ(service.snapshot()->version(), 2u);
}

TEST_F(RefitBudgetTest, BudgetDenialReplaysBitExactly) {
  auto run = [] {
    PredictionService service(ModelSnapshot::Create(SharedPredictor(), 1));
    ObservationLog log(&service);
    FakeClock clock;
    overload::RetryBudgetOptions budget_options;
    budget_options.deposit_per_attempt = 0.0;
    budget_options.initial_balance = 0.0;
    budget_options.max_balance = 0.0;
    overload::RetryBudget budget(budget_options);
    RefitController controller(&service, &log,
                               SharedTrainingData().observations,
                               BudgetOptions(&clock, &budget));
    for (const MixObservation& o : DriftedObservations(4, 8)) {
      CONTENDER_CHECK(log.Ingest(o).ok());
    }
    FailPointRegistry::Global().SetRootSeed(5);
    FailPointRegistry::Global().ArmProbability("serve.refit.fit", 1.0);
    auto step = controller.Step();
    FailPointRegistry::Global().DisarmAll();
    return std::make_tuple(step.status().code(), clock.sleeps().size(),
                           log.dead_letter_pending(),
                           service.snapshot()->version());
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace contender::serve

#include "serve/service.h"

#include <gtest/gtest.h>

#include <memory>
#include <utility>
#include <vector>

#include "test_support.h"
#include "util/random.h"

namespace contender::serve {
namespace {

using contender::testing::SharedPredictor;

std::shared_ptr<const ModelSnapshot> MakeSnapshot(uint64_t version = 1) {
  return ModelSnapshot::Create(SharedPredictor(), version);
}

// Deterministic request stream over the shared workload: mixes of size
// 0..3 (MPL 1..4) with seeded template draws.
std::vector<PredictRequest> MakeRequests(size_t count, uint64_t seed,
                                         int num_templates) {
  Rng rng(seed);
  std::vector<PredictRequest> requests;
  requests.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    PredictRequest r;
    r.template_index =
        static_cast<int>(rng.UniformInt(static_cast<size_t>(num_templates)));
    const size_t mix_size = rng.UniformInt(4);
    for (size_t j = 0; j < mix_size; ++j) {
      r.concurrent.push_back(static_cast<int>(
          rng.UniformInt(static_cast<size_t>(num_templates))));
    }
    requests.push_back(std::move(r));
  }
  return requests;
}

TEST(PredictionServiceTest, PredictMatchesSnapshotBitExactly) {
  PredictionService service(MakeSnapshot());
  const auto snapshot = service.snapshot();
  for (const PredictRequest& r :
       MakeRequests(50, 7, snapshot->num_templates())) {
    auto got = service.Predict(r.template_index, r.concurrent);
    ASSERT_TRUE(got.ok()) << got.status();
    EXPECT_EQ(*got, snapshot->PredictInMix(r.template_index, r.concurrent));
  }
  EXPECT_EQ(service.served(), 50u);
}

TEST(PredictionServiceTest, RejectsOutOfRangeIndices) {
  PredictionService service(MakeSnapshot());
  const int n = service.snapshot()->num_templates();
  const std::vector<std::pair<int, std::vector<int>>> malformed = {
      {-1, {}}, {n, {}}, {0, {n}}, {0, {1, -2}}};
  for (const auto& [t, mix] : malformed) {
    auto got = service.Predict(t, mix);
    EXPECT_FALSE(got.ok());
    EXPECT_EQ(got.status().code(), StatusCode::kInvalidArgument);
  }
}

TEST(PredictionServiceTest, BatchIsBitIdenticalAcrossPoolWidths) {
  const auto snapshot = MakeSnapshot();
  const auto requests = MakeRequests(120, 11, snapshot->num_templates());

  PredictionService::Options wide;
  wide.num_threads = 4;
  wide.inline_batch_limit = 8;
  PredictionService pooled(snapshot, wide);

  PredictionService::Options narrow;
  narrow.num_threads = 1;  // forces the inline path
  PredictionService inline_service(snapshot, narrow);

  const auto a = pooled.PredictBatch(requests);
  const auto b = inline_service.PredictBatch(requests);
  ASSERT_EQ(a.size(), requests.size());
  ASSERT_EQ(b.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    ASSERT_TRUE(a[i].status.ok()) << a[i].status;
    EXPECT_EQ(a[i].latency, b[i].latency) << "request " << i;
    EXPECT_EQ(a[i].latency,
              snapshot->PredictInMix(requests[i].template_index,
                                     requests[i].concurrent));
    EXPECT_EQ(a[i].snapshot_version, snapshot->version());
  }
  EXPECT_EQ(pooled.served(), requests.size());
}

TEST(PredictionServiceTest, BatchFlagsMalformedEntriesPositionally) {
  PredictionService service(MakeSnapshot());
  std::vector<PredictRequest> batch(3);
  batch[0].template_index = 0;
  batch[1].template_index = -5;  // malformed
  batch[2].template_index = 1;
  batch[2].concurrent = {0};
  const auto results = service.PredictBatch(batch);
  ASSERT_EQ(results.size(), 3u);
  EXPECT_TRUE(results[0].status.ok());
  EXPECT_EQ(results[1].status.code(), StatusCode::kInvalidArgument);
  EXPECT_TRUE(results[2].status.ok());
  EXPECT_TRUE(service.PredictBatch({}).empty());
}

TEST(PredictionServiceTest, PublishHotSwapsWithoutInvalidatingReaders) {
  PredictionService service(MakeSnapshot(1));
  const auto old_snapshot = service.snapshot();
  const units::Seconds before = old_snapshot->PredictInMix(2, {3, 4});

  service.Publish(MakeSnapshot(9));
  EXPECT_EQ(service.snapshot()->version(), 9u);
  EXPECT_EQ(service.publishes(), 1u);

  // The retained handle still answers, bit-identically to before the swap.
  EXPECT_EQ(old_snapshot->version(), 1u);
  EXPECT_EQ(old_snapshot->PredictInMix(2, {3, 4}), before);

  auto after = service.Predict(2, {3, 4});
  ASSERT_TRUE(after.ok()) << after.status();
  EXPECT_EQ(*after, before);  // same models, new version
}

}  // namespace
}  // namespace contender::serve

// Concurrency torture for the serving layer: N client threads predict
// (singles and batches) while the main thread ingests observations and
// hot-swaps refit snapshots through RefitController::Step(). TSAN-clean by
// construction: clients copy the snapshot handle in a one-pointer critical
// section and predict with no lock held; the publisher's swap is equally
// brief, so it never stalls them.
//
// Correctness oracle: the main thread is the only publisher, so right
// after each Step() it can retain the exact snapshot for every version
// ever served. Each batch answer is stamped with its snapshot version;
// after the run every recorded answer must bit-equal a recompute on the
// retained snapshot of that version — proving each batch was answered by
// one consistent snapshot even while swaps were in flight.

#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "serve/refit_controller.h"
#include "test_support.h"
#include "util/random.h"

namespace contender::serve {
namespace {

using contender::testing::SharedPredictor;
using contender::testing::SharedTrainingData;

struct RecordedAnswer {
  PredictRequest request;
  units::Seconds latency;
  uint64_t snapshot_version = 0;
};

PredictRequest DrawRequest(Rng* rng, int num_templates) {
  PredictRequest r;
  r.template_index = static_cast<int>(
      rng->UniformInt(static_cast<uint64_t>(num_templates)));
  const uint64_t mix_size = rng->UniformInt(4);
  for (uint64_t j = 0; j < mix_size; ++j) {
    r.concurrent.push_back(static_cast<int>(
        rng->UniformInt(static_cast<uint64_t>(num_templates))));
  }
  return r;
}

TEST(ConcurrentServeTest, ClientsStayConsistentAcrossHotSwaps) {
  PredictionService::Options service_options;
  service_options.num_threads = 2;
  service_options.inline_batch_limit = 4;
  PredictionService service(ModelSnapshot::Create(SharedPredictor(), 1),
                            service_options);
  ObservationLog log(&service);
  RefitOptions refit_options;
  refit_options.min_new_observations = 16;
  RefitController controller(&service, &log,
                             SharedTrainingData().observations,
                             refit_options);

  const int num_templates = service.snapshot()->num_templates();
  constexpr int kClients = 4;
  constexpr int kIterations = 120;
  constexpr int kRefitRounds = 4;

  // Only this (main) thread publishes, so snapshot() right after a Step is
  // exactly the snapshot serving that version.
  std::map<uint64_t, std::shared_ptr<const ModelSnapshot>> by_version;
  by_version[1] = service.snapshot();

  std::vector<std::vector<RecordedAnswer>> recorded(kClients);
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([c, num_templates, &service, &log, &recorded] {
      Rng rng(1000 + static_cast<uint64_t>(c));
      for (int i = 0; i < kIterations; ++i) {
        if (i % 3 == 0) {
          std::vector<PredictRequest> batch;
          for (int j = 0; j < 6; ++j) {
            batch.push_back(DrawRequest(&rng, num_templates));
          }
          const auto results = service.PredictBatch(batch);
          for (size_t j = 0; j < results.size(); ++j) {
            ASSERT_TRUE(results[j].status.ok()) << results[j].status;
            recorded[static_cast<size_t>(c)].push_back(
                {batch[j], results[j].latency, results[j].snapshot_version});
          }
        } else {
          const PredictRequest r = DrawRequest(&rng, num_templates);
          auto got = service.Predict(r.template_index, r.concurrent);
          ASSERT_TRUE(got.ok()) << got.status();
          EXPECT_GT(*got, units::Seconds(0.0));
        }
        if (i % 20 == 7) {
          // Clients also ingest live observations concurrently with the
          // publisher's drains.
          MixObservation obs;
          obs.primary_index = static_cast<int>(
              rng.UniformInt(static_cast<uint64_t>(num_templates)));
          obs.concurrent_indices = {static_cast<int>(
              rng.UniformInt(static_cast<uint64_t>(num_templates)))};
          obs.mpl = 2;
          obs.latency = units::Seconds(1.0 + rng.Uniform01());
          (void)log.Ingest(obs);
        }
      }
    });
  }

  // Publisher loop: ingest a refit batch and hot-swap, concurrently with
  // the clients above.
  const auto& base = SharedTrainingData().observations;
  size_t next_obs = 0;
  for (int round = 0; round < kRefitRounds; ++round) {
    for (size_t i = 0; i < refit_options.min_new_observations; ++i) {
      const MixObservation& o = base[next_obs++ % base.size()];
      MixObservation copy = o;
      copy.latency = copy.latency * (round % 2 == 0 ? 1.15 : 0.9);
      ASSERT_TRUE(log.Ingest(copy).ok());
    }
    auto step = controller.Step();
    ASSERT_TRUE(step.ok()) << step.status();
    if (step->refit) {
      by_version[step->published_version] = service.snapshot();
    }
  }
  for (std::thread& t : clients) t.join();

  // Every recorded answer must match a recompute on the snapshot of the
  // version that stamped it.
  size_t checked = 0;
  for (const auto& per_client : recorded) {
    for (const RecordedAnswer& answer : per_client) {
      auto it = by_version.find(answer.snapshot_version);
      ASSERT_NE(it, by_version.end())
          << "answer stamped with unknown version "
          << answer.snapshot_version;
      EXPECT_EQ(answer.latency,
                it->second->PredictInMix(answer.request.template_index,
                                         answer.request.concurrent));
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
  EXPECT_GE(controller.refits(), 1u);
  EXPECT_GE(service.served(), static_cast<uint64_t>(kClients * kIterations));
}

}  // namespace
}  // namespace contender::serve

// Torn-read stress for the lock-free serving read path (DESIGN.md §12):
// eight reader threads hammer Predict/PredictDetailed while the main
// thread hot-swaps snapshots as fast as it can. Every answer must be
// internally consistent with EXACTLY ONE published snapshot — the version
// stamp and the latency must recompute bit-identically on the retained
// snapshot of that version — and every tier stamp must be truthful (the
// tier the ladder actually used, including when a breaker is held open).
// The SnapshotHolder-level test asserts the seqlock pair itself: a view's
// version always matches the version of the snapshot it points at, no
// matter how often the writer churns.

#include <gtest/gtest.h>

#include <atomic>
#include <map>
#include <memory>
#include <thread>
#include <vector>

#include "serve/observation_log.h"
#include "serve/service.h"
#include "serve/snapshot_holder.h"
#include "test_support.h"
#include "util/random.h"

namespace contender::serve {
namespace {

using contender::testing::SharedPredictor;

constexpr int kReaders = 8;
constexpr uint64_t kVersions = 48;
// Publishers run until the readers collectively report this much progress
// (progress-coupled, so the stress overlaps for real on any core count —
// a fixed publish count can finish before a reader is ever scheduled on a
// small machine), capped to bound the runtime.
constexpr uint64_t kMinProgress = 2000;
constexpr uint64_t kMaxPublishes = 200000;

struct StampedAnswer {
  PredictRequest request;
  units::Seconds latency;
  DegradationTier tier = DegradationTier::kFullModel;
  uint64_t snapshot_version = 0;
};

PredictRequest DrawRequest(Rng* rng, int num_templates) {
  PredictRequest r;
  r.template_index = static_cast<int>(
      rng->UniformInt(static_cast<uint64_t>(num_templates)));
  const uint64_t mix_size = rng->UniformInt(4);
  for (uint64_t j = 0; j < mix_size; ++j) {
    r.concurrent.push_back(static_cast<int>(
        rng->UniformInt(static_cast<uint64_t>(num_templates))));
  }
  return r;
}

// Pre-built snapshots so the publisher loop is nothing but Publish calls —
// the highest swap frequency the holder can experience.
std::vector<std::shared_ptr<const ModelSnapshot>> BuildSnapshots(
    uint64_t first_version, uint64_t count) {
  std::vector<std::shared_ptr<const ModelSnapshot>> snapshots;
  snapshots.reserve(count);
  for (uint64_t v = 0; v < count; ++v) {
    snapshots.push_back(
        ModelSnapshot::Create(SharedPredictor(), first_version + v));
  }
  return snapshots;
}

TEST(SnapshotHolderStressTest, ViewsAlwaysPairPointerAndVersion) {
  auto snapshots = BuildSnapshots(1, kVersions);
  SnapshotHolder holder(snapshots[0]);
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> mismatches{0};
  std::atomic<uint64_t> fast_path{0};
  std::atomic<uint64_t> views{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        const SnapshotHolder::View view = holder.Acquire();
        views.fetch_add(1, std::memory_order_relaxed);
        // The seqlock publishes {pointer, version} as one unit: a view
        // whose stamp disagrees with its snapshot is a torn read.
        if (view.version() != view->version() || view.version() == 0 ||
            view.version() > kVersions) {
          mismatches.fetch_add(1, std::memory_order_relaxed);
        }
        if (view.lock_free()) {
          fast_path.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  uint64_t published = 0;
  while (views.load(std::memory_order_relaxed) < kMinProgress &&
         published < kMaxPublishes) {
    holder.Publish(snapshots[++published % kVersions]);
    if ((published & 63) == 0) std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(mismatches.load(), 0u);
  EXPECT_GE(views.load(), kMinProgress);
  // The lock-free fast path must actually engage (the fallback exists for
  // slot saturation, which eight readers cannot cause).
  EXPECT_GT(fast_path.load(), 0u);
  // No readers left: one more publish retires and reclaims everything.
  holder.Publish(snapshots[0]);
  EXPECT_EQ(holder.retired_pending(), 0u);
}

TEST(SnapshotStressTest, EveryAnswerMatchesExactlyOnePublishedSnapshot) {
  auto snapshots = BuildSnapshots(1, kVersions);
  PredictionService::Options options;
  options.num_threads = 2;
  options.inline_batch_limit = 4;
  PredictionService service(snapshots[0], options);
  const int num_templates = service.snapshot()->num_templates();

  // Main thread is the only publisher, so it can retain the exact
  // snapshot behind every version ever served.
  std::map<uint64_t, std::shared_ptr<const ModelSnapshot>> by_version;
  for (uint64_t v = 0; v < kVersions; ++v) {
    by_version[snapshots[v]->version()] = snapshots[v];
  }

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> answers{0};
  std::vector<std::vector<StampedAnswer>> recorded(kReaders);
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back(
        [r, num_templates, &service, &stop, &recorded, &answers] {
          Rng rng(9000 + static_cast<uint64_t>(r));
          while (!stop.load(std::memory_order_acquire)) {
            const PredictRequest request = DrawRequest(&rng, num_templates);
            const PredictResult result =
                service.PredictDetailed(request.template_index,
                                        request.concurrent);
            ASSERT_TRUE(result.status.ok()) << result.status;
            recorded[static_cast<size_t>(r)].push_back({request,
                                                        result.latency,
                                                        result.tier,
                                                        result.snapshot_version});
            answers.fetch_add(1, std::memory_order_relaxed);
          }
        });
  }
  // High-frequency hot swaps: nothing in this loop but Publish, until the
  // readers have recorded enough answers under churn.
  uint64_t published = 0;
  while (answers.load(std::memory_order_relaxed) < kMinProgress &&
         published < kMaxPublishes) {
    service.Publish(snapshots[++published % kVersions]);
    if ((published & 63) == 0) std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  // Audit: each stamped answer recomputes bit-identically on the retained
  // snapshot of its version — latency AND tier.
  size_t checked = 0;
  for (const auto& per_reader : recorded) {
    for (const StampedAnswer& answer : per_reader) {
      auto it = by_version.find(answer.snapshot_version);
      ASSERT_NE(it, by_version.end())
          << "answer stamped with unpublished version "
          << answer.snapshot_version;
      const TieredPrediction expected = it->second->PredictInMixTiered(
          answer.request.template_index, answer.request.concurrent,
          /*allow_full_model=*/true);
      EXPECT_EQ(answer.latency, expected.latency);
      EXPECT_EQ(answer.tier, expected.tier);
      ++checked;
    }
  }
  EXPECT_GT(checked, 0u);
  EXPECT_GE(service.served(), static_cast<uint64_t>(checked));
  // Tier stamps aggregate truthfully into the striped counters.
  const uint64_t tier_total =
      service.tier_count(DegradationTier::kFullModel) +
      service.tier_count(DegradationTier::kTransferredQs) +
      service.tier_count(DegradationTier::kIsolatedHeuristic);
  EXPECT_EQ(tier_total, service.served());
  EXPECT_EQ(service.publishes(), published);
}

TEST(SnapshotStressTest, TierStampsStayTruthfulWithBreakerHeldOpen) {
  auto snapshots = BuildSnapshots(1, 8);
  PredictionService::Options options;
  options.num_threads = 2;
  options.health = std::make_shared<HealthTracker>(
      snapshots[0]->num_templates());
  PredictionService service(snapshots[0], options);
  const int num_templates = service.snapshot()->num_templates();

  // Trip template 0's breaker before the readers start, so its state is
  // stable (Open) for the whole concurrent phase.
  for (int i = 0; i < 8; ++i) options.health->Record(0, 10.0);
  ASSERT_EQ(options.health->state(0), BreakerState::kOpen);
  ASSERT_EQ(options.health->state(1), BreakerState::kClosed);

  std::map<uint64_t, std::shared_ptr<const ModelSnapshot>> by_version;
  for (const auto& snap : snapshots) by_version[snap->version()] = snap;

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> answers{0};
  std::vector<std::vector<StampedAnswer>> recorded(kReaders);
  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back(
        [r, num_templates, &service, &stop, &recorded, &answers] {
          Rng rng(500 + static_cast<uint64_t>(r));
          while (!stop.load(std::memory_order_acquire)) {
            // Alternate between the quarantined template and a healthy
            // one. Mixes stay non-empty: an empty mix is MPL 1, answered
            // by the measured isolated latency at tier 0 regardless of
            // breaker state (that IS the model for MPL 1).
            PredictRequest request = DrawRequest(&rng, num_templates);
            request.template_index =
                (recorded[static_cast<size_t>(r)].size() % 2) == 0 ? 0 : 1;
            if (request.concurrent.empty()) {
              request.concurrent.push_back(
                  (request.template_index + 1) % num_templates);
            }
            const PredictResult result =
                service.PredictDetailed(request.template_index,
                                        request.concurrent);
            ASSERT_TRUE(result.status.ok()) << result.status;
            recorded[static_cast<size_t>(r)].push_back({request,
                                                        result.latency,
                                                        result.tier,
                                                        result.snapshot_version});
            answers.fetch_add(1, std::memory_order_relaxed);
          }
        });
  }
  uint64_t published = 0;
  while (answers.load(std::memory_order_relaxed) < kMinProgress &&
         published < kMaxPublishes) {
    service.Publish(snapshots[++published % snapshots.size()]);
    if ((published & 63) == 0) std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  size_t quarantined_answers = 0;
  for (const auto& per_reader : recorded) {
    for (const StampedAnswer& answer : per_reader) {
      auto it = by_version.find(answer.snapshot_version);
      ASSERT_NE(it, by_version.end());
      const bool quarantined = answer.request.template_index == 0;
      // Truthfulness: an open breaker means the full model NEVER answers
      // for that template, and the stamp must recompute exactly.
      if (quarantined) {
        EXPECT_NE(answer.tier, DegradationTier::kFullModel);
        ++quarantined_answers;
      }
      const TieredPrediction expected = it->second->PredictInMixTiered(
          answer.request.template_index, answer.request.concurrent,
          /*allow_full_model=*/!quarantined);
      EXPECT_EQ(answer.latency, expected.latency);
      EXPECT_EQ(answer.tier, expected.tier);
    }
  }
  EXPECT_GT(quarantined_answers, 0u);
  EXPECT_GT(service.tier_count(DegradationTier::kTransferredQs) +
                service.tier_count(DegradationTier::kIsolatedHeuristic),
            0u);
}

}  // namespace
}  // namespace contender::serve

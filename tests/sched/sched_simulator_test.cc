#include "sched/simulator.h"

#include <gtest/gtest.h>

#include <utility>

#include "sched/metrics.h"
#include "test_support.h"

namespace contender::sched {
namespace {

using contender::testing::DefaultConfig;
using contender::testing::PaperWorkload;
using contender::testing::SharedPredictor;

std::vector<Request> TestStream(int num_requests, uint64_t seed) {
  std::vector<units::Seconds> reference;
  for (const TemplateProfile& p : SharedPredictor().profiles()) {
    reference.push_back(p.isolated_latency);
  }
  ArrivalOptions options;
  options.num_requests = num_requests;
  options.mean_interarrival = units::Seconds(25.0);
  options.deadline_probability = 0.5;
  options.min_slack = 3.0;
  options.max_slack = 10.0;
  options.seed = seed;
  auto requests = GenerateArrivals(reference, options);
  CONTENDER_CHECK(requests.ok()) << requests.status();
  return std::move(*requests);
}

StatusOr<ScheduleResult> RunPolicy(const std::vector<Request>& requests,
                                   PolicyKind kind, MixOracle* oracle,
                                   int mpl = 3) {
  ScheduleSimulator simulator(&PaperWorkload(), DefaultConfig());
  auto policy = MakePolicy(kind);
  ScheduleOptions options;
  options.target_mpl = mpl;
  options.seed = 42;
  return simulator.Run(requests, policy.get(), oracle, options);
}

bool SameSchedule(const ScheduleResult& a, const ScheduleResult& b) {
  if (a.makespan != b.makespan || a.outcomes.size() != b.outcomes.size()) {
    return false;
  }
  for (size_t i = 0; i < a.outcomes.size(); ++i) {
    if (a.outcomes[i].admit_time != b.outcomes[i].admit_time ||
        a.outcomes[i].completion_time != b.outcomes[i].completion_time ||
        a.outcomes[i].predicted_latency != b.outcomes[i].predicted_latency ||
        a.outcomes[i].missed_deadline != b.outcomes[i].missed_deadline) {
      return false;
    }
  }
  return true;
}

TEST(ScheduleSimulatorTest, OutcomeInvariantsHold) {
  const auto requests = TestStream(16, 11);
  MixOracle oracle(&SharedPredictor());
  auto result = RunPolicy(requests, PolicyKind::kFifo, &oracle);
  ASSERT_TRUE(result.ok()) << result.status();
  ASSERT_EQ(result->outcomes.size(), requests.size());
  units::Seconds last_completion;
  for (size_t i = 0; i < result->outcomes.size(); ++i) {
    const RequestOutcome& o = result->outcomes[i];
    EXPECT_TRUE(o.completed);
    EXPECT_EQ(o.request.request_id, static_cast<int>(i));
    EXPECT_GE(o.admit_time, o.request.arrival_time);
    EXPECT_EQ(o.queue_wait, o.admit_time - o.request.arrival_time);
    EXPECT_EQ(o.response_time, o.completion_time - o.request.arrival_time);
    EXPECT_GT(o.execution_latency, units::Seconds(0.0));
    EXPECT_GT(o.predicted_latency, units::Seconds(0.0));
    EXPECT_GE(o.mix_size_at_admission, 0);
    EXPECT_LT(o.mix_size_at_admission, 3);  // target MPL 3 => at most 2 others
    if (o.request.deadline.has_value()) {
      EXPECT_EQ(o.missed_deadline, o.completion_time > *o.request.deadline);
    } else {
      EXPECT_FALSE(o.missed_deadline);
    }
    last_completion = std::max(last_completion, o.completion_time);
  }
  EXPECT_EQ(result->makespan, last_completion);
}

TEST(ScheduleSimulatorTest, RepeatedRunsAreBitIdentical) {
  const auto requests = TestStream(14, 3);
  for (PolicyKind kind :
       {PolicyKind::kGreedyContention, PolicyKind::kDeadlineAware}) {
    MixOracle a(&SharedPredictor());
    MixOracle b(&SharedPredictor());
    auto first = RunPolicy(requests, kind, &a);
    auto second = RunPolicy(requests, kind, &b);
    ASSERT_TRUE(first.ok()) << first.status();
    ASSERT_TRUE(second.ok()) << second.status();
    EXPECT_TRUE(SameSchedule(*first, *second)) << PolicyKindName(kind);
  }
}

TEST(ScheduleSimulatorTest, WarmOracleMatchesColdOracle) {
  const auto requests = TestStream(14, 5);
  // The shared oracle carries cache state across policies and runs; every
  // schedule must still be bit-identical to one from a cold oracle.
  MixOracle warm(&SharedPredictor());
  for (PolicyKind kind : AllPolicyKinds()) {
    auto warmed = RunPolicy(requests, kind, &warm);
    MixOracle cold(&SharedPredictor());
    auto fresh = RunPolicy(requests, kind, &cold);
    ASSERT_TRUE(warmed.ok()) << warmed.status();
    ASSERT_TRUE(fresh.ok()) << fresh.status();
    EXPECT_TRUE(SameSchedule(*warmed, *fresh)) << PolicyKindName(kind);
  }
  EXPECT_GT(warm.hits(), 0u);
}

TEST(ScheduleSimulatorTest, GreedyBeatsFifoMakespanOnFixedSeed) {
  const auto requests = TestStream(20, 42);
  MixOracle oracle(&SharedPredictor());
  auto fifo = RunPolicy(requests, PolicyKind::kFifo, &oracle);
  auto greedy = RunPolicy(requests, PolicyKind::kGreedyContention, &oracle);
  ASSERT_TRUE(fifo.ok()) << fifo.status();
  ASSERT_TRUE(greedy.ok()) << greedy.status();
  EXPECT_LE(greedy->makespan, fifo->makespan);
}

TEST(ScheduleSimulatorTest, MetricsAggregateOutcomes) {
  const auto requests = TestStream(16, 11);
  MixOracle oracle(&SharedPredictor());
  auto result = RunPolicy(requests, PolicyKind::kDeadlineAware, &oracle);
  ASSERT_TRUE(result.ok()) << result.status();
  const ScheduleMetrics m = ComputeScheduleMetrics(*result);
  EXPECT_EQ(m.requests, requests.size());
  EXPECT_EQ(m.makespan, result->makespan);
  EXPECT_GE(m.p99_response, m.p95_response);
  EXPECT_GE(m.p95_response, m.p50_response);
  EXPECT_GE(m.max_queue_wait, m.mean_queue_wait);
  size_t with_deadline = 0, missed = 0;
  for (const RequestOutcome& o : result->outcomes) {
    with_deadline += o.request.deadline.has_value() ? 1 : 0;
    missed += o.missed_deadline ? 1 : 0;
  }
  EXPECT_EQ(m.deadline_requests, with_deadline);
  EXPECT_EQ(m.deadline_misses, missed);
  EXPECT_GE(m.mean_prediction_error, 0.0);
}

TEST(ScheduleSimulatorTest, RejectsMalformedRequestStreams) {
  MixOracle oracle(&SharedPredictor());
  ScheduleSimulator simulator(&PaperWorkload(), DefaultConfig());
  auto policy = MakePolicy(PolicyKind::kFifo);
  ScheduleOptions options;

  std::vector<Request> dup = TestStream(4, 1);
  dup[2].request_id = 1;  // ids no longer dense 0..n-1
  EXPECT_FALSE(simulator.Run(dup, policy.get(), &oracle, options).ok());

  std::vector<Request> bad_template = TestStream(4, 1);
  bad_template[0].template_index = 10'000;
  EXPECT_FALSE(
      simulator.Run(bad_template, policy.get(), &oracle, options).ok());

  options.target_mpl = 0;
  EXPECT_FALSE(
      simulator.Run(TestStream(4, 1), policy.get(), &oracle, options).ok());
}

TEST(ScheduleSimulatorTest, EmptyStreamIsTriviallyComplete) {
  MixOracle oracle(&SharedPredictor());
  ScheduleSimulator simulator(&PaperWorkload(), DefaultConfig());
  auto policy = MakePolicy(PolicyKind::kFifo);
  auto result = simulator.Run({}, policy.get(), &oracle, ScheduleOptions{});
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_TRUE(result->outcomes.empty());
  EXPECT_EQ(result->makespan, units::Seconds(0.0));
}

}  // namespace
}  // namespace contender::sched

// Node-level overload control inside ScheduleSimulator: the AIMD limiter
// tightening admissions below the static MPL, CoDel head-of-queue
// shedding with stamped reasons and criticality exemption, the
// conservation split in ScheduleMetrics, and bit-exact replay with the
// controllers armed.

#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "overload/shed_reason.h"
#include "sched/metrics.h"
#include "sched/simulator.h"
#include "test_support.h"

namespace contender::sched {
namespace {

using contender::testing::DefaultConfig;
using contender::testing::PaperWorkload;
using contender::testing::SharedPredictor;

std::vector<Request> BurstyStream(int num_requests, double interarrival,
                                  uint64_t seed) {
  std::vector<units::Seconds> reference;
  for (const TemplateProfile& p : SharedPredictor().profiles()) {
    reference.push_back(p.isolated_latency);
  }
  ArrivalOptions options;
  options.num_requests = num_requests;
  options.mean_interarrival = units::Seconds(interarrival);
  options.deadline_probability = 0.5;
  options.min_slack = 3.0;
  options.max_slack = 10.0;
  options.seed = seed;
  auto requests = GenerateArrivals(reference, options);
  CONTENDER_CHECK(requests.ok()) << requests.status();
  return std::move(*requests);
}

StatusOr<ScheduleResult> RunWith(const std::vector<Request>& requests,
                                 const ScheduleOptions& options) {
  ScheduleSimulator simulator(&PaperWorkload(), DefaultConfig());
  auto policy = MakePolicy(PolicyKind::kFifo);
  MixOracle oracle(&SharedPredictor());
  return simulator.Run(requests, policy.get(), &oracle, options);
}

TEST(AdaptiveSchedTest, DefaultsKeepTheStaticLimitAndShedNothing) {
  const auto requests = BurstyStream(16, 25.0, 7);
  ScheduleOptions options;
  options.target_mpl = 3;
  auto result = RunWith(requests, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_EQ(result->final_admission_limit, 3);
  EXPECT_EQ(result->limit_decreases, 0u);
  EXPECT_EQ(result->queue_sheds, 0u);
  for (const RequestOutcome& out : result->outcomes) {
    EXPECT_TRUE(out.completed);
    EXPECT_FALSE(out.shed);
  }
}

TEST(AdaptiveSchedTest, AdaptiveLimiterTightensBelowStaticMpl) {
  // A razor-thin overload knee turns ordinary prediction error into a
  // congestion signal, so the limiter must back off below the static MPL
  // while every request still completes (the floor keeps one slot open).
  const auto requests = BurstyStream(24, 4.0, 11);
  ScheduleOptions options;
  options.target_mpl = 4;
  options.overload.adaptive_limit = true;
  options.overload.limiter.max_limit = 4;
  options.overload.limiter.overload_ratio = 1.01;
  options.overload.limiter.ewma_alpha = 1.0;
  auto result = RunWith(requests, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->limit_decreases, 0u)
      << "knee at 1.01 never tripped the limiter";
  EXPECT_LT(result->final_admission_limit, 4);
  EXPECT_GE(result->final_admission_limit, 1);
  for (const RequestOutcome& out : result->outcomes) {
    EXPECT_TRUE(out.completed) << "request " << out.request.request_id;
  }
}

TEST(AdaptiveSchedTest, CoDelShedsStaleQueueHeadsAndStampsReason) {
  // MPL 1 with arrivals ~30x faster than service: the queue delay grows
  // without bound, so CoDel must start dropping heads once the delay has
  // persisted a full interval.
  const auto requests = BurstyStream(32, 1.0, 5);
  ScheduleOptions options;
  options.target_mpl = 1;
  options.overload.codel_shed = true;
  options.overload.codel.target = units::Seconds(10.0);
  options.overload.codel.interval = units::Seconds(30.0);
  auto result = RunWith(requests, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->queue_sheds, 0u) << "overloaded queue never shed";
  size_t shed = 0;
  for (const RequestOutcome& out : result->outcomes) {
    ASSERT_TRUE(out.completed || out.shed);
    if (!out.shed) continue;
    ++shed;
    EXPECT_EQ(out.shed_reason, overload::ShedReason::kQueueDelay);
    EXPECT_FALSE(out.completed);
    EXPECT_GT(out.queue_wait, options.overload.codel.target);
  }
  EXPECT_EQ(shed, result->queue_sheds);

  const ScheduleMetrics metrics = ComputeScheduleMetrics(*result);
  EXPECT_EQ(metrics.completed + metrics.shed, metrics.requests);
  EXPECT_EQ(metrics.shed, shed);
  EXPECT_EQ(metrics.shed_by_reason.at(overload::ShedReason::kQueueDelay),
            shed);
}

TEST(AdaptiveSchedTest, CriticalRequestsAreNeverCoDelShed) {
  auto requests = BurstyStream(32, 1.0, 5);
  for (Request& request : requests) {
    if (request.request_id % 3 == 0) {
      request.criticality = overload::Criticality::kCritical;
    }
  }
  ScheduleOptions options;
  options.target_mpl = 1;
  options.overload.codel_shed = true;
  options.overload.codel.target = units::Seconds(10.0);
  options.overload.codel.interval = units::Seconds(30.0);
  auto result = RunWith(requests, options);
  ASSERT_TRUE(result.ok()) << result.status();
  EXPECT_GT(result->queue_sheds, 0u);
  for (const RequestOutcome& out : result->outcomes) {
    if (out.request.criticality == overload::Criticality::kCritical) {
      EXPECT_TRUE(out.completed)
          << "critical request " << out.request.request_id << " was shed";
    }
  }
}

TEST(AdaptiveSchedTest, ArmedControllersReplayBitExactly) {
  const auto requests = BurstyStream(24, 2.0, 13);
  ScheduleOptions options;
  options.target_mpl = 2;
  options.overload.adaptive_limit = true;
  options.overload.limiter.max_limit = 2;
  options.overload.limiter.overload_ratio = 1.05;
  options.overload.codel_shed = true;
  options.overload.codel.target = units::Seconds(15.0);
  options.overload.codel.interval = units::Seconds(40.0);
  auto first = RunWith(requests, options);
  auto second = RunWith(requests, options);
  ASSERT_TRUE(first.ok()) << first.status();
  ASSERT_TRUE(second.ok()) << second.status();
  ASSERT_EQ(first->outcomes.size(), second->outcomes.size());
  EXPECT_EQ(first->makespan, second->makespan);
  EXPECT_EQ(first->queue_sheds, second->queue_sheds);
  EXPECT_EQ(first->final_admission_limit, second->final_admission_limit);
  for (size_t i = 0; i < first->outcomes.size(); ++i) {
    const RequestOutcome& a = first->outcomes[i];
    const RequestOutcome& b = second->outcomes[i];
    EXPECT_EQ(a.shed, b.shed) << i;
    EXPECT_EQ(a.completed, b.completed) << i;
    EXPECT_EQ(a.admit_time, b.admit_time) << i;
    EXPECT_EQ(a.completion_time, b.completion_time) << i;
    EXPECT_EQ(a.queue_wait, b.queue_wait) << i;
  }
}

}  // namespace
}  // namespace contender::sched

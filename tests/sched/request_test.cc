#include "sched/request.h"

#include <gtest/gtest.h>

#include <utility>
#include <vector>

namespace contender::sched {
namespace {

ArrivalOptions SmallStream() {
  ArrivalOptions options;
  options.num_requests = 64;
  options.mean_interarrival = units::Seconds(10.0);
  options.deadline_probability = 0.5;
  options.min_slack = 2.0;
  options.max_slack = 5.0;
  options.seed = 7;
  return options;
}

std::vector<units::Seconds> Reference() {
  return {units::Seconds(30.0), units::Seconds(60.0), units::Seconds(90.0)};
}

// Unwraps a stream the test expects to be well-formed.
std::vector<Request> MustGenerate(const std::vector<units::Seconds>& ref,
                                  const ArrivalOptions& options) {
  auto requests = GenerateArrivals(ref, options);
  EXPECT_TRUE(requests.ok()) << requests.status();
  return std::move(*requests);
}

TEST(GenerateArrivalsTest, DeterministicUnderFixedSeed) {
  const auto a = MustGenerate(Reference(), SmallStream());
  const auto b = MustGenerate(Reference(), SmallStream());
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].request_id, b[i].request_id);
    EXPECT_EQ(a[i].template_index, b[i].template_index);
    EXPECT_EQ(a[i].arrival_time, b[i].arrival_time);
    EXPECT_EQ(a[i].deadline.has_value(), b[i].deadline.has_value());
    if (a[i].deadline.has_value()) {
      EXPECT_EQ(*a[i].deadline, *b[i].deadline);
    }
  }
}

TEST(GenerateArrivalsTest, RejectsNonPositiveArrivalRate) {
  ArrivalOptions options = SmallStream();
  options.mean_interarrival = units::Seconds(0.0);
  auto zero = GenerateArrivals(Reference(), options);
  ASSERT_FALSE(zero.ok());
  EXPECT_EQ(zero.status().code(), StatusCode::kInvalidArgument);

  options.mean_interarrival = units::Seconds(-3.0);
  auto negative = GenerateArrivals(Reference(), options);
  ASSERT_FALSE(negative.ok());
  EXPECT_EQ(negative.status().code(), StatusCode::kInvalidArgument);
}

TEST(GenerateArrivalsTest, RejectsMalformedOptions) {
  auto no_templates = GenerateArrivals({}, SmallStream());
  ASSERT_FALSE(no_templates.ok());
  EXPECT_EQ(no_templates.status().code(), StatusCode::kInvalidArgument);

  ArrivalOptions negative_count = SmallStream();
  negative_count.num_requests = -1;
  EXPECT_FALSE(GenerateArrivals(Reference(), negative_count).ok());

  ArrivalOptions bad_probability = SmallStream();
  bad_probability.deadline_probability = 1.5;
  EXPECT_FALSE(GenerateArrivals(Reference(), bad_probability).ok());

  ArrivalOptions inverted_slack = SmallStream();
  inverted_slack.min_slack = 5.0;
  inverted_slack.max_slack = 2.0;
  EXPECT_FALSE(GenerateArrivals(Reference(), inverted_slack).ok());
}

TEST(GenerateArrivalsTest, SeedChangesStream) {
  ArrivalOptions other = SmallStream();
  other.seed = 8;
  const auto a = MustGenerate(Reference(), SmallStream());
  const auto b = MustGenerate(Reference(), other);
  bool differs = false;
  for (size_t i = 0; i < a.size(); ++i) {
    differs |= a[i].template_index != b[i].template_index ||
               a[i].arrival_time != b[i].arrival_time;
  }
  EXPECT_TRUE(differs);
}

TEST(GenerateArrivalsTest, StreamShapeInvariants) {
  const auto reference = Reference();
  const auto requests = MustGenerate(reference, SmallStream());
  ASSERT_EQ(requests.size(), 64u);
  EXPECT_EQ(requests.front().arrival_time, units::Seconds(0.0));
  for (size_t i = 0; i < requests.size(); ++i) {
    EXPECT_EQ(requests[i].request_id, static_cast<int>(i));
    EXPECT_GE(requests[i].template_index, 0);
    EXPECT_LT(requests[i].template_index,
              static_cast<int>(reference.size()));
    if (i > 0) {
      EXPECT_GE(requests[i].arrival_time, requests[i - 1].arrival_time);
    }
  }
}

TEST(GenerateArrivalsTest, DeadlineSlackWithinConfiguredBand) {
  ArrivalOptions options = SmallStream();
  options.deadline_probability = 1.0;
  const auto reference = Reference();
  const auto requests = MustGenerate(reference, options);
  for (const Request& r : requests) {
    ASSERT_TRUE(r.deadline.has_value());
    const double slack =
        (*r.deadline - r.arrival_time).value() /
        reference[static_cast<size_t>(r.template_index)].value();
    EXPECT_GE(slack, options.min_slack);
    EXPECT_LT(slack, options.max_slack);
  }
}

TEST(GenerateArrivalsTest, ZeroProbabilityMeansBestEffortOnly) {
  ArrivalOptions options = SmallStream();
  options.deadline_probability = 0.0;
  for (const Request& r : MustGenerate(Reference(), options)) {
    EXPECT_FALSE(r.deadline.has_value());
  }
}

Request MakeRequest(int id, double arrival) {
  Request r;
  r.request_id = id;
  r.template_index = 0;
  r.arrival_time = units::Seconds(arrival);
  return r;
}

TEST(RequestQueueTest, SortsByArrivalThenId) {
  RequestQueue queue({MakeRequest(2, 5.0), MakeRequest(0, 9.0),
                      MakeRequest(1, 5.0)});
  ASSERT_EQ(queue.size(), 3u);
  EXPECT_EQ(queue.at(0).request_id, 1);  // t=5, lower id first
  EXPECT_EQ(queue.at(1).request_id, 2);  // t=5
  EXPECT_EQ(queue.at(2).request_id, 0);  // t=9
}

TEST(RequestQueueTest, ArrivedByIsTheAdmissiblePrefix) {
  RequestQueue queue({MakeRequest(0, 0.0), MakeRequest(1, 4.0),
                      MakeRequest(2, 8.0)});
  EXPECT_EQ(queue.ArrivedBy(units::Seconds(-1.0)), 0u);
  EXPECT_EQ(queue.ArrivedBy(units::Seconds(0.0)), 1u);
  EXPECT_EQ(queue.ArrivedBy(units::Seconds(4.0)), 2u);
  EXPECT_EQ(queue.ArrivedBy(units::Seconds(100.0)), 3u);
  EXPECT_EQ(queue.NextArrival(), units::Seconds(0.0));
}

TEST(RequestQueueTest, TakeRemovesExactlyOnePosition) {
  RequestQueue queue({MakeRequest(0, 0.0), MakeRequest(1, 4.0),
                      MakeRequest(2, 8.0)});
  const Request taken = queue.Take(1);
  EXPECT_EQ(taken.request_id, 1);
  ASSERT_EQ(queue.size(), 2u);
  EXPECT_EQ(queue.at(0).request_id, 0);
  EXPECT_EQ(queue.at(1).request_id, 2);
}

TEST(RequestQueueTest, PushKeepsQueueOrder) {
  RequestQueue queue;
  queue.Push(MakeRequest(0, 6.0));
  queue.Push(MakeRequest(1, 2.0));
  queue.Push(MakeRequest(2, 6.0));
  ASSERT_EQ(queue.size(), 3u);
  EXPECT_EQ(queue.at(0).request_id, 1);
  EXPECT_EQ(queue.at(1).request_id, 0);
  EXPECT_EQ(queue.at(2).request_id, 2);
}

}  // namespace
}  // namespace contender::sched

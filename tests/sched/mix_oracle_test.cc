#include "sched/mix_oracle.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "test_support.h"
#include "util/failpoint.h"

namespace contender::sched {
namespace {

using contender::testing::SharedPredictor;

MixOracle::Options Uncached() {
  MixOracle::Options options;
  options.enable_cache = false;
  return options;
}

TEST(MixOracleTest, EmptyMixIsIsolatedLatency) {
  MixOracle oracle(&SharedPredictor());
  for (int t = 0; t < oracle.num_templates(); ++t) {
    EXPECT_EQ(oracle.PredictInMix(t, {}), oracle.IsolatedLatency(t));
  }
}

TEST(MixOracleTest, CachedEqualsUncachedBitExact) {
  const ContenderPredictor& predictor = SharedPredictor();
  MixOracle cached(&predictor);
  MixOracle uncached(&predictor, Uncached());
  const int n = cached.num_templates();
  // Every template against several mixes at MPL 2-4, probed twice so the
  // second cached probe returns the memoized value.
  for (int t = 0; t < n; ++t) {
    const std::vector<std::vector<int>> mixes = {
        {(t + 1) % n},
        {(t + 1) % n, (t + 5) % n},
        {(t + 3) % n, (t + 7) % n, (t + 11) % n},
    };
    for (const auto& mix : mixes) {
      const units::Seconds fresh = uncached.PredictInMix(t, mix);
      EXPECT_EQ(cached.PredictInMix(t, mix), fresh);
      EXPECT_EQ(cached.PredictInMix(t, mix), fresh);  // warm hit
    }
  }
  EXPECT_EQ(uncached.hits(), 0u);
  EXPECT_GT(cached.hits(), 0u);
}

TEST(MixOracleTest, PermutedMixesAreBitIdentical) {
  const ContenderPredictor& predictor = SharedPredictor();
  MixOracle cached(&predictor);
  MixOracle uncached(&predictor, Uncached());
  const std::vector<int> mix = {4, 1, 9};
  const std::vector<std::vector<int>> permutations = {
      {4, 1, 9}, {1, 4, 9}, {9, 4, 1}, {1, 9, 4}};
  const units::Seconds expected = uncached.PredictInMix(0, mix);
  for (const auto& perm : permutations) {
    // The oracle canonicalizes before evaluating, so every ordering of the
    // multiset answers identically — cached or not.
    EXPECT_EQ(uncached.PredictInMix(0, perm), expected);
    EXPECT_EQ(cached.PredictInMix(0, perm), expected);
  }
  // All four permutations share one cache entry.
  EXPECT_EQ(cached.misses(), 1u);
  EXPECT_EQ(cached.hits(), 3u);
  EXPECT_EQ(cached.size(), 1u);
}

TEST(MixOracleTest, UncoveredMplFallsBackToIsolated) {
  MixOracle oracle(&SharedPredictor());
  // Reference models cover MPL 2-5; a 5-partner mix is MPL 6.
  const std::vector<int> mix = {1, 2, 3, 4, 5};
  EXPECT_EQ(oracle.PredictInMix(0, mix), oracle.IsolatedLatency(0));
  EXPECT_EQ(oracle.fallbacks(), 1u);
}

// A controllable health signal for degradation tests.
class StubHealth : public TemplateHealth {
 public:
  bool Degraded(int template_index) const override {
    for (int d : degraded) {
      if (d == template_index) return true;
    }
    return false;
  }
  std::vector<int> degraded;
};

TEST(MixOracleTest, OpenBreakerDegradesToIsolatedWithoutCaching) {
  StubHealth health;
  MixOracle::Options options;
  options.health = &health;
  MixOracle oracle(&SharedPredictor(), options);
  const std::vector<int> mix = {1, 2};

  const units::Seconds model_answer = oracle.PredictInMix(0, mix);
  EXPECT_NE(model_answer, oracle.IsolatedLatency(0));
  EXPECT_EQ(oracle.degradations(), 0u);

  // Breaker opens: the oracle answers with the isolated latency and does
  // NOT memoize the degraded value...
  health.degraded = {0};
  EXPECT_EQ(oracle.PredictInMix(0, mix), oracle.IsolatedLatency(0));
  EXPECT_EQ(oracle.degradations(), 1u);
  EXPECT_TRUE(oracle.Degraded(0));
  EXPECT_FALSE(oracle.Degraded(1));

  // ...so recovery immediately serves the cached full-model answer again.
  health.degraded = {};
  EXPECT_EQ(oracle.PredictInMix(0, mix), model_answer);
  EXPECT_FALSE(oracle.Degraded(0));
}

TEST(MixOracleTest, PredictFailPointForcesDegradation) {
  MixOracle oracle(&SharedPredictor());
  auto& registry = FailPointRegistry::Global();
  const std::vector<int> mix = {3, 4};
  const units::Seconds model_answer = oracle.PredictInMix(0, mix);

  registry.ArmOnce("sched.mix_oracle.predict");
  EXPECT_EQ(oracle.PredictInMix(0, mix), oracle.IsolatedLatency(0));
  EXPECT_EQ(oracle.degradations(), 1u);
  registry.DisarmAll();

  EXPECT_EQ(oracle.PredictInMix(0, mix), model_answer);
  // Empty mixes short-circuit before the probe: isolated IS the answer.
  registry.ArmProbability("sched.mix_oracle.predict", 1.0);
  EXPECT_EQ(oracle.PredictInMix(0, {}), oracle.IsolatedLatency(0));
  registry.DisarmAll();
}

TEST(MixOracleTest, LruEvictsBeyondCapacity) {
  MixOracle::Options options;
  options.capacity = 4;
  // One shard restores the exact single-LRU semantics: a global recency
  // order and a global bound.
  options.num_shards = 1;
  MixOracle oracle(&SharedPredictor(), options);
  for (int t = 0; t < 8; ++t) {
    oracle.PredictInMix(t, {(t + 1) % oracle.num_templates()});
  }
  EXPECT_EQ(oracle.size(), 4u);
  EXPECT_EQ(oracle.misses(), 8u);
}

TEST(MixOracleTest, ShardedEvictionBoundsEachShard) {
  MixOracle::Options options;
  options.capacity = 8;
  options.num_shards = 4;  // per-shard bound = 2
  MixOracle oracle(&SharedPredictor(), options);
  const int n = oracle.num_templates();
  for (int round = 0; round < 4; ++round) {
    for (int t = 0; t < n; ++t) {
      oracle.PredictInMix(t, {(t + round) % n, (t + round + 1) % n});
    }
  }
  // Never over the global bound, and eviction happened per shard — the
  // memo retained SOMETHING (each shard keeps its most recent entries).
  EXPECT_LE(oracle.size(), 8u);
  EXPECT_GE(oracle.size(), 1u);
  // A retained key still answers bit-identically to an uncached oracle.
  MixOracle uncached(&SharedPredictor(), Uncached());
  for (int t = 0; t < n; ++t) {
    const std::vector<int> mix = {(t + 3) % n, (t + 4) % n};
    EXPECT_EQ(oracle.PredictInMix(t, mix).value(),
              uncached.PredictInMix(t, mix).value());
  }
}

TEST(MixOracleTest, ConcurrentProbesMatchSerialAnswers) {
  const ContenderPredictor& predictor = SharedPredictor();
  MixOracle serial(&predictor, Uncached());
  MixOracle shared(&predictor);
  const int n = shared.num_templates();

  std::vector<units::Seconds> expected(static_cast<size_t>(n));
  for (int t = 0; t < n; ++t) {
    expected[static_cast<size_t>(t)] =
        serial.PredictInMix(t, {(t + 1) % n, (t + 2) % n});
  }

  constexpr int kThreads = 8;
  std::vector<int> mismatches(kThreads, 0);
  std::vector<std::thread> workers;
  workers.reserve(kThreads);
  for (int w = 0; w < kThreads; ++w) {
    workers.emplace_back([&, w] {
      for (int round = 0; round < 4; ++round) {
        for (int t = 0; t < n; ++t) {
          const units::Seconds got =
              shared.PredictInMix(t, {(t + 1) % n, (t + 2) % n});
          if (got != expected[static_cast<size_t>(t)]) ++mismatches[w];
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  for (int w = 0; w < kThreads; ++w) EXPECT_EQ(mismatches[w], 0);
  EXPECT_EQ(shared.hits() + shared.misses(),
            static_cast<uint64_t>(kThreads * 4 * n));
}

}  // namespace
}  // namespace contender::sched

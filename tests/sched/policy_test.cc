#include "sched/policy.h"

#include <gtest/gtest.h>

#include "test_support.h"

namespace contender::sched {
namespace {

using contender::testing::SharedPredictor;

Request MakeRequest(int id, int template_index, double arrival,
                    std::optional<double> deadline = std::nullopt) {
  Request r;
  r.request_id = id;
  r.template_index = template_index;
  r.arrival_time = units::Seconds(arrival);
  if (deadline.has_value()) r.deadline = units::Seconds(*deadline);
  return r;
}

SchedContext MakeContext(MixOracle* oracle,
                         const std::vector<int>* running, double now) {
  SchedContext ctx;
  ctx.now = units::Seconds(now);
  ctx.running_templates = running;
  ctx.oracle = oracle;
  return ctx;
}

TEST(PolicyTest, FactoryCoversAllKinds) {
  EXPECT_EQ(AllPolicyKinds().size(), 4u);
  EXPECT_EQ(PolicyKindName(PolicyKind::kFifo), "fifo");
  EXPECT_EQ(PolicyKindName(PolicyKind::kShortestIsolatedFirst),
            "shortest-isolated");
  EXPECT_EQ(PolicyKindName(PolicyKind::kGreedyContention),
            "greedy-contention");
  EXPECT_EQ(PolicyKindName(PolicyKind::kDeadlineAware), "deadline-aware");
  for (PolicyKind kind : AllPolicyKinds()) {
    EXPECT_NE(MakePolicy(kind), nullptr);
  }
}

TEST(PolicyTest, RejectsIncompleteContextAndEmptyPrefix) {
  MixOracle oracle(&SharedPredictor());
  const std::vector<int> running;
  RequestQueue queue({MakeRequest(0, 0, 50.0)});
  for (PolicyKind kind : AllPolicyKinds()) {
    auto policy = MakePolicy(kind);
    SchedContext no_oracle = MakeContext(nullptr, &running, 100.0);
    EXPECT_FALSE(policy->Pick(queue, no_oracle).ok());
    // t=0 precedes the only arrival: the admissible prefix is empty.
    SchedContext too_early = MakeContext(&oracle, &running, 0.0);
    EXPECT_FALSE(policy->Pick(queue, too_early).ok());
  }
}

TEST(PolicyTest, FifoPicksHeadOfQueue) {
  MixOracle oracle(&SharedPredictor());
  const std::vector<int> running = {3};
  RequestQueue queue({MakeRequest(0, 5, 0.0), MakeRequest(1, 2, 1.0),
                      MakeRequest(2, 8, 2.0)});
  auto policy = MakePolicy(PolicyKind::kFifo);
  auto pick = policy->Pick(queue, MakeContext(&oracle, &running, 10.0));
  ASSERT_TRUE(pick.ok());
  EXPECT_EQ(*pick, 0u);
}

TEST(PolicyTest, TiedScoresBreakToEarliestQueuePosition) {
  MixOracle oracle(&SharedPredictor());
  const std::vector<int> running = {3};
  // Identical template => identical score under every scoring policy; the
  // earliest queue position must win deterministically.
  RequestQueue queue({MakeRequest(0, 4, 0.0), MakeRequest(1, 4, 1.0),
                      MakeRequest(2, 4, 2.0)});
  for (PolicyKind kind : AllPolicyKinds()) {
    auto policy = MakePolicy(kind);
    auto pick = policy->Pick(queue, MakeContext(&oracle, &running, 10.0));
    ASSERT_TRUE(pick.ok());
    EXPECT_EQ(*pick, 0u) << PolicyKindName(kind);
  }
}

TEST(PolicyTest, ShortestIsolatedPrefersFastestTemplate) {
  MixOracle oracle(&SharedPredictor());
  const std::vector<int> running;
  // Find the workload's fastest and slowest templates by isolated latency.
  int fastest = 0, slowest = 0;
  for (int t = 1; t < oracle.num_templates(); ++t) {
    if (oracle.IsolatedLatency(t) < oracle.IsolatedLatency(fastest)) {
      fastest = t;
    }
    if (oracle.IsolatedLatency(t) > oracle.IsolatedLatency(slowest)) {
      slowest = t;
    }
  }
  ASSERT_NE(fastest, slowest);
  RequestQueue queue({MakeRequest(0, slowest, 0.0),
                      MakeRequest(1, fastest, 1.0)});
  auto policy = MakePolicy(PolicyKind::kShortestIsolatedFirst);
  auto pick = policy->Pick(queue, MakeContext(&oracle, &running, 10.0));
  ASSERT_TRUE(pick.ok());
  EXPECT_EQ(queue.at(*pick).template_index, fastest);
}

TEST(PolicyTest, DeadlineAwareDegradesToGreedyWithoutDeadlines) {
  MixOracle oracle(&SharedPredictor());
  auto greedy = MakePolicy(PolicyKind::kGreedyContention);
  auto deadline = MakePolicy(PolicyKind::kDeadlineAware);
  const int n = oracle.num_templates();
  for (int shift = 0; shift < n; ++shift) {
    const std::vector<int> running = {shift, (shift + 4) % n};
    RequestQueue queue({MakeRequest(0, (shift + 1) % n, 0.0),
                        MakeRequest(1, (shift + 9) % n, 1.0),
                        MakeRequest(2, (shift + 17) % n, 2.0)});
    const SchedContext ctx = MakeContext(&oracle, &running, 10.0);
    auto g = greedy->Pick(queue, ctx);
    auto d = deadline->Pick(queue, ctx);
    ASSERT_TRUE(g.ok());
    ASSERT_TRUE(d.ok());
    EXPECT_EQ(*d, *g) << "mix shift " << shift;
  }
}

// A controllable health signal (mirrors serve::HealthTracker's shape).
class StubHealth : public TemplateHealth {
 public:
  bool Degraded(int template_index) const override {
    for (int d : degraded) {
      if (d == template_index) return true;
    }
    return false;
  }
  std::vector<int> degraded;
};

TEST(PolicyTest, OpenBreakerDropsScoringPoliciesToShortestIsolated) {
  StubHealth health;
  MixOracle::Options options;
  options.health = &health;
  MixOracle oracle(&SharedPredictor(), options);
  auto shortest = MakePolicy(PolicyKind::kShortestIsolatedFirst);
  const int n = oracle.num_templates();
  for (PolicyKind kind :
       {PolicyKind::kGreedyContention, PolicyKind::kDeadlineAware}) {
    auto policy = MakePolicy(kind);
    for (int shift = 0; shift < n; ++shift) {
      const std::vector<int> running = {shift, (shift + 4) % n};
      RequestQueue queue({MakeRequest(0, (shift + 1) % n, 0.0, 500.0),
                          MakeRequest(1, (shift + 9) % n, 1.0),
                          MakeRequest(2, (shift + 17) % n, 2.0)});
      const SchedContext ctx = MakeContext(&oracle, &running, 10.0);

      // Degrade a template in the running mix: every contention score
      // would consult its garbage model, so the policy must fall back to
      // the same pick shortest-isolated makes.
      health.degraded = {shift};
      auto degraded_pick = policy->Pick(queue, ctx);
      auto expected = shortest->Pick(queue, ctx);
      ASSERT_TRUE(degraded_pick.ok());
      ASSERT_TRUE(expected.ok());
      EXPECT_EQ(*degraded_pick, *expected)
          << PolicyKindName(kind) << " shift " << shift;

      // Degrading a queued candidate (not in the mix) also forces the
      // fallback — its own in-mix score is untrustworthy.
      health.degraded = {(shift + 9) % n};
      degraded_pick = policy->Pick(queue, ctx);
      ASSERT_TRUE(degraded_pick.ok());
      EXPECT_EQ(*degraded_pick, *expected)
          << PolicyKindName(kind) << " candidate shift " << shift;

      health.degraded = {};
    }
  }
}

TEST(PolicyTest, HealthySignalLeavesPicksUnchanged) {
  StubHealth health;
  MixOracle::Options with_health;
  with_health.health = &health;
  MixOracle tracked(&SharedPredictor(), with_health);
  MixOracle plain(&SharedPredictor());
  const int n = plain.num_templates();
  for (PolicyKind kind : AllPolicyKinds()) {
    auto policy = MakePolicy(kind);
    for (int shift = 0; shift < n; shift += 5) {
      const std::vector<int> running = {(shift + 2) % n};
      RequestQueue queue({MakeRequest(0, (shift + 1) % n, 0.0),
                          MakeRequest(1, (shift + 9) % n, 1.0)});
      auto a = policy->Pick(queue, MakeContext(&tracked, &running, 10.0));
      auto b = policy->Pick(queue, MakeContext(&plain, &running, 10.0));
      ASSERT_TRUE(a.ok() && b.ok());
      EXPECT_EQ(*a, *b) << PolicyKindName(kind) << " shift " << shift;
    }
  }
}

TEST(PolicyTest, DeadlineAwareProtectsTightestSlack) {
  MixOracle oracle(&SharedPredictor());
  const std::vector<int> running;
  // Request 1 has far less slack than request 0; request 2 is best-effort
  // and must rank last regardless of its score.
  RequestQueue queue({MakeRequest(0, 2, 0.0, 1e6),
                      MakeRequest(1, 2, 1.0, 500.0),
                      MakeRequest(2, 2, 2.0)});
  auto policy = MakePolicy(PolicyKind::kDeadlineAware);
  auto pick = policy->Pick(queue, MakeContext(&oracle, &running, 10.0));
  ASSERT_TRUE(pick.ok());
  EXPECT_EQ(queue.at(*pick).request_id, 1);
}

}  // namespace
}  // namespace contender::sched

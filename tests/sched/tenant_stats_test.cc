#include "sched/metrics.h"

#include <gtest/gtest.h>

#include <map>
#include <utility>
#include <vector>

#include "sched/mix_oracle.h"
#include "sched/policy.h"
#include "sched/request.h"
#include "sched/simulator.h"
#include "test_support.h"

namespace contender::sched {
namespace {

using contender::testing::DefaultConfig;
using contender::testing::PaperWorkload;
using contender::testing::SharedPredictor;

TEST(TenantScheduleStatsTest, AddAccumulatesCountsAndSamples) {
  TenantScheduleStats stats;
  stats.Add(units::Seconds(1.0), units::Seconds(5.0), true, false);
  stats.Add(units::Seconds(3.0), units::Seconds(9.0), true, true);
  stats.Add(units::Seconds(0.0), units::Seconds(4.0), false, false);
  EXPECT_EQ(stats.requests, 3u);
  EXPECT_EQ(stats.deadline_requests, 2u);
  EXPECT_EQ(stats.deadline_misses, 1u);
  EXPECT_DOUBLE_EQ(stats.sla_miss_rate(), 0.5);
  EXPECT_EQ(stats.queue_wait.count(), 3u);
  EXPECT_DOUBLE_EQ(stats.response.mean(), 6.0);
  EXPECT_DOUBLE_EQ(stats.response.max(), 9.0);
}

TEST(TenantScheduleStatsTest, SlaMissRateIsZeroWithoutDeadlines) {
  TenantScheduleStats stats;
  EXPECT_DOUBLE_EQ(stats.sla_miss_rate(), 0.0);
  stats.Add(units::Seconds(1.0), units::Seconds(2.0), false, false);
  EXPECT_DOUBLE_EQ(stats.sla_miss_rate(), 0.0);
}

TEST(TenantScheduleStatsTest, MergeEqualsConcatenation) {
  // Merged quantiles must be exact — identical to a single accumulator
  // fed every sample — because SampleStats retains all observations.
  std::vector<double> responses = {4.0, 9.0, 1.0, 16.0, 2.0, 8.0, 3.0};
  TenantScheduleStats whole;
  TenantScheduleStats left;
  TenantScheduleStats right;
  for (size_t i = 0; i < responses.size(); ++i) {
    const units::Seconds wait(static_cast<double>(i));
    const units::Seconds resp(responses[i]);
    const bool has_deadline = (i % 2) == 0;
    const bool missed = has_deadline && responses[i] > 5.0;
    whole.Add(wait, resp, has_deadline, missed);
    (i < 3 ? left : right).Add(wait, resp, has_deadline, missed);
  }
  left.Merge(right);
  EXPECT_EQ(left.requests, whole.requests);
  EXPECT_EQ(left.deadline_requests, whole.deadline_requests);
  EXPECT_EQ(left.deadline_misses, whole.deadline_misses);
  EXPECT_DOUBLE_EQ(left.response.mean(), whole.response.mean());
  EXPECT_DOUBLE_EQ(left.response.p50(), whole.response.p50());
  EXPECT_DOUBLE_EQ(left.response.p95(), whole.response.p95());
  EXPECT_DOUBLE_EQ(left.queue_wait.max(), whole.queue_wait.max());
}

TEST(TenantScheduleStatsTest, MergeTenantStatsInsertsAndFolds) {
  std::map<int, TenantScheduleStats> into;
  std::map<int, TenantScheduleStats> from;
  into[1].Add(units::Seconds(1.0), units::Seconds(2.0), false, false);
  from[1].Add(units::Seconds(3.0), units::Seconds(4.0), true, true);
  from[7].Add(units::Seconds(5.0), units::Seconds(6.0), false, false);
  MergeTenantStats(&into, from);
  ASSERT_EQ(into.size(), 2u);
  EXPECT_EQ(into[1].requests, 2u);
  EXPECT_EQ(into[1].deadline_misses, 1u);
  EXPECT_EQ(into[7].requests, 1u);
  // Merging an empty map is a no-op.
  MergeTenantStats(&into, {});
  EXPECT_EQ(into[1].requests, 2u);
}

std::vector<Request> TenantStream(int num_requests, int num_tenants,
                                  uint64_t seed) {
  std::vector<units::Seconds> reference;
  for (const TemplateProfile& p : SharedPredictor().profiles()) {
    reference.push_back(p.isolated_latency);
  }
  ArrivalOptions options;
  options.num_requests = num_requests;
  options.mean_interarrival = units::Seconds(25.0);
  options.deadline_probability = 0.5;
  options.seed = seed;
  auto requests = GenerateArrivals(reference, options);
  CONTENDER_CHECK(requests.ok()) << requests.status();
  for (Request& r : *requests) {
    r.tenant_id = r.request_id % num_tenants;
  }
  return std::move(*requests);
}

TEST(TenantScheduleStatsTest, SimulatorMetricsPartitionByTenant) {
  const auto requests = TenantStream(18, 3, 7);
  MixOracle oracle(&SharedPredictor());
  ScheduleSimulator simulator(&PaperWorkload(), DefaultConfig());
  auto policy = MakePolicy(PolicyKind::kGreedyContention);
  auto result =
      simulator.Run(requests, policy.get(), &oracle, ScheduleOptions{});
  ASSERT_TRUE(result.ok()) << result.status();
  const ScheduleMetrics m = ComputeScheduleMetrics(*result);

  ASSERT_EQ(m.per_tenant.size(), 3u);
  size_t total = 0;
  size_t deadline_requests = 0;
  size_t deadline_misses = 0;
  for (const auto& [tenant, stats] : m.per_tenant) {
    EXPECT_GE(tenant, 0);
    EXPECT_LT(tenant, 3);
    EXPECT_EQ(stats.requests, 6u);  // ids round-robin over 3 tenants
    total += stats.requests;
    deadline_requests += stats.deadline_requests;
    deadline_misses += stats.deadline_misses;
    EXPECT_EQ(stats.response.count(), stats.requests);
    EXPECT_EQ(stats.queue_wait.count(), stats.requests);
  }
  EXPECT_EQ(total, m.requests);
  EXPECT_EQ(deadline_requests, m.deadline_requests);
  EXPECT_EQ(deadline_misses, m.deadline_misses);
}

TEST(TenantScheduleStatsTest, SingleTenantEntryMatchesTopLevelAggregates) {
  const auto requests = TenantStream(14, 1, 11);
  MixOracle oracle(&SharedPredictor());
  ScheduleSimulator simulator(&PaperWorkload(), DefaultConfig());
  auto policy = MakePolicy(PolicyKind::kFifo);
  auto result =
      simulator.Run(requests, policy.get(), &oracle, ScheduleOptions{});
  ASSERT_TRUE(result.ok()) << result.status();
  const ScheduleMetrics m = ComputeScheduleMetrics(*result);

  ASSERT_EQ(m.per_tenant.size(), 1u);
  const TenantScheduleStats& t = m.per_tenant.at(0);
  EXPECT_EQ(t.requests, m.requests);
  EXPECT_DOUBLE_EQ(t.response.mean(), m.mean_response.value());
  EXPECT_DOUBLE_EQ(t.response.p95(), m.p95_response.value());
  EXPECT_DOUBLE_EQ(t.queue_wait.max(), m.max_queue_wait.value());
  EXPECT_EQ(t.deadline_requests, m.deadline_requests);
  EXPECT_EQ(t.deadline_misses, m.deadline_misses);
  EXPECT_DOUBLE_EQ(t.sla_miss_rate(), m.sla_miss_rate);
}

}  // namespace
}  // namespace contender::sched

// Property test for the scenario refactor's central promise: routing
// sched::GenerateArrivals and fleet::GeneratePopulation through the
// PoissonSteady scenario changed NOTHING — same seed, same
// (arrival, id, template, tenant, deadline) tuples, bit for bit. The
// pre-refactor samplers are reimplemented here, verbatim, as the
// reference; any drift in the scenario driver's draw order, seed
// derivation, tenant planning, or merge shows up as a tuple mismatch.

#include <algorithm>
#include <cmath>
#include <optional>
#include <vector>

#include <gtest/gtest.h>

#include "fleet/population.h"
#include "scenario/scenario.h"
#include "scenario/scenarios.h"
#include "sched/request.h"
#include "util/random.h"
#include "util/units.h"

namespace contender {
namespace {

std::vector<units::Seconds> References(int n) {
  std::vector<units::Seconds> refs;
  for (int i = 0; i < n; ++i) {
    refs.push_back(units::Seconds(40.0 + 13.0 * i));
  }
  return refs;
}

// Verbatim reimplementation of the pre-scenario sched::GenerateArrivals
// sampling loop (validation elided: parity cases are all valid).
std::vector<sched::Request> LegacyArrivals(
    const std::vector<units::Seconds>& reference_latencies,
    const sched::ArrivalOptions& options) {
  Rng rng(options.seed);
  std::vector<sched::Request> requests;
  units::Seconds clock;
  for (int i = 0; i < options.num_requests; ++i) {
    sched::Request r;
    r.request_id = i;
    r.template_index = static_cast<int>(
        rng.UniformInt(static_cast<uint64_t>(reference_latencies.size())));
    if (i > 0) {
      const double u = rng.Uniform01();
      clock += options.mean_interarrival * (-std::log1p(-u));
    }
    r.arrival_time = clock;
    if (options.deadline_probability > 0.0 &&
        rng.Uniform01() < options.deadline_probability) {
      const double slack = rng.Uniform(options.min_slack, options.max_slack);
      r.deadline =
          r.arrival_time +
          reference_latencies[static_cast<size_t>(r.template_index)] * slack;
    }
    requests.push_back(r);
  }
  return requests;
}

struct LegacyDraw {
  sched::Request request;
  int tenant_seq = 0;
};

// Verbatim reimplementation of the pre-scenario fleet::GeneratePopulation
// planner + sampler + merge.
fleet::Population LegacyPopulation(
    const std::vector<units::Seconds>& reference_latencies,
    const fleet::PopulationOptions& options) {
  const int num_templates = static_cast<int>(reference_latencies.size());
  fleet::Population population;
  population.tenants.resize(static_cast<size_t>(options.num_tenants));

  double weight_sum = 0.0;
  for (int i = 0; i < options.num_tenants; ++i) {
    weight_sum += std::pow(static_cast<double>(i + 1), -options.skew);
  }
  std::vector<double> exact(static_cast<size_t>(options.num_tenants));
  std::vector<int> counts(static_cast<size_t>(options.num_tenants));
  int assigned = 0;
  for (int i = 0; i < options.num_tenants; ++i) {
    const double share =
        std::pow(static_cast<double>(i + 1), -options.skew) / weight_sum;
    exact[static_cast<size_t>(i)] = share * options.num_requests;
    counts[static_cast<size_t>(i)] =
        static_cast<int>(std::floor(exact[static_cast<size_t>(i)]));
    assigned += counts[static_cast<size_t>(i)];
    population.tenants[static_cast<size_t>(i)].tenant_id = i;
    population.tenants[static_cast<size_t>(i)].rate_share = share;
  }
  std::vector<int> order(static_cast<size_t>(options.num_tenants));
  for (int i = 0; i < options.num_tenants; ++i) {
    order[static_cast<size_t>(i)] = i;
  }
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    const double fa = exact[static_cast<size_t>(a)] -
                      std::floor(exact[static_cast<size_t>(a)]);
    const double fb = exact[static_cast<size_t>(b)] -
                      std::floor(exact[static_cast<size_t>(b)]);
    return fa > fb;
  });
  for (int r = 0; r < options.num_requests - assigned; ++r) {
    ++counts[static_cast<size_t>(
        order[static_cast<size_t>(r % options.num_tenants)])];
  }

  const int block = options.templates_per_tenant == 0
                        ? num_templates
                        : options.templates_per_tenant;
  for (int i = 0; i < options.num_tenants; ++i) {
    fleet::TenantSpec& spec = population.tenants[static_cast<size_t>(i)];
    spec.num_requests = counts[static_cast<size_t>(i)];
    const int start = options.templates_per_tenant == 0
                          ? 0
                          : (i * std::max(1, block / 2)) % num_templates;
    for (int k = 0; k < block; ++k) {
      spec.templates.push_back((start + k) % num_templates);
    }
    std::sort(spec.templates.begin(), spec.templates.end());
    spec.templates.erase(
        std::unique(spec.templates.begin(), spec.templates.end()),
        spec.templates.end());
  }

  Rng root(options.seed);
  std::vector<uint64_t> tenant_seeds;
  for (int i = 0; i < options.num_tenants; ++i) {
    tenant_seeds.push_back(root.Next());
  }

  std::vector<LegacyDraw> draws;
  for (int i = 0; i < options.num_tenants; ++i) {
    const fleet::TenantSpec& spec =
        population.tenants[static_cast<size_t>(i)];
    if (spec.num_requests == 0) continue;
    Rng rng(tenant_seeds[static_cast<size_t>(i)]);
    const units::Seconds tenant_gap =
        options.mean_interarrival * (1.0 / spec.rate_share);
    units::Seconds clock;
    for (int k = 0; k < spec.num_requests; ++k) {
      LegacyDraw d;
      d.tenant_seq = k;
      d.request.tenant_id = i;
      d.request.template_index = spec.templates[static_cast<size_t>(
          rng.UniformInt(static_cast<uint64_t>(spec.templates.size())))];
      clock += tenant_gap * (-std::log1p(-rng.Uniform01()));
      d.request.arrival_time = clock;
      if (options.deadline_probability > 0.0 &&
          rng.Uniform01() < options.deadline_probability) {
        const double slack =
            rng.Uniform(options.min_slack, options.max_slack);
        d.request.deadline =
            d.request.arrival_time +
            reference_latencies[static_cast<size_t>(
                d.request.template_index)] *
                slack;
      }
      draws.push_back(d);
    }
  }
  std::stable_sort(draws.begin(), draws.end(),
                   [](const LegacyDraw& a, const LegacyDraw& b) {
                     if (a.request.arrival_time != b.request.arrival_time) {
                       return a.request.arrival_time < b.request.arrival_time;
                     }
                     if (a.request.tenant_id != b.request.tenant_id) {
                       return a.request.tenant_id < b.request.tenant_id;
                     }
                     return a.tenant_seq < b.tenant_seq;
                   });
  for (size_t id = 0; id < draws.size(); ++id) {
    draws[id].request.request_id = static_cast<int>(id);
    population.requests.push_back(draws[id].request);
  }
  return population;
}

void ExpectIdentical(const std::vector<sched::Request>& got,
                     const std::vector<sched::Request>& want) {
  ASSERT_EQ(got.size(), want.size());
  for (size_t i = 0; i < got.size(); ++i) {
    SCOPED_TRACE("request " + std::to_string(i));
    EXPECT_EQ(got[i].request_id, want[i].request_id);
    EXPECT_EQ(got[i].template_index, want[i].template_index);
    EXPECT_EQ(got[i].tenant_id, want[i].tenant_id);
    // Bit-exact, not approximately equal: the whole point.
    EXPECT_EQ(got[i].arrival_time.value(), want[i].arrival_time.value());
    ASSERT_EQ(got[i].deadline.has_value(), want[i].deadline.has_value());
    if (got[i].deadline.has_value()) {
      EXPECT_EQ(got[i].deadline->value(), want[i].deadline->value());
    }
  }
}

TEST(ScenarioParityTest, GenerateArrivalsMatchesLegacyStream) {
  const std::vector<units::Seconds> refs = References(25);
  for (uint64_t seed : {1ULL, 42ULL, 1234ULL, 99991ULL}) {
    for (double deadline_probability : {0.0, 0.6, 1.0}) {
      for (int num_requests : {0, 1, 7, 64}) {
        sched::ArrivalOptions options;
        options.seed = seed;
        options.deadline_probability = deadline_probability;
        options.num_requests = num_requests;
        options.mean_interarrival = units::Seconds(17.0);
        SCOPED_TRACE("seed=" + std::to_string(seed) +
                     " p=" + std::to_string(deadline_probability) +
                     " n=" + std::to_string(num_requests));
        auto got = sched::GenerateArrivals(refs, options);
        ASSERT_TRUE(got.ok()) << got.status();
        ExpectIdentical(*got, LegacyArrivals(refs, options));
      }
    }
  }
}

TEST(ScenarioParityTest, FirstArrivalStaysAtTimeZero) {
  sched::ArrivalOptions options;
  auto got = sched::GenerateArrivals(References(5), options);
  ASSERT_TRUE(got.ok()) << got.status();
  ASSERT_FALSE(got->empty());
  EXPECT_EQ(got->front().arrival_time.value(), 0.0);
}

TEST(ScenarioParityTest, GeneratePopulationMatchesLegacyStream) {
  const std::vector<units::Seconds> refs = References(25);
  for (uint64_t seed : {7ULL, 42ULL, 5555ULL}) {
    for (double skew : {0.0, 1.0, 2.5}) {
      for (int templates_per_tenant : {0, 3, 10}) {
        for (int num_tenants : {1, 4, 9}) {
          fleet::PopulationOptions options;
          options.seed = seed;
          options.skew = skew;
          options.templates_per_tenant = templates_per_tenant;
          options.num_tenants = num_tenants;
          options.num_requests = 96;
          options.deadline_probability = 0.5;
          SCOPED_TRACE("seed=" + std::to_string(seed) +
                       " skew=" + std::to_string(skew) +
                       " tpt=" + std::to_string(templates_per_tenant) +
                       " tenants=" + std::to_string(num_tenants));
          auto got = fleet::GeneratePopulation(refs, options);
          ASSERT_TRUE(got.ok()) << got.status();
          const fleet::Population want = LegacyPopulation(refs, options);
          ExpectIdentical(got->requests, want.requests);
          ASSERT_EQ(got->tenants.size(), want.tenants.size());
          for (size_t i = 0; i < want.tenants.size(); ++i) {
            EXPECT_EQ(got->tenants[i].tenant_id, want.tenants[i].tenant_id);
            EXPECT_EQ(got->tenants[i].rate_share,
                      want.tenants[i].rate_share);
            EXPECT_EQ(got->tenants[i].num_requests,
                      want.tenants[i].num_requests);
            EXPECT_EQ(got->tenants[i].templates, want.tenants[i].templates);
          }
        }
      }
    }
  }
}

TEST(ScenarioParityTest, DirectScenarioCallMatchesWrappedEntryPoints) {
  const std::vector<units::Seconds> refs = References(12);
  const scenario::Scenario* poisson =
      scenario::FindScenario(scenario::kPoissonSteadyName);
  ASSERT_NE(poisson, nullptr);

  scenario::ScenarioParams params;
  params.num_requests = 48;
  params.mean_interarrival = units::Seconds(9.0);
  params.deadline_probability = 0.4;
  params.seed = 271828;

  sched::ArrivalOptions arrival_options;
  arrival_options.num_requests = params.num_requests;
  arrival_options.mean_interarrival = params.mean_interarrival;
  arrival_options.deadline_probability = params.deadline_probability;
  arrival_options.seed = params.seed;
  auto wrapped = sched::GenerateArrivals(refs, arrival_options);
  ASSERT_TRUE(wrapped.ok()) << wrapped.status();
  auto direct = poisson->GenerateTrace(refs, params);
  ASSERT_TRUE(direct.ok()) << direct.status();
  ExpectIdentical(direct->requests, *wrapped);

  params.num_tenants = 4;
  params.skew = 1.0;
  params.templates_per_tenant = 5;
  fleet::PopulationOptions population_options;
  population_options.num_requests = params.num_requests;
  population_options.mean_interarrival = params.mean_interarrival;
  population_options.deadline_probability = params.deadline_probability;
  population_options.seed = params.seed;
  population_options.num_tenants = params.num_tenants;
  population_options.skew = params.skew;
  population_options.templates_per_tenant = params.templates_per_tenant;
  auto wrapped_fleet = fleet::GeneratePopulation(refs, population_options);
  ASSERT_TRUE(wrapped_fleet.ok()) << wrapped_fleet.status();
  auto direct_fleet = poisson->GenerateFleetTrace(refs, params);
  ASSERT_TRUE(direct_fleet.ok()) << direct_fleet.status();
  ExpectIdentical(direct_fleet->requests, wrapped_fleet->requests);
}

TEST(ScenarioParityTest, ValidationFailuresSurviveTheRefactor) {
  const std::vector<units::Seconds> refs = References(4);
  {
    sched::ArrivalOptions options;
    EXPECT_FALSE(sched::GenerateArrivals({}, options).ok());
    options.num_requests = -1;
    EXPECT_FALSE(sched::GenerateArrivals(refs, options).ok());
    options = sched::ArrivalOptions{};
    options.mean_interarrival = units::Seconds(0.0);
    EXPECT_FALSE(sched::GenerateArrivals(refs, options).ok());
    options = sched::ArrivalOptions{};
    options.deadline_probability = 1.5;
    EXPECT_FALSE(sched::GenerateArrivals(refs, options).ok());
    options = sched::ArrivalOptions{};
    options.min_slack = 5.0;
    options.max_slack = 1.0;
    EXPECT_FALSE(sched::GenerateArrivals(refs, options).ok());
  }
  {
    fleet::PopulationOptions options;
    options.num_tenants = 0;
    EXPECT_FALSE(fleet::GeneratePopulation(refs, options).ok());
    options = fleet::PopulationOptions{};
    options.skew = -0.5;
    EXPECT_FALSE(fleet::GeneratePopulation(refs, options).ok());
    options = fleet::PopulationOptions{};
    options.templates_per_tenant =
        static_cast<int>(refs.size()) + 1;
    EXPECT_FALSE(fleet::GeneratePopulation(refs, options).ok());
  }
}

}  // namespace
}  // namespace contender

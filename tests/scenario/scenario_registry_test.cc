// Registry contract: every built-in scenario is registered under a
// stable, unique name with a description, lookups work, and — the
// end-to-end guarantee — every registered scenario's trace round-trips
// through ScheduleSimulator without a Status error, in both single-node
// and fleet mode.

#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "scenario/scenario.h"
#include "scenario/scenarios.h"
#include "sched/mix_oracle.h"
#include "sched/policy.h"
#include "sched/simulator.h"
#include "test_support.h"
#include "util/units.h"

namespace contender {
namespace {

std::vector<units::Seconds> PaperReferences() {
  std::vector<units::Seconds> refs;
  for (const TemplateProfile& p : testing::SharedTrainingData().profiles) {
    refs.push_back(p.isolated_latency);
  }
  return refs;
}

TEST(ScenarioRegistryTest, AllSixBuiltinsRegistered) {
  const std::vector<const scenario::Scenario*> all =
      scenario::AllScenarios();
  ASSERT_GE(all.size(), 6u);
  std::set<std::string> names;
  for (const scenario::Scenario* s : all) {
    ASSERT_NE(s, nullptr);
    EXPECT_FALSE(std::string(s->name()).empty());
    EXPECT_FALSE(std::string(s->description()).empty());
    EXPECT_TRUE(names.insert(s->name()).second)
        << "duplicate name " << s->name();
  }
  for (const char* expected :
       {"poisson-steady", "diurnal-cycle", "flash-crowd",
        "heavy-tail-tenants", "adhoc-novel", "mixed-refresh"}) {
    EXPECT_TRUE(names.count(expected)) << "missing scenario " << expected;
  }
}

TEST(ScenarioRegistryTest, AllIsSortedByName) {
  const std::vector<const scenario::Scenario*> all =
      scenario::AllScenarios();
  for (size_t i = 1; i < all.size(); ++i) {
    EXPECT_LT(std::string(all[i - 1]->name()), std::string(all[i]->name()));
  }
}

TEST(ScenarioRegistryTest, FindByNameAndMissLookup) {
  for (const scenario::Scenario* s : scenario::AllScenarios()) {
    EXPECT_EQ(scenario::FindScenario(s->name()), s);
  }
  EXPECT_EQ(scenario::FindScenario("no-such-scenario"), nullptr);
  EXPECT_NE(scenario::FindScenario(scenario::kPoissonSteadyName), nullptr);
}

TEST(ScenarioRegistryTest, EveryScenarioRoundTripsThroughTheSimulator) {
  const std::vector<units::Seconds> refs = PaperReferences();
  const sched::ScheduleSimulator simulator(&testing::PaperWorkload(),
                                           testing::DefaultConfig());

  scenario::ScenarioParams params;
  params.num_requests = 20;
  params.mean_interarrival = units::Seconds(25.0);
  params.deadline_probability = 0.5;
  params.seed = 42;

  for (const scenario::Scenario* s : scenario::AllScenarios()) {
    SCOPED_TRACE(s->name());
    auto trace = s->GenerateTrace(refs, params);
    ASSERT_TRUE(trace.ok()) << trace.status();
    ASSERT_EQ(trace->requests.size(),
              static_cast<size_t>(params.num_requests));
    // Dense ids in arrival order, templates within the workload.
    for (size_t i = 0; i < trace->requests.size(); ++i) {
      EXPECT_EQ(trace->requests[i].request_id, static_cast<int>(i));
      ASSERT_GE(trace->requests[i].template_index, 0);
      ASSERT_LT(trace->requests[i].template_index,
                static_cast<int>(refs.size()));
      if (i > 0) {
        EXPECT_GE(trace->requests[i].arrival_time.value(),
                  trace->requests[i - 1].arrival_time.value());
      }
    }

    sched::MixOracle oracle(&testing::SharedPredictor());
    auto policy = sched::MakePolicy(sched::PolicyKind::kGreedyContention);
    auto result = simulator.Run(trace->requests, policy.get(), &oracle,
                                sched::ScheduleOptions{});
    ASSERT_TRUE(result.ok()) << s->name() << ": " << result.status();
    EXPECT_EQ(result->outcomes.size(), trace->requests.size());
    for (const sched::RequestOutcome& outcome : result->outcomes) {
      EXPECT_TRUE(outcome.completed);
    }
  }
}

TEST(ScenarioRegistryTest, EveryScenarioRoundTripsInFleetMode) {
  const std::vector<units::Seconds> refs = PaperReferences();
  scenario::ScenarioParams params;
  params.num_requests = 40;
  params.num_tenants = 4;
  params.skew = 1.0;
  params.templates_per_tenant = 10;
  params.mean_interarrival = units::Seconds(10.0);
  params.seed = 7;

  for (const scenario::Scenario* s : scenario::AllScenarios()) {
    SCOPED_TRACE(s->name());
    auto trace = s->GenerateFleetTrace(refs, params);
    ASSERT_TRUE(trace.ok()) << trace.status();
    EXPECT_EQ(trace->requests.size(),
              static_cast<size_t>(params.num_requests));
    ASSERT_EQ(trace->tenants.size(), static_cast<size_t>(params.num_tenants));
    int planned = 0;
    for (const scenario::TenantTraffic& tenant : trace->tenants) {
      planned += tenant.num_requests;
      EXPECT_FALSE(tenant.templates.empty());
    }
    EXPECT_EQ(planned, params.num_requests);
    // Tenant ids stamped and within range.
    for (const sched::Request& r : trace->requests) {
      EXPECT_GE(r.tenant_id, 0);
      EXPECT_LT(r.tenant_id, params.num_tenants);
    }
  }
}

TEST(ScenarioRegistryTest, InvalidParamsRejectedByEveryScenario) {
  const std::vector<units::Seconds> refs = PaperReferences();
  for (const scenario::Scenario* s : scenario::AllScenarios()) {
    SCOPED_TRACE(s->name());
    scenario::ScenarioParams params;
    params.num_requests = -1;
    EXPECT_FALSE(s->GenerateTrace(refs, params).ok());
    params = scenario::ScenarioParams{};
    params.mean_interarrival = units::Seconds(-1.0);
    EXPECT_FALSE(s->GenerateTrace(refs, params).ok());
    params = scenario::ScenarioParams{};
    EXPECT_FALSE(s->GenerateTrace({}, params).ok());
    params = scenario::ScenarioParams{};
    params.num_tenants = 0;
    EXPECT_FALSE(s->GenerateFleetTrace(refs, params).ok());
  }
}

}  // namespace
}  // namespace contender

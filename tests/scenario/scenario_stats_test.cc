// Statistical sanity for each scenario's shape: the knobs do what their
// names claim. Every check runs on one fixed seed with wide tolerances —
// these are seeded draws, so the assertions are exact-repeatable, not
// flaky; the tolerances only have to absorb ordinary sampling noise at
// n ≈ a few thousand.

#include <algorithm>
#include <cmath>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "scenario/interarrival.h"
#include "scenario/scenario.h"
#include "scenario/scenarios.h"
#include "util/random.h"
#include "util/units.h"

namespace contender {
namespace {

constexpr int kTemplates = 20;

std::vector<units::Seconds> References() {
  std::vector<units::Seconds> refs;
  for (int i = 0; i < kTemplates; ++i) {
    refs.push_back(units::Seconds(25.0 + 5.0 * i));
  }
  return refs;
}

scenario::ScenarioParams LongStream(int n, double mean_gap) {
  scenario::ScenarioParams params;
  params.num_requests = n;
  params.mean_interarrival = units::Seconds(mean_gap);
  params.seed = 42;
  return params;
}

scenario::ScenarioTrace MustTrace(const scenario::Scenario& s,
                                  const scenario::ScenarioParams& params) {
  auto trace = s.GenerateTrace(References(), params);
  EXPECT_TRUE(trace.ok()) << trace.status();
  return std::move(*trace);
}

double EmpiricalMeanGap(const scenario::ScenarioTrace& trace) {
  const size_t n = trace.requests.size();
  if (n < 2) return 0.0;
  return (trace.requests.back().arrival_time.value() -
          trace.requests.front().arrival_time.value()) /
         static_cast<double>(n - 1);
}

TEST(ScenarioStatsTest, ExponentialGapMatchesConfiguredMean) {
  // The hoisted primitive itself: sample mean within 5% at n = 20000.
  Rng rng(42);
  double sum = 0.0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    sum += scenario::ExponentialGap(&rng, units::Seconds(4.0)).value();
  }
  EXPECT_NEAR(sum / n, 4.0, 0.2);
}

TEST(ScenarioStatsTest, PoissonSteadyEmpiricalRateNearConfigured) {
  const scenario::PoissonSteady poisson;
  const scenario::ScenarioTrace trace =
      MustTrace(poisson, LongStream(4000, 2.0));
  EXPECT_NEAR(EmpiricalMeanGap(trace), 2.0, 0.2);  // within 10%
}

TEST(ScenarioStatsTest, DiurnalCycleLongRunRateNearConfigured) {
  // Thinning preserves the long-run average rate.
  const scenario::DiurnalCycle diurnal;
  const scenario::ScenarioTrace trace =
      MustTrace(diurnal, LongStream(4000, 2.0));
  EXPECT_NEAR(EmpiricalMeanGap(trace), 2.0, 0.3);  // within 15%
  EXPECT_GT(trace.stats.at("diurnal.candidates"), 4000.0);
}

TEST(ScenarioStatsTest, DiurnalCyclePeakPhaseOutweighsTrough) {
  const scenario::DiurnalCycle diurnal;
  const scenario::ScenarioTrace trace =
      MustTrace(diurnal, LongStream(4000, 2.0));
  const double period = 2.0 * diurnal.period_gaps();
  int peak_half = 0;
  int trough_half = 0;
  for (const sched::Request& r : trace.requests) {
    const double phase =
        std::fmod(r.arrival_time.value(), period) / period;  // [0, 1)
    // sin is positive over the first half period, negative the second.
    if (phase < 0.5) {
      ++peak_half;
    } else {
      ++trough_half;
    }
  }
  // With amplitude 0.8 the expected ratio is (1 + 2A/π)/(1 - 2A/π) ≈ 3.1;
  // require at least 2x to leave room for sampling noise.
  EXPECT_GT(peak_half, 2 * trough_half);
}

TEST(ScenarioStatsTest, FlashCrowdSwitchesStatesAndBurstsAreDenser) {
  const scenario::FlashCrowd crowd;
  const scenario::ScenarioTrace trace =
      MustTrace(crowd, LongStream(4000, 2.0));
  // Long stream must cross states repeatedly and spend requests in both.
  EXPECT_GE(trace.stats.at("mmpp.switches"), 4.0);
  const double burst = trace.stats.at("mmpp.burst_requests");
  EXPECT_GT(burst, 0.0);
  EXPECT_LT(burst, 4000.0);
  // Burst state at 6x rate vs quiet at 0.6x: most requests land in
  // bursts even though bursts are short.
  EXPECT_GT(burst, 4000.0 * 0.5);
  // Burstiness shows up as over-dispersed gaps: the gap coefficient of
  // variation exceeds the exponential's 1.0.
  std::vector<double> gaps;
  for (size_t i = 1; i < trace.requests.size(); ++i) {
    gaps.push_back(trace.requests[i].arrival_time.value() -
                   trace.requests[i - 1].arrival_time.value());
  }
  double mean = 0.0;
  for (double g : gaps) mean += g;
  mean /= static_cast<double>(gaps.size());
  double var = 0.0;
  for (double g : gaps) var += (g - mean) * (g - mean);
  var /= static_cast<double>(gaps.size());
  EXPECT_GT(std::sqrt(var) / mean, 1.1);
}

TEST(ScenarioStatsTest, HeavyTailTenantsSkewsRatesAndTemplates) {
  const scenario::HeavyTailTenants heavy;
  scenario::ScenarioParams params = LongStream(3000, 1.0);
  params.num_tenants = 6;
  params.skew = 0.0;  // scenario floors this at its own heavy exponent
  auto trace = heavy.GenerateFleetTrace(References(), params);
  ASSERT_TRUE(trace.ok()) << trace.status();

  // Tenant 0 dominates even though params asked for uniform shares.
  ASSERT_EQ(trace->tenants.size(), 6u);
  EXPECT_GT(trace->tenants[0].num_requests,
            3 * trace->tenants[5].num_requests);
  EXPECT_GT(trace->tenants[0].rate_share, 0.4);

  // Zipf template mass: the head template absorbs far more than the
  // uniform share, and the tail (bottom half of the window) far less
  // than half.
  std::map<int, int> by_template;
  for (const sched::Request& r : trace->requests) {
    ++by_template[r.template_index];
  }
  const int head = by_template.count(0) ? by_template.at(0) : 0;
  EXPECT_GT(head, static_cast<int>(3000.0 / kTemplates * 2.5));
  int tail = 0;
  for (const auto& [tmpl, count] : by_template) {
    if (tmpl >= kTemplates / 2) tail += count;
  }
  EXPECT_LT(tail, 3000 / 4);
  EXPECT_GT(trace->stats.at("zipf.head_requests"), 0.0);
}

TEST(ScenarioStatsTest, AdHocNovelEmitsHeldOutTemplatesAtTheDialedRate) {
  const std::vector<int> novel = scenario::AdHocNovel::NovelTemplates(
      kTemplates);
  ASSERT_EQ(novel.size(), static_cast<size_t>(kTemplates / 5));
  EXPECT_EQ(novel.front(), kTemplates - kTemplates / 5);
  EXPECT_EQ(novel.back(), kTemplates - 1);

  const scenario::AdHocNovel adhoc;  // default injection probability 0.2
  const scenario::ScenarioTrace trace =
      MustTrace(adhoc, LongStream(4000, 1.0));
  int novel_requests = 0;
  for (const sched::Request& r : trace.requests) {
    if (std::binary_search(novel.begin(), novel.end(), r.template_index)) {
      ++novel_requests;
    }
  }
  // The held-out slice appears — and only via injection, so its rate
  // tracks novel_probability (20% ± noise).
  EXPECT_GT(novel_requests, 0);
  EXPECT_NEAR(static_cast<double>(novel_requests) / 4000.0,
              adhoc.novel_probability(), 0.05);
  EXPECT_EQ(trace.stats.at("adhoc.novel_requests"),
            static_cast<double>(novel_requests));
}

TEST(ScenarioStatsTest, AdHocNovelZeroProbabilityNeverLeaksNovel) {
  const scenario::AdHocNovel quiet_adhoc(0.0);
  const scenario::ScenarioTrace trace =
      MustTrace(quiet_adhoc, LongStream(2000, 1.0));
  const std::vector<int> novel =
      scenario::AdHocNovel::NovelTemplates(kTemplates);
  for (const sched::Request& r : trace.requests) {
    EXPECT_FALSE(
        std::binary_search(novel.begin(), novel.end(), r.template_index));
  }
  EXPECT_EQ(trace.stats.at("adhoc.novel_requests"), 0.0);
}

TEST(ScenarioStatsTest, MixedRefreshStormsAreClusteredAndPeriodic) {
  const scenario::MixedRefresh mixed;
  const scenario::ScenarioTrace trace =
      MustTrace(mixed, LongStream(3000, 1.0));
  const std::vector<int> refresh =
      scenario::MixedRefresh::RefreshTemplates(kTemplates);

  const double period = 1.0 * mixed.period_gaps();
  int storm_requests = 0;
  for (const sched::Request& r : trace.requests) {
    const bool is_refresh = std::binary_search(refresh.begin(), refresh.end(),
                                               r.template_index);
    if (!is_refresh) continue;
    ++storm_requests;
    // Every refresh request sits within a storm window: at most
    // storm_size millisecond offsets past a period multiple.
    const double offset = std::fmod(r.arrival_time.value(), period);
    EXPECT_LT(std::min(offset, period - offset),
              mixed.storm_size() * 1e-3 + 1e-9)
        << "refresh request at t=" << r.arrival_time.value();
  }
  EXPECT_GT(storm_requests, 0);
  EXPECT_EQ(trace.stats.at("refresh.storm_requests"),
            static_cast<double>(storm_requests));
  // Storms recur: the stream spans many periods, each contributing a
  // full storm.
  const double span = trace.requests.back().arrival_time.value();
  const auto full_storms = static_cast<int>(span / period);
  EXPECT_GE(full_storms, 3);
  EXPECT_GE(storm_requests, full_storms * mixed.storm_size() / 2);
}

}  // namespace
}  // namespace contender

// Determinism discipline for every registered scenario: the same
// (scenario, params) always yields the same trace bit for bit — from any
// thread, at any pool width, and with the chaos harness fully armed
// (scenario generation owns no fail points, so injected faults elsewhere
// cannot perturb a trace). Different seeds must actually differ, or the
// seed isn't flowing.

#include <future>
#include <vector>

#include <gtest/gtest.h>

#include "scenario/scenario.h"
#include "scenario/scenarios.h"
#include "util/failpoint.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "util/units.h"

namespace contender {
namespace {

std::vector<units::Seconds> References(int n) {
  std::vector<units::Seconds> refs;
  for (int i = 0; i < n; ++i) {
    refs.push_back(units::Seconds(30.0 + 7.0 * i));
  }
  return refs;
}

scenario::ScenarioParams BaseParams(uint64_t seed) {
  scenario::ScenarioParams params;
  params.num_requests = 200;
  params.mean_interarrival = units::Seconds(3.0);
  params.deadline_probability = 0.5;
  params.num_tenants = 4;
  params.skew = 1.0;
  params.templates_per_tenant = 8;
  params.seed = seed;
  return params;
}

uint64_t Digest(const scenario::Scenario& s,
                const std::vector<units::Seconds>& refs,
                const scenario::ScenarioParams& params, bool fleet) {
  auto trace = fleet ? s.GenerateFleetTrace(refs, params)
                     : s.GenerateTrace(refs, params);
  CONTENDER_CHECK(trace.ok()) << trace.status();
  return scenario::TraceDigest(trace->requests);
}

TEST(ScenarioDeterminismTest, SameSeedSameTraceBothModes) {
  const std::vector<units::Seconds> refs = References(20);
  for (const scenario::Scenario* s : scenario::AllScenarios()) {
    SCOPED_TRACE(s->name());
    for (bool fleet : {false, true}) {
      const scenario::ScenarioParams params = BaseParams(42);
      EXPECT_EQ(Digest(*s, refs, params, fleet),
                Digest(*s, refs, params, fleet));
    }
  }
}

TEST(ScenarioDeterminismTest, DifferentSeedsDiverge) {
  const std::vector<units::Seconds> refs = References(20);
  for (const scenario::Scenario* s : scenario::AllScenarios()) {
    SCOPED_TRACE(s->name());
    EXPECT_NE(Digest(*s, refs, BaseParams(42), /*fleet=*/false),
              Digest(*s, refs, BaseParams(43), /*fleet=*/false));
    EXPECT_NE(Digest(*s, refs, BaseParams(42), /*fleet=*/true),
              Digest(*s, refs, BaseParams(43), /*fleet=*/true));
  }
}

TEST(ScenarioDeterminismTest, TracesSurviveChaosReplayBitExactly) {
  const std::vector<units::Seconds> refs = References(20);
  std::vector<uint64_t> quiet;
  for (const scenario::Scenario* s : scenario::AllScenarios()) {
    quiet.push_back(Digest(*s, refs, BaseParams(42), /*fleet=*/true));
  }

  // Arm every registered fail-point site hot; scenario generation must
  // not consult any of them.
  FailPointRegistry& registry = FailPointRegistry::Global();
  registry.SetRootSeed(1234);
  for (const std::string& site : registry.SiteNames()) {
    registry.ArmProbability(site, 0.5);
  }
  std::vector<uint64_t> armed;
  for (const scenario::Scenario* s : scenario::AllScenarios()) {
    armed.push_back(Digest(*s, refs, BaseParams(42), /*fleet=*/true));
  }
  registry.DisarmAll();
  EXPECT_EQ(quiet, armed);
}

TEST(ScenarioDeterminismTest, ThreadPoolGenerationIsBitIdentical) {
  const std::vector<units::Seconds> refs = References(20);
  const std::vector<const scenario::Scenario*> all =
      scenario::AllScenarios();
  std::vector<uint64_t> sequential;
  for (const scenario::Scenario* s : all) {
    sequential.push_back(Digest(*s, refs, BaseParams(42), /*fleet=*/true));
  }
  for (int num_threads : {1, 4}) {
    ThreadPool pool(num_threads);
    std::vector<std::future<uint64_t>> futures;
    futures.reserve(all.size() * 3);
    // Three concurrent generations per scenario: the trace is a pure
    // function of the params, so racing generations cannot see each
    // other.
    for (int repeat = 0; repeat < 3; ++repeat) {
      for (const scenario::Scenario* s : all) {
        futures.push_back(pool.Submit([s, &refs] {
          return Digest(*s, refs, BaseParams(42), /*fleet=*/true);
        }));
      }
    }
    for (size_t i = 0; i < futures.size(); ++i) {
      EXPECT_EQ(futures[i].get(), sequential[i % all.size()])
          << all[i % all.size()]->name() << " at " << num_threads
          << " threads";
    }
  }
}

TEST(ScenarioDeterminismTest, DigestIsOrderAndValueSensitive) {
  const std::vector<units::Seconds> refs = References(6);
  const scenario::Scenario* poisson =
      scenario::FindScenario(scenario::kPoissonSteadyName);
  ASSERT_NE(poisson, nullptr);
  auto trace = poisson->GenerateTrace(refs, BaseParams(42));
  ASSERT_TRUE(trace.ok()) << trace.status();
  const uint64_t base = scenario::TraceDigest(trace->requests);

  auto mutated = trace->requests;
  mutated[0].template_index = (mutated[0].template_index + 1) % 6;
  EXPECT_NE(scenario::TraceDigest(mutated), base);

  auto swapped = trace->requests;
  std::swap(swapped[0], swapped[1]);
  EXPECT_NE(scenario::TraceDigest(swapped), base);

  EXPECT_NE(scenario::TraceDigest({}), base);
}

}  // namespace
}  // namespace contender

#include "math/eigen.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/random.h"

namespace contender {
namespace {

TEST(EigenTest, DiagonalMatrix) {
  auto eig = SymmetricEigen({{3.0, 0.0}, {0.0, 1.0}});
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig->values[0], 3.0, 1e-10);
  EXPECT_NEAR(eig->values[1], 1.0, 1e-10);
}

TEST(EigenTest, KnownEigenpairs) {
  // [[2,1],[1,2]] has eigenvalues 3 and 1.
  auto eig = SymmetricEigen({{2.0, 1.0}, {1.0, 2.0}});
  ASSERT_TRUE(eig.ok());
  EXPECT_NEAR(eig->values[0], 3.0, 1e-10);
  EXPECT_NEAR(eig->values[1], 1.0, 1e-10);
  // Eigenvector for 3 is (1,1)/sqrt(2) up to sign.
  const double v0 = eig->vectors(0, 0);
  const double v1 = eig->vectors(1, 0);
  EXPECT_NEAR(std::fabs(v0), 1.0 / std::sqrt(2.0), 1e-8);
  EXPECT_NEAR(v0, v1, 1e-8);
}

TEST(EigenTest, RejectsNonSymmetric) {
  EXPECT_FALSE(SymmetricEigen({{1.0, 2.0}, {0.0, 1.0}}).ok());
  EXPECT_FALSE(SymmetricEigen(Matrix(2, 3)).ok());
}

class EigenReconstruction : public ::testing::TestWithParam<int> {};

TEST_P(EigenReconstruction, VDVtEqualsInput) {
  const int n = GetParam();
  Rng rng(500 + static_cast<uint64_t>(n));
  Matrix b(static_cast<size_t>(n), static_cast<size_t>(n));
  for (size_t r = 0; r < b.rows(); ++r) {
    for (size_t c = 0; c < b.cols(); ++c) b(r, c) = rng.Uniform(-1.0, 1.0);
  }
  Matrix a = b.Add(b.Transpose()).Scale(0.5);  // symmetric
  auto eig = SymmetricEigen(a);
  ASSERT_TRUE(eig.ok());

  // Eigenvalues sorted descending.
  for (size_t i = 1; i < eig->values.size(); ++i) {
    EXPECT_GE(eig->values[i - 1], eig->values[i] - 1e-12);
  }
  // Reconstruct V diag(w) V^T.
  Matrix d(static_cast<size_t>(n), static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    d(static_cast<size_t>(i), static_cast<size_t>(i)) =
        eig->values[static_cast<size_t>(i)];
  }
  Matrix rec =
      eig->vectors.Multiply(d).Multiply(eig->vectors.Transpose());
  for (size_t r = 0; r < a.rows(); ++r) {
    for (size_t c = 0; c < a.cols(); ++c) {
      EXPECT_NEAR(rec(r, c), a(r, c), 1e-8);
    }
  }
  // Orthonormal eigenvectors.
  Matrix vtv = eig->vectors.Transpose().Multiply(eig->vectors);
  for (size_t r = 0; r < vtv.rows(); ++r) {
    for (size_t c = 0; c < vtv.cols(); ++c) {
      EXPECT_NEAR(vtv(r, c), r == c ? 1.0 : 0.0, 1e-8);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, EigenReconstruction,
                         ::testing::Values(2, 3, 5, 8, 16, 32));

TEST(GeneralizedEigenTest, ReducesToOrdinaryWhenBIsIdentity) {
  Matrix a = {{2.0, 1.0}, {1.0, 2.0}};
  auto gen = GeneralizedSymmetricEigen(a, Matrix::Identity(2));
  ASSERT_TRUE(gen.ok());
  EXPECT_NEAR(gen->values[0], 3.0, 1e-9);
  EXPECT_NEAR(gen->values[1], 1.0, 1e-9);
}

TEST(GeneralizedEigenTest, SatisfiesDefinition) {
  Rng rng(77);
  const size_t n = 5;
  Matrix m(n, n), c(n, n);
  for (size_t r = 0; r < n; ++r) {
    for (size_t cc = 0; cc < n; ++cc) {
      m(r, cc) = rng.Uniform(-1.0, 1.0);
      c(r, cc) = rng.Uniform(-1.0, 1.0);
    }
  }
  Matrix a = m.Add(m.Transpose()).Scale(0.5);
  Matrix b = c.Multiply(c.Transpose());
  b.AddToDiagonal(1.0);  // SPD

  auto gen = GeneralizedSymmetricEigen(a, b);
  ASSERT_TRUE(gen.ok());
  // Check A v = lambda B v for each eigenpair.
  for (size_t k = 0; k < n; ++k) {
    Vector v(n);
    for (size_t i = 0; i < n; ++i) v[i] = gen->vectors(i, k);
    Vector av = a.Multiply(v);
    Vector bv = b.Multiply(v);
    for (size_t i = 0; i < n; ++i) {
      EXPECT_NEAR(av[i], gen->values[k] * bv[i], 1e-7);
    }
  }
}

TEST(GeneralizedEigenTest, RejectsNonSpdB) {
  Matrix a = Matrix::Identity(2);
  EXPECT_FALSE(GeneralizedSymmetricEigen(a, {{1.0, 2.0}, {2.0, 1.0}}).ok());
}

}  // namespace
}  // namespace contender

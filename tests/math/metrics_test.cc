#include "math/metrics.h"

#include <cmath>
#include <gtest/gtest.h>

namespace contender {
namespace {

TEST(MreTest, PaperEquationOne) {
  // MRE = (1/n) sum |obs - pred| / obs.
  EXPECT_DOUBLE_EQ(MeanRelativeError({100.0, 200.0}, {110.0, 180.0}),
                   (0.1 + 0.1) / 2.0);
}

TEST(MreTest, PerfectPrediction) {
  EXPECT_DOUBLE_EQ(MeanRelativeError({5.0, 7.0}, {5.0, 7.0}), 0.0);
}

TEST(MreTest, SkipsZeroObservations) {
  EXPECT_DOUBLE_EQ(MeanRelativeError({0.0, 100.0}, {50.0, 150.0}), 0.5);
}

TEST(MreTest, EmptyInput) {
  EXPECT_DOUBLE_EQ(MeanRelativeError({}, {}), 0.0);
}

TEST(MreTest, SymmetricInMagnitudeNotDirection) {
  // Over- and under-prediction of equal absolute size count equally.
  EXPECT_DOUBLE_EQ(MeanRelativeError({100.0}, {120.0}),
                   MeanRelativeError({100.0}, {80.0}));
}

TEST(RSquaredTest, PerfectFitIsOne) {
  EXPECT_DOUBLE_EQ(RSquared({1.0, 2.0, 3.0}, {1.0, 2.0, 3.0}), 1.0);
}

TEST(RSquaredTest, MeanPredictionIsZero) {
  EXPECT_NEAR(RSquared({1.0, 2.0, 3.0}, {2.0, 2.0, 2.0}), 0.0, 1e-12);
}

TEST(RSquaredTest, ConstantObservationsGiveZero) {
  EXPECT_DOUBLE_EQ(RSquared({2.0, 2.0}, {1.0, 3.0}), 0.0);
}

TEST(PearsonTest, PerfectCorrelations) {
  EXPECT_NEAR(PearsonCorrelation({1.0, 2.0, 3.0}, {2.0, 4.0, 6.0}), 1.0,
              1e-12);
  EXPECT_NEAR(PearsonCorrelation({1.0, 2.0, 3.0}, {6.0, 4.0, 2.0}), -1.0,
              1e-12);
}

TEST(PearsonTest, ConstantInputGivesZero) {
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1.0, 1.0}, {2.0, 3.0}), 0.0);
  EXPECT_DOUBLE_EQ(PearsonCorrelation({1.0}, {2.0}), 0.0);
}

TEST(PearsonTest, ScaleInvariant) {
  const std::vector<double> x = {1.0, 4.0, 2.0, 8.0};
  const std::vector<double> y = {3.0, 1.0, 5.0, 9.0};
  std::vector<double> y_scaled;
  for (double v : y) y_scaled.push_back(10.0 * v - 4.0);
  EXPECT_NEAR(PearsonCorrelation(x, y), PearsonCorrelation(x, y_scaled),
              1e-12);
}

TEST(RmseTest, KnownValue) {
  EXPECT_DOUBLE_EQ(Rmse({1.0, 2.0}, {2.0, 4.0}),
                   std::sqrt((1.0 + 4.0) / 2.0));
  EXPECT_DOUBLE_EQ(Rmse({}, {}), 0.0);
}

}  // namespace
}  // namespace contender

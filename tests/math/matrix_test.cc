#include "math/matrix.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/random.h"

namespace contender {
namespace {

TEST(MatrixTest, InitializerListAndAccess) {
  Matrix m = {{1.0, 2.0}, {3.0, 4.0}};
  EXPECT_EQ(m.rows(), 2u);
  EXPECT_EQ(m.cols(), 2u);
  EXPECT_DOUBLE_EQ(m(0, 1), 2.0);
  EXPECT_DOUBLE_EQ(m(1, 0), 3.0);
}

TEST(MatrixTest, IdentityMultiplication) {
  Matrix m = {{1.0, 2.0}, {3.0, 4.0}};
  Matrix i = Matrix::Identity(2);
  Matrix p = m.Multiply(i);
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 2; ++c) EXPECT_DOUBLE_EQ(p(r, c), m(r, c));
  }
}

TEST(MatrixTest, MultiplyKnownResult) {
  Matrix a = {{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  Matrix b = {{7.0, 8.0}, {9.0, 10.0}, {11.0, 12.0}};
  Matrix p = a.Multiply(b);
  EXPECT_DOUBLE_EQ(p(0, 0), 58.0);
  EXPECT_DOUBLE_EQ(p(0, 1), 64.0);
  EXPECT_DOUBLE_EQ(p(1, 0), 139.0);
  EXPECT_DOUBLE_EQ(p(1, 1), 154.0);
}

TEST(MatrixTest, MultiplyVector) {
  Matrix a = {{1.0, 2.0}, {3.0, 4.0}};
  Vector v = a.Multiply(Vector{1.0, 1.0});
  EXPECT_DOUBLE_EQ(v[0], 3.0);
  EXPECT_DOUBLE_EQ(v[1], 7.0);
}

TEST(MatrixTest, TransposeRoundTrip) {
  Matrix a = {{1.0, 2.0, 3.0}, {4.0, 5.0, 6.0}};
  Matrix t = a.Transpose();
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.cols(), 2u);
  Matrix tt = t.Transpose();
  for (size_t r = 0; r < 2; ++r) {
    for (size_t c = 0; c < 3; ++c) EXPECT_DOUBLE_EQ(tt(r, c), a(r, c));
  }
}

TEST(MatrixTest, AddAndScale) {
  Matrix a = {{1.0, 2.0}};
  Matrix b = {{3.0, 4.0}};
  Matrix s = a.Add(b).Scale(2.0);
  EXPECT_DOUBLE_EQ(s(0, 0), 8.0);
  EXPECT_DOUBLE_EQ(s(0, 1), 12.0);
}

TEST(MatrixTest, AddToDiagonal) {
  Matrix a = Matrix(3, 3);
  a.AddToDiagonal(2.5);
  EXPECT_DOUBLE_EQ(a(0, 0), 2.5);
  EXPECT_DOUBLE_EQ(a(2, 2), 2.5);
  EXPECT_DOUBLE_EQ(a(0, 1), 0.0);
}

TEST(SolveTest, KnownSystem) {
  // x + 2y = 5; 3x + 4y = 11  =>  x = 1, y = 2.
  auto x = SolveLinearSystem({{1.0, 2.0}, {3.0, 4.0}}, {5.0, 11.0});
  ASSERT_TRUE(x.ok());
  EXPECT_NEAR((*x)[0], 1.0, 1e-12);
  EXPECT_NEAR((*x)[1], 2.0, 1e-12);
}

TEST(SolveTest, SingularRejected) {
  auto x = SolveLinearSystem({{1.0, 2.0}, {2.0, 4.0}}, {1.0, 2.0});
  EXPECT_FALSE(x.ok());
  EXPECT_EQ(x.status().code(), StatusCode::kInvalidArgument);
}

TEST(SolveTest, ShapeMismatchRejected) {
  EXPECT_FALSE(SolveLinearSystem(Matrix(2, 3), {1.0, 2.0}).ok());
  EXPECT_FALSE(SolveLinearSystem(Matrix(2, 2), {1.0}).ok());
}

// Property: for random well-conditioned systems, solve(A, A*x) == x.
class SolveRoundTrip : public ::testing::TestWithParam<int> {};

TEST_P(SolveRoundTrip, RecoversPlantedSolution) {
  const int n = GetParam();
  Rng rng(1000 + static_cast<uint64_t>(n));
  Matrix a(static_cast<size_t>(n), static_cast<size_t>(n));
  for (size_t r = 0; r < a.rows(); ++r) {
    for (size_t c = 0; c < a.cols(); ++c) a(r, c) = rng.Uniform(-1.0, 1.0);
    a(r, r) += static_cast<double>(n);  // diagonally dominant
  }
  Vector x(static_cast<size_t>(n));
  for (double& v : x) v = rng.Uniform(-5.0, 5.0);
  auto solved = SolveLinearSystem(a, a.Multiply(x));
  ASSERT_TRUE(solved.ok());
  for (size_t i = 0; i < x.size(); ++i) {
    EXPECT_NEAR((*solved)[i], x[i], 1e-8);
  }
}

INSTANTIATE_TEST_SUITE_P(Sizes, SolveRoundTrip,
                         ::testing::Values(1, 2, 3, 5, 10, 25, 50));

TEST(CholeskyTest, KnownFactorization) {
  Matrix a = {{4.0, 2.0}, {2.0, 3.0}};
  auto l = CholeskyFactor(a);
  ASSERT_TRUE(l.ok());
  EXPECT_NEAR((*l)(0, 0), 2.0, 1e-12);
  EXPECT_NEAR((*l)(1, 0), 1.0, 1e-12);
  EXPECT_NEAR((*l)(1, 1), std::sqrt(2.0), 1e-12);
  EXPECT_DOUBLE_EQ((*l)(0, 1), 0.0);
}

TEST(CholeskyTest, ReconstructsInput) {
  Rng rng(9);
  const size_t n = 6;
  Matrix b(n, n);
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < n; ++c) b(r, c) = rng.Uniform(-1.0, 1.0);
  }
  Matrix spd = b.Multiply(b.Transpose());
  spd.AddToDiagonal(0.5);
  auto l = CholeskyFactor(spd);
  ASSERT_TRUE(l.ok());
  Matrix rec = l->Multiply(l->Transpose());
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < n; ++c) EXPECT_NEAR(rec(r, c), spd(r, c), 1e-9);
  }
}

TEST(CholeskyTest, RejectsIndefinite) {
  EXPECT_FALSE(CholeskyFactor({{1.0, 2.0}, {2.0, 1.0}}).ok());
  EXPECT_FALSE(CholeskyFactor(Matrix(2, 3)).ok());
}

TEST(TriangularTest, ForwardAndBackSubstitution) {
  Matrix l = {{2.0, 0.0}, {1.0, 3.0}};
  // L y = b
  Vector y = ForwardSubstitute(l, {4.0, 11.0});
  EXPECT_NEAR(y[0], 2.0, 1e-12);
  EXPECT_NEAR(y[1], 3.0, 1e-12);
  // L^T x = y  with y = {2, 3}: 2x0 + 1x1 = 2; 3x1 = 3.
  Vector x = BackSubstituteTranspose(l, {2.0, 3.0});
  EXPECT_NEAR(x[1], 1.0, 1e-12);
  EXPECT_NEAR(x[0], 0.5, 1e-12);
}

TEST(TriangularTest, InvertLowerTriangular) {
  Matrix l = {{2.0, 0.0}, {1.0, 4.0}};
  auto inv = InvertLowerTriangular(l);
  ASSERT_TRUE(inv.ok());
  Matrix prod = l.Multiply(*inv);
  EXPECT_NEAR(prod(0, 0), 1.0, 1e-12);
  EXPECT_NEAR(prod(1, 1), 1.0, 1e-12);
  EXPECT_NEAR(prod(0, 1), 0.0, 1e-12);
  EXPECT_NEAR(prod(1, 0), 0.0, 1e-12);
}

TEST(VectorOpsTest, DotNormDistance) {
  EXPECT_DOUBLE_EQ(Dot({1.0, 2.0}, {3.0, 4.0}), 11.0);
  EXPECT_DOUBLE_EQ(Norm({3.0, 4.0}), 5.0);
  EXPECT_DOUBLE_EQ(SquaredDistance({1.0, 1.0}, {4.0, 5.0}), 25.0);
}

}  // namespace
}  // namespace contender

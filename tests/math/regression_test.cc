#include "math/regression.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace contender {
namespace {

TEST(SimpleLinearTest, ExactLine) {
  auto fit = FitSimpleLinear({1.0, 2.0, 3.0}, {5.0, 7.0, 9.0});
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->slope, 2.0, 1e-12);
  EXPECT_NEAR(fit->intercept, 3.0, 1e-12);
  EXPECT_NEAR(fit->r_squared, 1.0, 1e-12);
  EXPECT_NEAR(fit->Predict(10.0), 23.0, 1e-12);
}

TEST(SimpleLinearTest, RejectsDegenerateInput) {
  EXPECT_FALSE(FitSimpleLinear({1.0}, {2.0}).ok());
  EXPECT_FALSE(FitSimpleLinear({1.0, 2.0}, {2.0}).ok());
  EXPECT_FALSE(FitSimpleLinear({3.0, 3.0, 3.0}, {1.0, 2.0, 3.0}).ok());
}

TEST(SimpleLinearTest, NoisyRecovery) {
  Rng rng(21);
  std::vector<double> x, y;
  for (int i = 0; i < 500; ++i) {
    const double xi = rng.Uniform(0.0, 10.0);
    x.push_back(xi);
    y.push_back(4.0 * xi - 7.0 + rng.Normal(0.0, 0.5));
  }
  auto fit = FitSimpleLinear(x, y);
  ASSERT_TRUE(fit.ok());
  EXPECT_NEAR(fit->slope, 4.0, 0.05);
  EXPECT_NEAR(fit->intercept, -7.0, 0.3);
  EXPECT_GT(fit->r_squared, 0.98);
}

TEST(SimpleLinearTest, RSquaredZeroForUncorrelated) {
  Rng rng(22);
  std::vector<double> x, y;
  for (int i = 0; i < 2000; ++i) {
    x.push_back(rng.Uniform01());
    y.push_back(rng.Uniform01());
  }
  auto fit = FitSimpleLinear(x, y);
  ASSERT_TRUE(fit.ok());
  EXPECT_LT(fit->r_squared, 0.01);
}

// Parameterized sweep: multiple regression recovers planted coefficients
// across dimensionalities and noise levels.
class MultipleRegressionRecovery
    : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(MultipleRegressionRecovery, RecoversPlantedCoefficients) {
  const int dims = std::get<0>(GetParam());
  const double noise = std::get<1>(GetParam());
  Rng rng(static_cast<uint64_t>(dims * 100) + 7);

  Vector beta(static_cast<size_t>(dims));
  for (double& b : beta) b = rng.Uniform(-3.0, 3.0);
  const double intercept = 1.5;

  std::vector<Vector> x;
  std::vector<double> y;
  for (int i = 0; i < 400 + dims * 50; ++i) {
    Vector row(static_cast<size_t>(dims));
    for (double& v : row) v = rng.Uniform(-2.0, 2.0);
    double target = intercept + Dot(row, beta) + rng.Normal(0.0, noise);
    x.push_back(std::move(row));
    y.push_back(target);
  }
  auto model = MultipleLinearRegression::Fit(x, y);
  ASSERT_TRUE(model.ok());
  const double tol = 0.05 + noise * 0.15;
  for (size_t j = 0; j < beta.size(); ++j) {
    EXPECT_NEAR(model->coefficients()[j], beta[j], tol) << "dim " << j;
  }
  EXPECT_NEAR(model->intercept(), intercept, tol);
}

INSTANTIATE_TEST_SUITE_P(
    DimsAndNoise, MultipleRegressionRecovery,
    ::testing::Combine(::testing::Values(1, 2, 4, 8),
                       ::testing::Values(0.0, 0.2, 1.0)));

TEST(MultipleRegressionTest, RejectsBadShapes) {
  EXPECT_FALSE(MultipleLinearRegression::Fit({}, {}).ok());
  EXPECT_FALSE(
      MultipleLinearRegression::Fit({{1.0}, {2.0}}, {1.0}).ok());
  EXPECT_FALSE(
      MultipleLinearRegression::Fit({{1.0}, {2.0, 3.0}}, {1.0, 2.0}).ok());
  // Fewer observations than parameters.
  EXPECT_FALSE(
      MultipleLinearRegression::Fit({{1.0, 2.0, 3.0}}, {1.0}).ok());
}

TEST(MultipleRegressionTest, NoInterceptMode) {
  // y = 2x exactly, no intercept.
  auto model = MultipleLinearRegression::Fit(
      {{1.0}, {2.0}, {3.0}}, {2.0, 4.0, 6.0}, /*add_intercept=*/false);
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->coefficients()[0], 2.0, 1e-9);
  EXPECT_DOUBLE_EQ(model->intercept(), 0.0);
  EXPECT_NEAR(model->r_squared(), 1.0, 1e-9);
}

}  // namespace
}  // namespace contender

#include "math/kernel.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/random.h"

namespace contender {
namespace {

TEST(KernelTest, GaussianBasics) {
  EXPECT_DOUBLE_EQ(GaussianKernel({1.0, 2.0}, {1.0, 2.0}, 0.5), 1.0);
  EXPECT_DOUBLE_EQ(GaussianKernel({0.0}, {1.0}, 1.0), std::exp(-1.0));
  // Symmetric.
  EXPECT_DOUBLE_EQ(GaussianKernel({1.0, 0.0}, {0.0, 2.0}, 0.3),
                   GaussianKernel({0.0, 2.0}, {1.0, 0.0}, 0.3));
}

TEST(KernelTest, GramMatrixProperties) {
  Rng rng(3);
  std::vector<Vector> rows;
  for (int i = 0; i < 8; ++i) {
    rows.push_back({rng.Uniform01(), rng.Uniform01(), rng.Uniform01()});
  }
  Matrix k = GaussianGramMatrix(rows, 0.7);
  ASSERT_EQ(k.rows(), 8u);
  for (size_t i = 0; i < 8; ++i) {
    EXPECT_DOUBLE_EQ(k(i, i), 1.0);
    for (size_t j = 0; j < 8; ++j) {
      EXPECT_DOUBLE_EQ(k(i, j), k(j, i));
      EXPECT_GE(k(i, j), 0.0);
      EXPECT_LE(k(i, j), 1.0);
    }
  }
}

TEST(KernelTest, CenteredGramHasZeroRowSums) {
  Rng rng(5);
  std::vector<Vector> rows;
  for (int i = 0; i < 10; ++i) {
    rows.push_back({rng.Normal(), rng.Normal()});
  }
  Matrix centered = CenterGramMatrix(GaussianGramMatrix(rows, 1.0));
  for (size_t i = 0; i < centered.rows(); ++i) {
    double row_sum = 0.0;
    for (size_t j = 0; j < centered.cols(); ++j) row_sum += centered(i, j);
    EXPECT_NEAR(row_sum, 0.0, 1e-9);
  }
}

TEST(KernelTest, MedianHeuristicScalesWithData) {
  std::vector<Vector> tight = {{0.0}, {0.1}, {0.2}};
  std::vector<Vector> wide = {{0.0}, {10.0}, {20.0}};
  EXPECT_GT(MedianHeuristicGamma(tight), MedianHeuristicGamma(wide));
}

TEST(KernelTest, MedianHeuristicDegenerateFallback) {
  std::vector<Vector> same = {{1.0, 2.0}, {1.0, 2.0}};
  const double g = MedianHeuristicGamma(same);
  EXPECT_GT(g, 0.0);
  EXPECT_LE(g, 1.0);
}

}  // namespace
}  // namespace contender

// Chaos suite for the serving and scheduling paths (DESIGN.md §11).
//
// Arms the registered fail points — refit fit/publish, observation ingest,
// both snapshot ladder tiers, the oracle probe, thread-pool submit — while
// client threads keep predicting, and asserts the invariants that define
// graceful degradation:
//   * no deadlock and no torn snapshot (every batch answers from ONE
//     version) under concurrent chaos;
//   * every answer carries a truthful degradation tier: recomputing the
//     stamped tier's model with fail points disarmed reproduces the
//     latency bit-exactly;
//   * a fixed CONTENDER_CHAOS_SEED (here: SetRootSeed) reproduces the
//     whole degraded answer sequence bit-exactly across runs;
//   * with everything disarmed, serving is bit-identical to the plain
//     PredictInMix path.
//
// Runs under the `chaos` ctest label in the ASan/UBSan and TSan CI jobs.

#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <utility>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "sched/mix_oracle.h"
#include "sched/policy.h"
#include "serve/health.h"
#include "serve/observation_log.h"
#include "serve/refit_controller.h"
#include "serve/service.h"
#include "test_support.h"
#include "util/failpoint.h"
#include "util/random.h"
#include "util/retry.h"
#include "util/thread_pool.h"

namespace contender::serve {
namespace {

using contender::testing::SharedPredictor;
using contender::testing::SharedTrainingData;

std::shared_ptr<const ModelSnapshot> MakeSnapshot(uint64_t version = 1) {
  return ModelSnapshot::Create(SharedPredictor(), version);
}

// The full serving stack with an attached health tracker and a FakeClock
// so injected refit retries back off instantly.
struct ChaosStack {
  ChaosStack() {
    PredictionService::Options service_options;
    service_options.health = std::make_shared<HealthTracker>(
        static_cast<int>(SharedPredictor().profiles().size()));
    // Pin the batch pool width: PredictBatch only fans out (and so only
    // probes util.thread_pool.submit) with >= 2 workers, and CI hosts can
    // be single-core.
    service_options.num_threads = 4;
    service = std::make_unique<PredictionService>(MakeSnapshot(),
                                                  service_options);
    log = std::make_unique<ObservationLog>(service.get());
    RefitOptions refit_options;
    refit_options.min_new_observations = 8;
    refit_options.refit_retry.max_attempts = 3;
    refit_options.clock = &clock;
    controller = std::make_unique<RefitController>(
        service.get(), log.get(), SharedTrainingData().observations,
        refit_options);
  }

  FakeClock clock;
  std::unique_ptr<PredictionService> service;
  std::unique_ptr<ObservationLog> log;
  std::unique_ptr<RefitController> controller;
};

PredictRequest DrawRequest(Rng* rng, int num_templates) {
  PredictRequest r;
  r.template_index = static_cast<int>(
      rng->UniformInt(static_cast<uint64_t>(num_templates)));
  const uint64_t mix_size = rng->UniformInt(4);
  for (uint64_t j = 0; j < mix_size; ++j) {
    r.concurrent.push_back(static_cast<int>(
        rng->UniformInt(static_cast<uint64_t>(num_templates))));
  }
  return r;
}

// Recomputes the answer the stamped tier claims to have produced, with all
// fail points disarmed — the audit that makes degraded answers truthful.
units::Seconds RecomputeForTier(const ModelSnapshot& snapshot,
                                const PredictRequest& request,
                                DegradationTier tier) {
  const ContenderPredictor& predictor = snapshot.predictor();
  const TemplateProfile& profile =
      predictor.profiles()[static_cast<size_t>(request.template_index)];
  if (request.concurrent.empty()) return profile.isolated_latency;
  std::vector<int> canonical = request.concurrent;
  std::sort(canonical.begin(), canonical.end());
  switch (tier) {
    case DegradationTier::kFullModel: {
      auto full = predictor.PredictKnown(request.template_index, canonical);
      CONTENDER_CHECK(full.ok()) << full.status();
      return *full;
    }
    case DegradationTier::kTransferredQs: {
      auto transferred =
          predictor.PredictNew(profile, canonical,
                               SpoilerSource::kKnnPredicted);
      CONTENDER_CHECK(transferred.ok()) << transferred.status();
      return *transferred;
    }
    case DegradationTier::kIsolatedHeuristic:
      return profile.isolated_latency;
  }
  CONTENDER_CHECK(false) << "bad tier";
  return profile.isolated_latency;
}

// Every test restores a pristine registry: disarmed sites, root seed 0.
class ChaosTest : public ::testing::Test {
 protected:
  void TearDown() override {
    FailPointRegistry::Global().DisarmAll();
    FailPointRegistry::Global().SetRootSeed(0);
  }

  FailPointRegistry& registry() { return FailPointRegistry::Global(); }
};

const char* const kServeSites[] = {
    "serve.observation_log.ingest", "serve.refit.fit",
    "serve.refit.publish",          "serve.snapshot.qs_model",
    "serve.snapshot.transfer",
};

TEST_F(ChaosTest, RegisteredSitesCoverServeSchedAndUtil) {
  // Touch every hosting module so its static registrations ran.
  ChaosStack stack;
  sched::MixOracle oracle(&SharedPredictor());
  (void)oracle.PredictInMix(0, {1});

  const std::vector<std::string> serve_sites = registry().SiteNames("serve.");
  for (const char* site : kServeSites) {
    EXPECT_NE(std::find(serve_sites.begin(), serve_sites.end(), site),
              serve_sites.end())
        << site;
  }
  const std::vector<std::string> sched_sites = registry().SiteNames("sched.");
  EXPECT_NE(std::find(sched_sites.begin(), sched_sites.end(),
                      "sched.mix_oracle.predict"),
            sched_sites.end());
  const std::vector<std::string> util_sites = registry().SiteNames("util.");
  EXPECT_NE(std::find(util_sites.begin(), util_sites.end(),
                      "util.thread_pool.submit"),
            util_sites.end());
}

// The concurrency invariant test: four client threads predict while chaos
// fires in refit, publish, ingest, both ladder tiers and the thread pool.
// Passing under TSan means no deadlock and no data race; the assertions
// mean no torn snapshot and no invalid answer, ever.
TEST_F(ChaosTest, ProbabilityChaosFourClientThreadsStayConsistent) {
  ChaosStack stack;
  registry().SetRootSeed(0xC0FFEE);
  for (const char* site : kServeSites) {
    registry().ArmProbability(site, 0.25);
  }
  registry().ArmProbability("sched.mix_oracle.predict", 0.25);
  registry().ArmProbability("util.thread_pool.submit", 0.25);

  constexpr int kClients = 4;
  constexpr int kIterations = 200;
  const int n = stack.service->snapshot()->num_templates();
  std::atomic<uint64_t> answered{0};
  std::vector<std::thread> clients;
  clients.reserve(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      Rng rng(1000 + static_cast<uint64_t>(c));
      for (int i = 0; i < kIterations; ++i) {
        const PredictRequest r = DrawRequest(&rng, n);
        const PredictResult result =
            stack.service->PredictDetailed(r.template_index, r.concurrent);
        ASSERT_TRUE(result.status.ok()) << result.status;
        ASSERT_GT(result.latency.value(), 0.0);
        answered.fetch_add(1, std::memory_order_relaxed);
        if (i % 40 == 0) {
          // Batches must answer from ONE snapshot even mid-hot-swap.
          std::vector<PredictRequest> batch;
          for (int b = 0; b < 24; ++b) batch.push_back(DrawRequest(&rng, n));
          const auto results = stack.service->PredictBatch(batch);
          ASSERT_EQ(results.size(), batch.size());
          for (const PredictResult& br : results) {
            ASSERT_TRUE(br.status.ok());
            ASSERT_EQ(br.snapshot_version, results.front().snapshot_version)
                << "torn snapshot inside a batch";
          }
          answered.fetch_add(results.size(), std::memory_order_relaxed);
        }
      }
    });
  }
  // Main thread churns ingest + refit/publish under the same chaos.
  const auto& observations = SharedTrainingData().observations;
  for (int round = 0; round < 10; ++round) {
    for (size_t i = 0; i < 10; ++i) {
      (void)stack.log->Ingest(
          observations[(static_cast<size_t>(round) * 10 + i) %
                       observations.size()]);
    }
    (void)stack.controller->Step();  // may fail or quarantine: that's chaos
  }
  for (std::thread& t : clients) t.join();

  EXPECT_EQ(stack.service->served(), answered.load());
  // Every answer was stamped with some tier; counts reconcile exactly.
  const uint64_t tiers =
      stack.service->tier_count(DegradationTier::kFullModel) +
      stack.service->tier_count(DegradationTier::kTransferredQs) +
      stack.service->tier_count(DegradationTier::kIsolatedHeuristic);
  EXPECT_EQ(tiers, answered.load());
  // Chaos actually reached every armed site.
  for (const char* site : kServeSites) {
    EXPECT_GT(registry().Site(site).hits(), 0u) << site;
  }
  EXPECT_GT(registry().Site("util.thread_pool.submit").hits(), 0u);

  // Sanity after the storm: disarmed serving is healthy tier-0 again.
  registry().DisarmAll();
  const auto snapshot = stack.service->snapshot();
  const PredictResult calm = stack.service->PredictDetailed(0, {1, 2});
  EXPECT_TRUE(calm.status.ok());
  EXPECT_EQ(calm.tier, DegradationTier::kFullModel);
  EXPECT_EQ(calm.latency, snapshot->PredictInMix(0, {1, 2}));
}

TEST_F(ChaosTest, NthHitModeFiresExactlyOnceAtEveryServingSite) {
  {
    // Tier-0 site: the 2nd evaluation fails, all others answer tier 0.
    ChaosStack stack;
    registry().DisarmAll();
    registry().ArmNthHit("serve.snapshot.qs_model", 2);
    std::vector<DegradationTier> tiers;
    for (int i = 0; i < 4; ++i) {
      tiers.push_back(stack.service->PredictDetailed(3, {1, 2}).tier);
    }
    EXPECT_EQ(registry().Site("serve.snapshot.qs_model").fires(), 1u);
    EXPECT_EQ(tiers[0], DegradationTier::kFullModel);
    EXPECT_NE(tiers[1], DegradationTier::kFullModel);
    EXPECT_EQ(tiers[2], DegradationTier::kFullModel);
    EXPECT_EQ(tiers[3], DegradationTier::kFullModel);
  }
  {
    // Tier-1 site: only reachable after tier 0 fails, so hold tier 0 down
    // (probability 1.0) and inject the 2nd descent — it falls through to
    // the isolated heuristic; every other descent lands on transferred QS.
    ChaosStack stack;
    registry().DisarmAll();
    registry().ArmProbability("serve.snapshot.qs_model", 1.0);
    registry().ArmNthHit("serve.snapshot.transfer", 2);
    std::vector<DegradationTier> tiers;
    for (int i = 0; i < 4; ++i) {
      tiers.push_back(stack.service->PredictDetailed(3, {1, 2}).tier);
    }
    EXPECT_EQ(registry().Site("serve.snapshot.transfer").fires(), 1u);
    EXPECT_EQ(tiers[0], DegradationTier::kTransferredQs);
    EXPECT_EQ(tiers[1], DegradationTier::kIsolatedHeuristic);
    EXPECT_EQ(tiers[2], DegradationTier::kTransferredQs);
    EXPECT_EQ(tiers[3], DegradationTier::kTransferredQs);
  }
  {
    // Oracle probe: the 2nd of four identical probes degrades to isolated
    // (and is not cached; the later probes answer with the model again).
    registry().DisarmAll();
    sched::MixOracle oracle(&SharedPredictor());
    registry().ArmNthHit("sched.mix_oracle.predict", 2);
    const units::Seconds model = oracle.PredictInMix(0, {1, 2});
    EXPECT_EQ(oracle.PredictInMix(0, {1, 2}), oracle.IsolatedLatency(0));
    EXPECT_EQ(oracle.PredictInMix(0, {1, 2}), model);
    EXPECT_EQ(registry().Site("sched.mix_oracle.predict").fires(), 1u);
    EXPECT_EQ(oracle.degradations(), 1u);
  }
  {
    // Ingest: exactly the 2nd record is rejected.
    registry().DisarmAll();
    ChaosStack stack;
    registry().ArmNthHit("serve.observation_log.ingest", 2);
    const auto& obs = SharedTrainingData().observations;
    EXPECT_TRUE(stack.log->Ingest(obs[0]).ok());
    EXPECT_EQ(stack.log->Ingest(obs[1]).status().code(),
              StatusCode::kInternal);
    EXPECT_TRUE(stack.log->Ingest(obs[2]).ok());
    EXPECT_EQ(registry().Site("serve.observation_log.ingest").fires(), 1u);
  }
  {
    // Refit fit: the 2nd fit attempt ever is injected; the retry inside
    // that step absorbs it, so both steps still publish.
    registry().DisarmAll();
    ChaosStack stack;
    registry().ArmNthHit("serve.refit.fit", 2);
    const auto& obs = SharedTrainingData().observations;
    size_t next = 0;
    for (int stepi = 0; stepi < 2; ++stepi) {
      for (int i = 0; i < 8; ++i) {
        ASSERT_TRUE(stack.log->Ingest(obs[next++ % obs.size()]).ok());
      }
      auto step = stack.controller->Step();
      ASSERT_TRUE(step.ok()) << step.status();
      EXPECT_TRUE(step->refit);
    }
    EXPECT_EQ(registry().Site("serve.refit.fit").fires(), 1u);
    EXPECT_EQ(stack.controller->refits(), 2u);
    EXPECT_EQ(stack.controller->failed_steps(), 0u);
    EXPECT_EQ(stack.clock.sleeps().size(), 1u);  // one absorbed retry
  }
  {
    // Refit publish: aborts the 1st step terminally; the 2nd succeeds.
    registry().DisarmAll();
    ChaosStack stack;
    registry().ArmNthHit("serve.refit.publish", 1);
    const auto& obs = SharedTrainingData().observations;
    size_t next = 0;
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(stack.log->Ingest(obs[next++]).ok());
    }
    EXPECT_EQ(stack.controller->Step().status().code(), StatusCode::kAborted);
    EXPECT_EQ(stack.service->snapshot()->version(), 1u);
    for (int i = 0; i < 8; ++i) {
      ASSERT_TRUE(stack.log->Ingest(obs[next++]).ok());
    }
    auto step = stack.controller->Step();
    ASSERT_TRUE(step.ok()) << step.status();
    EXPECT_EQ(stack.service->snapshot()->version(), 2u);
    EXPECT_EQ(registry().Site("serve.refit.publish").fires(), 1u);
  }
}

// The acceptance criterion: one root seed reproduces the entire degraded
// answer sequence — latencies AND tiers — bit-exactly. Single-threaded
// driver: with probability mode each site's k-th evaluation is a pure hash
// of (site seed, k), so determinism needs a deterministic evaluation
// order, which one thread provides.
TEST_F(ChaosTest, RootSeedReproducesDegradedAnswerSequenceBitExactly) {
  auto run = [this](uint64_t seed) {
    registry().DisarmAll();
    registry().SetRootSeed(seed);
    registry().ArmProbability("serve.snapshot.qs_model", 0.3);
    registry().ArmProbability("serve.snapshot.transfer", 0.3);
    PredictionService service(MakeSnapshot());
    Rng rng(77);
    const int n = service.snapshot()->num_templates();
    std::vector<std::pair<double, int>> sequence;
    sequence.reserve(200);
    for (int i = 0; i < 200; ++i) {
      const PredictRequest r = DrawRequest(&rng, n);
      const PredictResult result =
          service.PredictDetailed(r.template_index, r.concurrent);
      CONTENDER_CHECK(result.status.ok());
      sequence.emplace_back(result.latency.value(),
                            static_cast<int>(result.tier));
    }
    return sequence;
  };
  const auto first = run(0xDEADBEEF);
  const auto second = run(0xDEADBEEF);
  ASSERT_EQ(first.size(), second.size());
  for (size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].first, second[i].first) << i;
    EXPECT_EQ(first[i].second, second[i].second) << i;
  }
  // Some answers actually degraded (the run exercised the ladder)...
  int degraded = 0;
  for (const auto& [latency, tier] : first) degraded += tier != 0 ? 1 : 0;
  EXPECT_GT(degraded, 0);
  // ...and a different seed fires a different subset.
  EXPECT_NE(first, run(0xBADD5EED));
}

TEST_F(ChaosTest, StampedTiersSurviveDisarmedRecomputationAudit) {
  registry().SetRootSeed(20260806);
  registry().ArmProbability("serve.snapshot.qs_model", 0.35);
  registry().ArmProbability("serve.snapshot.transfer", 0.35);
  PredictionService service(MakeSnapshot());
  const auto snapshot = service.snapshot();
  Rng rng(99);
  const int n = snapshot->num_templates();
  std::vector<std::pair<PredictRequest, PredictResult>> answered;
  for (int i = 0; i < 150; ++i) {
    PredictRequest r = DrawRequest(&rng, n);
    const PredictResult result =
        service.PredictDetailed(r.template_index, r.concurrent);
    ASSERT_TRUE(result.status.ok());
    answered.emplace_back(std::move(r), result);
  }
  registry().DisarmAll();
  int by_tier[3] = {0, 0, 0};
  for (const auto& [request, result] : answered) {
    ++by_tier[static_cast<int>(result.tier)];
    EXPECT_EQ(result.latency,
              RecomputeForTier(*snapshot, request, result.tier))
        << DegradationTierName(result.tier);
  }
  // The 0.35/0.35 arming exercised all three rungs.
  EXPECT_GT(by_tier[0], 0);
  EXPECT_GT(by_tier[1], 0);
  EXPECT_GT(by_tier[2], 0);
}

// With every fail point disarmed, the tiered path answers bit-identically
// to the plain PredictInMix path (the pre-ladder serving behavior) on the
// trained workload.
TEST_F(ChaosTest, DisarmedServingMatchesPlainPredictInMixBitExactly) {
  PredictionService service(MakeSnapshot());
  const auto snapshot = service.snapshot();
  Rng rng(123);
  const int n = snapshot->num_templates();
  for (int i = 0; i < 300; ++i) {
    const PredictRequest r = DrawRequest(&rng, n);
    const PredictResult result =
        service.PredictDetailed(r.template_index, r.concurrent);
    ASSERT_TRUE(result.status.ok());
    EXPECT_EQ(result.latency,
              snapshot->PredictInMix(r.template_index, r.concurrent));
    EXPECT_EQ(result.tier, DegradationTier::kFullModel);
  }
}

TEST_F(ChaosTest, OpenBreakerForcesLadderAndShortestIsolatedScheduling) {
  ChaosStack stack;
  const std::shared_ptr<HealthTracker>& health = stack.service->health();
  ASSERT_NE(health, nullptr);
  const int victim = 2;

  // Grossly mispredicted observations for the victim trip its breaker.
  MixObservation bad;
  for (const MixObservation& o : SharedTrainingData().observations) {
    if (o.primary_index == victim) {
      bad = o;
      break;
    }
  }
  ASSERT_EQ(bad.primary_index, victim);
  bad.latency = bad.latency * 50.0;
  for (int i = 0; i < 6; ++i) ASSERT_TRUE(stack.log->Ingest(bad).ok());
  ASSERT_EQ(health->state(victim), BreakerState::kOpen);

  // Serving: the victim starts at tier 1; other templates stay tier 0.
  const PredictResult degraded =
      stack.service->PredictDetailed(victim, {1, 3});
  EXPECT_EQ(degraded.tier, DegradationTier::kTransferredQs);
  EXPECT_EQ(stack.service->tier_count(DegradationTier::kTransferredQs), 1u);
  const PredictResult healthy = stack.service->PredictDetailed(5, {1, 3});
  EXPECT_EQ(healthy.tier, DegradationTier::kFullModel);

  // Scheduling: the same tracker degrades the oracle and drops scoring
  // policies to the shortest-isolated pick.
  sched::MixOracle::Options oracle_options;
  oracle_options.health = health.get();
  sched::MixOracle oracle(&SharedPredictor(), oracle_options);
  EXPECT_TRUE(oracle.Degraded(victim));
  EXPECT_EQ(oracle.PredictInMix(victim, {1, 3}),
            oracle.IsolatedLatency(victim));
  EXPECT_GE(oracle.degradations(), 1u);

  sched::RequestQueue queue = [&] {
    sched::Request a;
    a.request_id = 0;
    a.template_index = victim;
    a.arrival_time = units::Seconds(0.0);
    sched::Request b;
    b.request_id = 1;
    b.template_index = 7;
    b.arrival_time = units::Seconds(1.0);
    return sched::RequestQueue({a, b});
  }();
  const std::vector<int> running = {victim};
  sched::SchedContext ctx;
  ctx.now = units::Seconds(10.0);
  ctx.running_templates = &running;
  ctx.oracle = &oracle;
  auto greedy = sched::MakePolicy(sched::PolicyKind::kGreedyContention);
  auto shortest =
      sched::MakePolicy(sched::PolicyKind::kShortestIsolatedFirst);
  auto greedy_pick = greedy->Pick(queue, ctx);
  auto shortest_pick = shortest->Pick(queue, ctx);
  ASSERT_TRUE(greedy_pick.ok() && shortest_pick.ok());
  EXPECT_EQ(*greedy_pick, *shortest_pick);
}

TEST_F(ChaosTest, ThreadPoolSubmitChaosDegradesToInlineExecution) {
  PredictionService service(MakeSnapshot());
  Rng rng(55);
  const int n = service.snapshot()->num_templates();
  std::vector<PredictRequest> batch;
  for (int i = 0; i < 120; ++i) batch.push_back(DrawRequest(&rng, n));

  const auto baseline = service.PredictBatch(batch);
  registry().ArmProbability("util.thread_pool.submit", 1.0);
  const auto inline_results = service.PredictBatch(batch);
  registry().DisarmAll();

  ASSERT_EQ(baseline.size(), inline_results.size());
  for (size_t i = 0; i < baseline.size(); ++i) {
    EXPECT_EQ(baseline[i].status.code(), inline_results[i].status.code());
    EXPECT_EQ(baseline[i].latency, inline_results[i].latency) << i;
    EXPECT_EQ(baseline[i].tier, inline_results[i].tier) << i;
  }

  // Direct check: a fired submit runs the task on the caller's thread.
  ThreadPool pool(4);
  registry().ArmProbability("util.thread_pool.submit", 1.0);
  const std::thread::id caller = std::this_thread::get_id();
  auto ran_on = pool.Submit([] { return std::this_thread::get_id(); });
  EXPECT_EQ(ran_on.get(), caller);
}

}  // namespace
}  // namespace contender::serve

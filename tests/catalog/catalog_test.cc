#include "catalog/catalog.h"

#include <gtest/gtest.h>
#include <set>

#include "sim/config.h"

namespace contender {
namespace {

TEST(CatalogTest, TpcDsHasSevenFactTables) {
  Catalog c = Catalog::TpcDs100();
  auto facts = c.FactTables();
  EXPECT_EQ(facts.size(), 7u);
  std::set<std::string> names;
  for (const TableDef& t : facts) names.insert(t.name);
  EXPECT_TRUE(names.count("store_sales"));
  EXPECT_TRUE(names.count("catalog_sales"));
  EXPECT_TRUE(names.count("web_sales"));
  EXPECT_TRUE(names.count("inventory"));
}

TEST(CatalogTest, LookupByNameAndId) {
  Catalog c = Catalog::TpcDs100();
  auto ss = c.FindByName("store_sales");
  ASSERT_TRUE(ss.ok());
  EXPECT_TRUE(ss->is_fact);
  auto by_id = c.FindById(ss->id);
  ASSERT_TRUE(by_id.ok());
  EXPECT_EQ(by_id->name, "store_sales");
}

TEST(CatalogTest, MissingLookupsFail) {
  Catalog c = Catalog::TpcDs100();
  EXPECT_FALSE(c.FindByName("no_such_table").ok());
  EXPECT_FALSE(c.FindById(-1).ok());
  EXPECT_FALSE(c.FindById(10000).ok());
}

TEST(CatalogTest, IdsAreDenseAndOrdered) {
  Catalog c = Catalog::TpcDs100();
  for (size_t i = 0; i < c.tables().size(); ++i) {
    EXPECT_EQ(c.tables()[i].id, static_cast<sim::TableId>(i));
  }
}

TEST(CatalogTest, SizesApproximateScaleFactor100) {
  Catalog c = Catalog::TpcDs100();
  // store_sales dominates and the whole database lands near ~100 GB raw
  // (heap sizes run somewhat smaller than the 100 GB raw scale).
  EXPECT_GT(c.Get("store_sales").bytes, 30.0 * sim::kGB);
  EXPECT_GT(c.TotalBytes(), 60.0 * sim::kGB);
  EXPECT_LT(c.TotalBytes(), 120.0 * sim::kGB);
  // Facts dwarf dimensions.
  EXPECT_GT(c.Get("store_sales").bytes, 20.0 * c.Get("customer").bytes);
}

TEST(CatalogTest, DimensionsAreCacheableSized) {
  Catalog c = Catalog::TpcDs100();
  for (const TableDef& t : c.tables()) {
    if (!t.is_fact) {
      EXPECT_LT(t.bytes, 2.0 * sim::kGB) << t.name;
    }
  }
}

TEST(CatalogTest, CustomCatalogAssignsIds) {
  Catalog c({{0, "a", 10.0, 1, false}, {0, "b", 20.0, 2, true}});
  EXPECT_EQ(c.Get("a").id, 0);
  EXPECT_EQ(c.Get("b").id, 1);
  EXPECT_EQ(c.FactTables().size(), 1u);
}

}  // namespace
}  // namespace contender

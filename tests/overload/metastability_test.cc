// Metastability detector: recovery requires BOTH collapsed goodput and
// growing delay over a full window; recovery exits only when queue delay
// actually drains, not when the next window looks marginally better.

#include "overload/metastability.h"

#include <gtest/gtest.h>

#include <vector>

namespace contender::overload {
namespace {

MetastabilityOptions SmallOptions() {
  MetastabilityOptions options;
  options.window = 4;
  options.goodput_fraction = 0.5;
  options.delay_growth = 1.1;
  options.drain_delay = units::Seconds(1.0);
  return options;
}

TEST(MetastabilityTest, HealthySystemNeverEntersRecovery) {
  MetastabilityDetector detector(SmallOptions());
  // Goodput tracks offered (one completion per decision), delay low.
  uint64_t completions = 0;
  for (int i = 0; i < 64; ++i) {
    detector.Observe(units::Seconds(0.5), ++completions);
    EXPECT_FALSE(detector.in_recovery());
  }
  EXPECT_EQ(detector.windows(), 16u);
  EXPECT_EQ(detector.recovery_entries(), 0u);
}

TEST(MetastabilityTest, CollapsedGoodputAloneIsNotEnough) {
  MetastabilityDetector detector(SmallOptions());
  // Zero completions, but queue delay stays drained: the backlog is not
  // self-sustaining, so no recovery.
  for (int i = 0; i < 32; ++i) {
    detector.Observe(units::Seconds(0.2), 0);
  }
  EXPECT_FALSE(detector.in_recovery());
}

TEST(MetastabilityTest, GrowingDelayAloneIsNotEnough) {
  MetastabilityDetector detector(SmallOptions());
  // Delay ramps hard, but every decision completes work — the system is
  // slow, not metastable.
  uint64_t completions = 0;
  for (int i = 0; i < 32; ++i) {
    detector.Observe(units::Seconds(1.0 + i), ++completions);
  }
  EXPECT_FALSE(detector.in_recovery());
}

TEST(MetastabilityTest, CollapsedGoodputWithGrowingDelayEnters) {
  MetastabilityDetector detector(SmallOptions());
  // First window: delay ~5 (above drain_delay), zero completions —
  // enters at the first window boundary.
  detector.Observe(units::Seconds(5.0), 0);
  detector.Observe(units::Seconds(5.0), 0);
  detector.Observe(units::Seconds(5.0), 0);
  EXPECT_FALSE(detector.in_recovery()) << "mid-window: no verdict yet";
  detector.Observe(units::Seconds(5.0), 1);  // 1 of 4 < 0.5 * 4
  EXPECT_TRUE(detector.in_recovery());
  EXPECT_EQ(detector.recovery_entries(), 1u);
}

TEST(MetastabilityTest, RecoveryExitsOnDrainNotOnBetterWindow) {
  MetastabilityDetector detector(SmallOptions());
  for (int i = 0; i < 4; ++i) detector.Observe(units::Seconds(5.0), 0);
  ASSERT_TRUE(detector.in_recovery());
  // Delay improves (5.0 → 2.0) but stays above drain_delay: still in
  // recovery — exiting on "marginally better" re-enters the cycle.
  for (int i = 0; i < 8; ++i) {
    detector.Observe(units::Seconds(2.0), 0);
    EXPECT_TRUE(detector.in_recovery()) << "sample " << i;
  }
  // One drained sample ends recovery immediately, mid-window.
  detector.Observe(units::Seconds(0.5), 0);
  EXPECT_FALSE(detector.in_recovery());
  EXPECT_EQ(detector.recovery_entries(), 1u);
}

TEST(MetastabilityTest, ReentryAfterDrainNeedsFreshGrowth) {
  MetastabilityDetector detector(SmallOptions());
  for (int i = 0; i < 4; ++i) detector.Observe(units::Seconds(5.0), 0);
  ASSERT_TRUE(detector.in_recovery());
  // Drain the queue; then hold delay flat at a bad-but-not-growing 5.0.
  // prev window mean is polluted by the drained sample, so compare to
  // the actual sequence: window {0.5, 5, 5, 5} mean 3.875, next window
  // mean 5.0 > 3.875 * 1.1 → it re-enters only because delay grew again.
  detector.Observe(units::Seconds(0.5), 0);
  EXPECT_FALSE(detector.in_recovery());
  for (int i = 0; i < 3; ++i) detector.Observe(units::Seconds(5.0), 0);
  for (int i = 0; i < 4; ++i) detector.Observe(units::Seconds(5.0), 0);
  EXPECT_TRUE(detector.in_recovery());
  EXPECT_EQ(detector.recovery_entries(), 2u);
  // Flat windows after that: no third entry while already in recovery.
  for (int i = 0; i < 8; ++i) detector.Observe(units::Seconds(5.0), 0);
  EXPECT_EQ(detector.recovery_entries(), 2u);
}

TEST(MetastabilityTest, StateIsAPureFunctionOfTheSequence) {
  auto run = [] {
    MetastabilityDetector detector(SmallOptions());
    std::vector<bool> states;
    uint64_t completions = 0;
    for (int i = 0; i < 100; ++i) {
      const bool jammed = (i / 20) % 2 == 1;
      if (!jammed) ++completions;
      detector.Observe(units::Seconds(jammed ? 6.0 : 0.4), completions);
      states.push_back(detector.in_recovery());
    }
    return states;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace contender::overload

// AIMD limiter mechanics: multiplicative decrease past the overload
// ratio, additive +1 recovery after sustained health, cooldown between
// decreases, floor/ceiling clamps, and call-sequence determinism.

#include "overload/adaptive_limiter.h"

#include <gtest/gtest.h>

#include <vector>

namespace contender::overload {
namespace {

AdaptiveLimiterOptions SmallOptions() {
  AdaptiveLimiterOptions options;
  options.min_limit = 1;
  options.max_limit = 8;
  options.ewma_alpha = 1.0;  // unsmoothed: each sample IS the ratio
  options.overload_ratio = 1.4;
  options.decrease_factor = 0.5;
  options.increase_period = 3;
  options.decrease_cooldown = 2;
  return options;
}

TEST(AdaptiveLimiterTest, StartsAtCeilingAndTracksHealthySteady) {
  AdaptiveLimiter limiter(SmallOptions());
  EXPECT_EQ(limiter.limit(), 8);
  for (int i = 0; i < 32; ++i) {
    limiter.OnCompletion(units::Seconds(1.0), units::Seconds(1.0));
  }
  // Already at the ceiling: healthy completions never push past it.
  EXPECT_EQ(limiter.limit(), 8);
  EXPECT_EQ(limiter.decreases(), 0u);
  EXPECT_DOUBLE_EQ(limiter.ratio_ewma(), 1.0);
}

TEST(AdaptiveLimiterTest, SustainedOverloadBacksOffMultiplicatively) {
  AdaptiveLimiter limiter(SmallOptions());
  // Observed 2x predicted, well past the 1.4 knee.
  limiter.OnCompletion(units::Seconds(1.0), units::Seconds(2.0));
  EXPECT_EQ(limiter.limit(), 4) << "8 * 0.5";
  EXPECT_EQ(limiter.decreases(), 1u);
  // Cooldown: the very next bad completion must NOT halve again.
  limiter.OnCompletion(units::Seconds(1.0), units::Seconds(2.0));
  EXPECT_EQ(limiter.limit(), 4);
  // After the cooldown expires the decrease resumes, down to the floor.
  for (int i = 0; i < 16; ++i) {
    limiter.OnCompletion(units::Seconds(1.0), units::Seconds(2.0));
  }
  EXPECT_EQ(limiter.limit(), 1);
  limiter.OnCompletion(units::Seconds(1.0), units::Seconds(3.0));
  EXPECT_EQ(limiter.limit(), 1) << "never below min_limit";
}

TEST(AdaptiveLimiterTest, RecoversAdditivelyAfterHealthyStreak) {
  AdaptiveLimiter limiter(SmallOptions());
  limiter.OnCompletion(units::Seconds(1.0), units::Seconds(2.0));
  ASSERT_EQ(limiter.limit(), 4);
  // Two healthy completions: below increase_period, no change yet.
  limiter.OnCompletion(units::Seconds(1.0), units::Seconds(1.0));
  limiter.OnCompletion(units::Seconds(1.0), units::Seconds(1.0));
  EXPECT_EQ(limiter.limit(), 4);
  // Third consecutive healthy completion earns exactly +1.
  limiter.OnCompletion(units::Seconds(1.0), units::Seconds(1.0));
  EXPECT_EQ(limiter.limit(), 5);
  EXPECT_EQ(limiter.increases(), 1u);
  // Nine more healthy: three more +1 steps, clamped at the ceiling.
  for (int i = 0; i < 9; ++i) {
    limiter.OnCompletion(units::Seconds(1.0), units::Seconds(1.0));
  }
  EXPECT_EQ(limiter.limit(), 8);
}

TEST(AdaptiveLimiterTest, OverloadResetsTheHealthyStreak) {
  AdaptiveLimiter limiter(SmallOptions());
  limiter.OnCompletion(units::Seconds(1.0), units::Seconds(2.0));
  ASSERT_EQ(limiter.limit(), 4);
  // healthy, healthy, bad, healthy, healthy, healthy -> exactly one +1:
  // the bad sample must restart the streak.
  limiter.OnCompletion(units::Seconds(1.0), units::Seconds(1.0));
  limiter.OnCompletion(units::Seconds(1.0), units::Seconds(1.0));
  limiter.OnCompletion(units::Seconds(1.0), units::Seconds(2.0));
  limiter.OnCompletion(units::Seconds(1.0), units::Seconds(1.0));
  limiter.OnCompletion(units::Seconds(1.0), units::Seconds(1.0));
  EXPECT_EQ(limiter.increases(), 0u);
  limiter.OnCompletion(units::Seconds(1.0), units::Seconds(1.0));
  EXPECT_EQ(limiter.increases(), 1u);
}

TEST(AdaptiveLimiterTest, IgnoresNonPositivePredictions) {
  AdaptiveLimiter limiter(SmallOptions());
  limiter.OnCompletion(units::Seconds(0.0), units::Seconds(50.0));
  limiter.OnCompletion(units::Seconds(-1.0), units::Seconds(50.0));
  EXPECT_EQ(limiter.limit(), 8);
  EXPECT_EQ(limiter.completions(), 0u);
}

TEST(AdaptiveLimiterTest, EwmaSmoothsSpikes) {
  AdaptiveLimiterOptions options = SmallOptions();
  options.ewma_alpha = 0.2;
  AdaptiveLimiter limiter(options);
  // One 2.9x spike against a 1.0 EWMA: 0.8*1.0 + 0.2*2.9 = 1.38, below
  // the 1.4 knee — a single outlier cannot trigger backoff.
  limiter.OnCompletion(units::Seconds(1.0), units::Seconds(2.9));
  EXPECT_EQ(limiter.limit(), 8);
  EXPECT_NEAR(limiter.ratio_ewma(), 1.38, 1e-12);
}

TEST(AdaptiveLimiterTest, TrajectoryIsAPureFunctionOfTheSequence) {
  auto run = [] {
    AdaptiveLimiter limiter(SmallOptions());
    std::vector<int> trajectory;
    for (int i = 0; i < 64; ++i) {
      const double observed = (i % 7 < 3) ? 2.0 : 0.9;
      limiter.OnCompletion(units::Seconds(1.0), units::Seconds(observed));
      trajectory.push_back(limiter.limit());
    }
    return trajectory;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace contender::overload

// Brownout ladder mechanics: streak-gated escalation, hysteresis band
// holding, de-escalation symmetry, and the floor→admission mapping that
// sheds the least critical tier first.

#include "overload/brownout.h"

#include <gtest/gtest.h>

namespace contender::overload {
namespace {

BrownoutOptions SmallOptions() {
  BrownoutOptions options;
  options.enter_pressure = 2.0;
  options.exit_pressure = 0.75;
  options.rung_streak = 4;
  return options;
}

TEST(BrownoutTest, StartsOpenAndAdmitsEveryTier) {
  BrownoutLadder ladder(SmallOptions());
  EXPECT_EQ(ladder.rung(), 0);
  EXPECT_EQ(ladder.floor(), Criticality::kSheddable);
  for (Criticality tier : AllCriticalities()) {
    EXPECT_TRUE(ladder.Admits(tier));
  }
}

TEST(BrownoutTest, EscalatesOnlyAfterAFullStreak) {
  BrownoutLadder ladder(SmallOptions());
  for (int i = 0; i < 3; ++i) ladder.Observe(3.0);
  EXPECT_EQ(ladder.rung(), 0) << "three of four: not yet";
  ladder.Observe(3.0);
  EXPECT_EQ(ladder.rung(), 1);
  EXPECT_EQ(ladder.escalations(), 1u);
  // Rung 1 sheds exactly the sheddable tier.
  EXPECT_EQ(ladder.floor(), Criticality::kStandard);
  EXPECT_FALSE(ladder.Admits(Criticality::kSheddable));
  EXPECT_TRUE(ladder.Admits(Criticality::kStandard));
  EXPECT_TRUE(ladder.Admits(Criticality::kCritical));
}

TEST(BrownoutTest, TopRungAdmitsOnlyCriticalAndSaturates) {
  BrownoutLadder ladder(SmallOptions());
  for (int i = 0; i < 32; ++i) ladder.Observe(5.0);
  EXPECT_EQ(ladder.rung(), 2);
  EXPECT_EQ(ladder.floor(), Criticality::kCritical);
  EXPECT_FALSE(ladder.Admits(Criticality::kStandard));
  EXPECT_TRUE(ladder.Admits(Criticality::kCritical));
  EXPECT_EQ(ladder.escalations(), 2u) << "saturated: no phantom rungs";
}

TEST(BrownoutTest, HysteresisBandHoldsTheRung) {
  BrownoutLadder ladder(SmallOptions());
  for (int i = 0; i < 4; ++i) ladder.Observe(3.0);
  ASSERT_EQ(ladder.rung(), 1);
  // Pressure between exit (0.75) and enter (2.0): neither streak grows.
  for (int i = 0; i < 100; ++i) ladder.Observe(1.2);
  EXPECT_EQ(ladder.rung(), 1);
  EXPECT_EQ(ladder.deescalations(), 0u);
}

TEST(BrownoutTest, MixedSamplesResetTheStreaks) {
  BrownoutLadder ladder(SmallOptions());
  // Three above, one in-band, three above, ... never a full streak.
  for (int round = 0; round < 8; ++round) {
    for (int i = 0; i < 3; ++i) ladder.Observe(3.0);
    ladder.Observe(1.0);
  }
  EXPECT_EQ(ladder.rung(), 0);
}

TEST(BrownoutTest, DeescalatesAfterSustainedCalm) {
  BrownoutLadder ladder(SmallOptions());
  for (int i = 0; i < 8; ++i) ladder.Observe(5.0);
  ASSERT_EQ(ladder.rung(), 2);
  for (int i = 0; i < 3; ++i) ladder.Observe(0.1);
  EXPECT_EQ(ladder.rung(), 2) << "three of four calm: not yet";
  ladder.Observe(0.1);
  EXPECT_EQ(ladder.rung(), 1);
  for (int i = 0; i < 4; ++i) ladder.Observe(0.1);
  EXPECT_EQ(ladder.rung(), 0);
  EXPECT_EQ(ladder.deescalations(), 2u);
  // Fully open: further calm is a no-op.
  for (int i = 0; i < 8; ++i) ladder.Observe(0.0);
  EXPECT_EQ(ladder.rung(), 0);
  EXPECT_EQ(ladder.deescalations(), 2u);
}

}  // namespace
}  // namespace contender::overload

// The shed-reason taxonomy: stable names, round-trip parsing, and the
// deterministic tenant→criticality ladder — the vocabulary every ledger
// and bench column in the overload subsystem depends on.

#include "overload/shed_reason.h"

#include <gtest/gtest.h>

#include <set>
#include <string>

namespace contender::overload {
namespace {

TEST(ShedReasonTest, NamesAreStable) {
  EXPECT_STREQ(ShedReasonName(ShedReason::kQueueDelay), "queue-delay");
  EXPECT_STREQ(ShedReasonName(ShedReason::kQuota), "quota");
  EXPECT_STREQ(ShedReasonName(ShedReason::kMemoryPressure),
               "memory-pressure");
  EXPECT_STREQ(ShedReasonName(ShedReason::kCriticalityBrownout),
               "criticality-brownout");
  EXPECT_STREQ(ShedReasonName(ShedReason::kRetryBudget), "retry-budget");
}

TEST(ShedReasonTest, EveryReasonRoundTrips) {
  std::set<std::string> seen;
  for (ShedReason reason : AllShedReasons()) {
    const std::string name = ShedReasonName(reason);
    EXPECT_TRUE(seen.insert(name).second) << "duplicate name " << name;
    auto parsed = ShedReasonFromString(name);
    ASSERT_TRUE(parsed.has_value()) << name;
    EXPECT_EQ(*parsed, reason) << name;
  }
  EXPECT_EQ(AllShedReasons().size(), 5u);
  EXPECT_FALSE(ShedReasonFromString("").has_value());
  EXPECT_FALSE(ShedReasonFromString("oom").has_value());
  EXPECT_FALSE(ShedReasonFromString("Queue-Delay").has_value());
}

TEST(ShedReasonTest, CriticalityRoundTripsAndOrders) {
  for (Criticality tier : AllCriticalities()) {
    auto parsed = CriticalityFromString(CriticalityName(tier));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, tier);
  }
  EXPECT_EQ(AllCriticalities().size(), 3u);
  // The tiers are ordered: the brownout floor comparison relies on it.
  EXPECT_LT(Criticality::kSheddable, Criticality::kStandard);
  EXPECT_LT(Criticality::kStandard, Criticality::kCritical);
  EXPECT_FALSE(CriticalityFromString("vip").has_value());
}

TEST(ShedReasonTest, TenantLadderIsDeterministicAndMixesAllTiers) {
  // Pure function of tenant id — the fleet population stamps this, and
  // scenario digests depend on it never varying run to run.
  std::set<Criticality> seen;
  for (int tenant = 0; tenant < 9; ++tenant) {
    EXPECT_EQ(CriticalityForTenant(tenant), CriticalityForTenant(tenant));
    seen.insert(CriticalityForTenant(tenant));
  }
  EXPECT_EQ(seen.size(), 3u) << "ladder must mix all three tiers";
  // Tenant 0 — the heaviest Zipf share — is protected.
  EXPECT_EQ(CriticalityForTenant(0), Criticality::kCritical);
  // Unknown / unset tenants default to the standard tier.
  EXPECT_EQ(CriticalityForTenant(-1), Criticality::kStandard);
}

}  // namespace
}  // namespace contender::overload

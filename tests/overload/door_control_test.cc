// Door controller composition: precedence order, disabled-mode
// passthrough (quota and chaos stay live), criticality exemptions, the
// recovery drain, canonical shed Statuses, and chaos determinism via the
// "overload.door.shed" fail point.

#include "overload/door_control.h"

#include <gtest/gtest.h>

#include <vector>

#include "util/failpoint.h"

namespace contender::overload {
namespace {

DoorOptions EnabledOptions() {
  DoorOptions options;
  options.enabled = true;
  options.codel.target = units::Seconds(1.0);
  options.codel.interval = units::Seconds(10.0);
  options.brownout.enter_pressure = 2.0;
  options.brownout.exit_pressure = 0.75;
  options.brownout.rung_streak = 4;
  options.metastability.window = 8;
  options.metastability.goodput_fraction = 0.5;
  options.metastability.drain_delay = units::Seconds(1.0);
  return options;
}

DoorSample HealthySample(double now) {
  DoorSample sample;
  sample.now = units::Seconds(now);
  sample.queue_delay = units::Seconds(0.2);
  return sample;
}

class DoorControlTest : public ::testing::Test {
 protected:
  void TearDown() override { FailPointRegistry::Global().DisarmAll(); }
};

TEST_F(DoorControlTest, DisabledDoorStillEnforcesQuota) {
  DoorController door({});  // enabled = false
  DoorSample sample = HealthySample(0.0);
  EXPECT_EQ(door.Decide(sample), std::nullopt);
  sample.quota_exceeded = true;
  auto verdict = door.Decide(sample);
  ASSERT_TRUE(verdict.has_value());
  EXPECT_EQ(*verdict, ShedReason::kQuota);
  // Quota is a hard limit: even critical work is rejected.
  sample.criticality = Criticality::kCritical;
  EXPECT_EQ(door.Decide(sample), ShedReason::kQuota);
  EXPECT_EQ(door.stats().decisions, 3u);
  EXPECT_EQ(door.stats().admitted, 1u);
  EXPECT_EQ(door.stats().shed, 2u);
  EXPECT_EQ(door.stats().shed_by_reason.at(ShedReason::kQuota), 2u);
}

TEST_F(DoorControlTest, DisabledDoorIgnoresAdaptiveSignals) {
  DoorController door({});
  // Massive queue delay, memory pressure flagged: with the controller
  // off, everything but quota/chaos is a passthrough.
  DoorSample sample;
  sample.queue_delay = units::Seconds(500.0);
  sample.memory_exceeded = true;
  for (int i = 0; i < 64; ++i) {
    sample.now = units::Seconds(i);
    EXPECT_EQ(door.Decide(sample), std::nullopt);
  }
}

TEST_F(DoorControlTest, MemoryPressureBeatsEveryAdaptiveSignalAndIsHard) {
  DoorController door(EnabledOptions());
  DoorSample sample = HealthySample(0.0);
  sample.memory_exceeded = true;
  sample.criticality = Criticality::kCritical;
  EXPECT_EQ(door.Decide(sample), ShedReason::kMemoryPressure)
      << "memory is a hard limit even for critical work";
}

TEST_F(DoorControlTest, CoDelShedsSustainedQueueDelayButExemptsCritical) {
  DoorController door(EnabledOptions());
  // Delay just above target but below the brownout enter pressure
  // (2.0 * target), and completions tracking decisions so the
  // metastability detector stays quiet: CoDel is the only signal that
  // can fire.
  auto jammed = [](double now, uint64_t completions) {
    DoorSample sample;
    sample.now = units::Seconds(now);
    sample.queue_delay = units::Seconds(1.5);
    sample.predicted_completions = completions;
    return sample;
  };
  for (int i = 0; i < 10; ++i) {
    EXPECT_EQ(door.Decide(jammed(i, static_cast<uint64_t>(i))),
              std::nullopt)
        << "t=" << i;
  }
  EXPECT_EQ(door.Decide(jammed(10.0, 10)), ShedReason::kQueueDelay);
  // An identically-jammed critical arrival is exempt from queue-delay
  // shedding (only hard limits touch it).
  DoorSample critical = jammed(10.5, 11);
  critical.criticality = Criticality::kCritical;
  EXPECT_EQ(door.Decide(critical), std::nullopt);
}

TEST_F(DoorControlTest, BrownoutShedsLowestTierFirst) {
  DoorController door(EnabledOptions());
  // Pressure 3x target for a full streak escalates the ladder one rung.
  DoorSample sample;
  sample.queue_delay = units::Seconds(3.0);
  for (int i = 0; i < 4; ++i) {
    sample.now = units::Seconds(0.1 * i);
    sample.criticality = Criticality::kCritical;  // nothing shed yet
    door.Decide(sample);
  }
  EXPECT_EQ(door.brownout_floor(), Criticality::kStandard);
  sample.now = units::Seconds(1.0);
  sample.criticality = Criticality::kSheddable;
  EXPECT_EQ(door.Decide(sample), ShedReason::kCriticalityBrownout);
  sample.criticality = Criticality::kStandard;
  // Standard still passes the rung-1 floor; CoDel has not completed an
  // interval yet, so it admits.
  EXPECT_EQ(door.Decide(sample), std::nullopt);
  EXPECT_GE(door.stats().brownout_escalations, 1u);
}

TEST_F(DoorControlTest, RecoveryModeShedsEverythingBelowCritical) {
  DoorController door(EnabledOptions());
  // Window of 8 decisions: high delay, zero predicted completions.
  DoorSample jammed;
  jammed.queue_delay = units::Seconds(6.0);
  jammed.predicted_completions = 0;
  for (int i = 0; i < 8; ++i) {
    jammed.now = units::Seconds(0.1 * i);
    door.Decide(jammed);
  }
  ASSERT_TRUE(door.in_recovery());
  EXPECT_EQ(door.stats().recovery_entries, 1u);

  jammed.now = units::Seconds(2.0);
  jammed.criticality = Criticality::kStandard;
  EXPECT_EQ(door.Decide(jammed), ShedReason::kQueueDelay);
  const uint64_t recovery_sheds = door.stats().recovery_sheds;
  EXPECT_GE(recovery_sheds, 1u);
  // Critical work rides through recovery.
  jammed.criticality = Criticality::kCritical;
  EXPECT_EQ(door.Decide(jammed), std::nullopt);
  // Once delay drains below drain_delay, recovery ends (the brownout
  // ladder de-escalates separately, on its own calm streak).
  DoorSample drained = HealthySample(3.0);
  drained.criticality = Criticality::kCritical;
  EXPECT_EQ(door.Decide(drained), std::nullopt);
  EXPECT_FALSE(door.in_recovery());
}

TEST_F(DoorControlTest, ChaosShedFiresDeterministically) {
  auto run = [] {
    auto& registry = FailPointRegistry::Global();
    registry.SetRootSeed(11);
    registry.ArmProbability("overload.door.shed", 0.3);
    DoorController door({});
    std::vector<bool> shed;
    for (int i = 0; i < 64; ++i) {
      shed.push_back(door.Decide(HealthySample(i)).has_value());
    }
    registry.Disarm("overload.door.shed");
    return std::make_pair(shed, door.stats().chaos_sheds);
  };
  const auto first = run();
  const auto second = run();
  EXPECT_GT(first.second, 0u) << "chaos shed never fired at p=0.3";
  EXPECT_LT(first.second, 64u);
  EXPECT_EQ(first.first, second.first);
  EXPECT_EQ(first.second, second.second);
}

TEST_F(DoorControlTest, ShedStatusMapsHardAndTransientCodes) {
  // Hard limits: retrying cannot refill them.
  EXPECT_EQ(DoorController::ShedStatus(ShedReason::kQuota).code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(DoorController::ShedStatus(ShedReason::kMemoryPressure).code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(DoorController::ShedStatus(ShedReason::kRetryBudget).code(),
            StatusCode::kResourceExhausted);
  // Transient load sheds: retry-with-backoff later may succeed.
  EXPECT_EQ(DoorController::ShedStatus(ShedReason::kQueueDelay).code(),
            StatusCode::kUnavailable);
  EXPECT_EQ(
      DoorController::ShedStatus(ShedReason::kCriticalityBrownout).code(),
      StatusCode::kUnavailable);
  // Every status names its reason.
  for (ShedReason reason : AllShedReasons()) {
    const Status status = DoorController::ShedStatus(reason);
    EXPECT_FALSE(status.ok());
    EXPECT_NE(status.message().find(ShedReasonName(reason)),
              std::string::npos)
        << status;
  }
}

}  // namespace
}  // namespace contender::overload

// Retry budget mechanics: token-bucket deposits/withdrawals per key, and
// the RetryWithBudget integration — a dry bucket turns a would-be retry
// into a terminal kResourceExhausted before any backoff sleep runs.

#include "overload/retry_budget.h"

#include <gtest/gtest.h>

#include "util/retry.h"
#include "util/status.h"

namespace contender::overload {
namespace {

RetryBudgetOptions TightOptions() {
  RetryBudgetOptions options;
  options.deposit_per_attempt = 1.0;
  options.withdraw_per_retry = 10.0;
  options.initial_balance = 20.0;
  options.max_balance = 50.0;
  return options;
}

TEST(RetryBudgetTest, BucketDepositsWithdrawsAndDenies) {
  RetryBudget budget(TightOptions());
  EXPECT_DOUBLE_EQ(budget.balance(7), 20.0);
  // Two retries fit in the initial balance; the third is denied.
  EXPECT_TRUE(budget.TryWithdraw(7));
  EXPECT_TRUE(budget.TryWithdraw(7));
  EXPECT_DOUBLE_EQ(budget.balance(7), 0.0);
  EXPECT_FALSE(budget.TryWithdraw(7));
  EXPECT_EQ(budget.withdrawals(), 2u);
  EXPECT_EQ(budget.denials(), 1u);
  // Ten first attempts refill one retry's worth of tokens.
  for (int i = 0; i < 10; ++i) budget.RecordAttempt(7);
  EXPECT_DOUBLE_EQ(budget.balance(7), 10.0);
  EXPECT_TRUE(budget.TryWithdraw(7));
}

TEST(RetryBudgetTest, KeysAreIndependent) {
  RetryBudget budget(TightOptions());
  ASSERT_TRUE(budget.TryWithdraw(1));
  ASSERT_TRUE(budget.TryWithdraw(1));
  EXPECT_FALSE(budget.TryWithdraw(1));
  // Draining tenant 1's bucket leaves tenant 2 untouched.
  EXPECT_DOUBLE_EQ(budget.balance(2), 20.0);
  EXPECT_TRUE(budget.TryWithdraw(2));
}

TEST(RetryBudgetTest, BalanceIsCappedAtMax) {
  RetryBudget budget(TightOptions());
  for (int i = 0; i < 1000; ++i) budget.RecordAttempt(3);
  EXPECT_DOUBLE_EQ(budget.balance(3), 50.0)
      << "quiet periods must not bank unlimited retries";
}

TEST(RetryWithBudgetTest, NullBudgetDegradesToPlainBackoff) {
  FakeClock clock;
  RetryOptions options;
  options.max_attempts = 3;
  options.deadline = units::Seconds(60.0);
  int attempts = 0;
  const Status status = RetryWithBudget(
      nullptr, 0, options, /*jitter_seed=*/1, &clock, [&] {
        ++attempts;
        return attempts < 3 ? Status::Internal("transient") : Status::OK();
      });
  EXPECT_TRUE(status.ok()) << status;
  EXPECT_EQ(attempts, 3);
  EXPECT_EQ(clock.sleeps().size(), 2u);
}

TEST(RetryWithBudgetTest, FundedBudgetRetriesAndPaysPerRetry) {
  RetryBudget budget(TightOptions());
  FakeClock clock;
  RetryOptions options;
  options.max_attempts = 3;
  options.deadline = units::Seconds(60.0);
  int attempts = 0;
  const Status status =
      RetryWithBudget(&budget, 4, options, /*jitter_seed=*/1, &clock, [&] {
        ++attempts;
        return attempts < 3 ? Status::Internal("transient") : Status::OK();
      });
  EXPECT_TRUE(status.ok()) << status;
  EXPECT_EQ(attempts, 3);
  EXPECT_EQ(budget.withdrawals(), 2u) << "each of the two retries paid";
  EXPECT_EQ(budget.denials(), 0u);
  // 20 initial + 1 attempt deposit - 2 * 10 withdrawn.
  EXPECT_DOUBLE_EQ(budget.balance(4), 1.0);
}

TEST(RetryWithBudgetTest, DryBudgetDeniesBeforeTheFirstSleep) {
  RetryBudget budget(TightOptions());
  // Drain key 9 completely.
  ASSERT_TRUE(budget.TryWithdraw(9));
  ASSERT_TRUE(budget.TryWithdraw(9));
  ASSERT_DOUBLE_EQ(budget.balance(9), 0.0);

  FakeClock clock;
  RetryOptions options;
  options.max_attempts = 5;
  options.deadline = units::Seconds(60.0);
  int attempts = 0;
  const Status status =
      RetryWithBudget(&budget, 9, options, /*jitter_seed=*/1, &clock, [&] {
        ++attempts;
        return Status::Internal("keeps failing");
      });
  // The failure ran once; the retry it would have triggered was denied,
  // surfaced as the non-retryable budget status, with zero sleeps.
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  EXPECT_NE(status.message().find("retry budget"), std::string::npos)
      << status;
  EXPECT_EQ(attempts, 1);
  EXPECT_TRUE(clock.sleeps().empty());
  EXPECT_EQ(budget.denials(), 1u);
}

TEST(RetryWithBudgetTest, LastAttemptDoesNotPayForAPhantomRetry) {
  RetryBudget budget(TightOptions());
  FakeClock clock;
  RetryOptions options;
  options.max_attempts = 2;
  options.deadline = units::Seconds(60.0);
  const Status status =
      RetryWithBudget(&budget, 5, options, /*jitter_seed=*/1, &clock,
                      [] { return Status::Internal("always fails"); });
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  // One paid retry (before attempt 2); attempt 2's failure is terminal
  // by max_attempts, so no second token is burned.
  EXPECT_EQ(budget.withdrawals(), 1u);
  EXPECT_EQ(clock.sleeps().size(), 1u);
}

TEST(RetryWithBudgetTest, NonRetryableFailureCostsNothing) {
  RetryBudget budget(TightOptions());
  FakeClock clock;
  RetryOptions options;
  options.max_attempts = 5;
  options.deadline = units::Seconds(60.0);
  const Status status =
      RetryWithBudget(&budget, 6, options, /*jitter_seed=*/1, &clock,
                      [] { return Status::Aborted("terminal"); });
  EXPECT_EQ(status.code(), StatusCode::kAborted);
  EXPECT_EQ(budget.withdrawals(), 0u);
  EXPECT_TRUE(clock.sleeps().empty());
  // The attempt still deposited its token.
  EXPECT_DOUBLE_EQ(budget.balance(6), 21.0);
}

}  // namespace
}  // namespace contender::overload

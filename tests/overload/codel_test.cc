// CoDel controller mechanics on simulated time: bursts under an interval
// pass, sustained above-target delay triggers the first shed after one
// full interval, the interval/sqrt(n) schedule accelerates while delay
// stays high, and any dip under target resets everything.

#include "overload/codel.h"

#include <gtest/gtest.h>

#include <cmath>
#include <vector>

namespace contender::overload {
namespace {

CoDelOptions SmallOptions() {
  CoDelOptions options;
  options.target = units::Seconds(1.0);
  options.interval = units::Seconds(10.0);
  return options;
}

TEST(CoDelTest, HealthyDelayNeverSheds) {
  CoDelController codel(SmallOptions());
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(codel.ShouldShed(units::Seconds(i), units::Seconds(0.5)));
  }
  EXPECT_EQ(codel.sheds(), 0u);
  EXPECT_FALSE(codel.above_target());
}

TEST(CoDelTest, ShortBurstAboveTargetPasses) {
  CoDelController codel(SmallOptions());
  // 5 seconds above target — half an interval — then it drains. No shed.
  for (int i = 0; i < 5; ++i) {
    EXPECT_FALSE(codel.ShouldShed(units::Seconds(i), units::Seconds(3.0)));
  }
  EXPECT_TRUE(codel.above_target());
  EXPECT_FALSE(codel.ShouldShed(units::Seconds(5.0), units::Seconds(0.2)));
  EXPECT_FALSE(codel.above_target());
  EXPECT_EQ(codel.sheds(), 0u);
}

TEST(CoDelTest, PersistentDelayShedsAfterOneInterval) {
  CoDelController codel(SmallOptions());
  // Above target from t=0; the first shed is due at t=0+interval=10.
  for (int i = 0; i < 10; ++i) {
    EXPECT_FALSE(codel.ShouldShed(units::Seconds(i), units::Seconds(3.0)))
        << "at t=" << i;
  }
  EXPECT_TRUE(codel.ShouldShed(units::Seconds(10.0), units::Seconds(3.0)));
  EXPECT_TRUE(codel.dropping());
  EXPECT_EQ(codel.sheds(), 1u);
}

TEST(CoDelTest, DroppingScheduleAcceleratesLikeInverseSqrt) {
  CoDelController codel(SmallOptions());
  std::vector<double> shed_times;
  for (double t = 0.0; t <= 60.0; t += 0.25) {
    if (codel.ShouldShed(units::Seconds(t), units::Seconds(5.0))) {
      shed_times.push_back(t);
    }
  }
  ASSERT_GE(shed_times.size(), 4u);
  EXPECT_DOUBLE_EQ(shed_times[0], 10.0);
  // Gap after the n-th shed is interval/sqrt(n+1): 10/sqrt(2), 10/sqrt(3)…
  const double gap1 = shed_times[1] - shed_times[0];
  const double gap2 = shed_times[2] - shed_times[1];
  const double gap3 = shed_times[3] - shed_times[2];
  EXPECT_NEAR(gap1, 10.0 / std::sqrt(2.0), 0.25 + 1e-9);
  EXPECT_NEAR(gap2, 10.0 / std::sqrt(3.0), 0.25 + 1e-9);
  EXPECT_NEAR(gap3, 10.0 / std::sqrt(4.0), 0.25 + 1e-9);
  EXPECT_GT(gap1, gap2);
  EXPECT_GT(gap2, gap3);
}

TEST(CoDelTest, DipUnderTargetStopsDroppingImmediately) {
  CoDelController codel(SmallOptions());
  for (double t = 0.0; t <= 11.0; t += 1.0) {
    codel.ShouldShed(units::Seconds(t), units::Seconds(5.0));
  }
  ASSERT_TRUE(codel.dropping());
  const uint64_t sheds_before = codel.sheds();
  // One healthy sojourn ends the episode...
  EXPECT_FALSE(codel.ShouldShed(units::Seconds(12.0), units::Seconds(0.5)));
  EXPECT_FALSE(codel.dropping());
  // ...and the next above-target sample must wait a FULL interval again.
  for (double t = 13.0; t < 23.0; t += 1.0) {
    EXPECT_FALSE(codel.ShouldShed(units::Seconds(t), units::Seconds(5.0)))
        << "at t=" << t;
  }
  EXPECT_TRUE(codel.ShouldShed(units::Seconds(23.0), units::Seconds(5.0)));
  EXPECT_EQ(codel.sheds(), sheds_before + 1);
}

TEST(CoDelTest, StateIsAPureFunctionOfTheCallSequence) {
  auto run = [] {
    CoDelController codel(SmallOptions());
    std::vector<bool> decisions;
    for (int i = 0; i < 200; ++i) {
      const double sojourn = (i % 11 < 8) ? 4.0 : 0.3;
      decisions.push_back(codel.ShouldShed(units::Seconds(0.5 * i),
                                           units::Seconds(sojourn)));
    }
    return decisions;
  };
  EXPECT_EQ(run(), run());
}

}  // namespace
}  // namespace contender::overload

#include "sim/buffer_pool.h"

#include <gtest/gtest.h>

namespace contender::sim {
namespace {

TEST(BufferPoolTest, AdmitAndHit) {
  BufferPool pool(100.0);
  EXPECT_FALSE(pool.IsCached(1));
  pool.Admit(1, 40.0);
  EXPECT_TRUE(pool.IsCached(1));
  EXPECT_DOUBLE_EQ(pool.cached_bytes(), 40.0);
}

TEST(BufferPoolTest, OversizedTableIgnored) {
  BufferPool pool(100.0);
  pool.Admit(1, 150.0);
  EXPECT_FALSE(pool.IsCached(1));
  EXPECT_DOUBLE_EQ(pool.cached_bytes(), 0.0);
}

TEST(BufferPoolTest, LruEviction) {
  BufferPool pool(100.0);
  pool.Admit(1, 50.0);
  pool.Admit(2, 50.0);
  // Touch 1 so 2 becomes the LRU victim.
  pool.Touch(1);
  pool.Admit(3, 30.0);
  EXPECT_TRUE(pool.IsCached(1));
  EXPECT_FALSE(pool.IsCached(2));
  EXPECT_TRUE(pool.IsCached(3));
}

TEST(BufferPoolTest, DuplicateAdmitRefreshes) {
  BufferPool pool(100.0);
  pool.Admit(1, 60.0);
  pool.Admit(1, 60.0);
  EXPECT_DOUBLE_EQ(pool.cached_bytes(), 60.0);
  EXPECT_EQ(pool.num_cached_tables(), 1u);
}

TEST(BufferPoolTest, CapacityShrinkEvicts) {
  BufferPool pool(100.0);
  pool.Admit(1, 40.0);
  pool.Admit(2, 40.0);
  EXPECT_EQ(pool.num_cached_tables(), 2u);
  pool.SetCapacity(50.0);
  // LRU victim (table 1) evicted to fit.
  EXPECT_EQ(pool.num_cached_tables(), 1u);
  EXPECT_FALSE(pool.IsCached(1));
  EXPECT_TRUE(pool.IsCached(2));
  EXPECT_LE(pool.cached_bytes(), 50.0);
}

TEST(BufferPoolTest, CapacityShrinkToZeroEvictsAll) {
  BufferPool pool(100.0);
  pool.Admit(1, 10.0);
  pool.Admit(2, 10.0);
  pool.SetCapacity(0.0);
  EXPECT_EQ(pool.num_cached_tables(), 0u);
  EXPECT_DOUBLE_EQ(pool.cached_bytes(), 0.0);
}

TEST(BufferPoolTest, TouchUnknownTableIsNoop) {
  BufferPool pool(10.0);
  pool.Touch(99);
  EXPECT_EQ(pool.num_cached_tables(), 0u);
}

}  // namespace
}  // namespace contender::sim

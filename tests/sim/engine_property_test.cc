// Property-based sweeps over the fluid engine: conservation, monotonicity
// and fairness invariants that must hold for any workload shape.

#include <gtest/gtest.h>

#include "sim/engine.h"
#include "sim/spoiler.h"
#include "util/logging.h"
#include "util/random.h"

namespace contender::sim {
namespace {

SimConfig SweepConfig(bool noisy) {
  SimConfig c;
  c.seq_bandwidth = 120.0 * kMB;
  c.random_bandwidth = 2.5 * kMB;
  c.spill_bandwidth = 5.0 * kMB;
  c.seek_overhead = 0.07;
  c.random_io_sigma = noisy ? 0.3 : 0.0;
  c.spill_io_sigma = noisy ? 0.1 : 0.0;
  c.cpu_jitter = noisy ? 0.02 : 0.0;
  c.startup_cpu_seconds = 0.0;
  return c;
}

QuerySpec RandomQuery(Rng* rng, int table_pool) {
  QuerySpec q;
  q.name = "rand";
  const int phases = static_cast<int>(rng->UniformInt(int64_t{1}, int64_t{4}));
  for (int i = 0; i < phases; ++i) {
    Phase p;
    switch (rng->UniformInt(uint64_t{3})) {
      case 0:
        p.seq_io_bytes = rng->Uniform(50.0, 800.0) * kMB;
        p.table = static_cast<TableId>(
            rng->UniformInt(static_cast<uint64_t>(table_pool)));
        p.table_bytes = p.seq_io_bytes;
        break;
      case 1:
        p.rnd_io_bytes = rng->Uniform(5.0, 60.0) * kMB;
        break;
      default:
        p.cpu_seconds = rng->Uniform(1.0, 30.0);
        break;
    }
    if (rng->Uniform01() < 0.3) {
      p.mem_demand_bytes = rng->Uniform(0.1, 2.0) * kGB;
      p.spillable = true;
    }
    q.phases.push_back(p);
  }
  return q;
}

class EngineSweep : public ::testing::TestWithParam<int> {};

// Every process completes; latencies are positive; total disk reads match
// demands within the shared-scan savings; disk throughput never exceeds
// the sequential bandwidth.
TEST_P(EngineSweep, CompletionAndConservation) {
  Rng rng(static_cast<uint64_t>(GetParam()) * 7919 + 13);
  Engine engine(SweepConfig(true), rng.Next());
  const int n = 2 + GetParam() % 5;
  std::vector<int> pids;
  double total_demand = 0.0;
  for (int i = 0; i < n; ++i) {
    QuerySpec q = RandomQuery(&rng, 3);
    for (const Phase& p : q.phases) {
      total_demand += p.seq_io_bytes + p.rnd_io_bytes;
    }
    pids.push_back(
        engine.AddProcess(q, units::Seconds(rng.Uniform(0.0, 20.0))));
  }
  ASSERT_TRUE(engine.Run().ok());

  double total_read = 0.0;
  double total_saved = 0.0;
  double total_spilled = 0.0;
  for (int pid : pids) {
    const ProcessResult& r = engine.result(pid);
    EXPECT_TRUE(r.completed);
    EXPECT_GT(r.latency().value(), 0.0);
    EXPECT_LE(r.io_busy_seconds, r.latency().value() + 1e-6);
    EXPECT_GE(r.io_fraction().value(), 0.0);
    EXPECT_LE(r.io_fraction().value(), 1.0 + 1e-9);
    total_read += r.disk_bytes_read;
    total_saved += r.bytes_saved_by_shared_scan + r.bytes_saved_by_cache;
    total_spilled += r.spill_bytes;
  }
  // Logical bytes = physical reads + sharing/cache savings; spills add
  // physical traffic on top of the logical demand.
  EXPECT_NEAR(total_read + total_saved, total_demand + total_spilled,
              1e-3 * (total_demand + total_spilled) + 16.0);
  // Physical throughput bound.
  EXPECT_LE(total_read,
            engine.config().seq_bandwidth * engine.now().value() * 1.001 + 1.0);
  // All memory released at the end.
  EXPECT_NEAR(engine.memory_in_use().value(), 0.0, 1.0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineSweep, ::testing::Range(0, 12));

// Adding a contending process never speeds up a disjoint-scan query.
class ContentionMonotonicity : public ::testing::TestWithParam<int> {};

TEST_P(ContentionMonotonicity, MoreContentionNeverFaster) {
  const SimConfig cfg = SweepConfig(false);
  auto run = [&](int contenders) {
    Engine engine(cfg, 5);
    QuerySpec primary;
    primary.name = "primary";
    Phase p;
    p.seq_io_bytes = 600.0 * kMB;
    p.table = 100;  // disjoint from every contender
    primary.phases.push_back(p);
    const int pid = engine.AddProcess(primary, units::Seconds(0.0));
    for (int i = 0; i < contenders; ++i) {
      QuerySpec c;
      c.name = "bg";
      Phase cp;
      cp.seq_io_bytes = 5000.0 * kMB;
      cp.table = static_cast<TableId>(i);
      c.phases.push_back(cp);
      engine.AddProcess(c, units::Seconds(0.0));
    }
    CONTENDER_CHECK(engine.RunUntilProcessCompletes(pid).ok());
    return engine.result(pid).latency().value();
  };
  const int k = GetParam();
  EXPECT_LT(run(k), run(k + 1));
}

INSTANTIATE_TEST_SUITE_P(Levels, ContentionMonotonicity,
                         ::testing::Values(0, 1, 2, 3, 4));

// The spoiler is a worse adversary than any same-MPL mix of real queries
// with disjoint scans (its streams never pause for CPU).
TEST(EngineProperty, SpoilerIsWorstCaseForIoBoundQuery) {
  const SimConfig cfg = SweepConfig(false);
  QuerySpec primary;
  primary.name = "p";
  Phase p;
  p.seq_io_bytes = 700.0 * kMB;
  p.table = 50;
  primary.phases.push_back(p);

  Engine spoiled(cfg, 1);
  for (const QuerySpec& s : MakeSpoiler(cfg, units::Mpl(3))) spoiled.AddProcess(s, units::Seconds(0.0));
  const int spid = spoiled.AddProcess(primary, units::Seconds(0.0));
  ASSERT_TRUE(spoiled.RunUntilProcessCompletes(spid).ok());

  Engine mixed(cfg, 1);
  for (int i = 0; i < 2; ++i) {
    QuerySpec c;
    c.name = "real";
    Phase cp;
    cp.seq_io_bytes = 400.0 * kMB;
    cp.table = static_cast<TableId>(i);
    Phase think;
    think.cpu_seconds = 5.0;  // real queries have CPU pauses
    c.phases = {cp, think};
    mixed.AddProcess(c, units::Seconds(0.0));
  }
  const int mpid = mixed.AddProcess(primary, units::Seconds(0.0));
  ASSERT_TRUE(mixed.RunUntilProcessCompletes(mpid).ok());

  EXPECT_GE(spoiled.result(spid).latency().value(),
            mixed.result(mpid).latency().value() - 1e-6);
}

// Revocation: a large working set gets swapped when a comparable demand
// arrives, and the victim's spill traffic is accounted.
TEST(EngineProperty, MemoryReclaimVictimizesLargestHolder) {
  SimConfig cfg = SweepConfig(false);
  cfg.spill_amplification = 2.0;
  Engine engine(cfg, 1);

  QuerySpec big;
  big.name = "big";
  Phase bp;
  bp.cpu_seconds = 2000.0;
  bp.mem_demand_bytes = 5.0 * kGB;
  bp.spillable = true;
  big.phases.push_back(bp);
  const int big_pid = engine.AddProcess(big, units::Seconds(0.0));

  QuerySpec newcomer;
  newcomer.name = "newcomer";
  Phase np;
  np.cpu_seconds = 1.0;
  np.mem_demand_bytes = 4.0 * kGB;  // grantable is 6.6 GB -> pressure
  np.spillable = true;
  newcomer.phases.push_back(np);
  const int new_pid = engine.AddProcess(newcomer, units::Seconds(10.0));

  ASSERT_TRUE(engine.RunUntilProcessCompletes(new_pid).ok());
  // The newcomer got (most of) its demand by revoking from `big`.
  EXPECT_GT(engine.result(new_pid).max_memory_granted, 3.9 * kGB);
  ASSERT_TRUE(engine.RunUntilProcessCompletes(big_pid).ok());
  EXPECT_GT(engine.result(big_pid).spill_bytes, 0.0);
}

}  // namespace
}  // namespace contender::sim

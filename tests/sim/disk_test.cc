#include "sim/disk.h"

#include <gtest/gtest.h>

namespace contender::sim {
namespace {

SimConfig Config() {
  SimConfig c;
  c.seq_bandwidth = 100.0 * kMB;
  c.random_bandwidth = 2.0 * kMB;
  c.seek_overhead = 0.1;
  return c;
}

TEST(DiskTest, NoStreamsNoRates) {
  DiskAllocation a = AllocateDiskBandwidth(Config(), DiskDemand{});
  EXPECT_DOUBLE_EQ(a.seq_group_rate, 0.0);
  EXPECT_TRUE(a.random_stream_rates.empty());
}

TEST(DiskTest, SingleSequentialStreamGetsFullBandwidth) {
  DiskDemand d;
  d.num_seq_groups = 1;
  DiskAllocation a = AllocateDiskBandwidth(Config(), d);
  EXPECT_DOUBLE_EQ(a.seq_group_rate, 100.0 * kMB);
  EXPECT_DOUBLE_EQ(a.effective_bandwidth, 100.0 * kMB);
}

TEST(DiskTest, TwoSequentialStreamsShareWithSeekPenalty) {
  DiskDemand d;
  d.num_seq_groups = 2;
  DiskAllocation a = AllocateDiskBandwidth(Config(), d);
  // Effective bandwidth = 100 / 1.1; each group gets half of it.
  EXPECT_NEAR(a.effective_bandwidth, 100.0 * kMB / 1.1, 1.0);
  EXPECT_NEAR(a.seq_group_rate, 100.0 * kMB / 1.1 / 2.0, 1.0);
}

TEST(DiskTest, SingleRandomStreamCappedByIntrinsicRate) {
  DiskDemand d;
  d.random_stream_caps = {2.0 * kMB};
  DiskAllocation a = AllocateDiskBandwidth(Config(), d);
  ASSERT_EQ(a.random_stream_rates.size(), 1u);
  EXPECT_DOUBLE_EQ(a.random_stream_rates[0], 2.0 * kMB);
}

TEST(DiskTest, RandomStreamDegradesWithTimeShare) {
  DiskDemand d;
  d.num_seq_groups = 3;
  d.random_stream_caps = {2.0 * kMB};
  DiskAllocation a = AllocateDiskBandwidth(Config(), d);
  // 4 streams: the random stream owns 1/4 of device time.
  EXPECT_DOUBLE_EQ(a.random_stream_rates[0], 0.5 * kMB);
}

TEST(DiskTest, MoreStreamsNeverIncreasePerStreamRate) {
  double prev_seq = 1e18;
  for (int groups = 1; groups <= 8; ++groups) {
    DiskDemand d;
    d.num_seq_groups = groups;
    DiskAllocation a = AllocateDiskBandwidth(Config(), d);
    EXPECT_LT(a.seq_group_rate, prev_seq);
    prev_seq = a.seq_group_rate;
  }
}

TEST(DiskTest, ConservationSequentialRatesFitEffectiveBandwidth) {
  for (int groups = 1; groups <= 6; ++groups) {
    for (int randoms = 0; randoms <= 4; ++randoms) {
      DiskDemand d;
      d.num_seq_groups = groups;
      d.random_stream_caps.assign(static_cast<size_t>(randoms), 2.0 * kMB);
      DiskAllocation a = AllocateDiskBandwidth(Config(), d);
      // Sequential byte throughput must not exceed the sequential slices.
      const double seq_total = a.seq_group_rate * groups;
      const int streams = groups + randoms;
      EXPECT_LE(seq_total, a.effective_bandwidth * groups / streams + 1.0);
      for (double r : a.random_stream_rates) {
        EXPECT_LE(r, 2.0 * kMB / streams + 1.0);
      }
    }
  }
}

TEST(DiskTest, HeterogeneousRandomCaps) {
  DiskDemand d;
  d.num_seq_groups = 1;
  d.random_stream_caps = {1.0 * kMB, 4.0 * kMB};
  DiskAllocation a = AllocateDiskBandwidth(Config(), d);
  // Each random stream gets 1/3 of its own cap (3 streams total).
  EXPECT_NEAR(a.random_stream_rates[0], 1.0 * kMB / 3.0, 1.0);
  EXPECT_NEAR(a.random_stream_rates[1], 4.0 * kMB / 3.0, 1.0);
}

}  // namespace
}  // namespace contender::sim

#include "sim/spoiler.h"

#include <gtest/gtest.h>
#include <set>

#include "sim/engine.h"

namespace contender::sim {
namespace {

TEST(SpoilerTest, Composition) {
  SimConfig cfg;
  auto specs = MakeSpoiler(cfg, units::Mpl(4));
  // One memory pin plus MPL-1 reader streams.
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_GT(specs[0].pinned_memory_bytes, 0.0);
  EXPECT_NEAR(specs[0].pinned_memory_bytes, 0.75 * cfg.ram_bytes, 1.0);
  for (const QuerySpec& s : specs) EXPECT_TRUE(s.immortal);
  // Readers use distinct private (negative) tables: no accidental sharing.
  std::set<TableId> tables;
  for (size_t i = 1; i < specs.size(); ++i) {
    ASSERT_EQ(specs[i].phases.size(), 1u);
    EXPECT_LT(specs[i].phases[0].table, 0);
    tables.insert(specs[i].phases[0].table);
  }
  EXPECT_EQ(tables.size(), 3u);
}

TEST(SpoilerTest, PinFractionFollowsMpl) {
  SimConfig cfg;
  EXPECT_NEAR(MakeSpoiler(cfg, units::Mpl(2))[0].pinned_memory_bytes,
              0.5 * cfg.ram_bytes, 1.0);
  EXPECT_NEAR(MakeSpoiler(cfg, units::Mpl(5))[0].pinned_memory_bytes,
              0.8 * cfg.ram_bytes, 1.0);
}

TEST(SpoilerTest, MplBelowTwoYieldsNothing) {
  SimConfig cfg;
  EXPECT_TRUE(MakeSpoiler(cfg, units::Mpl(1)).empty());
  EXPECT_TRUE(MakeSpoiler(cfg, units::Mpl(0)).empty());
}

TEST(SpoilerTest, LatencyGrowsMonotonicallyWithMpl) {
  SimConfig cfg;
  cfg.random_io_sigma = 0.0;
  cfg.cpu_jitter = 0.0;
  double prev = 0.0;
  for (int mpl = 2; mpl <= 5; ++mpl) {
    Engine engine(cfg, 1);
    for (const QuerySpec& s : MakeSpoiler(cfg, units::Mpl(mpl))) {
      engine.AddProcess(s, units::Seconds(0.0));
    }
    QuerySpec primary;
    primary.name = "p";
    Phase p;
    p.seq_io_bytes = 2000.0 * kMB;
    p.table = 0;
    primary.phases.push_back(p);
    const int pid = engine.AddProcess(primary, units::Seconds(0.0));
    ASSERT_TRUE(engine.RunUntilProcessCompletes(pid).ok());
    const double latency = engine.result(pid).latency().value();
    EXPECT_GT(latency, prev);
    prev = latency;
  }
}

}  // namespace
}  // namespace contender::sim

#include "sim/engine.h"

#include <cmath>

#include <gtest/gtest.h>

#include "sim/spoiler.h"
#include "util/logging.h"

namespace contender::sim {
namespace {

// A noise-free machine for hand-computable scenarios.
SimConfig QuietConfig() {
  SimConfig c;
  c.seq_bandwidth = 100.0 * kMB;
  c.random_bandwidth = 2.0 * kMB;
  c.spill_bandwidth = 4.0 * kMB;
  c.seek_overhead = 0.0;
  c.random_io_sigma = 0.0;
  c.spill_io_sigma = 0.0;
  c.cpu_jitter = 0.0;
  c.startup_cpu_seconds = 0.0;
  c.ram_bytes = 8.0 * kGB;
  c.os_reserved_bytes = 1.0 * kGB;
  c.buffer_pool_fraction = 1.0;
  return c;
}

QuerySpec ScanQuery(const std::string& name, TableId table, double bytes,
                    bool cacheable = false, double table_bytes = -1.0) {
  QuerySpec q;
  q.name = name;
  Phase p;
  p.seq_io_bytes = bytes;
  p.table = table;
  p.table_bytes = table_bytes < 0.0 ? bytes : table_bytes;
  p.cacheable = cacheable;
  q.phases.push_back(p);
  return q;
}

TEST(EngineTest, SingleScanLatencyIsBytesOverBandwidth) {
  Engine engine(QuietConfig(), 1);
  const int pid = engine.AddProcess(ScanQuery("s", 0, 1000.0 * kMB), units::Seconds(0.0));
  ASSERT_TRUE(engine.Run().ok());
  const ProcessResult& r = engine.result(pid);
  EXPECT_TRUE(r.completed);
  EXPECT_NEAR(r.latency().value(), 10.0, 1e-6);
  EXPECT_NEAR(r.io_busy_seconds, 10.0, 1e-6);
  EXPECT_NEAR(r.disk_bytes_read, 1000.0 * kMB, 1.0);
  EXPECT_DOUBLE_EQ(r.io_fraction().value(), 1.0);
}

TEST(EngineTest, CpuAndIoOverlapWithinPhase) {
  Engine engine(QuietConfig(), 1);
  QuerySpec q = ScanQuery("s", 0, 500.0 * kMB);  // 5 s of I/O
  q.phases[0].cpu_seconds = 8.0;                 // longer CPU leg
  const int pid = engine.AddProcess(q, units::Seconds(0.0));
  ASSERT_TRUE(engine.Run().ok());
  const ProcessResult& r = engine.result(pid);
  EXPECT_NEAR(r.latency().value(), 8.0, 1e-6);          // max(io, cpu)
  EXPECT_NEAR(r.io_busy_seconds, 5.0, 1e-6);    // I/O leg finished first
  EXPECT_NEAR(r.cpu_busy_seconds, 8.0, 1e-6);
  EXPECT_NEAR(r.io_fraction().value(), 5.0 / 8.0, 1e-6);
}

TEST(EngineTest, PhasesRunSequentially) {
  Engine engine(QuietConfig(), 1);
  QuerySpec q;
  q.name = "two-phase";
  Phase a;
  a.seq_io_bytes = 100.0 * kMB;
  a.table = 0;
  Phase b;
  b.cpu_seconds = 3.0;
  q.phases = {a, b};
  const int pid = engine.AddProcess(q, units::Seconds(0.0));
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_NEAR(engine.result(pid).latency().value(), 1.0 + 3.0, 1e-6);
}

TEST(EngineTest, DisjointScansSlowEachOtherDown) {
  Engine engine(QuietConfig(), 1);
  const int a = engine.AddProcess(ScanQuery("a", 0, 500.0 * kMB), units::Seconds(0.0));
  const int b = engine.AddProcess(ScanQuery("b", 1, 500.0 * kMB), units::Seconds(0.0));
  ASSERT_TRUE(engine.Run().ok());
  // Two streams split the disk: both finish at 10 s instead of 5 s.
  EXPECT_NEAR(engine.result(a).latency().value(), 10.0, 1e-6);
  EXPECT_NEAR(engine.result(b).latency().value(), 10.0, 1e-6);
}

TEST(EngineTest, SharedScansProceedAtGroupRate) {
  Engine engine(QuietConfig(), 1);
  const int a = engine.AddProcess(ScanQuery("a", 7, 500.0 * kMB), units::Seconds(0.0));
  const int b = engine.AddProcess(ScanQuery("b", 7, 500.0 * kMB), units::Seconds(0.0));
  ASSERT_TRUE(engine.Run().ok());
  // Synchronized scan: one stream serves both; each finishes in 5 s.
  EXPECT_NEAR(engine.result(a).latency().value(), 5.0, 1e-6);
  EXPECT_NEAR(engine.result(b).latency().value(), 5.0, 1e-6);
  // Each member is accounted half the physical reads, half shared savings.
  EXPECT_NEAR(engine.result(a).disk_bytes_read, 250.0 * kMB, 1.0);
  EXPECT_NEAR(engine.result(a).bytes_saved_by_shared_scan, 250.0 * kMB, 1.0);
}

TEST(EngineTest, NegativeTableIdsNeverShare) {
  Engine engine(QuietConfig(), 1);
  const int a = engine.AddProcess(ScanQuery("a", -5, 500.0 * kMB), units::Seconds(0.0));
  const int b = engine.AddProcess(ScanQuery("b", -5, 500.0 * kMB), units::Seconds(0.0));
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_NEAR(engine.result(a).latency().value(), 10.0, 1e-6);
  EXPECT_NEAR(engine.result(b).latency().value(), 10.0, 1e-6);
}

TEST(EngineTest, DimensionTableCachedAfterFirstRead) {
  Engine engine(QuietConfig(), 1);
  const int a =
      engine.AddProcess(ScanQuery("a", 3, 200.0 * kMB, /*cacheable=*/true),
                        units::Seconds(0.0));
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_NEAR(engine.result(a).latency().value(), 2.0, 1e-6);
  // Second read is served from the buffer pool.
  const int b =
      engine.AddProcess(ScanQuery("b", 3, 200.0 * kMB, /*cacheable=*/true),
                        engine.now());
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_NEAR(engine.result(b).latency().value(), 0.0, 1e-6);
  EXPECT_NEAR(engine.result(b).bytes_saved_by_cache, 200.0 * kMB, 1.0);
  EXPECT_DOUBLE_EQ(engine.result(b).disk_bytes_read, 0.0);
}

TEST(EngineTest, RandomIoRunsAtIntrinsicRate) {
  Engine engine(QuietConfig(), 1);
  QuerySpec q;
  q.name = "rnd";
  Phase p;
  p.rnd_io_bytes = 20.0 * kMB;  // at 2 MB/s -> 10 s
  q.phases.push_back(p);
  const int pid = engine.AddProcess(q, units::Seconds(0.0));
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_NEAR(engine.result(pid).latency().value(), 10.0, 1e-6);
}

TEST(EngineTest, MemoryGrantedWhenAvailable) {
  Engine engine(QuietConfig(), 1);
  QuerySpec q;
  q.name = "mem";
  Phase p;
  p.cpu_seconds = 1.0;
  p.mem_demand_bytes = 2.0 * kGB;
  p.spillable = true;
  q.phases.push_back(p);
  const int pid = engine.AddProcess(q, units::Seconds(0.0));
  ASSERT_TRUE(engine.Run().ok());
  const ProcessResult& r = engine.result(pid);
  EXPECT_NEAR(r.max_memory_granted, 2.0 * kGB, 1.0);
  EXPECT_DOUBLE_EQ(r.spill_bytes, 0.0);
  EXPECT_NEAR(r.latency().value(), 1.0, 1e-6);
  // Grant released at completion.
  EXPECT_DOUBLE_EQ(engine.memory_in_use().value(), 0.0);
}

TEST(EngineTest, MemoryShortfallSpills) {
  SimConfig cfg = QuietConfig();
  cfg.spill_amplification = 2.0;
  Engine engine(cfg, 1);
  // Pin most of RAM via an immortal process.
  QuerySpec pin;
  pin.name = "pin";
  pin.immortal = true;
  pin.pinned_memory_bytes = 6.0 * kGB;  // grantable is 7 GB
  Phase idle;
  idle.cpu_seconds = 1e30;
  pin.phases.push_back(idle);
  engine.AddProcess(pin, units::Seconds(0.0));

  QuerySpec q;
  q.name = "spiller";
  Phase p;
  p.cpu_seconds = 1.0;
  p.mem_demand_bytes = 2.0 * kGB;  // only 1 GB available -> 1 GB shortfall
  p.spillable = true;
  q.phases.push_back(p);
  const int pid = engine.AddProcess(q, units::Seconds(0.0));
  ASSERT_TRUE(engine.RunUntilProcessCompletes(pid).ok());
  const ProcessResult& r = engine.result(pid);
  EXPECT_NEAR(r.spill_bytes, 2.0 * kGB, 1.0);  // 1 GB * amplification 2
  EXPECT_NEAR(r.max_memory_granted, 1.0 * kGB, 1.0);
  // Spill runs at spill_bandwidth (4 MB/s), sole I/O stream: 2 GB -> 500 s.
  EXPECT_NEAR(r.latency().value(), 500.0, 1.0);
}

TEST(EngineTest, ArrivalsActivateAtStartTime) {
  Engine engine(QuietConfig(), 1);
  const int a = engine.AddProcess(ScanQuery("a", 0, 400.0 * kMB), units::Seconds(0.0));
  const int b = engine.AddProcess(ScanQuery("b", 1, 100.0 * kMB), units::Seconds(2.0));
  ASSERT_TRUE(engine.Run().ok());
  // a runs alone for 2 s (200 MB), shares with b for 2 s (+100 MB), then
  // finishes its last 100 MB alone: done at t = 5 s.
  EXPECT_NEAR(engine.result(a).latency().value(), 5.0, 1e-6);
  EXPECT_NEAR(engine.result(b).start_time, 2.0, 1e-9);
  // b: 100 MB at 50 MB/s while sharing -> ends at 4 s (latency 2 s).
  EXPECT_NEAR(engine.result(b).latency().value(), 2.0, 1e-6);
}

TEST(EngineTest, CompletionCallbackCanChainProcesses) {
  Engine engine(QuietConfig(), 1);
  int completions = 0;
  engine.SetCompletionCallback([&](const ProcessResult& r) {
    ++completions;
    if (completions < 3) {
      engine.AddProcess(ScanQuery("next", 0, 100.0 * kMB), engine.now());
    }
    (void)r;
  });
  engine.AddProcess(ScanQuery("first", 0, 100.0 * kMB), units::Seconds(0.0));
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_EQ(completions, 3);
  EXPECT_NEAR(engine.now().value(), 3.0, 1e-6);
}

TEST(EngineTest, RequestStopAbandonsRun) {
  Engine engine(QuietConfig(), 1);
  engine.SetCompletionCallback(
      [&](const ProcessResult&) { engine.RequestStop(); });
  engine.AddProcess(ScanQuery("a", 0, 100.0 * kMB), units::Seconds(0.0));
  engine.AddProcess(ScanQuery("b", 1, 10000.0 * kMB), units::Seconds(0.0));
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_LT(engine.now().value(), 10.0);
}

TEST(EngineTest, DeterministicAcrossRunsWithSameSeed) {
  SimConfig cfg = QuietConfig();
  cfg.random_io_sigma = 0.3;
  cfg.cpu_jitter = 0.05;
  auto run_once = [&]() {
    Engine engine(cfg, 99);
    QuerySpec q;
    q.name = "noisy";
    Phase p;
    p.rnd_io_bytes = 10.0 * kMB;
    p.cpu_seconds = 2.0;
    q.phases.push_back(p);
    const int pid = engine.AddProcess(q, units::Seconds(0.0));
    CONTENDER_CHECK(engine.Run().ok());
    return engine.result(pid).latency().value();
  };
  EXPECT_DOUBLE_EQ(run_once(), run_once());
}

TEST(EngineTest, StartupCostPrependedForMortalProcesses) {
  SimConfig cfg = QuietConfig();
  cfg.startup_cpu_seconds = 0.5;
  Engine engine(cfg, 1);
  const int pid = engine.AddProcess(ScanQuery("s", 0, 100.0 * kMB), units::Seconds(0.0));
  ASSERT_TRUE(engine.Run().ok());
  EXPECT_NEAR(engine.result(pid).latency().value(), 1.5, 1e-6);
}

TEST(EngineTest, CpuOversubscriptionSharesCores) {
  SimConfig cfg = QuietConfig();
  cfg.cores = 2;
  Engine engine(cfg, 1);
  std::vector<int> pids;
  for (int i = 0; i < 4; ++i) {
    QuerySpec q;
    q.name = "cpu";
    Phase p;
    p.cpu_seconds = 2.0;
    q.phases.push_back(p);
    pids.push_back(engine.AddProcess(q, units::Seconds(0.0)));
  }
  ASSERT_TRUE(engine.Run().ok());
  // 4 processes on 2 cores: each runs at rate 0.5 -> 4 s.
  for (int pid : pids) {
    EXPECT_NEAR(engine.result(pid).latency().value(), 4.0, 1e-6);
  }
}

TEST(EngineTest, ConservationOfDiskBytes) {
  SimConfig cfg = QuietConfig();
  cfg.seek_overhead = 0.08;
  Engine engine(cfg, 7);
  std::vector<int> pids;
  for (int i = 0; i < 3; ++i) {
    pids.push_back(engine.AddProcess(
        ScanQuery("q" + std::to_string(i), i, (200.0 + 100.0 * i) * kMB),
        units::Seconds(static_cast<double>(i))));
  }
  ASSERT_TRUE(engine.Run().ok());
  double total_read = 0.0;
  for (int pid : pids) total_read += engine.result(pid).disk_bytes_read;
  EXPECT_NEAR(total_read, (200.0 + 300.0 + 400.0) * kMB, 10.0);
  // Bytes served can never exceed bandwidth * elapsed time.
  EXPECT_LE(total_read, cfg.seq_bandwidth * engine.now().value() + 1.0);
}

TEST(EngineTest, SpoilerSlowsPrimaryProportionally) {
  SimConfig cfg = QuietConfig();
  Engine engine(cfg, 1);
  for (const QuerySpec& s : MakeSpoiler(cfg, units::Mpl(3))) {
    engine.AddProcess(s, units::Seconds(0.0));
  }
  const int pid = engine.AddProcess(ScanQuery("p", 0, 500.0 * kMB), units::Seconds(0.0));
  ASSERT_TRUE(engine.RunUntilProcessCompletes(pid).ok());
  // 3 streams (2 spoiler readers + primary): 5 s * 3 = 15 s.
  EXPECT_NEAR(engine.result(pid).latency().value(), 15.0, 1e-6);
}

TEST(EngineTest, RunUntilProcessCompletesIgnoresImmortals) {
  SimConfig cfg = QuietConfig();
  Engine engine(cfg, 1);
  QuerySpec immortal;
  immortal.name = "forever";
  immortal.immortal = true;
  Phase p;
  p.seq_io_bytes = 1e30;
  p.table = -1;
  immortal.phases.push_back(p);
  engine.AddProcess(immortal, units::Seconds(0.0));
  const int pid = engine.AddProcess(ScanQuery("p", 0, 100.0 * kMB), units::Seconds(0.0));
  ASSERT_TRUE(engine.RunUntilProcessCompletes(pid).ok());
  EXPECT_TRUE(engine.result(pid).completed);
  // Run() also terminates: no mortal work remains.
  ASSERT_TRUE(engine.Run().ok());
}

TEST(EngineTest, InvalidProcessIdRejected) {
  Engine engine(QuietConfig(), 1);
  EXPECT_FALSE(engine.RunUntilProcessCompletes(0).ok());
  EXPECT_FALSE(engine.RunUntilProcessCompletes(-1).ok());
}

}  // namespace
}  // namespace contender::sim

// Property suite for the tentpole determinism contract: fanning runs across
// a pool of any width — or replaying them from the RunCache — produces
// ProcessResult streams bit-identical to sequential execution.

#include "sim/batch_runner.h"

#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "sim/spoiler.h"
#include "util/random.h"
#include "workload/sampler.h"
#include "workload/workload.h"

namespace contender::sim {
namespace {

void ExpectSameProcessResult(const ProcessResult& a, const ProcessResult& b) {
  EXPECT_EQ(a.process_id, b.process_id);
  EXPECT_EQ(a.template_id, b.template_id);
  EXPECT_EQ(a.name, b.name);
  EXPECT_EQ(a.start_time, b.start_time);
  EXPECT_EQ(a.end_time, b.end_time);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.io_busy_seconds, b.io_busy_seconds);
  EXPECT_EQ(a.cpu_busy_seconds, b.cpu_busy_seconds);
  EXPECT_EQ(a.disk_bytes_read, b.disk_bytes_read);
  EXPECT_EQ(a.bytes_saved_by_cache, b.bytes_saved_by_cache);
  EXPECT_EQ(a.bytes_saved_by_shared_scan, b.bytes_saved_by_shared_scan);
  EXPECT_EQ(a.max_memory_granted, b.max_memory_granted);
  EXPECT_EQ(a.spill_bytes, b.spill_bytes);
}

void ExpectSameOutcome(const StatusOr<EngineRunResult>& a,
                       const StatusOr<EngineRunResult>& b) {
  ASSERT_EQ(a.ok(), b.ok());
  if (!a.ok()) return;
  EXPECT_EQ(a->duration, b->duration);
  ASSERT_EQ(a->results.size(), b->results.size());
  for (size_t i = 0; i < a->results.size(); ++i) {
    ExpectSameProcessResult(a->results[i], b->results[i]);
  }
}

QuerySpec RandomSpec(Rng* rng, int tag) {
  QuerySpec spec;
  spec.name = "rand-" + std::to_string(tag);
  spec.template_id = tag;
  const int num_phases = 1 + static_cast<int>(rng->UniformInt(3));
  for (int ph = 0; ph < num_phases; ++ph) {
    Phase phase;
    if (rng->Uniform01() < 0.8) {
      phase.seq_io_bytes = rng->Uniform(1e8, 3e9);
      phase.table = static_cast<TableId>(rng->UniformInt(5));
      phase.table_bytes = phase.seq_io_bytes * rng->Uniform(1.0, 2.0);
      phase.cacheable = rng->Uniform01() < 0.3;
    }
    if (rng->Uniform01() < 0.5) {
      phase.rnd_io_bytes = rng->Uniform(1e6, 5e7);
    }
    phase.cpu_seconds = rng->Uniform(0.1, 20.0);
    if (rng->Uniform01() < 0.4) {
      phase.mem_demand_bytes = rng->Uniform(1e8, 4e9);
      phase.spillable = true;
    }
    spec.phases.push_back(phase);
  }
  return spec;
}

/// A randomized batch: synthetic multi-process runs, some waiting on a
/// designated primary, plus a few real spoiler runs from the paper workload.
std::vector<EngineRun> RandomBatch(uint64_t seed) {
  Rng rng(seed);
  std::vector<EngineRun> runs;
  for (int r = 0; r < 16; ++r) {
    EngineRun run;
    const int num_specs = 1 + static_cast<int>(rng.UniformInt(3));
    for (int s = 0; s < num_specs; ++s) {
      run.specs.push_back(RandomSpec(&rng, r * 10 + s));
    }
    if (rng.Uniform01() < 0.3) {
      run.run_until = static_cast<int>(run.specs.size()) - 1;
    }
    run.seed = rng.Next();
    runs.push_back(std::move(run));
  }
  const Workload workload = Workload::Paper();
  for (int mpl : {2, 3}) {
    EngineRun run;
    run.specs = MakeSpoiler(run.config, units::Mpl(mpl));
    run.specs.push_back(
        workload.InstantiateNominal(static_cast<int>(rng.UniformInt(
            static_cast<uint64_t>(workload.size())))));
    run.run_until = static_cast<int>(run.specs.size()) - 1;
    run.seed = rng.Next();
    runs.push_back(std::move(run));
  }
  return runs;
}

TEST(BatchRunnerPropertyTest, PoolExecutionMatchesSequential) {
  for (uint64_t seed : {1ull, 2ull, 3ull}) {
    const std::vector<EngineRun> runs = RandomBatch(seed);

    std::vector<StatusOr<EngineRunResult>> sequential;
    for (const EngineRun& run : runs) {
      sequential.push_back(BatchRunner::Execute(run));
    }

    BatchRunner::Options opts;
    opts.threads = 4;
    opts.cache = nullptr;
    BatchRunner runner(opts);
    const std::vector<StatusOr<EngineRunResult>> pooled = runner.Run(runs);

    ASSERT_EQ(pooled.size(), sequential.size());
    for (size_t i = 0; i < runs.size(); ++i) {
      ExpectSameOutcome(pooled[i], sequential[i]);
    }
  }
}

TEST(BatchRunnerPropertyTest, PoolWidthDoesNotChangeResults) {
  const std::vector<EngineRun> runs = RandomBatch(7);
  RunCache cache_one(256), cache_four(256);
  BatchRunner::Options one_opts;
  one_opts.threads = 1;
  one_opts.cache = &cache_one;
  BatchRunner::Options four_opts;
  four_opts.threads = 4;
  four_opts.cache = &cache_four;
  BatchRunner one(one_opts), four(four_opts);
  const auto a = one.Run(runs);
  const auto b = four.Run(runs);
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) ExpectSameOutcome(a[i], b[i]);
}

TEST(BatchRunnerPropertyTest, CacheReplayIsIdentical) {
  const std::vector<EngineRun> runs = RandomBatch(11);
  RunCache cache(256);
  BatchRunner::Options opts;
  opts.threads = 4;
  opts.cache = &cache;
  BatchRunner runner(opts);
  const auto cold = runner.Run(runs);
  const auto warm = runner.Run(runs);
  ASSERT_EQ(cold.size(), warm.size());
  for (size_t i = 0; i < cold.size(); ++i) {
    ExpectSameOutcome(cold[i], warm[i]);
    if (warm[i].ok()) {
      EXPECT_TRUE(warm[i]->from_cache);
      EXPECT_FALSE(cold[i]->from_cache);
    }
  }
  EXPECT_GT(cache.hits(), 0u);
}

void ExpectSameTrainingData(const TrainingData& a, const TrainingData& b) {
  EXPECT_EQ(a.sampling_seconds, b.sampling_seconds);
  ASSERT_EQ(a.profiles.size(), b.profiles.size());
  for (size_t i = 0; i < a.profiles.size(); ++i) {
    const TemplateProfile& pa = a.profiles[i];
    const TemplateProfile& pb = b.profiles[i];
    EXPECT_EQ(pa.template_index, pb.template_index);
    EXPECT_EQ(pa.template_id, pb.template_id);
    EXPECT_EQ(pa.isolated_latency, pb.isolated_latency);
    EXPECT_EQ(pa.io_fraction, pb.io_fraction);
    EXPECT_EQ(pa.working_set_bytes, pb.working_set_bytes);
    EXPECT_EQ(pa.records_accessed, pb.records_accessed);
    EXPECT_EQ(pa.plan_steps, pb.plan_steps);
    EXPECT_EQ(pa.fact_tables, pb.fact_tables);
    EXPECT_EQ(pa.spoiler_latency, pb.spoiler_latency);
  }
  EXPECT_EQ(a.scan_times, b.scan_times);
  ASSERT_EQ(a.observations.size(), b.observations.size());
  for (size_t i = 0; i < a.observations.size(); ++i) {
    const MixObservation& oa = a.observations[i];
    const MixObservation& ob = b.observations[i];
    EXPECT_EQ(oa.primary_index, ob.primary_index);
    EXPECT_EQ(oa.concurrent_indices, ob.concurrent_indices);
    EXPECT_EQ(oa.mpl, ob.mpl);
    EXPECT_EQ(oa.latency, ob.latency);
  }
}

WorkloadSampler::Options ReducedOptions(int threads, RunCache* cache) {
  WorkloadSampler::Options options;
  options.mpls = {2, 3};
  options.lhs_runs = 1;
  options.max_pair_mixes = 6;
  options.seed = 99;
  options.threads = threads;
  options.cache = cache;
  return options;
}

TEST(BatchRunnerPropertyTest, CollectAllIsPoolWidthInvariant) {
  const Workload workload = Workload::Paper();
  const SimConfig config;
  RunCache cache_one(1024), cache_four(1024);

  WorkloadSampler one(&workload, config, ReducedOptions(1, &cache_one));
  WorkloadSampler four(&workload, config, ReducedOptions(4, &cache_four));
  auto a = one.CollectAll();
  auto b = four.CollectAll();
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  ExpectSameTrainingData(*a, *b);
}

TEST(BatchRunnerPropertyTest, CollectAllWarmCacheReplaysExactly) {
  const Workload workload = Workload::Paper();
  const SimConfig config;
  RunCache cache(1024);

  WorkloadSampler cold(&workload, config, ReducedOptions(2, &cache));
  auto a = cold.CollectAll();
  ASSERT_TRUE(a.ok()) << a.status();
  const uint64_t misses_after_cold = cache.misses();

  WorkloadSampler warm(&workload, config, ReducedOptions(2, &cache));
  auto b = warm.CollectAll();
  ASSERT_TRUE(b.ok()) << b.status();
  ExpectSameTrainingData(*a, *b);
  // The warm pass re-simulated nothing.
  EXPECT_EQ(cache.misses(), misses_after_cold);
  EXPECT_GT(cache.hits(), 0u);
}

}  // namespace
}  // namespace contender::sim

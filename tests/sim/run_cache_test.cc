#include "sim/run_cache.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace contender::sim {
namespace {

QuerySpec MakeSpec(double seq_bytes = 1e9, double cpu = 2.0) {
  QuerySpec spec;
  spec.name = "probe";
  spec.template_id = 7;
  Phase phase;
  phase.seq_io_bytes = seq_bytes;
  phase.table = 3;
  phase.table_bytes = seq_bytes;
  phase.cpu_seconds = cpu;
  spec.phases.push_back(phase);
  return spec;
}

RunCache::Entry MakeEntry(double latency) {
  RunCache::Entry entry;
  ProcessResult r;
  r.process_id = 0;
  r.end_time = latency;
  r.completed = true;
  entry.results.push_back(r);
  entry.duration = latency;
  return entry;
}

TEST(RunCacheTest, MissThenHit) {
  RunCache cache(8);
  const uint64_t key = HashEngineRun({MakeSpec()}, SimConfig{}, 42, -1);
  EXPECT_FALSE(cache.Lookup(key).has_value());
  EXPECT_EQ(cache.misses(), 1u);
  EXPECT_EQ(cache.hits(), 0u);

  cache.Insert(key, MakeEntry(12.5));
  auto entry = cache.Lookup(key);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->duration, 12.5);
  ASSERT_EQ(entry->results.size(), 1u);
  EXPECT_EQ(entry->results[0].latency().value(), 12.5);
  EXPECT_EQ(cache.hits(), 1u);
  EXPECT_EQ(cache.size(), 1u);
}

TEST(RunCacheTest, HashIsStableForEqualInputs) {
  const std::vector<QuerySpec> specs = {MakeSpec(), MakeSpec(2e9, 1.0)};
  const SimConfig config;
  EXPECT_EQ(HashEngineRun(specs, config, 42, -1),
            HashEngineRun(specs, config, 42, -1));
  // A rebuilt but identical spec set hashes the same (content, not
  // identity).
  EXPECT_EQ(HashEngineRun({MakeSpec()}, config, 1, 0),
            HashEngineRun({MakeSpec()}, config, 1, 0));
}

TEST(RunCacheTest, HashDiscriminatesEveryInputDimension) {
  const std::vector<QuerySpec> specs = {MakeSpec()};
  const SimConfig config;
  const uint64_t base = HashEngineRun(specs, config, 42, -1);

  EXPECT_NE(base, HashEngineRun(specs, config, 43, -1));  // seed
  EXPECT_NE(base, HashEngineRun(specs, config, 42, 0));   // run mode

  SimConfig slower = config;
  slower.seq_bandwidth *= 0.5;
  EXPECT_NE(base, HashEngineRun(specs, slower, 42, -1));  // hardware

  QuerySpec bigger = MakeSpec();
  bigger.phases[0].seq_io_bytes += 1.0;
  EXPECT_NE(base, HashEngineRun({bigger}, config, 42, -1));  // spec content

  QuerySpec renamed = MakeSpec();
  renamed.name = "probe2";
  EXPECT_NE(base, HashEngineRun({renamed}, config, 42, -1));  // identity

  // One spec vs the same spec twice.
  EXPECT_NE(base, HashEngineRun({MakeSpec(), MakeSpec()}, config, 42, -1));
}

TEST(RunCacheTest, SignedZeroHashesLikePositiveZero) {
  RunHasher a, b;
  a.Add(0.0);
  b.Add(-0.0);
  EXPECT_EQ(a.Digest(), b.Digest());
}

TEST(RunCacheTest, EvictsLeastRecentlyUsed) {
  RunCache cache(2);
  cache.Insert(1, MakeEntry(1.0));
  cache.Insert(2, MakeEntry(2.0));
  // Touch key 1 so key 2 becomes the LRU victim.
  EXPECT_TRUE(cache.Lookup(1).has_value());
  cache.Insert(3, MakeEntry(3.0));
  EXPECT_EQ(cache.size(), 2u);
  EXPECT_TRUE(cache.Lookup(1).has_value());
  EXPECT_FALSE(cache.Lookup(2).has_value());
  EXPECT_TRUE(cache.Lookup(3).has_value());
}

TEST(RunCacheTest, InsertOverwritesExistingKey) {
  RunCache cache(4);
  cache.Insert(9, MakeEntry(1.0));
  cache.Insert(9, MakeEntry(5.0));
  EXPECT_EQ(cache.size(), 1u);
  auto entry = cache.Lookup(9);
  ASSERT_TRUE(entry.has_value());
  EXPECT_EQ(entry->duration, 5.0);
}

TEST(RunCacheTest, ClearResetsEntriesAndCounters) {
  RunCache cache(4);
  cache.Insert(1, MakeEntry(1.0));
  cache.Lookup(1);
  cache.Lookup(2);
  cache.Clear();
  EXPECT_EQ(cache.size(), 0u);
  EXPECT_EQ(cache.hits(), 0u);
  EXPECT_EQ(cache.misses(), 0u);
  EXPECT_FALSE(cache.Lookup(1).has_value());
}

TEST(RunCacheTest, SeriesRoundTrips) {
  RunCache cache(4);
  RunCache::Entry entry;
  entry.series = {{1.0, 2.0, 3.0}, {4.0, 5.0}};
  entry.duration = 6.0;
  cache.Insert(11, std::move(entry));
  auto got = cache.Lookup(11);
  ASSERT_TRUE(got.has_value());
  ASSERT_EQ(got->series.size(), 2u);
  EXPECT_EQ(got->series[0], (std::vector<double>{1.0, 2.0, 3.0}));
  EXPECT_EQ(got->series[1], (std::vector<double>{4.0, 5.0}));
}

TEST(RunCacheTest, GlobalIsOneSharedInstance) {
  EXPECT_EQ(&RunCache::Global(), &RunCache::Global());
}

TEST(RunCacheTest, ConcurrentInsertsAndLookupsAreSafe) {
  // Exercised under TSAN via the `tsan` ctest label.
  RunCache cache(64);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&cache, t] {
      for (int i = 0; i < 200; ++i) {
        const uint64_t key = static_cast<uint64_t>((t * 37 + i) % 100);
        if (i % 2 == 0) {
          cache.Insert(key, MakeEntry(static_cast<double>(i)));
        } else {
          cache.Lookup(key);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_LE(cache.size(), 64u);
  EXPECT_EQ(cache.hits() + cache.misses(), 4u * 100u);
}

}  // namespace
}  // namespace contender::sim

#include "workload/plan_compiler.h"

#include <gtest/gtest.h>

namespace contender {
namespace {

TEST(PlanCompilerTest, SingleScanBecomesOnePhase) {
  Catalog c = Catalog::TpcDs100();
  const TableDef& ss = c.Get("store_sales");
  PlanNode plan = SeqScan(ss, units::Fraction::Clamp(1.0), 288e6);
  sim::QuerySpec spec = CompilePlan(plan, c, InstanceParams{}, "q", 1);
  ASSERT_EQ(spec.phases.size(), 1u);
  EXPECT_DOUBLE_EQ(spec.phases[0].seq_io_bytes, ss.bytes);
  EXPECT_EQ(spec.phases[0].table, ss.id);
  EXPECT_FALSE(spec.phases[0].cacheable);
  EXPECT_GT(spec.phases[0].cpu_seconds, 0.0);
}

TEST(PlanCompilerTest, DimensionScanIsCacheable) {
  Catalog c = Catalog::TpcDs100();
  PlanNode plan = SeqScan(c.Get("item"), units::Fraction::Clamp(1.0), 204000);
  sim::QuerySpec spec = CompilePlan(plan, c, InstanceParams{}, "q", 1);
  ASSERT_EQ(spec.phases.size(), 1u);
  EXPECT_TRUE(spec.phases[0].cacheable);
  EXPECT_DOUBLE_EQ(spec.phases[0].table_bytes, c.Get("item").bytes);
}

TEST(PlanCompilerTest, HashJoinProducesBuildThenProbePhases) {
  Catalog c = Catalog::TpcDs100();
  PlanNode plan = HashJoin(SeqScan(c.Get("item"), units::Fraction::Clamp(1.0), 204000),
                           SeqScan(c.Get("store_sales"), units::Fraction::Clamp(1.0), 288e6), 36e6,
                           60e6);
  sim::QuerySpec spec = CompilePlan(plan, c, InstanceParams{}, "q", 1);
  // dim scan phase (hash table resident while input feeds it), hash-build
  // finalize phase (re-holds the memory, spill already paid), fact probe.
  ASSERT_EQ(spec.phases.size(), 3u);
  EXPECT_EQ(spec.phases[0].table, c.Get("item").id);
  EXPECT_DOUBLE_EQ(spec.phases[0].mem_demand_bytes, 60e6);
  EXPECT_TRUE(spec.phases[0].spillable);
  EXPECT_DOUBLE_EQ(spec.phases[1].mem_demand_bytes, 60e6);
  EXPECT_FALSE(spec.phases[1].spillable);
  EXPECT_EQ(spec.phases[2].table, c.Get("store_sales").id);
  // Probe CPU of the join lands in the probe phase.
  EXPECT_GT(spec.phases[2].cpu_seconds, 0.0);
}

TEST(PlanCompilerTest, IndexScanBecomesRandomIoPhase) {
  Catalog c = Catalog::TpcDs100();
  PlanNode plan = IndexScan(c.Get("catalog_sales"), 50e6, 1e5);
  sim::QuerySpec spec = CompilePlan(plan, c, InstanceParams{}, "q", 1);
  ASSERT_EQ(spec.phases.size(), 1u);
  EXPECT_DOUBLE_EQ(spec.phases[0].rnd_io_bytes, 50e6);
  EXPECT_DOUBLE_EQ(spec.phases[0].seq_io_bytes, 0.0);
}

TEST(PlanCompilerTest, BlockingOperatorGetsOwnPhase) {
  Catalog c = Catalog::TpcDs100();
  PlanNode plan = Sort(SeqScan(c.Get("web_sales"), units::Fraction::Clamp(1.0), 72e6), 500e6);
  sim::QuerySpec spec = CompilePlan(plan, c, InstanceParams{}, "q", 1);
  ASSERT_EQ(spec.phases.size(), 2u);
  EXPECT_GT(spec.phases[0].seq_io_bytes, 0.0);
  EXPECT_DOUBLE_EQ(spec.phases[1].seq_io_bytes, 0.0);
  EXPECT_DOUBLE_EQ(spec.phases[1].mem_demand_bytes, 500e6);
  EXPECT_GT(spec.phases[1].cpu_seconds, 0.0);
}

TEST(PlanCompilerTest, SelectivityScalesPartialScansAndCpu) {
  Catalog c = Catalog::TpcDs100();
  PlanNode plan = SeqScan(c.Get("store_sales"), units::Fraction::Clamp(0.5), 144e6);
  InstanceParams lo{0.9, 1.0};
  InstanceParams hi{1.1, 1.0};
  sim::QuerySpec a = CompilePlan(plan, c, lo, "q", 1);
  sim::QuerySpec b = CompilePlan(plan, c, hi, "q", 1);
  EXPECT_LT(a.phases[0].seq_io_bytes, b.phases[0].seq_io_bytes);
  EXPECT_LT(a.phases[0].cpu_seconds, b.phases[0].cpu_seconds);
}

TEST(PlanCompilerTest, FullScansNotScaledBySelectivity) {
  Catalog c = Catalog::TpcDs100();
  PlanNode plan = SeqScan(c.Get("store_sales"), units::Fraction::Clamp(1.0), 288e6);
  sim::QuerySpec a = CompilePlan(plan, c, InstanceParams{0.9, 1.0}, "q", 1);
  sim::QuerySpec b = CompilePlan(plan, c, InstanceParams{1.1, 1.0}, "q", 1);
  EXPECT_DOUBLE_EQ(a.phases[0].seq_io_bytes, b.phases[0].seq_io_bytes);
}

TEST(PlanCompilerTest, IoScaleAffectsAllSequentialVolume) {
  Catalog c = Catalog::TpcDs100();
  PlanNode plan = SeqScan(c.Get("store_sales"), units::Fraction::Clamp(1.0), 288e6);
  sim::QuerySpec a = CompilePlan(plan, c, InstanceParams{1.0, 1.05}, "q", 1);
  EXPECT_NEAR(a.phases[0].seq_io_bytes, 1.05 * c.Get("store_sales").bytes,
              1.0);
}

TEST(PlanCompilerTest, CarriesIdentity) {
  Catalog c = Catalog::TpcDs100();
  PlanNode plan = SeqScan(c.Get("item"), units::Fraction::Clamp(1.0), 1.0);
  sim::QuerySpec spec = CompilePlan(plan, c, InstanceParams{}, "q99", 99);
  EXPECT_EQ(spec.name, "q99");
  EXPECT_EQ(spec.template_id, 99);
  EXPECT_FALSE(spec.immortal);
}

}  // namespace
}  // namespace contender

// Asserts the workload exhibits every characteristic the paper documents
// for its 25 templates (§2, §5.5, §6.1–6.2).

#include "workload/templates.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "sim/engine.h"
#include "test_support.h"
#include "util/summary_stats.h"

namespace contender {
namespace {

using testing::DefaultConfig;
using testing::PaperWorkload;
using testing::ProfileById;
using testing::SharedTrainingData;

TEST(TemplatesTest, PaperTemplateIds) {
  const std::vector<int> expected = {2,  8,  15, 17, 18, 20, 22, 25, 26,
                                     27, 32, 33, 40, 46, 56, 60, 61, 62,
                                     65, 66, 70, 71, 79, 82, 90};
  auto templates = MakePaperTemplates();
  ASSERT_EQ(templates.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(templates[i].id, expected[i]);
    EXPECT_FALSE(templates[i].name.empty());
    EXPECT_FALSE(templates[i].description.empty());
  }
}

TEST(TemplatesTest, AllPlansBuildAndAreNonTrivial) {
  const Workload& w = PaperWorkload();
  for (int i = 0; i < w.size(); ++i) {
    PlanNode plan = w.NominalPlan(i);
    EXPECT_GE(CountPlanSteps(plan), 3) << w.tmpl(i).name;
    EXPECT_GT(SumPlanRows(plan), 0.0) << w.tmpl(i).name;
  }
}

TEST(TemplatesTest, EveryTemplateScansAFactTableOrIndexesOne) {
  const Workload& w = PaperWorkload();
  for (int i = 0; i < w.size(); ++i) {
    sim::QuerySpec spec = w.InstantiateNominal(i);
    double io = 0.0;
    for (const auto& phase : spec.phases) {
      io += phase.seq_io_bytes + phase.rnd_io_bytes;
    }
    EXPECT_GT(io, 1e9) << w.tmpl(i).name;  // analytical: > 1 GB of I/O
  }
}

TEST(TemplatesTest, IsolatedLatenciesSpanModerateRange) {
  const TrainingData& data = SharedTrainingData();
  double lo = 1e18, hi = 0.0;
  for (const TemplateProfile& p : data.profiles) {
    lo = std::min(lo, p.isolated_latency.value());
    hi = std::max(hi, p.isolated_latency.value());
  }
  // Paper §2: roughly 130–1000 s of isolated latency; the simulated
  // workload spans ~2–10 minutes.
  EXPECT_GT(lo, 100.0);
  EXPECT_LT(hi, 1000.0);
  EXPECT_GT(hi / lo, 3.0);  // meaningful spread
}

TEST(TemplatesTest, IoBoundTemplatesMatchPaper) {
  // §6.2: templates 26, 33, 61, 71 spend >= 97% of isolated time on I/O.
  const TrainingData& data = SharedTrainingData();
  for (int id : {26, 33, 61, 71}) {
    EXPECT_GE(ProfileById(data, id).io_fraction.value(), 0.97) << "q" << id;
  }
}

TEST(TemplatesTest, CpuLimitedTemplatesMatchPaper) {
  // §6.1: templates 62 and 65 are CPU-limited relative to the workload.
  const TrainingData& data = SharedTrainingData();
  const double q62 = ProfileById(data, 62).io_fraction.value();
  const double q65 = ProfileById(data, 65).io_fraction.value();
  EXPECT_LT(q62, 0.95);
  EXPECT_LT(q65, 0.90);
  // q62 has one fact scan and small intermediates (§5.5, "lightweight").
  EXPECT_LT(ProfileById(data, 62).working_set_bytes.value(), 200e6);
}

TEST(TemplatesTest, MemoryBoundTemplatesHaveMultiGbWorkingSets) {
  // §6.1: templates 2 and 22 are memory-intensive with working sets of
  // several GB.
  const TrainingData& data = SharedTrainingData();
  EXPECT_GT(ProfileById(data, 2).working_set_bytes.value(), 2e9);
  EXPECT_GT(ProfileById(data, 22).working_set_bytes.value(), 3e9);
  // And they are the two largest in the workload.
  for (const TemplateProfile& p : data.profiles) {
    if (p.template_id != 2 && p.template_id != 22) {
      EXPECT_LT(p.working_set_bytes,
                ProfileById(data, 22).working_set_bytes);
    }
  }
}

TEST(TemplatesTest, Templates22And82ShareInventoryScan) {
  // §3: "templates 82 and 22 share a scan on the inventory fact table,
  // unlike all of the remaining templates."
  const Workload& w = PaperWorkload();
  const sim::TableId inventory = w.catalog().Get("inventory").id;
  for (int i = 0; i < w.size(); ++i) {
    auto facts = FactTablesScanned(w.NominalPlan(i), w.catalog());
    const bool scans_inventory =
        std::find(facts.begin(), facts.end(), inventory) != facts.end();
    const int id = w.tmpl(i).id;
    EXPECT_EQ(scans_inventory, id == 22 || id == 82) << "q" << id;
  }
}

TEST(TemplatesTest, RandomIoTemplatesIssueScatteredReads) {
  // §6.1: templates 17, 25, 32 execute random I/O (index scans).
  const Workload& w = PaperWorkload();
  for (int id : {17, 25, 32}) {
    sim::QuerySpec spec = w.InstantiateNominal(w.IndexOfId(id));
    double rnd = 0.0;
    for (const auto& phase : spec.phases) rnd += phase.rnd_io_bytes;
    EXPECT_GT(rnd, 100e6) << "q" << id;
  }
}

TEST(TemplatesTest, InstanceJitterProducesModestLatencyVariance) {
  // §4: isolated latency std-dev is ~6% on average — "a manageable level".
  const Workload& w = PaperWorkload();
  Rng rng(7);
  const int idx = w.IndexOfId(62);
  std::vector<double> latencies;
  for (int rep = 0; rep < 12; ++rep) {
    sim::Engine engine(DefaultConfig(), rng.Next());
    const int pid = engine.AddProcess(w.Instantiate(idx, &rng), units::Seconds(0.0));
    ASSERT_TRUE(engine.Run().ok());
    latencies.push_back(engine.result(pid).latency().value());
  }
  const double cv = StdDev(latencies) / Mean(latencies);
  EXPECT_GT(cv, 0.005);
  EXPECT_LT(cv, 0.12);
}

TEST(TemplatesTest, TemplatesTouchOneToThreeFactTables) {
  // §6.1: "individual templates access between one and three fact tables."
  const Workload& w = PaperWorkload();
  for (int i = 0; i < w.size(); ++i) {
    auto facts = FactTablesScanned(w.NominalPlan(i), w.catalog());
    sim::QuerySpec spec = w.InstantiateNominal(i);
    double rnd = 0.0;
    for (const auto& phase : spec.phases) rnd += phase.rnd_io_bytes;
    // Index-only templates may have fewer sequential fact scans.
    if (rnd < 50e6) {
      EXPECT_GE(facts.size(), 1u) << w.tmpl(i).name;
    }
    EXPECT_LE(facts.size(), 3u) << w.tmpl(i).name;
  }
}

}  // namespace
}  // namespace contender

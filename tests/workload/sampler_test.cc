#include "workload/sampler.h"

#include <gtest/gtest.h>

#include "test_support.h"

namespace contender {
namespace {

using testing::DefaultConfig;
using testing::PaperWorkload;
using testing::SharedTrainingData;

WorkloadSampler MakeSampler() {
  WorkloadSampler::Options opts;
  return WorkloadSampler(&PaperWorkload(), DefaultConfig(), opts);
}

TEST(SamplerTest, ProfileHasAllFields) {
  WorkloadSampler sampler = MakeSampler();
  auto p = sampler.ProfileTemplate(0, {2, 3});
  ASSERT_TRUE(p.ok());
  EXPECT_EQ(p->template_index, 0);
  EXPECT_EQ(p->template_id, PaperWorkload().tmpl(0).id);
  EXPECT_GT(p->isolated_latency.value(), 0.0);
  EXPECT_GT(p->io_fraction.value(), 0.0);
  EXPECT_LE(p->io_fraction.value(), 1.0);
  EXPECT_GT(p->plan_steps, 0);
  EXPECT_GT(p->records_accessed, 0.0);
  EXPECT_EQ(p->spoiler_latency.size(), 2u);
  EXPECT_GT(p->spoiler_latency.at(2), p->isolated_latency);
  EXPECT_GT(p->spoiler_latency.at(3), p->spoiler_latency.at(2));
}

TEST(SamplerTest, ProfileRejectsBadIndex) {
  WorkloadSampler sampler = MakeSampler();
  EXPECT_FALSE(sampler.ProfileTemplate(-1, {}).ok());
  EXPECT_FALSE(sampler.ProfileTemplate(1000, {}).ok());
}

TEST(SamplerTest, ScanTimeMatchesBytesOverBandwidth) {
  WorkloadSampler sampler = MakeSampler();
  const TableDef& ss = PaperWorkload().catalog().Get("store_sales");
  auto s_f = sampler.MeasureScanTime(ss.id);
  ASSERT_TRUE(s_f.ok());
  const double expected = ss.bytes / DefaultConfig().seq_bandwidth;
  EXPECT_NEAR(s_f->value(), expected, 0.05 * expected + 1.0);
}

TEST(SamplerTest, ScanTimeRejectsUnknownTable) {
  WorkloadSampler sampler = MakeSampler();
  EXPECT_FALSE(sampler.MeasureScanTime(-3).ok());
}

TEST(SamplerTest, SpoilerLatencyRequiresMplAtLeastTwo) {
  WorkloadSampler sampler = MakeSampler();
  EXPECT_FALSE(sampler.MeasureSpoilerLatency(0, units::Mpl(1)).ok());
}

TEST(SamplerTest, ObserveMixYieldsOneObservationPerStream) {
  WorkloadSampler sampler = MakeSampler();
  auto obs = sampler.ObserveMix({0, 4, 9});
  ASSERT_TRUE(obs.ok());
  ASSERT_EQ(obs->size(), 3u);
  EXPECT_EQ((*obs)[0].primary_index, 0);
  EXPECT_EQ((*obs)[0].mpl, 3);
  EXPECT_EQ((*obs)[0].concurrent_indices, (std::vector<int>{4, 9}));
  EXPECT_EQ((*obs)[1].concurrent_indices, (std::vector<int>{0, 9}));
  for (const MixObservation& o : *obs) EXPECT_GT(o.latency.value(), 0.0);
}

TEST(SamplerTest, MixesForMplTwoIsAllPairs) {
  WorkloadSampler sampler = MakeSampler();
  auto mixes = sampler.MixesForMpl(2);
  ASSERT_TRUE(mixes.ok());
  EXPECT_EQ(mixes->size(), 325u);  // C(26, 2) over 25 templates
}

TEST(SamplerTest, MixesForHigherMplUseLhsRuns) {
  WorkloadSampler sampler = MakeSampler();
  auto mixes = sampler.MixesForMpl(4);
  ASSERT_TRUE(mixes.ok());
  // 4 LHS runs x 25 templates.
  EXPECT_EQ(mixes->size(), 100u);
  for (const auto& mix : *mixes) EXPECT_EQ(mix.size(), 4u);
}

TEST(SamplerTest, PairCapIsRespected) {
  WorkloadSampler::Options opts;
  opts.max_pair_mixes = 50;
  WorkloadSampler sampler(&PaperWorkload(), DefaultConfig(), opts);
  auto mixes = sampler.MixesForMpl(2);
  ASSERT_TRUE(mixes.ok());
  EXPECT_EQ(mixes->size(), 50u);
}

TEST(SamplerTest, CollectAllCoversEveryTemplateAndMpl) {
  const TrainingData& data = SharedTrainingData();
  EXPECT_EQ(data.profiles.size(), 25u);
  EXPECT_EQ(data.scan_times.size(), 7u);  // all fact tables
  EXPECT_GT(data.sampling_seconds.value(), 0.0);
  // 325 pair mixes x 2 + 3 MPLs x 100 LHS mixes x MPL observations.
  EXPECT_EQ(data.observations.size(),
            325u * 2u + 100u * 3u + 100u * 4u + 100u * 5u);
  std::set<int> mpls;
  for (const MixObservation& o : data.observations) mpls.insert(o.mpl);
  EXPECT_EQ(mpls, (std::set<int>{2, 3, 4, 5}));
  // Every template appears as a primary at MPL 2.
  std::set<int> primaries;
  for (const MixObservation& o : data.observations) {
    if (o.mpl == 2) primaries.insert(o.primary_index);
  }
  EXPECT_EQ(primaries.size(), 25u);
}

TEST(SamplerTest, SpoilerLatencyDominatesMixLatencies) {
  // The spoiler is a worst case: only a small fraction of steady-state
  // observations may exceed 105% of it (paper §6.1 reports ~4%).
  const TrainingData& data = SharedTrainingData();
  int over = 0, total = 0;
  for (const MixObservation& o : data.observations) {
    const TemplateProfile& p =
        data.profiles[static_cast<size_t>(o.primary_index)];
    auto it = p.spoiler_latency.find(o.mpl);
    if (it == p.spoiler_latency.end()) continue;
    ++total;
    if (o.latency > 1.05 * it->second) ++over;
  }
  ASSERT_GT(total, 0);
  EXPECT_LT(static_cast<double>(over) / total, 0.08);
}

}  // namespace
}  // namespace contender

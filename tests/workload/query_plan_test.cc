#include "workload/query_plan.h"

#include <gtest/gtest.h>

namespace contender {
namespace {

Catalog TestCatalog() { return Catalog::TpcDs100(); }

TEST(QueryPlanTest, SeqScanAnnotations) {
  Catalog c = TestCatalog();
  PlanNode scan = SeqScan(c.Get("store_sales"), units::Fraction::Clamp(0.5), 1e6);
  EXPECT_EQ(scan.type, PlanNodeType::kSeqScan);
  EXPECT_EQ(scan.table, c.Get("store_sales").id);
  EXPECT_DOUBLE_EQ(scan.scan_fraction, 0.5);
  EXPECT_DOUBLE_EQ(scan.rows, 1e6);
  EXPECT_GT(scan.cpu_seconds, 0.0);
}

TEST(QueryPlanTest, HashJoinWrapsBuildInHashNode) {
  Catalog c = TestCatalog();
  PlanNode join = HashJoin(SeqScan(c.Get("item"), units::Fraction::Clamp(1.0), 204000),
                           SeqScan(c.Get("store_sales"), units::Fraction::Clamp(1.0), 288e6), 36e6,
                           60e6);
  EXPECT_EQ(join.type, PlanNodeType::kHashJoin);
  ASSERT_EQ(join.children.size(), 2u);
  EXPECT_EQ(join.children[0].type, PlanNodeType::kHash);
  EXPECT_DOUBLE_EQ(join.children[0].mem_bytes, 60e6);
  EXPECT_EQ(join.children[0].children[0].type, PlanNodeType::kSeqScan);
  EXPECT_EQ(join.children[1].type, PlanNodeType::kSeqScan);
}

TEST(QueryPlanTest, SortCpuScalesSuperlinearly) {
  Catalog c = TestCatalog();
  PlanNode small = Sort(SeqScan(c.Get("item"), units::Fraction::Clamp(1.0), 1e5), 1e6);
  PlanNode large = Sort(SeqScan(c.Get("item"), units::Fraction::Clamp(1.0), 1e7), 1e6);
  EXPECT_GT(large.cpu_seconds, 100.0 * small.cpu_seconds);
}

TEST(QueryPlanTest, CountStepsAndRows) {
  Catalog c = TestCatalog();
  PlanNode plan = HashAggregate(
      HashJoin(SeqScan(c.Get("item"), units::Fraction::Clamp(1.0), 100.0),
               SeqScan(c.Get("store_sales"), units::Fraction::Clamp(1.0), 200.0), 150.0, 1e6),
      10.0, 1e6);
  // SeqScan + Hash + SeqScan + HashJoin + HashAggregate = 5.
  EXPECT_EQ(CountPlanSteps(plan), 5);
  EXPECT_DOUBLE_EQ(SumPlanRows(plan), 100.0 + 100.0 + 200.0 + 150.0 + 10.0);
}

TEST(QueryPlanTest, FactTablesScannedDeduplicates) {
  Catalog c = TestCatalog();
  std::vector<PlanNode> branches;
  branches.push_back(SeqScan(c.Get("store_sales"), units::Fraction::Clamp(1.0), 1.0));
  branches.push_back(SeqScan(c.Get("store_sales"), units::Fraction::Clamp(1.0), 1.0));
  branches.push_back(SeqScan(c.Get("web_sales"), units::Fraction::Clamp(1.0), 1.0));
  branches.push_back(SeqScan(c.Get("item"), units::Fraction::Clamp(1.0), 1.0));  // dimension
  PlanNode plan = Append(std::move(branches), 4.0);
  auto facts = FactTablesScanned(plan, c);
  ASSERT_EQ(facts.size(), 2u);
  EXPECT_EQ(facts[0], c.Get("store_sales").id);
  EXPECT_EQ(facts[1], c.Get("web_sales").id);
}

TEST(QueryPlanTest, IndexScanDoesNotCountAsFactScan) {
  Catalog c = TestCatalog();
  PlanNode plan = IndexScan(c.Get("store_sales"), 1e6, 100.0);
  EXPECT_TRUE(FactTablesScanned(plan, c).empty());
}

TEST(QueryPlanTest, VisitIsPostOrder) {
  Catalog c = TestCatalog();
  PlanNode plan = Sort(SeqScan(c.Get("item"), units::Fraction::Clamp(1.0), 10.0), 1e6);
  std::vector<PlanNodeType> order;
  VisitPlan(plan, [&](const PlanNode& n) { order.push_back(n.type); });
  ASSERT_EQ(order.size(), 2u);
  EXPECT_EQ(order[0], PlanNodeType::kSeqScan);
  EXPECT_EQ(order[1], PlanNodeType::kSort);
}

TEST(QueryPlanTest, TypeNamesAreDistinct) {
  std::set<std::string> names;
  for (int t = 0; t < static_cast<int>(PlanNodeType::kNumTypes); ++t) {
    names.insert(PlanNodeTypeName(static_cast<PlanNodeType>(t)));
  }
  EXPECT_EQ(names.size(),
            static_cast<size_t>(PlanNodeType::kNumTypes));
}

}  // namespace
}  // namespace contender

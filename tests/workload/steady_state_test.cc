// Steady-state protocol tests (paper §2, Fig. 2).

#include "workload/steady_state.h"

#include <gtest/gtest.h>

#include "sim/engine.h"
#include "test_support.h"

namespace contender {
namespace {

using testing::DefaultConfig;
using testing::PaperWorkload;

TEST(SteadyStateTest, RejectsBadArguments) {
  const Workload& w = PaperWorkload();
  SteadyStateOptions opts;
  EXPECT_FALSE(RunSteadyState(w, {}, DefaultConfig(), opts).ok());
  EXPECT_FALSE(RunSteadyState(w, {0, 999}, DefaultConfig(), opts).ok());
  opts.samples_per_stream = 0;
  EXPECT_FALSE(RunSteadyState(w, {0, 1}, DefaultConfig(), opts).ok());
}

TEST(SteadyStateTest, CollectsRequestedSamplesPerStream) {
  const Workload& w = PaperWorkload();
  SteadyStateOptions opts;
  opts.samples_per_stream = 5;
  opts.warmup_per_stream = 1;
  auto result = RunSteadyState(w, {0, 1}, DefaultConfig(), opts);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->streams.size(), 2u);
  for (const StreamResult& s : result->streams) {
    EXPECT_EQ(s.latencies.size(), 5u);
    EXPECT_GT(s.mean_latency, 0.0);
    for (double l : s.latencies) EXPECT_GT(l, 0.0);
  }
  EXPECT_GT(result->duration, 0.0);
}

TEST(SteadyStateTest, StreamsKeepTheirTemplates) {
  const Workload& w = PaperWorkload();
  SteadyStateOptions opts;
  opts.samples_per_stream = 2;
  auto result = RunSteadyState(w, {3, 7, 3}, DefaultConfig(), opts);
  ASSERT_TRUE(result.ok());
  ASSERT_EQ(result->streams.size(), 3u);
  EXPECT_EQ(result->streams[0].template_index, 3);
  EXPECT_EQ(result->streams[1].template_index, 7);
  EXPECT_EQ(result->streams[2].template_index, 3);
}

TEST(SteadyStateTest, DeterministicForFixedSeed) {
  const Workload& w = PaperWorkload();
  SteadyStateOptions opts;
  opts.samples_per_stream = 3;
  opts.seed = 77;
  auto a = RunSteadyState(w, {0, 5}, DefaultConfig(), opts);
  auto b = RunSteadyState(w, {0, 5}, DefaultConfig(), opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (size_t s = 0; s < a->streams.size(); ++s) {
    EXPECT_EQ(a->streams[s].latencies, b->streams[s].latencies);
  }
}

TEST(SteadyStateTest, ConcurrencySlowsQueriesVsIsolation) {
  const Workload& w = PaperWorkload();
  // q26 (I/O-bound, catalog_sales) against q27 (store_sales): disjoint
  // fact scans, so both must slow down vs isolation.
  const int q26 = w.IndexOfId(26);
  const int q27 = w.IndexOfId(27);
  SteadyStateOptions opts;
  opts.samples_per_stream = 3;

  sim::Engine solo(DefaultConfig(), 5);
  const int pid = solo.AddProcess(w.InstantiateNominal(q26), units::Seconds(0.0));
  ASSERT_TRUE(solo.Run().ok());
  const double isolated = solo.result(pid).latency().value();

  auto mix = RunSteadyState(w, {q26, q27}, DefaultConfig(), opts);
  ASSERT_TRUE(mix.ok());
  EXPECT_GT(mix->streams[0].mean_latency, 1.2 * isolated);
}

TEST(SteadyStateTest, SharedScansYieldPositiveInteraction) {
  const Workload& w = PaperWorkload();
  // q26 and q20 both scan only catalog_sales; the synchronized scan means
  // running them together costs far less than a disjoint partner does.
  const int q26 = w.IndexOfId(26);
  const int q20 = w.IndexOfId(20);
  const int q27 = w.IndexOfId(27);  // disjoint (store_sales)
  SteadyStateOptions opts;
  opts.samples_per_stream = 3;
  auto shared = RunSteadyState(w, {q26, q20}, DefaultConfig(), opts);
  auto disjoint = RunSteadyState(w, {q26, q27}, DefaultConfig(), opts);
  ASSERT_TRUE(shared.ok());
  ASSERT_TRUE(disjoint.ok());
  EXPECT_LT(shared->streams[0].mean_latency,
            0.85 * disjoint->streams[0].mean_latency);
}

TEST(SteadyStateTest, WarmupSamplesAreDropped) {
  const Workload& w = PaperWorkload();
  SteadyStateOptions with_warmup;
  with_warmup.samples_per_stream = 3;
  with_warmup.warmup_per_stream = 2;
  auto result = RunSteadyState(w, {0, 1}, DefaultConfig(), with_warmup);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->streams[0].latencies.size(), 3u);
}

}  // namespace
}  // namespace contender

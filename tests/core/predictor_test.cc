#include "core/predictor.h"

#include <gtest/gtest.h>

#include "math/metrics.h"
#include "test_support.h"

namespace contender {
namespace {

using testing::SharedPredictor;
using testing::SharedTrainingData;

TEST(PredictorTest, TrainBuildsModelsAtEveryMpl) {
  const ContenderPredictor& p = SharedPredictor();
  for (int mpl : {2, 3, 4, 5}) {
    auto models = p.ReferenceModels(units::Mpl(mpl));
    ASSERT_TRUE(models.ok());
    EXPECT_EQ(models->size(), 25u);
    EXPECT_TRUE(p.TransferModel(units::Mpl(mpl)).ok());
  }
  EXPECT_FALSE(p.ReferenceModels(units::Mpl(7)).ok());
  EXPECT_FALSE(p.TransferModel(units::Mpl(7)).ok());
}

TEST(PredictorTest, TrainRejectsTinyWorkload) {
  const TrainingData& data = SharedTrainingData();
  std::vector<TemplateProfile> few(data.profiles.begin(),
                                   data.profiles.begin() + 2);
  EXPECT_FALSE(ContenderPredictor::Train(few, data.scan_times,
                                         data.observations,
                                         ContenderPredictor::Options{})
                   .ok());
}

TEST(PredictorTest, KnownPredictionsAreReasonable) {
  const ContenderPredictor& p = SharedPredictor();
  const TrainingData& data = SharedTrainingData();
  std::vector<double> observed, predicted;
  for (const MixObservation& obs : data.observations) {
    if (obs.mpl != 2) continue;
    auto pred = p.PredictKnown(obs.primary_index, obs.concurrent_indices);
    if (!pred.ok()) continue;
    observed.push_back(obs.latency.value());
    predicted.push_back(pred->value());
  }
  ASSERT_GT(observed.size(), 500u);
  // In-sample MRE must be solidly below the paper's 19% known-template
  // figure; the simulator is cleaner than a production DBMS.
  EXPECT_LT(MeanRelativeError(observed, predicted), 0.19);
}

TEST(PredictorTest, PredictionsRespondToContention) {
  const ContenderPredictor& p = SharedPredictor();
  const TrainingData& data = SharedTrainingData();
  const Workload& w = testing::PaperWorkload();
  // q71 (I/O-bound): an I/O-hungry disjoint partner (q27, store_sales is
  // shared though... use q22's index: inventory+cpu, low I/O) should hurt
  // less than a fully competing disjoint partner.
  const int q71 = w.IndexOfId(71);
  const int q22 = w.IndexOfId(22);
  const int q17 = w.IndexOfId(17);  // random I/O heavy, mostly disjoint
  auto light = p.PredictKnown(q71, {q22});
  auto heavy = p.PredictKnown(q71, {q17});
  ASSERT_TRUE(light.ok());
  ASSERT_TRUE(heavy.ok());
  EXPECT_LT(light->value(), heavy->value());
  // Both exceed isolation.
  EXPECT_GT(light->value(),
            data.profiles[static_cast<size_t>(q71)].isolated_latency.value() *
                0.9);
}

TEST(PredictorTest, SharedScanPartnerPredictedFasterThanDisjoint) {
  const ContenderPredictor& p = SharedPredictor();
  const Workload& w = testing::PaperWorkload();
  const int q26 = w.IndexOfId(26);  // catalog_sales only
  const int q20 = w.IndexOfId(20);  // catalog_sales only (shares scan)
  const int q27 = w.IndexOfId(27);  // store_sales (disjoint)
  auto shared = p.PredictKnown(q26, {q20});
  auto disjoint = p.PredictKnown(q26, {q27});
  ASSERT_TRUE(shared.ok());
  ASSERT_TRUE(disjoint.ok());
  EXPECT_LT(shared->value(), disjoint->value());
}

TEST(PredictorTest, PredictKnownValidatesArguments) {
  const ContenderPredictor& p = SharedPredictor();
  EXPECT_FALSE(p.PredictKnown(-1, {0}).ok());
  EXPECT_FALSE(p.PredictKnown(999, {0}).ok());
  EXPECT_FALSE(p.PredictKnown(0, {999}).ok());
  // MPL 7 has no reference models.
  EXPECT_FALSE(p.PredictKnown(0, {1, 2, 3, 4, 5, 6}).ok());
}

TEST(PredictorTest, PredictNewWithMeasuredSpoiler) {
  const ContenderPredictor& p = SharedPredictor();
  const TrainingData& data = SharedTrainingData();
  // Treat q26's profile as a "new" template.
  const TemplateProfile& profile = testing::ProfileById(data, 26);
  auto pred = p.PredictNew(profile, {0, 1, 2}, SpoilerSource::kMeasured);
  ASSERT_TRUE(pred.ok());
  EXPECT_GT(pred->value(), 0.5 * profile.isolated_latency.value());
  EXPECT_LT(pred->value(), 1.2 * profile.spoiler_latency.at(4).value());
}

TEST(PredictorTest, PredictNewWithKnnSpoiler) {
  const ContenderPredictor& p = SharedPredictor();
  const TrainingData& data = SharedTrainingData();
  TemplateProfile profile = testing::ProfileById(data, 26);
  profile.spoiler_latency.clear();  // constant-time path needs none
  auto pred = p.PredictNew(profile, {0, 1}, SpoilerSource::kKnnPredicted);
  ASSERT_TRUE(pred.ok());
  EXPECT_GT(pred->value(), 0.0);
  // Measured path fails without spoiler latencies.
  EXPECT_FALSE(p.PredictNew(profile, {0, 1}, SpoilerSource::kMeasured).ok());
}

TEST(PredictorTest, KnnSpoilerPredictionTracksMeasured) {
  const ContenderPredictor& p = SharedPredictor();
  const TrainingData& data = SharedTrainingData();
  std::vector<double> observed, predicted;
  for (const TemplateProfile& profile : data.profiles) {
    for (int mpl : {2, 3, 4, 5}) {
      auto pred = p.PredictSpoilerLatency(profile, units::Mpl(mpl));
      ASSERT_TRUE(pred.ok());
      observed.push_back(profile.spoiler_latency.at(mpl).value());
      predicted.push_back(pred->value());
    }
  }
  // In-sample: the template itself is among the KNN references, so error
  // stays moderate.
  EXPECT_LT(MeanRelativeError(observed, predicted), 0.35);
}

TEST(PredictorTest, UnknownYVariantUsesOwnSlope) {
  const ContenderPredictor& p = SharedPredictor();
  const TrainingData& data = SharedTrainingData();
  const Workload& w = testing::PaperWorkload();
  const int q26 = w.IndexOfId(26);
  auto models = p.ReferenceModels(units::Mpl(2));
  ASSERT_TRUE(models.ok());
  const double own_slope = models->at(q26).slope;
  const TemplateProfile& profile = testing::ProfileById(data, 26);
  auto pred = p.PredictNewWithKnownSlope(profile, {0}, own_slope,
                                         SpoilerSource::kMeasured);
  ASSERT_TRUE(pred.ok());
  EXPECT_GT(pred->value(), 0.0);
}

}  // namespace
}  // namespace contender

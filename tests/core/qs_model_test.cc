#include "core/qs_model.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace contender {
namespace {

std::vector<units::Cqi> Cqis(const std::vector<double>& raw) {
  std::vector<units::Cqi> out;
  out.reserve(raw.size());
  for (double v : raw) out.emplace_back(v);
  return out;
}

std::vector<units::ContinuumPoint> Points(const std::vector<double>& raw) {
  std::vector<units::ContinuumPoint> out;
  out.reserve(raw.size());
  for (double v : raw) out.emplace_back(v);
  return out;
}

TEST(QsModelTest, FitsExactLinearRelationship) {
  auto model = FitQsModel(Cqis({0.0, 0.5, 1.0}), Points({0.1, 0.5, 0.9}));
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->slope, 0.8, 1e-12);
  EXPECT_NEAR(model->intercept, 0.1, 1e-12);
  EXPECT_NEAR(model->r_squared, 1.0, 1e-12);
  EXPECT_NEAR(model->PredictContinuum(units::Cqi(0.25)).value(), 0.3, 1e-12);
}

TEST(QsModelTest, RejectsDegenerateInput) {
  EXPECT_FALSE(FitQsModel(Cqis({0.5}), Points({0.5})).ok());
  EXPECT_FALSE(FitQsModel(Cqis({0.5, 0.5, 0.5}), Points({0.1, 0.2, 0.3})).ok());
}

// Synthetic observations for one primary: continuum = 0.9*cqi + 0.05.
TEST(QsModelTest, TrainingSetBuildAndFit) {
  std::vector<TemplateProfile> profiles(2);
  profiles[0].template_index = 0;
  profiles[0].isolated_latency = units::Seconds(100.0);
  profiles[0].io_fraction = units::Fraction::Clamp(1.0);
  profiles[0].spoiler_latency[2] = units::Seconds(300.0);
  profiles[1].template_index = 1;
  profiles[1].isolated_latency = units::Seconds(200.0);
  profiles[1].io_fraction = units::Fraction::Clamp(0.7);
  ScanTimes scans;

  // Build observations whose latency follows the planted relation given
  // profile[1] as the only partner (cqi = 0.7 every time). To vary CQI,
  // vary the partner's profile is not possible here, so we plant multiple
  // partner variants instead.
  std::vector<TemplateProfile> variants = profiles;
  std::vector<MixObservation> observations;
  for (double p : {0.2, 0.4, 0.6, 0.8, 1.0}) {
    variants.push_back(TemplateProfile{});
    variants.back().template_index = static_cast<int>(variants.size()) - 1;
    variants.back().isolated_latency = units::Seconds(150.0);
    variants.back().io_fraction = units::Fraction::Clamp(p);
    MixObservation obs;
    obs.primary_index = 0;
    obs.mpl = 2;
    obs.concurrent_indices = {variants.back().template_index};
    const double continuum = 0.9 * p + 0.05;
    obs.latency = units::Seconds(100.0 + continuum * 200.0);
    observations.push_back(obs);
  }

  auto set = BuildQsTrainingSet(variants, scans, observations, 0, units::Mpl(2));
  ASSERT_TRUE(set.ok());
  ASSERT_EQ(set->cqi.size(), 5u);
  auto model = FitQsModel(set->cqi, set->continuum);
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->slope, 0.9, 1e-9);
  EXPECT_NEAR(model->intercept, 0.05, 1e-9);
}

TEST(QsModelTest, TrainingSetDropsContinuumOutliers) {
  std::vector<TemplateProfile> profiles(2);
  profiles[0].template_index = 0;
  profiles[0].isolated_latency = units::Seconds(100.0);
  profiles[0].spoiler_latency[2] = units::Seconds(200.0);
  profiles[1].template_index = 1;
  profiles[1].isolated_latency = units::Seconds(100.0);
  profiles[1].io_fraction = units::Fraction::Clamp(0.5);

  std::vector<MixObservation> observations;
  for (double latency : {150.0, 180.0, 250.0 /* > 1.05 * 200 */}) {
    MixObservation obs;
    obs.primary_index = 0;
    obs.mpl = 2;
    obs.concurrent_indices = {1};
    obs.latency = units::Seconds(latency);
    observations.push_back(obs);
  }
  auto set = BuildQsTrainingSet(profiles, {}, observations, 0, units::Mpl(2));
  ASSERT_TRUE(set.ok());
  EXPECT_EQ(set->cqi.size(), 2u);
  EXPECT_EQ(set->dropped_outliers, 1);
}

TEST(QsModelTest, TrainingSetFiltersByPrimaryAndMpl) {
  std::vector<TemplateProfile> profiles(2);
  profiles[0].template_index = 0;
  profiles[0].isolated_latency = units::Seconds(100.0);
  profiles[0].spoiler_latency[2] = units::Seconds(200.0);
  profiles[1].template_index = 1;
  profiles[1].isolated_latency = units::Seconds(100.0);

  MixObservation wrong_primary;
  wrong_primary.primary_index = 1;
  wrong_primary.mpl = 2;
  wrong_primary.concurrent_indices = {0};
  wrong_primary.latency = units::Seconds(150.0);
  MixObservation wrong_mpl;
  wrong_mpl.primary_index = 0;
  wrong_mpl.mpl = 3;
  wrong_mpl.concurrent_indices = {1, 1};
  wrong_mpl.latency = units::Seconds(150.0);

  auto set =
      BuildQsTrainingSet(profiles, {}, {wrong_primary, wrong_mpl}, 0,
                         units::Mpl(2));
  ASSERT_TRUE(set.ok());
  EXPECT_TRUE(set->cqi.empty());
}

TEST(QsModelTest, MissingSpoilerLatencyFails) {
  std::vector<TemplateProfile> profiles(1);
  profiles[0].template_index = 0;
  profiles[0].isolated_latency = units::Seconds(100.0);
  EXPECT_FALSE(BuildQsTrainingSet(profiles, {}, {}, 0, units::Mpl(2)).ok());
}

}  // namespace
}  // namespace contender

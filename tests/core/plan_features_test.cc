#include "core/plan_features.h"

#include <gtest/gtest.h>

#include "test_support.h"

namespace contender {
namespace {

TEST(PlanFeaturesTest, DimensionsMatchSchema) {
  Catalog c = Catalog::TpcDs100();
  PlanFeatureExtractor extractor(&c);
  const size_t expected = 2 * static_cast<size_t>(PlanNodeType::kNumTypes) +
                          2 * c.tables().size();
  EXPECT_EQ(extractor.query_feature_dim(), expected);
  EXPECT_EQ(extractor.mix_feature_dim(), 2 * expected);
}

TEST(PlanFeaturesTest, CountsAndCardinalities) {
  Catalog c = Catalog::TpcDs100();
  PlanFeatureExtractor extractor(&c);
  PlanNode plan = HashJoin(SeqScan(c.Get("item"), units::Fraction::Clamp(1.0), 100.0),
                           SeqScan(c.Get("store_sales"), units::Fraction::Clamp(1.0), 200.0), 150.0,
                           1e6);
  Vector f = extractor.ExtractQueryFeatures(plan);
  const size_t seq = 2 * static_cast<size_t>(PlanNodeType::kSeqScan);
  const size_t hash = 2 * static_cast<size_t>(PlanNodeType::kHash);
  const size_t join = 2 * static_cast<size_t>(PlanNodeType::kHashJoin);
  EXPECT_DOUBLE_EQ(f[seq], 2.0);          // two seq scans
  EXPECT_DOUBLE_EQ(f[seq + 1], 300.0);    // summed scan cardinalities
  EXPECT_DOUBLE_EQ(f[hash], 1.0);
  EXPECT_DOUBLE_EQ(f[join], 1.0);
  EXPECT_DOUBLE_EQ(f[join + 1], 150.0);

  // Per-table features: one scan each on item and store_sales.
  const size_t base = 2 * static_cast<size_t>(PlanNodeType::kNumTypes);
  const size_t item = base + 2 * static_cast<size_t>(c.Get("item").id);
  const size_t ss = base + 2 * static_cast<size_t>(c.Get("store_sales").id);
  EXPECT_DOUBLE_EQ(f[item], 1.0);
  EXPECT_DOUBLE_EQ(f[item + 1], 100.0);
  EXPECT_DOUBLE_EQ(f[ss], 1.0);
  EXPECT_DOUBLE_EQ(f[ss + 1], 200.0);
}

TEST(PlanFeaturesTest, MixFeaturesConcatenatePrimaryAndSummedConcurrent) {
  Catalog c = Catalog::TpcDs100();
  PlanFeatureExtractor extractor(&c);
  PlanNode primary = SeqScan(c.Get("store_sales"), units::Fraction::Clamp(1.0), 10.0);
  PlanNode conc1 = SeqScan(c.Get("catalog_sales"), units::Fraction::Clamp(1.0), 20.0);
  PlanNode conc2 = SeqScan(c.Get("catalog_sales"), units::Fraction::Clamp(1.0), 30.0);
  Vector mix = extractor.ExtractMixFeatures(primary, {&conc1, &conc2});
  ASSERT_EQ(mix.size(), extractor.mix_feature_dim());
  const size_t d = extractor.query_feature_dim();
  const size_t seq = 2 * static_cast<size_t>(PlanNodeType::kSeqScan);
  EXPECT_DOUBLE_EQ(mix[seq], 1.0);            // primary scan count
  EXPECT_DOUBLE_EQ(mix[seq + 1], 10.0);       // primary rows
  EXPECT_DOUBLE_EQ(mix[d + seq], 2.0);        // concurrent scan count
  EXPECT_DOUBLE_EQ(mix[d + seq + 1], 50.0);   // concurrent summed rows
}

TEST(PlanFeaturesTest, DistinguishesTemplatesInPaperWorkload) {
  const Workload& w = testing::PaperWorkload();
  PlanFeatureExtractor extractor(&w.catalog());
  std::set<Vector> distinct;
  for (int i = 0; i < w.size(); ++i) {
    distinct.insert(extractor.ExtractQueryFeatures(w.NominalPlan(i)));
  }
  EXPECT_EQ(distinct.size(), static_cast<size_t>(w.size()));
}

}  // namespace
}  // namespace contender

// Hand-worked examples of the CQI equations (paper §4.1, Eqs. 2–5).

#include "core/cqi.h"

#include <gtest/gtest.h>

namespace contender {
namespace {

// A small synthetic workload: three templates over two fact tables.
//   T0: scans fact A, l_min = 100, p = 0.9
//   T1: scans fact A and B, l_min = 200, p = 0.8
//   T2: scans fact B, l_min = 50, p = 1.0
// Scan times: s_A = 30, s_B = 20.
std::vector<TemplateProfile> TestProfiles() {
  TemplateProfile t0;
  t0.template_index = 0;
  t0.isolated_latency = units::Seconds(100.0);
  t0.io_fraction = units::Fraction::Clamp(0.9);
  t0.fact_tables = {0};
  TemplateProfile t1;
  t1.template_index = 1;
  t1.isolated_latency = units::Seconds(200.0);
  t1.io_fraction = units::Fraction::Clamp(0.8);
  t1.fact_tables = {0, 1};
  TemplateProfile t2;
  t2.template_index = 2;
  t2.isolated_latency = units::Seconds(50.0);
  t2.io_fraction = units::Fraction::Clamp(1.0);
  t2.fact_tables = {1};
  return {t0, t1, t2};
}

ScanTimes TestScanTimes() {
  return {{0, units::Seconds(30.0)}, {1, units::Seconds(20.0)}};
}

TEST(CqiTest, BaselineIoIsAverageIoFraction) {
  auto cqi = ComputeCqi(TestProfiles(), TestScanTimes(), 0, {1, 2},
                        CqiVariant::kBaselineIo);
  ASSERT_TRUE(cqi.ok());
  EXPECT_NEAR(cqi->value(), (0.8 + 1.0) / 2.0, 1e-12);
}

TEST(CqiTest, PositiveIoSubtractsSharedScansWithPrimary) {
  // Primary T0 scans A. Concurrent T1 shares A: omega = s_A = 30.
  //   r_1 = (200*0.8 - 30)/200 = 0.65.
  // Concurrent T2 shares nothing with T0: r_2 = 1.0.
  auto cqi = ComputeCqi(TestProfiles(), TestScanTimes(), 0, {1, 2},
                        CqiVariant::kPositiveIo);
  ASSERT_TRUE(cqi.ok());
  EXPECT_NEAR(cqi->value(), (0.65 + 1.0) / 2.0, 1e-12);
}

TEST(CqiTest, FullCqiCreditsSharingAmongConcurrents) {
  // Primary T0. Concurrents T1 and T2 both scan B (which the primary does
  // not): h_B = 2, so each gets tau = (1 - 1/2) * s_B = 10.
  //   r_1 = (160 - 30 - 10)/200 = 0.6
  //   r_2 = (50 - 0 - 10)/50 = 0.8
  auto cqi = ComputeCqi(TestProfiles(), TestScanTimes(), 0, {1, 2},
                        CqiVariant::kFull);
  ASSERT_TRUE(cqi.ok());
  EXPECT_NEAR(cqi->value(), (0.6 + 0.8) / 2.0, 1e-12);
}

TEST(CqiTest, TermsExposeOmegaAndTau) {
  auto terms = ComputeCqiTerms(TestProfiles(), TestScanTimes(), 0, {1, 2}, 0,
                               CqiVariant::kFull);
  ASSERT_TRUE(terms.ok());
  EXPECT_NEAR(terms->total_io_seconds.value(), 160.0, 1e-12);
  EXPECT_NEAR(terms->omega.value(), 30.0, 1e-12);
  EXPECT_NEAR(terms->tau.value(), 10.0, 1e-12);
  EXPECT_NEAR(terms->r, 0.6, 1e-12);
}

TEST(CqiTest, NoDoubleCountingWhenPrimarySharesTheTable) {
  // Primary T1 scans A and B. Concurrents T0 (A) and T2 (B) both share
  // with the primary; tau must be zero (tables shared with the primary are
  // excluded from Eq. 3).
  auto t0 = ComputeCqiTerms(TestProfiles(), TestScanTimes(), 1, {0, 2}, 0,
                            CqiVariant::kFull);
  ASSERT_TRUE(t0.ok());
  EXPECT_NEAR(t0->omega.value(), 30.0, 1e-12);
  EXPECT_DOUBLE_EQ(t0->tau.value(), 0.0);
}

TEST(CqiTest, NegativeEstimatesTruncateToZero) {
  // A concurrent query whose shared scans exceed its I/O time: r = 0.
  auto profiles = TestProfiles();
  profiles[1].io_fraction = units::Fraction::Clamp(0.1);  // total I/O = 20 < omega 30
  auto terms = ComputeCqiTerms(profiles, TestScanTimes(), 0, {1}, 0,
                               CqiVariant::kFull);
  ASSERT_TRUE(terms.ok());
  EXPECT_DOUBLE_EQ(terms->r, 0.0);
}

TEST(CqiTest, SelfMixSharingSameTemplate) {
  // Two copies of T0 run with primary T0: each shares scan A with the
  // primary (omega = 30); tau = 0 because A is a primary table.
  auto cqi = ComputeCqi(TestProfiles(), TestScanTimes(), 0, {0, 0},
                        CqiVariant::kFull);
  ASSERT_TRUE(cqi.ok());
  EXPECT_NEAR(cqi->value(), (100.0 * 0.9 - 30.0) / 100.0, 1e-12);
}

TEST(CqiTest, VariantOrderingIsMonotone) {
  // Full CQI credits at least as much positive interaction as Positive I/O,
  // which credits at least as much as Baseline.
  auto base = ComputeCqi(TestProfiles(), TestScanTimes(), 0, {1, 2},
                         CqiVariant::kBaselineIo);
  auto pos = ComputeCqi(TestProfiles(), TestScanTimes(), 0, {1, 2},
                        CqiVariant::kPositiveIo);
  auto full = ComputeCqi(TestProfiles(), TestScanTimes(), 0, {1, 2},
                         CqiVariant::kFull);
  EXPECT_LE(full->value(), pos->value());
  EXPECT_LE(pos->value(), base->value());
}

TEST(CqiTest, MissingScanTimeCountsAsZeroSharing) {
  auto cqi = ComputeCqi(TestProfiles(), {}, 0, {1}, CqiVariant::kFull);
  ASSERT_TRUE(cqi.ok());
  EXPECT_NEAR(cqi->value(), 0.8, 1e-12);  // no credit without s_f
}

TEST(CqiTest, InvalidArguments) {
  auto profiles = TestProfiles();
  auto scans = TestScanTimes();
  EXPECT_FALSE(ComputeCqi(profiles, scans, -1, {0}, CqiVariant::kFull).ok());
  EXPECT_FALSE(ComputeCqi(profiles, scans, 9, {0}, CqiVariant::kFull).ok());
  EXPECT_FALSE(ComputeCqi(profiles, scans, 0, {}, CqiVariant::kFull).ok());
  EXPECT_FALSE(ComputeCqi(profiles, scans, 0, {7}, CqiVariant::kFull).ok());
}

TEST(CqiTest, ProfileOverloadMatchesIndexVersion) {
  auto profiles = TestProfiles();
  auto scans = TestScanTimes();
  std::vector<const TemplateProfile*> conc = {&profiles[1], &profiles[2]};
  auto a = ComputeCqiFor(profiles[0], conc, scans, CqiVariant::kFull);
  auto b = ComputeCqi(profiles, scans, 0, {1, 2}, CqiVariant::kFull);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_DOUBLE_EQ(a->value(), b->value());
}

}  // namespace
}  // namespace contender

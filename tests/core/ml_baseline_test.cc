#include "core/ml_baseline.h"

#include <gtest/gtest.h>

#include "core/plan_features.h"
#include "ml/kfold.h"
#include "test_support.h"

namespace contender {
namespace {

using testing::PaperWorkload;
using testing::SharedTrainingData;

// A reduced dataset (MPL 2 only) keeps the KCCA eigenproblem small.
const MlDataset& Mpl2Dataset() {
  static const MlDataset* data = [] {
    std::vector<MixObservation> mpl2;
    for (const MixObservation& o : SharedTrainingData().observations) {
      if (o.mpl == 2) mpl2.push_back(o);
    }
    return new MlDataset(BuildMlDataset(PaperWorkload(), mpl2));
  }();
  return *data;
}

TEST(MlBaselineTest, DatasetShape) {
  const MlDataset& data = Mpl2Dataset();
  EXPECT_EQ(data.features.size(), 650u);  // 325 pairs x 2 streams
  EXPECT_EQ(data.latencies.size(), data.features.size());
  EXPECT_EQ(data.primary_index.size(), data.features.size());
  PlanFeatureExtractor extractor(&PaperWorkload().catalog());
  for (const Vector& f : data.features) {
    EXPECT_EQ(f.size(), extractor.mix_feature_dim());
  }
}

TEST(MlBaselineTest, StaticWorkloadSplitEvaluates) {
  const MlDataset& data = Mpl2Dataset();
  // Mix-level split (same templates both sides), ~3:1 as in §3.
  Rng rng(3);
  std::vector<size_t> train, test;
  for (size_t i = 0; i < data.features.size(); ++i) {
    (rng.Uniform01() < 0.75 ? train : test).push_back(i);
  }
  auto svm = EvaluateSvmMre(data, train, test);
  ASSERT_TRUE(svm.ok());
  // Static workloads are learnable: clearly better than a naive +/-100%.
  EXPECT_LT(*svm, 0.45);
  EXPECT_GT(*svm, 0.0);
}

TEST(MlBaselineTest, KccaStaticSplitEvaluates) {
  const MlDataset& data = Mpl2Dataset();
  // Subsample to keep the 2n x 2n eigenproblem quick.
  Rng rng(5);
  std::vector<size_t> train, test;
  for (size_t i = 0; i < data.features.size(); ++i) {
    const double u = rng.Uniform01();
    if (u < 0.25) {
      train.push_back(i);
    } else if (u < 0.33) {
      test.push_back(i);
    }
  }
  auto kcca = EvaluateKccaMre(data, train, test);
  ASSERT_TRUE(kcca.ok());
  EXPECT_LT(*kcca, 0.6);
}

TEST(MlBaselineTest, NewTemplateEvaluationHoldsOutPrimary) {
  const Workload& w = PaperWorkload();
  const MlDataset& data = Mpl2Dataset();
  const int held_out = w.IndexOfId(62);
  auto result = EvaluateNewTemplateMl(w, data, held_out);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->template_id, 62);
  EXPECT_GT(result->test_examples, 0);
  EXPECT_GT(result->kcca_mre, 0.0);
  EXPECT_GT(result->svm_mre, 0.0);
}

TEST(MlBaselineTest, HeldOutTemplateWithNoObservationsFails) {
  const Workload& w = PaperWorkload();
  MlDataset empty;
  EXPECT_FALSE(EvaluateNewTemplateMl(w, empty, 0).ok());
}

}  // namespace
}  // namespace contender

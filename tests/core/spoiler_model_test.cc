#include "core/spoiler_model.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace contender {
namespace {

TemplateProfile MakeProfile(double lmin, double growth_slope,
                            double growth_intercept, double ws, double pt) {
  TemplateProfile p;
  p.isolated_latency = units::Seconds(lmin);
  p.working_set_bytes = units::Bytes(ws);
  p.io_fraction = units::Fraction::Clamp(pt);
  for (int mpl = 2; mpl <= 5; ++mpl) {
    p.spoiler_latency[mpl] =
        units::Seconds((growth_slope * mpl + growth_intercept) * lmin);
  }
  return p;
}

TEST(SpoilerGrowthTest, FitsPlantedLinearGrowth) {
  // Slowdown(n) = 1.2 n - 0.2 (so slowdown(1) = 1, consistent with lmin).
  TemplateProfile p = MakeProfile(200.0, 1.2, -0.2, 1e8, 0.9);
  auto model = FitSpoilerGrowth(p, {1, 2, 3, 4, 5});
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->slope, 1.2, 1e-9);
  EXPECT_NEAR(model->intercept, -0.2, 1e-9);
  EXPECT_NEAR(model->r_squared, 1.0, 1e-9);
  EXPECT_NEAR(model->PredictLatency(units::Mpl(4), units::Seconds(200.0)).value(),
              (1.2 * 4 - 0.2) * 200.0,
              1e-6);
}

TEST(SpoilerGrowthTest, ExtrapolatesFromLowMpls) {
  // Paper §5.5: train on MPLs 1–3, predict 4–5 within ~8%.
  TemplateProfile p = MakeProfile(150.0, 1.1, -0.1, 1e8, 0.95);
  auto model = FitSpoilerGrowth(p, {1, 2, 3});
  ASSERT_TRUE(model.ok());
  for (int mpl : {4, 5}) {
    const double predicted =
        model->PredictLatency(units::Mpl(mpl), units::Seconds(150.0)).value();
    const double actual = p.spoiler_latency.at(mpl).value();
    EXPECT_NEAR(predicted, actual, 0.08 * actual);
  }
}

TEST(SpoilerGrowthTest, RejectsInsufficientData) {
  TemplateProfile p;
  p.isolated_latency = units::Seconds(100.0);
  EXPECT_FALSE(FitSpoilerGrowth(p, {2, 3}).ok());  // no spoiler latencies
  EXPECT_FALSE(FitSpoilerGrowth(p, {1}).ok());     // single point
  p.isolated_latency = units::Seconds(0.0);
  EXPECT_FALSE(FitSpoilerGrowth(p, {1, 2}).ok());
}

// Two clusters of templates with distinct growth regimes; a new template
// near a cluster must inherit that cluster's coefficients.
TEST(KnnSpoilerTest, PredictsFromNearestCluster) {
  std::vector<TemplateProfile> refs;
  // Cluster A: small working sets, I/O-bound, growth slope ~1.2.
  for (int i = 0; i < 4; ++i) {
    refs.push_back(MakeProfile(100.0 + i * 50.0, 1.2, -0.2, 5e7 + i * 1e7,
                               0.95));
  }
  // Cluster B: multi-GB working sets, CPU-bound, growth slope ~3.0.
  for (int i = 0; i < 4; ++i) {
    refs.push_back(MakeProfile(200.0 + i * 50.0, 3.0, -2.0, 3e9 + i * 2e8,
                               0.4));
  }
  KnnSpoilerPredictor::Options opts;
  opts.k = 3;
  auto predictor = KnnSpoilerPredictor::Fit(refs, opts);
  ASSERT_TRUE(predictor.ok());

  TemplateProfile light = MakeProfile(120.0, 0.0, 0.0, 6e7, 0.93);
  auto growth = predictor->PredictGrowthModel(light);
  ASSERT_TRUE(growth.ok());
  EXPECT_NEAR(growth->slope, 1.2, 1e-9);

  TemplateProfile heavy = MakeProfile(300.0, 0.0, 0.0, 3.4e9, 0.45);
  growth = predictor->PredictGrowthModel(heavy);
  ASSERT_TRUE(growth.ok());
  EXPECT_NEAR(growth->slope, 3.0, 1e-9);

  auto lmax = predictor->Predict(heavy, units::Mpl(5));
  ASSERT_TRUE(lmax.ok());
  EXPECT_NEAR(lmax->value(), (3.0 * 5 - 2.0) * 300.0, 1e-6);
}

TEST(KnnSpoilerTest, RequiresEnoughReferences) {
  std::vector<TemplateProfile> refs = {MakeProfile(100.0, 1.0, 0.0, 1e8,
                                                   0.9)};
  KnnSpoilerPredictor::Options opts;
  opts.k = 3;
  EXPECT_FALSE(KnnSpoilerPredictor::Fit(refs, opts).ok());
}

TEST(IoTimeSpoilerTest, RegressesGrowthOnIoFraction) {
  // Plant growth slope = 2 * p_t, intercept = 0 (plus slowdown-at-1 = 1
  // isn't enforced here; the regression is purely on the planted data).
  std::vector<TemplateProfile> refs;
  Rng rng(11);
  for (int i = 0; i < 10; ++i) {
    const double pt = 0.3 + 0.07 * i;
    refs.push_back(MakeProfile(100.0 + 20.0 * i, 2.0 * pt, 0.0, 1e8, pt));
  }
  auto predictor = IoTimeSpoilerPredictor::Fit(refs, {1, 2, 3, 4, 5});
  ASSERT_TRUE(predictor.ok());
  TemplateProfile target = MakeProfile(500.0, 0.0, 0.0, 1e8, 0.8);
  auto lmax = predictor->Predict(target, units::Mpl(4));
  ASSERT_TRUE(lmax.ok());
  // Planted: slowdown(4) = 2*0.8*4 = 6.4. The fit also sees the (1, 1)
  // isolated anchor point, so allow slack.
  EXPECT_NEAR(lmax->value() / 500.0, 6.4, 1.2);
}

}  // namespace
}  // namespace contender

#include "core/qs_transfer.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace contender {
namespace {

// Planted relations: slope = -0.001 * lmin + 1.0; intercept = -0.5*slope
// + 0.3 (the Fig. 4 coefficient relationship).
std::pair<std::vector<TemplateProfile>, std::map<int, QsModel>>
PlantedReferences(int n, double noise, uint64_t seed) {
  Rng rng(seed);
  std::vector<TemplateProfile> profiles;
  std::map<int, QsModel> models;
  for (int i = 0; i < n; ++i) {
    TemplateProfile p;
    p.template_index = i;
    p.isolated_latency = units::Seconds(rng.Uniform(100.0, 900.0));
    profiles.push_back(p);
    QsModel m;
    m.slope =
        -0.001 * p.isolated_latency.value() + 1.0 + rng.Normal(0.0, noise);
    m.intercept = -0.5 * m.slope + 0.3 + rng.Normal(0.0, noise);
    models[i] = m;
  }
  return {profiles, models};
}

TEST(QsTransferTest, RecoversPlantedRelationsExactly) {
  auto [profiles, models] = PlantedReferences(10, 0.0, 3);
  auto transfer = QsTransferModel::Fit(profiles, models);
  ASSERT_TRUE(transfer.ok());
  EXPECT_NEAR(transfer->slope_fit().slope, -0.001, 1e-9);
  EXPECT_NEAR(transfer->slope_fit().intercept, 1.0, 1e-9);
  EXPECT_NEAR(transfer->intercept_fit().slope, -0.5, 1e-9);
  EXPECT_NEAR(transfer->intercept_fit().intercept, 0.3, 1e-9);

  // Unknown-QS prediction for a new template at lmin = 500.
  QsModel qs = transfer->PredictFromIsolatedLatency(units::Seconds(500.0));
  EXPECT_NEAR(qs.slope, 0.5, 1e-9);
  EXPECT_NEAR(qs.intercept, 0.05, 1e-9);
}

TEST(QsTransferTest, UnknownYUsesSuppliedSlope) {
  auto [profiles, models] = PlantedReferences(10, 0.0, 4);
  auto transfer = QsTransferModel::Fit(profiles, models);
  ASSERT_TRUE(transfer.ok());
  QsModel qs = transfer->PredictInterceptFromSlope(0.8);
  EXPECT_DOUBLE_EQ(qs.slope, 0.8);
  EXPECT_NEAR(qs.intercept, -0.5 * 0.8 + 0.3, 1e-9);
}

TEST(QsTransferTest, ToleratesNoise) {
  auto [profiles, models] = PlantedReferences(25, 0.05, 5);
  auto transfer = QsTransferModel::Fit(profiles, models);
  ASSERT_TRUE(transfer.ok());
  EXPECT_NEAR(transfer->slope_fit().slope, -0.001, 3e-4);
}

TEST(QsTransferTest, NeedsAtLeastThreeReferences) {
  auto [profiles, models] = PlantedReferences(2, 0.0, 6);
  EXPECT_FALSE(QsTransferModel::Fit(profiles, models).ok());
}

TEST(QsTransferTest, RejectsBadIndices) {
  auto [profiles, models] = PlantedReferences(5, 0.0, 7);
  models[99] = QsModel{};
  EXPECT_FALSE(QsTransferModel::Fit(profiles, models).ok());
}

TEST(QsTransferTest, FeatureCorrelationSignsAndRange) {
  auto [profiles, models] = PlantedReferences(20, 0.02, 8);
  // Fill other features with noise so they correlate weakly.
  Rng rng(9);
  for (TemplateProfile& p : profiles) {
    p.io_fraction = units::Fraction::Clamp(rng.Uniform(0.3, 1.0));
    p.working_set_bytes = units::Bytes(rng.Uniform(1e7, 4e9));
    p.plan_steps = static_cast<int>(rng.UniformInt(int64_t{5}, int64_t{40}));
    p.records_accessed = rng.Uniform(1e6, 1e9);
    p.spoiler_latency[2] = p.isolated_latency * rng.Uniform(1.5, 2.5);
  }
  auto correlations = CorrelateFeaturesWithQs(profiles, models, units::Mpl(2));
  ASSERT_EQ(correlations.size(), 7u);
  for (const FeatureCorrelation& fc : correlations) {
    EXPECT_GE(fc.r2_intercept, -1.0);
    EXPECT_LE(fc.r2_intercept, 1.0);
    EXPECT_GE(fc.r2_slope, -1.0);
    EXPECT_LE(fc.r2_slope, 1.0);
  }
  // Isolated latency was planted as the slope driver: strongest signed
  // negative correlation with slope.
  const FeatureCorrelation* iso = nullptr;
  for (const auto& fc : correlations) {
    if (fc.feature == "Isolated latency") iso = &fc;
  }
  ASSERT_NE(iso, nullptr);
  EXPECT_LT(iso->r2_slope, -0.8);
}

}  // namespace
}  // namespace contender

#include "core/continuum.h"

#include <limits>

#include <gtest/gtest.h>

#include "util/logging.h"
#include "util/units.h"

namespace contender {
namespace {

using units::LatencyRange;
using units::Seconds;

LatencyRange Range(double l_min, double l_max) {
  auto range = LatencyRange::Make(Seconds(l_min), Seconds(l_max));
  CONTENDER_CHECK_OK(range.status());
  return *range;
}

TEST(ContinuumTest, EndpointsMapToZeroAndOne) {
  const LatencyRange range = Range(100.0, 300.0);
  EXPECT_DOUBLE_EQ(ContinuumPoint(Seconds(100.0), range)->value(), 0.0);
  EXPECT_DOUBLE_EQ(ContinuumPoint(Seconds(300.0), range)->value(), 1.0);
  EXPECT_DOUBLE_EQ(ContinuumPoint(Seconds(200.0), range)->value(), 0.5);
}

TEST(ContinuumTest, ValuesOutsideRangeAreNotClamped) {
  // Positive interactions can push observations below l_min (§5.3).
  const LatencyRange range = Range(100.0, 300.0);
  EXPECT_LT(ContinuumPoint(Seconds(90.0), range)->value(), 0.0);
  EXPECT_GT(ContinuumPoint(Seconds(310.0), range)->value(), 1.0);
}

TEST(ContinuumTest, RoundTrip) {
  const LatencyRange range = Range(100.0, 300.0);
  for (double latency : {120.0, 180.0, 299.0}) {
    auto point = ContinuumPoint(Seconds(latency), range);
    ASSERT_TRUE(point.ok());
    EXPECT_NEAR(LatencyFromContinuum(*point, range).value(), latency, 1e-12);
  }
}

TEST(ContinuumTest, RangeRejectsNonPositiveLmin) {
  auto range = LatencyRange::Make(Seconds(0.0), Seconds(10.0));
  EXPECT_FALSE(range.ok());
  EXPECT_EQ(range.status().code(), StatusCode::kInvalidArgument);
}

TEST(ContinuumTest, RangeRejectsDegenerateAndSwappedBounds) {
  // l_max == l_min: the continuum collapses to a point; Eq. 6 divides by
  // the width, so construction must fail rather than yield inf/NaN.
  auto degenerate = LatencyRange::Make(Seconds(10.0), Seconds(10.0));
  EXPECT_FALSE(degenerate.ok());
  EXPECT_EQ(degenerate.status().code(), StatusCode::kInvalidArgument);
  // Swapped bounds (spoiler faster than isolated) are equally invalid.
  auto swapped = LatencyRange::Make(Seconds(10.0), Seconds(5.0));
  EXPECT_FALSE(swapped.ok());
  EXPECT_EQ(swapped.status().code(), StatusCode::kInvalidArgument);
}

TEST(ContinuumTest, RangeRejectsNaNBounds) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(LatencyRange::Make(Seconds(nan), Seconds(10.0)).ok());
  EXPECT_FALSE(LatencyRange::Make(Seconds(1.0), Seconds(nan)).ok());
}

TEST(ContinuumTest, NegativeLatencyRejected) {
  const LatencyRange range = Range(100.0, 300.0);
  auto point = ContinuumPoint(Seconds(-1.0), range);
  EXPECT_FALSE(point.ok());
  EXPECT_EQ(point.status().code(), StatusCode::kInvalidArgument);
}

TEST(ContinuumTest, NaNLatencyRejected) {
  const LatencyRange range = Range(100.0, 300.0);
  const double nan = std::numeric_limits<double>::quiet_NaN();
  EXPECT_FALSE(ContinuumPoint(Seconds(nan), range).ok());
}

TEST(ContinuumTest, OutlierRuleAt105Percent) {
  // §6.1: latency strictly beyond 105% of the spoiler exceeds the
  // continuum. The boundary itself (exactly 1.05 * l_max) is kept.
  EXPECT_FALSE(ExceedsContinuum(Seconds(104.0), Seconds(100.0)));
  EXPECT_FALSE(ExceedsContinuum(Seconds(105.0), Seconds(100.0)));
  EXPECT_FALSE(ExceedsContinuum(1.05 * Seconds(100.0), Seconds(100.0)));
  EXPECT_TRUE(ExceedsContinuum(Seconds(105.1), Seconds(100.0)));
}

TEST(ContinuumTest, RangeAccessorsExposeWidth) {
  const LatencyRange range = Range(100.0, 300.0);
  EXPECT_DOUBLE_EQ(range.min().value(), 100.0);
  EXPECT_DOUBLE_EQ(range.max().value(), 300.0);
  EXPECT_DOUBLE_EQ(range.width().value(), 200.0);
}

}  // namespace
}  // namespace contender

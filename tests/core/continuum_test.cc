#include "core/continuum.h"

#include <gtest/gtest.h>

namespace contender {
namespace {

TEST(ContinuumTest, EndpointsMapToZeroAndOne) {
  EXPECT_DOUBLE_EQ(*ContinuumPoint(100.0, 100.0, 300.0), 0.0);
  EXPECT_DOUBLE_EQ(*ContinuumPoint(300.0, 100.0, 300.0), 1.0);
  EXPECT_DOUBLE_EQ(*ContinuumPoint(200.0, 100.0, 300.0), 0.5);
}

TEST(ContinuumTest, ValuesOutsideRangeAreNotClamped) {
  // Positive interactions can push observations below l_min (§5.3).
  EXPECT_LT(*ContinuumPoint(90.0, 100.0, 300.0), 0.0);
  EXPECT_GT(*ContinuumPoint(310.0, 100.0, 300.0), 1.0);
}

TEST(ContinuumTest, RoundTrip) {
  for (double latency : {120.0, 180.0, 299.0}) {
    const double point = *ContinuumPoint(latency, 100.0, 300.0);
    EXPECT_NEAR(*LatencyFromContinuum(point, 100.0, 300.0), latency, 1e-12);
  }
}

TEST(ContinuumTest, RejectsDegenerateRange) {
  EXPECT_FALSE(ContinuumPoint(1.0, 0.0, 10.0).ok());
  EXPECT_FALSE(ContinuumPoint(1.0, 10.0, 10.0).ok());
  EXPECT_FALSE(ContinuumPoint(1.0, 10.0, 5.0).ok());
  EXPECT_FALSE(LatencyFromContinuum(0.5, 10.0, 5.0).ok());
}

TEST(ContinuumTest, OutlierRuleAt105Percent) {
  // §6.1: latency beyond 105% of the spoiler exceeds the continuum.
  EXPECT_FALSE(ExceedsContinuum(104.0, 100.0));
  EXPECT_FALSE(ExceedsContinuum(105.0, 100.0));
  EXPECT_TRUE(ExceedsContinuum(105.1, 100.0));
}

}  // namespace
}  // namespace contender

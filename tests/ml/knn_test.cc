#include "ml/knn.h"

#include <gtest/gtest.h>

#include "util/random.h"

namespace contender {
namespace {

TEST(KnnTest, RejectsBadInput) {
  KnnRegressor::Options opts;
  EXPECT_FALSE(KnnRegressor::Fit({}, {}, opts).ok());
  EXPECT_FALSE(KnnRegressor::Fit({{1.0}}, {{1.0}, {2.0}}, opts).ok());
  EXPECT_FALSE(
      KnnRegressor::Fit({{1.0}, {1.0, 2.0}}, {{1.0}, {1.0}}, opts).ok());
  opts.k = 0;
  EXPECT_FALSE(KnnRegressor::Fit({{1.0}}, {{1.0}}, opts).ok());
}

TEST(KnnTest, ExactNeighborWithKOne) {
  KnnRegressor::Options opts;
  opts.k = 1;
  auto model = KnnRegressor::Fit({{0.0}, {10.0}, {20.0}},
                                 {{1.0}, {2.0}, {3.0}}, opts);
  ASSERT_TRUE(model.ok());
  EXPECT_DOUBLE_EQ(model->Predict({9.0})[0], 2.0);
  EXPECT_DOUBLE_EQ(model->Predict({-5.0})[0], 1.0);
  EXPECT_DOUBLE_EQ(model->Predict({100.0})[0], 3.0);
}

TEST(KnnTest, AveragesKNeighbors) {
  KnnRegressor::Options opts;
  opts.k = 2;
  opts.normalize = false;
  auto model = KnnRegressor::Fit({{0.0}, {1.0}, {100.0}},
                                 {{10.0}, {20.0}, {1000.0}}, opts);
  ASSERT_TRUE(model.ok());
  EXPECT_DOUBLE_EQ(model->Predict({0.4})[0], 15.0);
}

TEST(KnnTest, KLargerThanTrainingSetClamps) {
  KnnRegressor::Options opts;
  opts.k = 10;
  auto model = KnnRegressor::Fit({{0.0}, {1.0}}, {{2.0}, {4.0}}, opts);
  ASSERT_TRUE(model.ok());
  EXPECT_DOUBLE_EQ(model->Predict({0.5})[0], 3.0);
}

TEST(KnnTest, MultiOutputTargets) {
  KnnRegressor::Options opts;
  opts.k = 1;
  auto model = KnnRegressor::Fit({{0.0}, {10.0}},
                                 {{1.0, -1.0}, {2.0, -2.0}}, opts);
  ASSERT_TRUE(model.ok());
  Vector out = model->Predict({9.5});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_DOUBLE_EQ(out[0], 2.0);
  EXPECT_DOUBLE_EQ(out[1], -2.0);
}

TEST(KnnTest, NormalizationBalancesScales) {
  // Feature 0 spans ~1e9 (bytes), feature 1 spans ~1 (fraction). Without
  // normalization feature 1 is invisible; with it, both matter. This is the
  // spoiler predictor's exact situation (working set bytes vs p_t).
  KnnRegressor::Options opts;
  opts.k = 1;
  opts.normalize = true;
  std::vector<Vector> features = {
      {1.0e9, 0.0}, {1.0e9, 1.0}, {2.0e9, 0.0}, {2.0e9, 1.0}};
  std::vector<Vector> targets = {{1.0}, {2.0}, {3.0}, {4.0}};
  auto model = KnnRegressor::Fit(features, targets, opts);
  ASSERT_TRUE(model.ok());
  // Nearest to (1.05e9, 0.9) should be (1e9, 1.0), not (1e9, 0.0).
  EXPECT_DOUBLE_EQ(model->Predict({1.05e9, 0.9})[0], 2.0);
}

TEST(KnnTest, NeighborsOrderedByDistance) {
  KnnRegressor::Options opts;
  opts.k = 3;
  opts.normalize = false;
  auto model = KnnRegressor::Fit({{0.0}, {5.0}, {6.0}, {50.0}},
                                 {{0.0}, {0.0}, {0.0}, {0.0}}, opts);
  ASSERT_TRUE(model.ok());
  std::vector<size_t> nn = model->Neighbors({5.4});
  ASSERT_EQ(nn.size(), 3u);
  EXPECT_EQ(nn[0], 1u);
  EXPECT_EQ(nn[1], 2u);
  EXPECT_EQ(nn[2], 0u);
}

TEST(KnnTest, RecoverySweep) {
  // Smooth function recovery improves with more training data.
  Rng rng(8);
  KnnRegressor::Options opts;
  opts.k = 3;
  std::vector<Vector> features;
  std::vector<Vector> targets;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.Uniform(0.0, 10.0);
    features.push_back({x});
    targets.push_back({3.0 * x + 1.0});
  }
  auto model = KnnRegressor::Fit(features, targets, opts);
  ASSERT_TRUE(model.ok());
  for (double q : {1.0, 3.3, 7.7, 9.0}) {
    EXPECT_NEAR(model->Predict({q})[0], 3.0 * q + 1.0, 0.5);
  }
}

}  // namespace
}  // namespace contender

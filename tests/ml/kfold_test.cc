#include "ml/kfold.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace contender {
namespace {

class KFoldProperty
    : public ::testing::TestWithParam<std::tuple<size_t, int>> {};

TEST_P(KFoldProperty, PartitionInvariants) {
  const size_t n = std::get<0>(GetParam());
  const int k = std::get<1>(GetParam());
  Rng rng(99);
  auto splits = KFoldSplits(n, k, &rng);
  const size_t folds = std::min<size_t>(static_cast<size_t>(k), n);
  ASSERT_EQ(splits.size(), folds);

  std::set<size_t> all_test;
  for (const FoldSplit& s : splits) {
    // Train and test are disjoint and cover everything.
    EXPECT_EQ(s.train.size() + s.test.size(), n);
    std::set<size_t> train(s.train.begin(), s.train.end());
    for (size_t t : s.test) {
      EXPECT_EQ(train.count(t), 0u);
      all_test.insert(t);
    }
    // Near-equal fold sizes.
    EXPECT_GE(s.test.size(), n / folds);
    EXPECT_LE(s.test.size(), n / folds + 1);
  }
  // Every example is tested exactly once across folds.
  EXPECT_EQ(all_test.size(), n);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, KFoldProperty,
    ::testing::Combine(::testing::Values<size_t>(1, 5, 10, 25, 100),
                       ::testing::Values(2, 5, 6)));

TEST(KFoldTest, EmptyInput) {
  Rng rng(1);
  EXPECT_TRUE(KFoldSplits(0, 5, &rng).empty());
}

TEST(KFoldTest, KClampedToN) {
  Rng rng(2);
  auto splits = KFoldSplits(3, 10, &rng);
  EXPECT_EQ(splits.size(), 3u);
}

TEST(KFoldTest, DeterministicGivenSeed) {
  Rng a(7), b(7);
  auto sa = KFoldSplits(20, 5, &a);
  auto sb = KFoldSplits(20, 5, &b);
  ASSERT_EQ(sa.size(), sb.size());
  for (size_t i = 0; i < sa.size(); ++i) {
    EXPECT_EQ(sa[i].test, sb[i].test);
  }
}

TEST(LeaveOneOutTest, Basics) {
  auto splits = LeaveOneOutSplits(4);
  ASSERT_EQ(splits.size(), 4u);
  for (size_t i = 0; i < 4; ++i) {
    ASSERT_EQ(splits[i].test.size(), 1u);
    EXPECT_EQ(splits[i].test[0], i);
    EXPECT_EQ(splits[i].train.size(), 3u);
    EXPECT_EQ(std::count(splits[i].train.begin(), splits[i].train.end(), i),
              0);
  }
}

}  // namespace
}  // namespace contender

#include "ml/svm.h"

#include <cmath>

#include <gtest/gtest.h>

#include "math/metrics.h"
#include "util/random.h"

namespace contender {
namespace {

TEST(SvrTest, RejectsBadInput) {
  SvrModel::Options opts;
  EXPECT_FALSE(SvrModel::Fit({}, {}, opts).ok());
  EXPECT_FALSE(SvrModel::Fit({{1.0}}, {1.0}, opts).ok());
  EXPECT_FALSE(SvrModel::Fit({{1.0}, {1.0, 2.0}}, {1.0, 2.0}, opts).ok());
}

TEST(SvrTest, FitsLinearFunction) {
  Rng rng(3);
  std::vector<Vector> x;
  std::vector<double> y;
  for (int i = 0; i < 120; ++i) {
    const double xi = rng.Uniform(-3.0, 3.0);
    x.push_back({xi});
    y.push_back(2.0 * xi + 1.0);
  }
  SvrModel::Options opts;
  auto model = SvrModel::Fit(x, y, opts);
  ASSERT_TRUE(model.ok());
  std::vector<double> obs, pred;
  for (double q = -2.5; q <= 2.5; q += 0.5) {
    obs.push_back(2.0 * q + 1.0);
    pred.push_back(model->Predict({q}));
  }
  EXPECT_LT(Rmse(obs, pred), 0.5);
}

TEST(SvrTest, FitsSmoothNonlinearFunction) {
  Rng rng(5);
  std::vector<Vector> x;
  std::vector<double> y;
  for (int i = 0; i < 200; ++i) {
    const double xi = rng.Uniform(0.0, 6.28);
    x.push_back({xi});
    y.push_back(std::sin(xi));
  }
  SvrModel::Options opts;
  opts.c = 50.0;
  opts.epsilon = 0.02;
  auto model = SvrModel::Fit(x, y, opts);
  ASSERT_TRUE(model.ok());
  double worst = 0.0;
  for (double q = 0.5; q < 6.0; q += 0.25) {
    worst = std::max(worst, std::fabs(model->Predict({q}) - std::sin(q)));
  }
  EXPECT_LT(worst, 0.25);
  EXPECT_GT(model->num_support_vectors(), 0u);
}

TEST(SvrTest, MultiDimensionalRecovery) {
  Rng rng(7);
  std::vector<Vector> x;
  std::vector<double> y;
  for (int i = 0; i < 300; ++i) {
    Vector row = {rng.Uniform(-1.0, 1.0), rng.Uniform(-1.0, 1.0),
                  rng.Uniform(-1.0, 1.0)};
    y.push_back(row[0] - 2.0 * row[1] + 0.5 * row[2]);
    x.push_back(std::move(row));
  }
  auto model = SvrModel::Fit(x, y, SvrModel::Options{});
  ASSERT_TRUE(model.ok());
  std::vector<double> obs, pred;
  Rng test_rng(8);
  for (int i = 0; i < 50; ++i) {
    Vector q = {test_rng.Uniform(-0.8, 0.8), test_rng.Uniform(-0.8, 0.8),
                test_rng.Uniform(-0.8, 0.8)};
    obs.push_back(q[0] - 2.0 * q[1] + 0.5 * q[2]);
    pred.push_back(model->Predict(q));
  }
  EXPECT_LT(Rmse(obs, pred), 0.35);
}

TEST(SvrTest, RobustToLabelNoise) {
  Rng rng(9);
  std::vector<Vector> x;
  std::vector<double> y;
  for (int i = 0; i < 200; ++i) {
    const double xi = rng.Uniform(0.0, 10.0);
    x.push_back({xi});
    y.push_back(3.0 * xi + rng.Normal(0.0, 0.5));
  }
  auto model = SvrModel::Fit(x, y, SvrModel::Options{});
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->Predict({5.0}), 15.0, 1.5);
}

TEST(SvrTest, DeterministicForFixedSeed) {
  std::vector<Vector> x;
  std::vector<double> y;
  Rng rng(11);
  for (int i = 0; i < 60; ++i) {
    const double xi = rng.Uniform01();
    x.push_back({xi});
    y.push_back(xi * xi);
  }
  SvrModel::Options opts;
  opts.seed = 42;
  auto a = SvrModel::Fit(x, y, opts);
  auto b = SvrModel::Fit(x, y, opts);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  for (double q : {0.1, 0.5, 0.9}) {
    EXPECT_DOUBLE_EQ(a->Predict({q}), b->Predict({q}));
  }
}

TEST(SvrTest, ConstantLabelsPredictConstant) {
  std::vector<Vector> x = {{0.0}, {1.0}, {2.0}, {3.0}};
  std::vector<double> y = {5.0, 5.0, 5.0, 5.0};
  auto model = SvrModel::Fit(x, y, SvrModel::Options{});
  ASSERT_TRUE(model.ok());
  EXPECT_NEAR(model->Predict({1.5}), 5.0, 0.3);
}

}  // namespace
}  // namespace contender

#include "ml/lhs.h"

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

namespace contender {
namespace {

// The defining Latin-hypercube property (paper Fig. 1): in one run, every
// template appears exactly once in each dimension.
class LhsProperty : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(LhsProperty, EveryValueIntersectedOncePerDimension) {
  const int n = std::get<0>(GetParam());
  const int mpl = std::get<1>(GetParam());
  Rng rng(static_cast<uint64_t>(n * 31 + mpl));
  auto mixes = LatinHypercubeSample(n, mpl, &rng);
  ASSERT_TRUE(mixes.ok());
  ASSERT_EQ(mixes->size(), static_cast<size_t>(n));
  for (int d = 0; d < mpl; ++d) {
    std::set<int> seen;
    for (const MixSelection& mix : *mixes) {
      ASSERT_EQ(mix.size(), static_cast<size_t>(mpl));
      seen.insert(mix[static_cast<size_t>(d)]);
    }
    EXPECT_EQ(seen.size(), static_cast<size_t>(n)) << "dimension " << d;
    EXPECT_EQ(*seen.begin(), 0);
    EXPECT_EQ(*seen.rbegin(), n - 1);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, LhsProperty,
    ::testing::Combine(::testing::Values(2, 5, 17, 25),
                       ::testing::Values(2, 3, 4, 5)));

TEST(LhsTest, InvalidArguments) {
  Rng rng(1);
  EXPECT_FALSE(LatinHypercubeSample(0, 2, &rng).ok());
  EXPECT_FALSE(LatinHypercubeSample(5, 0, &rng).ok());
}

TEST(LhsTest, RunsConcatenate) {
  Rng rng(2);
  auto mixes = LatinHypercubeRuns(10, 3, 4, &rng);
  ASSERT_TRUE(mixes.ok());
  EXPECT_EQ(mixes->size(), 40u);
}

TEST(LhsTest, DisjointRunsDiffer) {
  Rng rng(3);
  auto runs = LatinHypercubeRuns(25, 4, 2, &rng);
  ASSERT_TRUE(runs.ok());
  // The two runs should not be identical permutations.
  bool differs = false;
  for (size_t i = 0; i < 25; ++i) {
    if ((*runs)[i] != (*runs)[i + 25]) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(AllPairsTest, CountsAndContents) {
  auto pairs = AllPairs(3);
  // 3-choose-2 with replacement = 6.
  ASSERT_EQ(pairs.size(), 6u);
  std::set<std::pair<int, int>> seen;
  for (const MixSelection& p : pairs) {
    ASSERT_EQ(p.size(), 2u);
    EXPECT_LE(p[0], p[1]);
    seen.insert({p[0], p[1]});
  }
  EXPECT_EQ(seen.size(), 6u);
}

TEST(AllPairsTest, PaperWorkloadPairCount) {
  // 25 templates: C(26, 2) = 325 pairs.
  EXPECT_EQ(AllPairs(25).size(), 325u);
}

TEST(DistinctMixCountTest, PaperNumbers) {
  // Paper §2: 25 templates at MPL 5 yield 118,755 unique mixes.
  EXPECT_EQ(DistinctMixCount(25, 5), 118755u);
  EXPECT_EQ(DistinctMixCount(25, 2), 325u);
  EXPECT_EQ(DistinctMixCount(1, 5), 1u);
  EXPECT_EQ(DistinctMixCount(2, 3), 4u);
}

TEST(DistinctMixCountTest, SaturatesInsteadOfOverflowing) {
  EXPECT_EQ(DistinctMixCount(1000000, 1000),
            std::numeric_limits<uint64_t>::max());
}

TEST(DistinctMixCountTest, NonPositiveInputsYieldZero) {
  // Regression: num_templates == 0 used to divide by zero in the
  // multiplicative binomial loop.
  EXPECT_EQ(DistinctMixCount(0, 5), 0u);
  EXPECT_EQ(DistinctMixCount(-3, 2), 0u);
  EXPECT_EQ(DistinctMixCount(25, 0), 0u);
  EXPECT_EQ(DistinctMixCount(25, -1), 0u);
}

}  // namespace
}  // namespace contender

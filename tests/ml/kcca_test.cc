#include "ml/kcca.h"

#include <gtest/gtest.h>

#include "math/metrics.h"
#include "util/random.h"

namespace contender {
namespace {

TEST(KccaTest, RejectsBadInput) {
  KccaModel::Options opts;
  EXPECT_FALSE(KccaModel::Fit({}, {}, opts).ok());
  EXPECT_FALSE(KccaModel::Fit({{1.0}, {2.0}}, {{1.0}}, opts).ok());
  EXPECT_FALSE(
      KccaModel::Fit({{1.0}, {2.0}, {3.0}}, {{1.0}, {2.0}, {3.0}}, opts)
          .ok());  // < 4 examples
}

// Clustered data: feature clusters map to distinct latencies; KCCA should
// project a new point near its cluster and predict the cluster latency.
TEST(KccaTest, ClusterLatencyRecovery) {
  Rng rng(4);
  std::vector<Vector> x;
  std::vector<Vector> y;
  const std::vector<Vector> centers = {{0.0, 0.0}, {5.0, 5.0}, {10.0, 0.0}};
  const std::vector<double> latencies = {100.0, 500.0, 900.0};
  for (int rep = 0; rep < 12; ++rep) {
    for (size_t c = 0; c < centers.size(); ++c) {
      x.push_back({centers[c][0] + rng.Normal(0.0, 0.3),
                   centers[c][1] + rng.Normal(0.0, 0.3)});
      y.push_back({latencies[c] + rng.Normal(0.0, 10.0)});
    }
  }
  KccaModel::Options opts;
  opts.num_projections = 2;
  auto model = KccaModel::Fit(x, y, opts);
  ASSERT_TRUE(model.ok());

  for (size_t c = 0; c < centers.size(); ++c) {
    const double pred = model->PredictLatency(centers[c]);
    EXPECT_NEAR(pred, latencies[c], 60.0) << "cluster " << c;
  }
}

TEST(KccaTest, ProjectionDimensionMatchesOptions) {
  Rng rng(6);
  std::vector<Vector> x;
  std::vector<Vector> y;
  for (int i = 0; i < 20; ++i) {
    const double v = rng.Uniform01();
    x.push_back({v, 1.0 - v});
    y.push_back({v * 100.0});
  }
  KccaModel::Options opts;
  opts.num_projections = 3;
  auto model = KccaModel::Fit(x, y, opts);
  ASSERT_TRUE(model.ok());
  EXPECT_EQ(model->Project({0.5, 0.5}).size(), 3u);
}

TEST(KccaTest, MonotoneRelationshipRecovered) {
  // Latency is a monotone function of one feature; a prediction for a test
  // point should interpolate sensibly.
  Rng rng(8);
  std::vector<Vector> x;
  std::vector<Vector> y;
  for (int i = 0; i < 40; ++i) {
    const double v = rng.Uniform(0.0, 1.0);
    x.push_back({v});
    y.push_back({100.0 + 800.0 * v});
  }
  auto model = KccaModel::Fit(x, y, KccaModel::Options{});
  ASSERT_TRUE(model.ok());
  const double low = model->PredictLatency({0.05});
  const double high = model->PredictLatency({0.95});
  EXPECT_LT(low, high);
  EXPECT_NEAR(low, 140.0, 120.0);
  EXPECT_NEAR(high, 860.0, 120.0);
}

}  // namespace
}  // namespace contender

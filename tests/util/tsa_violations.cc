// Negative-compile fixtures for Clang Thread Safety Analysis.
//
// Each TSA_VIOLATION_* block contains exactly one locking-discipline bug
// that -Wthread-safety (-beta for lock ordering) MUST reject; the ctest
// entries in tests/CMakeLists.txt compile this file once per macro with
// -Werror and WILL_FAIL, so the analysis regressing (accepting a
// violation class it used to reject) turns into a test failure. With no
// violation macro defined, the file is the positive control: correct
// wrapper usage over the same shapes that must stay accepted — and it is
// also built into every GCC test run (as an object library) so the
// fixtures themselves cannot bit-rot on a host without Clang.
//
// The violation classes (the negative half of the tentpole's acceptance
// bar, one per satellite-listed class plus REQUIRES):
//   TSA_VIOLATION_UNGUARDED_READ      GUARDED_BY field read lock-free
//   TSA_VIOLATION_MISSING_RELEASE     Lock() with a return path that
//                                     never unlocks
//   TSA_VIOLATION_LOCK_ORDER          acquisition violating the declared
//                                     ACQUIRED_AFTER order (beta check)
//   TSA_VIOLATION_REENTRANT_ACQUIRE   locking a non-reentrant Mutex twice
//   TSA_VIOLATION_REQUIRES_UNHELD     calling a REQUIRES function without
//                                     the lock

#include <cstdint>

#include "util/mutex.h"
#include "util/thread_annotations.h"

// External linkage on purpose: under GCC the annotations vanish and an
// anonymous namespace would trip -Wunused-function in the control build.
namespace contender::tsa_fixture {

/// The guarded-state shape every migrated class reduces to.
class Counter {
 public:
  void Increment() {
    MutexLock lock(&mutex_);
    ++value_;
  }

  int64_t Read() const {
    MutexLock lock(&mutex_);
    return value_;
  }

  void IncrementLocked() REQUIRES(mutex_) { ++value_; }

  Mutex* mutex() RETURN_CAPABILITY(mutex_) { return &mutex_; }

 private:
  friend int64_t ReadUnguarded(const Counter& counter);
  mutable Mutex mutex_;
  int64_t value_ GUARDED_BY(mutex_) = 0;
};

/// The declared order: `first` before `second` (the ACQUIRED_AFTER edge
/// is on the later lock, per the Clang docs' recommended spelling).
inline Mutex order_first;
inline Mutex order_second ACQUIRED_AFTER(order_first);
inline int order_guarded GUARDED_BY(order_second) = 0;

#if defined(TSA_VIOLATION_UNGUARDED_READ)

int64_t ReadUnguarded(const Counter& counter) {
  return counter.value_;  // BUG: mutex_ not held
}

#elif defined(TSA_VIOLATION_MISSING_RELEASE)

int64_t ReadLeakingLock(Counter& counter) {
  counter.mutex()->Lock();
  return 0;  // BUG: returns with mutex_ still held
}

#elif defined(TSA_VIOLATION_LOCK_ORDER)

void AcquireInverted() {
  order_second.Lock();
  order_first.Lock();  // BUG: inverts the declared ACQUIRED_AFTER order
  order_first.Unlock();
  order_second.Unlock();
}

#elif defined(TSA_VIOLATION_REENTRANT_ACQUIRE)

void AcquireTwice() {
  order_first.Lock();
  order_first.Lock();  // BUG: Mutex is non-reentrant, already held
  order_first.Unlock();
  order_first.Unlock();
}

#elif defined(TSA_VIOLATION_REQUIRES_UNHELD)

void IncrementWithout(Counter& counter) {
  counter.IncrementLocked();  // BUG: REQUIRES(mutex_) but nothing held
}

#else

// Positive control: the same shapes spelled correctly must keep
// compiling (a harness that rejects everything proves nothing).
int64_t IncrementAndRead(Counter& counter) {
  counter.Increment();
  {
    MutexLock lock(counter.mutex());
    counter.IncrementLocked();
  }
  return counter.Read();
}

int ReadInDeclaredOrder() {
  order_first.Lock();
  order_second.Lock();
  const int value = order_guarded;
  order_second.Unlock();
  order_first.Unlock();
  return value;
}

bool TryLockBranches(Counter& counter) {
  if (counter.mutex()->TryLock()) {
    counter.IncrementLocked();
    counter.mutex()->Unlock();
    return true;
  }
  return false;
}

#endif

}  // namespace contender::tsa_fixture

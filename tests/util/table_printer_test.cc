#include "util/table_printer.h"

#include <sstream>

#include <gtest/gtest.h>

namespace contender {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter tp({"Name", "Value"});
  tp.AddRow({"alpha", "1"});
  tp.AddRow({"b", "22222"});
  std::ostringstream os;
  tp.Print(os);
  const std::string out = os.str();
  EXPECT_NE(out.find("Name"), std::string::npos);
  EXPECT_NE(out.find("alpha"), std::string::npos);
  EXPECT_NE(out.find("22222"), std::string::npos);
  // Header underline present.
  EXPECT_NE(out.find("---"), std::string::npos);
  // Four lines: header, rule, two rows.
  int newlines = 0;
  for (char c : out) {
    if (c == '\n') ++newlines;
  }
  EXPECT_EQ(newlines, 4);
}

TEST(TablePrinterTest, ShortRowsArePadded) {
  TablePrinter tp({"A", "B", "C"});
  tp.AddRow({"x"});
  std::ostringstream os;
  tp.Print(os);
  SUCCEED();  // must not crash; cells padded to header width
}

TEST(FormatTest, FormatDouble) {
  EXPECT_EQ(FormatDouble(3.14159, 2), "3.14");
  EXPECT_EQ(FormatDouble(2.0, 0), "2");
  EXPECT_EQ(FormatDouble(-1.5, 1), "-1.5");
}

TEST(FormatTest, FormatPercent) {
  EXPECT_EQ(FormatPercent(0.254, 1), "25.4%");
  EXPECT_EQ(FormatPercent(1.0, 0), "100%");
  EXPECT_EQ(FormatPercent(0.199, 0), "20%");
}

}  // namespace
}  // namespace contender

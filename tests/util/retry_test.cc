#include "util/retry.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"
#include "util/units.h"

namespace contender {
namespace {

RetryOptions FastOptions() {
  RetryOptions options;
  options.max_attempts = 4;
  options.initial_backoff = units::Seconds(0.010);
  options.backoff_multiplier = 2.0;
  options.max_backoff = units::Seconds(1.0);
  options.jitter_fraction = 0.25;
  options.deadline = units::Seconds(10.0);
  return options;
}

TEST(ClockTest, SystemClockAdvancesMonotonically) {
  Clock* clock = Clock::System();
  ASSERT_NE(clock, nullptr);
  const units::Seconds a = clock->Now();
  const units::Seconds b = clock->Now();
  EXPECT_GE(b.value(), a.value());
}

TEST(FakeClockTest, SleepAdvancesAndRecords) {
  FakeClock clock(units::Seconds(100.0));
  EXPECT_DOUBLE_EQ(clock.Now().value(), 100.0);
  clock.Sleep(units::Seconds(2.5));
  clock.Sleep(units::Seconds(0.5));
  EXPECT_DOUBLE_EQ(clock.Now().value(), 103.0);
  ASSERT_EQ(clock.sleeps().size(), 2u);
  EXPECT_DOUBLE_EQ(clock.sleeps()[0].value(), 2.5);
  EXPECT_DOUBLE_EQ(clock.sleeps()[1].value(), 0.5);
}

TEST(FakeClockTest, AdvanceDoesNotRecordASleep) {
  FakeClock clock;
  clock.Advance(units::Seconds(7.0));
  EXPECT_DOUBLE_EQ(clock.Now().value(), 7.0);
  EXPECT_TRUE(clock.sleeps().empty());
}

TEST(RetryablePolicyTest, ClassifiesEveryCode) {
  EXPECT_FALSE(IsRetryableStatusCode(StatusCode::kOk));
  EXPECT_FALSE(IsRetryableStatusCode(StatusCode::kAborted));
  EXPECT_FALSE(IsRetryableStatusCode(StatusCode::kInvalidArgument));
  EXPECT_FALSE(IsRetryableStatusCode(StatusCode::kFailedPrecondition));
  EXPECT_FALSE(IsRetryableStatusCode(StatusCode::kOutOfRange));
  EXPECT_FALSE(IsRetryableStatusCode(StatusCode::kUnimplemented));
  // A hard quota: retries cannot refill it, so blind retries only amplify
  // the overload that exhausted it.
  EXPECT_FALSE(IsRetryableStatusCode(StatusCode::kResourceExhausted));
  EXPECT_TRUE(IsRetryableStatusCode(StatusCode::kNotFound));
  EXPECT_TRUE(IsRetryableStatusCode(StatusCode::kInternal));
  EXPECT_TRUE(IsRetryableStatusCode(StatusCode::kDeadlineExceeded));
  // Transient overload sheds are worth retrying — under a retry budget.
  EXPECT_TRUE(IsRetryableStatusCode(StatusCode::kUnavailable));
}

TEST(BackoffScheduleTest, GrowsExponentiallyWithinJitterBounds) {
  RetryOptions options = FastOptions();
  BackoffSchedule schedule(options, /*seed=*/7);
  double expected_base = options.initial_backoff.value();
  for (int i = 0; i < 6; ++i) {
    const double delay = schedule.Next().value();
    const double capped = std::min(expected_base, options.max_backoff.value());
    EXPECT_GE(delay, capped * (1.0 - options.jitter_fraction)) << i;
    EXPECT_LE(delay, capped * (1.0 + options.jitter_fraction)) << i;
    expected_base *= options.backoff_multiplier;
  }
}

TEST(BackoffScheduleTest, SameSeedSameSequence) {
  RetryOptions options = FastOptions();
  BackoffSchedule a(options, 11);
  BackoffSchedule b(options, 11);
  BackoffSchedule c(options, 12);
  bool any_difference = false;
  for (int i = 0; i < 8; ++i) {
    const units::Seconds da = a.Next();
    EXPECT_DOUBLE_EQ(da.value(), b.Next().value());
    any_difference = any_difference || da.value() != c.Next().value();
  }
  EXPECT_TRUE(any_difference);
}

TEST(RetryWithBackoffTest, FirstSuccessSleepsNothing) {
  FakeClock clock;
  int calls = 0;
  Status s = RetryWithBackoff(FastOptions(), 1, &clock, [&] {
    ++calls;
    return Status::OK();
  });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(clock.sleeps().empty());
}

TEST(RetryWithBackoffTest, TransientFailureRetriesUntilSuccess) {
  FakeClock clock;
  int calls = 0;
  Status s = RetryWithBackoff(FastOptions(), 1, &clock, [&] {
    ++calls;
    if (calls < 3) return Status::Internal("flaky");
    return Status::OK();
  });
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(clock.sleeps().size(), 2u);  // one backoff per retry
}

TEST(RetryWithBackoffTest, ExhaustionReturnsTheLastError) {
  FakeClock clock;
  int calls = 0;
  Status s = RetryWithBackoff(FastOptions(), 1, &clock, [&] {
    ++calls;
    return Status::Internal("always broken #" + std::to_string(calls));
  });
  EXPECT_EQ(s.code(), StatusCode::kInternal);
  EXPECT_EQ(s.message(), "always broken #4");
  EXPECT_EQ(calls, FastOptions().max_attempts);
}

TEST(RetryWithBackoffTest, NonRetryableStopsImmediately) {
  FakeClock clock;
  int calls = 0;
  Status s = RetryWithBackoff(FastOptions(), 1, &clock, [&] {
    ++calls;
    return Status::Aborted("deliberate");
  });
  EXPECT_EQ(s.code(), StatusCode::kAborted);
  EXPECT_EQ(calls, 1);
  EXPECT_TRUE(clock.sleeps().empty());
}

TEST(RetryWithBackoffTest, DeadlineCutsTheBudgetShort) {
  RetryOptions options = FastOptions();
  options.max_attempts = 100;
  options.initial_backoff = units::Seconds(1.0);
  options.max_backoff = units::Seconds(1.0);
  options.jitter_fraction = 0.0;
  options.deadline = units::Seconds(2.5);
  FakeClock clock;
  int calls = 0;
  Status s = RetryWithBackoff(options, 1, &clock, [&] {
    ++calls;
    return Status::Internal("down");
  });
  EXPECT_EQ(s.code(), StatusCode::kDeadlineExceeded);
  // 1s sleeps fit twice in a 2.5s budget: attempts at t=0, 1, 2; the next
  // planned sleep would land past the deadline, so it gives up there.
  EXPECT_EQ(calls, 3);
  // The terminal status still names the underlying error.
  EXPECT_NE(s.message().find("down"), std::string::npos);
}

TEST(RetryWithBackoffTest, JitterSeedMakesSleepSequenceReproducible) {
  auto run = [](uint64_t seed) {
    FakeClock clock;
    int calls = 0;
    const Status ignored = RetryWithBackoff(FastOptions(), seed, &clock, [&] {
      ++calls;
      return Status::Internal("x");
    });
    EXPECT_FALSE(ignored.ok());
    std::vector<double> sleeps;
    for (units::Seconds s : clock.sleeps()) sleeps.push_back(s.value());
    return sleeps;
  };
  EXPECT_EQ(run(5), run(5));
  EXPECT_NE(run(5), run(6));
}

}  // namespace
}  // namespace contender

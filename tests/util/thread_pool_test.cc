#include "util/thread_pool.h"

#include <atomic>
#include <chrono>
#include <future>
#include <mutex>
#include <stdexcept>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace contender {
namespace {

TEST(ThreadPoolTest, SubmitReturnsTaskResults) {
  ThreadPool pool(4);
  std::vector<std::future<int>> futures;
  for (int i = 0; i < 100; ++i) {
    futures.push_back(pool.Submit([i] { return i * i; }));
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(futures[static_cast<size_t>(i)].get(), i * i);
  }
}

TEST(ThreadPoolTest, ClampsThreadCountToAtLeastOne) {
  ThreadPool zero(0);
  EXPECT_EQ(zero.num_threads(), 1);
  ThreadPool negative(-3);
  EXPECT_EQ(negative.num_threads(), 1);
  ThreadPool four(4);
  EXPECT_EQ(four.num_threads(), 4);
  EXPECT_GE(ThreadPool::DefaultThreads(), 1);
}

TEST(ThreadPoolTest, SingleWorkerExecutesInSubmissionOrder) {
  ThreadPool pool(1);
  std::vector<int> order;
  std::mutex mutex;
  std::vector<std::future<void>> futures;
  for (int i = 0; i < 50; ++i) {
    futures.push_back(pool.Submit([i, &order, &mutex] {
      std::lock_guard<std::mutex> lock(mutex);
      order.push_back(i);
    }));
  }
  for (auto& f : futures) f.get();
  ASSERT_EQ(order.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(order[static_cast<size_t>(i)], i);
  }
}

TEST(ThreadPoolTest, ExceptionPropagatesThroughFuture) {
  ThreadPool pool(2);
  auto throwing = pool.Submit(
      []() -> int { throw std::runtime_error("task failed"); });
  auto healthy = pool.Submit([] { return 7; });
  EXPECT_THROW(throwing.get(), std::runtime_error);
  // A throwing task does not poison the pool.
  EXPECT_EQ(healthy.get(), 7);
}

TEST(ThreadPoolTest, DestructorDrainsQueuedTasks) {
  std::atomic<int> completed{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 64; ++i) {
      pool.Submit([&completed] {
        completed.fetch_add(1, std::memory_order_relaxed);
      });
    }
    // Destructor must run every already-submitted task before joining.
  }
  EXPECT_EQ(completed.load(), 64);
}

TEST(ThreadPoolTest, WorkersRunConcurrently) {
  // Two tasks that each wait for the other's side-effect can only finish
  // when two workers run them simultaneously.
  ThreadPool pool(2);
  std::promise<void> first_started, second_started;
  auto a = pool.Submit([&] {
    first_started.set_value();
    second_started.get_future().wait();
  });
  auto b = pool.Submit([&] {
    second_started.set_value();
    first_started.get_future().wait();
  });
  const auto deadline = std::chrono::seconds(10);
  ASSERT_EQ(a.wait_for(deadline), std::future_status::ready);
  ASSERT_EQ(b.wait_for(deadline), std::future_status::ready);
  a.get();
  b.get();
}

TEST(ThreadPoolTest, ConcurrentSubmittersAreSafe) {
  // Hammer the queue from several submitter threads (exercised under TSAN
  // via the `tsan` ctest label).
  ThreadPool pool(4);
  std::atomic<int> completed{0};
  std::vector<std::thread> submitters;
  std::mutex futures_mutex;
  std::vector<std::future<void>> futures;
  for (int s = 0; s < 4; ++s) {
    submitters.emplace_back([&] {
      for (int i = 0; i < 50; ++i) {
        auto f = pool.Submit([&completed] {
          completed.fetch_add(1, std::memory_order_relaxed);
        });
        std::lock_guard<std::mutex> lock(futures_mutex);
        futures.push_back(std::move(f));
      }
    });
  }
  for (std::thread& t : submitters) t.join();
  for (auto& f : futures) f.get();
  EXPECT_EQ(completed.load(), 200);
}

}  // namespace
}  // namespace contender

#include "util/summary_stats.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/random.h"

namespace contender {
namespace {

TEST(SummaryStatsTest, EmptyDefaults) {
  SummaryStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(SummaryStatsTest, SingleValue) {
  SummaryStats s;
  s.Add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(SummaryStatsTest, MatchesDirectComputation) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  SummaryStats s;
  for (double x : xs) s.Add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 denominator: sum of squared devs = 32, n-1 = 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(SummaryStatsTest, MergeEqualsSequential) {
  Rng rng(5);
  SummaryStats all, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Normal(3.0, 2.0);
    all.Add(x);
    (i < 400 ? left : right).Add(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_EQ(left.min(), all.min());
  EXPECT_EQ(left.max(), all.max());
}

TEST(SummaryStatsTest, MergeWithEmpty) {
  SummaryStats a, b;
  a.Add(1.0);
  a.Add(3.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.Merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(BatchStatsTest, MeanAndStdDev) {
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(StdDev({1.0}), 0.0);
  EXPECT_NEAR(StdDev({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}),
              std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(BatchStatsTest, PercentileInterpolates) {
  std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50.0), 2.5);
  EXPECT_DOUBLE_EQ(Median({5.0}), 5.0);
  EXPECT_DOUBLE_EQ(Median({3.0, 1.0, 2.0}), 2.0);
}

TEST(BatchStatsTest, PercentilesMatchSingleRankCalls) {
  const std::vector<double> v = {9.0, 1.0, 5.0, 3.0, 7.0};
  const std::vector<double> ranks = {0.0, 25.0, 50.0, 95.0, 100.0};
  const std::vector<double> batch = Percentiles(v, ranks);
  ASSERT_EQ(batch.size(), ranks.size());
  for (size_t i = 0; i < ranks.size(); ++i) {
    EXPECT_DOUBLE_EQ(batch[i], Percentile(v, ranks[i]));
  }
  EXPECT_TRUE(Percentiles(v, {}).empty());
}

TEST(BatchStatsTest, EmptySampleHasNoQuantiles) {
  // An empty sample yields quiet NaN — a poison value no threshold
  // comparison can silently accept — rather than a fabricated number.
  EXPECT_TRUE(std::isnan(Percentile({}, 50.0)));
  EXPECT_TRUE(std::isnan(Median({})));
  const std::vector<double> batch = Percentiles({}, {0.0, 50.0, 99.0});
  ASSERT_EQ(batch.size(), 3u);
  for (double v : batch) EXPECT_TRUE(std::isnan(v));
}

TEST(BatchStatsTest, SingleElementSampleIsEveryQuantile) {
  for (double p : {0.0, 25.0, 50.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(Percentile({7.5}, p), 7.5);
  }
  const std::vector<double> batch = Percentiles({7.5}, {1.0, 99.0});
  ASSERT_EQ(batch.size(), 2u);
  EXPECT_DOUBLE_EQ(batch[0], 7.5);
  EXPECT_DOUBLE_EQ(batch[1], 7.5);
}

TEST(SampleStatsTest, EmptyAccumulatorQuantilesAreNaN) {
  SampleStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_TRUE(std::isnan(s.percentile(50.0)));
  EXPECT_TRUE(std::isnan(s.p50()));
  EXPECT_TRUE(std::isnan(s.p95()));
  EXPECT_TRUE(std::isnan(s.p99()));
}

TEST(SampleStatsTest, SingleObservationIsEveryQuantile) {
  SampleStats s;
  s.Add(3.25);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 3.25);
  EXPECT_DOUBLE_EQ(s.p50(), 3.25);
  EXPECT_DOUBLE_EQ(s.p99(), 3.25);
  EXPECT_DOUBLE_EQ(s.percentile(100.0), 3.25);
}

TEST(SampleStatsTest, MomentsMatchStreamingAccumulator) {
  Rng rng(11);
  SampleStats sample;
  SummaryStats stream;
  for (int i = 0; i < 500; ++i) {
    const double x = rng.Normal(10.0, 4.0);
    sample.Add(x);
    stream.Add(x);
  }
  EXPECT_EQ(sample.count(), stream.count());
  EXPECT_DOUBLE_EQ(sample.mean(), stream.mean());
  EXPECT_DOUBLE_EQ(sample.stddev(), stream.stddev());
  EXPECT_EQ(sample.min(), stream.min());
  EXPECT_EQ(sample.max(), stream.max());
}

TEST(SampleStatsTest, QuantilesAreExactOverRetainedSamples) {
  SampleStats s;
  EXPECT_TRUE(s.empty());
  // 1..100 in shuffled insertion order: p-th percentile interpolates the
  // sorted sample, so p50 = 50.5 and p99 = 99.01.
  Rng rng(3);
  std::vector<double> values;
  for (int i = 1; i <= 100; ++i) values.push_back(static_cast<double>(i));
  for (size_t i = values.size(); i > 1; --i) {
    std::swap(values[i - 1], values[rng.UniformInt(i)]);
  }
  for (double v : values) s.Add(v);
  EXPECT_FALSE(s.empty());
  EXPECT_DOUBLE_EQ(s.p50(), 50.5);
  EXPECT_DOUBLE_EQ(s.p95(), 95.05);
  EXPECT_DOUBLE_EQ(s.p99(), 99.01);
  EXPECT_DOUBLE_EQ(s.percentile(0.0), 1.0);
  EXPECT_DOUBLE_EQ(s.percentile(100.0), 100.0);
}

TEST(SampleStatsTest, MergeFoldsShardsIntoCombinedDistribution) {
  // Three per-thread shards merged as the bench's thread sweep does.
  SampleStats merged, combined;
  SampleStats shards[3];
  Rng rng(21);
  for (int s = 0; s < 3; ++s) {
    for (int i = 0; i < 40; ++i) {
      const double x = rng.Normal(5.0 + s, 1.5);
      shards[s].Add(x);
      combined.Add(x);
    }
  }
  for (const SampleStats& shard : shards) merged.Merge(shard);
  EXPECT_EQ(merged.count(), combined.count());
  EXPECT_DOUBLE_EQ(merged.p50(), combined.p50());
  EXPECT_DOUBLE_EQ(merged.p99(), combined.p99());
  EXPECT_EQ(merged.min(), combined.min());
  EXPECT_EQ(merged.max(), combined.max());
}

TEST(SampleStatsTest, MergingEmptyShardIsExactNoOp) {
  // A thread that served zero requests contributes an empty shard; the
  // merge must not drag the combined quantiles toward NaN or zero.
  SampleStats merged;
  merged.Add(1.0);
  merged.Add(9.0);
  const double p99_before = merged.p99();
  const double mean_before = merged.mean();

  SampleStats empty_shard;
  merged.Merge(empty_shard);
  EXPECT_EQ(merged.count(), 2u);
  EXPECT_EQ(merged.p99(), p99_before);
  EXPECT_EQ(merged.mean(), mean_before);

  // Merging INTO an empty accumulator adopts the other side wholesale.
  SampleStats adopted;
  adopted.Merge(merged);
  EXPECT_EQ(adopted.count(), 2u);
  EXPECT_EQ(adopted.p99(), p99_before);

  // Only an all-empty merge stays empty — and then the quantiles are the
  // deliberate NaN poison, not a fabricated number.
  SampleStats all_empty;
  all_empty.Merge(empty_shard);
  EXPECT_TRUE(all_empty.empty());
  EXPECT_TRUE(std::isnan(all_empty.p99()));
}

TEST(SampleStatsTest, MergeAfterCachedSortStaysCorrect) {
  SampleStats a, b;
  a.Add(4.0);
  a.Add(1.0);
  EXPECT_DOUBLE_EQ(a.p50(), 2.5);  // forces a's cached sort
  b.Add(10.0);
  a.Merge(b);  // must invalidate the cache
  EXPECT_DOUBLE_EQ(a.percentile(100.0), 10.0);
  EXPECT_EQ(a.count(), 3u);
}

TEST(SampleStatsTest, AddAfterQuantileInvalidatesCachedOrder) {
  SampleStats s;
  s.Add(10.0);
  s.Add(2.0);
  EXPECT_DOUBLE_EQ(s.percentile(100.0), 10.0);  // forces the cached sort
  s.Add(50.0);                                  // must invalidate it
  EXPECT_DOUBLE_EQ(s.percentile(100.0), 50.0);
  EXPECT_DOUBLE_EQ(s.p50(), 10.0);
  EXPECT_EQ(s.count(), 3u);
}

}  // namespace
}  // namespace contender

#include "util/summary_stats.h"

#include <cmath>

#include <gtest/gtest.h>

#include "util/random.h"

namespace contender {
namespace {

TEST(SummaryStatsTest, EmptyDefaults) {
  SummaryStats s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(SummaryStatsTest, SingleValue) {
  SummaryStats s;
  s.Add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
}

TEST(SummaryStatsTest, MatchesDirectComputation) {
  const std::vector<double> xs = {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0};
  SummaryStats s;
  for (double x : xs) s.Add(x);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  // Sample variance with n-1 denominator: sum of squared devs = 32, n-1 = 7.
  EXPECT_NEAR(s.variance(), 32.0 / 7.0, 1e-12);
  EXPECT_EQ(s.min(), 2.0);
  EXPECT_EQ(s.max(), 9.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
}

TEST(SummaryStatsTest, MergeEqualsSequential) {
  Rng rng(5);
  SummaryStats all, left, right;
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.Normal(3.0, 2.0);
    all.Add(x);
    (i < 400 ? left : right).Add(x);
  }
  left.Merge(right);
  EXPECT_EQ(left.count(), all.count());
  EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
  EXPECT_EQ(left.min(), all.min());
  EXPECT_EQ(left.max(), all.max());
}

TEST(SummaryStatsTest, MergeWithEmpty) {
  SummaryStats a, b;
  a.Add(1.0);
  a.Add(3.0);
  a.Merge(b);
  EXPECT_EQ(a.count(), 2u);
  b.Merge(a);
  EXPECT_EQ(b.count(), 2u);
  EXPECT_DOUBLE_EQ(b.mean(), 2.0);
}

TEST(BatchStatsTest, MeanAndStdDev) {
  EXPECT_DOUBLE_EQ(Mean({1.0, 2.0, 3.0}), 2.0);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(StdDev({1.0}), 0.0);
  EXPECT_NEAR(StdDev({2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}),
              std::sqrt(32.0 / 7.0), 1e-12);
}

TEST(BatchStatsTest, PercentileInterpolates) {
  std::vector<double> v = {1.0, 2.0, 3.0, 4.0};
  EXPECT_DOUBLE_EQ(Percentile(v, 0.0), 1.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 100.0), 4.0);
  EXPECT_DOUBLE_EQ(Percentile(v, 50.0), 2.5);
  EXPECT_DOUBLE_EQ(Median({5.0}), 5.0);
  EXPECT_DOUBLE_EQ(Median({3.0, 1.0, 2.0}), 2.0);
}

}  // namespace
}  // namespace contender

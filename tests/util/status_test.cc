#include "util/status.h"

#include <gtest/gtest.h>

#include "util/statusor.h"

namespace contender {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllConstructorsProduceMatchingCodes) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            StatusCode::kResourceExhausted);
  EXPECT_EQ(Status::ResourceExhausted("full").ToString(),
            "ResourceExhausted: full");
  EXPECT_EQ(Status::DeadlineExceeded("x").code(),
            StatusCode::kDeadlineExceeded);
  EXPECT_EQ(Status::Aborted("x").code(), StatusCode::kAborted);
  EXPECT_EQ(Status::Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(Status::DeadlineExceeded("late").ToString(),
            "DeadlineExceeded: late");
  EXPECT_EQ(Status::Aborted("given up").ToString(), "Aborted: given up");
  EXPECT_EQ(Status::Unavailable("shed").ToString(), "Unavailable: shed");
}

TEST(StatusTest, EveryCodeRoundTripsThroughItsName) {
  const StatusCode all[] = {
      StatusCode::kOk,
      StatusCode::kInvalidArgument,
      StatusCode::kNotFound,
      StatusCode::kFailedPrecondition,
      StatusCode::kOutOfRange,
      StatusCode::kInternal,
      StatusCode::kUnimplemented,
      StatusCode::kResourceExhausted,
      StatusCode::kDeadlineExceeded,
      StatusCode::kAborted,
      StatusCode::kUnavailable,
  };
  for (StatusCode code : all) {
    const std::string name = StatusCodeToString(code);
    EXPECT_NE(name, "Unknown") << static_cast<int>(code);
    auto parsed = StatusCodeFromString(name);
    ASSERT_TRUE(parsed.has_value()) << name;
    EXPECT_EQ(*parsed, code) << name;
  }
  EXPECT_FALSE(StatusCodeFromString("NoSuchCode").has_value());
  EXPECT_FALSE(StatusCodeFromString("").has_value());
}

TEST(StatusTest, EqualityComparesCodeAndMessage) {
  EXPECT_EQ(Status::OK(), Status());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

Status FailsWhenNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Propagates(int x) {
  CONTENDER_RETURN_IF_ERROR(FailsWhenNegative(x));
  return Status::OK();
}

TEST(StatusTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(Propagates(1).ok());
  EXPECT_EQ(Propagates(-1).code(), StatusCode::kInvalidArgument);
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 42);
  EXPECT_EQ(v.value(), 42);
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("missing");
  EXPECT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOnlyValue) {
  StatusOr<std::unique_ptr<int>> v = std::make_unique<int>(7);
  ASSERT_TRUE(v.ok());
  std::unique_ptr<int> out = std::move(v).value();
  EXPECT_EQ(*out, 7);
}

StatusOr<int> HalfOf(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UsesAssignOrReturn(int x, int* out) {
  CONTENDER_ASSIGN_OR_RETURN(*out, HalfOf(x));
  return Status::OK();
}

TEST(StatusOrTest, AssignOrReturnMacro) {
  int out = 0;
  EXPECT_TRUE(UsesAssignOrReturn(8, &out).ok());
  EXPECT_EQ(out, 4);
  EXPECT_FALSE(UsesAssignOrReturn(7, &out).ok());
}

}  // namespace
}  // namespace contender

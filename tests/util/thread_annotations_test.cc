// Positive battery for the annotated synchronization wrappers
// (util/mutex.h): Mutex/MutexLock exclusion, Await's no-explicit-signal
// wakeup contract (Unlock publishes, waiters wake, multiple waiters,
// already-true predicates), CondVar notify/timeout semantics, and a
// behavioral-parity scenario proving the wrappers compute exactly what
// the raw std primitives compute. Runs under the TSan `scaling`/`chaos`
// CI batteries; the negative half (what must NOT compile) lives in
// tsa_violations.cc.

#include "util/mutex.h"

#include <gtest/gtest.h>

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "util/thread_pool.h"

namespace contender {
namespace {

TEST(MutexTest, ExclusionAcrossThreads) {
  Mutex mutex;
  long counter = 0;
  constexpr int kThreads = 8;
  constexpr int kPerThread = 10000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < kPerThread; ++i) {
        MutexLock lock(&mutex);
        ++counter;
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  MutexLock lock(&mutex);
  EXPECT_EQ(counter, static_cast<long>(kThreads) * kPerThread);
}

TEST(MutexTest, TryLockReportsContention) {
  Mutex mutex;
  ASSERT_TRUE(mutex.TryLock());
  // Non-reentrant: a second claim must fail — probe from another thread
  // (same-thread re-try is the deadlock the analysis exists to reject).
  bool second = true;
  std::thread prober([&] { second = mutex.TryLock(); });
  prober.join();
  EXPECT_FALSE(second);
  mutex.Unlock();
  ASSERT_TRUE(mutex.TryLock());
  mutex.AssertHeld();
  mutex.Unlock();
}

TEST(MutexTest, AwaitReturnsImmediatelyWhenPredicateAlreadyTrue) {
  Mutex mutex;
  bool ready = true;
  MutexLock lock(&mutex);
  mutex.Await([&] { return ready; });
  EXPECT_TRUE(ready);
}

TEST(MutexTest, AwaitWakesOnUnlockWithNoExplicitSignal) {
  Mutex mutex;
  int count = 0;
  constexpr int kTarget = 4;
  // The consumer sleeps until the producers' plain "mutate, unlock"
  // publishes the target value — nobody ever calls a notify function.
  std::thread consumer([&] {
    MutexLock lock(&mutex);
    mutex.Await([&] { return count >= kTarget; });
    EXPECT_GE(count, kTarget);
  });
  std::vector<std::thread> producers;
  producers.reserve(kTarget);
  for (int i = 0; i < kTarget; ++i) {
    producers.emplace_back([&] {
      MutexLock lock(&mutex);
      ++count;
    });
  }
  for (std::thread& producer : producers) producer.join();
  consumer.join();
}

TEST(MutexTest, AwaitWakesEveryWaiter) {
  Mutex mutex;
  bool released = false;
  int woke = 0;
  constexpr int kWaiters = 6;
  std::vector<std::thread> waiters;
  waiters.reserve(kWaiters);
  for (int i = 0; i < kWaiters; ++i) {
    waiters.emplace_back([&] {
      MutexLock lock(&mutex);
      mutex.Await([&] { return released; });
      ++woke;
    });
  }
  {
    MutexLock lock(&mutex);
    released = true;
  }
  for (std::thread& waiter : waiters) waiter.join();
  MutexLock lock(&mutex);
  EXPECT_EQ(woke, kWaiters);
}

TEST(MutexTest, AwaitChainsThroughIntermediateStates) {
  // Two threads hand a token back and forth via Await alone: each step's
  // wake comes from the other side's Unlock, so a missed wakeup anywhere
  // deadlocks (and fails the test by hanging, caught by ctest timeout).
  Mutex mutex;
  int token = 0;
  constexpr int kRounds = 100;
  std::thread evens([&] {
    MutexLock lock(&mutex);
    for (int i = 0; i < kRounds; i += 2) {
      mutex.Await([&] { return token == i; });
      ++token;
    }
  });
  std::thread odds([&] {
    MutexLock lock(&mutex);
    for (int i = 1; i < kRounds; i += 2) {
      mutex.Await([&] { return token == i; });
      ++token;
    }
  });
  evens.join();
  odds.join();
  MutexLock lock(&mutex);
  EXPECT_EQ(token, kRounds);
}

TEST(CondVarTest, NotifyWakesPredicateWait) {
  Mutex mutex;
  CondVar cv;
  bool ready = false;
  std::thread waiter([&] {
    MutexLock lock(&mutex);
    cv.Wait(&mutex, [&] { return ready; });
    EXPECT_TRUE(ready);
  });
  {
    MutexLock lock(&mutex);
    ready = true;
  }
  cv.NotifyAll();
  waiter.join();
}

TEST(CondVarTest, WaitForTimesOutWithoutNotify) {
  Mutex mutex;
  CondVar cv;
  const bool notified =
      [&]() {
        MutexLock lock(&mutex);
        return cv.WaitFor(&mutex, std::chrono::milliseconds(5));
      }();
  EXPECT_FALSE(notified);
}

TEST(CondVarTest, WaitForPredicateReturnsFinalPredicateValue) {
  Mutex mutex;
  CondVar cv;
  bool ready = false;
  std::thread notifier([&] {
    {
      MutexLock lock(&mutex);
      ready = true;
    }
    cv.NotifyOne();
  });
  bool result = false;
  {
    MutexLock lock(&mutex);
    result = cv.WaitFor(&mutex, std::chrono::seconds(30),
                        [&] { return ready; });
  }
  notifier.join();
  EXPECT_TRUE(result);
}

// The parity scenario: a bounded handoff pipeline (producers push tokens,
// consumers pop, capacity forces both sides to block) executed once over
// the annotated wrappers and once over the raw std primitives. The
// deliverable of each run is the consumed multiset's sum and count —
// deterministic regardless of interleaving — and both implementations
// must produce identical results, pinning "the wrappers change WHO checks
// the locking, never WHAT the locking computes".
template <typename Queue>
long RunHandoffPipeline() {
  Queue queue;
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  long consumed_sum = 0;
  int consumed_count = 0;
  std::thread consumer([&] {
    for (int i = 0; i < kProducers * kPerProducer; ++i) {
      consumed_sum += queue.Pop();
      ++consumed_count;
    }
  });
  std::vector<std::thread> producers;
  producers.reserve(kProducers);
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&queue, p] {
      for (int i = 0; i < kPerProducer; ++i) queue.Push(p * kPerProducer + i);
    });
  }
  for (std::thread& producer : producers) producer.join();
  consumer.join();
  EXPECT_EQ(consumed_count, kProducers * kPerProducer);
  return consumed_sum;
}

constexpr size_t kHandoffCapacity = 8;

class WrappedQueue {
 public:
  void Push(int value) {
    MutexLock lock(&mutex_);
    // Await predicates run under the lock, invisibly to the analysis
    // (the same budgeted suppression the src/ call sites carry).
    mutex_.Await([this]() NO_THREAD_SAFETY_ANALYSIS {
      return items_.size() < kHandoffCapacity;
    });
    items_.push_back(value);
  }
  int Pop() {
    MutexLock lock(&mutex_);
    mutex_.Await([this]() NO_THREAD_SAFETY_ANALYSIS {
      return !items_.empty();
    });
    const int value = items_.front();
    items_.erase(items_.begin());
    return value;
  }

 private:
  Mutex mutex_;
  std::vector<int> items_ GUARDED_BY(mutex_);
};

class RawQueue {
 public:
  void Push(int value) {
    std::unique_lock<std::mutex> lock(mutex_);
    space_.wait(lock, [this] { return items_.size() < kHandoffCapacity; });
    items_.push_back(value);
    lock.unlock();
    data_.notify_all();
  }
  int Pop() {
    std::unique_lock<std::mutex> lock(mutex_);
    data_.wait(lock, [this] { return !items_.empty(); });
    const int value = items_.front();
    items_.erase(items_.begin());
    lock.unlock();
    space_.notify_all();
    return value;
  }

 private:
  std::mutex mutex_;
  std::condition_variable space_;
  std::condition_variable data_;
  std::vector<int> items_;
};

TEST(ParityTest, WrappersComputeExactlyWhatRawPrimitivesCompute) {
  const long wrapped = RunHandoffPipeline<WrappedQueue>();
  const long raw = RunHandoffPipeline<RawQueue>();
  EXPECT_EQ(wrapped, raw);
  // Both equal the closed-form sum 0 + 1 + ... + (N-1): every produced
  // token was consumed exactly once in each implementation.
  constexpr long kTokens = 4 * 500;
  EXPECT_EQ(wrapped, kTokens * (kTokens - 1) / 2);
}

TEST(ParityTest, ThreadPoolDrainsEveryTaskThroughAwait) {
  // The pool's worker wakeup now rides Mutex::Await with no explicit
  // signal anywhere; a missed wakeup strands tasks (hangs the join) or
  // drops them (breaks the count).
  std::atomic<int> ran{0};
  {
    ThreadPool pool(4);
    for (int i = 0; i < 1000; ++i) {
      pool.Submit([&ran] { ran.fetch_add(1, std::memory_order_relaxed); });
    }
  }  // destructor drains the queue and joins
  EXPECT_EQ(ran.load(), 1000);
}

}  // namespace
}  // namespace contender

#include "util/random.h"

#include <algorithm>
#include <cmath>
#include <set>

#include <gtest/gtest.h>

namespace contender {
namespace {

TEST(RngTest, DeterministicForFixedSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, Uniform01InRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const double u = rng.Uniform01();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformMeanApproximatelyCentered) {
  Rng rng(11);
  double sum = 0.0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) sum += rng.Uniform(2.0, 4.0);
  EXPECT_NEAR(sum / n, 3.0, 0.02);
}

TEST(RngTest, UniformIntCoversRangeWithoutBias) {
  Rng rng(13);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.UniformInt(uint64_t{10})];
  for (int c : counts) {
    EXPECT_NEAR(c, n / 10, n / 100);
  }
}

TEST(RngTest, UniformIntInclusiveBounds) {
  Rng rng(17);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const int64_t v = rng.UniformInt(int64_t{-2}, int64_t{2});
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NormalMoments) {
  Rng rng(19);
  const int n = 200000;
  double sum = 0.0, sum2 = 0.0;
  for (int i = 0; i < n; ++i) {
    const double x = rng.Normal();
    sum += x;
    sum2 += x * x;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sum2 / n, 1.0, 0.03);
}

TEST(RngTest, NormalScaled) {
  Rng rng(23);
  const int n = 100000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) sum += rng.Normal(10.0, 2.0);
  EXPECT_NEAR(sum / n, 10.0, 0.05);
}

TEST(RngTest, LogNormalUnitMeanWhenCompensated) {
  // exp(N(-sigma^2/2, sigma)) has mean 1.
  Rng rng(29);
  const double sigma = 0.3;
  const int n = 200000;
  double sum = 0.0;
  for (int i = 0; i < n; ++i) {
    sum += rng.LogNormal(-0.5 * sigma * sigma, sigma);
  }
  EXPECT_NEAR(sum / n, 1.0, 0.01);
}

TEST(RngTest, PermutationIsPermutation) {
  Rng rng(31);
  for (int n : {1, 2, 5, 25, 100}) {
    std::vector<int> p = rng.Permutation(n);
    ASSERT_EQ(p.size(), static_cast<size_t>(n));
    std::vector<int> sorted = p;
    std::sort(sorted.begin(), sorted.end());
    for (int i = 0; i < n; ++i) EXPECT_EQ(sorted[static_cast<size_t>(i)], i);
  }
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(37);
  std::vector<int> v = {1, 2, 3, 4, 5, 6};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ForkIsIndependentButDeterministic) {
  Rng a(41), b(41);
  Rng fa = a.Fork();
  Rng fb = b.Fork();
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fa.Next(), fb.Next());
  // The fork stream differs from the parent stream.
  Rng c(41);
  Rng fc = c.Fork();
  bool differs = false;
  for (int i = 0; i < 10; ++i) {
    if (fc.Next() != c.Next()) differs = true;
  }
  EXPECT_TRUE(differs);
}

}  // namespace
}  // namespace contender

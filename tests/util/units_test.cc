// Unit tests for the dimensional types, including a negative-compile
// harness: the arithmetic each dimension must NOT admit is asserted
// uninstantiable via expression-detection traits, so a regression that
// reintroduces (say) Seconds + Bytes fails this test at compile time.

#include "util/units.h"

#include <limits>
#include <type_traits>
#include <utility>

#include <gtest/gtest.h>

#include "core/continuum.h"
#include "sim/spoiler.h"

namespace contender::units {
namespace {

constexpr double kNaN = std::numeric_limits<double>::quiet_NaN();

// ---------------------------------------------------------------------------
// Fraction: checked construction.

TEST(FractionTest, MakeAcceptsClosedUnitInterval) {
  for (double v : {0.0, 0.25, 0.5, 1.0}) {
    auto f = Fraction::Make(v);
    ASSERT_TRUE(f.ok()) << v;
    EXPECT_DOUBLE_EQ(f->value(), v);
  }
}

TEST(FractionTest, MakeRejectsNaNWithInvalidArgument) {
  auto f = Fraction::Make(kNaN);
  ASSERT_FALSE(f.ok());
  EXPECT_EQ(f.status().code(), StatusCode::kInvalidArgument);
}

TEST(FractionTest, MakeRejectsOutOfRangeWithOutOfRange) {
  for (double v : {-0.001, 1.001, -1e9, 1e9}) {
    auto f = Fraction::Make(v);
    ASSERT_FALSE(f.ok()) << v;
    EXPECT_EQ(f.status().code(), StatusCode::kOutOfRange) << v;
  }
}

TEST(FractionTest, ClampSaturatesAndMapsNaNToZero) {
  EXPECT_DOUBLE_EQ(Fraction::Clamp(-3.0).value(), 0.0);
  EXPECT_DOUBLE_EQ(Fraction::Clamp(0.7).value(), 0.7);
  EXPECT_DOUBLE_EQ(Fraction::Clamp(42.0).value(), 1.0);
  EXPECT_DOUBLE_EQ(Fraction::Clamp(kNaN).value(), 0.0);
}

TEST(FractionTest, ComplementIsOneMinusValue) {
  EXPECT_DOUBLE_EQ(Fraction::Clamp(0.3).complement().value(), 0.7);
}

// ---------------------------------------------------------------------------
// Arithmetic closure: each dimension supports exactly its legal algebra.

TEST(UnitsTest, SecondsFormAnAdditiveGroupUnderScaling) {
  const Seconds a(10.0), b(4.0);
  EXPECT_DOUBLE_EQ((a + b).value(), 14.0);
  EXPECT_DOUBLE_EQ((a - b).value(), 6.0);
  EXPECT_DOUBLE_EQ((-a).value(), -10.0);
  EXPECT_DOUBLE_EQ((a * 2.0).value(), 20.0);
  EXPECT_DOUBLE_EQ((2.0 * a).value(), 20.0);
  EXPECT_DOUBLE_EQ((a / 2.0).value(), 5.0);
  Seconds c = a;
  c += b;
  c -= Seconds(1.0);
  EXPECT_DOUBLE_EQ(c.value(), 13.0);
}

TEST(UnitsTest, DurationRatioIsDimensionless) {
  static_assert(std::is_same_v<decltype(Seconds(8.0) / Seconds(2.0)), double>);
  EXPECT_DOUBLE_EQ(Seconds(8.0) / Seconds(2.0), 4.0);
}

TEST(UnitsTest, FractionOfDurationKeepsDimension) {
  static_assert(
      std::is_same_v<decltype(Fraction::Clamp(0.5) * Seconds(10.0)), Seconds>);
  EXPECT_DOUBLE_EQ((Fraction::Clamp(0.5) * Seconds(10.0)).value(), 5.0);
  EXPECT_DOUBLE_EQ((Seconds(10.0) * Fraction::Clamp(0.5)).value(), 5.0);
  EXPECT_DOUBLE_EQ((Fraction::Clamp(0.25) * Bytes(400.0)).value(), 100.0);
}

TEST(UnitsTest, PagesTimesPageSizeIsAVolume) {
  static_assert(std::is_same_v<decltype(Pages(3.0) * Bytes(4096.0)), Bytes>);
  EXPECT_DOUBLE_EQ((Pages(3.0) * Bytes(4096.0)).value(), 3.0 * 4096.0);
  EXPECT_DOUBLE_EQ((Bytes(4096.0) * Pages(0.5)).value(), 2048.0);
}

TEST(UnitsTest, ComparisonsAreOrderedWithinOneDimension) {
  EXPECT_LT(Seconds(1.0), Seconds(2.0));
  EXPECT_GT(Bytes(5.0), Bytes(4.0));
  EXPECT_EQ(Mpl(3), Mpl(3));
  EXPECT_LT(Cqi(0.2), Cqi(0.8));
}

TEST(UnitsTest, LatencyRangeExposesValidatedBounds) {
  auto range = LatencyRange::Make(Seconds(100.0), Seconds(300.0));
  ASSERT_TRUE(range.ok());
  EXPECT_DOUBLE_EQ(range->min().value(), 100.0);
  EXPECT_DOUBLE_EQ(range->max().value(), 300.0);
  EXPECT_DOUBLE_EQ(range->width().value(), 200.0);
}

// ---------------------------------------------------------------------------
// Negative-compile harness. Detection idiom: valid<T>(0) resolves to the
// decltype overload (true) only when the probed expression instantiates.
// These are the exact bugs the layer exists to reject — if one of these
// static_asserts fires, an illegal dimension mix has become expressible.

template <typename A, typename B, typename = void>
struct CanAdd : std::false_type {};
template <typename A, typename B>
struct CanAdd<A, B,
              std::void_t<decltype(std::declval<A>() + std::declval<B>())>>
    : std::true_type {};

template <typename A, typename B, typename = void>
struct CanMultiply : std::false_type {};
template <typename A, typename B>
struct CanMultiply<A, B,
                   std::void_t<decltype(std::declval<A>() * std::declval<B>())>>
    : std::true_type {};

template <typename A, typename B, typename = void>
struct CanCompare : std::false_type {};
template <typename A, typename B>
struct CanCompare<A, B,
                  std::void_t<decltype(std::declval<A>() < std::declval<B>())>>
    : std::true_type {};

// Cross-dimension sums do not exist.
static_assert(!CanAdd<Seconds, Bytes>::value);
static_assert(!CanAdd<Seconds, Pages>::value);
static_assert(!CanAdd<Bytes, Pages>::value);
static_assert(!CanAdd<Seconds, double>::value);
static_assert(!CanAdd<Cqi, ContinuumPoint>::value);
static_assert(!CanAdd<Fraction, Fraction>::value);  // sums can exceed 1

// Dimension-squaring products do not exist.
static_assert(!CanMultiply<Seconds, Seconds>::value);
static_assert(!CanMultiply<Bytes, Bytes>::value);
static_assert(!CanMultiply<Seconds, Bytes>::value);

// Cross-dimension comparisons do not exist.
static_assert(!CanCompare<Seconds, Bytes>::value);
static_assert(!CanCompare<Seconds, double>::value);
static_assert(!CanCompare<Cqi, ContinuumPoint>::value);

// No implicit lift from raw scalars (the acceptance-critical property: a
// bare double cannot slide into a dimensioned parameter slot).
static_assert(!std::is_convertible_v<double, Seconds>);
static_assert(!std::is_convertible_v<double, Fraction>);
static_assert(!std::is_convertible_v<int, Mpl>);

// Fraction admits no unchecked public construction from a double.
static_assert(!std::is_constructible_v<Fraction, double>);

// LatencyRange is only buildable through its validating factory.
static_assert(!std::is_constructible_v<LatencyRange, Seconds, Seconds>);
static_assert(!std::is_default_constructible_v<LatencyRange>);

// The historical bug shapes the refactor retires, asserted dead:
// ContinuumPoint(l_max, l_min, latency) — three positionally-swappable
// doubles — no longer exists in any spelling.
static_assert(!std::is_invocable_v<decltype(&contender::ContinuumPoint),
                                   double, double, double>);
static_assert(!std::is_invocable_v<decltype(&contender::ContinuumPoint),
                                   Seconds, Seconds, Seconds>);
// The only legal shape: a latency against a validated range.
static_assert(std::is_invocable_v<decltype(&contender::ContinuumPoint),
                                  Seconds, const LatencyRange&>);
// MakeSpoiler no longer accepts a bare int for its MPL.
static_assert(!std::is_invocable_v<decltype(&sim::MakeSpoiler),
                                   const sim::SimConfig&, int>);
static_assert(std::is_invocable_v<decltype(&sim::MakeSpoiler),
                                  const sim::SimConfig&, Mpl>);

// Zero-overhead layout (duplicated from the header on purpose: the test
// still guards the property if the header's own asserts are deleted).
static_assert(std::is_trivially_copyable_v<Seconds>);
static_assert(sizeof(Seconds) == sizeof(double));
static_assert(sizeof(Fraction) == sizeof(double));
static_assert(sizeof(Mpl) == sizeof(int));
static_assert(sizeof(LatencyRange) == 2 * sizeof(double));

}  // namespace
}  // namespace contender::units

#include "util/failpoint.h"

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

namespace contender {
namespace {

// Each test arms its own uniquely named sites and disarms them on exit, so
// tests cannot leak armed state into each other (or into other suites).
class FailPointTest : public ::testing::Test {
 protected:
  void TearDown() override { FailPointRegistry::Global().DisarmAll(); }

  FailPointRegistry& registry() { return FailPointRegistry::Global(); }
};

TEST_F(FailPointTest, DisarmedNeverFires) {
  FailPoint& site = registry().Site("test.fp.disarmed");
  EXPECT_EQ(site.mode(), FailPointMode::kOff);
  for (int i = 0; i < 1000; ++i) EXPECT_FALSE(site.ShouldFail());
  EXPECT_EQ(site.fires(), 0u);
}

TEST_F(FailPointTest, SiteReturnsSameInstanceAndRegistersOnce) {
  FailPoint& a = registry().Site("test.fp.identity");
  FailPoint& b = registry().Site("test.fp.identity");
  EXPECT_EQ(&a, &b);
  EXPECT_EQ(a.name(), "test.fp.identity");
}

TEST_F(FailPointTest, OnceFiresExactlyOnceThenDisarms) {
  FailPoint& site = registry().Site("test.fp.once");
  registry().ArmOnce("test.fp.once");
  EXPECT_EQ(site.mode(), FailPointMode::kOnce);
  EXPECT_TRUE(site.ShouldFail());
  EXPECT_EQ(site.mode(), FailPointMode::kOff);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(site.ShouldFail());
  EXPECT_EQ(site.fires(), 1u);
}

TEST_F(FailPointTest, NthHitFiresOnExactlyTheNthEvaluation) {
  FailPoint& site = registry().Site("test.fp.nth");
  registry().ArmNthHit("test.fp.nth", 5);
  for (int i = 1; i <= 4; ++i) EXPECT_FALSE(site.ShouldFail()) << i;
  EXPECT_TRUE(site.ShouldFail());
  // Self-disarmed after firing.
  EXPECT_EQ(site.mode(), FailPointMode::kOff);
  EXPECT_FALSE(site.ShouldFail());
  EXPECT_EQ(site.fires(), 1u);
}

TEST_F(FailPointTest, ProbabilityZeroAndOneAreExact) {
  FailPoint& site = registry().Site("test.fp.p");
  registry().ArmProbability("test.fp.p", 0.0);
  for (int i = 0; i < 200; ++i) EXPECT_FALSE(site.ShouldFail());
  registry().ArmProbability("test.fp.p", 1.0);
  for (int i = 0; i < 200; ++i) EXPECT_TRUE(site.ShouldFail());
}

TEST_F(FailPointTest, ProbabilityRateIsRoughlyRespected) {
  FailPoint& site = registry().Site("test.fp.rate");
  registry().SetRootSeed(42);
  registry().ArmProbability("test.fp.rate", 0.3);
  int fired = 0;
  const int kTrials = 10000;
  for (int i = 0; i < kTrials; ++i) fired += site.ShouldFail() ? 1 : 0;
  EXPECT_GT(fired, kTrials * 0.25);
  EXPECT_LT(fired, kTrials * 0.35);
  EXPECT_EQ(site.hits(), static_cast<uint64_t>(kTrials));
  EXPECT_EQ(site.fires(), static_cast<uint64_t>(fired));
}

TEST_F(FailPointTest, SameRootSeedReproducesTheFiredSubsetBitExactly) {
  FailPoint& site = registry().Site("test.fp.repro");
  auto run = [&](uint64_t seed) {
    registry().SetRootSeed(seed);
    registry().ArmProbability("test.fp.repro", 0.2);
    std::vector<bool> fired;
    fired.reserve(500);
    for (int i = 0; i < 500; ++i) fired.push_back(site.ShouldFail());
    registry().Disarm("test.fp.repro");
    return fired;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));
}

TEST_F(FailPointTest, RearmingResetsTheEvaluationCount) {
  FailPoint& site = registry().Site("test.fp.rearm");
  registry().SetRootSeed(99);
  registry().ArmProbability("test.fp.rearm", 0.5);
  std::vector<bool> first;
  for (int i = 0; i < 100; ++i) first.push_back(site.ShouldFail());
  // Re-arming restarts the per-site counter, so the sequence repeats.
  registry().ArmProbability("test.fp.rearm", 0.5);
  std::vector<bool> second;
  for (int i = 0; i < 100; ++i) second.push_back(site.ShouldFail());
  EXPECT_EQ(first, second);
}

TEST_F(FailPointTest, DistinctSitesDeriveDistinctSequencesFromOneRoot) {
  FailPoint& a = registry().Site("test.fp.derive.a");
  FailPoint& b = registry().Site("test.fp.derive.b");
  registry().SetRootSeed(1234);
  registry().ArmProbability("test.fp.derive.a", 0.5);
  registry().ArmProbability("test.fp.derive.b", 0.5);
  std::vector<bool> fa, fb;
  for (int i = 0; i < 200; ++i) {
    fa.push_back(a.ShouldFail());
    fb.push_back(b.ShouldFail());
  }
  EXPECT_NE(fa, fb);
}

TEST_F(FailPointTest, SiteNamesFiltersByPrefixAndIsSorted) {
  registry().Site("test.prefix.b");
  registry().Site("test.prefix.a");
  const std::vector<std::string> names =
      registry().SiteNames("test.prefix.");
  ASSERT_EQ(names.size(), 2u);
  EXPECT_EQ(names[0], "test.prefix.a");
  EXPECT_EQ(names[1], "test.prefix.b");
}

TEST_F(FailPointTest, DisarmAllSilencesEverything) {
  FailPoint& site = registry().Site("test.fp.disarmall");
  registry().ArmProbability("test.fp.disarmall", 1.0);
  EXPECT_TRUE(site.ShouldFail());
  registry().DisarmAll();
  EXPECT_FALSE(site.ShouldFail());
}

}  // namespace
}  // namespace contender

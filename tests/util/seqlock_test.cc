// Battery for the TSAN-clean seqlock (util/seqlock.h): single-threaded
// round-trips, the multi-word torn-read stress (readers must never
// observe a payload that violates the writer's invariant), the write-side
// reentrancy death, the detection-idiom negative-compile check that a
// non-trivially-copyable payload cannot instantiate the template, and the
// FakeClock-driven bounded-spin timeout of ReadWithBudget.

#include "util/seqlock.h"

#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <thread>
#include <type_traits>
#include <vector>

#include "util/retry.h"

namespace contender {
namespace {

// A multi-word payload with a checkable invariant: c must always equal
// a + b. A torn read (half old value, half new) breaks it.
struct Triple {
  uint64_t a = 0;
  uint64_t b = 0;
  uint64_t c = 0;
};

Triple MakeTriple(uint64_t round) {
  Triple t;
  t.a = round;
  t.b = round * 3 + 1;
  t.c = t.a + t.b;
  return t;
}

TEST(SeqlockTest, RoundTripsSingleThreaded) {
  Seqlock<Triple> lock(MakeTriple(7));
  Triple got;
  ASSERT_TRUE(lock.TryReadOnce(&got));
  EXPECT_EQ(got.a, 7u);
  EXPECT_EQ(got.c, got.a + got.b);

  lock.Write(MakeTriple(41));
  ASSERT_TRUE(lock.TryReadOnce(&got));
  EXPECT_EQ(got.a, 41u);
  EXPECT_EQ(got.c, got.a + got.b);
}

TEST(SeqlockTest, SequenceAdvancesByTwoPerWriteAndStaysEven) {
  Seqlock<uint64_t> lock(0);
  const uint64_t start = lock.sequence();
  EXPECT_EQ(start % 2, 0u);
  lock.Write(1);
  lock.Write(2);
  EXPECT_EQ(lock.sequence(), start + 4);
}

TEST(SeqlockTest, ReadFailsWhileWriteSectionIsOpen) {
  Seqlock<uint64_t> lock(5);
  uint64_t got = 0;
  {
    auto guard = lock.StartWrite();
    guard.Set(6);
    // Odd sequence: every probe must refuse rather than hand out a value
    // from inside the section.
    EXPECT_FALSE(lock.TryReadOnce(&got));
    EXPECT_FALSE(lock.TryRead(&got, 32));
  }
  ASSERT_TRUE(lock.TryReadOnce(&got));
  EXPECT_EQ(got, 6u);
}

// The torn-read stress: readers hammer TryRead while the writer replaces
// the triple as fast as it can. Every successful read must satisfy the
// invariant and carry a round number the writer actually published.
TEST(SeqlockTest, ReadersNeverObserveTornTriples) {
  Seqlock<Triple> lock(MakeTriple(0));
  constexpr int kReaders = 4;
  // The writer runs until the readers collectively report this many
  // successful reads (progress-coupled, so the test is meaningful on any
  // core count — a fixed round count can finish before a reader is ever
  // scheduled on a small machine), capped to bound the runtime.
  constexpr uint64_t kMinReads = 5000;
  constexpr uint64_t kMaxRounds = 20000000;
  std::atomic<bool> stop{false};
  std::atomic<uint64_t> torn{0};
  std::atomic<uint64_t> reads{0};

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      Triple got;
      while (!stop.load(std::memory_order_acquire)) {
        if (lock.TryReadOnce(&got)) {
          reads.fetch_add(1, std::memory_order_relaxed);
          if (got.c != got.a + got.b || got.a > kMaxRounds ||
              got.b != got.a * 3 + 1) {
            torn.fetch_add(1, std::memory_order_relaxed);
          }
        }
      }
    });
  }
  uint64_t round = 0;
  while (reads.load(std::memory_order_relaxed) < kMinReads &&
         round < kMaxRounds) {
    lock.Write(MakeTriple(++round));
    // Give starved readers a slice between bursts of writes.
    if ((round & 255) == 0) std::this_thread::yield();
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  EXPECT_EQ(torn.load(), 0u);
  EXPECT_GE(reads.load(), kMinReads);
  Triple final_value;
  ASSERT_TRUE(lock.TryReadOnce(&final_value));
  EXPECT_EQ(final_value.a, round);
}

TEST(SeqlockDeathTest, ReentrantWriteSectionDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  Seqlock<uint64_t> lock(0);
  EXPECT_DEATH(
      {
        auto outer = lock.StartWrite();
        auto inner = lock.StartWrite();  // second entry: protocol violation
      },
      "write section entered while already held");
}

// Negative-compile check via the detection idiom (the same harness the
// units tests use): Seqlock's enable_if guard makes the template
// uninstantiable for non-trivially-copyable payloads, so the "is this
// type well-formed" probe must come back false — a std::string payload
// is rejected at compile time, not torn at runtime.
template <typename T, typename = void>
struct SeqlockAdmits : std::false_type {};
template <typename T>
struct SeqlockAdmits<T, std::void_t<decltype(sizeof(Seqlock<T>))>>
    : std::true_type {};

static_assert(SeqlockAdmits<uint64_t>::value,
              "trivially-copyable payloads must be admitted");
static_assert(SeqlockAdmits<Triple>::value,
              "multi-word trivially-copyable payloads must be admitted");
static_assert(!SeqlockAdmits<std::string>::value,
              "non-trivially-copyable payloads must be rejected");
static_assert(!SeqlockAdmits<std::vector<int>>::value,
              "non-trivially-copyable payloads must be rejected");

TEST(SeqlockTest, ReadWithBudgetTimesOutDeterministically) {
  Seqlock<uint64_t> lock(9);
  FakeClock clock;
  uint64_t got = 0;

  // Quiescent lock: succeeds on the first probe round, no sleeps.
  ASSERT_TRUE(lock.ReadWithBudget(&got, &clock, units::Seconds(0.01)).ok());
  EXPECT_EQ(got, 9u);
  EXPECT_TRUE(clock.sleeps().empty());

  // Writer holds the section open: every probe round fails, the clock
  // advances by exactly one probe_pause per round, and the budget bounds
  // the spin — DeadlineExceeded, deterministically and instantly.
  auto guard = lock.StartWrite();
  const Status status = lock.ReadWithBudget(
      &got, &clock, units::Seconds(0.001), /*spins_per_probe=*/4,
      /*probe_pause=*/units::Seconds(1e-4));
  EXPECT_EQ(status.code(), StatusCode::kDeadlineExceeded);
  // 10 pauses of 1e-4 reach the 1e-3 budget exactly.
  EXPECT_EQ(clock.sleeps().size(), 10u);
}

}  // namespace
}  // namespace contender

// Battery for epoch-based reclamation (util/epoch.h): retire/reclaim
// lifecycle, reader pinning, slot exhaustion degrading to !engaged(),
// nested guards, the destroy-with-live-reader death, and a concurrent
// readers-vs-retirer stress proving nothing is ever freed under a reader.

#include "util/epoch.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

namespace contender {
namespace {

// Tracks destruction so tests can assert exactly when reclamation fires.
struct Tracked {
  explicit Tracked(std::atomic<int>* counter) : counter(counter) {}
  ~Tracked() { counter->fetch_add(1, std::memory_order_relaxed); }
  std::atomic<int>* counter;
};

std::shared_ptr<const void> MakeTracked(std::atomic<int>* counter) {
  return std::static_pointer_cast<const void>(
      std::make_shared<Tracked>(counter));
}

TEST(EpochDomainTest, RetireWithoutReadersReclaimsImmediately) {
  EpochDomain domain;
  std::atomic<int> destroyed{0};
  domain.Retire(MakeTracked(&destroyed));
  // No reader was registered, so the retire's own reclaim pass frees it.
  EXPECT_EQ(destroyed.load(), 1);
  EXPECT_EQ(domain.retired_pending(), 0u);
}

TEST(EpochDomainTest, ActiveReaderPinsRetiredObject) {
  EpochDomain domain;
  std::atomic<int> destroyed{0};
  {
    EpochDomain::ReaderGuard guard(&domain);
    ASSERT_TRUE(guard.engaged());
    EXPECT_GE(guard.slot(), 0);
    EXPECT_LT(guard.slot(), EpochDomain::kNumSlots);
    EXPECT_EQ(domain.active_readers(), 1);

    domain.Retire(MakeTracked(&destroyed));
    // The guard announced an epoch <= the retire tag: must stay parked.
    EXPECT_EQ(destroyed.load(), 0);
    EXPECT_EQ(domain.retired_pending(), 1u);
    EXPECT_EQ(domain.Reclaim(), 0u);
  }
  // Reader gone: the next sweep frees it.
  EXPECT_EQ(domain.Reclaim(), 1u);
  EXPECT_EQ(destroyed.load(), 1);
  EXPECT_EQ(domain.retired_pending(), 0u);
}

TEST(EpochDomainTest, EpochAdvancesOncePerRetire) {
  EpochDomain domain;
  std::atomic<int> destroyed{0};
  const uint64_t before = domain.epoch();
  domain.Retire(MakeTracked(&destroyed));
  domain.Retire(MakeTracked(&destroyed));
  EXPECT_EQ(domain.epoch(), before + 2);
}

TEST(EpochDomainTest, GuardsNestAndClaimDistinctSlots) {
  EpochDomain domain;
  EpochDomain::ReaderGuard outer(&domain);
  EpochDomain::ReaderGuard inner(&domain);
  ASSERT_TRUE(outer.engaged());
  ASSERT_TRUE(inner.engaged());
  EXPECT_NE(outer.slot(), inner.slot());
  EXPECT_EQ(domain.active_readers(), 2);
}

TEST(EpochDomainTest, SlotExhaustionDisengagesGracefully) {
  EpochDomain domain;
  std::vector<std::unique_ptr<EpochDomain::ReaderGuard>> guards;
  guards.reserve(EpochDomain::kNumSlots);
  for (int i = 0; i < EpochDomain::kNumSlots; ++i) {
    guards.push_back(std::make_unique<EpochDomain::ReaderGuard>(&domain));
    ASSERT_TRUE(guards.back()->engaged()) << "slot " << i;
  }
  // Every slot taken: the next reader must degrade, not crash or spin.
  EpochDomain::ReaderGuard overflow(&domain);
  EXPECT_FALSE(overflow.engaged());
  EXPECT_EQ(overflow.slot(), -1);
  guards.clear();
  EXPECT_EQ(domain.active_readers(), 0);
  // Slots freed: registration works again.
  EpochDomain::ReaderGuard again(&domain);
  EXPECT_TRUE(again.engaged());
}

TEST(EpochDomainDeathTest, DestroyingDomainWithLiveReaderDies) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  EXPECT_DEATH(
      {
        auto* domain = new EpochDomain;
        EpochDomain::ReaderGuard leak(domain);
        delete domain;  // reader still registered: caller bug
      },
      "");
}

// Readers continuously enter/exit while the main thread retires objects.
// Counted destructors prove (a) nothing leaks and (b) nothing is freed
// while a reader could still see it — TSAN watches (b)'s memory ordering.
TEST(EpochDomainTest, ConcurrentReadersAndRetirerReclaimEverything) {
  EpochDomain domain;
  std::atomic<int> destroyed{0};
  std::atomic<bool> stop{false};
  constexpr int kReaders = 4;
  constexpr int kRetired = 2000;

  std::vector<std::thread> readers;
  readers.reserve(kReaders);
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&] {
      while (!stop.load(std::memory_order_acquire)) {
        EpochDomain::ReaderGuard guard(&domain);
        // Hold briefly so retires overlap live registrations.
        std::atomic_thread_fence(std::memory_order_seq_cst);
      }
    });
  }
  for (int i = 0; i < kRetired; ++i) {
    domain.Retire(MakeTracked(&destroyed));
  }
  stop.store(true, std::memory_order_release);
  for (std::thread& t : readers) t.join();

  domain.Reclaim();
  EXPECT_EQ(destroyed.load(), kRetired);
  EXPECT_EQ(domain.retired_pending(), 0u);
  EXPECT_EQ(domain.active_readers(), 0);
}

}  // namespace
}  // namespace contender

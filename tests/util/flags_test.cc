#include "util/flags.h"

#include <gtest/gtest.h>

namespace contender {
namespace {

Flags MakeFlags(std::vector<std::string> args) {
  static std::vector<std::string> storage;
  storage = std::move(args);
  storage.insert(storage.begin(), "prog");
  std::vector<char*> argv;
  for (auto& s : storage) argv.push_back(s.data());
  return Flags(static_cast<int>(argv.size()), argv.data());
}

TEST(FlagsTest, EqualsSyntax) {
  Flags f = MakeFlags({"--seed=7", "--name=alpha", "--rate=0.5"});
  EXPECT_EQ(f.GetInt("seed", 0), 7);
  EXPECT_EQ(f.GetString("name", ""), "alpha");
  EXPECT_DOUBLE_EQ(f.GetDouble("rate", 0.0), 0.5);
  EXPECT_EQ(f.Seed(), 7u);
}

TEST(FlagsTest, SpaceSyntax) {
  Flags f = MakeFlags({"--seed", "9", "--name", "beta"});
  EXPECT_EQ(f.GetInt("seed", 0), 9);
  EXPECT_EQ(f.GetString("name", ""), "beta");
}

TEST(FlagsTest, BooleanFlags) {
  Flags f = MakeFlags({"--verbose", "--no-color"});
  EXPECT_TRUE(f.GetBool("verbose", false));
  EXPECT_FALSE(f.GetBool("color", true));
  EXPECT_TRUE(f.GetBool("absent", true));
  EXPECT_FALSE(f.GetBool("absent", false));
}

TEST(FlagsTest, DefaultsWhenAbsent) {
  Flags f = MakeFlags({});
  EXPECT_EQ(f.GetInt("seed", 42), 42);
  EXPECT_EQ(f.Seed(), 42u);
  EXPECT_EQ(f.GetString("x", "dflt"), "dflt");
  EXPECT_FALSE(f.Has("x"));
}

TEST(FlagsTest, ExplicitFalseString) {
  Flags f = MakeFlags({"--opt=false", "--zero=0"});
  EXPECT_FALSE(f.GetBool("opt", true));
  EXPECT_FALSE(f.GetBool("zero", true));
}

}  // namespace
}  // namespace contender

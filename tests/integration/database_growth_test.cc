// Extension test for the paper's §8 future-work item: prediction on an
// expanding database. As writes accumulate (a larger scale factor), a
// Contender deployment re-profiles the templates — isolated runs only,
// constant-time per template — and its predictions track the grown
// database.

#include <cmath>

#include <gtest/gtest.h>

#include "core/predictor.h"
#include "math/metrics.h"
#include "util/logging.h"
#include "workload/sampler.h"
#include "workload/steady_state.h"

namespace contender {
namespace {

TEST(DatabaseGrowthTest, CatalogScalesAsDocumented) {
  Catalog base = Catalog::TpcDs(100.0);
  Catalog grown = Catalog::TpcDs(130.0);
  // Fact tables grow linearly.
  EXPECT_NEAR(grown.Get("store_sales").bytes,
              1.3 * base.Get("store_sales").bytes, 1.0);
  // Entity dimensions grow sublinearly.
  EXPECT_NEAR(grown.Get("customer").bytes,
              std::sqrt(1.3) * base.Get("customer").bytes, 1e3);
  // Static dimensions do not grow.
  EXPECT_DOUBLE_EQ(grown.Get("date_dim").bytes, base.Get("date_dim").bytes);
  // SF=100 reduces to the base catalog.
  EXPECT_DOUBLE_EQ(Catalog::TpcDs(100.0).Get("web_sales").bytes,
                   Catalog::TpcDs100().Get("web_sales").bytes);
}

TEST(DatabaseGrowthTest, IsolatedLatencyGrowsWithDatabase) {
  Workload base(Catalog::TpcDs(100.0), MakePaperTemplates());
  Workload grown(Catalog::TpcDs(140.0), MakePaperTemplates());
  sim::SimConfig machine;
  WorkloadSampler::Options opts;
  WorkloadSampler base_sampler(&base, machine, opts);
  WorkloadSampler grown_sampler(&grown, machine, opts);
  // An I/O-bound template's isolated latency tracks the fact growth.
  const int idx = base.IndexOfId(71);
  auto p0 = base_sampler.ProfileTemplate(idx, {});
  auto p1 = grown_sampler.ProfileTemplate(idx, {});
  ASSERT_TRUE(p0.ok());
  ASSERT_TRUE(p1.ok());
  const double ratio = p1->isolated_latency / p0->isolated_latency;
  EXPECT_GT(ratio, 1.25);
  EXPECT_LT(ratio, 1.45);
}

// Re-profiling on the grown database (isolated + spoiler runs, no mix
// sampling) keeps concurrent predictions accurate: the QS models learned
// on the old database transfer because the continuum normalization
// absorbs the scale change.
TEST(DatabaseGrowthTest, RetrainedProfilesKeepPredictionsAccurate) {
  sim::SimConfig machine;
  Workload grown(Catalog::TpcDs(125.0), MakePaperTemplates());
  WorkloadSampler::Options opts;
  opts.mpls = {2};
  opts.lhs_runs = 2;
  WorkloadSampler sampler(&grown, machine, opts);
  auto data = sampler.CollectAll();
  ASSERT_TRUE(data.ok()) << data.status();

  ContenderPredictor::Options popts;
  popts.mpls = {2};
  auto predictor = ContenderPredictor::Train(
      data->profiles, data->scan_times, data->observations, popts);
  ASSERT_TRUE(predictor.ok()) << predictor.status();

  std::vector<double> observed, predicted;
  for (const MixObservation& o : data->observations) {
    auto pred = predictor->PredictKnown(o.primary_index,
                                        o.concurrent_indices);
    if (!pred.ok()) continue;
    observed.push_back(o.latency.value());
    predicted.push_back(pred->value());
  }
  ASSERT_GT(observed.size(), 300u);
  // Accuracy on the grown database matches the SF=100 results.
  EXPECT_LT(MeanRelativeError(observed, predicted), 0.25);
}

}  // namespace
}  // namespace contender

// Integration tests asserting the qualitative shape of the paper's
// headline results on the full pipeline. Magnitudes are simulator-specific;
// orderings and directions are the paper's.

#include <gtest/gtest.h>

#include "core/predictor.h"
#include "core/qs_model.h"
#include "core/spoiler_model.h"
#include "math/metrics.h"
#include "test_support.h"

namespace contender {
namespace {

using testing::PaperWorkload;
using testing::ProfileById;
using testing::SharedTrainingData;

double VariantMre(CqiVariant variant) {
  const TrainingData& data = SharedTrainingData();
  std::vector<double> observed, predicted;
  for (int mpl : {2, 3, 4, 5}) {
    auto models = FitReferenceModels(data.profiles, data.scan_times,
                                     data.observations, units::Mpl(mpl),
                                     variant);
    CONTENDER_CHECK(models.ok());
    for (const auto& [t, model] : *models) {
      auto set = BuildQsTrainingSet(data.profiles, data.scan_times,
                                    data.observations, t, units::Mpl(mpl),
                                    variant);
      CONTENDER_CHECK(set.ok());
      const TemplateProfile& p = data.profiles[static_cast<size_t>(t)];
      for (size_t i = 0; i < set->cqi.size(); ++i) {
        const double point = model.PredictContinuum(set->cqi[i]).value();
        observed.push_back(set->latency[i].value());
        predicted.push_back(
            point * (p.spoiler_latency.at(mpl) - p.isolated_latency).value() +
            p.isolated_latency.value());
      }
    }
  }
  return MeanRelativeError(observed, predicted);
}

// Table 2: Baseline I/O > Positive I/O >= CQI, and all below ~30%.
TEST(ReproductionTest, Table2VariantOrdering) {
  const double baseline = VariantMre(CqiVariant::kBaselineIo);
  const double positive = VariantMre(CqiVariant::kPositiveIo);
  const double full = VariantMre(CqiVariant::kFull);
  EXPECT_GT(baseline, positive);
  EXPECT_GE(positive + 0.01, full);  // CQI at least matches Positive I/O
  EXPECT_LT(full, 0.30);
}

// §4 headline: CQI is highly correlated with concurrent latency.
TEST(ReproductionTest, CqiCorrelatesWithLatency) {
  const TrainingData& data = SharedTrainingData();
  auto models = FitReferenceModels(data.profiles, data.scan_times,
                                   data.observations, units::Mpl(2));
  ASSERT_TRUE(models.ok());
  double mean_r2 = 0.0;
  for (const auto& [t, model] : *models) mean_r2 += model.r_squared;
  mean_r2 /= static_cast<double>(models->size());
  EXPECT_GT(mean_r2, 0.5);
}

// Fig. 6: the three spoiler growth regimes — q62 grows slowest, q71
// linearly in between, q22 (memory-bound) much faster; all near-linear
// except where spills kick in.
TEST(ReproductionTest, Fig6SpoilerGrowthRegimes) {
  const TrainingData& data = SharedTrainingData();
  const TemplateProfile& q62 = ProfileById(data, 62);
  const TemplateProfile& q71 = ProfileById(data, 71);
  const TemplateProfile& q22 = ProfileById(data, 22);
  auto slowdown5 = [](const TemplateProfile& p) {
    return p.spoiler_latency.at(5) / p.isolated_latency;
  };
  EXPECT_LT(slowdown5(q62), slowdown5(q71));
  EXPECT_GT(slowdown5(q22), 2.0 * slowdown5(q71));
  // Absolute ordering at MPL 5 matches the figure: q22 on top.
  EXPECT_GT(q22.spoiler_latency.at(5), q71.spoiler_latency.at(5));
  EXPECT_GT(q71.spoiler_latency.at(5), q62.spoiler_latency.at(5));
}

// §5.5: spoiler latency extrapolates linearly (train 1-3, test 4-5).
TEST(ReproductionTest, SpoilerLinearityAcrossWorkload) {
  const TrainingData& data = SharedTrainingData();
  std::vector<double> observed, predicted;
  for (const TemplateProfile& p : data.profiles) {
    auto model = FitSpoilerGrowth(p, {1, 2, 3});
    ASSERT_TRUE(model.ok());
    for (int mpl : {4, 5}) {
      observed.push_back(p.spoiler_latency.at(mpl).value());
      predicted.push_back(
          model->PredictLatency(units::Mpl(mpl), p.isolated_latency).value());
    }
  }
  // Paper: ~8% extrapolation error. Memory-bound templates are the rough
  // tail here; the workload-wide figure stays moderate.
  EXPECT_LT(MeanRelativeError(observed, predicted), 0.25);
}

// Fig. 9 shape: KNN spoiler prediction beats the I/O-Time baseline,
// leave-one-template-out.
TEST(ReproductionTest, Fig9KnnBeatsIoTime) {
  const TrainingData& data = SharedTrainingData();
  std::vector<double> obs, knn_pred, io_pred;
  for (size_t held = 0; held < data.profiles.size(); ++held) {
    std::vector<TemplateProfile> refs;
    for (size_t i = 0; i < data.profiles.size(); ++i) {
      if (i != held) refs.push_back(data.profiles[i]);
    }
    KnnSpoilerPredictor::Options opts;
    auto knn = KnnSpoilerPredictor::Fit(refs, opts);
    auto io = IoTimeSpoilerPredictor::Fit(refs, {1, 2, 3, 4, 5});
    ASSERT_TRUE(knn.ok());
    ASSERT_TRUE(io.ok());
    for (int mpl : {2, 3, 4, 5}) {
      const TemplateProfile& target = data.profiles[held];
      obs.push_back(target.spoiler_latency.at(mpl).value());
      knn_pred.push_back(knn->Predict(target, units::Mpl(mpl))->value());
      io_pred.push_back(io->Predict(target, units::Mpl(mpl))->value());
    }
  }
  const double knn_mre = MeanRelativeError(obs, knn_pred);
  const double io_mre = MeanRelativeError(obs, io_pred);
  EXPECT_LT(knn_mre, io_mre);
}

// Fig. 8 shape: known templates predict better than unknown templates.
TEST(ReproductionTest, Fig8KnownBeatsUnknown) {
  const TrainingData& data = SharedTrainingData();
  ContenderPredictor::Options opts;
  const ContenderPredictor& predictor = testing::SharedPredictor();

  std::vector<double> known_obs, known_pred;
  for (const MixObservation& o : data.observations) {
    auto pred = predictor.PredictKnown(o.primary_index,
                                       o.concurrent_indices);
    if (!pred.ok()) continue;
    known_obs.push_back(o.latency.value());
    known_pred.push_back(pred->value());
  }
  const double known_mre = MeanRelativeError(known_obs, known_pred);

  // Unknown: leave one template out of the QS transfer, predict its mixes.
  std::vector<double> unk_obs, unk_pred;
  for (int held : {0, 5, 10, 15, 20}) {
    const testing::HeldOutTraining view =
        testing::MakeHeldOutTraining(data, {held});
    auto held_out_predictor = ContenderPredictor::Train(
        view.profiles, data.scan_times, view.observations, opts);
    ASSERT_TRUE(held_out_predictor.ok());

    const TemplateProfile& target = data.profiles[static_cast<size_t>(held)];
    for (const MixObservation& o : data.observations) {
      if (o.primary_index != held) continue;
      std::vector<int> conc;
      if (!view.RemapConcurrent(o.concurrent_indices, &conc)) continue;
      auto pred = held_out_predictor->PredictNew(target, conc,
                                                 SpoilerSource::kMeasured);
      if (!pred.ok()) continue;
      unk_obs.push_back(o.latency.value());
      unk_pred.push_back(pred->value());
    }
  }
  ASSERT_GT(unk_obs.size(), 50u);
  const double unknown_mre = MeanRelativeError(unk_obs, unk_pred);
  EXPECT_LT(known_mre, unknown_mre);
  // Unknown-template accuracy stays bounded. The paper reports ~25%; on
  // the simulated substrate the memory-bound templates' enormous continuum
  // ranges push the mean-over-templates higher (see EXPERIMENTS.md).
  EXPECT_LT(unknown_mre, 0.70);
}

// §6.2: extremely I/O-bound templates predict best; memory-intensive ones
// worst (Fig. 7 structure).
TEST(ReproductionTest, Fig7IoBoundBeatsMemoryBound) {
  const TrainingData& data = SharedTrainingData();
  auto models = FitReferenceModels(data.profiles, data.scan_times,
                                   data.observations, units::Mpl(4));
  ASSERT_TRUE(models.ok());
  auto template_mre = [&](int id) {
    const int idx = testing::PaperWorkload().IndexOfId(id);
    auto set = BuildQsTrainingSet(data.profiles, data.scan_times,
                                  data.observations, idx, units::Mpl(4));
    CONTENDER_CHECK(set.ok());
    const TemplateProfile& p = data.profiles[static_cast<size_t>(idx)];
    std::vector<double> obs, pred;
    for (size_t i = 0; i < set->cqi.size(); ++i) {
      const double point =
          models->at(idx).PredictContinuum(set->cqi[i]).value();
      obs.push_back(set->latency[i].value());
      pred.push_back(
          point * (p.spoiler_latency.at(4) - p.isolated_latency).value() +
          p.isolated_latency.value());
    }
    return MeanRelativeError(obs, pred);
  };
  double io_bound = (template_mre(26) + template_mre(33) + template_mre(61) +
                     template_mre(71)) /
                    4.0;
  double memory_bound = (template_mre(2) + template_mre(22)) / 2.0;
  EXPECT_LT(io_bound, memory_bound);
  EXPECT_LT(io_bound, 0.15);
}

}  // namespace
}  // namespace contender

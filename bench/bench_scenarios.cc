// The cross-stack robustness matrix: every registered workload scenario
// (src/scenario/) is pushed through the full pipeline — predictor →
// admission policies → serving degradation ladder — and the matrix
// reports, per scenario × policy, the schedule quality (makespan, p95,
// SLA misses, prediction error) plus which rung of the serve ladder
// answered the stream's predictions.
//
//   ./build/bench/bench_scenarios [--seed=42] [--requests=48] [--mpl=3]
//       [--mean_interarrival=25] [--deadline_probability=0.5]
//
// Checked invariants (--check=true, the default):
//  - greedy contention-aware beats FIFO on p95 response under EVERY
//    scenario at the default seed — non-Poisson shapes don't break the
//    predictor-driven win;
//  - AdHocNovel, answered by a predictor trained WITHOUT the held-out
//    templates' in-mix observations, drives a nonzero transferred-QS
//    (tier 1) count — the paper §6 KNN-spoiler path actually fires —
//    while PoissonSteady stays entirely on the full model (tier 0);
//  - every scenario trace is bit-identical when regenerated, when
//    regenerated with every chaos fail point armed hot, and when
//    generated concurrently from thread-pool workers.

#include <iostream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "bench_json.h"
#include "bench_support.h"
#include "scenario/scenario.h"
#include "scenario/scenarios.h"
#include "sched/metrics.h"
#include "sched/mix_oracle.h"
#include "sched/policy.h"
#include "sched/simulator.h"
#include "serve/model_snapshot.h"
#include "serve/service.h"
#include "util/failpoint.h"
#include "util/thread_pool.h"

using namespace contender;

namespace {

/// Regenerates `scenario`'s trace under chaos and from pool workers and
/// CHECKs every digest against the straight-line generation.
void CheckTraceInvariance(const scenario::Scenario& scenario,
                          const std::vector<units::Seconds>& reference,
                          const scenario::ScenarioParams& params,
                          uint64_t expected_digest) {
  auto regenerated = scenario.GenerateTrace(reference, params);
  CONTENDER_CHECK(regenerated.ok()) << regenerated.status();
  CONTENDER_CHECK(scenario::TraceDigest(regenerated->requests) ==
                  expected_digest)
      << scenario.name() << ": regeneration diverged";

  FailPointRegistry& registry = FailPointRegistry::Global();
  registry.SetRootSeed(params.seed ^ 0x5ca1ab1eULL);
  for (const std::string& site : registry.SiteNames()) {
    registry.ArmProbability(site, 0.5);
  }
  auto chaos = scenario.GenerateTrace(reference, params);
  registry.DisarmAll();
  CONTENDER_CHECK(chaos.ok()) << chaos.status();
  CONTENDER_CHECK(scenario::TraceDigest(chaos->requests) == expected_digest)
      << scenario.name() << ": chaos replay diverged";

  for (int num_threads : {2, 8}) {
    ThreadPool pool(num_threads);
    std::vector<std::future<uint64_t>> digests;
    for (int i = 0; i < num_threads; ++i) {
      digests.push_back(pool.Submit([&scenario, &reference, &params] {
        auto trace = scenario.GenerateTrace(reference, params);
        CONTENDER_CHECK(trace.ok()) << trace.status();
        return scenario::TraceDigest(trace->requests);
      }));
    }
    for (auto& digest : digests) {
      CONTENDER_CHECK(digest.get() == expected_digest)
          << scenario.name() << ": divergence at " << num_threads
          << " pool threads";
    }
  }
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  std::cout << "Training Contender on the TPC-DS-like workload...\n";
  bench::Experiment e = bench::CollectExperiment(flags);
  auto predictor = ContenderPredictor::Train(
      e.data.profiles, e.data.scan_times, e.data.observations, {});
  CONTENDER_CHECK(predictor.ok()) << predictor.status();

  std::vector<units::Seconds> reference;
  for (const TemplateProfile& p : e.data.profiles) {
    reference.push_back(p.isolated_latency);
  }
  const int num_templates = static_cast<int>(reference.size());

  // The transfer-stressed predictor for AdHocNovel: trained with the
  // held-out slice's in-mix observations dropped, so those templates have
  // profiles (KNN features) but no reference QS models — exactly the
  // paper §6 "new template" situation. Predictions for them must descend
  // to the transferred-QS tier.
  const std::vector<int> novel =
      scenario::AdHocNovel::NovelTemplates(num_templates);
  std::vector<MixObservation> stressed_observations;
  for (const MixObservation& o : e.data.observations) {
    bool primary_is_novel = false;
    for (int t : novel) primary_is_novel |= (o.primary_index == t);
    if (!primary_is_novel) stressed_observations.push_back(o);
  }
  auto stressed_predictor = ContenderPredictor::Train(
      e.data.profiles, e.data.scan_times, stressed_observations, {});
  CONTENDER_CHECK(stressed_predictor.ok()) << stressed_predictor.status();
  std::cout << "Held out " << novel.size() << " templates' in-mix "
            << "observations for the adhoc-novel transfer stress ("
            << stressed_observations.size() << " of "
            << e.data.observations.size() << " observations kept)\n\n";

  scenario::ScenarioParams params;
  params.num_requests = static_cast<int>(flags.GetInt("requests", 48));
  params.mean_interarrival =
      units::Seconds(flags.GetDouble("mean_interarrival", 25.0));
  params.deadline_probability = flags.GetDouble("deadline_probability", 0.5);
  params.min_slack = flags.GetDouble("min_slack", 3.0);
  params.max_slack = flags.GetDouble("max_slack", 10.0);
  params.seed = e.seed;

  sched::ScheduleOptions schedule_options;
  schedule_options.target_mpl = static_cast<int>(flags.GetInt("mpl", 3));
  schedule_options.seed = e.seed;
  const bool check = flags.GetBool("check", true);

  const sched::ScheduleSimulator simulator(&e.workload, e.config);
  TablePrinter table({"Scenario", "Policy", "Makespan", "p95 resp",
                      "SLA miss", "Pred err", "Tier 0/1/2"});
  bench::Json scenario_rows = bench::Json::Array();

  for (const scenario::Scenario* s : scenario::AllScenarios()) {
    const bool is_adhoc =
        std::string(s->name()) == std::string("adhoc-novel");
    const ContenderPredictor& active =
        is_adhoc ? *stressed_predictor : *predictor;

    auto trace = s->GenerateTrace(reference, params);
    CONTENDER_CHECK(trace.ok()) << trace.status();
    const uint64_t digest = scenario::TraceDigest(trace->requests);
    CheckTraceInvariance(*s, reference, params, digest);

    // Serve pass: the stream's predictions answered by the degradation
    // ladder, with a rolling 2-deep preview mix (the admission
    // controller's view just before each request lands).
    auto snapshot = serve::ModelSnapshot::Create(active, /*version=*/1);
    serve::PredictionService service(snapshot);
    std::vector<serve::PredictRequest> batch;
    batch.reserve(trace->requests.size());
    for (size_t i = 0; i < trace->requests.size(); ++i) {
      serve::PredictRequest request;
      request.template_index = trace->requests[i].template_index;
      for (size_t back = 1; back <= 2 && back <= i; ++back) {
        request.concurrent.push_back(
            trace->requests[i - back].template_index);
      }
      batch.push_back(std::move(request));
    }
    const std::vector<serve::PredictResult> answers =
        service.PredictBatch(batch);
    for (const serve::PredictResult& answer : answers) {
      CONTENDER_CHECK(answer.status.ok()) << answer.status;
    }
    const uint64_t tier_full =
        service.tier_count(serve::DegradationTier::kFullModel);
    const uint64_t tier_transfer =
        service.tier_count(serve::DegradationTier::kTransferredQs);
    const uint64_t tier_isolated =
        service.tier_count(serve::DegradationTier::kIsolatedHeuristic);

    sched::MixOracle oracle(&active);
    sched::ScheduleMetrics fifo_metrics;
    sched::ScheduleMetrics greedy_metrics;
    bench::Json policy_rows = bench::Json::Array();
    for (sched::PolicyKind kind : sched::AllPolicyKinds()) {
      auto policy = sched::MakePolicy(kind);
      auto result = simulator.Run(trace->requests, policy.get(), &oracle,
                                  schedule_options);
      CONTENDER_CHECK(result.ok()) << s->name() << "/" << policy->name()
                                   << ": " << result.status();
      const sched::ScheduleMetrics m = sched::ComputeScheduleMetrics(*result);
      if (kind == sched::PolicyKind::kFifo) fifo_metrics = m;
      if (kind == sched::PolicyKind::kGreedyContention) greedy_metrics = m;
      table.AddRow({s->name(), policy->name(),
                    FormatDouble(m.makespan.value(), 0) + " s",
                    FormatDouble(m.p95_response.value(), 0) + " s",
                    FormatPercent(m.sla_miss_rate, 0),
                    FormatPercent(m.mean_prediction_error, 1),
                    std::to_string(tier_full) + "/" +
                        std::to_string(tier_transfer) + "/" +
                        std::to_string(tier_isolated)});
      policy_rows.Append(
          bench::Json::Object()
              .Set("policy", policy->name())
              .Set("makespan_s", m.makespan.value())
              .Set("p95_response_s", m.p95_response.value())
              .Set("p99_response_s", m.p99_response.value())
              .Set("sla_miss_rate", m.sla_miss_rate)
              .Set("mean_prediction_error", m.mean_prediction_error));
    }

    if (check) {
      CONTENDER_CHECK(greedy_metrics.p95_response <
                      fifo_metrics.p95_response)
          << "greedy-contention lost on p95 under " << s->name();
      if (is_adhoc) {
        CONTENDER_CHECK(tier_transfer > 0)
            << "adhoc-novel failed to reach the transferred-QS tier";
      }
      if (std::string(s->name()) ==
          std::string(scenario::kPoissonSteadyName)) {
        CONTENDER_CHECK(tier_transfer == 0 && tier_isolated == 0)
            << "poisson-steady degraded off the full model";
      }
    }

    bench::Json stats = bench::Json::Object();
    for (const auto& [key, value] : trace->stats) {
      stats.Set(key, value);
    }
    scenario_rows.Append(
        bench::Json::Object()
            .Set("scenario", s->name())
            .Set("description", s->description())
            .Set("trace_digest", digest)
            .Set("oracle_fallbacks", oracle.fallbacks())
            .Set("serve_tier_counts",
                 bench::Json::Object()
                     .Set("full_model", tier_full)
                     .Set("transferred_qs", tier_transfer)
                     .Set("isolated_heuristic", tier_isolated))
            .Set("trace_stats", stats)
            .Set("policies", policy_rows));
  }
  table.Print(std::cout);

  if (check) {
    std::cout << "\nChecked: greedy contention-aware beats FIFO on p95 "
                 "under every scenario; adhoc-novel exercises the "
                 "transferred-QS tier while poisson-steady stays on the "
                 "full model; every trace is bit-identical under chaos "
                 "replay and across pool widths.\n";
  }

  const std::string json_path =
      flags.GetString("json", "BENCH_scenarios.json");
  bench::Json root = bench::Json::Object();
  root.Set("bench", "scenarios")
      .Set("seed", e.seed)
      .Set("requests", static_cast<uint64_t>(params.num_requests))
      .Set("mean_interarrival_s", params.mean_interarrival.value())
      .Set("deadline_probability", params.deadline_probability)
      .Set("target_mpl", schedule_options.target_mpl)
      .Set("held_out_templates", static_cast<uint64_t>(novel.size()))
      .Set("scenarios", scenario_rows);
  bench::WriteJsonFile(json_path, root);
  std::cout << "Wrote " << json_path << "\n";
  return 0;
}

// Cluster-scale fleet simulation: routes a multi-tenant open-loop
// population across N nodes under every placement policy and sweeps the
// nodes × policy × tenant-skew grid, reporting fleet makespan, response
// percentiles, SLA misses, failovers and the per-tenant blame ledgers.
// The headline: contention-aware routing — placing each query where its
// predicted slowdown ratio (wait + L(c|M)) / L_iso is smallest — beats
// round-robin on makespan, p95 response and SLA misses on the grid
// aggregate at the default seed (checked, like bench_scheduler's
// greedy-vs-FIFO win).
//
//   ./build/bench/bench_fleet [--seed=42] [--requests=96]
//       [--mean_interarrival=25] [--tenants=4] [--mpl=3]
//       [--deadline_probability=0.6] [--json=BENCH_fleet.json]
//
// Also property-checks fleet determinism inline: every cell re-runs at a
// different thread count and must be bit-identical.

#include <iostream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "bench_json.h"
#include "bench_support.h"
#include "fleet/fleet_simulator.h"
#include "fleet/metrics.h"
#include "fleet/population.h"
#include "fleet/router.h"

using namespace contender;
using namespace contender::fleet;

namespace {

bool SameFleet(const FleetResult& a, const FleetResult& b) {
  if (a.makespan != b.makespan || a.outcomes.size() != b.outcomes.size()) {
    return false;
  }
  for (size_t i = 0; i < a.outcomes.size(); ++i) {
    if (a.outcomes[i].node != b.outcomes[i].node ||
        a.outcomes[i].completion_time != b.outcomes[i].completion_time ||
        a.outcomes[i].response_time != b.outcomes[i].response_time) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  std::cout << "Training Contender on the TPC-DS-like workload...\n";
  bench::Experiment e = bench::CollectExperiment(flags);
  auto predictor =
      ContenderPredictor::Train(e.data.profiles, e.data.scan_times,
                                e.data.observations, {});
  CONTENDER_CHECK(predictor.ok()) << predictor.status();

  std::vector<units::Seconds> reference;
  for (const TemplateProfile& p : e.data.profiles) {
    reference.push_back(p.isolated_latency);
  }

  PopulationOptions population_options;
  population_options.num_tenants =
      static_cast<int>(flags.GetInt("tenants", 4));
  population_options.num_requests =
      static_cast<int>(flags.GetInt("requests", 96));
  population_options.mean_interarrival =
      units::Seconds(flags.GetDouble("mean_interarrival", 25.0));
  population_options.templates_per_tenant = 10;
  population_options.deadline_probability =
      flags.GetDouble("deadline_probability", 0.6);
  population_options.min_slack = flags.GetDouble("min_slack", 3.0);
  population_options.max_slack = flags.GetDouble("max_slack", 10.0);
  population_options.seed = e.seed;

  const int target_mpl = static_cast<int>(flags.GetInt("mpl", 3));
  const bool check_wins = flags.GetBool("check", true);
  const std::vector<int> node_counts = {2, 4};
  const std::vector<double> skews = {0.0, 1.5};

  TablePrinter table({"Nodes", "Skew", "Policy", "Makespan", "p95 resp",
                      "SLA miss", "Failover", "Degraded", "Blame recv"});
  bench::Json cells = bench::Json::Array();

  // Grid aggregates for the headline check.
  std::map<RoutePolicy, double> sum_makespan;
  std::map<RoutePolicy, double> sum_p95;
  std::map<RoutePolicy, double> sum_sla;

  for (int nodes : node_counts) {
    for (double skew : skews) {
      PopulationOptions cell_population = population_options;
      cell_population.skew = skew;
      auto population = GeneratePopulation(reference, cell_population);
      CONTENDER_CHECK(population.ok()) << population.status();

      for (RoutePolicy policy : AllRoutePolicies()) {
        FleetSimulator simulator(&e.workload, e.config, &*predictor);
        FleetOptions options;
        options.num_nodes = nodes;
        options.target_mpl = target_mpl;
        options.policy = policy;
        options.seed = e.seed;
        options.threads = 1;
        auto result = simulator.Run(*population, options);
        CONTENDER_CHECK(result.ok()) << result.status();

        // Determinism property: the parallel execution pass must be
        // bit-identical to the serial one.
        options.threads = 4;
        auto replay = simulator.Run(*population, options);
        CONTENDER_CHECK(replay.ok()) << replay.status();
        CONTENDER_CHECK(SameFleet(*result, *replay))
            << "thread-count divergence: " << RoutePolicyName(policy)
            << " nodes=" << nodes << " skew=" << skew;

        const FleetMetrics m = ComputeFleetMetrics(*result);
        sum_makespan[policy] += m.makespan.value();
        sum_p95[policy] += m.p95_response.value();
        sum_sla[policy] += m.sla_miss_rate;

        double blame_received = 0.0;
        bench::Json tenants = bench::Json::Array();
        for (const auto& [tenant, totals] : m.blame_by_tenant) {
          blame_received += totals.received_s;
          bench::Json entry = bench::Json::Object();
          entry.Set("tenant", tenant)
              .Set("received_s", totals.received_s)
              .Set("inflicted_s", totals.inflicted_s)
              .Set("self_s", totals.self_s);
          const auto stats = m.per_tenant.find(tenant);
          if (stats != m.per_tenant.end()) {
            entry
                .Set("requests",
                     static_cast<uint64_t>(stats->second.requests))
                .Set("p95_response_s", stats->second.response.p95())
                .Set("sla_miss_rate", stats->second.sla_miss_rate());
          }
          tenants.Append(entry);
        }

        table.AddRow({std::to_string(nodes), FormatDouble(skew, 1),
                      RoutePolicyName(policy),
                      FormatDouble(m.makespan.value(), 0) + " s",
                      FormatDouble(m.p95_response.value(), 0) + " s",
                      FormatPercent(m.sla_miss_rate, 0),
                      std::to_string(m.failovers),
                      std::to_string(m.degraded_routes),
                      FormatDouble(blame_received, 0) + " s"});
        cells.Append(
            bench::Json::Object()
                .Set("nodes", nodes)
                .Set("skew", skew)
                .Set("policy", RoutePolicyName(policy))
                .Set("makespan_s", m.makespan.value())
                .Set("mean_response_s", m.mean_response.value())
                .Set("p50_response_s", m.p50_response.value())
                .Set("p95_response_s", m.p95_response.value())
                .Set("p99_response_s", m.p99_response.value())
                .Set("sla_miss_rate", m.sla_miss_rate)
                .Set("deadline_misses",
                     static_cast<uint64_t>(m.deadline_misses))
                .Set("rejected", static_cast<uint64_t>(m.rejected))
                .Set("failovers", m.failovers)
                .Set("degraded_routes", m.degraded_routes)
                .Set("total_excess_s", m.total_excess_s)
                .Set("total_self_blame_s", m.total_self_blame_s)
                .Set("mean_prediction_error", m.mean_prediction_error)
                .Set("tenants", tenants));
      }
    }
  }
  table.Print(std::cout);

  const double cell_count =
      static_cast<double>(node_counts.size() * skews.size());
  std::cout << "\nGrid aggregate (mean over " << node_counts.size() << "x"
            << skews.size() << " nodes x skew cells):\n";
  for (RoutePolicy policy : AllRoutePolicies()) {
    std::cout << "  " << RoutePolicyName(policy) << ": makespan "
              << FormatDouble(sum_makespan[policy] / cell_count, 0)
              << " s, p95 "
              << FormatDouble(sum_p95[policy] / cell_count, 0)
              << " s, SLA miss "
              << FormatPercent(sum_sla[policy] / cell_count, 1) << "\n";
  }

  const RoutePolicy ca = RoutePolicy::kContentionAware;
  const RoutePolicy rr = RoutePolicy::kRoundRobin;
  if (check_wins) {
    CONTENDER_CHECK(sum_makespan[ca] < sum_makespan[rr])
        << "contention-aware lost on grid makespan";
    CONTENDER_CHECK(sum_p95[ca] < sum_p95[rr])
        << "contention-aware lost on grid p95";
    CONTENDER_CHECK(sum_sla[ca] < sum_sla[rr])
        << "contention-aware lost on grid SLA misses";
    std::cout << "Contention-aware routing beats round-robin on makespan, "
                 "p95 and SLA misses on the grid aggregate (checked).\n";
  }

  const std::string json_path = flags.GetString("json", "BENCH_fleet.json");
  bench::Json root = bench::Json::Object();
  root.Set("bench", "fleet")
      .Set("seed", e.seed)
      .Set("requests",
           static_cast<uint64_t>(population_options.num_requests))
      .Set("tenants",
           static_cast<uint64_t>(population_options.num_tenants))
      .Set("target_mpl", target_mpl)
      .Set("mean_interarrival_s",
           population_options.mean_interarrival.value())
      .Set("deadline_probability",
           population_options.deadline_probability)
      .Set("cells", cells)
      .Set("aggregate",
           bench::Json::Object()
               .Set("contention_aware_makespan_s",
                    sum_makespan[ca] / cell_count)
               .Set("round_robin_makespan_s", sum_makespan[rr] / cell_count)
               .Set("contention_aware_p95_s", sum_p95[ca] / cell_count)
               .Set("round_robin_p95_s", sum_p95[rr] / cell_count)
               .Set("contention_aware_sla_miss", sum_sla[ca] / cell_count)
               .Set("round_robin_sla_miss", sum_sla[rr] / cell_count));
  bench::WriteJsonFile(json_path, root);
  std::cout << "Wrote " << json_path << "\n";
  return 0;
}

// Serving-layer benchmark: concurrent prediction throughput against the
// hot-swappable PredictionService, and tail latency while the
// RefitController drains observations and swaps snapshots mid-traffic.
//
//   ./build/bench/bench_serve [--seed=42] [--requests=4000]
//       [--refit_rounds=4] [--json=BENCH_serve.json] [--check]
//
// Two experiments:
//   1. Throughput scaling: T client threads (T in 1,2,4,8,16) answer
//      deterministic per-thread request streams via Predict(); reports
//      aggregate QPS and per-request latency percentiles. On multi-core
//      hosts --check asserts multi-thread throughput beats single-thread.
//   2. Refit under traffic: clients keep predicting while the controller
//      performs hot-swap refits; reports p99 with and without swaps and
//      verifies every answered batch bit-equals a recompute on the
//      snapshot version that stamped it (the swap is atomic and readers
//      never observe torn state).

#include <algorithm>
#include <chrono>
#include <iostream>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "bench_json.h"
#include "bench_support.h"
#include "serve/refit_controller.h"
#include "util/random.h"

using namespace contender;
using namespace contender::serve;

namespace {

PredictRequest DrawRequest(Rng* rng, int num_templates) {
  PredictRequest r;
  r.template_index = static_cast<int>(
      rng->UniformInt(static_cast<uint64_t>(num_templates)));
  const uint64_t mix_size = rng->UniformInt(4);
  for (uint64_t j = 0; j < mix_size; ++j) {
    r.concurrent.push_back(static_cast<int>(
        rng->UniformInt(static_cast<uint64_t>(num_templates))));
  }
  return r;
}

std::vector<PredictRequest> MakeStream(uint64_t seed, size_t count,
                                       int num_templates) {
  Rng rng(seed);
  std::vector<PredictRequest> stream;
  stream.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    stream.push_back(DrawRequest(&rng, num_templates));
  }
  return stream;
}

struct PerThreadResult {
  double qps = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  uint64_t requests = 0;
};

struct ThroughputResult {
  int threads = 0;
  double qps = 0.0;
  // Percentiles of the MERGED per-thread sample distributions (exact:
  // SampleStats::Merge concatenates retained samples, so the combined
  // quantile is computed over every request, not approximated).
  double p50_us = 0.0;
  double p99_us = 0.0;
  // Worst single-thread tail — the conservative number a fairness
  // regression shows up in first (one starved client, healthy merge).
  double worst_p99_us = 0.0;
  std::vector<PerThreadResult> per_thread;
};

ThroughputResult MeasureThroughput(const PredictionService& service,
                                   int threads, size_t total_requests,
                                   uint64_t seed) {
  const int num_templates = service.snapshot()->num_templates();
  const size_t per_thread = total_requests / static_cast<size_t>(threads);
  std::vector<std::vector<PredictRequest>> streams;
  for (int t = 0; t < threads; ++t) {
    streams.push_back(MakeStream(seed + static_cast<uint64_t>(t),
                                 per_thread, num_templates));
  }

  std::vector<SampleStats> latencies(static_cast<size_t>(threads));
  std::vector<double> thread_wall_s(static_cast<size_t>(threads), 0.0);
  const auto wall_start = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  workers.reserve(static_cast<size_t>(threads));
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([t, &service, &streams, &latencies,
                          &thread_wall_s] {
      SampleStats& stats = latencies[static_cast<size_t>(t)];
      const auto thread_start = std::chrono::steady_clock::now();
      for (const PredictRequest& r : streams[static_cast<size_t>(t)]) {
        const auto start = std::chrono::steady_clock::now();
        auto got = service.Predict(r.template_index, r.concurrent);
        const auto stop = std::chrono::steady_clock::now();
        CONTENDER_CHECK(got.ok()) << got.status();
        stats.Add(std::chrono::duration<double, std::micro>(stop - start)
                      .count());
      }
      thread_wall_s[static_cast<size_t>(t)] =
          std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                        thread_start)
              .count();
    });
  }
  for (std::thread& w : workers) w.join();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  ThroughputResult result;
  result.threads = threads;
  size_t answered = 0;
  SampleStats merged;
  for (int t = 0; t < threads; ++t) {
    const SampleStats& s = latencies[static_cast<size_t>(t)];
    PerThreadResult pt;
    pt.requests = s.count();
    if (!s.empty()) {
      answered += s.count();
      pt.p50_us = s.p50();
      pt.p99_us = s.p99();
      pt.qps = thread_wall_s[static_cast<size_t>(t)] > 0.0
                   ? static_cast<double>(s.count()) /
                         thread_wall_s[static_cast<size_t>(t)]
                   : 0.0;
      result.worst_p99_us = std::max(result.worst_p99_us, pt.p99_us);
      merged.Merge(s);
    }
    result.per_thread.push_back(pt);
  }
  if (!merged.empty()) {
    result.p50_us = merged.p50();
    result.p99_us = merged.p99();
  }
  result.qps = static_cast<double>(answered) / wall_s;
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  std::cout << "Training Contender on the TPC-DS-like workload...\n";
  bench::Experiment e = bench::CollectExperiment(flags);
  auto predictor = ContenderPredictor::Train(
      e.data.profiles, e.data.scan_times, e.data.observations, {});
  CONTENDER_CHECK(predictor.ok()) << predictor.status();

  // Serve behind a health tracker so the run also reports the degradation
  // ladder's counters (tier mix, breaker trips). With healthy traffic every
  // answer stays at tier 0 and the counters document that.
  auto initial_snapshot = ModelSnapshot::Create(*predictor, 1);
  PredictionService::Options service_options;
  service_options.health =
      std::make_shared<HealthTracker>(initial_snapshot->num_templates());
  PredictionService service(std::move(initial_snapshot), service_options);
  const size_t total_requests =
      static_cast<size_t>(flags.GetInt("requests", 4000));
  const unsigned hardware = std::thread::hardware_concurrency();
  const bool check = flags.GetBool("check", false);

  // Experiment 1: throughput scaling over client thread counts. Each row
  // reports the merged latency distribution plus the worst single-thread
  // tail; the JSON additionally carries the full per-thread breakdown so
  // the dashboard can spot one starved client behind a healthy aggregate.
  TablePrinter table(
      {"Clients", "QPS", "p50 (us)", "p99 (us)", "worst p99 (us)"});
  bench::Json scaling = bench::Json::Array();
  std::vector<ThroughputResult> results;
  for (int threads : {1, 2, 4, 8, 16}) {
    const ThroughputResult r =
        MeasureThroughput(service, threads, total_requests, e.seed);
    results.push_back(r);
    table.AddRow({std::to_string(r.threads), FormatDouble(r.qps, 0),
                  FormatDouble(r.p50_us, 1), FormatDouble(r.p99_us, 1),
                  FormatDouble(r.worst_p99_us, 1)});
    bench::Json per_thread = bench::Json::Array();
    for (const PerThreadResult& pt : r.per_thread) {
      per_thread.Append(bench::Json::Object()
                            .Set("qps", pt.qps)
                            .Set("p50_us", pt.p50_us)
                            .Set("p99_us", pt.p99_us)
                            .Set("requests", pt.requests));
    }
    scaling.Append(bench::Json::Object()
                       .Set("threads", r.threads)
                       .Set("qps", r.qps)
                       .Set("p50_us", r.p50_us)
                       .Set("p99_us", r.p99_us)
                       .Set("worst_p99_us", r.worst_p99_us)
                       .Set("per_thread", per_thread));
  }
  table.Print(std::cout);
  if (hardware >= 2) {
    double best_multi = 0.0;
    for (const ThroughputResult& r : results) {
      if (r.threads > 1) best_multi = std::max(best_multi, r.qps);
    }
    std::cout << "Multi-thread best " << FormatDouble(best_multi, 0)
              << " QPS vs single-thread "
              << FormatDouble(results.front().qps, 0) << " QPS\n";
    if (check) {
      CONTENDER_CHECK(best_multi > results.front().qps)
          << "no throughput scaling on a multi-core host";
    }
  } else {
    std::cout << "Single hardware thread: scaling comparison skipped.\n";
  }

  // Experiment 2: tail latency while the controller hot-swaps refit
  // snapshots under live traffic, with batch-consistency verification.
  const int refit_rounds =
      static_cast<int>(flags.GetInt("refit_rounds", 4));
  ObservationLog log(&service);
  RefitOptions refit_options;
  refit_options.min_new_observations = 32;
  RefitController controller(&service, &log, e.data.observations,
                             refit_options);

  std::map<uint64_t, std::shared_ptr<const ModelSnapshot>> by_version;
  by_version[service.snapshot()->version()] = service.snapshot();

  constexpr int kTrafficThreads = 4;
  const size_t per_thread = total_requests / kTrafficThreads;
  const int num_templates = service.snapshot()->num_templates();
  std::vector<SampleStats> quiet(kTrafficThreads), swapping(kTrafficThreads);
  std::vector<std::vector<std::pair<PredictRequest, PredictResult>>>
      answered(kTrafficThreads);

  auto run_traffic = [&](std::vector<SampleStats>* stats, bool record) {
    std::vector<std::thread> workers;
    for (int t = 0; t < kTrafficThreads; ++t) {
      // `stats` must be captured by value: the threads outlive this
      // factory's stack frame.
      workers.emplace_back([&, t, record, stats] {
        Rng rng(e.seed + 100 + static_cast<uint64_t>(t));
        for (size_t i = 0; i < per_thread; ++i) {
          std::vector<PredictRequest> batch;
          for (int j = 0; j < 4; ++j) {
            batch.push_back(DrawRequest(&rng, num_templates));
          }
          const auto start = std::chrono::steady_clock::now();
          const auto results_batch = service.PredictBatch(batch);
          const auto stop = std::chrono::steady_clock::now();
          (*stats)[static_cast<size_t>(t)].Add(
              std::chrono::duration<double, std::micro>(stop - start)
                  .count());
          if (record && i % 16 == 0) {
            for (size_t j = 0; j < batch.size(); ++j) {
              CONTENDER_CHECK(results_batch[j].status.ok());
              answered[static_cast<size_t>(t)].emplace_back(
                  batch[j], results_batch[j]);
            }
          }
          i += batch.size() - 1;  // count batch entries against the budget
        }
      });
    }
    return workers;
  };

  // Baseline: no refits in flight.
  {
    auto workers = run_traffic(&quiet, /*record=*/false);
    for (std::thread& w : workers) w.join();
  }
  // Under refit churn: the main thread ingests and swaps while traffic runs.
  {
    auto workers = run_traffic(&swapping, /*record=*/true);
    size_t next = 0;
    for (int round = 0; round < refit_rounds; ++round) {
      for (size_t i = 0; i < refit_options.min_new_observations; ++i) {
        MixObservation obs =
            e.data.observations[next++ % e.data.observations.size()];
        obs.latency = obs.latency * (round % 2 == 0 ? 1.1 : 0.95);
        CONTENDER_CHECK(log.Ingest(obs).ok());
      }
      auto step = controller.Step();
      CONTENDER_CHECK(step.ok()) << step.status();
      if (step->refit) {
        by_version[step->published_version] = service.snapshot();
      }
    }
    for (std::thread& w : workers) w.join();
  }

  double quiet_p99 = 0.0, swap_p99 = 0.0;
  for (int t = 0; t < kTrafficThreads; ++t) {
    if (!quiet[static_cast<size_t>(t)].empty()) {
      quiet_p99 = std::max(quiet_p99, quiet[static_cast<size_t>(t)].p99());
    }
    if (!swapping[static_cast<size_t>(t)].empty()) {
      swap_p99 = std::max(swap_p99, swapping[static_cast<size_t>(t)].p99());
    }
  }

  // Consistency audit: every recorded answer recomputes bit-exactly on the
  // snapshot of the version that stamped it.
  size_t audited = 0;
  for (const auto& per_thread_answers : answered) {
    for (const auto& [request, result] : per_thread_answers) {
      auto it = by_version.find(result.snapshot_version);
      CONTENDER_CHECK(it != by_version.end())
          << "unknown snapshot version " << result.snapshot_version;
      CONTENDER_CHECK(result.latency ==
                      it->second->PredictInMix(request.template_index,
                                               request.concurrent))
          << "torn read at version " << result.snapshot_version;
      ++audited;
    }
  }

  std::cout << "\nRefit under traffic: " << controller.refits()
            << " hot-swaps, batch p99 " << FormatDouble(swap_p99, 1)
            << " us (baseline " << FormatDouble(quiet_p99, 1) << " us), "
            << audited << " answers audited bit-exact against their "
            << "snapshot version.\n";

  // Degradation ladder counters: on a healthy run every answer should be
  // tier 0 (full model) with zero breaker trips; anything else in the JSON
  // flags a model-health regression to the perf dashboard.
  const uint64_t tier_full =
      service.tier_count(DegradationTier::kFullModel);
  const uint64_t tier_transfer =
      service.tier_count(DegradationTier::kTransferredQs);
  const uint64_t tier_isolated =
      service.tier_count(DegradationTier::kIsolatedHeuristic);
  const uint64_t breaker_trips = service.health()->trips();
  std::cout << "Degradation ladder: tier0=" << tier_full
            << " tier1=" << tier_transfer << " tier2=" << tier_isolated
            << ", breaker trips " << breaker_trips << "\n";

  const std::string json_path =
      flags.GetString("json", "BENCH_serve.json");
  bench::Json root = bench::Json::Object();
  root.Set("bench", "serve")
      .Set("seed", e.seed)
      .Set("requests", static_cast<uint64_t>(total_requests))
      .Set("hardware_threads", static_cast<uint64_t>(hardware))
      .Set("scaling", scaling)
      .Set("refit", bench::Json::Object()
                        .Set("rounds", refit_rounds)
                        .Set("hot_swaps", controller.refits())
                        .Set("baseline_p99_us", quiet_p99)
                        .Set("during_refit_p99_us", swap_p99)
                        .Set("answers_audited",
                             static_cast<uint64_t>(audited)))
      .Set("degradation",
           bench::Json::Object()
               .Set("tier_full_model", tier_full)
               .Set("tier_transferred_qs", tier_transfer)
               .Set("tier_isolated_heuristic", tier_isolated)
               .Set("breaker_trips", breaker_trips));
  bench::WriteJsonFile(json_path, root);
  std::cout << "Wrote " << json_path << "\n";
  return 0;
}

// Reproduces the §3 static-workload machine-learning study: KCCA and SVM
// over query-plan feature vectors at MPL 2, with the same templates in
// training and test (250 training mixes, 75 test mixes, ~3.3:1).
//
// Paper values: KCCA 32%, SVM 21% — "moderate success" on static
// workloads (contrast with Figure 3's failure on new templates).

#include "bench_support.h"

#include "core/ml_baseline.h"

int main(int argc, char** argv) {
  using namespace contender;

  Flags flags(argc, argv);
  bench::Experiment e = bench::CollectExperiment(flags);

  std::vector<MixObservation> mpl2;
  for (const MixObservation& o : e.data.observations) {
    if (o.mpl == 2) mpl2.push_back(o);
  }
  MlDataset data = BuildMlDataset(e.workload, mpl2);

  // 250 train / 75 test split, templates proportionally represented
  // (shuffle then cut).
  Rng rng(e.seed ^ 0x5ec3);
  std::vector<size_t> idx(data.features.size());
  for (size_t i = 0; i < idx.size(); ++i) idx[i] = i;
  rng.Shuffle(&idx);
  const size_t train_n = std::min<size_t>(250, idx.size() * 3 / 4);
  const size_t test_n = std::min<size_t>(75, idx.size() - train_n);
  std::vector<size_t> train(idx.begin(), idx.begin() + static_cast<long>(train_n));
  std::vector<size_t> test(idx.begin() + static_cast<long>(train_n),
                           idx.begin() + static_cast<long>(train_n + test_n));

  std::cout << "=== Section 3: ML baselines on a static workload (MPL 2) "
               "===\n\n";
  std::cout << "Training mixes: " << train.size()
            << ", test mixes: " << test.size() << ", features per example: "
            << data.features[0].size() << "\n\n";

  auto kcca = EvaluateKccaMre(data, train, test);
  CONTENDER_CHECK(kcca.ok()) << kcca.status();
  auto svm = EvaluateSvmMre(data, train, test, e.seed);
  CONTENDER_CHECK(svm.ok()) << svm.status();

  TablePrinter table({"Learner", "MRE (static, known templates)"});
  table.AddRow({"KCCA", FormatPercent(*kcca)});
  table.AddRow({"SVM", FormatPercent(*svm)});
  table.Print(std::cout);

  std::cout << "\nPaper: KCCA 32%, SVM 21%. Shape: both usable for static "
               "workloads (compare Figure 3 for new templates).\n";
  return 0;
}

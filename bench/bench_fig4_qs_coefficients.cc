// Reproduces paper Figure 4: the linear relationship between the QS model
// coefficients (slope µ and y-intercept b) across templates at MPL 2.
//
// Paper shape: the coefficients lie close to a common trend line, so one
// can be predicted from the other — the basis of the Unknown-QS transfer.

#include "bench_support.h"

#include "math/regression.h"

int main(int argc, char** argv) {
  using namespace contender;

  Flags flags(argc, argv);
  const int mpl = static_cast<int>(flags.GetInt("mpl", 2));
  bench::Experiment e = bench::CollectExperiment(flags);

  auto models = FitReferenceModels(e.data.profiles, e.data.scan_times,
                                   e.data.observations, units::Mpl(mpl));
  CONTENDER_CHECK(models.ok()) << models.status();

  std::cout << "=== Figure 4: QS coefficient relationship (MPL " << mpl
            << ") ===\n\n";
  TablePrinter table({"Template", "Slope u", "Y-intercept b", "Fit R^2"});
  std::vector<double> slopes, intercepts;
  for (const auto& [t, m] : *models) {
    const TemplateProfile& p = e.data.profiles[static_cast<size_t>(t)];
    table.AddRow({"q" + std::to_string(p.template_id),
                  FormatDouble(m.slope, 3), FormatDouble(m.intercept, 3),
                  FormatDouble(m.r_squared, 2)});
    slopes.push_back(m.slope);
    intercepts.push_back(m.intercept);
  }
  table.Print(std::cout);

  auto trend = FitSimpleLinear(slopes, intercepts);
  CONTENDER_CHECK(trend.ok());
  std::cout << "\nTrend line: b = " << FormatDouble(trend->slope, 3)
            << " * u + " << FormatDouble(trend->intercept, 3)
            << "   (R^2 = " << FormatDouble(trend->r_squared, 2)
            << ", Pearson r = "
            << FormatDouble(PearsonCorrelation(slopes, intercepts), 2)
            << ")\n";
  std::cout << "Paper shape: coefficients strongly linearly related; "
               "sensitive (high-slope) templates have lower intercepts.\n";
  return 0;
}

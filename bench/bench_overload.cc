// The overload-control matrix: pushes three workload scenarios (steady
// Poisson, MMPP flash crowds, heavy-tailed tenants) through the fleet at
// ~3-6x its service rate under three admission regimes —
//
//   none          every arrival is admitted (the metastable baseline:
//                 queues grow without bound, deadlines die in line);
//   static-quota  the legacy per-tenant outstanding cap, the only
//                 pre-overload control the fleet had;
//   adaptive      the full DESIGN.md §16 stack: door CoDel + brownout
//                 ladder + metastability recovery, node AIMD limits and
//                 node CoDel queue shedding —
//
// and reports goodput (on-time completions per second), SLA misses, and
// every shed broken out by stamped ShedReason. The headline (checked at
// the default seed): under flash-crowd traffic the adaptive controller
// beats no-control on BOTH goodput and SLA miss rate on the grid
// aggregate — shedding the right work early is worth more than the work
// itself. Also property-checked inline: every cell is bit-identical when
// re-run at a different thread count, and a chaos-armed cell
// ("overload.door.shed") replays bit-exactly from the fail-point root
// seed alone.
//
//   ./build/bench/bench_overload [--seed=42] [--requests=96]
//       [--mean_interarrival=4] [--tenants=6] [--mpl=3]
//       [--deadline_probability=0.6] [--json=BENCH_overload.json]

#include <iostream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "bench_json.h"
#include "bench_support.h"
#include "fleet/fleet_simulator.h"
#include "fleet/metrics.h"
#include "fleet/population.h"
#include "overload/shed_reason.h"
#include "scenario/scenario.h"
#include "util/failpoint.h"

using namespace contender;
using namespace contender::fleet;

namespace {

struct ControlRegime {
  const char* name;
  void (*configure)(FleetOptions*);
};

const std::vector<ControlRegime>& Regimes() {
  static const std::vector<ControlRegime> regimes = {
      {"none", [](FleetOptions*) {}},
      {"static-quota",
       [](FleetOptions* options) { options->tenant_quota = 3; }},
      {"adaptive",
       [](FleetOptions* options) {
         options->door.enabled = true;
         options->door.codel.target = units::Seconds(15.0);
         options->door.codel.interval = units::Seconds(45.0);
         options->door.brownout.enter_pressure = 2.0;
         options->door.brownout.exit_pressure = 0.75;
         options->door.brownout.rung_streak = 8;
         options->node_overload.adaptive_limit = true;
         options->node_overload.limiter.max_limit = options->target_mpl;
         options->node_overload.codel_shed = true;
         options->node_overload.codel.target = units::Seconds(30.0);
         options->node_overload.codel.interval = units::Seconds(90.0);
       }},
  };
  return regimes;
}

bool SameFleet(const FleetResult& a, const FleetResult& b) {
  if (a.makespan != b.makespan || a.outcomes.size() != b.outcomes.size()) {
    return false;
  }
  for (size_t i = 0; i < a.outcomes.size(); ++i) {
    const FleetQueryOutcome& x = a.outcomes[i];
    const FleetQueryOutcome& y = b.outcomes[i];
    if (x.node != y.node || x.rejected != y.rejected || x.shed != y.shed ||
        x.shed_reason != y.shed_reason ||
        x.completion_time != y.completion_time ||
        x.response_time != y.response_time) {
      return false;
    }
  }
  return true;
}

size_t ShedCount(const FleetMetrics& m, overload::ShedReason reason) {
  auto it = m.shed_by_reason.find(reason);
  return it == m.shed_by_reason.end() ? 0 : it->second;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  std::cout << "Training Contender on the TPC-DS-like workload...\n";
  bench::Experiment e = bench::CollectExperiment(flags);
  auto predictor =
      ContenderPredictor::Train(e.data.profiles, e.data.scan_times,
                                e.data.observations, {});
  CONTENDER_CHECK(predictor.ok()) << predictor.status();

  std::vector<units::Seconds> reference;
  for (const TemplateProfile& p : e.data.profiles) {
    reference.push_back(p.isolated_latency);
  }

  PopulationOptions population_options;
  population_options.num_tenants =
      static_cast<int>(flags.GetInt("tenants", 6));
  population_options.num_requests =
      static_cast<int>(flags.GetInt("requests", 96));
  // ~4 s between arrivals against node service times in the tens of
  // seconds: a sustained overload every regime must face.
  population_options.mean_interarrival =
      units::Seconds(flags.GetDouble("mean_interarrival", 4.0));
  population_options.skew = 1.0;
  population_options.templates_per_tenant = 10;
  population_options.deadline_probability =
      flags.GetDouble("deadline_probability", 0.6);
  population_options.min_slack = flags.GetDouble("min_slack", 3.0);
  population_options.max_slack = flags.GetDouble("max_slack", 10.0);
  population_options.seed = e.seed;

  const int target_mpl = static_cast<int>(flags.GetInt("mpl", 3));
  const bool check_wins = flags.GetBool("check", true);
  const std::vector<std::string> scenario_names = {
      "poisson-steady", "flash-crowd", "heavy-tail-tenants"};
  const std::vector<int> node_counts = {2, 4};

  TablePrinter table({"Scenario", "Nodes", "Control", "Goodput/s",
                      "Completed", "Shed", "q-delay", "quota", "brownout",
                      "SLA miss", "p95 resp"});
  bench::Json cells = bench::Json::Array();

  // Flash-crowd aggregates (summed over node counts) for the headline.
  std::map<std::string, double> crowd_goodput;
  std::map<std::string, double> crowd_sla;
  std::map<std::string, size_t> crowd_good;

  for (const std::string& scenario_name : scenario_names) {
    const scenario::Scenario* scenario =
        scenario::FindScenario(scenario_name);
    CONTENDER_CHECK(scenario != nullptr)
        << scenario_name << " missing from the scenario registry";
    auto population =
        GeneratePopulation(reference, population_options, *scenario);
    CONTENDER_CHECK(population.ok()) << population.status();

    for (int nodes : node_counts) {
      for (const ControlRegime& regime : Regimes()) {
        FleetSimulator simulator(&e.workload, e.config, &*predictor);
        FleetOptions options;
        options.num_nodes = nodes;
        options.target_mpl = target_mpl;
        options.seed = e.seed;
        options.threads = 1;
        regime.configure(&options);
        auto result = simulator.Run(*population, options);
        CONTENDER_CHECK(result.ok()) << result.status();

        // Determinism property: the execution pass fans out over a
        // thread pool, the result must not notice.
        options.threads = 4;
        auto replay = simulator.Run(*population, options);
        CONTENDER_CHECK(replay.ok()) << replay.status();
        CONTENDER_CHECK(SameFleet(*result, *replay))
            << "thread-count divergence: " << scenario_name << "/"
            << regime.name << " nodes=" << nodes;

        const FleetMetrics m = ComputeFleetMetrics(*result);
        // Conservation ledger: every offered request accounted exactly
        // once, in every cell.
        CONTENDER_CHECK(m.offered == m.completed + m.shed_total)
            << scenario_name << "/" << regime.name;
        CONTENDER_CHECK(m.admitted == m.completed + m.node_sheds)
            << scenario_name << "/" << regime.name;

        if (scenario_name == "flash-crowd") {
          crowd_goodput[regime.name] += m.goodput_per_s;
          crowd_sla[regime.name] += m.sla_miss_rate;
          crowd_good[regime.name] += m.good_completions;
        }

        const size_t queue_delay_sheds =
            ShedCount(m, overload::ShedReason::kQueueDelay);
        const size_t quota_sheds =
            ShedCount(m, overload::ShedReason::kQuota);
        const size_t brownout_sheds =
            ShedCount(m, overload::ShedReason::kCriticalityBrownout);
        table.AddRow({scenario_name, std::to_string(nodes), regime.name,
                      FormatDouble(m.goodput_per_s, 4),
                      std::to_string(m.completed),
                      std::to_string(m.shed_total),
                      std::to_string(queue_delay_sheds),
                      std::to_string(quota_sheds),
                      std::to_string(brownout_sheds),
                      FormatPercent(m.sla_miss_rate, 0),
                      FormatDouble(m.p95_response.value(), 0) + " s"});

        bench::Json sheds = bench::Json::Object();
        for (overload::ShedReason reason : overload::AllShedReasons()) {
          sheds.Set(overload::ShedReasonName(reason),
                    static_cast<uint64_t>(ShedCount(m, reason)));
        }
        cells.Append(
            bench::Json::Object()
                .Set("scenario", scenario_name)
                .Set("nodes", nodes)
                .Set("control", regime.name)
                .Set("goodput_per_s", m.goodput_per_s)
                .Set("good_completions",
                     static_cast<uint64_t>(m.good_completions))
                .Set("offered", static_cast<uint64_t>(m.offered))
                .Set("admitted", static_cast<uint64_t>(m.admitted))
                .Set("completed", static_cast<uint64_t>(m.completed))
                .Set("rejected", static_cast<uint64_t>(m.rejected))
                .Set("node_sheds", static_cast<uint64_t>(m.node_sheds))
                .Set("shed_total", static_cast<uint64_t>(m.shed_total))
                .Set("shed_by_reason", sheds)
                .Set("sla_miss_rate", m.sla_miss_rate)
                .Set("makespan_s", m.makespan.value())
                .Set("p95_response_s", m.p95_response.value())
                .Set("mean_queue_wait_s", m.mean_queue_wait.value())
                .Set("recovery_entries", result->door.recovery_entries)
                .Set("recovery_sheds", result->door.recovery_sheds)
                .Set("brownout_escalations",
                     result->door.brownout_escalations));
      }
    }
  }
  table.Print(std::cout);

  // Chaos replay property: with the door's fail point armed, a run is a
  // pure function of the fail-point root seed — at any thread count.
  {
    const scenario::Scenario* crowd = scenario::FindScenario("flash-crowd");
    auto population =
        GeneratePopulation(reference, population_options, *crowd);
    CONTENDER_CHECK(population.ok()) << population.status();
    FleetOptions options;
    options.num_nodes = 4;
    options.target_mpl = target_mpl;
    options.seed = e.seed;
    Regimes()[2].configure(&options);

    auto& registry = FailPointRegistry::Global();
    FleetSimulator simulator(&e.workload, e.config, &*predictor);
    registry.SetRootSeed(e.seed);
    registry.ArmProbability("overload.door.shed", 0.05);
    options.threads = 1;
    auto chaos_serial = simulator.Run(*population, options);
    registry.SetRootSeed(e.seed);
    registry.ArmProbability("overload.door.shed", 0.05);
    options.threads = 4;
    auto chaos_parallel = simulator.Run(*population, options);
    registry.Disarm("overload.door.shed");
    CONTENDER_CHECK(chaos_serial.ok()) << chaos_serial.status();
    CONTENDER_CHECK(chaos_parallel.ok()) << chaos_parallel.status();
    CONTENDER_CHECK(chaos_serial->door.chaos_sheds > 0)
        << "door chaos never fired at p=0.05";
    CONTENDER_CHECK(SameFleet(*chaos_serial, *chaos_parallel))
        << "chaos-armed run diverged across thread counts";
    std::cout << "\nChaos replay: " << chaos_serial->door.chaos_sheds
              << " injected door sheds, bit-identical at 1 and 4 threads "
                 "(checked).\n";
  }

  const double cell_count = static_cast<double>(node_counts.size());
  std::cout << "\nFlash-crowd aggregate (mean over " << node_counts.size()
            << " node counts):\n";
  for (const ControlRegime& regime : Regimes()) {
    std::cout << "  " << regime.name << ": goodput "
              << FormatDouble(crowd_goodput[regime.name] / cell_count, 4)
              << "/s, SLA miss "
              << FormatPercent(crowd_sla[regime.name] / cell_count, 1)
              << ", on-time completions "
              << crowd_good[regime.name] << "\n";
  }

  if (check_wins) {
    CONTENDER_CHECK(crowd_goodput["adaptive"] > crowd_goodput["none"])
        << "adaptive control lost on flash-crowd goodput";
    CONTENDER_CHECK(crowd_sla["adaptive"] < crowd_sla["none"])
        << "adaptive control lost on flash-crowd SLA misses";
    // The blunt quota also posts good rates — by rejecting most of the
    // offered work outright. The controller must beat it on the absolute
    // amount of on-time work delivered, or "shed the right work" is just
    // "shed most work".
    CONTENDER_CHECK(crowd_good["adaptive"] > crowd_good["static-quota"])
        << "adaptive control delivered less on-time work than the "
           "static quota";
    std::cout << "Adaptive overload control beats no-control on goodput "
                 "AND SLA misses, and beats the static quota on on-time "
                 "completions, under flash-crowd traffic (checked).\n";
  }

  const std::string json_path =
      flags.GetString("json", "BENCH_overload.json");
  bench::Json root = bench::Json::Object();
  root.Set("bench", "overload")
      .Set("seed", e.seed)
      .Set("requests",
           static_cast<uint64_t>(population_options.num_requests))
      .Set("tenants",
           static_cast<uint64_t>(population_options.num_tenants))
      .Set("target_mpl", target_mpl)
      .Set("mean_interarrival_s",
           population_options.mean_interarrival.value())
      .Set("deadline_probability",
           population_options.deadline_probability)
      .Set("cells", cells)
      .Set("aggregate",
           bench::Json::Object()
               .Set("flash_crowd_goodput_none",
                    crowd_goodput["none"] / cell_count)
               .Set("flash_crowd_goodput_quota",
                    crowd_goodput["static-quota"] / cell_count)
               .Set("flash_crowd_goodput_adaptive",
                    crowd_goodput["adaptive"] / cell_count)
               .Set("flash_crowd_sla_none", crowd_sla["none"] / cell_count)
               .Set("flash_crowd_sla_quota",
                    crowd_sla["static-quota"] / cell_count)
               .Set("flash_crowd_sla_adaptive",
                    crowd_sla["adaptive"] / cell_count));
  bench::WriteJsonFile(json_path, root);
  std::cout << "Wrote " << json_path << "\n";
  return 0;
}

// Measures the parallel profiling & training runner: wall-clock of the full
// pipeline (§2 sampling via WorkloadSampler::CollectAll + predictor
// training) with a pool of 1, a pool of 4, and a warm RunCache replay —
// while verifying that all three produce bit-identical training data and
// predictions. Pool speedup needs real cores; the cache replay demonstrates
// the amortization that holds on any machine.
//
// Flags: --seed, --lhs_runs, --threads (width of the "wide" runs, default 4).

#include "bench_support.h"

#include <chrono>

#include "sim/run_cache.h"

namespace contender::bench {
namespace {

struct TrainedRun {
  TrainingData data;
  /// PredictKnown over every training observation, in observation order.
  std::vector<double> predictions;
  double collect_seconds = 0.0;
  double train_seconds = 0.0;
};

double Seconds(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

TrainedRun RunPipeline(const Workload& workload, const sim::SimConfig& config,
                       const Flags& flags, int threads,
                       sim::RunCache* cache) {
  TrainedRun run;
  WorkloadSampler::Options options;
  options.seed = flags.Seed();
  options.lhs_runs = static_cast<int>(flags.GetInt("lhs_runs", 4));
  options.threads = threads;
  options.cache = cache;

  auto collect_start = std::chrono::steady_clock::now();
  WorkloadSampler sampler(&workload, config, options);
  auto data = sampler.CollectAll();
  CONTENDER_CHECK(data.ok()) << data.status();
  run.collect_seconds = Seconds(collect_start);
  run.data = std::move(*data);

  ContenderPredictor::Options train_options;
  train_options.train_threads = threads;
  auto train_start = std::chrono::steady_clock::now();
  auto predictor = ContenderPredictor::Train(
      run.data.profiles, run.data.scan_times, run.data.observations,
      train_options);
  CONTENDER_CHECK(predictor.ok()) << predictor.status();
  run.train_seconds = Seconds(train_start);

  for (const MixObservation& o : run.data.observations) {
    auto pred = predictor->PredictKnown(o.primary_index,
                                        o.concurrent_indices);
    run.predictions.push_back(pred.ok() ? pred->value() : -1.0);
  }
  return run;
}

/// Exact (bitwise-value) equality of everything downstream code consumes.
bool Identical(const TrainedRun& a, const TrainedRun& b) {
  if (a.data.sampling_seconds != b.data.sampling_seconds) return false;
  if (a.data.scan_times != b.data.scan_times) return false;
  if (a.data.profiles.size() != b.data.profiles.size()) return false;
  for (size_t i = 0; i < a.data.profiles.size(); ++i) {
    const TemplateProfile& pa = a.data.profiles[i];
    const TemplateProfile& pb = b.data.profiles[i];
    if (pa.isolated_latency != pb.isolated_latency ||
        pa.io_fraction != pb.io_fraction ||
        pa.working_set_bytes != pb.working_set_bytes ||
        pa.spoiler_latency != pb.spoiler_latency) {
      return false;
    }
  }
  if (a.data.observations.size() != b.data.observations.size()) return false;
  for (size_t i = 0; i < a.data.observations.size(); ++i) {
    if (a.data.observations[i].latency != b.data.observations[i].latency) {
      return false;
    }
  }
  return a.predictions == b.predictions;
}

int Main(int argc, char** argv) {
  Flags flags(argc, argv);
  const Workload workload = Workload::Paper();
  const sim::SimConfig config;
  const int wide = static_cast<int>(flags.GetInt("threads", 4));

  std::cout << "=== Parallel profiling & training (CollectAll + Train) "
               "===\n\n";

  // Each cold run gets its own cache so nothing is shared between the
  // pool-width scenarios; the warm run replays the wide run's cache.
  sim::RunCache cache_one(4096), cache_wide(4096);
  const TrainedRun one =
      RunPipeline(workload, config, flags, /*threads=*/1, &cache_one);
  const TrainedRun many =
      RunPipeline(workload, config, flags, wide, &cache_wide);
  const TrainedRun warm =
      RunPipeline(workload, config, flags, wide, &cache_wide);

  CONTENDER_CHECK(Identical(one, many))
      << "pool-" << wide << " diverged from pool-1";
  CONTENDER_CHECK(Identical(one, warm)) << "warm replay diverged";

  auto total = [](const TrainedRun& r) {
    return r.collect_seconds + r.train_seconds;
  };
  TablePrinter table({"Scenario", "Collect", "Train", "Total", "Speedup"});
  auto row = [&](const std::string& name, const TrainedRun& r) {
    table.AddRow({name, FormatDouble(r.collect_seconds, 2) + " s",
                  FormatDouble(r.train_seconds, 3) + " s",
                  FormatDouble(total(r), 2) + " s",
                  FormatDouble(total(one) / total(r), 2) + "x"});
  };
  row("pool=1, cold cache", one);
  row("pool=" + std::to_string(wide) + ", cold cache", many);
  row("pool=" + std::to_string(wide) + ", warm cache", warm);
  table.Print(std::cout);

  std::cout << "\nRunCache (wide pool): " << cache_wide.hits() << " hits / "
            << cache_wide.misses() << " misses across cold+warm passes.\n";
  std::cout << "All three scenarios produced bit-identical profiles, "
               "observations and predictions.\n";
  return 0;
}

}  // namespace
}  // namespace contender::bench

int main(int argc, char** argv) { return contender::bench::Main(argc, argv); }

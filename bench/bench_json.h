// Minimal ordered JSON emission for the BENCH_*.json summaries the
// experiment binaries drop next to their stdout reports, so the perf
// trajectory is machine-readable across PRs. Build values bottom-up with
// Json::Object()/Json::Array(), then WriteJsonFile. Numbers print with
// %.17g (round-trip precision); strings are escaped for the characters
// that can actually appear in our keys and messages.

#ifndef CONTENDER_BENCH_BENCH_JSON_H_
#define CONTENDER_BENCH_BENCH_JSON_H_

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "util/logging.h"

namespace contender::bench {

class Json {
 public:
  static Json Object() { return Json(Kind::kObject); }
  static Json Array() { return Json(Kind::kArray); }

  Json& Set(const std::string& key, double value) {
    return SetRaw(key, Number(value));
  }
  Json& Set(const std::string& key, int value) {
    return SetRaw(key, std::to_string(value));
  }
  Json& Set(const std::string& key, uint64_t value) {
    return SetRaw(key, std::to_string(value));
  }
  Json& Set(const std::string& key, bool value) {
    return SetRaw(key, value ? "true" : "false");
  }
  Json& Set(const std::string& key, const char* value) {
    return SetRaw(key, Quote(value));
  }
  Json& Set(const std::string& key, const std::string& value) {
    return SetRaw(key, Quote(value));
  }
  Json& Set(const std::string& key, const Json& value) {
    return SetRaw(key, value.Dump());
  }

  Json& Append(const Json& value) { return AppendRaw(value.Dump()); }
  Json& Append(double value) { return AppendRaw(Number(value)); }

  [[nodiscard]] std::string Dump() const {
    std::string out(1, kind_ == Kind::kObject ? '{' : '[');
    for (size_t i = 0; i < items_.size(); ++i) {
      if (i > 0) out += ',';
      out += items_[i];
    }
    out += kind_ == Kind::kObject ? '}' : ']';
    return out;
  }

 private:
  enum class Kind { kObject, kArray };
  explicit Json(Kind kind) : kind_(kind) {}

  Json& SetRaw(const std::string& key, std::string value) {
    CONTENDER_CHECK(kind_ == Kind::kObject);
    items_.push_back(Quote(key) + ":" + std::move(value));
    return *this;
  }
  Json& AppendRaw(std::string value) {
    CONTENDER_CHECK(kind_ == Kind::kArray);
    items_.push_back(std::move(value));
    return *this;
  }

  static std::string Number(double value) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", value);
    return buf;
  }
  static std::string Quote(const std::string& s) {
    std::string out = "\"";
    for (char c : s) {
      if (c == '"' || c == '\\') out += '\\';
      if (c == '\n') {
        out += "\\n";
        continue;
      }
      out += c;
    }
    out += '"';
    return out;
  }

  Kind kind_;
  std::vector<std::string> items_;
};

/// Writes `json` to `path` (plus a trailing newline) and logs the location.
inline void WriteJsonFile(const std::string& path, const Json& json) {
  std::ofstream out(path);
  CONTENDER_CHECK(out.good()) << "cannot write " << path;
  out << json.Dump() << "\n";
  CONTENDER_CHECK(out.good()) << "short write to " << path;
}

}  // namespace contender::bench

#endif  // CONTENDER_BENCH_BENCH_JSON_H_

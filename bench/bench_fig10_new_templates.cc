// Reproduces paper Figure 10: end-to-end latency prediction for new
// templates at MPL 2–5 (leave-one-template-out), with three spoiler
// sources:
//   Known Spoiler      — measured l_max (linear-time sampling);
//   KNN Spoiler        — l_max predicted by KNN from isolated statistics
//                        (constant-time sampling; full Contender);
//   Isolated Prediction— model inputs (isolated latency, I/O time, working
//                        set) themselves perturbed by a randomized +/-25%,
//                        simulating the upstream isolated-latency predictor
//                        of Akdere et al. [11]; zero sample executions.
// The memory-intensive templates (2 and 22) are excluded, extending the
// paper's exclusion of T2 (see the note in the loop).
//
// Paper shape: Known Spoiler < KNN Spoiler (~25%) < Isolated Prediction,
// with the standard deviation growing in the same order.

#include "bench_support.h"

int main(int argc, char** argv) {
  using namespace contender;
  using bench::HeldOutMre;
  using bench::MakeHeldOutView;

  Flags flags(argc, argv);
  bench::Experiment e = bench::CollectExperiment(flags);
  const int n = e.workload.size();
  Rng perturb_rng(e.seed ^ 0x150);

  std::cout << "=== Figure 10: latency prediction for new templates "
               "(leave-one-out) ===\n\n";

  TablePrinter table({"MPL", "Known Spoiler", "(sd)", "KNN Spoiler", "(sd)",
                      "Isolated Prediction", "(sd)"});
  for (int mpl : {2, 3, 4, 5}) {
    std::vector<double> known, knn, isolated;
    for (int held = 0; held < n; ++held) {
      const int id = e.workload.tmpl(held).id;
      // The paper excludes its most memory-intensive template (T2): too
      // few similar templates to model its spoiler growth. On this
      // substrate both memory-bound templates (2 and 22) meet that
      // criterion, so both are excluded here.
      if (id == 2 || id == 22) continue;
      bench::HeldOutView view = MakeHeldOutView(e, {held});
      ContenderPredictor::Options opts;
      opts.mpls = {mpl};
      auto predictor = ContenderPredictor::Train(
          view.profiles, e.data.scan_times, view.observations, opts);
      if (!predictor.ok()) continue;
      const TemplateProfile& target =
          e.data.profiles[static_cast<size_t>(held)];

      auto known_mre = HeldOutMre(
          e, view, held, mpl, [&](const std::vector<int>& conc) {
            return predictor->PredictNew(target, conc,
                                         SpoilerSource::kMeasured);
          });
      if (known_mre.has_value()) known.push_back(*known_mre);

      auto knn_mre = HeldOutMre(
          e, view, held, mpl, [&](const std::vector<int>& conc) {
            return predictor->PredictNew(target, conc,
                                         SpoilerSource::kKnnPredicted);
          });
      if (knn_mre.has_value()) knn.push_back(*knn_mre);

      // Isolated Prediction: +/-25% randomized error on the isolated
      // statistics (congruent with the error of [11]).
      TemplateProfile noisy = target;
      noisy.isolated_latency =
          noisy.isolated_latency * perturb_rng.Uniform(0.75, 1.25);
      noisy.io_fraction = units::Fraction::Clamp(
          noisy.io_fraction.value() * perturb_rng.Uniform(0.75, 1.25));
      noisy.working_set_bytes =
          noisy.working_set_bytes * perturb_rng.Uniform(0.75, 1.25);
      auto iso_mre = HeldOutMre(
          e, view, held, mpl, [&](const std::vector<int>& conc) {
            return predictor->PredictNew(noisy, conc,
                                         SpoilerSource::kKnnPredicted);
          });
      if (iso_mre.has_value()) isolated.push_back(*iso_mre);
    }
    table.AddRow({std::to_string(mpl),
                  FormatPercent(Mean(known)), FormatPercent(StdDev(known)),
                  FormatPercent(Mean(knn)), FormatPercent(StdDev(knn)),
                  FormatPercent(Mean(isolated)),
                  FormatPercent(StdDev(isolated))});
  }
  table.Print(std::cout);

  std::cout << "\nPaper: KNN Spoiler ~25% for MPL 2-5, slightly above Known "
               "Spoiler; Isolated Prediction highest, with the largest "
               "standard deviation.\n";
  return 0;
}

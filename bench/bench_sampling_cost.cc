// Reproduces the paper's §5.4 sampling-cost analysis: how much training
// (simulated) time each approach needs before it can predict a NEW template
// at MPLs 2-5.
//
//   Prior work [8]     : LHS mix samples of the new template against the
//                        existing workload at every MPL (>= 2*m*k runs);
//   Contender (linear) : one isolated run + one spoiler run per MPL;
//   Contender (const)  : one isolated run only (KNN-predicted spoiler).
//
// Paper: spoiler-only sampling cuts training time to ~23% of mix sampling;
// the KNN variant reduces it to a single isolated execution.

#include "bench_support.h"

#include "ml/lhs.h"
#include "workload/steady_state.h"

int main(int argc, char** argv) {
  using namespace contender;

  Flags flags(argc, argv);
  bench::Experiment e = bench::CollectExperiment(flags);
  const std::vector<int> mpls = {2, 3, 4, 5};
  const int lhs_runs_per_mpl = 2;  // samples of the new template per MPL

  std::cout << "=== Section 5.4: sampling cost of adding one new template "
               "===\n\n";

  // Average over every template playing the role of "the new template".
  SummaryStats prior_cost, linear_cost, constant_cost;
  Rng rng(e.seed ^ 0xcafe);
  WorkloadSampler::Options opts;
  opts.seed = e.seed;
  WorkloadSampler sampler(&e.workload, e.config, opts);

  for (int t = 0; t < e.workload.size(); ++t) {
    const TemplateProfile& p = e.data.profiles[static_cast<size_t>(t)];
    // Prior work: steady-state mix samples at each MPL where the new
    // template runs against random members of the known workload.
    double prior = 0.0;
    for (int mpl : mpls) {
      for (int run = 0; run < lhs_runs_per_mpl; ++run) {
        std::vector<int> mix = {t};
        for (int s = 1; s < mpl; ++s) {
          mix.push_back(static_cast<int>(
              rng.UniformInt(static_cast<uint64_t>(e.workload.size()))));
        }
        SteadyStateOptions ss;
        ss.seed = rng.Next();
        auto result = RunSteadyState(e.workload, mix, e.config, ss);
        CONTENDER_CHECK(result.ok());
        prior += result->duration;
      }
    }
    // Contender linear: isolated + spoiler per MPL.
    double linear = p.isolated_latency.value();
    for (int mpl : mpls) linear += p.spoiler_latency.at(mpl).value();
    // Contender constant: isolated only.
    const double constant = p.isolated_latency.value();

    prior_cost.Add(prior);
    linear_cost.Add(linear);
    constant_cost.Add(constant);
  }

  TablePrinter table({"Approach", "Samples per new template",
                      "Avg sim. time", "vs prior work"});
  auto rel = [&](double v) {
    return FormatPercent(v / prior_cost.mean());
  };
  table.AddRow({"Prior work [8] (LHS mixes)",
                std::to_string(lhs_runs_per_mpl * static_cast<int>(mpls.size())) +
                    " steady-state mixes",
                FormatDouble(prior_cost.mean(), 0) + " s", "100%"});
  table.AddRow({"Contender (linear: spoiler/MPL)",
                "1 isolated + " + std::to_string(mpls.size()) + " spoiler",
                FormatDouble(linear_cost.mean(), 0) + " s",
                rel(linear_cost.mean())});
  table.AddRow({"Contender (constant: KNN spoiler)", "1 isolated",
                FormatDouble(constant_cost.mean(), 0) + " s",
                rel(constant_cost.mean())});
  table.Print(std::cout);

  std::cout << "\nMix-space sizes (25 templates): MPL 2 = "
            << DistinctMixCount(25, 2) << ", MPL 5 = "
            << DistinctMixCount(25, 5)
            << " distinct mixes — exhaustive sampling is intractable "
               "(paper §2).\n";
  std::cout << "Paper: spoiler-only sampling is ~23% of the mix-sampling "
               "cost; the KNN variant needs only the isolated run.\n";
  return 0;
}

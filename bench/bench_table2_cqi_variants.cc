// Reproduces paper Table 2: mean relative error of latency prediction for
// known templates at MPL 2–5, comparing the Baseline I/O, Positive I/O and
// full CQI variants of the contention metric (k-fold cross-validated, k=5).
//
// Paper values: Baseline 25.4%, Positive I/O 20.4%, CQI 20.2%.

#include "bench_support.h"

int main(int argc, char** argv) {
  using namespace contender;
  using bench::CollectExperiment;
  using bench::WorkloadQsMre;

  Flags flags(argc, argv);
  bench::Experiment e = CollectExperiment(flags);

  std::cout << "=== Table 2: MRE of CQI-based latency prediction "
               "(known templates, MPL 2-5) ===\n\n";

  struct Variant {
    const char* name;
    CqiVariant variant;
  };
  const std::vector<Variant> variants = {
      {"Baseline I/O", CqiVariant::kBaselineIo},
      {"Positive I/O", CqiVariant::kPositiveIo},
      {"CQI", CqiVariant::kFull},
  };

  TablePrinter table({"Metric", "MPL 2", "MPL 3", "MPL 4", "MPL 5",
                      "MPL 2-5"});
  for (const Variant& v : variants) {
    std::vector<std::string> row = {v.name};
    SummaryStats overall;
    for (int mpl : {2, 3, 4, 5}) {
      const double mre = WorkloadQsMre(e, mpl, v.variant);
      overall.Add(mre);
      row.push_back(FormatPercent(mre));
    }
    row.push_back(FormatPercent(overall.mean()));
    table.AddRow(row);
  }
  table.Print(std::cout);

  std::cout << "\nPaper (MPL 2-5 average): Baseline I/O 25.4%, "
               "Positive I/O 20.4%, CQI 20.2%\n";
  std::cout << "Expected shape: Baseline > Positive I/O >= CQI.\n";
  return 0;
}

// Reproduces paper Figure 9: predicting the spoiler latency of a *new*
// template from isolated statistics only, leave-one-template-out.
// Contender's KNN (working-set size + I/O fraction -> growth coefficients
// of the 3 nearest templates) vs the I/O-Time regression baseline.
//
// Paper shape: KNN ~15% MRE, I/O Time ~20%, at every MPL.

#include "bench_support.h"

#include "core/spoiler_model.h"

int main(int argc, char** argv) {
  using namespace contender;

  Flags flags(argc, argv);
  bench::Experiment e = bench::CollectExperiment(flags);

  std::cout << "=== Figure 9: spoiler prediction for new templates "
               "(leave-one-out) ===\n\n";

  TablePrinter table({"MPL", "KNN", "I/O Time"});
  SummaryStats knn_all, io_all;
  for (int mpl : {2, 3, 4, 5}) {
    std::vector<double> obs, knn_pred, io_pred;
    for (size_t held = 0; held < e.data.profiles.size(); ++held) {
      std::vector<TemplateProfile> refs;
      for (size_t i = 0; i < e.data.profiles.size(); ++i) {
        if (i != held) refs.push_back(e.data.profiles[i]);
      }
      KnnSpoilerPredictor::Options opts;
      opts.k = static_cast<int>(flags.GetInt("k", 3));
      auto knn = KnnSpoilerPredictor::Fit(refs, opts);
      auto io = IoTimeSpoilerPredictor::Fit(refs, {1, 2, 3, 4, 5});
      CONTENDER_CHECK(knn.ok());
      CONTENDER_CHECK(io.ok());
      const TemplateProfile& target = e.data.profiles[held];
      obs.push_back(target.spoiler_latency.at(mpl).value());
      knn_pred.push_back(knn->Predict(target, units::Mpl(mpl))->value());
      io_pred.push_back(io->Predict(target, units::Mpl(mpl))->value());
    }
    const double knn_mre = MeanRelativeError(obs, knn_pred);
    const double io_mre = MeanRelativeError(obs, io_pred);
    knn_all.Add(knn_mre);
    io_all.Add(io_mre);
    table.AddRow({std::to_string(mpl), FormatPercent(knn_mre),
                  FormatPercent(io_mre)});
  }
  table.AddRow({"Avg", FormatPercent(knn_all.mean()),
                FormatPercent(io_all.mean())});
  table.Print(std::cout);

  std::cout << "\nPaper: KNN ~15% vs I/O Time ~20%; KNN wins at every MPL "
               "because it uses two isolated statistics (working set + I/O "
               "time) instead of one.\n";
  return 0;
}

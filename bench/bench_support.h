// Shared machinery for the experiment harnesses: training-data collection
// with command-line overrides, k-fold QS evaluation, and leave-templates-out
// predictor training.

#ifndef CONTENDER_BENCH_BENCH_SUPPORT_H_
#define CONTENDER_BENCH_BENCH_SUPPORT_H_

#include <iostream>
#include <optional>

#include "core/predictor.h"
#include "core/qs_model.h"
#include "math/metrics.h"
#include "ml/kfold.h"
#include "util/flags.h"
#include "util/logging.h"
#include "util/summary_stats.h"
#include "util/table_printer.h"
#include "workload/sampler.h"

namespace contender::bench {

/// The experiment context: workload, hardware model, and collected
/// training data.
struct Experiment {
  Workload workload = Workload::Paper();
  sim::SimConfig config;
  TrainingData data;
  uint64_t seed = 42;
};

/// Collects the full §2 sampling protocol (isolated profiles, spoiler
/// latencies, scan times, all pairs at MPL 2, LHS runs at MPL 3–5), fanned
/// across a sim::BatchRunner pool and memoized in the process-wide
/// sim::RunCache (repeated collection with the same seed replays instead of
/// re-simulating). Honors --seed, --lhs_runs and --threads (0 = hardware
/// concurrency); results are bit-identical for every thread count.
inline Experiment CollectExperiment(const Flags& flags) {
  Experiment e;
  e.seed = flags.Seed();
  WorkloadSampler::Options options;
  options.seed = e.seed;
  options.lhs_runs = static_cast<int>(flags.GetInt("lhs_runs", 4));
  options.threads = static_cast<int>(flags.GetInt("threads", 0));
  WorkloadSampler sampler(&e.workload, e.config, options);
  auto data = sampler.CollectAll();
  CONTENDER_CHECK(data.ok()) << data.status();
  e.data = std::move(*data);
  return e;
}

/// Per-template k-fold cross-validated MRE of the QS model at one MPL
/// (paper §2: k = 5). Returns nullopt when the template lacks enough
/// observations.
inline std::optional<double> KFoldQsMre(const Experiment& e,
                                        int template_index, int mpl,
                                        CqiVariant variant, int folds = 5) {
  auto set = BuildQsTrainingSet(e.data.profiles, e.data.scan_times,
                                e.data.observations, template_index,
                                units::Mpl(mpl), variant);
  if (!set.ok() || set->cqi.size() < static_cast<size_t>(folds)) {
    return std::nullopt;
  }
  const TemplateProfile& p =
      e.data.profiles[static_cast<size_t>(template_index)];
  const double l_min = p.isolated_latency.value();
  const double l_max = p.spoiler_latency.at(mpl).value();

  Rng rng(e.seed ^ static_cast<uint64_t>(template_index * 131 + mpl));
  std::vector<double> observed, predicted;
  for (const FoldSplit& split : KFoldSplits(set->cqi.size(), folds, &rng)) {
    std::vector<units::Cqi> x;
    std::vector<units::ContinuumPoint> y;
    for (size_t i : split.train) {
      x.push_back(set->cqi[i]);
      y.push_back(set->continuum[i]);
    }
    auto model = FitQsModel(x, y);
    if (!model.ok()) continue;
    for (size_t i : split.test) {
      observed.push_back(set->latency[i].value());
      predicted.push_back(
          model->PredictContinuum(set->cqi[i]).value() * (l_max - l_min) +
          l_min);
    }
  }
  if (observed.empty()) return std::nullopt;
  return MeanRelativeError(observed, predicted);
}

/// Workload-wide k-fold QS MRE at one MPL (mean over templates).
inline double WorkloadQsMre(const Experiment& e, int mpl, CqiVariant variant) {
  SummaryStats stats;
  for (size_t t = 0; t < e.data.profiles.size(); ++t) {
    auto mre = KFoldQsMre(e, static_cast<int>(t), mpl, variant);
    if (mre.has_value()) stats.Add(*mre);
  }
  return stats.mean();
}

/// A training view with one set of templates held out: profiles reindexed,
/// observations touching held-out templates dropped.
struct HeldOutView {
  std::vector<TemplateProfile> profiles;
  std::vector<MixObservation> observations;
  /// Maps original template index -> reindexed position (-1 if held out).
  std::vector<int> remap;
};

inline HeldOutView MakeHeldOutView(const Experiment& e,
                                   const std::vector<int>& held_out) {
  HeldOutView view;
  view.remap.assign(e.data.profiles.size(), -1);
  auto is_held = [&](int idx) {
    for (int h : held_out) {
      if (h == idx) return true;
    }
    return false;
  };
  int next = 0;
  for (const TemplateProfile& p : e.data.profiles) {
    if (is_held(p.template_index)) continue;
    TemplateProfile copy = p;
    view.remap[static_cast<size_t>(p.template_index)] = next;
    copy.template_index = next++;
    view.profiles.push_back(std::move(copy));
  }
  for (const MixObservation& o : e.data.observations) {
    bool touches = is_held(o.primary_index);
    for (int c : o.concurrent_indices) touches |= is_held(c);
    if (touches) continue;
    MixObservation copy = o;
    copy.primary_index = view.remap[static_cast<size_t>(o.primary_index)];
    for (int& c : copy.concurrent_indices) {
      c = view.remap[static_cast<size_t>(c)];
    }
    view.observations.push_back(std::move(copy));
  }
  return view;
}

/// Predicts every observation of `held` (skipping mixes whose partners are
/// also held out) with the given per-observation prediction function and
/// returns the MRE. The callback receives the remapped concurrent indices.
template <typename PredictFn>
std::optional<double> HeldOutMre(const Experiment& e, const HeldOutView& view,
                                 int held, int mpl, PredictFn&& predict) {
  std::vector<double> observed, predicted;
  for (const MixObservation& o : e.data.observations) {
    if (o.primary_index != held || o.mpl != mpl) continue;
    std::vector<int> conc;
    bool usable = true;
    for (int c : o.concurrent_indices) {
      const int mapped = view.remap[static_cast<size_t>(c)];
      if (mapped < 0) {
        usable = false;
        break;
      }
      conc.push_back(mapped);
    }
    if (!usable) continue;
    StatusOr<units::Seconds> pred = predict(conc);
    if (!pred.ok()) continue;
    observed.push_back(o.latency.value());
    predicted.push_back(pred->value());
  }
  if (observed.empty()) return std::nullopt;
  return MeanRelativeError(observed, predicted);
}

}  // namespace contender::bench

#endif  // CONTENDER_BENCH_BENCH_SUPPORT_H_

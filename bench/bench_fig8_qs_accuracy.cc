// Reproduces paper Figure 8: latency MRE at MPL 2–5 for
//   Known-Templates : per-template QS models, k-fold CV over mixes;
//   Unknown-Y       : new template keeps its measured slope, intercept
//                     transferred from the slope (Fig. 4 relationship);
//   Unknown-QS      : full Contender transfer — slope regressed from
//                     isolated latency, intercept from slope.
// New-template evaluation uses 5-fold cross-validation over templates
// (train on 20, predict the held-out 5), as in §6.3.
//
// Paper values: Known 19%, Unknown-Y 23%, Unknown-QS 25% on average.

#include "bench_support.h"

int main(int argc, char** argv) {
  using namespace contender;
  using bench::HeldOutMre;
  using bench::MakeHeldOutView;

  Flags flags(argc, argv);
  bench::Experiment e = bench::CollectExperiment(flags);
  const int n = e.workload.size();

  std::cout << "=== Figure 8: latency MRE for known and unknown templates "
               "===\n\n";

  // Template folds (k = 5).
  Rng fold_rng(e.seed ^ 0xf01d);
  std::vector<int> order = fold_rng.Permutation(n);
  std::vector<std::vector<int>> folds(5);
  for (int i = 0; i < n; ++i) folds[static_cast<size_t>(i % 5)].push_back(order[static_cast<size_t>(i)]);

  // Own-slope models (for Unknown-Y) from the full data.
  std::map<int, std::map<int, QsModel>> own_models;  // mpl -> template -> QS
  for (int mpl : {2, 3, 4, 5}) {
    auto models = FitReferenceModels(e.data.profiles, e.data.scan_times,
                                     e.data.observations, units::Mpl(mpl));
    CONTENDER_CHECK(models.ok());
    own_models[mpl] = std::move(*models);
  }

  TablePrinter table({"MPL", "Known-Templates", "Unknown-Y", "Unknown-QS",
                      "Unknown-QS*"});
  SummaryStats known_all, unky_all, unkqs_all, unkqs2_all;
  for (int mpl : {2, 3, 4, 5}) {
    // Known templates: k-fold CV within each template's observations.
    SummaryStats known;
    for (int t = 0; t < n; ++t) {
      auto mre = bench::KFoldQsMre(e, t, mpl, CqiVariant::kFull);
      if (mre.has_value()) known.Add(*mre);
    }

    // Unknown templates: leave-fold-out transfer.
    SummaryStats unknown_y, unknown_qs, unknown_qs2;
    for (const std::vector<int>& held_fold : folds) {
      bench::HeldOutView view = MakeHeldOutView(e, held_fold);
      ContenderPredictor::Options opts;
      opts.mpls = {mpl};
      auto predictor = ContenderPredictor::Train(
          view.profiles, e.data.scan_times, view.observations, opts);
      if (!predictor.ok()) continue;
      // Ablation: slope transferred from inverse spoiler slowdown.
      ContenderPredictor::Options opts2 = opts;
      opts2.transfer_feature = TransferFeature::kInverseSpoilerSlowdown;
      auto predictor2 = ContenderPredictor::Train(
          view.profiles, e.data.scan_times, view.observations, opts2);
      if (!predictor2.ok()) continue;

      for (int held : held_fold) {
        const TemplateProfile& target =
            e.data.profiles[static_cast<size_t>(held)];
        // Unknown-QS: full transfer through the predictor.
        auto qs_mre = HeldOutMre(
            e, view, held, mpl, [&](const std::vector<int>& conc) {
              return predictor->PredictNew(target, conc,
                                           SpoilerSource::kMeasured);
            });
        if (qs_mre.has_value()) unknown_qs.Add(*qs_mre);
        auto qs2_mre = HeldOutMre(
            e, view, held, mpl, [&](const std::vector<int>& conc) {
              return predictor2->PredictNew(target, conc,
                                            SpoilerSource::kMeasured);
            });
        if (qs2_mre.has_value()) unknown_qs2.Add(*qs2_mre);
        // Unknown-Y: own measured slope, transferred intercept.
        auto own_it = own_models[mpl].find(held);
        if (own_it == own_models[mpl].end()) continue;
        const double own_slope = own_it->second.slope;
        auto y_mre = HeldOutMre(
            e, view, held, mpl, [&](const std::vector<int>& conc) {
              return predictor->PredictNewWithKnownSlope(
                  target, conc, own_slope, SpoilerSource::kMeasured);
            });
        if (y_mre.has_value()) unknown_y.Add(*y_mre);
      }
    }
    known_all.Add(known.mean());
    unky_all.Add(unknown_y.mean());
    unkqs_all.Add(unknown_qs.mean());
    unkqs2_all.Add(unknown_qs2.mean());
    table.AddRow({std::to_string(mpl), FormatPercent(known.mean()),
                  FormatPercent(unknown_y.mean()),
                  FormatPercent(unknown_qs.mean()),
                  FormatPercent(unknown_qs2.mean())});
  }
  table.AddRow({"Avg", FormatPercent(known_all.mean()),
                FormatPercent(unky_all.mean()),
                FormatPercent(unkqs_all.mean()),
                FormatPercent(unkqs2_all.mean())});
  table.Print(std::cout);

  std::cout << "\nPaper: Known 19%, Unknown-Y 23%, Unknown-QS 25%.\n"
               "Expected shape: Known <= Unknown-Y <= Unknown-QS (transfer "
               "adds error).\n"
               "Unknown-QS* is a library ablation: the slope transferred "
               "from inverse spoiler slowdown (1/(lmax/lmin - 1)) instead "
               "of isolated latency; on the simulated substrate this "
               "feature tracks sensitivity better (see Table 3 bench).\n";
  return 0;
}

// Microbenchmarks (google-benchmark) for the hot paths of the library:
// the fluid engine, steady-state mix execution, CQI computation, QS
// fitting, spoiler prediction, and LHS generation.

#include <benchmark/benchmark.h>

#include "core/cqi.h"
#include "core/qs_model.h"
#include "core/spoiler_model.h"
#include "math/regression.h"
#include "ml/lhs.h"
#include "sim/engine.h"
#include "sim/spoiler.h"
#include "util/logging.h"
#include "workload/sampler.h"
#include "workload/steady_state.h"
#include "workload/workload.h"

namespace contender {
namespace {

const Workload& BenchWorkload() {
  static const Workload* w = new Workload(Workload::Paper());
  return *w;
}

const TrainingData& BenchData() {
  static const TrainingData* data = [] {
    WorkloadSampler::Options options;
    WorkloadSampler sampler(&BenchWorkload(), sim::SimConfig{}, options);
    auto collected = sampler.CollectAll();
    CONTENDER_CHECK(collected.ok());
    return new TrainingData(std::move(*collected));
  }();
  return *data;
}

void BM_IsolatedQueryExecution(benchmark::State& state) {
  const Workload& w = BenchWorkload();
  const int idx = static_cast<int>(state.range(0));
  sim::SimConfig config;
  uint64_t seed = 1;
  for (auto _ : state) {
    sim::Engine engine(config, seed++);
    const int pid = engine.AddProcess(w.InstantiateNominal(idx), units::Seconds(0.0));
    CONTENDER_CHECK(engine.Run().ok());
    benchmark::DoNotOptimize(engine.result(pid).latency());
  }
}
BENCHMARK(BM_IsolatedQueryExecution)->Arg(0)->Arg(6)->Arg(21);

void BM_SpoilerRun(benchmark::State& state) {
  const Workload& w = BenchWorkload();
  const int mpl = static_cast<int>(state.range(0));
  sim::SimConfig config;
  uint64_t seed = 1;
  for (auto _ : state) {
    sim::Engine engine(config, seed++);
    for (const auto& s : sim::MakeSpoiler(config, units::Mpl(mpl))) {
      engine.AddProcess(s, units::Seconds(0.0));
    }
    const int pid = engine.AddProcess(w.InstantiateNominal(0), units::Seconds(0.0));
    CONTENDER_CHECK(engine.RunUntilProcessCompletes(pid).ok());
    benchmark::DoNotOptimize(engine.result(pid).latency());
  }
}
BENCHMARK(BM_SpoilerRun)->Arg(2)->Arg(5);

void BM_SteadyStateMix(benchmark::State& state) {
  const Workload& w = BenchWorkload();
  const int mpl = static_cast<int>(state.range(0));
  sim::SimConfig config;
  SteadyStateOptions opts;
  uint64_t seed = 1;
  std::vector<int> mix;
  for (int i = 0; i < mpl; ++i) mix.push_back(i * 3 % w.size());
  for (auto _ : state) {
    opts.seed = seed++;
    auto result = RunSteadyState(w, mix, config, opts);
    CONTENDER_CHECK(result.ok());
    benchmark::DoNotOptimize(result->duration);
  }
}
BENCHMARK(BM_SteadyStateMix)->Arg(2)->Arg(5);

void BM_ComputeCqi(benchmark::State& state) {
  const TrainingData& data = BenchData();
  const std::vector<int> concurrent = {1, 5, 9, 13};
  for (auto _ : state) {
    auto cqi = ComputeCqi(data.profiles, data.scan_times, 0, concurrent,
                          CqiVariant::kFull);
    benchmark::DoNotOptimize(cqi.ok());
  }
}
BENCHMARK(BM_ComputeCqi);

void BM_FitReferenceModels(benchmark::State& state) {
  const TrainingData& data = BenchData();
  for (auto _ : state) {
    auto models = FitReferenceModels(data.profiles, data.scan_times,
                                     data.observations, units::Mpl(4));
    benchmark::DoNotOptimize(models.ok());
  }
}
BENCHMARK(BM_FitReferenceModels);

void BM_KnnSpoilerPredict(benchmark::State& state) {
  const TrainingData& data = BenchData();
  KnnSpoilerPredictor::Options opts;
  auto predictor = KnnSpoilerPredictor::Fit(data.profiles, opts);
  CONTENDER_CHECK(predictor.ok());
  for (auto _ : state) {
    auto lmax = predictor->Predict(data.profiles[7], units::Mpl(4));
    benchmark::DoNotOptimize(lmax.ok());
  }
}
BENCHMARK(BM_KnnSpoilerPredict);

void BM_LatinHypercube(benchmark::State& state) {
  Rng rng(3);
  const int mpl = static_cast<int>(state.range(0));
  for (auto _ : state) {
    auto mixes = LatinHypercubeSample(25, mpl, &rng);
    benchmark::DoNotOptimize(mixes.ok());
  }
}
BENCHMARK(BM_LatinHypercube)->Arg(2)->Arg(5);

void BM_SimpleLinearFit(benchmark::State& state) {
  Rng rng(5);
  std::vector<double> x, y;
  for (int i = 0; i < 64; ++i) {
    x.push_back(rng.Uniform01());
    y.push_back(2.0 * x.back() + rng.Normal(0.0, 0.1));
  }
  for (auto _ : state) {
    auto fit = FitSimpleLinear(x, y);
    benchmark::DoNotOptimize(fit.ok());
  }
}
BENCHMARK(BM_SimpleLinearFit);

}  // namespace
}  // namespace contender

BENCHMARK_MAIN();

// Reproduces paper Figure 3: relative error of the KCCA and SVM baselines
// at MPL 2 when predicting *new* templates (leave-one-template-out over the
// 17-template subset the paper uses, having dropped templates whose
// features appear in no other template).
//
// Paper shape: both learners degrade badly on unseen templates — errors
// far above their static-workload figures, motivating Contender.

#include "bench_support.h"

#include "core/ml_baseline.h"

int main(int argc, char** argv) {
  using namespace contender;

  Flags flags(argc, argv);
  bench::Experiment e = bench::CollectExperiment(flags);

  // The paper's 17-template subset (Fig. 3 x-axis).
  const std::vector<int> subset_ids = {2,  15, 17, 20, 22, 25, 26, 27, 32,
                                       46, 56, 60, 61, 65, 71, 79, 82};

  std::vector<MixObservation> mpl2;
  for (const MixObservation& o : e.data.observations) {
    if (o.mpl == 2) mpl2.push_back(o);
  }
  MlDataset data = BuildMlDataset(e.workload, mpl2);

  std::cout << "=== Figure 3: ML baselines on new templates (MPL 2, "
               "leave-one-template-out) ===\n\n";
  TablePrinter table({"Template", "KCCA", "SVM"});
  SummaryStats kcca_avg, svm_avg;
  std::vector<std::vector<std::string>> rows;
  for (int id : subset_ids) {
    const int idx = e.workload.IndexOfId(id);
    CONTENDER_CHECK(idx >= 0);
    auto result = EvaluateNewTemplateMl(e.workload, data, idx, e.seed);
    CONTENDER_CHECK(result.ok()) << result.status();
    kcca_avg.Add(result->kcca_mre);
    svm_avg.Add(result->svm_mre);
    rows.push_back({"q" + std::to_string(id),
                    FormatPercent(result->kcca_mre),
                    FormatPercent(result->svm_mre)});
  }
  table.AddRow({"Avg", FormatPercent(kcca_avg.mean()),
                FormatPercent(svm_avg.mean())});
  for (auto& row : rows) table.AddRow(std::move(row));
  table.Print(std::cout);

  std::cout << "\nPaper shape: errors on unseen templates greatly exceed "
               "the static figures (KCCA 32% / SVM 21%); several templates "
               "exceed 50-100% error. Neither learner generalizes across "
               "plan structures.\n";
  return 0;
}

// The paper's motivating application (§1): admission control for concurrent
// analytical workloads driven by CQPP. Trains Contender, generates one
// deterministic arrival stream over the TPC-DS-like workload, and executes
// it under every admission policy at MPL 2-5, reporting makespan, response
// percentiles, SLA misses and per-admission prediction error. The headline:
// the greedy contention-aware policy beats FIFO on makespan and p95 at
// every MPL using nothing but the predictor's in-mix latency estimates.
//
//   ./build/bench/bench_scheduler [--seed=42] [--requests=32]
//       [--mean_interarrival=25] [--deadline_probability=0.5]
//
// Also property-checks determinism: re-running a policy with a fresh
// (cold) oracle and with a warm shared oracle must produce bit-identical
// schedules.

#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "bench_json.h"
#include "bench_support.h"
#include "sched/metrics.h"
#include "sched/mix_oracle.h"
#include "sched/policy.h"
#include "sched/request.h"
#include "sched/simulator.h"

using namespace contender;
using namespace contender::sched;

namespace {

bool SameSchedule(const ScheduleResult& a, const ScheduleResult& b) {
  if (a.makespan != b.makespan || a.outcomes.size() != b.outcomes.size()) {
    return false;
  }
  for (size_t i = 0; i < a.outcomes.size(); ++i) {
    const RequestOutcome& x = a.outcomes[i];
    const RequestOutcome& y = b.outcomes[i];
    if (x.admit_time != y.admit_time ||
        x.completion_time != y.completion_time ||
        x.predicted_latency != y.predicted_latency ||
        x.missed_deadline != y.missed_deadline) {
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Flags flags(argc, argv);
  std::cout << "Training Contender on the TPC-DS-like workload...\n";
  bench::Experiment e = bench::CollectExperiment(flags);
  auto predictor =
      ContenderPredictor::Train(e.data.profiles, e.data.scan_times,
                                e.data.observations, {});
  CONTENDER_CHECK(predictor.ok()) << predictor.status();

  std::vector<units::Seconds> reference;
  for (const TemplateProfile& p : e.data.profiles) {
    reference.push_back(p.isolated_latency);
  }
  ArrivalOptions arrivals;
  arrivals.num_requests =
      static_cast<int>(flags.GetInt("requests", 32));
  arrivals.mean_interarrival =
      units::Seconds(flags.GetDouble("mean_interarrival", 25.0));
  arrivals.deadline_probability =
      flags.GetDouble("deadline_probability", 0.5);
  arrivals.min_slack = flags.GetDouble("min_slack", 3.0);
  arrivals.max_slack = flags.GetDouble("max_slack", 10.0);
  arrivals.seed = e.seed;
  auto generated = GenerateArrivals(reference, arrivals);
  CONTENDER_CHECK(generated.ok()) << generated.status();
  const std::vector<Request> requests = std::move(*generated);
  std::cout << "Arrival stream: " << requests.size() << " requests, mean "
            << "interarrival " << FormatDouble(
                   arrivals.mean_interarrival.value(), 0)
            << " s, deadlines on "
            << FormatPercent(arrivals.deadline_probability, 0)
            << " of requests\n\n";

  const bool check_wins = flags.GetBool("check", true);
  ScheduleSimulator simulator(&e.workload, e.config);
  TablePrinter table({"Policy", "MPL", "Makespan", "Mean wait", "p95 resp",
                      "p99 resp", "SLA miss", "Pred err"});
  MixOracle shared_oracle(&*predictor);
  bench::Json runs = bench::Json::Array();

  for (int mpl : {2, 3, 4, 5}) {
    ScheduleOptions options;
    options.target_mpl = mpl;
    options.seed = e.seed;
    ScheduleMetrics fifo_metrics;
    ScheduleMetrics greedy_metrics;
    for (PolicyKind kind : AllPolicyKinds()) {
      auto policy = MakePolicy(kind);
      auto result =
          simulator.Run(requests, policy.get(), &shared_oracle, options);
      CONTENDER_CHECK(result.ok()) << result.status();

      // Determinism property: a cold private oracle and the warm shared
      // one must yield bit-identical schedules.
      MixOracle cold(&*predictor);
      auto replay = simulator.Run(requests, policy.get(), &cold, options);
      CONTENDER_CHECK(replay.ok()) << replay.status();
      CONTENDER_CHECK(SameSchedule(*result, *replay))
          << "cold/warm oracle divergence for " << policy->name()
          << " at MPL " << mpl;

      const ScheduleMetrics m = ComputeScheduleMetrics(*result);
      if (kind == PolicyKind::kFifo) fifo_metrics = m;
      if (kind == PolicyKind::kGreedyContention) greedy_metrics = m;
      table.AddRow({policy->name(), std::to_string(mpl),
                    FormatDouble(m.makespan.value(), 0) + " s",
                    FormatDouble(m.mean_queue_wait.value(), 0) + " s",
                    FormatDouble(m.p95_response.value(), 0) + " s",
                    FormatDouble(m.p99_response.value(), 0) + " s",
                    FormatPercent(m.sla_miss_rate, 0),
                    FormatPercent(m.mean_prediction_error, 1)});
      runs.Append(bench::Json::Object()
                      .Set("policy", policy->name())
                      .Set("mpl", mpl)
                      .Set("makespan_s", m.makespan.value())
                      .Set("mean_queue_wait_s", m.mean_queue_wait.value())
                      .Set("p95_response_s", m.p95_response.value())
                      .Set("p99_response_s", m.p99_response.value())
                      .Set("sla_miss_rate", m.sla_miss_rate)
                      .Set("mean_prediction_error",
                           m.mean_prediction_error));
    }
    if (check_wins) {
      CONTENDER_CHECK(greedy_metrics.makespan < fifo_metrics.makespan)
          << "greedy-contention lost on makespan at MPL " << mpl;
      CONTENDER_CHECK(greedy_metrics.p95_response <
                      fifo_metrics.p95_response)
          << "greedy-contention lost on p95 at MPL " << mpl;
    }
  }
  table.Print(std::cout);

  std::cout << "\nOracle: " << shared_oracle.hits() << " hits / "
            << shared_oracle.misses() << " misses ("
            << shared_oracle.size() << " cached mixes, "
            << shared_oracle.fallbacks() << " fallbacks)\n";
  if (check_wins) {
    std::cout << "Greedy contention-aware beats FIFO on makespan and p95 "
                 "latency at every MPL (checked).\n";
  }

  const std::string json_path = flags.GetString("json", "BENCH_sched.json");
  bench::Json root = bench::Json::Object();
  root.Set("bench", "scheduler")
      .Set("seed", e.seed)
      .Set("requests", static_cast<uint64_t>(requests.size()))
      .Set("mean_interarrival_s", arrivals.mean_interarrival.value())
      .Set("deadline_probability", arrivals.deadline_probability)
      .Set("runs", runs)
      .Set("oracle", bench::Json::Object()
                         .Set("hits", shared_oracle.hits())
                         .Set("misses", shared_oracle.misses())
                         .Set("fallbacks", shared_oracle.fallbacks()));
  bench::WriteJsonFile(json_path, root);
  std::cout << "Wrote " << json_path << "\n";
  return 0;
}

// Reproduces paper Figure 6: spoiler latency under increasing concurrency
// level for the three template categories — light/CPU-mixed (q62), I/O-bound
// with small intermediates (q71), and memory-bound (q22) — plus the §5.5
// linearity check: growth models trained on MPLs 1–3 predict MPLs 4–5.
//
// Paper shape: all three grow ~linearly; q22 grows far fastest (swapping),
// q62 slowest; extrapolation error ~8% on average.

#include "bench_support.h"

#include "core/spoiler_model.h"

int main(int argc, char** argv) {
  using namespace contender;

  Flags flags(argc, argv);
  bench::Experiment e = bench::CollectExperiment(flags);

  std::cout << "=== Figure 6: spoiler latency vs multiprogramming level "
               "===\n\n";
  TablePrinter table({"Template", "MPL 1 (iso)", "MPL 2", "MPL 3", "MPL 4",
                      "MPL 5", "Slowdown@5"});
  for (int id : {62, 71, 22}) {
    const int idx = e.workload.IndexOfId(id);
    const TemplateProfile& p = e.data.profiles[static_cast<size_t>(idx)];
    std::vector<std::string> row = {"q" + std::to_string(id),
                                    FormatDouble(p.isolated_latency.value(), 0)};
    for (int mpl : {2, 3, 4, 5}) {
      row.push_back(FormatDouble(p.spoiler_latency.at(mpl).value(), 0));
    }
    row.push_back(FormatDouble(
        p.spoiler_latency.at(5) / p.isolated_latency, 1) + "x");
    table.AddRow(row);
  }
  table.Print(std::cout);

  // §5.5 linearity: train on MPL 1-3, test on 4-5, across all templates.
  std::vector<double> observed, predicted;
  SummaryStats r2;
  for (const TemplateProfile& p : e.data.profiles) {
    auto model = FitSpoilerGrowth(p, {1, 2, 3});
    if (!model.ok()) continue;
    r2.Add(model->r_squared);
    for (int mpl : {4, 5}) {
      observed.push_back(p.spoiler_latency.at(mpl).value());
      predicted.push_back(
          model->PredictLatency(units::Mpl(mpl), p.isolated_latency).value());
    }
  }
  std::cout << "\nLinear extrapolation (fit MPL 1-3 -> predict MPL 4-5): MRE "
            << FormatPercent(MeanRelativeError(observed, predicted))
            << " over " << e.data.profiles.size()
            << " templates (mean fit R^2 "
            << FormatDouble(r2.mean(), 2) << ")\n";
  std::cout << "Paper: spoiler latency predicted within ~8% from the MPL "
               "using a per-template linear model.\n";
  return 0;
}

// Reproduces paper Figure 7: per-template relative error of the CQI-based
// QS model at MPL 4 for known templates (k-fold cross-validation).
//
// Paper shape: ~19% on average; extremely I/O-bound templates (26, 33, 61,
// 71) within ~10%; random-I/O templates (17, 25, 32) around 23%; the
// memory-intensive templates (2, 22) worst.

#include "bench_support.h"

int main(int argc, char** argv) {
  using namespace contender;

  Flags flags(argc, argv);
  const int mpl = static_cast<int>(flags.GetInt("mpl", 4));
  bench::Experiment e = bench::CollectExperiment(flags);

  std::cout << "=== Figure 7: per-template prediction error at MPL " << mpl
            << " (CQI-only model) ===\n\n";

  TablePrinter table({"Template", "MRE", "p_t", "Working set (MB)"});
  SummaryStats avg;
  std::vector<std::pair<int, double>> rows;
  for (size_t t = 0; t < e.data.profiles.size(); ++t) {
    auto mre = bench::KFoldQsMre(e, static_cast<int>(t), mpl,
                                 CqiVariant::kFull);
    if (!mre.has_value()) continue;
    avg.Add(*mre);
    rows.emplace_back(static_cast<int>(t), *mre);
  }
  table.AddRow({"Avg", FormatPercent(avg.mean()), "", ""});
  for (const auto& [t, mre] : rows) {
    const TemplateProfile& p = e.data.profiles[static_cast<size_t>(t)];
    table.AddRow({"q" + std::to_string(p.template_id), FormatPercent(mre),
                  FormatDouble(p.io_fraction.value(), 2),
                  FormatDouble(p.working_set_bytes.value() / 1e6, 0)});
  }
  table.Print(std::cout);

  // The paper's per-class observations.
  auto class_mean = [&](std::initializer_list<int> ids) {
    SummaryStats s;
    for (const auto& [t, mre] : rows) {
      const int id = e.data.profiles[static_cast<size_t>(t)].template_id;
      for (int want : ids) {
        if (id == want) s.Add(mre);
      }
    }
    return s.mean();
  };
  std::cout << "\nI/O-bound (26, 33, 61, 71):    "
            << FormatPercent(class_mean({26, 33, 61, 71})) << "\n";
  std::cout << "Random I/O (17, 25, 32):       "
            << FormatPercent(class_mean({17, 25, 32})) << "\n";
  std::cout << "Memory-intensive (2, 22):      "
            << FormatPercent(class_mean({2, 22})) << "\n";
  std::cout << "\nPaper: avg ~19%; I/O-bound <= 10%; random I/O ~23%; "
               "memory-intensive highest.\n";
  return 0;
}

// Reproduces paper Table 3: signed R^2 of simple linear regressions
// correlating template features with the y-intercept and slope of the QS
// models (MPL 2 reference models).
//
// Paper values (intercept / slope): I/O time 0.18/-0.05, working set
// -0.24/0.11, plan steps 0.31/-0.29, records 0.12/-0.22, isolated latency
// 0.36/-0.51, spoiler latency 0.27/-0.49, spoiler slowdown 0.08/-0.24.
// Key shape: isolated latency is the strongest (negative) predictor of the
// slope, which is why Contender transfers µ from l_min.

#include "bench_support.h"

#include "core/qs_transfer.h"

int main(int argc, char** argv) {
  using namespace contender;

  Flags flags(argc, argv);
  const int mpl = static_cast<int>(flags.GetInt("mpl", 2));
  bench::Experiment e = bench::CollectExperiment(flags);

  auto models = FitReferenceModels(e.data.profiles, e.data.scan_times,
                                   e.data.observations, units::Mpl(mpl));
  CONTENDER_CHECK(models.ok()) << models.status();

  std::cout << "=== Table 3: template features vs QS coefficients "
               "(signed R^2, MPL " << mpl << ") ===\n\n";
  TablePrinter table({"Query Template Feature", "Y-Intercept b", "Slope u"});
  for (const FeatureCorrelation& fc :
       CorrelateFeaturesWithQs(e.data.profiles, *models, units::Mpl(mpl))) {
    table.AddRow({fc.feature, FormatDouble(fc.r2_intercept, 2),
                  FormatDouble(fc.r2_slope, 2)});
  }
  table.Print(std::cout);

  std::cout << "\nPaper shape: 'Isolated latency' has the largest-magnitude "
               "correlation with the slope (negative: lighter queries are "
               "more sensitive to contention).\n";
  return 0;
}

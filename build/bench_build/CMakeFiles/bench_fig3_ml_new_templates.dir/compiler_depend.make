# Empty compiler generated dependencies file for bench_fig3_ml_new_templates.
# This may be replaced when dependencies are built.

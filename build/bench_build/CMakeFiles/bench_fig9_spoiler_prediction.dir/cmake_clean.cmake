file(REMOVE_RECURSE
  "../bench/bench_fig9_spoiler_prediction"
  "../bench/bench_fig9_spoiler_prediction.pdb"
  "CMakeFiles/bench_fig9_spoiler_prediction.dir/bench_fig9_spoiler_prediction.cc.o"
  "CMakeFiles/bench_fig9_spoiler_prediction.dir/bench_fig9_spoiler_prediction.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig9_spoiler_prediction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig9_spoiler_prediction.
# This may be replaced when dependencies are built.

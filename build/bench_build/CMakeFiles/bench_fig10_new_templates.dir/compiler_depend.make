# Empty compiler generated dependencies file for bench_fig10_new_templates.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_fig10_new_templates"
  "../bench/bench_fig10_new_templates.pdb"
  "CMakeFiles/bench_fig10_new_templates.dir/bench_fig10_new_templates.cc.o"
  "CMakeFiles/bench_fig10_new_templates.dir/bench_fig10_new_templates.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_new_templates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

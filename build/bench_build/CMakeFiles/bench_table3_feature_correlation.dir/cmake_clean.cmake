file(REMOVE_RECURSE
  "../bench/bench_table3_feature_correlation"
  "../bench/bench_table3_feature_correlation.pdb"
  "CMakeFiles/bench_table3_feature_correlation.dir/bench_table3_feature_correlation.cc.o"
  "CMakeFiles/bench_table3_feature_correlation.dir/bench_table3_feature_correlation.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_feature_correlation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

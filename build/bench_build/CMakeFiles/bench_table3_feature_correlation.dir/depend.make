# Empty dependencies file for bench_table3_feature_correlation.
# This may be replaced when dependencies are built.

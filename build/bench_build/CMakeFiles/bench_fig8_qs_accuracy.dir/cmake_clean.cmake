file(REMOVE_RECURSE
  "../bench/bench_fig8_qs_accuracy"
  "../bench/bench_fig8_qs_accuracy.pdb"
  "CMakeFiles/bench_fig8_qs_accuracy.dir/bench_fig8_qs_accuracy.cc.o"
  "CMakeFiles/bench_fig8_qs_accuracy.dir/bench_fig8_qs_accuracy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_qs_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig8_qs_accuracy.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "../bench/bench_table2_cqi_variants"
  "../bench/bench_table2_cqi_variants.pdb"
  "CMakeFiles/bench_table2_cqi_variants.dir/bench_table2_cqi_variants.cc.o"
  "CMakeFiles/bench_table2_cqi_variants.dir/bench_table2_cqi_variants.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_cqi_variants.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

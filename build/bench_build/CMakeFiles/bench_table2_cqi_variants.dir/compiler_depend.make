# Empty compiler generated dependencies file for bench_table2_cqi_variants.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_sampling_cost.
# This may be replaced when dependencies are built.

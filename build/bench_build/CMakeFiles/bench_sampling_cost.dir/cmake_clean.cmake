file(REMOVE_RECURSE
  "../bench/bench_sampling_cost"
  "../bench/bench_sampling_cost.pdb"
  "CMakeFiles/bench_sampling_cost.dir/bench_sampling_cost.cc.o"
  "CMakeFiles/bench_sampling_cost.dir/bench_sampling_cost.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sampling_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

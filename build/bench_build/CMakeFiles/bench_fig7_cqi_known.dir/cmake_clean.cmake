file(REMOVE_RECURSE
  "../bench/bench_fig7_cqi_known"
  "../bench/bench_fig7_cqi_known.pdb"
  "CMakeFiles/bench_fig7_cqi_known.dir/bench_fig7_cqi_known.cc.o"
  "CMakeFiles/bench_fig7_cqi_known.dir/bench_fig7_cqi_known.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig7_cqi_known.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_fig7_cqi_known.
# This may be replaced when dependencies are built.

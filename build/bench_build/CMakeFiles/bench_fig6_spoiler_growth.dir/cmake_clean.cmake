file(REMOVE_RECURSE
  "../bench/bench_fig6_spoiler_growth"
  "../bench/bench_fig6_spoiler_growth.pdb"
  "CMakeFiles/bench_fig6_spoiler_growth.dir/bench_fig6_spoiler_growth.cc.o"
  "CMakeFiles/bench_fig6_spoiler_growth.dir/bench_fig6_spoiler_growth.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig6_spoiler_growth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_fig6_spoiler_growth.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for bench_sec3_static_ml.
# This may be replaced when dependencies are built.

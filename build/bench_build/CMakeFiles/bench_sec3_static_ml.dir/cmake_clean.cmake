file(REMOVE_RECURSE
  "../bench/bench_sec3_static_ml"
  "../bench/bench_sec3_static_ml.pdb"
  "CMakeFiles/bench_sec3_static_ml.dir/bench_sec3_static_ml.cc.o"
  "CMakeFiles/bench_sec3_static_ml.dir/bench_sec3_static_ml.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_sec3_static_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "../bench/bench_fig4_qs_coefficients"
  "../bench/bench_fig4_qs_coefficients.pdb"
  "CMakeFiles/bench_fig4_qs_coefficients.dir/bench_fig4_qs_coefficients.cc.o"
  "CMakeFiles/bench_fig4_qs_coefficients.dir/bench_fig4_qs_coefficients.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_qs_coefficients.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

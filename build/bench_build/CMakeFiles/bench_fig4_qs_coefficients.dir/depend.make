# Empty dependencies file for bench_fig4_qs_coefficients.
# This may be replaced when dependencies are built.

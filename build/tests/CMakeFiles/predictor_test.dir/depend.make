# Empty dependencies file for predictor_test.
# This may be replaced when dependencies are built.

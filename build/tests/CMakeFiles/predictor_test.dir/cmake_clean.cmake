file(REMOVE_RECURSE
  "CMakeFiles/predictor_test.dir/core/predictor_test.cc.o"
  "CMakeFiles/predictor_test.dir/core/predictor_test.cc.o.d"
  "predictor_test"
  "predictor_test.pdb"
  "predictor_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/predictor_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/plan_compiler_test.dir/workload/plan_compiler_test.cc.o"
  "CMakeFiles/plan_compiler_test.dir/workload/plan_compiler_test.cc.o.d"
  "plan_compiler_test"
  "plan_compiler_test.pdb"
  "plan_compiler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_compiler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

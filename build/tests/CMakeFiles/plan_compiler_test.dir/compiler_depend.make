# Empty compiler generated dependencies file for plan_compiler_test.
# This may be replaced when dependencies are built.

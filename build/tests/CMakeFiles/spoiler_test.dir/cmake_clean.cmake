file(REMOVE_RECURSE
  "CMakeFiles/spoiler_test.dir/sim/spoiler_test.cc.o"
  "CMakeFiles/spoiler_test.dir/sim/spoiler_test.cc.o.d"
  "spoiler_test"
  "spoiler_test.pdb"
  "spoiler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spoiler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for spoiler_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/spoiler_model_test.dir/core/spoiler_model_test.cc.o"
  "CMakeFiles/spoiler_model_test.dir/core/spoiler_model_test.cc.o.d"
  "spoiler_model_test"
  "spoiler_model_test.pdb"
  "spoiler_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spoiler_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for spoiler_model_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/reproduction_test.dir/integration/reproduction_test.cc.o"
  "CMakeFiles/reproduction_test.dir/integration/reproduction_test.cc.o.d"
  "reproduction_test"
  "reproduction_test.pdb"
  "reproduction_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reproduction_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

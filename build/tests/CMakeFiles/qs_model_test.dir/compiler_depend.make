# Empty compiler generated dependencies file for qs_model_test.
# This may be replaced when dependencies are built.

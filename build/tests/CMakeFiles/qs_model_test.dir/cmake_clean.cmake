file(REMOVE_RECURSE
  "CMakeFiles/qs_model_test.dir/core/qs_model_test.cc.o"
  "CMakeFiles/qs_model_test.dir/core/qs_model_test.cc.o.d"
  "qs_model_test"
  "qs_model_test.pdb"
  "qs_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qs_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for knn_test.
# This may be replaced when dependencies are built.

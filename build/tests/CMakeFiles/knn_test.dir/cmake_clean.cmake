file(REMOVE_RECURSE
  "CMakeFiles/knn_test.dir/ml/knn_test.cc.o"
  "CMakeFiles/knn_test.dir/ml/knn_test.cc.o.d"
  "knn_test"
  "knn_test.pdb"
  "knn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/knn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

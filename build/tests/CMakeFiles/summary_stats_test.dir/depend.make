# Empty dependencies file for summary_stats_test.
# This may be replaced when dependencies are built.

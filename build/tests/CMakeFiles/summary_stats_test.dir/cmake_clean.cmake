file(REMOVE_RECURSE
  "CMakeFiles/summary_stats_test.dir/util/summary_stats_test.cc.o"
  "CMakeFiles/summary_stats_test.dir/util/summary_stats_test.cc.o.d"
  "summary_stats_test"
  "summary_stats_test.pdb"
  "summary_stats_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/summary_stats_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/query_plan_test.dir/workload/query_plan_test.cc.o"
  "CMakeFiles/query_plan_test.dir/workload/query_plan_test.cc.o.d"
  "query_plan_test"
  "query_plan_test.pdb"
  "query_plan_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_plan_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/engine_property_test.dir/sim/engine_property_test.cc.o"
  "CMakeFiles/engine_property_test.dir/sim/engine_property_test.cc.o.d"
  "engine_property_test"
  "engine_property_test.pdb"
  "engine_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/engine_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/database_growth_test.dir/integration/database_growth_test.cc.o"
  "CMakeFiles/database_growth_test.dir/integration/database_growth_test.cc.o.d"
  "database_growth_test"
  "database_growth_test.pdb"
  "database_growth_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/database_growth_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

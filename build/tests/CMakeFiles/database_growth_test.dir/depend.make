# Empty dependencies file for database_growth_test.
# This may be replaced when dependencies are built.

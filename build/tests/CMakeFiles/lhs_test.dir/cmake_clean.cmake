file(REMOVE_RECURSE
  "CMakeFiles/lhs_test.dir/ml/lhs_test.cc.o"
  "CMakeFiles/lhs_test.dir/ml/lhs_test.cc.o.d"
  "lhs_test"
  "lhs_test.pdb"
  "lhs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lhs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for lhs_test.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/qs_transfer_test.cc" "tests/CMakeFiles/qs_transfer_test.dir/core/qs_transfer_test.cc.o" "gcc" "tests/CMakeFiles/qs_transfer_test.dir/core/qs_transfer_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/contender_core.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/contender_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/contender_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/contender_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/contender_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/contender_math.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/contender_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty compiler generated dependencies file for qs_transfer_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/qs_transfer_test.dir/core/qs_transfer_test.cc.o"
  "CMakeFiles/qs_transfer_test.dir/core/qs_transfer_test.cc.o.d"
  "qs_transfer_test"
  "qs_transfer_test.pdb"
  "qs_transfer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/qs_transfer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

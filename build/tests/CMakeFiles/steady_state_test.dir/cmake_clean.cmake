file(REMOVE_RECURSE
  "CMakeFiles/steady_state_test.dir/workload/steady_state_test.cc.o"
  "CMakeFiles/steady_state_test.dir/workload/steady_state_test.cc.o.d"
  "steady_state_test"
  "steady_state_test.pdb"
  "steady_state_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/steady_state_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

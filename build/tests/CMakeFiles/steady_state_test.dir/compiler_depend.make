# Empty compiler generated dependencies file for steady_state_test.
# This may be replaced when dependencies are built.

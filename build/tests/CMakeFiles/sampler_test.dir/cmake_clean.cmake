file(REMOVE_RECURSE
  "CMakeFiles/sampler_test.dir/workload/sampler_test.cc.o"
  "CMakeFiles/sampler_test.dir/workload/sampler_test.cc.o.d"
  "sampler_test"
  "sampler_test.pdb"
  "sampler_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sampler_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/cqi_test.dir/core/cqi_test.cc.o"
  "CMakeFiles/cqi_test.dir/core/cqi_test.cc.o.d"
  "cqi_test"
  "cqi_test.pdb"
  "cqi_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cqi_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

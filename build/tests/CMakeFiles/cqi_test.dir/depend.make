# Empty dependencies file for cqi_test.
# This may be replaced when dependencies are built.

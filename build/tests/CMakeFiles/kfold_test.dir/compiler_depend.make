# Empty compiler generated dependencies file for kfold_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/kfold_test.dir/ml/kfold_test.cc.o"
  "CMakeFiles/kfold_test.dir/ml/kfold_test.cc.o.d"
  "kfold_test"
  "kfold_test.pdb"
  "kfold_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kfold_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/plan_features_test.dir/core/plan_features_test.cc.o"
  "CMakeFiles/plan_features_test.dir/core/plan_features_test.cc.o.d"
  "plan_features_test"
  "plan_features_test.pdb"
  "plan_features_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/plan_features_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for ml_baseline_test.
# This may be replaced when dependencies are built.

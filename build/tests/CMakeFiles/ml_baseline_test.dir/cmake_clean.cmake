file(REMOVE_RECURSE
  "CMakeFiles/ml_baseline_test.dir/core/ml_baseline_test.cc.o"
  "CMakeFiles/ml_baseline_test.dir/core/ml_baseline_test.cc.o.d"
  "ml_baseline_test"
  "ml_baseline_test.pdb"
  "ml_baseline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ml_baseline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

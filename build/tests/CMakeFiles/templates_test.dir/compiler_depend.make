# Empty compiler generated dependencies file for templates_test.
# This may be replaced when dependencies are built.

# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for templates_test.

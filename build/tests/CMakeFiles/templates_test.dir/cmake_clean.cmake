file(REMOVE_RECURSE
  "CMakeFiles/templates_test.dir/workload/templates_test.cc.o"
  "CMakeFiles/templates_test.dir/workload/templates_test.cc.o.d"
  "templates_test"
  "templates_test.pdb"
  "templates_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/templates_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

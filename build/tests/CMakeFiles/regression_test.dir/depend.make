# Empty dependencies file for regression_test.
# This may be replaced when dependencies are built.

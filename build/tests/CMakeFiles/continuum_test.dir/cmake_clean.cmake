file(REMOVE_RECURSE
  "CMakeFiles/continuum_test.dir/core/continuum_test.cc.o"
  "CMakeFiles/continuum_test.dir/core/continuum_test.cc.o.d"
  "continuum_test"
  "continuum_test.pdb"
  "continuum_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/continuum_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

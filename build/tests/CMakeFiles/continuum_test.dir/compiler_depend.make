# Empty compiler generated dependencies file for continuum_test.
# This may be replaced when dependencies are built.

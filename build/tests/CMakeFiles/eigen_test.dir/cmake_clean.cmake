file(REMOVE_RECURSE
  "CMakeFiles/eigen_test.dir/math/eigen_test.cc.o"
  "CMakeFiles/eigen_test.dir/math/eigen_test.cc.o.d"
  "eigen_test"
  "eigen_test.pdb"
  "eigen_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/eigen_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

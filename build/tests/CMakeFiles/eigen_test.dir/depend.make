# Empty dependencies file for eigen_test.
# This may be replaced when dependencies are built.

# Empty dependencies file for kcca_test.
# This may be replaced when dependencies are built.

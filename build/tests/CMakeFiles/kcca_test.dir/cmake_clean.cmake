file(REMOVE_RECURSE
  "CMakeFiles/kcca_test.dir/ml/kcca_test.cc.o"
  "CMakeFiles/kcca_test.dir/ml/kcca_test.cc.o.d"
  "kcca_test"
  "kcca_test.pdb"
  "kcca_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/kcca_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for contender_ml.
# This may be replaced when dependencies are built.

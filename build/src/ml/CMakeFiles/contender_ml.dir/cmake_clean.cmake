file(REMOVE_RECURSE
  "CMakeFiles/contender_ml.dir/kcca.cc.o"
  "CMakeFiles/contender_ml.dir/kcca.cc.o.d"
  "CMakeFiles/contender_ml.dir/kfold.cc.o"
  "CMakeFiles/contender_ml.dir/kfold.cc.o.d"
  "CMakeFiles/contender_ml.dir/knn.cc.o"
  "CMakeFiles/contender_ml.dir/knn.cc.o.d"
  "CMakeFiles/contender_ml.dir/lhs.cc.o"
  "CMakeFiles/contender_ml.dir/lhs.cc.o.d"
  "CMakeFiles/contender_ml.dir/svm.cc.o"
  "CMakeFiles/contender_ml.dir/svm.cc.o.d"
  "libcontender_ml.a"
  "libcontender_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contender_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libcontender_ml.a"
)


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/kcca.cc" "src/ml/CMakeFiles/contender_ml.dir/kcca.cc.o" "gcc" "src/ml/CMakeFiles/contender_ml.dir/kcca.cc.o.d"
  "/root/repo/src/ml/kfold.cc" "src/ml/CMakeFiles/contender_ml.dir/kfold.cc.o" "gcc" "src/ml/CMakeFiles/contender_ml.dir/kfold.cc.o.d"
  "/root/repo/src/ml/knn.cc" "src/ml/CMakeFiles/contender_ml.dir/knn.cc.o" "gcc" "src/ml/CMakeFiles/contender_ml.dir/knn.cc.o.d"
  "/root/repo/src/ml/lhs.cc" "src/ml/CMakeFiles/contender_ml.dir/lhs.cc.o" "gcc" "src/ml/CMakeFiles/contender_ml.dir/lhs.cc.o.d"
  "/root/repo/src/ml/svm.cc" "src/ml/CMakeFiles/contender_ml.dir/svm.cc.o" "gcc" "src/ml/CMakeFiles/contender_ml.dir/svm.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/math/CMakeFiles/contender_math.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/contender_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

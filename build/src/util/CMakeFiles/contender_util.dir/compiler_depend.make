# Empty compiler generated dependencies file for contender_util.
# This may be replaced when dependencies are built.

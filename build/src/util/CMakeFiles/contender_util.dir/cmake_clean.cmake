file(REMOVE_RECURSE
  "CMakeFiles/contender_util.dir/flags.cc.o"
  "CMakeFiles/contender_util.dir/flags.cc.o.d"
  "CMakeFiles/contender_util.dir/logging.cc.o"
  "CMakeFiles/contender_util.dir/logging.cc.o.d"
  "CMakeFiles/contender_util.dir/random.cc.o"
  "CMakeFiles/contender_util.dir/random.cc.o.d"
  "CMakeFiles/contender_util.dir/status.cc.o"
  "CMakeFiles/contender_util.dir/status.cc.o.d"
  "CMakeFiles/contender_util.dir/summary_stats.cc.o"
  "CMakeFiles/contender_util.dir/summary_stats.cc.o.d"
  "CMakeFiles/contender_util.dir/table_printer.cc.o"
  "CMakeFiles/contender_util.dir/table_printer.cc.o.d"
  "libcontender_util.a"
  "libcontender_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contender_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libcontender_util.a"
)

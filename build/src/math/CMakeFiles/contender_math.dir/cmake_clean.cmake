file(REMOVE_RECURSE
  "CMakeFiles/contender_math.dir/eigen.cc.o"
  "CMakeFiles/contender_math.dir/eigen.cc.o.d"
  "CMakeFiles/contender_math.dir/kernel.cc.o"
  "CMakeFiles/contender_math.dir/kernel.cc.o.d"
  "CMakeFiles/contender_math.dir/matrix.cc.o"
  "CMakeFiles/contender_math.dir/matrix.cc.o.d"
  "CMakeFiles/contender_math.dir/metrics.cc.o"
  "CMakeFiles/contender_math.dir/metrics.cc.o.d"
  "CMakeFiles/contender_math.dir/regression.cc.o"
  "CMakeFiles/contender_math.dir/regression.cc.o.d"
  "libcontender_math.a"
  "libcontender_math.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contender_math.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/math/eigen.cc" "src/math/CMakeFiles/contender_math.dir/eigen.cc.o" "gcc" "src/math/CMakeFiles/contender_math.dir/eigen.cc.o.d"
  "/root/repo/src/math/kernel.cc" "src/math/CMakeFiles/contender_math.dir/kernel.cc.o" "gcc" "src/math/CMakeFiles/contender_math.dir/kernel.cc.o.d"
  "/root/repo/src/math/matrix.cc" "src/math/CMakeFiles/contender_math.dir/matrix.cc.o" "gcc" "src/math/CMakeFiles/contender_math.dir/matrix.cc.o.d"
  "/root/repo/src/math/metrics.cc" "src/math/CMakeFiles/contender_math.dir/metrics.cc.o" "gcc" "src/math/CMakeFiles/contender_math.dir/metrics.cc.o.d"
  "/root/repo/src/math/regression.cc" "src/math/CMakeFiles/contender_math.dir/regression.cc.o" "gcc" "src/math/CMakeFiles/contender_math.dir/regression.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/contender_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

# Empty dependencies file for contender_math.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libcontender_math.a"
)

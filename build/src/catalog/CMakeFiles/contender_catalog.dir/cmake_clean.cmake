file(REMOVE_RECURSE
  "CMakeFiles/contender_catalog.dir/catalog.cc.o"
  "CMakeFiles/contender_catalog.dir/catalog.cc.o.d"
  "libcontender_catalog.a"
  "libcontender_catalog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contender_catalog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for contender_catalog.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "libcontender_catalog.a"
)

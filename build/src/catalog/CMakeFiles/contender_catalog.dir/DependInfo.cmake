
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/catalog/catalog.cc" "src/catalog/CMakeFiles/contender_catalog.dir/catalog.cc.o" "gcc" "src/catalog/CMakeFiles/contender_catalog.dir/catalog.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/contender_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/contender_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/plan_compiler.cc" "src/workload/CMakeFiles/contender_workload.dir/plan_compiler.cc.o" "gcc" "src/workload/CMakeFiles/contender_workload.dir/plan_compiler.cc.o.d"
  "/root/repo/src/workload/query_plan.cc" "src/workload/CMakeFiles/contender_workload.dir/query_plan.cc.o" "gcc" "src/workload/CMakeFiles/contender_workload.dir/query_plan.cc.o.d"
  "/root/repo/src/workload/sampler.cc" "src/workload/CMakeFiles/contender_workload.dir/sampler.cc.o" "gcc" "src/workload/CMakeFiles/contender_workload.dir/sampler.cc.o.d"
  "/root/repo/src/workload/steady_state.cc" "src/workload/CMakeFiles/contender_workload.dir/steady_state.cc.o" "gcc" "src/workload/CMakeFiles/contender_workload.dir/steady_state.cc.o.d"
  "/root/repo/src/workload/templates.cc" "src/workload/CMakeFiles/contender_workload.dir/templates.cc.o" "gcc" "src/workload/CMakeFiles/contender_workload.dir/templates.cc.o.d"
  "/root/repo/src/workload/workload.cc" "src/workload/CMakeFiles/contender_workload.dir/workload.cc.o" "gcc" "src/workload/CMakeFiles/contender_workload.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/catalog/CMakeFiles/contender_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/contender_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/contender_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/contender_util.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/contender_math.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

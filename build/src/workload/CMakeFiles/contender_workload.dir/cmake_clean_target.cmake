file(REMOVE_RECURSE
  "libcontender_workload.a"
)

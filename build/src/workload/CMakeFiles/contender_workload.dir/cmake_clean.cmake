file(REMOVE_RECURSE
  "CMakeFiles/contender_workload.dir/plan_compiler.cc.o"
  "CMakeFiles/contender_workload.dir/plan_compiler.cc.o.d"
  "CMakeFiles/contender_workload.dir/query_plan.cc.o"
  "CMakeFiles/contender_workload.dir/query_plan.cc.o.d"
  "CMakeFiles/contender_workload.dir/sampler.cc.o"
  "CMakeFiles/contender_workload.dir/sampler.cc.o.d"
  "CMakeFiles/contender_workload.dir/steady_state.cc.o"
  "CMakeFiles/contender_workload.dir/steady_state.cc.o.d"
  "CMakeFiles/contender_workload.dir/templates.cc.o"
  "CMakeFiles/contender_workload.dir/templates.cc.o.d"
  "CMakeFiles/contender_workload.dir/workload.cc.o"
  "CMakeFiles/contender_workload.dir/workload.cc.o.d"
  "libcontender_workload.a"
  "libcontender_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contender_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for contender_workload.
# This may be replaced when dependencies are built.


# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/continuum.cc" "src/core/CMakeFiles/contender_core.dir/continuum.cc.o" "gcc" "src/core/CMakeFiles/contender_core.dir/continuum.cc.o.d"
  "/root/repo/src/core/cqi.cc" "src/core/CMakeFiles/contender_core.dir/cqi.cc.o" "gcc" "src/core/CMakeFiles/contender_core.dir/cqi.cc.o.d"
  "/root/repo/src/core/ml_baseline.cc" "src/core/CMakeFiles/contender_core.dir/ml_baseline.cc.o" "gcc" "src/core/CMakeFiles/contender_core.dir/ml_baseline.cc.o.d"
  "/root/repo/src/core/plan_features.cc" "src/core/CMakeFiles/contender_core.dir/plan_features.cc.o" "gcc" "src/core/CMakeFiles/contender_core.dir/plan_features.cc.o.d"
  "/root/repo/src/core/predictor.cc" "src/core/CMakeFiles/contender_core.dir/predictor.cc.o" "gcc" "src/core/CMakeFiles/contender_core.dir/predictor.cc.o.d"
  "/root/repo/src/core/qs_model.cc" "src/core/CMakeFiles/contender_core.dir/qs_model.cc.o" "gcc" "src/core/CMakeFiles/contender_core.dir/qs_model.cc.o.d"
  "/root/repo/src/core/qs_transfer.cc" "src/core/CMakeFiles/contender_core.dir/qs_transfer.cc.o" "gcc" "src/core/CMakeFiles/contender_core.dir/qs_transfer.cc.o.d"
  "/root/repo/src/core/spoiler_model.cc" "src/core/CMakeFiles/contender_core.dir/spoiler_model.cc.o" "gcc" "src/core/CMakeFiles/contender_core.dir/spoiler_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/contender_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/contender_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/math/CMakeFiles/contender_math.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/contender_util.dir/DependInfo.cmake"
  "/root/repo/build/src/catalog/CMakeFiles/contender_catalog.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/contender_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

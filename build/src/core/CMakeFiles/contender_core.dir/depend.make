# Empty dependencies file for contender_core.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/contender_core.dir/continuum.cc.o"
  "CMakeFiles/contender_core.dir/continuum.cc.o.d"
  "CMakeFiles/contender_core.dir/cqi.cc.o"
  "CMakeFiles/contender_core.dir/cqi.cc.o.d"
  "CMakeFiles/contender_core.dir/ml_baseline.cc.o"
  "CMakeFiles/contender_core.dir/ml_baseline.cc.o.d"
  "CMakeFiles/contender_core.dir/plan_features.cc.o"
  "CMakeFiles/contender_core.dir/plan_features.cc.o.d"
  "CMakeFiles/contender_core.dir/predictor.cc.o"
  "CMakeFiles/contender_core.dir/predictor.cc.o.d"
  "CMakeFiles/contender_core.dir/qs_model.cc.o"
  "CMakeFiles/contender_core.dir/qs_model.cc.o.d"
  "CMakeFiles/contender_core.dir/qs_transfer.cc.o"
  "CMakeFiles/contender_core.dir/qs_transfer.cc.o.d"
  "CMakeFiles/contender_core.dir/spoiler_model.cc.o"
  "CMakeFiles/contender_core.dir/spoiler_model.cc.o.d"
  "libcontender_core.a"
  "libcontender_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contender_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "libcontender_core.a"
)

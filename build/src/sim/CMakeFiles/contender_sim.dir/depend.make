# Empty dependencies file for contender_sim.
# This may be replaced when dependencies are built.

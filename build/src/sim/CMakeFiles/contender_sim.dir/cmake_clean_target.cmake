file(REMOVE_RECURSE
  "libcontender_sim.a"
)

file(REMOVE_RECURSE
  "CMakeFiles/contender_sim.dir/buffer_pool.cc.o"
  "CMakeFiles/contender_sim.dir/buffer_pool.cc.o.d"
  "CMakeFiles/contender_sim.dir/disk.cc.o"
  "CMakeFiles/contender_sim.dir/disk.cc.o.d"
  "CMakeFiles/contender_sim.dir/engine.cc.o"
  "CMakeFiles/contender_sim.dir/engine.cc.o.d"
  "CMakeFiles/contender_sim.dir/spoiler.cc.o"
  "CMakeFiles/contender_sim.dir/spoiler.cc.o.d"
  "libcontender_sim.a"
  "libcontender_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/contender_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

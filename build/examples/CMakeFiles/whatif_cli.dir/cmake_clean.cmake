file(REMOVE_RECURSE
  "CMakeFiles/whatif_cli.dir/whatif_cli.cpp.o"
  "CMakeFiles/whatif_cli.dir/whatif_cli.cpp.o.d"
  "whatif_cli"
  "whatif_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/whatif_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

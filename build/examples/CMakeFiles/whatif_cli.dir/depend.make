# Empty dependencies file for whatif_cli.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/batch_scheduler.dir/batch_scheduler.cpp.o"
  "CMakeFiles/batch_scheduler.dir/batch_scheduler.cpp.o.d"
  "batch_scheduler"
  "batch_scheduler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/batch_scheduler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for batch_scheduler.
# This may be replaced when dependencies are built.

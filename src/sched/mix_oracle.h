// Caching adapter between the admission policies and ContenderPredictor.
//
// A policy evaluates "template t in running mix M" for every queued
// candidate on every slot-free event, and the same (t, M) pairs recur
// constantly as the mix churns one slot at a time. The oracle canonicalizes
// the mix (sorted) and runs BOTH the key derivation and the predictor on
// the canonical ordering — CQI sums over the mix, so permutations of one
// multiset differ in the low floating-point bits otherwise. Keys use the
// same FNV-1a content hashing as sim/run_cache; results live in a bounded
// LRU so one admission decision costs O(queue) cache probes instead of
// O(queue) full CQI/QS evaluations. Cached and uncached answers are
// bit-identical: the canonicalized predictor call is a pure function of
// the (template, multiset) pair.

#ifndef CONTENDER_SCHED_MIX_ORACLE_H_
#define CONTENDER_SCHED_MIX_ORACLE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "core/predictor.h"
#include "util/cacheline.h"
#include "util/mutex.h"
#include "util/sharded_counter.h"
#include "util/thread_annotations.h"
#include "util/units.h"

namespace contender::sched {

/// Per-template health as seen by the scheduler: Degraded(t) means t's
/// circuit breaker is open — its model's predictions are currently not
/// trusted, and consumers must fall back to isolated-latency reasoning
/// instead of scheduling on garbage. serve::HealthTracker implements this
/// (the interface lives here so sched/ does not depend on serve/).
/// Implementations must be thread-safe.
class TemplateHealth {
 public:
  virtual ~TemplateHealth() = default;
  [[nodiscard]] virtual bool Degraded(int template_index) const = 0;
};

/// The pure canonicalized prediction MixOracle memoizes: sorts the mix,
/// predicts via the predictor's reference/transfer models, and falls back
/// to the template's isolated latency when no model covers the (template,
/// MPL) pair — so the answer is total and a pure function of the
/// (template, multiset) pair. Lock-free; serve::ModelSnapshot readers call
/// it directly on the hot path, and the oracle delegates to it on a cache
/// miss, so cached and uncached answers are bit-identical by construction.
/// `template_index` must be a valid workload index. If `used_fallback` is
/// non-null it is set to whether the isolated-latency degradation fired.
units::Seconds PredictInMixUncached(const ContenderPredictor& predictor,
                                    int template_index,
                                    std::vector<int> concurrent,
                                    bool* used_fallback = nullptr);

/// Thread-safe memoized view of a trained predictor for policy evaluation.
/// Thread safety mirrors sim::RunCache — a parallel policy sweep may probe
/// one oracle from several workers — but the memo is sharded by key so
/// those workers serialize per shard, not globally, and all counters are
/// cache-line-padded stripes.
class MixOracle {
 public:
  struct Options {
    /// Bounded LRU capacity (entries, across all shards). Each shard holds
    /// up to capacity / num_shards entries (at least one), so eviction is
    /// per-shard LRU — global recency order is approximated, never
    /// tracked, because tracking it would re-serialize every probe.
    size_t capacity = 4096;
    /// Memo shard count (>= 1). A key always lives in exactly one shard
    /// (key % num_shards), so concurrent probes of different keys contend
    /// only when they hash to the same shard; num_shards = 1 restores the
    /// single-LRU semantics exactly.
    int num_shards = 8;
    /// Disable to force every probe through the predictor (used by the
    /// cached-vs-uncached equivalence tests).
    bool enable_cache = true;
    /// Optional per-template health signal (must outlive the oracle). When
    /// a template's breaker is open, PredictInMix degrades to its isolated
    /// latency — bypassing the cache so no degraded answer is memoized —
    /// and policies switch to shortest-isolated scoring.
    const TemplateHealth* health = nullptr;
  };

  explicit MixOracle(const ContenderPredictor* predictor);
  MixOracle(const ContenderPredictor* predictor, const Options& options);

  /// Predicted latency of `template_index` executing inside `concurrent`
  /// (workload indices of the other running queries, order-irrelevant).
  /// An empty mix yields the isolated latency. When the predictor has no
  /// reference/QS model covering the mix's MPL or template, the oracle
  /// falls back to the isolated latency (counted in fallbacks()) so policy
  /// scores stay total and deterministic.
  units::Seconds PredictInMix(int template_index,
                              const std::vector<int>& concurrent) const;

  /// l_min of a template (profile lookup, never cached — it is one load).
  units::Seconds IsolatedLatency(int template_index) const;

  /// True when the health signal reports an open breaker for the template
  /// (always false without an Options::health). Policies consult this to
  /// drop to shortest-isolated scoring.
  bool Degraded(int template_index) const;

  int num_templates() const {
    return static_cast<int>(predictor_->profiles().size());
  }
  const ContenderPredictor& predictor() const { return *predictor_; }

  uint64_t hits() const;
  uint64_t misses() const;
  uint64_t fallbacks() const;
  /// PredictInMix calls answered with the isolated latency because of an
  /// open breaker or a fired "sched.mix_oracle.predict" fail point.
  uint64_t degradations() const;
  size_t size() const;
  int num_shards() const { return static_cast<int>(shards_.size()); }

 private:
  using LruList = std::list<std::pair<uint64_t, units::Seconds>>;

  /// One memo shard: an independent bounded LRU under its own padded
  /// mutex. A key maps to exactly one shard, so two probes contend only
  /// when their keys collide modulo the shard count.
  struct alignas(kCacheLineSize) Shard {
    mutable Mutex mutex;
    mutable LruList lru GUARDED_BY(mutex);  // front = most recently used
    mutable std::unordered_map<uint64_t, LruList::iterator> index
        GUARDED_BY(mutex);
  };

  Shard& ShardFor(uint64_t key) const {
    return *shards_[key % shards_.size()];
  }

  /// Validates options.num_shards and derives the per-shard LRU budget.
  static size_t ShardCapacity(const Options& options);

  const ContenderPredictor* const predictor_;
  const Options options_;
  const size_t shard_capacity_;

  /// Built once in the constructor, immutable afterwards (only the
  /// pointees' guarded interiors mutate).
  std::vector<std::unique_ptr<Shard>> shards_;  // contender-lint: lock-free
  /// Striped (cache-line-padded) counters: probes bump the stripe of the
  /// shard they touched, so counting never adds cross-shard contention.
  mutable ShardedCounter hits_;
  mutable ShardedCounter misses_;
  mutable ShardedCounter fallbacks_;
  mutable ShardedCounter degradations_;
};

}  // namespace contender::sched

#endif  // CONTENDER_SCHED_MIX_ORACLE_H_

// Admission-control requests: one queued execution of a workload template,
// optionally carrying an SLA deadline, plus the waiting queue the policies
// choose from and a deterministic seeded arrival-stream generator.

#ifndef CONTENDER_SCHED_REQUEST_H_
#define CONTENDER_SCHED_REQUEST_H_

#include <optional>
#include <vector>

#include "overload/shed_reason.h"
#include "util/random.h"
#include "util/statusor.h"
#include "util/units.h"

namespace contender::sched {

/// One query execution awaiting admission.
struct Request {
  /// Dense identity in [0, stream size); outcome slots are keyed by it.
  int request_id = -1;
  /// Workload template index (position, not paper id).
  int template_index = -1;
  /// Issuing tenant. Single-tenant streams leave the default; the fleet
  /// layer stamps it so per-tenant metrics and blame attribution can key
  /// on it. Policies never read it — placement is tenant-blind, only
  /// accounting (and admission quotas, enforced upstream by the fleet
  /// router) see tenants.
  int tenant_id = 0;
  /// When the request becomes admissible.
  units::Seconds arrival_time;
  /// Absolute SLA deadline for completion; nullopt = best-effort.
  std::optional<units::Seconds> deadline;
  /// Service tier for the overload brownout ladder. Stamped by the fleet
  /// population (per tenant); single-node streams keep the default.
  /// Policies never read it — like tenant_id, only admission control and
  /// accounting see it.
  overload::Criticality criticality = overload::Criticality::kStandard;
};

/// Options for GenerateArrivals. All randomness flows from the seed through
/// one util/random Rng, so the same options always yield the same stream.
struct ArrivalOptions {
  int num_requests = 32;
  /// Mean of the exponential interarrival gap (Poisson arrivals).
  units::Seconds mean_interarrival{20.0};
  /// Probability that a request carries an SLA deadline.
  double deadline_probability = 0.0;
  /// Deadline = arrival + slack * reference latency of the drawn template,
  /// with slack uniform in [min_slack, max_slack).
  double min_slack = 2.0;
  double max_slack = 6.0;
  uint64_t seed = 42;
};

/// Deterministic arrival stream over `reference_latencies.size()` templates:
/// template drawn uniformly per request, exponential gaps, Bernoulli
/// deadlines with uniform slack against the template's reference (isolated)
/// latency. Request ids are assigned in arrival order starting at 0.
/// InvalidArgument when `reference_latencies` is empty, `num_requests` is
/// negative, the mean interarrival gap is non-positive (the arrival rate
/// 1/mean would be undefined or non-positive), the deadline probability is
/// outside [0, 1], or the slack band is inverted.
StatusOr<std::vector<Request>> GenerateArrivals(
    const std::vector<units::Seconds>& reference_latencies,
    const ArrivalOptions& options);

/// The waiting queue: every generated-but-not-yet-admitted request, kept
/// sorted by (arrival time, request id). Because of the sort order, the
/// requests admissible at time t are exactly a leading prefix.
class RequestQueue {
 public:
  RequestQueue() = default;
  /// Takes ownership of `requests` and sorts them into queue order.
  explicit RequestQueue(std::vector<Request> requests);

  /// Inserts preserving (arrival, id) order.
  void Push(const Request& request);

  [[nodiscard]] bool empty() const { return requests_.empty(); }
  [[nodiscard]] size_t size() const { return requests_.size(); }
  [[nodiscard]] const Request& at(size_t i) const {
    return requests_[i];
  }

  /// Number of leading requests with arrival_time <= t (the admissible
  /// prefix at time t).
  [[nodiscard]] size_t ArrivedBy(units::Seconds t) const;

  /// Earliest arrival among queued requests; queue must be non-empty.
  [[nodiscard]] units::Seconds NextArrival() const;

  /// Removes and returns the request at position i.
  Request Take(size_t i);

 private:
  std::vector<Request> requests_;
};

}  // namespace contender::sched

#endif  // CONTENDER_SCHED_REQUEST_H_

#include "sched/policy.h"

#include <limits>

#include "util/logging.h"

namespace contender::sched {

namespace {

Status ValidateContext(const RequestQueue& queue, const SchedContext& ctx,
                       size_t* arrived) {
  if (ctx.oracle == nullptr || ctx.running_templates == nullptr) {
    return Status::InvalidArgument("SchedContext is incomplete");
  }
  *arrived = queue.ArrivedBy(ctx.now);
  if (*arrived == 0) {
    return Status::FailedPrecondition(
        "Pick called with no arrived request in the queue");
  }
  return Status::OK();
}

/// Shared scan over the arrived prefix: minimal score wins, strict `<` so
/// the earliest queue position (arrival order, then request id) takes
/// ties. ScoreFn: size_t position -> double.
template <typename ScoreFn>
size_t ArgMinScore(size_t arrived, ScoreFn&& score) {
  size_t best = 0;
  double best_score = score(size_t{0});
  for (size_t i = 1; i < arrived; ++i) {
    const double s = score(i);
    if (s < best_score) {
      best = i;
      best_score = s;
    }
  }
  return best;
}

/// True when the oracle reports an open breaker for any template involved
/// in this admission decision — the running mix or any arrived candidate.
/// Contention-aware scores would then be built on untrusted predictions,
/// so the contention-aware policies degrade to shortest-isolated ordering
/// (isolated latencies come from measured profiles, not the QS models, and
/// stay trustworthy when a model goes bad).
bool OracleReportsDegraded(const RequestQueue& queue, size_t arrived,
                           const SchedContext& ctx) {
  for (int t : *ctx.running_templates) {
    if (ctx.oracle->Degraded(t)) return true;
  }
  for (size_t i = 0; i < arrived; ++i) {
    if (ctx.oracle->Degraded(queue.at(i).template_index)) return true;
  }
  return false;
}

/// Shortest-isolated ordering, shared by the degraded paths.
size_t PickShortestIsolated(const RequestQueue& queue, size_t arrived,
                            const SchedContext& ctx) {
  return ArgMinScore(arrived, [&](size_t i) {
    return ctx.oracle->IsolatedLatency(queue.at(i).template_index).value();
  });
}

/// Predicted added completion time of admitting `r` into the live mix M:
/// the candidate's own predicted latency inside M, plus the predicted
/// latency inflation it inflicts on every query already running
/// (Σ over q in M of L(q | M - q + r) - L(q | M - q)). The second term is
/// what distinguishes contention-awareness from shortest-job-first: a
/// short candidate that antagonizes the running mix loses to a slightly
/// longer one that shares its scans. Every term is a mix-oracle probe, so
/// repeated evaluations of the slowly-churning mix hit the cache.
double GreedyScore(const Request& r, const SchedContext& ctx) {
  const std::vector<int>& mix = *ctx.running_templates;
  const double in_mix =
      ctx.oracle->PredictInMix(r.template_index, mix).value();
  const double isolated =
      ctx.oracle->IsolatedLatency(r.template_index).value();
  return in_mix / isolated;
}

class FifoPolicy : public Policy {
 public:
  const std::string& name() const override {
    static const std::string kName = "fifo";
    return kName;
  }
  StatusOr<size_t> Pick(const RequestQueue& queue,
                        const SchedContext& ctx) override {
    size_t arrived = 0;
    CONTENDER_RETURN_IF_ERROR(ValidateContext(queue, ctx, &arrived));
    // The queue is sorted by (arrival, id): position 0 is FIFO order.
    return size_t{0};
  }
};

class ShortestIsolatedFirstPolicy : public Policy {
 public:
  const std::string& name() const override {
    static const std::string kName = "shortest-isolated";
    return kName;
  }
  StatusOr<size_t> Pick(const RequestQueue& queue,
                        const SchedContext& ctx) override {
    size_t arrived = 0;
    CONTENDER_RETURN_IF_ERROR(ValidateContext(queue, ctx, &arrived));
    return PickShortestIsolated(queue, arrived, ctx);
  }
};

class GreedyContentionPolicy : public Policy {
 public:
  const std::string& name() const override {
    static const std::string kName = "greedy-contention";
    return kName;
  }
  StatusOr<size_t> Pick(const RequestQueue& queue,
                        const SchedContext& ctx) override {
    size_t arrived = 0;
    CONTENDER_RETURN_IF_ERROR(ValidateContext(queue, ctx, &arrived));
    if (OracleReportsDegraded(queue, arrived, ctx)) {
      return PickShortestIsolated(queue, arrived, ctx);
    }
    return ArgMinScore(
        arrived, [&](size_t i) { return GreedyScore(queue.at(i), ctx); });
  }
};

class DeadlineAwarePolicy : public Policy {
 public:
  const std::string& name() const override {
    static const std::string kName = "deadline-aware";
    return kName;
  }
  StatusOr<size_t> Pick(const RequestQueue& queue,
                        const SchedContext& ctx) override {
    size_t arrived = 0;
    CONTENDER_RETURN_IF_ERROR(ValidateContext(queue, ctx, &arrived));
    if (OracleReportsDegraded(queue, arrived, ctx)) {
      return PickShortestIsolated(queue, arrived, ctx);
    }
    bool any_deadline = false;
    for (size_t i = 0; i < arrived && !any_deadline; ++i) {
      any_deadline = queue.at(i).deadline.has_value();
    }
    if (!any_deadline) {
      // Nothing to protect: behave exactly like greedy.
      return ArgMinScore(
          arrived, [&](size_t i) { return GreedyScore(queue.at(i), ctx); });
    }
    // Earliest predicted slack first; best-effort requests rank after every
    // deadline-carrying one (infinite slack).
    return ArgMinScore(arrived, [&](size_t i) {
      const Request& r = queue.at(i);
      if (!r.deadline.has_value()) {
        return std::numeric_limits<double>::infinity();
      }
      const units::Seconds predicted =
          ctx.oracle->PredictInMix(r.template_index, *ctx.running_templates);
      return (*r.deadline - ctx.now - predicted).value();
    });
  }
};

}  // namespace

std::unique_ptr<Policy> MakePolicy(PolicyKind kind) {
  switch (kind) {
    case PolicyKind::kFifo:
      return std::make_unique<FifoPolicy>();
    case PolicyKind::kShortestIsolatedFirst:
      return std::make_unique<ShortestIsolatedFirstPolicy>();
    case PolicyKind::kGreedyContention:
      return std::make_unique<GreedyContentionPolicy>();
    case PolicyKind::kDeadlineAware:
      return std::make_unique<DeadlineAwarePolicy>();
  }
  CONTENDER_CHECK(false) << "unknown PolicyKind";
  return nullptr;
}

const std::string& PolicyKindName(PolicyKind kind) {
  return MakePolicy(kind)->name();
}

const std::vector<PolicyKind>& AllPolicyKinds() {
  static const std::vector<PolicyKind>* kinds = new std::vector<PolicyKind>{
      PolicyKind::kFifo, PolicyKind::kShortestIsolatedFirst,
      PolicyKind::kGreedyContention, PolicyKind::kDeadlineAware};
  return *kinds;
}

}  // namespace contender::sched

#include "sched/request.h"

#include <algorithm>
#include <utility>

#include "scenario/scenario.h"
#include "util/logging.h"

namespace contender::sched {

namespace {

// Queue order: arrival time, then request id (insertion order of the
// generator), so ties are deterministic.
bool QueueBefore(const Request& a, const Request& b) {
  if (a.arrival_time != b.arrival_time) {
    return a.arrival_time < b.arrival_time;
  }
  return a.request_id < b.request_id;
}

}  // namespace

StatusOr<std::vector<Request>> GenerateArrivals(
    const std::vector<units::Seconds>& reference_latencies,
    const ArrivalOptions& options) {
  // Delegates to the PoissonSteady scenario, the bit-exact successor of
  // the sampler that used to live here (template → gap → deadline draw
  // order, first request at t = 0). The scenario's single-node mode seeds
  // its one tenant directly from options.seed, so the stream is identical
  // draw for draw to every pre-scenario release.
  const scenario::Scenario* poisson =
      scenario::FindScenario(scenario::kPoissonSteadyName);
  CONTENDER_CHECK(poisson != nullptr)
      << "poisson-steady missing from the scenario registry";
  scenario::ScenarioParams params;
  params.num_requests = options.num_requests;
  params.mean_interarrival = options.mean_interarrival;
  params.deadline_probability = options.deadline_probability;
  params.min_slack = options.min_slack;
  params.max_slack = options.max_slack;
  params.seed = options.seed;
  CONTENDER_ASSIGN_OR_RETURN(scenario::ScenarioTrace trace,
                             poisson->GenerateTrace(reference_latencies,
                                                    params));
  return std::move(trace.requests);
}

RequestQueue::RequestQueue(std::vector<Request> requests)
    : requests_(std::move(requests)) {
  std::stable_sort(requests_.begin(), requests_.end(), QueueBefore);
}

void RequestQueue::Push(const Request& request) {
  auto pos = std::upper_bound(requests_.begin(), requests_.end(), request,
                              QueueBefore);
  requests_.insert(pos, request);
}

size_t RequestQueue::ArrivedBy(units::Seconds t) const {
  size_t n = 0;
  while (n < requests_.size() && requests_[n].arrival_time <= t) ++n;
  return n;
}

units::Seconds RequestQueue::NextArrival() const {
  CONTENDER_CHECK(!requests_.empty());
  return requests_.front().arrival_time;
}

Request RequestQueue::Take(size_t i) {
  CONTENDER_CHECK(i < requests_.size());
  Request r = requests_[i];
  requests_.erase(requests_.begin() + static_cast<std::ptrdiff_t>(i));
  return r;
}

}  // namespace contender::sched

#include "sched/request.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace contender::sched {

namespace {

// Queue order: arrival time, then request id (insertion order of the
// generator), so ties are deterministic.
bool QueueBefore(const Request& a, const Request& b) {
  if (a.arrival_time != b.arrival_time) {
    return a.arrival_time < b.arrival_time;
  }
  return a.request_id < b.request_id;
}

}  // namespace

StatusOr<std::vector<Request>> GenerateArrivals(
    const std::vector<units::Seconds>& reference_latencies,
    const ArrivalOptions& options) {
  if (reference_latencies.empty()) {
    return Status::InvalidArgument(
        "GenerateArrivals: need at least one template");
  }
  if (options.num_requests < 0) {
    return Status::InvalidArgument(
        "GenerateArrivals: num_requests must be >= 0");
  }
  // A non-positive mean gap means an undefined or non-positive arrival
  // rate (a zero gap silently collapsed the stream to one burst at t=0);
  // NaN also fails this comparison.
  if (!(options.mean_interarrival.value() > 0.0)) {
    return Status::InvalidArgument(
        "GenerateArrivals: mean_interarrival must be positive "
        "(non-positive arrival rate)");
  }
  if (options.deadline_probability < 0.0 ||
      options.deadline_probability > 1.0) {
    return Status::InvalidArgument(
        "GenerateArrivals: deadline_probability outside [0, 1]");
  }
  if (options.max_slack < options.min_slack) {
    return Status::InvalidArgument(
        "GenerateArrivals: max_slack below min_slack");
  }

  Rng rng(options.seed);
  std::vector<Request> requests;
  requests.reserve(static_cast<size_t>(options.num_requests));
  units::Seconds clock;
  for (int i = 0; i < options.num_requests; ++i) {
    Request r;
    r.request_id = i;
    r.template_index = static_cast<int>(
        rng.UniformInt(static_cast<uint64_t>(reference_latencies.size())));
    // Exponential gap via inverse transform; the first request arrives at
    // t = 0 so every run starts with work available.
    if (i > 0) {
      const double u = rng.Uniform01();
      clock += options.mean_interarrival * (-std::log1p(-u));
    }
    r.arrival_time = clock;
    if (options.deadline_probability > 0.0 &&
        rng.Uniform01() < options.deadline_probability) {
      const double slack = rng.Uniform(options.min_slack, options.max_slack);
      r.deadline =
          r.arrival_time +
          reference_latencies[static_cast<size_t>(r.template_index)] * slack;
    }
    requests.push_back(r);
  }
  return requests;
}

RequestQueue::RequestQueue(std::vector<Request> requests)
    : requests_(std::move(requests)) {
  std::stable_sort(requests_.begin(), requests_.end(), QueueBefore);
}

void RequestQueue::Push(const Request& request) {
  auto pos = std::upper_bound(requests_.begin(), requests_.end(), request,
                              QueueBefore);
  requests_.insert(pos, request);
}

size_t RequestQueue::ArrivedBy(units::Seconds t) const {
  size_t n = 0;
  while (n < requests_.size() && requests_[n].arrival_time <= t) ++n;
  return n;
}

units::Seconds RequestQueue::NextArrival() const {
  CONTENDER_CHECK(!requests_.empty());
  return requests_.front().arrival_time;
}

Request RequestQueue::Take(size_t i) {
  CONTENDER_CHECK(i < requests_.size());
  Request r = requests_[i];
  requests_.erase(requests_.begin() + static_cast<std::ptrdiff_t>(i));
  return r;
}

}  // namespace contender::sched

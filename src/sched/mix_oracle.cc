#include "sched/mix_oracle.h"

#include <algorithm>

#include "sim/run_cache.h"
#include "util/failpoint.h"
#include "util/logging.h"

namespace contender::sched {

namespace {

// Chaos site: a fired evaluation answers with the isolated latency (the
// same degradation an open breaker forces), bypassing the cache.
auto& kPredictFailPoint = CONTENDER_DEFINE_FAILPOINT("sched.mix_oracle.predict");

// Content key of one evaluation: primary template plus the canonical
// (sorted) mix. Sorting makes the key order-insensitive.
uint64_t EvaluationKey(int template_index, const std::vector<int>& sorted_mix) {
  sim::RunHasher h;
  h.Add(template_index);
  h.Add(static_cast<uint64_t>(sorted_mix.size()));
  for (int m : sorted_mix) h.Add(m);
  return h.Digest();
}

}  // namespace

units::Seconds PredictInMixUncached(const ContenderPredictor& predictor,
                                    int template_index,
                                    std::vector<int> concurrent,
                                    bool* used_fallback) {
  const auto& profiles = predictor.profiles();
  CONTENDER_CHECK(template_index >= 0 &&
                  static_cast<size_t>(template_index) < profiles.size())
      << "PredictInMixUncached: unknown template index " << template_index;
  if (used_fallback != nullptr) *used_fallback = false;
  const units::Seconds isolated =
      profiles[static_cast<size_t>(template_index)].isolated_latency;
  if (concurrent.empty()) return isolated;
  // Evaluate on the canonical (sorted) mix so the answer is a pure function
  // of the multiset — CQI sums over the mix in the order given, and
  // floating-point addition is not associative.
  std::sort(concurrent.begin(), concurrent.end());
  auto predicted = predictor.PredictKnown(template_index, concurrent);
  if (predicted.ok()) return *predicted;
  // No model covers this (template, MPL); degrade to the continuum lower
  // bound so the score stays defined.
  if (used_fallback != nullptr) *used_fallback = true;
  return isolated;
}

MixOracle::MixOracle(const ContenderPredictor* predictor)
    : MixOracle(predictor, Options()) {}

size_t MixOracle::ShardCapacity(const Options& options) {
  CONTENDER_CHECK(options.num_shards >= 1)
      << "MixOracle: num_shards must be >= 1";
  return std::max<size_t>(
      1, options.capacity / static_cast<size_t>(options.num_shards));
}

MixOracle::MixOracle(const ContenderPredictor* predictor,
                     const Options& options)
    : predictor_(predictor),
      options_(options),
      shard_capacity_(ShardCapacity(options)) {
  CONTENDER_CHECK(predictor_ != nullptr);
  shards_.reserve(static_cast<size_t>(options_.num_shards));
  for (int i = 0; i < options_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

units::Seconds MixOracle::IsolatedLatency(int template_index) const {
  const auto& profiles = predictor_->profiles();
  CONTENDER_CHECK(template_index >= 0 &&
                  static_cast<size_t>(template_index) < profiles.size())
      << "MixOracle: unknown template index " << template_index;
  return profiles[static_cast<size_t>(template_index)].isolated_latency;
}

bool MixOracle::Degraded(int template_index) const {
  return options_.health != nullptr &&
         options_.health->Degraded(template_index);
}

units::Seconds MixOracle::PredictInMix(
    int template_index, const std::vector<int>& concurrent) const {
  if (concurrent.empty()) return IsolatedLatency(template_index);

  // Degrade BEFORE touching the cache: an open breaker (or a fired chaos
  // site) answers with the isolated lower bound, and that answer must
  // never be memoized — the cache only ever holds full-model values, so
  // recovery is instant once the breaker closes.
  if (kPredictFailPoint.ShouldFail() || Degraded(template_index)) {
    degradations_.Add(template_index);
    return IsolatedLatency(template_index);
  }

  // Evaluate on the canonical (sorted) mix, not the caller's ordering: CQI
  // sums over the mix in the order given, and floating-point addition is
  // not associative, so permutations of one multiset differ in the low
  // bits. Canonicalizing both the key AND the evaluation input makes the
  // answer a pure function of the multiset — a warm cache entry computed
  // under one mix ordering is bit-identical to a cold evaluation under
  // another.
  std::vector<int> canonical = concurrent;
  std::sort(canonical.begin(), canonical.end());

  const uint64_t key = EvaluationKey(template_index, canonical);
  const int stripe = static_cast<int>(key % shards_.size());
  if (options_.enable_cache) {
    Shard& shard = ShardFor(key);
    MutexLock lock(&shard.mutex);
    auto it = shard.index.find(key);
    if (it != shard.index.end()) {
      shard.lru.splice(shard.lru.begin(), shard.lru, it->second);
      hits_.Add(stripe);
      return it->second->second;
    }
    misses_.Add(stripe);
  }

  bool used_fallback = false;
  const units::Seconds value = PredictInMixUncached(
      *predictor_, template_index, std::move(canonical), &used_fallback);
  if (used_fallback) fallbacks_.Add(stripe);

  if (options_.enable_cache) {
    Shard& shard = ShardFor(key);
    MutexLock lock(&shard.mutex);
    auto it = shard.index.find(key);
    if (it == shard.index.end()) {
      shard.lru.emplace_front(key, value);
      shard.index[key] = shard.lru.begin();
      while (shard.lru.size() > shard_capacity_) {
        shard.index.erase(shard.lru.back().first);
        shard.lru.pop_back();
      }
    }
  }
  return value;
}

uint64_t MixOracle::hits() const { return hits_.Total(); }

uint64_t MixOracle::misses() const { return misses_.Total(); }

uint64_t MixOracle::fallbacks() const { return fallbacks_.Total(); }

uint64_t MixOracle::degradations() const { return degradations_.Total(); }

size_t MixOracle::size() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    MutexLock lock(&shard->mutex);
    total += shard->lru.size();
  }
  return total;
}

}  // namespace contender::sched

// The closed admission loop: a policy chooses which queued request gets
// each free execution slot, sim::Engine executes the admitted queries, and
// every completion callback re-enters the policy. The simulator holds a
// target MPL, records per-request queue wait / latency / deadline outcome
// and the prediction each admission was based on, and is bit-exactly
// deterministic under a fixed seed (query instances are drawn once, in
// request-id order, so every policy executes the identical workload).

#ifndef CONTENDER_SCHED_SIMULATOR_H_
#define CONTENDER_SCHED_SIMULATOR_H_

#include <vector>

#include "overload/node_control.h"
#include "sched/mix_oracle.h"
#include "sched/policy.h"
#include "sched/request.h"
#include "sim/config.h"
#include "util/statusor.h"
#include "util/units.h"
#include "workload/workload.h"

namespace contender::sched {

struct ScheduleOptions {
  /// Slots: admitted-and-unfinished queries are held at this level whenever
  /// the queue is non-empty. With the adaptive limiter on, this is the
  /// limiter's ceiling rather than the operating point.
  int target_mpl = 3;
  /// Seeds query-instance parameter draws and the engine.
  uint64_t seed = 42;
  /// Node-level overload control (DESIGN.md §16): AIMD admission limiting
  /// on the observed/predicted latency ratio and CoDel shedding of stale
  /// queue heads. Both off by default — existing schedules replay
  /// unchanged.
  overload::NodeOverloadOptions overload;
};

/// Everything recorded about one request's journey through the system.
struct RequestOutcome {
  Request request;
  /// When the slot was granted (== arrival for an idle-slot admission).
  units::Seconds admit_time;
  /// admit - arrival.
  units::Seconds queue_wait;
  /// Engine execution time (admit -> completion).
  units::Seconds execution_latency;
  /// arrival -> completion; what an SLA is written against.
  units::Seconds response_time;
  units::Seconds completion_time;
  /// The oracle's predicted-in-mix latency this admission was based on.
  units::Seconds predicted_latency;
  /// Mix size (other running queries) at the admission decision.
  int mix_size_at_admission = 0;
  bool completed = false;
  bool missed_deadline = false;
  /// Dropped by node-level overload control instead of executed; lint
  /// rule R10 requires shed_reason to be stamped alongside.
  bool shed = false;
  /// Why (meaningful only when `shed`).
  overload::ShedReason shed_reason = overload::ShedReason::kQueueDelay;
};

struct ScheduleResult {
  /// Indexed by request id.
  std::vector<RequestOutcome> outcomes;
  /// Last completion instant.
  units::Seconds makespan;
  /// Final state of the node's overload controllers for the run.
  int final_admission_limit = 0;
  uint64_t limit_increases = 0;
  uint64_t limit_decreases = 0;
  uint64_t queue_sheds = 0;
};

/// Event-driven admission controller over one workload and hardware model.
class ScheduleSimulator {
 public:
  ScheduleSimulator(const Workload* workload, const sim::SimConfig& config);

  /// Runs `requests` (ids must be dense 0..n-1; any order) to completion
  /// under `policy`, admitting through `oracle`. Decision instants are slot
  /// frees (completions) and arrivals into idle slots; the engine executes
  /// between decisions.
  StatusOr<ScheduleResult> Run(const std::vector<Request>& requests,
                               Policy* policy, MixOracle* oracle,
                               const ScheduleOptions& options) const;

 private:
  const Workload* workload_;
  sim::SimConfig config_;
};

}  // namespace contender::sched

#endif  // CONTENDER_SCHED_SIMULATOR_H_

// Admission policies: given the waiting queue and the live running mix,
// choose which request gets the free execution slot. This is the paper's
// motivating consumer (§1): the predictor exists so that exactly this
// decision can be made from predicted-in-mix latencies instead of arrival
// order.
//
// Every policy is deterministic: scores are pure functions of the queue,
// the mix and the oracle, and ties break by queue position (earliest
// arrival, then lowest request id — the queue's sort order).

#ifndef CONTENDER_SCHED_POLICY_H_
#define CONTENDER_SCHED_POLICY_H_

#include <memory>
#include <string>
#include <vector>

#include "sched/mix_oracle.h"
#include "sched/request.h"
#include "util/statusor.h"
#include "util/units.h"

namespace contender::sched {

/// Decision context for one admission: the instant the slot is granted,
/// the templates currently occupying the other slots (admitted and not yet
/// completed), and the prediction oracle.
struct SchedContext {
  units::Seconds now;
  const std::vector<int>* running_templates = nullptr;
  MixOracle* oracle = nullptr;
};

/// An admission policy. Pick returns the queue position of the request to
/// admit, restricted to the arrived prefix queue.ArrivedBy(ctx.now), which
/// the caller guarantees is non-empty.
class Policy {
 public:
  virtual ~Policy() = default;

  [[nodiscard]] virtual const std::string& name() const = 0;
  [[nodiscard]] virtual StatusOr<size_t> Pick(const RequestQueue& queue,
                                              const SchedContext& ctx) = 0;
};

/// The four shipped policies.
enum class PolicyKind {
  /// Arrival order; the work-conserving baseline.
  kFifo,
  /// Shortest predicted *isolated* latency first (contention-blind SJF).
  kShortestIsolatedFirst,
  /// Greedy contention-aware: admit the candidate whose predicted
  /// continuum latency in the current running mix (CQI against the live
  /// mix) minimizes the predicted added completion time.
  kGreedyContention,
  /// Earliest-slack-first over deadline-carrying candidates using
  /// predicted-in-mix latency; degrades to greedy when nothing in the
  /// arrived prefix has a deadline.
  kDeadlineAware,
};

[[nodiscard]] std::unique_ptr<Policy> MakePolicy(PolicyKind kind);
[[nodiscard]] const std::string& PolicyKindName(PolicyKind kind);
[[nodiscard]] const std::vector<PolicyKind>& AllPolicyKinds();

}  // namespace contender::sched

#endif  // CONTENDER_SCHED_POLICY_H_

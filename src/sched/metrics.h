// Schedule-quality metrics over one ScheduleResult: makespan, response
// percentiles, queue waits, SLA violations, per-tenant breakdowns, and how
// good the predictions behind each admission decision turned out to be.

#ifndef CONTENDER_SCHED_METRICS_H_
#define CONTENDER_SCHED_METRICS_H_

#include <cstddef>
#include <map>

#include "sched/simulator.h"
#include "util/summary_stats.h"
#include "util/units.h"

namespace contender::sched {

/// Keyed accumulation of one tenant's (or any other key's) schedule
/// quality: exact quantiles via the retained-sample SampleStats plus the
/// deadline tallies. Merge folds another accumulator of the same key —
/// the per-node/per-shard aggregation path the fleet layer uses, so fleet
/// metrics reuse these percentiles instead of reimplementing them.
struct TenantScheduleStats {
  size_t requests = 0;
  size_t deadline_requests = 0;
  size_t deadline_misses = 0;
  /// admit - arrival, seconds.
  SampleStats queue_wait;
  /// arrival -> completion, seconds.
  SampleStats response;

  /// Folds one completed request into the accumulator.
  void Add(units::Seconds wait, units::Seconds resp, bool has_deadline,
           bool missed_deadline);
  /// Folds another accumulator (same key) into this one; exact — merged
  /// quantiles equal the quantiles of the concatenated samples.
  void Merge(const TenantScheduleStats& other);

  /// Misses over deadline-carrying requests; 0 when none carried one.
  [[nodiscard]] double sla_miss_rate() const;
};

/// Per-key map merge: every key of `from` is merged into `into`
/// (inserting absent keys), so per-node maps fold associatively.
void MergeTenantStats(std::map<int, TenantScheduleStats>* into,
                      const std::map<int, TenantScheduleStats>& from);

struct ScheduleMetrics {
  size_t requests = 0;
  /// Requests that executed to completion (requests - shed).
  size_t completed = 0;
  /// Requests dropped by node-level overload control, by stamped reason.
  size_t shed = 0;
  std::map<overload::ShedReason, size_t> shed_by_reason;
  /// Last completion instant.
  units::Seconds makespan;

  /// admit - arrival.
  units::Seconds mean_queue_wait;
  units::Seconds max_queue_wait;

  /// arrival -> completion (what an SLA is written against).
  units::Seconds mean_response;
  units::Seconds p50_response;
  units::Seconds p95_response;
  units::Seconds p99_response;

  /// Deadline-carrying requests and how many finished late. The miss rate
  /// is 0 when no request carried a deadline.
  size_t deadline_requests = 0;
  size_t deadline_misses = 0;
  double sla_miss_rate = 0.0;

  /// Mean relative error |predicted - actual| / actual of the in-mix
  /// prediction recorded at each admission, against the realized execution
  /// latency.
  double mean_prediction_error = 0.0;

  /// Keyed by Request::tenant_id. Single-tenant streams produce exactly
  /// one entry (tenant 0) whose aggregates match the top-level fields.
  std::map<int, TenantScheduleStats> per_tenant;
};

/// Aggregates a completed run. Every outcome must be either completed or
/// shed (the simulator guarantees this for an OK result); shed outcomes
/// count in `shed`/`shed_by_reason` and are excluded from the latency,
/// deadline, and prediction-error aggregates — they never ran.
ScheduleMetrics ComputeScheduleMetrics(const ScheduleResult& result);

}  // namespace contender::sched

#endif  // CONTENDER_SCHED_METRICS_H_

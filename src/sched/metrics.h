// Schedule-quality metrics over one ScheduleResult: makespan, response
// percentiles, queue waits, SLA violations, and how good the predictions
// behind each admission decision turned out to be.

#ifndef CONTENDER_SCHED_METRICS_H_
#define CONTENDER_SCHED_METRICS_H_

#include <cstddef>

#include "sched/simulator.h"
#include "util/units.h"

namespace contender::sched {

struct ScheduleMetrics {
  size_t requests = 0;
  /// Last completion instant.
  units::Seconds makespan;

  /// admit - arrival.
  units::Seconds mean_queue_wait;
  units::Seconds max_queue_wait;

  /// arrival -> completion (what an SLA is written against).
  units::Seconds mean_response;
  units::Seconds p50_response;
  units::Seconds p95_response;
  units::Seconds p99_response;

  /// Deadline-carrying requests and how many finished late. The miss rate
  /// is 0 when no request carried a deadline.
  size_t deadline_requests = 0;
  size_t deadline_misses = 0;
  double sla_miss_rate = 0.0;

  /// Mean relative error |predicted - actual| / actual of the in-mix
  /// prediction recorded at each admission, against the realized execution
  /// latency.
  double mean_prediction_error = 0.0;
};

/// Aggregates a completed run. All outcomes must be completed (the
/// simulator guarantees this for an OK result).
ScheduleMetrics ComputeScheduleMetrics(const ScheduleResult& result);

}  // namespace contender::sched

#endif  // CONTENDER_SCHED_METRICS_H_

#include "sched/metrics.h"

#include <cmath>

#include "util/summary_stats.h"

namespace contender::sched {

void TenantScheduleStats::Add(units::Seconds wait, units::Seconds resp,
                              bool has_deadline, bool missed_deadline) {
  ++requests;
  queue_wait.Add(wait.value());
  response.Add(resp.value());
  if (has_deadline) {
    ++deadline_requests;
    if (missed_deadline) ++deadline_misses;
  }
}

void TenantScheduleStats::Merge(const TenantScheduleStats& other) {
  requests += other.requests;
  deadline_requests += other.deadline_requests;
  deadline_misses += other.deadline_misses;
  queue_wait.Merge(other.queue_wait);
  response.Merge(other.response);
}

double TenantScheduleStats::sla_miss_rate() const {
  if (deadline_requests == 0) return 0.0;
  return static_cast<double>(deadline_misses) /
         static_cast<double>(deadline_requests);
}

void MergeTenantStats(std::map<int, TenantScheduleStats>* into,
                      const std::map<int, TenantScheduleStats>& from) {
  for (const auto& [tenant, stats] : from) {
    (*into)[tenant].Merge(stats);
  }
}

ScheduleMetrics ComputeScheduleMetrics(const ScheduleResult& result) {
  ScheduleMetrics m;
  m.requests = result.outcomes.size();
  m.makespan = result.makespan;
  if (result.outcomes.empty()) return m;

  SampleStats waits;
  SampleStats responses;
  SummaryStats prediction_errors;
  for (const RequestOutcome& out : result.outcomes) {
    if (out.shed) {
      ++m.shed;
      ++m.shed_by_reason[out.shed_reason];
      continue;
    }
    ++m.completed;
    waits.Add(out.queue_wait.value());
    responses.Add(out.response_time.value());
    m.per_tenant[out.request.tenant_id].Add(
        out.queue_wait, out.response_time, out.request.deadline.has_value(),
        out.missed_deadline);
    if (out.request.deadline.has_value()) {
      ++m.deadline_requests;
      if (out.missed_deadline) ++m.deadline_misses;
    }
    const double actual = out.execution_latency.value();
    if (actual > 0.0) {
      prediction_errors.Add(
          std::abs(out.predicted_latency.value() - actual) / actual);
    }
  }
  m.mean_queue_wait = units::Seconds(waits.mean());
  m.max_queue_wait = units::Seconds(waits.max());
  m.mean_response = units::Seconds(responses.mean());
  m.p50_response = units::Seconds(responses.p50());
  m.p95_response = units::Seconds(responses.p95());
  m.p99_response = units::Seconds(responses.p99());
  if (m.deadline_requests > 0) {
    m.sla_miss_rate = static_cast<double>(m.deadline_misses) /
                      static_cast<double>(m.deadline_requests);
  }
  m.mean_prediction_error = prediction_errors.mean();
  return m;
}

}  // namespace contender::sched

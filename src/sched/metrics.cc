#include "sched/metrics.h"

#include <cmath>

#include "util/summary_stats.h"

namespace contender::sched {

ScheduleMetrics ComputeScheduleMetrics(const ScheduleResult& result) {
  ScheduleMetrics m;
  m.requests = result.outcomes.size();
  m.makespan = result.makespan;
  if (result.outcomes.empty()) return m;

  SampleStats waits;
  SampleStats responses;
  SummaryStats prediction_errors;
  for (const RequestOutcome& out : result.outcomes) {
    waits.Add(out.queue_wait.value());
    responses.Add(out.response_time.value());
    if (out.request.deadline.has_value()) {
      ++m.deadline_requests;
      if (out.missed_deadline) ++m.deadline_misses;
    }
    const double actual = out.execution_latency.value();
    if (actual > 0.0) {
      prediction_errors.Add(
          std::abs(out.predicted_latency.value() - actual) / actual);
    }
  }
  m.mean_queue_wait = units::Seconds(waits.mean());
  m.max_queue_wait = units::Seconds(waits.max());
  m.mean_response = units::Seconds(responses.mean());
  m.p50_response = units::Seconds(responses.p50());
  m.p95_response = units::Seconds(responses.p95());
  m.p99_response = units::Seconds(responses.p99());
  if (m.deadline_requests > 0) {
    m.sla_miss_rate = static_cast<double>(m.deadline_misses) /
                      static_cast<double>(m.deadline_requests);
  }
  m.mean_prediction_error = prediction_errors.mean();
  return m;
}

}  // namespace contender::sched

#include "sched/simulator.h"

#include <algorithm>

#include "sim/engine.h"
#include "util/logging.h"
#include "util/random.h"

namespace contender::sched {

ScheduleSimulator::ScheduleSimulator(const Workload* workload,
                                     const sim::SimConfig& config)
    : workload_(workload), config_(config) {
  CONTENDER_CHECK(workload_ != nullptr);
}

StatusOr<ScheduleResult> ScheduleSimulator::Run(
    const std::vector<Request>& requests, Policy* policy, MixOracle* oracle,
    const ScheduleOptions& options) const {
  if (policy == nullptr || oracle == nullptr) {
    return Status::InvalidArgument("ScheduleSimulator: null policy/oracle");
  }
  if (options.target_mpl < 1) {
    return Status::InvalidArgument("ScheduleSimulator: target_mpl < 1");
  }
  const size_t n = requests.size();
  std::vector<bool> seen(n, false);
  for (const Request& r : requests) {
    if (r.request_id < 0 || static_cast<size_t>(r.request_id) >= n ||
        seen[static_cast<size_t>(r.request_id)]) {
      return Status::InvalidArgument(
          "ScheduleSimulator: request ids must be dense and unique");
    }
    seen[static_cast<size_t>(r.request_id)] = true;
    if (r.template_index < 0 || r.template_index >= workload_->size()) {
      return Status::InvalidArgument(
          "ScheduleSimulator: template index outside the workload");
    }
  }

  // Draw every query instance up front, in request-id order: the executed
  // workload is identical for every policy (and for repeated runs with the
  // same seed), so schedules are compared on ordering alone.
  Rng rng(options.seed);
  const uint64_t engine_seed = rng.Next();
  std::vector<int> template_by_id(n, -1);
  for (const Request& r : requests) {
    template_by_id[static_cast<size_t>(r.request_id)] = r.template_index;
  }
  std::vector<sim::QuerySpec> specs(n);
  for (size_t id = 0; id < n; ++id) {
    specs[id] = workload_->Instantiate(template_by_id[id], &rng);
  }

  sim::Engine engine(config_, engine_seed);
  RequestQueue queue(requests);
  std::vector<int> running;  // template indices, admitted and unfinished
  std::vector<int> pid_to_request;
  int in_flight = 0;
  overload::NodeOverloadControl control(options.overload);

  ScheduleResult result;
  result.outcomes.resize(n);
  Status loop_status = Status::OK();

  // Grants every free slot it can: picks from the arrived prefix, or — when
  // the queue holds only future arrivals — advances the decision instant to
  // the earliest arrival and pre-schedules the admission there (the engine
  // activates it at that time). Pre-scheduled admissions commit against the
  // mix known at decision time; this only affects the choice among
  // same-instant arrival batches wider than the free slots.
  auto admit_free_slots = [&](units::Seconds now) -> Status {
    while (in_flight < control.EffectiveLimit(options.target_mpl) &&
           !queue.empty()) {
      const units::Seconds t = std::max(now, queue.NextArrival());
      // CoDel head-of-queue shedding: the oldest arrived request measures
      // the standing queue delay; when that delay has persisted above
      // target for a full interval, drop it (stamped kQueueDelay) instead
      // of starting it. Critical-tier work is exempt.
      if (queue.ArrivedBy(t) > 0) {
        const Request& head = queue.at(0);
        if (head.criticality < overload::Criticality::kCritical &&
            control.ShouldShedQueueHead(t, t - head.arrival_time)) {
          const Request r = queue.Take(0);
          RequestOutcome& out =
              result.outcomes[static_cast<size_t>(r.request_id)];
          out.request = r;
          out.queue_wait = t - r.arrival_time;
          out.shed = true;
          out.shed_reason = overload::ShedReason::kQueueDelay;
          continue;
        }
      }
      SchedContext ctx{t, &running, oracle};
      CONTENDER_ASSIGN_OR_RETURN(const size_t pick,
                                 policy->Pick(queue, ctx));
      if (pick >= queue.ArrivedBy(t)) {
        return Status::Internal("policy picked a request that has not "
                                "arrived at the decision instant");
      }
      const Request r = queue.Take(pick);
      RequestOutcome& out =
          result.outcomes[static_cast<size_t>(r.request_id)];
      out.request = r;
      out.admit_time = t;
      out.queue_wait = t - r.arrival_time;
      out.predicted_latency = oracle->PredictInMix(r.template_index, running);
      out.mix_size_at_admission = static_cast<int>(running.size());
      const int pid =
          engine.AddProcess(specs[static_cast<size_t>(r.request_id)], t);
      if (static_cast<size_t>(pid) >= pid_to_request.size()) {
        pid_to_request.resize(static_cast<size_t>(pid) + 1, -1);
      }
      pid_to_request[static_cast<size_t>(pid)] = r.request_id;
      running.push_back(r.template_index);
      ++in_flight;
    }
    return Status::OK();
  };

  engine.SetCompletionCallback([&](const sim::ProcessResult& res) {
    const int request_id = pid_to_request[static_cast<size_t>(res.process_id)];
    CONTENDER_CHECK(request_id >= 0);
    RequestOutcome& out = result.outcomes[static_cast<size_t>(request_id)];
    out.completion_time = units::Seconds(res.end_time);
    out.execution_latency = res.latency();
    out.response_time = out.completion_time - out.request.arrival_time;
    out.completed = true;
    if (out.request.deadline.has_value() &&
        out.completion_time > *out.request.deadline) {
      out.missed_deadline = true;
    }
    result.makespan = std::max(result.makespan, out.completion_time);

    auto slot = std::find(running.begin(), running.end(),
                          out.request.template_index);
    CONTENDER_CHECK(slot != running.end());
    running.erase(slot);
    --in_flight;
    control.OnCompletion(out.predicted_latency, out.execution_latency);

    if (loop_status.ok()) {
      const Status s = admit_free_slots(engine.now());
      if (!s.ok()) {
        loop_status = s;
        engine.RequestStop();
      }
    }
  });

  CONTENDER_RETURN_IF_ERROR(admit_free_slots(units::Seconds(0.0)));
  CONTENDER_RETURN_IF_ERROR(engine.Run());
  CONTENDER_RETURN_IF_ERROR(loop_status);
  for (const RequestOutcome& out : result.outcomes) {
    if (!out.completed && !out.shed) {
      return Status::Internal("request never completed");
    }
  }
  result.final_admission_limit = control.EffectiveLimit(options.target_mpl);
  result.limit_increases = control.limiter().increases();
  result.limit_decreases = control.limiter().decreases();
  result.queue_sheds = control.queue_sheds();
  return result;
}

}  // namespace contender::sched

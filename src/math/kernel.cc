#include "math/kernel.h"

#include <algorithm>
#include <cmath>

#include "util/summary_stats.h"

namespace contender {

double GaussianKernel(const Vector& a, const Vector& b, double gamma) {
  return std::exp(-gamma * SquaredDistance(a, b));
}

Matrix GaussianGramMatrix(const std::vector<Vector>& rows, double gamma) {
  const size_t n = rows.size();
  Matrix k(n, n);
  for (size_t i = 0; i < n; ++i) {
    k(i, i) = 1.0;
    for (size_t j = i + 1; j < n; ++j) {
      const double v = GaussianKernel(rows[i], rows[j], gamma);
      k(i, j) = v;
      k(j, i) = v;
    }
  }
  return k;
}

Matrix CenterGramMatrix(const Matrix& k) {
  const size_t n = k.rows();
  Vector row_mean(n, 0.0);
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) row_mean[i] += k(i, j);
    row_mean[i] /= static_cast<double>(n);
    total += row_mean[i];
  }
  total /= static_cast<double>(n);
  Matrix out(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      out(i, j) = k(i, j) - row_mean[i] - row_mean[j] + total;
    }
  }
  return out;
}

double MedianHeuristicGamma(const std::vector<Vector>& rows) {
  std::vector<double> d2;
  for (size_t i = 0; i < rows.size(); ++i) {
    for (size_t j = i + 1; j < rows.size(); ++j) {
      const double d = SquaredDistance(rows[i], rows[j]);
      if (d > 0.0) d2.push_back(d);
    }
  }
  if (d2.empty()) {
    const double dim = rows.empty() ? 1.0 : static_cast<double>(rows[0].size());
    return 1.0 / std::max(1.0, dim);
  }
  return 1.0 / Median(std::move(d2));
}

}  // namespace contender

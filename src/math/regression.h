// Ordinary least squares: simple (one predictor) and multiple regression.
//
// These are the workhorses of Contender: QS models (continuum point vs CQI),
// coefficient-transfer regressions (slope vs isolated latency, intercept vs
// slope), and spoiler growth models (latency vs MPL) are all OLS fits.

#ifndef CONTENDER_MATH_REGRESSION_H_
#define CONTENDER_MATH_REGRESSION_H_

#include <vector>

#include "math/matrix.h"
#include "util/statusor.h"

namespace contender {

/// y = slope * x + intercept.
struct LinearFit {
  double slope = 0.0;
  double intercept = 0.0;
  /// Coefficient of determination on the training data.
  double r_squared = 0.0;

  double Predict(double x) const { return slope * x + intercept; }
};

/// Fits a simple linear regression of y on x.
/// Requires x.size() == y.size() >= 2 and non-constant x.
StatusOr<LinearFit> FitSimpleLinear(const std::vector<double>& x,
                                    const std::vector<double>& y);

/// Multiple linear regression y = Xβ (+ intercept if add_intercept).
class MultipleLinearRegression {
 public:
  /// Fits by solving the (ridge-stabilized) normal equations.
  /// `rows` holds one feature vector per observation, all the same length.
  static StatusOr<MultipleLinearRegression> Fit(
      const std::vector<Vector>& rows, const std::vector<double>& y,
      bool add_intercept = true, double ridge = 1e-9);

  double Predict(const Vector& features) const;

  const Vector& coefficients() const { return beta_; }
  double intercept() const { return intercept_; }
  double r_squared() const { return r_squared_; }

 private:
  Vector beta_;
  double intercept_ = 0.0;
  bool has_intercept_ = false;
  double r_squared_ = 0.0;
};

}  // namespace contender

#endif  // CONTENDER_MATH_REGRESSION_H_

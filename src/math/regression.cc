#include "math/regression.h"

#include <cmath>
#include <cstddef>

namespace contender {

namespace {

double RSquared(const std::vector<double>& y,
                const std::vector<double>& predicted) {
  double mean = 0.0;
  for (double v : y) mean += v;
  mean /= static_cast<double>(y.size());
  double ss_tot = 0.0;
  double ss_res = 0.0;
  for (size_t i = 0; i < y.size(); ++i) {
    ss_tot += (y[i] - mean) * (y[i] - mean);
    ss_res += (y[i] - predicted[i]) * (y[i] - predicted[i]);
  }
  if (ss_tot <= 0.0) return 0.0;
  return 1.0 - ss_res / ss_tot;
}

}  // namespace

StatusOr<LinearFit> FitSimpleLinear(const std::vector<double>& x,
                                    const std::vector<double>& y) {
  if (x.size() != y.size()) {
    return Status::InvalidArgument("FitSimpleLinear: size mismatch");
  }
  if (x.size() < 2) {
    return Status::InvalidArgument("FitSimpleLinear: need >= 2 points");
  }
  const double n = static_cast<double>(x.size());
  double sx = 0.0, sy = 0.0, sxx = 0.0, sxy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    sxy += x[i] * y[i];
  }
  const double denom = n * sxx - sx * sx;
  if (std::fabs(denom) < 1e-12 * (1.0 + sxx)) {
    return Status::InvalidArgument("FitSimpleLinear: constant predictor");
  }
  LinearFit fit;
  fit.slope = (n * sxy - sx * sy) / denom;
  fit.intercept = (sy - fit.slope * sx) / n;
  std::vector<double> pred(x.size());
  for (size_t i = 0; i < x.size(); ++i) pred[i] = fit.Predict(x[i]);
  fit.r_squared = RSquared(y, pred);
  return fit;
}

StatusOr<MultipleLinearRegression> MultipleLinearRegression::Fit(
    const std::vector<Vector>& rows, const std::vector<double>& y,
    bool add_intercept, double ridge) {
  if (rows.size() != y.size()) {
    return Status::InvalidArgument("MultipleLinearRegression: size mismatch");
  }
  if (rows.empty()) {
    return Status::InvalidArgument("MultipleLinearRegression: empty input");
  }
  const size_t d = rows[0].size();
  for (const Vector& r : rows) {
    if (r.size() != d) {
      return Status::InvalidArgument(
          "MultipleLinearRegression: ragged feature rows");
    }
  }
  const size_t cols = d + (add_intercept ? 1 : 0);
  if (rows.size() < cols) {
    return Status::InvalidArgument(
        "MultipleLinearRegression: fewer observations than parameters");
  }

  // Normal equations XᵀX β = Xᵀy with a small ridge term for stability.
  Matrix xtx(cols, cols);
  Vector xty(cols, 0.0);
  for (size_t i = 0; i < rows.size(); ++i) {
    Vector xi(cols);
    for (size_t j = 0; j < d; ++j) xi[j] = rows[i][j];
    if (add_intercept) xi[d] = 1.0;
    for (size_t a = 0; a < cols; ++a) {
      xty[a] += xi[a] * y[i];
      for (size_t b = 0; b < cols; ++b) xtx(a, b) += xi[a] * xi[b];
    }
  }
  xtx.AddToDiagonal(ridge);

  StatusOr<Vector> beta = SolveLinearSystem(xtx, xty);
  if (!beta.ok()) return beta.status();

  MultipleLinearRegression model;
  model.has_intercept_ = add_intercept;
  model.beta_.assign(beta->begin(),
                     beta->begin() + static_cast<std::ptrdiff_t>(d));
  model.intercept_ = add_intercept ? (*beta)[d] : 0.0;

  std::vector<double> pred(rows.size());
  for (size_t i = 0; i < rows.size(); ++i) pred[i] = model.Predict(rows[i]);
  model.r_squared_ = RSquared(y, pred);
  return model;
}

double MultipleLinearRegression::Predict(const Vector& features) const {
  double s = intercept_;
  const size_t d = beta_.size() < features.size() ? beta_.size()
                                                  : features.size();
  for (size_t i = 0; i < d; ++i) s += beta_[i] * features[i];
  return s;
}

}  // namespace contender

#include "math/metrics.h"

#include <cassert>
#include <cmath>

namespace contender {

double MeanRelativeError(const std::vector<double>& observed,
                         const std::vector<double>& predicted) {
  assert(observed.size() == predicted.size());
  double sum = 0.0;
  size_t n = 0;
  for (size_t i = 0; i < observed.size(); ++i) {
    if (observed[i] == 0.0) continue;
    sum += std::fabs(observed[i] - predicted[i]) / std::fabs(observed[i]);
    ++n;
  }
  return n == 0 ? 0.0 : sum / static_cast<double>(n);
}

double RSquared(const std::vector<double>& observed,
                const std::vector<double>& predicted) {
  assert(observed.size() == predicted.size());
  if (observed.empty()) return 0.0;
  double mean = 0.0;
  for (double v : observed) mean += v;
  mean /= static_cast<double>(observed.size());
  double ss_tot = 0.0;
  double ss_res = 0.0;
  for (size_t i = 0; i < observed.size(); ++i) {
    ss_tot += (observed[i] - mean) * (observed[i] - mean);
    ss_res += (observed[i] - predicted[i]) * (observed[i] - predicted[i]);
  }
  if (ss_tot <= 0.0) return 0.0;
  return 1.0 - ss_res / ss_tot;
}

double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y) {
  assert(x.size() == y.size());
  if (x.size() < 2) return 0.0;
  const double n = static_cast<double>(x.size());
  double sx = 0.0, sy = 0.0, sxx = 0.0, syy = 0.0, sxy = 0.0;
  for (size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
    sxx += x[i] * x[i];
    syy += y[i] * y[i];
    sxy += x[i] * y[i];
  }
  const double cov = sxy - sx * sy / n;
  const double vx = sxx - sx * sx / n;
  const double vy = syy - sy * sy / n;
  if (vx <= 0.0 || vy <= 0.0) return 0.0;
  return cov / std::sqrt(vx * vy);
}

double Rmse(const std::vector<double>& observed,
            const std::vector<double>& predicted) {
  assert(observed.size() == predicted.size());
  if (observed.empty()) return 0.0;
  double s = 0.0;
  for (size_t i = 0; i < observed.size(); ++i) {
    const double d = observed[i] - predicted[i];
    s += d * d;
  }
  return std::sqrt(s / static_cast<double>(observed.size()));
}

}  // namespace contender

// Prediction-quality metrics used throughout the paper's evaluation:
// mean relative error (Eq. 1), R², Pearson correlation, RMSE.

#ifndef CONTENDER_MATH_METRICS_H_
#define CONTENDER_MATH_METRICS_H_

#include <vector>

namespace contender {

/// Mean relative error (paper Eq. 1):
///   MRE = (1/n) Σ |observed_i - predicted_i| / observed_i.
/// Observations with observed == 0 are skipped. Returns 0 for empty input.
double MeanRelativeError(const std::vector<double>& observed,
                         const std::vector<double>& predicted);

/// Coefficient of determination of `predicted` against `observed`.
/// Returns 0 when the observations are constant.
double RSquared(const std::vector<double>& observed,
                const std::vector<double>& predicted);

/// Pearson correlation coefficient; 0 when either input is constant.
double PearsonCorrelation(const std::vector<double>& x,
                          const std::vector<double>& y);

/// Root mean squared error.
double Rmse(const std::vector<double>& observed,
            const std::vector<double>& predicted);

}  // namespace contender

#endif  // CONTENDER_MATH_METRICS_H_

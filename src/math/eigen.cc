#include "math/eigen.h"

#include <algorithm>
#include <cmath>
#include <numeric>
#include <vector>

namespace contender {

StatusOr<EigenDecomposition> SymmetricEigen(const Matrix& a, int max_sweeps,
                                            double tolerance) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("SymmetricEigen: matrix not square");
  }
  const size_t n = a.rows();
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      if (std::fabs(a(i, j) - a(j, i)) >
          1e-8 * (1.0 + std::fabs(a(i, j)))) {
        return Status::InvalidArgument("SymmetricEigen: matrix not symmetric");
      }
    }
  }

  Matrix m = a;
  Matrix v = Matrix::Identity(n);

  auto off_diagonal_norm = [&]() {
    double s = 0.0;
    for (size_t i = 0; i < n; ++i) {
      for (size_t j = i + 1; j < n; ++j) s += m(i, j) * m(i, j);
    }
    return std::sqrt(s);
  };

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (off_diagonal_norm() < tolerance) break;
    for (size_t p = 0; p < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        const double apq = m(p, q);
        if (std::fabs(apq) < 1e-300) continue;
        const double app = m(p, p);
        const double aqq = m(q, q);
        const double theta = (aqq - app) / (2.0 * apq);
        const double t = (theta >= 0.0 ? 1.0 : -1.0) /
                         (std::fabs(theta) +
                          std::sqrt(theta * theta + 1.0));
        const double c = 1.0 / std::sqrt(t * t + 1.0);
        const double s = t * c;
        // Apply rotation J(p, q, theta) on both sides of m: m = Jᵀ m J.
        for (size_t k = 0; k < n; ++k) {
          const double mkp = m(k, p);
          const double mkq = m(k, q);
          m(k, p) = c * mkp - s * mkq;
          m(k, q) = s * mkp + c * mkq;
        }
        for (size_t k = 0; k < n; ++k) {
          const double mpk = m(p, k);
          const double mqk = m(q, k);
          m(p, k) = c * mpk - s * mqk;
          m(q, k) = s * mpk + c * mqk;
        }
        for (size_t k = 0; k < n; ++k) {
          const double vkp = v(k, p);
          const double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Collect and sort by descending eigenvalue.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::sort(order.begin(), order.end(),
            [&](size_t x, size_t y) { return m(x, x) > m(y, y); });

  EigenDecomposition out;
  out.values.resize(n);
  out.vectors = Matrix(n, n);
  for (size_t c = 0; c < n; ++c) {
    out.values[c] = m(order[c], order[c]);
    for (size_t r = 0; r < n; ++r) out.vectors(r, c) = v(r, order[c]);
  }
  return out;
}

StatusOr<EigenDecomposition> GeneralizedSymmetricEigen(const Matrix& a,
                                                       const Matrix& b) {
  StatusOr<Matrix> l = CholeskyFactor(b);
  if (!l.ok()) return l.status();
  StatusOr<Matrix> linv = InvertLowerTriangular(*l);
  if (!linv.ok()) return linv.status();
  // C = L⁻¹ A L⁻ᵀ, symmetric by construction; symmetrize against roundoff.
  Matrix c = linv->Multiply(a).Multiply(linv->Transpose());
  const size_t n = c.rows();
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      const double avg = 0.5 * (c(i, j) + c(j, i));
      c(i, j) = c(j, i) = avg;
    }
  }
  StatusOr<EigenDecomposition> eig = SymmetricEigen(c);
  if (!eig.ok()) return eig.status();
  // Map eigenvectors back: v = L⁻ᵀ w.
  Matrix linv_t = linv->Transpose();
  eig->vectors = linv_t.Multiply(eig->vectors);
  return eig;
}

}  // namespace contender

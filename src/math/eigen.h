// Symmetric eigensolver (cyclic Jacobi rotations) used by kernel CCA.

#ifndef CONTENDER_MATH_EIGEN_H_
#define CONTENDER_MATH_EIGEN_H_

#include <cstddef>

#include "math/matrix.h"
#include "util/statusor.h"

namespace contender {

/// Result of an eigendecomposition: A = V diag(values) Vᵀ.
/// Eigenpairs are sorted by descending eigenvalue; eigenvectors are the
/// columns of `vectors`.
struct EigenDecomposition {
  Vector values;
  Matrix vectors;
};

/// Eigendecomposition of a symmetric matrix via the cyclic Jacobi method.
/// `a` must be square and (numerically) symmetric.
StatusOr<EigenDecomposition> SymmetricEigen(const Matrix& a,
                                            int max_sweeps = 64,
                                            double tolerance = 1e-12);

/// Solves the generalized symmetric eigenproblem A v = λ B v with B SPD,
/// by the Cholesky reduction B = L Lᵀ, C = L⁻¹ A L⁻ᵀ, C w = λ w, v = L⁻ᵀ w.
StatusOr<EigenDecomposition> GeneralizedSymmetricEigen(const Matrix& a,
                                                       const Matrix& b);

}  // namespace contender

#endif  // CONTENDER_MATH_EIGEN_H_

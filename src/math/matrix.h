// Dense row-major matrix and vector types with the linear algebra needed by
// the regression / KCCA / SVM components: products, transposes, Gaussian
// elimination, Cholesky factorization, and inverses of SPD matrices.

#ifndef CONTENDER_MATH_MATRIX_H_
#define CONTENDER_MATH_MATRIX_H_

#include <cstddef>
#include <initializer_list>
#include <vector>

#include "util/statusor.h"

namespace contender {

using Vector = std::vector<double>;

/// Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Constructs from nested initializer lists; all rows must be equal length.
  Matrix(std::initializer_list<std::initializer_list<double>> rows);

  static Matrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& operator()(size_t r, size_t c) { return data_[r * cols_ + c]; }
  double operator()(size_t r, size_t c) const { return data_[r * cols_ + c]; }

  /// This * other. Requires cols() == other.rows().
  Matrix Multiply(const Matrix& other) const;

  /// This * v. Requires cols() == v.size().
  Vector Multiply(const Vector& v) const;

  Matrix Transpose() const;

  /// Element-wise sum; requires equal shapes.
  Matrix Add(const Matrix& other) const;

  /// Scalar multiple.
  Matrix Scale(double s) const;

  /// Adds `s` to every diagonal entry (ridge regularization helper).
  void AddToDiagonal(double s);

  const std::vector<double>& data() const { return data_; }

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

/// Solves A x = b by Gaussian elimination with partial pivoting.
/// Fails with InvalidArgument on shape mismatch or a (near-)singular A.
StatusOr<Vector> SolveLinearSystem(Matrix a, Vector b);

/// Cholesky factorization of a symmetric positive-definite matrix: A = L Lᵀ.
/// Returns the lower-triangular L, or an error if A is not SPD.
StatusOr<Matrix> CholeskyFactor(const Matrix& a);

/// Solves L y = b (forward substitution) for lower-triangular L.
Vector ForwardSubstitute(const Matrix& l, const Vector& b);

/// Solves Lᵀ x = y (back substitution) given lower-triangular L.
Vector BackSubstituteTranspose(const Matrix& l, const Vector& y);

/// Inverse of a lower-triangular matrix with nonzero diagonal.
StatusOr<Matrix> InvertLowerTriangular(const Matrix& l);

/// Dot product; requires equal sizes.
double Dot(const Vector& a, const Vector& b);

/// Euclidean norm.
double Norm(const Vector& v);

/// Squared Euclidean distance between a and b; requires equal sizes.
double SquaredDistance(const Vector& a, const Vector& b);

}  // namespace contender

#endif  // CONTENDER_MATH_MATRIX_H_

#include "math/matrix.h"

#include <cassert>
#include <cmath>
#include <utility>

namespace contender {

Matrix::Matrix(std::initializer_list<std::initializer_list<double>> rows)
    : rows_(rows.size()), cols_(rows.size() ? rows.begin()->size() : 0) {
  data_.reserve(rows_ * cols_);
  for (const auto& row : rows) {
    assert(row.size() == cols_);
    for (double v : row) data_.push_back(v);
  }
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  assert(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(i, k);
      if (a == 0.0) continue;
      for (size_t j = 0; j < other.cols_; ++j) {
        out(i, j) += a * other(k, j);
      }
    }
  }
  return out;
}

Vector Matrix::Multiply(const Vector& v) const {
  assert(cols_ == v.size());
  Vector out(rows_, 0.0);
  for (size_t i = 0; i < rows_; ++i) {
    double s = 0.0;
    for (size_t j = 0; j < cols_; ++j) s += (*this)(i, j) * v[j];
    out[i] = s;
  }
  return out;
}

Matrix Matrix::Transpose() const {
  Matrix out(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
  }
  return out;
}

Matrix Matrix::Add(const Matrix& other) const {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out = *this;
  for (size_t i = 0; i < data_.size(); ++i) out.data_[i] += other.data_[i];
  return out;
}

Matrix Matrix::Scale(double s) const {
  Matrix out = *this;
  for (double& v : out.data_) v *= s;
  return out;
}

void Matrix::AddToDiagonal(double s) {
  const size_t n = rows_ < cols_ ? rows_ : cols_;
  for (size_t i = 0; i < n; ++i) (*this)(i, i) += s;
}

StatusOr<Vector> SolveLinearSystem(Matrix a, Vector b) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("SolveLinearSystem: matrix not square");
  }
  if (a.rows() != b.size()) {
    return Status::InvalidArgument("SolveLinearSystem: size mismatch");
  }
  const size_t n = a.rows();
  for (size_t col = 0; col < n; ++col) {
    // Partial pivoting.
    size_t pivot = col;
    double best = std::fabs(a(col, col));
    for (size_t r = col + 1; r < n; ++r) {
      const double v = std::fabs(a(r, col));
      if (v > best) {
        best = v;
        pivot = r;
      }
    }
    if (best < 1e-12) {
      return Status::InvalidArgument("SolveLinearSystem: singular matrix");
    }
    if (pivot != col) {
      for (size_t j = 0; j < n; ++j) std::swap(a(col, j), a(pivot, j));
      std::swap(b[col], b[pivot]);
    }
    const double d = a(col, col);
    for (size_t r = col + 1; r < n; ++r) {
      const double factor = a(r, col) / d;
      if (factor == 0.0) continue;
      a(r, col) = 0.0;
      for (size_t j = col + 1; j < n; ++j) a(r, j) -= factor * a(col, j);
      b[r] -= factor * b[col];
    }
  }
  Vector x(n, 0.0);
  for (size_t i = n; i-- > 0;) {
    double s = b[i];
    for (size_t j = i + 1; j < n; ++j) s -= a(i, j) * x[j];
    x[i] = s / a(i, i);
  }
  return x;
}

StatusOr<Matrix> CholeskyFactor(const Matrix& a) {
  if (a.rows() != a.cols()) {
    return Status::InvalidArgument("CholeskyFactor: matrix not square");
  }
  const size_t n = a.rows();
  Matrix l(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j <= i; ++j) {
      double s = a(i, j);
      for (size_t k = 0; k < j; ++k) s -= l(i, k) * l(j, k);
      if (i == j) {
        if (s <= 0.0) {
          return Status::InvalidArgument(
              "CholeskyFactor: matrix not positive definite");
        }
        l(i, j) = std::sqrt(s);
      } else {
        l(i, j) = s / l(j, j);
      }
    }
  }
  return l;
}

Vector ForwardSubstitute(const Matrix& l, const Vector& b) {
  assert(l.rows() == b.size());
  const size_t n = l.rows();
  Vector y(n, 0.0);
  for (size_t i = 0; i < n; ++i) {
    double s = b[i];
    for (size_t j = 0; j < i; ++j) s -= l(i, j) * y[j];
    y[i] = s / l(i, i);
  }
  return y;
}

Vector BackSubstituteTranspose(const Matrix& l, const Vector& y) {
  assert(l.rows() == y.size());
  const size_t n = l.rows();
  Vector x(n, 0.0);
  for (size_t i = n; i-- > 0;) {
    double s = y[i];
    for (size_t j = i + 1; j < n; ++j) s -= l(j, i) * x[j];
    x[i] = s / l(i, i);
  }
  return x;
}

StatusOr<Matrix> InvertLowerTriangular(const Matrix& l) {
  if (l.rows() != l.cols()) {
    return Status::InvalidArgument("InvertLowerTriangular: not square");
  }
  const size_t n = l.rows();
  for (size_t i = 0; i < n; ++i) {
    if (std::fabs(l(i, i)) < 1e-14) {
      return Status::InvalidArgument("InvertLowerTriangular: zero diagonal");
    }
  }
  Matrix inv(n, n);
  for (size_t c = 0; c < n; ++c) {
    Vector e(n, 0.0);
    e[c] = 1.0;
    Vector col = ForwardSubstitute(l, e);
    for (size_t r = 0; r < n; ++r) inv(r, c) = col[r];
  }
  return inv;
}

double Dot(const Vector& a, const Vector& b) {
  assert(a.size() == b.size());
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double Norm(const Vector& v) { return std::sqrt(Dot(v, v)); }

double SquaredDistance(const Vector& a, const Vector& b) {
  assert(a.size() == b.size());
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return s;
}

}  // namespace contender

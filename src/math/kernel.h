// Kernel functions and Gram-matrix construction for KCCA / SVR.

#ifndef CONTENDER_MATH_KERNEL_H_
#define CONTENDER_MATH_KERNEL_H_

#include <vector>

#include "math/matrix.h"

namespace contender {

/// Gaussian (RBF) kernel: exp(-gamma * ||a - b||²).
double GaussianKernel(const Vector& a, const Vector& b, double gamma);

/// Gram matrix K with K(i, j) = GaussianKernel(rows[i], rows[j], gamma).
Matrix GaussianGramMatrix(const std::vector<Vector>& rows, double gamma);

/// Centers a Gram matrix in feature space: K' = K - 1K - K1 + 1K1,
/// where 1 is the n×n matrix of 1/n entries.
Matrix CenterGramMatrix(const Matrix& k);

/// Heuristic gamma = 1 / median(squared pairwise distances); falls back to
/// 1/d for degenerate inputs (fewer than two distinct rows).
double MedianHeuristicGamma(const std::vector<Vector>& rows);

}  // namespace contender

#endif  // CONTENDER_MATH_KERNEL_H_

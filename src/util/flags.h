// Tiny command-line flag parser for bench and example binaries.
//
// Supports "--name=value" and "--name value" syntax plus boolean
// "--name" / "--no-name". Unknown flags are reported but not fatal.

#ifndef CONTENDER_UTIL_FLAGS_H_
#define CONTENDER_UTIL_FLAGS_H_

#include <cstdint>
#include <map>
#include <string>

namespace contender {

/// Parses argv into a name->value map and serves typed lookups with defaults.
class Flags {
 public:
  Flags(int argc, char** argv);

  bool Has(const std::string& name) const;
  std::string GetString(const std::string& name,
                        const std::string& default_value) const;
  int64_t GetInt(const std::string& name, int64_t default_value) const;
  double GetDouble(const std::string& name, double default_value) const;
  bool GetBool(const std::string& name, bool default_value) const;

  /// Common seed flag: --seed=N (default 42).
  uint64_t Seed() const { return static_cast<uint64_t>(GetInt("seed", 42)); }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace contender

#endif  // CONTENDER_UTIL_FLAGS_H_

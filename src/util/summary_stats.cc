#include "util/summary_stats.h"

#include <algorithm>
#include <cmath>
#include <limits>

namespace contender {

void SummaryStats::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double SummaryStats::variance() const {
  if (count_ < 2) return 0.0;
  return m2_ / static_cast<double>(count_ - 1);
}

double SummaryStats::stddev() const { return std::sqrt(variance()); }

void SummaryStats::Merge(const SummaryStats& other) {
  if (other.count_ == 0) return;
  if (count_ == 0) {
    *this = other;
    return;
  }
  const double n1 = static_cast<double>(count_);
  const double n2 = static_cast<double>(other.count_);
  const double delta = other.mean_ - mean_;
  const double n = n1 + n2;
  mean_ += delta * n2 / n;
  m2_ += other.m2_ + delta * delta * n1 * n2 / n;
  count_ += other.count_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double Mean(const std::vector<double>& v) {
  if (v.empty()) return 0.0;
  double s = 0.0;
  for (double x : v) s += x;
  return s / static_cast<double>(v.size());
}

double StdDev(const std::vector<double>& v) {
  if (v.size() < 2) return 0.0;
  const double m = Mean(v);
  double s = 0.0;
  for (double x : v) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(v.size() - 1));
}

namespace {

constexpr double kEmptySample = std::numeric_limits<double>::quiet_NaN();

}  // namespace

double Percentile(std::vector<double> v, double p) {
  if (v.empty()) return kEmptySample;
  std::sort(v.begin(), v.end());
  if (v.size() == 1) return v[0];
  const double rank = p / 100.0 * static_cast<double>(v.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return v[lo] + frac * (v[hi] - v[lo]);
}

double Median(std::vector<double> v) { return Percentile(std::move(v), 50.0); }

namespace {

// Rank lookup over an already-sorted sample.
double SortedPercentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return kEmptySample;
  if (sorted.size() == 1) return sorted[0];
  const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
  const size_t lo = static_cast<size_t>(rank);
  const size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + frac * (sorted[hi] - sorted[lo]);
}

}  // namespace

std::vector<double> Percentiles(std::vector<double> v,
                                const std::vector<double>& ps) {
  std::sort(v.begin(), v.end());
  std::vector<double> out;
  out.reserve(ps.size());
  for (double p : ps) out.push_back(SortedPercentile(v, p));
  return out;
}

void SampleStats::Add(double x) {
  moments_.Add(x);
  samples_.push_back(x);
  sorted_ = samples_.size() == 1;
}

void SampleStats::Merge(const SampleStats& other) {
  if (other.samples_.empty()) return;  // empty shard: exact no-op
  moments_.Merge(other.moments_);
  samples_.insert(samples_.end(), other.samples_.begin(),
                  other.samples_.end());
  sorted_ = false;
}

double SampleStats::percentile(double p) const {
  if (samples_.empty()) return kEmptySample;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  return SortedPercentile(samples_, p);
}

}  // namespace contender

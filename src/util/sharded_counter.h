// A striped monotonic counter for write-hot, read-rare statistics.
//
// One shared atomic that every serving thread bumps per request is a
// cache line the cores fight over — at sixteen threads the fight costs
// more than the prediction. A ShardedCounter gives each reader slot its
// own padded cache line to bump (relaxed, uncontended) and sums the
// stripes only when someone actually asks for the total. Totals are
// exact once writers quiesce and monotonically catch up while they run.

#ifndef CONTENDER_UTIL_SHARDED_COUNTER_H_
#define CONTENDER_UTIL_SHARDED_COUNTER_H_

#include <atomic>
#include <cstdint>

#include "util/cacheline.h"

namespace contender {

class ShardedCounter {
 public:
  /// Stripe count; sized to EpochDomain::kNumSlots so an epoch reader
  /// slot index is directly usable as a contention-free stripe index.
  static constexpr int kNumShards = 64;

  /// Adds `n` on a stripe. Any int is accepted — negative (an unengaged
  /// reader's -1 slot) or oversized indices fold onto a valid stripe, so
  /// callers can pass a slot index straight through.
  void Add(int shard, uint64_t n = 1) {
    const unsigned idx = static_cast<unsigned>(shard) % kNumShards;
    shards_[idx]->fetch_add(n, std::memory_order_relaxed);
  }

  /// Sum over stripes. Exact when writers are quiescent; otherwise a
  /// consistent-enough monotonic snapshot (each stripe read once).
  [[nodiscard]] uint64_t Total() const {
    uint64_t total = 0;
    for (int i = 0; i < kNumShards; ++i) {
      total += shards_[i]->load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  CachePadded<std::atomic<uint64_t>> shards_[kNumShards];
};

}  // namespace contender

#endif  // CONTENDER_UTIL_SHARDED_COUNTER_H_

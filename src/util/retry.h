// Deadline budgets and seeded-jitter exponential backoff — the only
// sanctioned way to retry or sleep in library code (tools/lint.py forbids
// naked sleep_for / ad-hoc retry loops outside this module).
//
// Time is injectable: every consumer takes a Clock*, so deadline and
// backoff behavior is testable without wall time (FakeClock advances
// instantly and records each sleep) and chaos runs stay deterministic.
// Jitter draws from a caller-seeded Rng, so the exact backoff sequence is
// reproducible from the seed.
//
// RetryWithBackoff returns OK on the first successful attempt, the last
// error Status when attempts are exhausted, kDeadlineExceeded (wrapping
// the last error) when the budget runs out first, and stops immediately —
// no retry — on non-retryable codes (kAborted and the caller-bug family).

#ifndef CONTENDER_UTIL_RETRY_H_
#define CONTENDER_UTIL_RETRY_H_

#include <functional>
#include <vector>

#include "util/mutex.h"
#include "util/random.h"
#include "util/thread_annotations.h"
#include "util/status.h"
#include "util/units.h"

namespace contender {

/// An injectable time source. Library code that waits must go through a
/// Clock so tests can substitute FakeClock.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Monotonic now; only differences are meaningful.
  virtual units::Seconds Now() = 0;

  /// Blocks (or, for FakeClock, advances) for `duration`.
  virtual void Sleep(units::Seconds duration) = 0;

  /// The process-wide monotonic wall clock (never null, never destroyed).
  static Clock* System();
};

/// Deterministic manual clock for tests: Sleep() advances time instantly
/// and records the requested duration. Thread-safe.
class FakeClock final : public Clock {
 public:
  explicit FakeClock(units::Seconds start = units::Seconds(0.0));

  units::Seconds Now() override;
  void Sleep(units::Seconds duration) override;

  /// Advances time without recording a sleep (external event).
  void Advance(units::Seconds duration);

  /// Every Sleep() duration, in call order.
  [[nodiscard]] std::vector<units::Seconds> sleeps() const;

 private:
  mutable Mutex mutex_;
  units::Seconds now_ GUARDED_BY(mutex_);
  std::vector<units::Seconds> sleeps_ GUARDED_BY(mutex_);
};

/// Retry policy: attempt/backoff/deadline budgets.
struct RetryOptions {
  /// Total attempts, including the first (>= 1).
  int max_attempts = 3;
  /// Backoff before the second attempt; grows by `backoff_multiplier` per
  /// retry, capped at `max_backoff`, then scaled by jitter.
  units::Seconds initial_backoff{0.010};
  double backoff_multiplier = 2.0;
  units::Seconds max_backoff{1.0};
  /// Uniform jitter factor in [1 - j, 1 + j] applied to each delay
  /// (j in [0, 1)); drawn from the caller-seeded schedule Rng.
  double jitter_fraction = 0.25;
  /// Total budget from the first attempt's start: when the *next* planned
  /// sleep would overrun it, RetryWithBackoff gives up with
  /// kDeadlineExceeded instead of sleeping.
  units::Seconds deadline{5.0};
};

/// Whether a failure with this code may be retried. kAborted (deliberate
/// abandonment), kResourceExhausted (a hard quota or budget a retry cannot
/// refill), and the caller-bug family (kInvalidArgument,
/// kFailedPrecondition, kOutOfRange, kUnimplemented) are terminal;
/// everything else — including kUnavailable, the transient-overload shed
/// code — is assumed transient.
[[nodiscard]] bool IsRetryableStatusCode(StatusCode code);

/// The deterministic delay sequence RetryWithBackoff sleeps through:
/// exponential growth with seeded jitter. Exposed for tests and for call
/// sites that need the schedule without the loop.
class BackoffSchedule {
 public:
  BackoffSchedule(const RetryOptions& options, uint64_t seed);

  /// Delay before the next retry (first call = delay before attempt 2).
  units::Seconds Next();

 private:
  RetryOptions options_;
  Rng rng_;
  units::Seconds base_;  // pre-jitter delay for the next retry
};

/// Runs `attempt` under `options` (see file comment for the result
/// contract). `clock` must be non-null; pass FakeClock in tests. The
/// jitter sequence is a pure function of `jitter_seed`.
Status RetryWithBackoff(const RetryOptions& options, uint64_t jitter_seed,
                        Clock* clock, const std::function<Status()>& attempt);

}  // namespace contender

#endif  // CONTENDER_UTIL_RETRY_H_

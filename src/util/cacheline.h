// Cache-line geometry and padding helpers for hot shared state.
//
// Two atomics that live on one cache line ping-pong that line between
// cores even when the logical variables are independent ("false
// sharing") — the serving hot path pays that cost on every counter
// bump. Every shared-but-independent atomic in the read path is wrapped
// in CachePadded so each one owns a full line.
//
// std::hardware_destructive_interference_size would be the standard
// spelling, but GCC warns (-Winterference-size) that its value is ABI-
// fragile across -mtune flags; a fixed 64 matches every x86-64 and the
// common AArch64 parts, and over-aligning on exotic 128-byte-line parts
// costs only memory, never correctness.

#ifndef CONTENDER_UTIL_CACHELINE_H_
#define CONTENDER_UTIL_CACHELINE_H_

#include <cstddef>
#include <new>

namespace contender {

/// The padding granularity used for hot shared state.
inline constexpr std::size_t kCacheLineSize = 64;

/// Wraps T so it starts on its own cache line and nothing else shares the
/// line behind it. Intended for atomics in arrays indexed by shard/slot:
/// `CachePadded<std::atomic<uint64_t>> counters[kShards];`.
template <typename T>
struct alignas(kCacheLineSize) CachePadded {
  T value{};

  T* operator->() { return &value; }
  const T* operator->() const { return &value; }
  T& operator*() { return value; }
  const T& operator*() const { return value; }
};

static_assert(alignof(CachePadded<char>) == kCacheLineSize);
static_assert(sizeof(CachePadded<char>) == kCacheLineSize);

}  // namespace contender

#endif  // CONTENDER_UTIL_CACHELINE_H_

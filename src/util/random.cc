#include "util/random.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace contender {

namespace {

uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Rng::Next() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

double Rng::Uniform01() {
  // 53 bits of mantissa.
  return static_cast<double>(Next() >> 11) * 0x1.0p-53;
}

double Rng::Uniform(double lo, double hi) {
  return lo + (hi - lo) * Uniform01();
}

uint64_t Rng::UniformInt(uint64_t n) {
  assert(n > 0);
  // Rejection sampling to avoid modulo bias.
  const uint64_t limit = ~uint64_t{0} - (~uint64_t{0} % n);
  uint64_t x;
  do {
    x = Next();
  } while (x >= limit);
  return x % n;
}

int64_t Rng::UniformInt(int64_t lo, int64_t hi) {
  assert(lo <= hi);
  return lo + static_cast<int64_t>(
                  UniformInt(static_cast<uint64_t>(hi - lo) + 1));
}

double Rng::Normal() {
  // Box–Muller; draws u1 in (0,1] to avoid log(0).
  double u1 = 1.0 - Uniform01();
  double u2 = Uniform01();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::Normal(double mean, double stddev) {
  return mean + stddev * Normal();
}

double Rng::LogNormal(double mu, double sigma) {
  return std::exp(Normal(mu, sigma));
}

std::vector<int> Rng::Permutation(int n) {
  std::vector<int> p(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) p[static_cast<size_t>(i)] = i;
  Shuffle(&p);
  return p;
}

Rng Rng::Fork() { return Rng(Next()); }

}  // namespace contender

// Lightweight Status / error-code type used across all public APIs.
//
// Follows the RocksDB/Abseil idiom: functions that can fail return a Status
// (or StatusOr<T>, see statusor.h) instead of throwing exceptions across
// library boundaries.

#ifndef CONTENDER_UTIL_STATUS_H_
#define CONTENDER_UTIL_STATUS_H_

#include <optional>
#include <ostream>
#include <string>
#include <utility>

namespace contender {

/// Error categories used by Status.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kFailedPrecondition,
  kOutOfRange,
  kInternal,
  kUnimplemented,
  kResourceExhausted,
  /// A time or retry budget ran out before the operation completed
  /// (util/retry.h returns this when a deadline cuts retries short).
  kDeadlineExceeded,
  /// The operation was deliberately abandoned and must not be retried
  /// (util/retry.h treats this as terminal).
  kAborted,
  /// The service is transiently overloaded and shed the request; retrying
  /// later (with backoff, against the caller's retry budget) may succeed.
  /// This is the canonical code for load sheds — in contrast with
  /// kResourceExhausted, which marks a hard quota/budget that retries
  /// cannot refill (util/retry.h treats that one as terminal).
  kUnavailable,
};

/// Returns a human-readable name for a StatusCode ("OK", "InvalidArgument"...).
const char* StatusCodeToString(StatusCode code);

/// Inverse of StatusCodeToString; nullopt for unrecognized names. Round-trips
/// every StatusCode.
std::optional<StatusCode> StatusCodeFromString(const std::string& name);

/// A success-or-error result. Cheap to copy on the OK path. Marked
/// [[nodiscard]] so a dropped error status is a compile-time warning
/// (error under CONTENDER_WERROR); intentionally ignored statuses must be
/// cast to void.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<Code>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates a non-OK Status to the caller.
#define CONTENDER_RETURN_IF_ERROR(expr)          \
  do {                                           \
    ::contender::Status _st = (expr);            \
    if (!_st.ok()) return _st;                   \
  } while (0)

}  // namespace contender

#endif  // CONTENDER_UTIL_STATUS_H_

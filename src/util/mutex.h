// The repo's ONLY sanctioned blocking-synchronization vocabulary:
// annotated Mutex / MutexLock / CondVar wrappers over the std
// primitives, visible to Clang Thread Safety Analysis
// (util/thread_annotations.h). tools/lint.py rule R7 bans the raw
// std::mutex family everywhere under src/ except this file, so every
// lock in the tree carries TSA capability semantics: GUARDED_BY fields
// are compiler-checked, REQUIRES contracts are compiler-checked, and a
// forgotten unlock is a build break under the clang-tsa CI job.
//
// Await: condition waits are NOT spelled as bare wait loops over a
// std::condition_variable. `mu.Await(pred)` (caller holds mu) blocks
// until pred() — evaluated with mu held — returns true. Wakeups need no
// explicit signaling: Mutex::Unlock notifies Await-waiters whenever any
// are registered, so "change guarded state under the lock, drop the
// lock" is the complete publication protocol (the shape
// absl::Mutex::Await pioneered). CondVar remains for call sites that
// want explicitly targeted NotifyOne/NotifyAll signaling; its Wait
// takes the Mutex* so the REQUIRES contract is visible to the analysis.
//
// Mixing discipline: use Await *or* a CondVar per mutex, not both for
// cross-dependent predicates — each side's pre-sleep unlock bypasses
// the other's notification channel (both do a courtesy wake of Await
// waiters before sleeping, but a CondVar waiter can only be woken by
// its own Notify). Every module in this tree uses one style per mutex.
//
// Cost: Unlock reads one int (guarded, uncontended) and notifies only
// when a waiter is actually registered; the wrappers otherwise compile
// to the raw std calls. tests/util/thread_annotations_test.cc pins
// behavioral parity with the raw primitives under TSan.

#ifndef CONTENDER_UTIL_MUTEX_H_
#define CONTENDER_UTIL_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <utility>

#include "util/thread_annotations.h"

namespace contender {

class CondVar;

/// An exclusive lock with TSA capability semantics. Non-reentrant.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  ~Mutex() = default;

  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  /// Blocks until the lock is held. Prefer MutexLock scoping.
  void Lock() ACQUIRE() { mu_.lock(); }

  /// Releases the lock; wakes Await-waiters when any are registered, so
  /// publishing guarded state is just "mutate under the lock, unlock".
  void Unlock() RELEASE() {
    const bool wake = await_waiters_ > 0;
    mu_.unlock();
    if (wake) await_cv_.notify_all();
  }

  /// Acquires without blocking; true iff the lock is now held.
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

  /// Tells the analysis (and the reader) the lock is held here. No-op
  /// at runtime; use where a REQUIRES contract crosses an indirection
  /// the analysis cannot follow.
  void AssertHeld() const ASSERT_CAPABILITY(this) {}

  /// Blocks until `pred()` — evaluated with this mutex held — returns
  /// true. The lock is released while waiting and re-held when Await
  /// returns (and whenever pred runs). Spurious wakeups are absorbed.
  /// The predicate lambda runs under the lock but the analysis cannot
  /// see that through the template indirection, so condition lambdas
  /// over guarded state carry NO_THREAD_SAFETY_ANALYSIS (budgeted,
  /// lint rule R8).
  template <typename Pred>
  void Await(Pred pred) REQUIRES(this) {
    // Courtesy wake: our pre-sleep unlock (inside cv wait) bypasses
    // Unlock's notify, so publish any state this thread changed first.
    if (await_waiters_ > 0) await_cv_.notify_all();
    std::unique_lock<std::mutex> waiter(mu_, std::adopt_lock);
    ++await_waiters_;
    await_cv_.wait(waiter, [&pred] { return pred(); });
    --await_waiters_;
    waiter.release();  // the caller still holds the mutex
  }

 private:
  friend class CondVar;

  /// Pre-sleep courtesy from CondVar waiters (their internal unlock
  /// also bypasses Unlock's notify path).
  void WakeAwaitWaiters() REQUIRES(this) {
    if (await_waiters_ > 0) await_cv_.notify_all();
  }

  std::mutex mu_;
  /// Await-waiters registered on await_cv_. Only read/written with mu_
  /// held (including inside the wait loop, which re-holds mu_ whenever
  /// it evaluates the predicate).
  int await_waiters_ GUARDED_BY(this) = 0;
  std::condition_variable await_cv_;
};

/// RAII lock scope: acquires in the constructor, releases in the
/// destructor. The TSA scoped-capability annotations make the held
/// region visible to the analysis.
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex* mu) ACQUIRE(mu) : mu_(mu) { mu_->Lock(); }
  ~MutexLock() RELEASE() { mu_->Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex* const mu_;
};

/// A condition variable for explicitly signaled waits. Every Wait takes
/// the Mutex* it rides on, so the caller-holds-the-lock contract is a
/// compiler-checked REQUIRES instead of a comment.
class CondVar {
 public:
  CondVar() = default;

  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  /// Releases `mu`, waits for a notification (or a spurious wakeup),
  /// and re-acquires `mu` before returning.
  void Wait(Mutex* mu) REQUIRES(mu) {
    mu->WakeAwaitWaiters();
    std::unique_lock<std::mutex> waiter(mu->mu_, std::adopt_lock);
    cv_.wait(waiter);
    waiter.release();
  }

  /// Waits until `pred()` — evaluated with `mu` held — returns true.
  template <typename Pred>
  void Wait(Mutex* mu, Pred pred) REQUIRES(mu) {
    while (!pred()) Wait(mu);
  }

  /// Waits up to `timeout` for a notification; false on timeout.
  template <typename Rep, typename Period>
  bool WaitFor(Mutex* mu, std::chrono::duration<Rep, Period> timeout)
      REQUIRES(mu) {
    mu->WakeAwaitWaiters();
    std::unique_lock<std::mutex> waiter(mu->mu_, std::adopt_lock);
    const std::cv_status status = cv_.wait_for(waiter, timeout);
    waiter.release();
    return status == std::cv_status::no_timeout;
  }

  /// Waits up to `timeout` for `pred()` (evaluated with `mu` held) to
  /// turn true; returns the final pred() value, exactly like
  /// std::condition_variable::wait_for's predicate overload.
  template <typename Pred, typename Rep, typename Period>
  bool WaitFor(Mutex* mu, std::chrono::duration<Rep, Period> timeout,
               Pred pred) REQUIRES(mu) {
    mu->WakeAwaitWaiters();
    std::unique_lock<std::mutex> waiter(mu->mu_, std::adopt_lock);
    const bool result = cv_.wait_for(waiter, timeout, std::move(pred));
    waiter.release();
    return result;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace contender

#endif  // CONTENDER_UTIL_MUTEX_H_

// StatusOr<T>: holds either a value of type T or an error Status.

#ifndef CONTENDER_UTIL_STATUSOR_H_
#define CONTENDER_UTIL_STATUSOR_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace contender {

/// A value-or-error result. Construct from a T (implies OK) or from a non-OK
/// Status. Accessing value() on an error aborts in debug builds.
template <typename T>
class StatusOr {
 public:
  /// Constructs from an error status. `status` must not be OK.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!status_.ok());
  }

  /// Constructs from a value; the status is OK.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Assigns the value of a StatusOr expression to `lhs`, or returns its error.
#define CONTENDER_ASSIGN_OR_RETURN(lhs, expr)       \
  do {                                              \
    auto _result = (expr);                          \
    if (!_result.ok()) return _result.status();     \
    lhs = std::move(_result).value();               \
  } while (0)

}  // namespace contender

#endif  // CONTENDER_UTIL_STATUSOR_H_

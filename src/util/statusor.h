// StatusOr<T>: holds either a value of type T or an error Status.

#ifndef CONTENDER_UTIL_STATUSOR_H_
#define CONTENDER_UTIL_STATUSOR_H_

#include <cassert>
#include <optional>
#include <utility>

#include "util/status.h"

namespace contender {

/// A value-or-error result. Construct from a T (implies OK) or from a non-OK
/// Status. Accessing value() on an error aborts in debug builds. Marked
/// [[nodiscard]]: silently dropping a fallible result hides the error path.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Constructs from an error status. `status` must not be OK.
  StatusOr(Status status) : status_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!status_.ok());
  }

  /// Constructs from a value; the status is OK.
  StatusOr(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  const T& value() const& {
    assert(ok());
    return *value_;
  }
  T& value() & {
    assert(ok());
    return *value_;
  }
  T&& value() && {
    assert(ok());
    return std::move(*value_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

/// Assigns the value of a StatusOr expression to `lhs`, or returns its
/// error. `lhs` may be an existing lvalue or a new declaration
/// (`CONTENDER_ASSIGN_OR_RETURN(const Foo f, MakeFoo())`), which is the
/// only way to unwrap types without a default constructor. Expands to
/// multiple statements: must not be the body of an unbraced `if`/`for`.
#define CONTENDER_ASSIGN_OR_RETURN(lhs, expr)                              \
  CONTENDER_INTERNAL_ASSIGN_OR_RETURN_(                                    \
      CONTENDER_INTERNAL_CONCAT_(_status_or_value, __LINE__), lhs, expr)

#define CONTENDER_INTERNAL_ASSIGN_OR_RETURN_(var, lhs, expr) \
  auto var = (expr);                                         \
  if (!var.ok()) return var.status();                        \
  lhs = std::move(var).value()

#define CONTENDER_INTERNAL_CONCAT_IMPL_(a, b) a##b
#define CONTENDER_INTERNAL_CONCAT_(a, b) \
  CONTENDER_INTERNAL_CONCAT_IMPL_(a, b)

}  // namespace contender

#endif  // CONTENDER_UTIL_STATUSOR_H_

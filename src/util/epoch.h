// Epoch-based reclamation for read-mostly shared objects.
//
// The serving hot path must load the current ModelSnapshot, use it, and
// never take a lock — while a writer occasionally replaces the snapshot
// and must know when the displaced one is safe to release. Classic RCU
// shape. Readers announce the epoch they entered in a per-slot atomic
// (one cache line each, claimed by CAS from a per-thread hint, so the
// announcement never contends with other readers); the writer retires a
// displaced object tagged with the epoch it was current in, advances the
// global epoch, and releases a retired object only once every active
// announcement is strictly newer than its tag. A reader announced at
// epoch e can only be dereferencing objects whose eventual retire tag is
// >= e, so nothing it can see is ever released under it (the proof
// sketch lives in DESIGN.md §12).
//
// LeanStore keeps the same discipline for its per-thread backend state:
// per-worker structures the hot path touches without coordination, and a
// slow path that scans the workers. The read side here is three atomic
// operations (claim, confirm, release); the write side is mutex-guarded
// because writers are rare (hot-swap publishes) and already serialized.
//
// Lifetime: the domain must outlive all guards; destroying it with a
// reader still registered is a caller bug and CHECK-fails.

#ifndef CONTENDER_UTIL_EPOCH_H_
#define CONTENDER_UTIL_EPOCH_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "util/cacheline.h"
#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace contender {

/// One independent reclamation scope (one per SnapshotHolder).
class EpochDomain {
 public:
  /// Concurrent reader-registration capacity. More simultaneous readers
  /// than slots is not an error: the guard reports !engaged() and the
  /// caller falls back to its locking slow path.
  static constexpr int kNumSlots = 64;

  EpochDomain();
  ~EpochDomain();

  EpochDomain(const EpochDomain&) = delete;
  EpochDomain& operator=(const EpochDomain&) = delete;

  /// Lock-free read-side registration. While engaged, any object retired
  /// at or after the announced epoch stays alive. Guards nest freely —
  /// each claims its own slot.
  class ReaderGuard {
   public:
    explicit ReaderGuard(EpochDomain* domain);
    ~ReaderGuard();

    ReaderGuard(const ReaderGuard&) = delete;
    ReaderGuard& operator=(const ReaderGuard&) = delete;

    /// False when every slot was taken; the caller must use its slow
    /// path instead of touching epoch-protected objects.
    [[nodiscard]] bool engaged() const { return slot_ >= 0; }
    /// The claimed slot index in [0, kNumSlots); also usable as a
    /// contention-free shard index for reader-side statistics. -1 when
    /// not engaged.
    [[nodiscard]] int slot() const { return slot_; }

   private:
    EpochDomain* domain_;
    int slot_ = -1;
  };

  /// Writer side: parks `object` until no reader can still see it, then
  /// drops the reference (releases the object unless the caller handed
  /// out other shared_ptr copies). Advances the epoch and opportunistically
  /// reclaims. Thread-safe, but writers are expected to be rare.
  void Retire(std::shared_ptr<const void> object);

  /// Releases every retired object no active reader can see. Returns how
  /// many were released. Called from Retire; exposed for tests and for
  /// idle-time sweeps.
  size_t Reclaim();

  /// Currently parked (retired but not yet reclaimable) objects.
  [[nodiscard]] size_t retired_pending() const;
  /// Current epoch (starts at 1, advances once per Retire).
  [[nodiscard]] uint64_t epoch() const {
    return epoch_.load(std::memory_order_acquire);
  }
  /// Slots currently announcing (diagnostic; racy by nature).
  [[nodiscard]] int active_readers() const;

 private:
  friend class ReaderGuard;

  /// Slot value 0 = free; otherwise the announced epoch (epochs start
  /// at 1, so 0 is unambiguous). Reader-side; never locked.
  CachePadded<std::atomic<uint64_t>> slots_[kNumSlots];  // contender-lint: lock-free
  std::atomic<uint64_t> epoch_{1};

  struct Retired {
    std::shared_ptr<const void> object;
    uint64_t tag = 0;  // epoch the object was current in when retired
  };
  /// Writer seam only; readers never touch retired_.
  mutable Mutex writer_mutex_;
  std::vector<Retired> retired_ GUARDED_BY(writer_mutex_);
};

}  // namespace contender

#endif  // CONTENDER_UTIL_EPOCH_H_

// Minimal leveled logging and assertion macros.

#ifndef CONTENDER_UTIL_LOGGING_H_
#define CONTENDER_UTIL_LOGGING_H_

#include <cstdlib>
#include <iostream>
#include <sstream>

namespace contender {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3 };

/// Global log threshold; messages below it are suppressed. Default: kInfo.
LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line, bool fatal = false);
  ~LogMessage();

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  bool fatal_;
  bool enabled_;
  std::ostringstream stream_;
};

// Swallows the streamed expression when logging is disabled.
struct NullStream {
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

// Converts a streamed expression to void inside the CHECK ternary;
// operator& binds more loosely than operator<<.
struct Voidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal
}  // namespace contender

#define CONTENDER_LOG(level)                                          \
  ::contender::internal::LogMessage(::contender::LogLevel::k##level,  \
                                    __FILE__, __LINE__)               \
      .stream()

/// Fatal check: prints the failed condition and aborts.
#define CONTENDER_CHECK(cond)                                             \
  (cond) ? (void)0                                                        \
         : ::contender::internal::Voidify() &                             \
               ::contender::internal::LogMessage(                         \
                   ::contender::LogLevel::kError, __FILE__, __LINE__,     \
                   true)                                                  \
                   .stream()                                              \
               << "Check failed: " #cond " "

#define CONTENDER_CHECK_OK(status_expr)                     \
  do {                                                      \
    ::contender::Status _s = (status_expr);                 \
    CONTENDER_CHECK(_s.ok()) << _s.ToString();              \
  } while (0)

/// Debug-only invariant check: identical to CONTENDER_CHECK in debug
/// builds, compiled out (condition unevaluated) under NDEBUG.
#ifndef NDEBUG
#define CONTENDER_DCHECK(cond) CONTENDER_CHECK(cond)
#else
#define CONTENDER_DCHECK(cond) \
  while (false) CONTENDER_CHECK(cond)
#endif

#endif  // CONTENDER_UTIL_LOGGING_H_

// Streaming summary statistics (Welford) and small batch helpers.

#ifndef CONTENDER_UTIL_SUMMARY_STATS_H_
#define CONTENDER_UTIL_SUMMARY_STATS_H_

#include <cstddef>
#include <vector>

namespace contender {

/// Accumulates count / mean / variance / min / max in one pass (Welford's
/// algorithm, numerically stable).
class SummaryStats {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 when count < 2.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return mean_ * static_cast<double>(count_); }

  /// Merges another accumulator into this one.
  void Merge(const SummaryStats& other);

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Mean of `v`; 0 for empty input.
double Mean(const std::vector<double>& v);

/// Sample standard deviation of `v`; 0 when v.size() < 2.
double StdDev(const std::vector<double>& v);

/// p-th percentile (0..100) by linear interpolation. An empty sample has
/// no quantiles: the result is quiet NaN (a deliberate poison value —
/// every comparison against it is false, so it cannot silently pass a
/// threshold check the way a fabricated 0 would). A single-element sample
/// returns that element at every rank.
double Percentile(std::vector<double> v, double p);

/// Median; NaN for an empty sample (see Percentile).
double Median(std::vector<double> v);

/// Percentiles for several ranks at once, sorting the sample once.
/// Returns one value per entry of `ps` (each 0..100); every entry is NaN
/// for an empty sample (see Percentile).
std::vector<double> Percentiles(std::vector<double> v,
                                const std::vector<double>& ps);

/// Sample accumulator that retains every observation for exact quantiles
/// (sorted-sample linear interpolation) alongside streaming moments. Used
/// where the tail matters — per-request latency distributions, SLA
/// reporting — and the sample count is small enough to keep.
class SampleStats {
 public:
  void Add(double x);

  size_t count() const { return moments_.count(); }
  bool empty() const { return samples_.empty(); }
  double mean() const { return moments_.mean(); }
  double stddev() const { return moments_.stddev(); }
  double min() const { return moments_.min(); }
  double max() const { return moments_.max(); }
  double sum() const { return moments_.sum(); }

  /// Folds another accumulator's samples and moments into this one (the
  /// per-thread/per-shard stats merge). Merging an empty shard is an
  /// exact no-op: a thread that served zero requests contributes no
  /// samples, so it can never drag a merged quantile to NaN — only a
  /// merge in which EVERY shard was empty stays empty (and then
  /// percentile() returns the deliberate NaN poison).
  void Merge(const SampleStats& other);

  /// Exact p-th percentile (0..100) over the retained samples; quiet NaN
  /// on an empty accumulator (see Percentile above). The sorted order is
  /// cached between calls and invalidated by Add.
  double percentile(double p) const;
  double p50() const { return percentile(50.0); }
  double p95() const { return percentile(95.0); }
  double p99() const { return percentile(99.0); }

 private:
  SummaryStats moments_;
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
};

}  // namespace contender

#endif  // CONTENDER_UTIL_SUMMARY_STATS_H_

// Streaming summary statistics (Welford) and small batch helpers.

#ifndef CONTENDER_UTIL_SUMMARY_STATS_H_
#define CONTENDER_UTIL_SUMMARY_STATS_H_

#include <cstddef>
#include <vector>

namespace contender {

/// Accumulates count / mean / variance / min / max in one pass (Welford's
/// algorithm, numerically stable).
class SummaryStats {
 public:
  void Add(double x);

  size_t count() const { return count_; }
  double mean() const { return mean_; }
  /// Sample variance (n-1 denominator); 0 when count < 2.
  double variance() const;
  double stddev() const;
  double min() const { return min_; }
  double max() const { return max_; }
  double sum() const { return mean_ * static_cast<double>(count_); }

  /// Merges another accumulator into this one.
  void Merge(const SummaryStats& other);

 private:
  size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Mean of `v`; 0 for empty input.
double Mean(const std::vector<double>& v);

/// Sample standard deviation of `v`; 0 when v.size() < 2.
double StdDev(const std::vector<double>& v);

/// p-th percentile (0..100) by linear interpolation; requires non-empty v.
double Percentile(std::vector<double> v, double p);

/// Median; requires non-empty v.
double Median(std::vector<double> v);

}  // namespace contender

#endif  // CONTENDER_UTIL_SUMMARY_STATS_H_

#include "util/logging.h"

namespace contender {

namespace {
LogLevel g_level = LogLevel::kInfo;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "DEBUG";
    case LogLevel::kInfo:
      return "INFO";
    case LogLevel::kWarning:
      return "WARN";
    case LogLevel::kError:
      return "ERROR";
  }
  return "?";
}
}  // namespace

LogLevel GetLogLevel() { return g_level; }
void SetLogLevel(LogLevel level) { g_level = level; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line, bool fatal)
    : level_(level), fatal_(fatal), enabled_(fatal || level >= g_level) {
  if (enabled_) {
    const char* base = file;
    for (const char* p = file; *p; ++p) {
      if (*p == '/') base = p + 1;
    }
    stream_ << "[" << LevelName(level_) << " " << base << ":" << line << "] ";
  }
}

LogMessage::~LogMessage() {
  if (enabled_) {
    std::cerr << stream_.str() << std::endl;
  }
  if (fatal_) std::abort();
}

}  // namespace internal
}  // namespace contender

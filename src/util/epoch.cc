#include "util/epoch.h"

#include <algorithm>
#include <limits>
#include <thread>
#include <utility>

#include "util/logging.h"

namespace contender {

namespace {

// Per-thread starting slot for the claim scan. Distinct threads start at
// distinct slots, so steady-state claims are CASes on a line no other
// reader touches; the scan only walks on collision (more threads than
// slots, or two threads racing the same hint).
int ThreadSlotHint() {
  static std::atomic<int> next_hint{0};
  thread_local const int hint =
      next_hint.fetch_add(1, std::memory_order_relaxed) %
      EpochDomain::kNumSlots;
  return hint;
}

}  // namespace

EpochDomain::EpochDomain() = default;

EpochDomain::~EpochDomain() {
  for (int i = 0; i < kNumSlots; ++i) {
    CONTENDER_CHECK(slots_[i]->load(std::memory_order_acquire) == 0)
        << "EpochDomain destroyed with reader registered in slot " << i;
  }
  // No readers left: every retired object is trivially safe to drop.
  MutexLock lock(&writer_mutex_);
  retired_.clear();
}

EpochDomain::ReaderGuard::ReaderGuard(EpochDomain* domain) : domain_(domain) {
  uint64_t epoch = domain_->epoch_.load(std::memory_order_seq_cst);
  const int hint = ThreadSlotHint();
  for (int probe = 0; probe < kNumSlots; ++probe) {
    const int idx = (hint + probe) % kNumSlots;
    uint64_t expected = 0;
    if (domain_->slots_[idx]->compare_exchange_strong(
            expected, epoch, std::memory_order_seq_cst)) {
      slot_ = idx;
      break;
    }
  }
  if (slot_ < 0) return;  // saturated: caller takes the slow path
  // Close the announce race: if the epoch advanced between our load and
  // the claim, a writer may have scanned the slots before our claim was
  // visible. Re-announce until the epoch holds still; the loop runs at
  // most once per concurrent Retire.
  while (true) {
    const uint64_t current =
        domain_->epoch_.load(std::memory_order_seq_cst);
    if (current == epoch) break;
    epoch = current;
    domain_->slots_[slot_]->store(epoch, std::memory_order_seq_cst);
  }
}

EpochDomain::ReaderGuard::~ReaderGuard() {
  if (slot_ < 0) return;
  // Release-publishes every read made under the guard before the slot
  // frees, so a writer that observes the free slot also observes that
  // this reader is done with anything it dereferenced.
  domain_->slots_[slot_]->store(0, std::memory_order_release);
}

void EpochDomain::Retire(std::shared_ptr<const void> object) {
  {
    MutexLock lock(&writer_mutex_);
    retired_.push_back(
        {std::move(object), epoch_.load(std::memory_order_relaxed)});
  }
  epoch_.fetch_add(1, std::memory_order_seq_cst);
  Reclaim();
}

size_t EpochDomain::Reclaim() {
  // A retired object tagged G is invisible to future readers (they will
  // announce the advanced epoch > G) and to every active reader whose
  // announcement exceeds G — so once min(active announcements) > G it is
  // unreachable and safe to drop.
  uint64_t min_announced = std::numeric_limits<uint64_t>::max();
  for (int i = 0; i < kNumSlots; ++i) {
    const uint64_t announced = slots_[i]->load(std::memory_order_seq_cst);
    if (announced != 0) min_announced = std::min(min_announced, announced);
  }
  MutexLock lock(&writer_mutex_);
  const size_t before = retired_.size();
  retired_.erase(
      std::remove_if(retired_.begin(), retired_.end(),
                     [min_announced](const Retired& r) {
                       return r.tag < min_announced;
                     }),
      retired_.end());
  return before - retired_.size();
}

size_t EpochDomain::retired_pending() const {
  MutexLock lock(&writer_mutex_);
  return retired_.size();
}

int EpochDomain::active_readers() const {
  int active = 0;
  for (int i = 0; i < kNumSlots; ++i) {
    if (slots_[i]->load(std::memory_order_acquire) != 0) ++active;
  }
  return active;
}

}  // namespace contender

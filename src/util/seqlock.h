// A sequence lock: optimistic, lock-free reads of a small trivially-
// copyable value that a (externally serialized) writer replaces in place.
//
// Protocol: the writer bumps a sequence counter to odd, stores the
// payload, and bumps it back to even. A reader loads the sequence,
// copies the payload, and re-loads the sequence; the copy is valid only
// when both loads saw the same even value. Readers never write shared
// state — the read side scales linearly with cores, which is why the
// serving hot path publishes its snapshot pointer through one of these
// (serve/snapshot_holder.h, DESIGN.md §12).
//
// TSAN-cleanliness: a textbook seqlock reads the payload non-atomically
// and is therefore a data race under the C++ memory model even though
// the retry discards torn copies. Here the payload is mirrored into
// word-sized atomics accessed with relaxed ordering, so there is no race
// to report, and the seq counter's acquire/release ordering plus the
// acquire fence before the validation load give the copy real
// happens-before edges (Boehm, "Can seqlocks get along with programming
// language memory models?", MSPC'12).
//
// The write side is deliberately NOT a mutex: writers must already be
// serialized by the owner (the holder's writer seam). Entering the write
// section while it is held — reentrantly or from a second writer — is a
// protocol violation and CHECK-fails immediately rather than corrupting
// readers (tests/util/seqlock_test.cc exercises the death).

#ifndef CONTENDER_UTIL_SEQLOCK_H_
#define CONTENDER_UTIL_SEQLOCK_H_

#include <atomic>
#include <cstdint>
#include <cstring>
#include <type_traits>

#include "util/logging.h"
#include "util/retry.h"
#include "util/status.h"
#include "util/units.h"

namespace contender {

/// Seqlock over a trivially-copyable T (the enable_if keeps the template
/// uninstantiable for anything else — asserted by a detection-idiom test,
/// the same negative-compile harness units.h uses).
template <typename T,
          typename = std::enable_if_t<std::is_trivially_copyable_v<T>>>
class Seqlock {
 public:
  Seqlock() { WriteWords(T{}); }
  explicit Seqlock(const T& initial) { WriteWords(initial); }

  Seqlock(const Seqlock&) = delete;
  Seqlock& operator=(const Seqlock&) = delete;

  /// RAII write section. Constructing a second guard while one is live —
  /// from the same thread (reentrancy) or any other — CHECK-fails: the
  /// writer side is a seam the owner must serialize, not a lock that
  /// queues. Non-copyable and non-movable so a section cannot be
  /// duplicated or smuggled across scopes.
  class WriteGuard {
   public:
    explicit WriteGuard(Seqlock* lock) : lock_(lock) {
      CONTENDER_CHECK(!lock_->write_held_.exchange(
          true, std::memory_order_acquire))
          << "Seqlock: write section entered while already held "
             "(reentrant or unserialized writer)";
      // Odd sequence = write in progress; the acq_rel RMW keeps the
      // payload stores below from being hoisted above it.
      lock_->seq_.fetch_add(1, std::memory_order_acq_rel);
    }

    ~WriteGuard() {
      // Even again; release-publishes every Set() before it.
      lock_->seq_.fetch_add(1, std::memory_order_release);
      lock_->write_held_.store(false, std::memory_order_release);
    }

    WriteGuard(const WriteGuard&) = delete;
    WriteGuard& operator=(const WriteGuard&) = delete;
    WriteGuard(WriteGuard&&) = delete;
    WriteGuard& operator=(WriteGuard&&) = delete;

    /// Stores a new value; may be called any number of times inside the
    /// section (readers only ever see the state at section exit).
    void Set(const T& value) { lock_->StoreWords(value); }

   private:
    Seqlock* lock_;
  };

  /// Opens a write section (see WriteGuard).
  [[nodiscard]] WriteGuard StartWrite() { return WriteGuard(this); }

  /// Replaces the value in one self-contained write section.
  void Write(const T& value) {
    WriteGuard guard(this);
    guard.Set(value);
  }

  /// One optimistic read probe. False when a write was in flight or
  /// landed mid-copy; the copy in `*out` is garbage in that case and must
  /// be discarded.
  [[nodiscard]] bool TryReadOnce(T* out) const {
    const uint64_t before = seq_.load(std::memory_order_acquire);
    if (before & 1) return false;
    uint64_t words[kWords];
    for (std::size_t w = 0; w < kWords; ++w) {
      words[w] = words_[w].load(std::memory_order_relaxed);
    }
    // Orders the relaxed payload loads above before the validation load
    // below (everything is atomic, so this is ordering, not race repair).
    std::atomic_thread_fence(std::memory_order_acquire);
    if (seq_.load(std::memory_order_relaxed) != before) return false;
    std::memcpy(out, words, sizeof(T));
    return true;
  }

  /// Bounded-spin read: up to `max_spins` probes. False only while a
  /// writer overlaps every probe — with the owner's writers serialized
  /// and brief, a handful of spins virtually always suffices, and the
  /// caller degrades to its slow path instead of spinning forever.
  [[nodiscard]] bool TryRead(T* out, int max_spins) const {
    for (int spin = 0; spin < max_spins; ++spin) {
      if (TryReadOnce(out)) return true;
    }
    return false;
  }

  /// Spinning read with a time budget: rounds of `spins_per_probe` probes
  /// separated by `probe_pause` sleeps on `clock` until `budget` elapses
  /// (then kDeadlineExceeded). Injecting a FakeClock makes the timeout
  /// path deterministic and instant — the bounded-spin timeout test
  /// drives this with a writer section deliberately held open.
  Status ReadWithBudget(T* out, Clock* clock, units::Seconds budget,
                        int spins_per_probe = 64,
                        units::Seconds probe_pause = units::Seconds(1e-6)) const {
    CONTENDER_CHECK(clock != nullptr) << "Seqlock: clock must be non-null";
    const units::Seconds start = clock->Now();
    while (true) {
      if (TryRead(out, spins_per_probe)) return Status::OK();
      if (clock->Now() - start >= budget) {
        return Status::DeadlineExceeded(
            "Seqlock: read budget exhausted while a write section was held");
      }
      clock->Sleep(probe_pause);
    }
  }

  /// Sequence counter value (even = quiescent); for tests and metrics.
  [[nodiscard]] uint64_t sequence() const {
    return seq_.load(std::memory_order_acquire);
  }

 private:
  static constexpr std::size_t kWords =
      (sizeof(T) + sizeof(uint64_t) - 1) / sizeof(uint64_t);

  // Constructor-time store: no section needed, nothing can observe it.
  void WriteWords(const T& value) { StoreWords(value); }

  void StoreWords(const T& value) {
    uint64_t words[kWords] = {};
    std::memcpy(words, &value, sizeof(T));
    for (std::size_t w = 0; w < kWords; ++w) {
      words_[w].store(words[w], std::memory_order_relaxed);
    }
    // Orders the payload stores before the guard's closing seq bump even
    // on architectures where relaxed stores may sink.
    std::atomic_thread_fence(std::memory_order_release);
  }

  std::atomic<uint64_t> seq_{0};
  std::atomic<bool> write_held_{false};
  std::atomic<uint64_t> words_[kWords > 0 ? kWords : 1];
};

}  // namespace contender

#endif  // CONTENDER_UTIL_SEQLOCK_H_

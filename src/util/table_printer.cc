#include "util/table_printer.h"

#include <algorithm>
#include <cstdio>
#include <utility>

namespace contender {

TablePrinter::TablePrinter(std::vector<std::string> header)
    : header_(std::move(header)) {}

void TablePrinter::AddRow(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void TablePrinter::Print(std::ostream& os) const {
  std::vector<size_t> widths(header_.size());
  for (size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (size_t c = 0; c < row.size(); ++c) {
      const std::string& cell = row[c];
      const size_t pad = widths[c] - cell.size();
      os << "  ";
      if (c == 0) {
        os << cell << std::string(pad, ' ');
      } else {
        os << std::string(pad, ' ') << cell;
      }
    }
    os << "\n";
  };
  print_row(header_);
  size_t total = 0;
  for (size_t w : widths) total += w + 2;
  os << std::string(total, '-') << "\n";
  for (const auto& row : rows_) print_row(row);
}

std::string FormatDouble(double v, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", digits, v);
  return buf;
}

std::string FormatPercent(double ratio, int digits) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f%%", digits, ratio * 100.0);
  return buf;
}

}  // namespace contender

// Zero-overhead dimensional types for the quantities Contender passes
// around: virtual time (Seconds), storage volumes (Bytes, Pages),
// checked [0,1] ratios (Fraction), continuum coordinates (ContinuumPoint),
// Concurrent Query Intensity values (Cqi) and multiprogramming levels
// (Mpl).
//
// The paper's math is full of same-shaped scalars — latencies, continuum
// points, CQI fractions and MPLs are all "a double" — so a swapped
// argument pair compiles silently and only shows up as a skewed Fig. 7/8
// reproduction. Each type here supports only the arithmetic its dimension
// legally admits (Seconds/Seconds yields a dimensionless double; there is
// no Seconds + Bytes), construction from a raw double is explicit, and
// every type is static_assert-ed to be trivially copyable and no larger
// than a pointer, so the wrappers vanish at -O1.
//
// Conventions:
//   * `value()` exposes the underlying scalar for boundary code (I/O,
//     regression feature vectors, printing). Core model code should stay
//     in the typed domain.
//   * Checked constructions (`Fraction::Make`, `LatencyRange::Make`)
//     return StatusOr and reject dimension-violating inputs; `Clamp`
//     variants exist for trusted measurement paths.

#ifndef CONTENDER_UTIL_UNITS_H_
#define CONTENDER_UTIL_UNITS_H_

#include <compare>
#include <cstddef>
#include <type_traits>

#include "util/statusor.h"

namespace contender::units {

/// Virtual time, in seconds. Closed under addition/subtraction and scaling
/// by a dimensionless factor; the ratio of two durations is dimensionless.
class Seconds {
 public:
  constexpr Seconds() = default;
  constexpr explicit Seconds(double seconds) : v_(seconds) {}

  [[nodiscard]] constexpr double value() const { return v_; }

  constexpr Seconds& operator+=(Seconds o) {
    v_ += o.v_;
    return *this;
  }
  constexpr Seconds& operator-=(Seconds o) {
    v_ -= o.v_;
    return *this;
  }

  friend constexpr Seconds operator+(Seconds a, Seconds b) {
    return Seconds(a.v_ + b.v_);
  }
  friend constexpr Seconds operator-(Seconds a, Seconds b) {
    return Seconds(a.v_ - b.v_);
  }
  friend constexpr Seconds operator-(Seconds a) { return Seconds(-a.v_); }
  friend constexpr Seconds operator*(Seconds a, double k) {
    return Seconds(a.v_ * k);
  }
  friend constexpr Seconds operator*(double k, Seconds a) {
    return Seconds(k * a.v_);
  }
  friend constexpr Seconds operator/(Seconds a, double k) {
    return Seconds(a.v_ / k);
  }
  /// Duration ratio: dimensionless.
  friend constexpr double operator/(Seconds a, Seconds b) {
    return a.v_ / b.v_;
  }

  constexpr auto operator<=>(const Seconds&) const = default;

 private:
  double v_ = 0.0;
};

/// A storage or memory volume, in bytes.
class Bytes {
 public:
  constexpr Bytes() = default;
  constexpr explicit Bytes(double bytes) : v_(bytes) {}

  [[nodiscard]] constexpr double value() const { return v_; }

  constexpr Bytes& operator+=(Bytes o) {
    v_ += o.v_;
    return *this;
  }
  constexpr Bytes& operator-=(Bytes o) {
    v_ -= o.v_;
    return *this;
  }

  friend constexpr Bytes operator+(Bytes a, Bytes b) {
    return Bytes(a.v_ + b.v_);
  }
  friend constexpr Bytes operator-(Bytes a, Bytes b) {
    return Bytes(a.v_ - b.v_);
  }
  friend constexpr Bytes operator*(Bytes a, double k) {
    return Bytes(a.v_ * k);
  }
  friend constexpr Bytes operator*(double k, Bytes a) {
    return Bytes(k * a.v_);
  }
  friend constexpr Bytes operator/(Bytes a, double k) {
    return Bytes(a.v_ / k);
  }
  /// Volume ratio: dimensionless.
  friend constexpr double operator/(Bytes a, Bytes b) { return a.v_ / b.v_; }

  constexpr auto operator<=>(const Bytes&) const = default;

 private:
  double v_ = 0.0;
};

/// A page count. Fractional values are legal: the fluid simulator reasons
/// about partially-transferred pages.
class Pages {
 public:
  constexpr Pages() = default;
  constexpr explicit Pages(double pages) : v_(pages) {}

  [[nodiscard]] constexpr double value() const { return v_; }

  constexpr Pages& operator+=(Pages o) {
    v_ += o.v_;
    return *this;
  }
  constexpr Pages& operator-=(Pages o) {
    v_ -= o.v_;
    return *this;
  }

  friend constexpr Pages operator+(Pages a, Pages b) {
    return Pages(a.v_ + b.v_);
  }
  friend constexpr Pages operator-(Pages a, Pages b) {
    return Pages(a.v_ - b.v_);
  }
  friend constexpr Pages operator*(Pages a, double k) {
    return Pages(a.v_ * k);
  }
  friend constexpr Pages operator*(double k, Pages a) {
    return Pages(k * a.v_);
  }
  /// Count ratio: dimensionless.
  friend constexpr double operator/(Pages a, Pages b) { return a.v_ / b.v_; }

  /// Pages times a page size is a volume.
  friend constexpr Bytes operator*(Pages n, Bytes page_size) {
    return Bytes(n.v_ * page_size.value());
  }
  friend constexpr Bytes operator*(Bytes page_size, Pages n) {
    return n * page_size;
  }

  constexpr auto operator<=>(const Pages&) const = default;

 private:
  double v_ = 0.0;
};

/// A checked ratio in [0, 1] (I/O fractions, cache hit rates). `Make`
/// rejects NaN and out-of-range values with the documented Status codes;
/// `Clamp` is for trusted measurement paths where floating-point noise may
/// push a legal ratio epsilon outside the range.
class Fraction {
 public:
  constexpr Fraction() = default;

  /// Checked construction: NaN -> InvalidArgument, outside [0, 1] ->
  /// OutOfRange.
  [[nodiscard]] static StatusOr<Fraction> Make(double v) {
    if (v != v) {
      return Status::InvalidArgument("Fraction: NaN is not a ratio");
    }
    if (v < 0.0 || v > 1.0) {
      return Status::OutOfRange("Fraction: value outside [0, 1]");
    }
    return Fraction(v);
  }

  /// Clamps into [0, 1]; NaN maps to 0. Use only where the input is a
  /// measured ratio that is in range up to floating-point noise.
  [[nodiscard]] static constexpr Fraction Clamp(double v) {
    if (!(v > 0.0)) return Fraction(0.0);  // also catches NaN
    return Fraction(v < 1.0 ? v : 1.0);
  }

  [[nodiscard]] constexpr double value() const { return v_; }
  [[nodiscard]] constexpr Fraction complement() const {
    return Fraction(1.0 - v_);
  }

  /// A fraction of a duration or volume keeps the dimension.
  friend constexpr Seconds operator*(Fraction f, Seconds s) {
    return Seconds(f.v_ * s.value());
  }
  friend constexpr Seconds operator*(Seconds s, Fraction f) { return f * s; }
  friend constexpr Bytes operator*(Fraction f, Bytes b) {
    return Bytes(f.v_ * b.value());
  }
  friend constexpr Bytes operator*(Bytes b, Fraction f) { return f * b; }

  constexpr auto operator<=>(const Fraction&) const = default;

 private:
  constexpr explicit Fraction(double v) : v_(v) {}
  double v_ = 0.0;
};

/// A coordinate on a template's performance continuum (paper Eq. 6).
/// Unchecked: observations may legitimately fall slightly outside [0, 1]
/// (steady-state artifacts, paper Section 6.1).
class ContinuumPoint {
 public:
  constexpr ContinuumPoint() = default;
  constexpr explicit ContinuumPoint(double point) : v_(point) {}

  [[nodiscard]] constexpr double value() const { return v_; }

  constexpr auto operator<=>(const ContinuumPoint&) const = default;

 private:
  double v_ = 0.0;
};

/// A Concurrent Query Intensity value (paper Eq. 5): the mean competing
/// I/O fraction of a mix's concurrent queries.
class Cqi {
 public:
  constexpr Cqi() = default;
  constexpr explicit Cqi(double cqi) : v_(cqi) {}

  [[nodiscard]] constexpr double value() const { return v_; }

  constexpr auto operator<=>(const Cqi&) const = default;

 private:
  double v_ = 0.0;
};

/// A multiprogramming level (number of concurrently executing queries).
class Mpl {
 public:
  constexpr Mpl() = default;
  constexpr explicit Mpl(int level) : level_(level) {}

  [[nodiscard]] constexpr int value() const { return level_; }

  constexpr auto operator<=>(const Mpl&) const = default;

 private:
  int level_ = 0;
};

/// A validated continuum range [l_min, l_max]: the isolated latency and
/// the spoiler latency of one template. Construction enforces the Eq. 6
/// preconditions (l_min > 0, l_max > l_min), so holders never carry a
/// degenerate range.
class LatencyRange {
 public:
  /// l_min <= 0 or l_max <= l_min -> InvalidArgument.
  [[nodiscard]] static StatusOr<LatencyRange> Make(Seconds l_min,
                                                   Seconds l_max) {
    if (!(l_min.value() > 0.0)) {
      return Status::InvalidArgument("LatencyRange: l_min must be positive");
    }
    if (!(l_max > l_min)) {
      return Status::InvalidArgument("LatencyRange: l_max must exceed l_min");
    }
    return LatencyRange(l_min, l_max);
  }

  [[nodiscard]] constexpr Seconds min() const { return l_min_; }
  [[nodiscard]] constexpr Seconds max() const { return l_max_; }
  [[nodiscard]] constexpr Seconds width() const { return l_max_ - l_min_; }

 private:
  constexpr LatencyRange(Seconds l_min, Seconds l_max)
      : l_min_(l_min), l_max_(l_max) {}

  Seconds l_min_;
  Seconds l_max_;
};

// The wrappers must be free: bitwise-copyable and no bigger than the
// scalar they wrap (pointer-sized), so they pass in registers and vanish
// under optimization.
static_assert(std::is_trivially_copyable_v<Seconds> &&
              sizeof(Seconds) == sizeof(double));
static_assert(std::is_trivially_copyable_v<Bytes> &&
              sizeof(Bytes) == sizeof(double));
static_assert(std::is_trivially_copyable_v<Pages> &&
              sizeof(Pages) == sizeof(double));
static_assert(std::is_trivially_copyable_v<Fraction> &&
              sizeof(Fraction) == sizeof(double));
static_assert(std::is_trivially_copyable_v<ContinuumPoint> &&
              sizeof(ContinuumPoint) == sizeof(double));
static_assert(std::is_trivially_copyable_v<Cqi> &&
              sizeof(Cqi) == sizeof(double));
static_assert(std::is_trivially_copyable_v<Mpl> && sizeof(Mpl) == sizeof(int));
static_assert(sizeof(Seconds) <= sizeof(void*) &&
              sizeof(Mpl) <= sizeof(void*));
static_assert(std::is_trivially_copyable_v<LatencyRange>);

// Raw doubles must not silently become dimensioned quantities.
static_assert(!std::is_convertible_v<double, Seconds> &&
              !std::is_convertible_v<double, Bytes> &&
              !std::is_convertible_v<double, Fraction> &&
              !std::is_convertible_v<double, ContinuumPoint> &&
              !std::is_convertible_v<double, Cqi> &&
              !std::is_convertible_v<int, Mpl>);

}  // namespace contender::units

#endif  // CONTENDER_UTIL_UNITS_H_

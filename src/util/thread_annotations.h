// Portable macros for Clang Thread Safety Analysis (TSA).
//
// TSA is a compile-time checker (-Wthread-safety) that proves, per
// translation unit, that every access to a lock-guarded field happens
// with the right lock held, that acquire/release pairs balance on every
// path, and (under -Wthread-safety-beta) that locks are taken in the
// declared ACQUIRED_BEFORE order. The annotations attach the proof
// obligations to declarations:
//
//   class CAPABILITY("mutex") Mutex { ... };     the lockable type
//   Mutex mu_;
//   int hits_ GUARDED_BY(mu_);                   field needs mu_ held
//   void Tick() REQUIRES(mu_);                   caller must hold mu_
//   void Refresh() EXCLUDES(mu_);                caller must NOT hold mu_
//
// Under any compiler without the analysis (GCC builds this tree daily)
// every macro expands to nothing, so the annotations are free: same
// ABI, same codegen, zero dependencies. The Clang CI job
// (.github/workflows/ci.yml, `clang-tsa`) builds with
// -Wthread-safety -Werror, which turns a locking-discipline violation
// into a build break; tests/util/tsa_violations.cc pins the classes of
// violation the analysis must keep rejecting.
//
// The macro set and spellings follow the Clang documentation's
// reference mutex.h so the vocabulary stays greppable against upstream
// docs. Use NO_THREAD_SAFETY_ANALYSIS only where the analysis cannot
// see the truth (e.g. a predicate lambda Mutex::Await runs with the
// lock held); every such site must be budgeted in tools/lint.py's
// suppression allowlist with a one-line justification (rule R8).

#ifndef CONTENDER_UTIL_THREAD_ANNOTATIONS_H_
#define CONTENDER_UTIL_THREAD_ANNOTATIONS_H_

#if defined(__clang__)
#define CONTENDER_THREAD_ANNOTATION__(x) __attribute__((x))
#else
#define CONTENDER_THREAD_ANNOTATION__(x)  // no-op off Clang
#endif

/// Marks a class as a lockable type ("mutex", "role", ...).
#define CAPABILITY(x) CONTENDER_THREAD_ANNOTATION__(capability(x))

/// Marks an RAII class whose constructor acquires and destructor
/// releases a capability (e.g. MutexLock).
#define SCOPED_CAPABILITY CONTENDER_THREAD_ANNOTATION__(scoped_lockable)

/// The annotated field may only be accessed while holding the given
/// capability.
#define GUARDED_BY(x) CONTENDER_THREAD_ANNOTATION__(guarded_by(x))

/// The annotated pointer may be dereferenced only while holding the
/// given capability (the pointer itself is unguarded).
#define PT_GUARDED_BY(x) CONTENDER_THREAD_ANNOTATION__(pt_guarded_by(x))

/// Declares the global lock order: this capability must be acquired
/// before / after the listed ones. Ordering violations are diagnosed
/// under -Wthread-safety-beta (the harness compiles its lock-order
/// fixtures with that flag; see DESIGN.md §13 for the full order).
#define ACQUIRED_BEFORE(...) \
  CONTENDER_THREAD_ANNOTATION__(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) \
  CONTENDER_THREAD_ANNOTATION__(acquired_after(__VA_ARGS__))

/// The annotated function may only be called while holding the listed
/// capabilities (exclusively / shared).
#define REQUIRES(...) \
  CONTENDER_THREAD_ANNOTATION__(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) \
  CONTENDER_THREAD_ANNOTATION__(requires_shared_capability(__VA_ARGS__))

/// The annotated function acquires the listed capabilities and does not
/// release them (empty list = `this` for members of a capability class).
#define ACQUIRE(...) \
  CONTENDER_THREAD_ANNOTATION__(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) \
  CONTENDER_THREAD_ANNOTATION__(acquire_shared_capability(__VA_ARGS__))

/// The annotated function releases the listed capabilities (empty list
/// = `this`, or whatever a scoped capability holds).
#define RELEASE(...) \
  CONTENDER_THREAD_ANNOTATION__(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) \
  CONTENDER_THREAD_ANNOTATION__(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) \
  CONTENDER_THREAD_ANNOTATION__(release_generic_capability(__VA_ARGS__))

/// The annotated function acquires the capability iff it returns the
/// given value (e.g. TRY_ACQUIRE(true) on a bool TryLock()).
#define TRY_ACQUIRE(...) \
  CONTENDER_THREAD_ANNOTATION__(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  CONTENDER_THREAD_ANNOTATION__(try_acquire_shared_capability(__VA_ARGS__))

/// The annotated function may only be called while NOT holding the
/// listed capabilities (anti-deadlock: the function acquires them).
#define EXCLUDES(...) \
  CONTENDER_THREAD_ANNOTATION__(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the calling thread holds the capability;
/// informs the analysis without acquiring anything.
#define ASSERT_CAPABILITY(x) \
  CONTENDER_THREAD_ANNOTATION__(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) \
  CONTENDER_THREAD_ANNOTATION__(assert_shared_capability(x))

/// The annotated function returns a reference to the given capability.
#define RETURN_CAPABILITY(x) CONTENDER_THREAD_ANNOTATION__(lock_returned(x))

/// Turns the analysis off for one function (or lambda). Budgeted: every
/// use must appear in tools/lint.py's suppression allowlist (rule R8).
#define NO_THREAD_SAFETY_ANALYSIS \
  CONTENDER_THREAD_ANNOTATION__(no_thread_safety_analysis)

#endif  // CONTENDER_UTIL_THREAD_ANNOTATIONS_H_

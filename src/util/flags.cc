#include "util/flags.h"

#include <cstdlib>
#include <string_view>

namespace contender {

Flags::Flags(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    std::string_view arg(argv[i]);
    if (arg.rfind("--", 0) != 0) continue;
    arg.remove_prefix(2);
    auto eq = arg.find('=');
    if (eq != std::string_view::npos) {
      values_[std::string(arg.substr(0, eq))] = std::string(arg.substr(eq + 1));
    } else if (i + 1 < argc && std::string_view(argv[i + 1]).rfind("--", 0) != 0) {
      values_[std::string(arg)] = argv[++i];
    } else if (arg.rfind("no-", 0) == 0) {
      values_[std::string(arg.substr(3))] = "false";
    } else {
      values_[std::string(arg)] = "true";
    }
  }
}

bool Flags::Has(const std::string& name) const {
  return values_.count(name) > 0;
}

std::string Flags::GetString(const std::string& name,
                             const std::string& default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value : it->second;
}

int64_t Flags::GetInt(const std::string& name, int64_t default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value
                             : std::strtoll(it->second.c_str(), nullptr, 10);
}

double Flags::GetDouble(const std::string& name, double default_value) const {
  auto it = values_.find(name);
  return it == values_.end() ? default_value
                             : std::strtod(it->second.c_str(), nullptr);
}

bool Flags::GetBool(const std::string& name, bool default_value) const {
  auto it = values_.find(name);
  if (it == values_.end()) return default_value;
  return it->second != "false" && it->second != "0";
}

}  // namespace contender

// Fixed-width ASCII table printer used by the bench harnesses to emit
// paper-style tables and figure series.

#ifndef CONTENDER_UTIL_TABLE_PRINTER_H_
#define CONTENDER_UTIL_TABLE_PRINTER_H_

#include <ostream>
#include <string>
#include <vector>

namespace contender {

/// Collects rows of string cells and renders them with aligned columns.
///
///   TablePrinter tp({"Template", "MRE"});
///   tp.AddRow({"q62", "12.3%"});
///   tp.Print(std::cout);
class TablePrinter {
 public:
  explicit TablePrinter(std::vector<std::string> header);

  void AddRow(std::vector<std::string> cells);

  /// Renders the table with a header underline. Cells are left-aligned in the
  /// first column and right-aligned elsewhere (numeric convention).
  void Print(std::ostream& os) const;

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with `digits` decimal places.
std::string FormatDouble(double v, int digits = 2);

/// Formats a fraction (0.254) as a percentage string ("25.4%").
std::string FormatPercent(double ratio, int digits = 1);

}  // namespace contender

#endif  // CONTENDER_UTIL_TABLE_PRINTER_H_

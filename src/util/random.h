// Deterministic pseudo-random number generation for the whole library.
//
// All stochastic behaviour (template parameter jitter, random-I/O service
// variance, LHS permutations, k-fold shuffles) flows from a single seeded
// Rng so that every experiment is exactly reproducible.

#ifndef CONTENDER_UTIL_RANDOM_H_
#define CONTENDER_UTIL_RANDOM_H_

#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

namespace contender {

/// xoshiro256** 1.0 by Blackman & Vigna (public domain reference algorithm),
/// seeded via SplitMix64. Deterministic across platforms, unlike
/// std::mt19937 + std::distributions (whose outputs are unspecified).
class Rng {
 public:
  /// Seeds the generator. The same seed always yields the same stream.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  uint64_t Next();

  /// Uniform double in [0, 1).
  double Uniform01();

  /// Uniform double in [lo, hi).
  double Uniform(double lo, double hi);

  /// Uniform integer in [0, n). Requires n > 0.
  uint64_t UniformInt(uint64_t n);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Standard normal deviate (Box–Muller, no state caching for determinism).
  double Normal();

  /// Normal with the given mean and standard deviation.
  double Normal(double mean, double stddev);

  /// Lognormal: exp(Normal(mu, sigma)).
  double LogNormal(double mu, double sigma);

  /// Fisher–Yates shuffle of `v`.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    for (size_t i = v->size(); i > 1; --i) {
      size_t j = static_cast<size_t>(UniformInt(static_cast<uint64_t>(i)));
      std::swap((*v)[i - 1], (*v)[j]);
    }
  }

  /// Random permutation of 0..n-1.
  std::vector<int> Permutation(int n);

  /// Derives an independent child generator (stable given call order).
  Rng Fork();

 private:
  uint64_t s_[4];
};

}  // namespace contender

#endif  // CONTENDER_UTIL_RANDOM_H_

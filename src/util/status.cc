#include "util/status.h"

namespace contender {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace contender

#include "util/status.h"

namespace contender {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kFailedPrecondition:
      return "FailedPrecondition";
    case StatusCode::kOutOfRange:
      return "OutOfRange";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kUnavailable:
      return "Unavailable";
  }
  return "Unknown";
}

std::optional<StatusCode> StatusCodeFromString(const std::string& name) {
  static constexpr StatusCode kAll[] = {
      StatusCode::kOk,                 StatusCode::kInvalidArgument,
      StatusCode::kNotFound,           StatusCode::kFailedPrecondition,
      StatusCode::kOutOfRange,         StatusCode::kInternal,
      StatusCode::kUnimplemented,      StatusCode::kResourceExhausted,
      StatusCode::kDeadlineExceeded,   StatusCode::kAborted,
      StatusCode::kUnavailable,
  };
  for (StatusCode code : kAll) {
    if (name == StatusCodeToString(code)) return code;
  }
  return std::nullopt;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

}  // namespace contender

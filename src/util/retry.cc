#include "util/retry.h"

#include <algorithm>
#include <chrono>
#include <string>
#include <thread>

#include "util/logging.h"

namespace contender {

namespace {

class SystemClock final : public Clock {
 public:
  units::Seconds Now() override {
    return units::Seconds(
        std::chrono::duration<double>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  void Sleep(units::Seconds duration) override {
    if (duration <= units::Seconds(0.0)) return;
    std::this_thread::sleep_for(
        std::chrono::duration<double>(duration.value()));
  }
};

}  // namespace

Clock* Clock::System() {
  static SystemClock* clock = new SystemClock();
  return clock;
}

FakeClock::FakeClock(units::Seconds start) : now_(start) {}

units::Seconds FakeClock::Now() {
  MutexLock lock(&mutex_);
  return now_;
}

void FakeClock::Sleep(units::Seconds duration) {
  MutexLock lock(&mutex_);
  now_ += duration;
  sleeps_.push_back(duration);
}

void FakeClock::Advance(units::Seconds duration) {
  MutexLock lock(&mutex_);
  now_ += duration;
}

std::vector<units::Seconds> FakeClock::sleeps() const {
  MutexLock lock(&mutex_);
  return sleeps_;
}

bool IsRetryableStatusCode(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
    case StatusCode::kAborted:
    case StatusCode::kInvalidArgument:
    case StatusCode::kFailedPrecondition:
    case StatusCode::kOutOfRange:
    case StatusCode::kUnimplemented:
    // A hard quota or budget: retrying cannot refill it, and blind retries
    // against an exhausted budget are exactly the amplification loop the
    // overload subsystem exists to break. Transient overload is
    // kUnavailable, which stays retryable.
    case StatusCode::kResourceExhausted:
      return false;
    case StatusCode::kNotFound:
    case StatusCode::kInternal:
    case StatusCode::kDeadlineExceeded:
    case StatusCode::kUnavailable:
      return true;
  }
  return false;
}

BackoffSchedule::BackoffSchedule(const RetryOptions& options, uint64_t seed)
    : options_(options), rng_(seed), base_(options.initial_backoff) {
  CONTENDER_CHECK(options_.jitter_fraction >= 0.0 &&
                  options_.jitter_fraction < 1.0)
      << "BackoffSchedule: jitter_fraction must be in [0, 1)";
  CONTENDER_CHECK(options_.backoff_multiplier >= 1.0)
      << "BackoffSchedule: backoff_multiplier must be >= 1";
}

units::Seconds BackoffSchedule::Next() {
  const units::Seconds capped = std::min(base_, options_.max_backoff);
  base_ = base_ * options_.backoff_multiplier;
  const double jitter =
      options_.jitter_fraction == 0.0
          ? 1.0
          : rng_.Uniform(1.0 - options_.jitter_fraction,
                         1.0 + options_.jitter_fraction);
  return capped * jitter;
}

Status RetryWithBackoff(const RetryOptions& options, uint64_t jitter_seed,
                        Clock* clock, const std::function<Status()>& attempt) {
  CONTENDER_CHECK(clock != nullptr) << "RetryWithBackoff: clock is required";
  CONTENDER_CHECK(options.max_attempts >= 1)
      << "RetryWithBackoff: max_attempts must be >= 1";
  BackoffSchedule schedule(options, jitter_seed);
  const units::Seconds start = clock->Now();
  Status last;
  // The retry loop the lint rule points everyone at; its shape is the
  // whole reason ad-hoc copies are banned.
  for (int tries = 1;; ++tries) {
    last = attempt();
    if (last.ok()) return last;
    if (!IsRetryableStatusCode(last.code())) return last;
    if (tries >= options.max_attempts) return last;
    const units::Seconds delay = schedule.Next();
    if ((clock->Now() - start) + delay > options.deadline) {
      return Status::DeadlineExceeded(
          "retry budget exhausted after " + std::to_string(tries) +
          " attempt(s); last error: " + last.ToString());
    }
    clock->Sleep(delay);
  }
}

}  // namespace contender

#include "util/thread_pool.h"

#include "util/failpoint.h"

namespace contender {

namespace internal {

namespace {
// Eagerly registered so chaos suites can enumerate and arm the site before
// any task is submitted.
auto& kSubmitFailPoint = CONTENDER_DEFINE_FAILPOINT("util.thread_pool.submit");
}  // namespace

bool ThreadPoolSubmitDegradesInline() { return kSubmitFailPoint.ShouldFail(); }

}  // namespace internal

ThreadPool::ThreadPool(int num_threads) {
  const int n = num_threads < 1 ? 1 : num_threads;
  workers_.reserve(static_cast<size_t>(n));
  for (int i = 0; i < n; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    // Unlock wakes every Await-blocked worker; no explicit broadcast.
    MutexLock lock(&mutex_);
    stopping_ = true;
  }
  for (std::thread& worker : workers_) worker.join();
}

size_t ThreadPool::QueueDepth() const {
  MutexLock lock(&mutex_);
  return queue_.size();
}

int ThreadPool::DefaultThreads() {
  const unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      MutexLock lock(&mutex_);
      // Await runs the predicate with mutex_ held, but TSA can't see
      // through the template indirection (R8-budgeted suppression).
      mutex_.Await([this]() NO_THREAD_SAFETY_ANALYSIS {
        return stopping_ || !queue_.empty();
      });
      if (queue_.empty()) return;  // stopping_ set and queue drained
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

}  // namespace contender

// Named, seeded fail points for deterministic fault injection.
//
// A fail point is a registered site in library code where a test (or a
// chaos run) can force a failure. Sites are identified by a dotted name
// ("serve.refit.fit"), registered eagerly at static-initialization time by
// the .cc that hosts them, and evaluated through FailPoint::ShouldFail().
// Disarmed evaluation is one relaxed atomic load — effectively free on the
// serving hot path — and disarmed is the default, so production behavior
// is bit-identical to a build without fail points.
//
// Arming modes:
//   * Probability(p) — each evaluation fires independently with chance p.
//     The decision for the k-th evaluation is a pure hash of (site seed,
//     k), NOT a draw from shared mutable RNG state, so the fired subset is
//     a deterministic function of the root seed alone.
//   * NthHit(n)      — exactly the n-th evaluation after arming fires,
//     then the site disarms itself.
//   * Once           — NthHit(1).
//
// Per-site seeds derive from one root seed (FNV-1a of the site name mixed
// into the root), so a whole chaos run is reproduced by a single number.
// The root seed initializes from the CONTENDER_CHAOS_SEED environment
// variable when set (see README) and can be reset programmatically; either
// way, re-arming a site restarts its evaluation count, which is what makes
// two identically-armed runs fire identically.

#ifndef CONTENDER_UTIL_FAILPOINT_H_
#define CONTENDER_UTIL_FAILPOINT_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace contender {

/// How an armed site decides to fire (see file comment).
enum class FailPointMode { kOff = 0, kProbability, kNthHit, kOnce };

const char* FailPointModeName(FailPointMode mode);

/// One registered injection site. Instances are owned by the registry and
/// live for the process lifetime; call sites hold a reference.
class FailPoint {
 public:
  FailPoint(const FailPoint&) = delete;
  FailPoint& operator=(const FailPoint&) = delete;

  /// True when the call site should inject its failure. Disarmed cost: one
  /// relaxed atomic load.
  bool ShouldFail() {
    if (mode_.load(std::memory_order_acquire) ==
        static_cast<int>(FailPointMode::kOff)) {
      return false;
    }
    return EvaluateArmed();
  }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] FailPointMode mode() const {
    return static_cast<FailPointMode>(mode_.load(std::memory_order_acquire));
  }
  /// Evaluations since the site was last armed.
  [[nodiscard]] uint64_t hits() const;
  /// Evaluations that fired since the site was last armed.
  [[nodiscard]] uint64_t fires() const;

 private:
  friend class FailPointRegistry;
  FailPoint(std::string name, uint64_t site_seed);

  bool EvaluateArmed() EXCLUDES(mutex_);
  void Arm(uint64_t root_seed, FailPointMode mode, double probability,
           uint64_t nth) EXCLUDES(mutex_);
  /// Re-derives seed_ from `root_seed` and zeroes the counters. The
  /// registry calls this with only the site lock taken (never while
  /// holding its own lock — the tree's lock order has no nesting edges;
  /// see DESIGN.md §13).
  void Reseed(uint64_t root_seed) EXCLUDES(mutex_);

  const std::string name_;
  /// FailPointMode as int; the disarmed fast path reads only this.
  std::atomic<int> mode_{0};

  mutable Mutex mutex_;
  double probability_ GUARDED_BY(mutex_) = 0.0;
  uint64_t nth_ GUARDED_BY(mutex_) = 0;
  /// Derived from (registry root seed, name_).
  uint64_t seed_ GUARDED_BY(mutex_) = 0;
  uint64_t hits_ GUARDED_BY(mutex_) = 0;
  uint64_t fires_ GUARDED_BY(mutex_) = 0;
};

/// Process-wide registry of fail-point sites. All members are thread-safe.
class FailPointRegistry {
 public:
  static FailPointRegistry& Global();

  /// Returns the site named `name`, registering it on first use. The
  /// reference stays valid for the process lifetime.
  FailPoint& Site(const std::string& name);

  /// Arms `name` (registering it if needed) in the given mode. Arming
  /// resets the site's hit/fire counters and re-derives its seed from the
  /// current root seed, so identically-armed runs fire identically.
  void ArmProbability(const std::string& name, double probability);
  void ArmNthHit(const std::string& name, uint64_t n);
  void ArmOnce(const std::string& name);

  void Disarm(const std::string& name);
  void DisarmAll();

  /// Resets the root seed and re-derives every armed site's seed and
  /// counters. Chaos runs call this (or set CONTENDER_CHAOS_SEED) before
  /// arming to make the whole run reproducible from one number.
  void SetRootSeed(uint64_t seed);
  [[nodiscard]] uint64_t root_seed() const;

  /// Names of every registered site (sorted), optionally restricted to a
  /// dotted-name prefix such as "serve." or "sched.".
  [[nodiscard]] std::vector<std::string> SiteNames(
      const std::string& prefix = "") const;

 private:
  FailPointRegistry();  // seeds from CONTENDER_CHAOS_SEED when present

  FailPoint* Find(const std::string& name) REQUIRES(mutex_);

  mutable Mutex mutex_;
  uint64_t root_seed_ GUARDED_BY(mutex_) = 0;
  /// Sites are append-only and never destroyed; the vector (not the
  /// pointees) is guarded. Site locks are taken only after mutex_ is
  /// released — the lock order has no nesting edges (DESIGN.md §13).
  std::vector<std::unique_ptr<FailPoint>> sites_ GUARDED_BY(mutex_);
};

/// Registers (at static-initialization time when used at namespace scope)
/// and names a fail-point site. Usage, in the hosting .cc:
///
///   namespace {
///   auto& kFitFailPoint = CONTENDER_DEFINE_FAILPOINT("serve.refit.fit");
///   }  // namespace
///   ...
///   if (kFitFailPoint.ShouldFail()) return Status::Internal("injected");
#define CONTENDER_DEFINE_FAILPOINT(site_name) \
  ::contender::FailPointRegistry::Global().Site(site_name)

}  // namespace contender

#endif  // CONTENDER_UTIL_FAILPOINT_H_

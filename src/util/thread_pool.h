// A fixed-size worker pool with a FIFO work queue and future-based result
// delivery. Tasks are arbitrary callables; an exception thrown by a task is
// captured and rethrown from its future's get(). The destructor stops
// accepting new work, drains every task already queued, and joins the
// workers.
//
// Determinism contract: tasks are *started* in submission order but may
// *complete* in any order. Callers that need reproducible output must derive
// all randomness (seeds) before submission and order results by submission
// index — see sim::BatchRunner, which does exactly that.

#ifndef CONTENDER_UTIL_THREAD_POOL_H_
#define CONTENDER_UTIL_THREAD_POOL_H_

#include <functional>
#include <future>
#include <memory>
#include <queue>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace contender {

namespace internal {
/// Chaos hook: true when the "util.thread_pool.submit" fail point fires,
/// in which case Submit degrades gracefully by running the task inline on
/// the caller's thread instead of enqueueing it (the future contract is
/// unchanged). Defined in thread_pool.cc; disarmed cost is one relaxed
/// atomic load.
bool ThreadPoolSubmitDegradesInline();
}  // namespace internal

/// Fixed-size thread pool with a shared FIFO queue.
class ThreadPool {
 public:
  /// Spawns `num_threads` workers; values < 1 are clamped to 1.
  explicit ThreadPool(int num_threads);

  /// Drains the queue (already-submitted tasks still run) and joins.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues `fn` and returns a future for its result. If `fn` throws, the
  /// exception is rethrown from std::future::get().
  template <typename Fn>
  auto Submit(Fn&& fn) -> std::future<std::invoke_result_t<std::decay_t<Fn>>> {
    using R = std::invoke_result_t<std::decay_t<Fn>>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<Fn>(fn));
    std::future<R> future = task->get_future();
    if (internal::ThreadPoolSubmitDegradesInline()) {
      (*task)();  // degraded mode: caller executes; future still delivers
      return future;
    }
    {
      // Unlock wakes the Await in WorkerLoop — no explicit signal needed.
      MutexLock lock(&mutex_);
      queue_.push([task] { (*task)(); });
    }
    return future;
  }

  int num_threads() const { return static_cast<int>(workers_.size()); }

  /// Tasks submitted but not yet picked up by a worker (diagnostic only).
  size_t QueueDepth() const;

  /// A sensible default pool width for this machine (>= 1).
  static int DefaultThreads();

 private:
  void WorkerLoop();

  mutable Mutex mutex_;
  std::queue<std::function<void()>> queue_ GUARDED_BY(mutex_);
  bool stopping_ GUARDED_BY(mutex_) = false;
  /// Written only by the constructor before any concurrency; the worker
  /// threads never touch it and the destructor joins after stopping_.
  std::vector<std::thread> workers_;  // contender-lint: lock-free
};

}  // namespace contender

#endif  // CONTENDER_UTIL_THREAD_POOL_H_

#include "util/failpoint.h"

#include <algorithm>
#include <cstdlib>
#include <utility>

#include "util/logging.h"

namespace contender {

namespace {

// SplitMix64 finalizer: a high-quality stateless mix of one 64-bit value.
// Used both to derive per-site seeds and to decide probability-mode fires
// as a pure function of (site seed, hit index).
uint64_t Mix64(uint64_t z) {
  z += 0x9e3779b97f4a7c15ULL;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t Fnv1a(const std::string& s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

uint64_t DeriveSiteSeed(uint64_t root, const std::string& name) {
  return Mix64(root ^ Fnv1a(name));
}

}  // namespace

const char* FailPointModeName(FailPointMode mode) {
  switch (mode) {
    case FailPointMode::kOff:
      return "off";
    case FailPointMode::kProbability:
      return "probability";
    case FailPointMode::kNthHit:
      return "nth-hit";
    case FailPointMode::kOnce:
      return "once";
  }
  return "unknown";
}

FailPoint::FailPoint(std::string name, uint64_t site_seed)
    : name_(std::move(name)), seed_(site_seed) {}

bool FailPoint::EvaluateArmed() {
  MutexLock lock(&mutex_);
  const auto mode = static_cast<FailPointMode>(
      mode_.load(std::memory_order_relaxed));
  if (mode == FailPointMode::kOff) return false;  // raced with Disarm
  const uint64_t index = hits_++;
  bool fire = false;
  switch (mode) {
    case FailPointMode::kProbability: {
      // Pure function of (seed, index): the set of firing hit indices is
      // fixed by the seed, independent of evaluation timing or threads.
      const double u =
          static_cast<double>(Mix64(seed_ ^ index) >> 11) * 0x1.0p-53;
      fire = u < probability_;
      break;
    }
    case FailPointMode::kNthHit:
    case FailPointMode::kOnce:
      fire = (index + 1 == nth_);
      if (fire) {
        // One-shot semantics: the site disarms itself after firing.
        mode_.store(static_cast<int>(FailPointMode::kOff),
                    std::memory_order_release);
      }
      break;
    case FailPointMode::kOff:
      break;
  }
  if (fire) ++fires_;
  return fire;
}

uint64_t FailPoint::hits() const {
  MutexLock lock(&mutex_);
  return hits_;
}

uint64_t FailPoint::fires() const {
  MutexLock lock(&mutex_);
  return fires_;
}

void FailPoint::Reseed(uint64_t root_seed) {
  MutexLock lock(&mutex_);
  seed_ = DeriveSiteSeed(root_seed, name_);
  hits_ = 0;
  fires_ = 0;
}

FailPointRegistry& FailPointRegistry::Global() {
  static FailPointRegistry* registry = new FailPointRegistry();
  return *registry;
}

FailPointRegistry::FailPointRegistry() {
  // NOLINTNEXTLINE(concurrency-mt-unsafe): read once inside the Global()
  // function-local static's initialization, before any worker spawns.
  if (const char* env = std::getenv("CONTENDER_CHAOS_SEED")) {
    root_seed_ = std::strtoull(env, nullptr, 0);
  }
}

FailPoint* FailPointRegistry::Find(const std::string& name) {
  for (const auto& site : sites_) {
    if (site->name() == name) return site.get();
  }
  return nullptr;
}

FailPoint& FailPointRegistry::Site(const std::string& name) {
  MutexLock lock(&mutex_);
  if (FailPoint* existing = Find(name)) return *existing;
  // The seed is derived here so the site constructor is complete before
  // publication and no site lock is ever taken under the registry lock
  // (the tree's lock order stays nesting-free; DESIGN.md §13).
  sites_.push_back(std::unique_ptr<FailPoint>(
      new FailPoint(name, DeriveSiteSeed(root_seed_, name))));
  return *sites_.back();
}

void FailPoint::Arm(uint64_t root_seed, FailPointMode mode,
                    double probability, uint64_t nth) {
  // Reset counters, re-derive the seed, then publish the mode last so a
  // concurrent ShouldFail sees consistent state.
  MutexLock lock(&mutex_);
  probability_ = probability;
  nth_ = nth;
  hits_ = 0;
  fires_ = 0;
  seed_ = DeriveSiteSeed(root_seed, name_);
  mode_.store(static_cast<int>(mode), std::memory_order_release);
}

void FailPointRegistry::ArmProbability(const std::string& name,
                                       double probability) {
  CONTENDER_CHECK(probability >= 0.0 && probability <= 1.0)
      << "FailPointRegistry: probability must be in [0, 1], got "
      << probability;
  Site(name).Arm(root_seed(), FailPointMode::kProbability, probability, 0);
}

void FailPointRegistry::ArmNthHit(const std::string& name, uint64_t n) {
  CONTENDER_CHECK(n >= 1) << "FailPointRegistry: NthHit requires n >= 1";
  Site(name).Arm(root_seed(), FailPointMode::kNthHit, 0.0, n);
}

void FailPointRegistry::ArmOnce(const std::string& name) {
  Site(name).Arm(root_seed(), FailPointMode::kOnce, 0.0, 1);
}

void FailPointRegistry::Disarm(const std::string& name) {
  MutexLock lock(&mutex_);
  if (FailPoint* site = Find(name)) {
    site->mode_.store(static_cast<int>(FailPointMode::kOff),
                      std::memory_order_release);
  }
}

void FailPointRegistry::DisarmAll() {
  MutexLock lock(&mutex_);
  for (const auto& site : sites_) {
    site->mode_.store(static_cast<int>(FailPointMode::kOff),
                      std::memory_order_release);
  }
}

void FailPointRegistry::SetRootSeed(uint64_t seed) {
  // Snapshot the live sites under the registry lock, then reseed each
  // with only its own lock taken: site locks never nest under the
  // registry lock. Sites registered concurrently (after the snapshot)
  // already derive their seed from the new root inside Site().
  std::vector<FailPoint*> sites;
  {
    MutexLock lock(&mutex_);
    root_seed_ = seed;
    sites.reserve(sites_.size());
    for (const auto& site : sites_) sites.push_back(site.get());
  }
  for (FailPoint* site : sites) site->Reseed(seed);
}

uint64_t FailPointRegistry::root_seed() const {
  MutexLock lock(&mutex_);
  return root_seed_;
}

std::vector<std::string> FailPointRegistry::SiteNames(
    const std::string& prefix) const {
  std::vector<std::string> names;
  {
    MutexLock lock(&mutex_);
    for (const auto& site : sites_) {
      if (site->name().rfind(prefix, 0) == 0) names.push_back(site->name());
    }
  }
  std::sort(names.begin(), names.end());
  return names;
}

}  // namespace contender

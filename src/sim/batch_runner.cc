#include "sim/batch_runner.h"

#include "sim/engine.h"

namespace contender::sim {

BatchRunner::BatchRunner() : BatchRunner(Options()) {}

BatchRunner::BatchRunner(const Options& options)
    : pool_(options.threads <= 0 ? ThreadPool::DefaultThreads()
                                 : options.threads),
      cache_(options.cache) {}

StatusOr<EngineRunResult> BatchRunner::Execute(const EngineRun& run) {
  if (run.specs.empty()) {
    return Status::InvalidArgument("EngineRun: no specs");
  }
  if (run.run_until >= static_cast<int>(run.specs.size())) {
    return Status::InvalidArgument("EngineRun: run_until out of range");
  }
  Engine engine(run.config, run.seed);
  std::vector<int> pids;
  pids.reserve(run.specs.size());
  for (const QuerySpec& spec : run.specs) {
    pids.push_back(engine.AddProcess(spec, units::Seconds(0.0)));
  }
  Status status =
      run.run_until >= 0
          ? engine.RunUntilProcessCompletes(
                pids[static_cast<size_t>(run.run_until)])
          : engine.Run();
  if (!status.ok()) return status;
  EngineRunResult out;
  out.results.reserve(pids.size());
  for (int pid : pids) out.results.push_back(engine.result(pid));
  out.duration = engine.now().value();
  return out;
}

StatusOr<EngineRunResult> BatchRunner::RunOne(const EngineRun& run) {
  if (cache_ == nullptr) return Execute(run);
  const uint64_t key =
      HashEngineRun(run.specs, run.config, run.seed, run.run_until);
  if (std::optional<RunCache::Entry> entry = cache_->Lookup(key)) {
    EngineRunResult out;
    out.results = std::move(entry->results);
    out.duration = entry->duration;
    out.from_cache = true;
    return out;
  }
  StatusOr<EngineRunResult> result = Execute(run);
  if (result.ok()) {
    RunCache::Entry entry;
    entry.results = result->results;
    entry.duration = result->duration;
    cache_->Insert(key, std::move(entry));
  }
  return result;
}

std::vector<StatusOr<EngineRunResult>> BatchRunner::Run(
    const std::vector<EngineRun>& runs) {
  std::vector<std::future<StatusOr<EngineRunResult>>> futures;
  futures.reserve(runs.size());
  for (const EngineRun& run : runs) {
    futures.push_back(pool_.Submit([this, &run] { return RunOne(run); }));
  }
  std::vector<StatusOr<EngineRunResult>> out;
  out.reserve(runs.size());
  for (auto& future : futures) out.push_back(future.get());
  return out;
}

}  // namespace contender::sim

// Execution-level description of a query handed to the simulator: an ordered
// list of phases, each bundling the sequential I/O, random I/O, CPU work and
// memory demand of one pipeline segment of the plan.

#ifndef CONTENDER_SIM_QUERY_SPEC_H_
#define CONTENDER_SIM_QUERY_SPEC_H_

#include <algorithm>
#include <string>
#include <vector>

#include "util/logging.h"
#include "util/units.h"

namespace contender::sim {

/// Identifies a relation on stable storage. Non-negative ids come from the
/// catalog; negative ids denote private temp space (spills, spoiler files),
/// which is never shared between processes.
using TableId = int;

constexpr TableId kNoTable = -1;

/// One pipeline segment. The I/O and CPU demands proceed concurrently; the
/// phase completes when all are exhausted.
struct Phase {
  /// Sequential bytes read from `table` (shared-scan eligible when the table
  /// id is non-negative and another process scans it concurrently).
  double seq_io_bytes = 0.0;

  /// Random-access bytes (index probes, scattered heap fetches).
  double rnd_io_bytes = 0.0;

  /// CPU work at full-core speed.
  double cpu_seconds = 0.0;

  /// Table the sequential I/O targets; kNoTable when seq_io_bytes == 0.
  TableId table = kNoTable;

  /// Size of `table`, for buffer-pool caching decisions.
  double table_bytes = 0.0;

  /// Whether the scanned table may be cached (dimension tables).
  bool cacheable = false;

  /// Working memory the phase wants (hash tables, sort buffers).
  double mem_demand_bytes = 0.0;

  /// If true, a memory shortfall converts into spill I/O; if false the
  /// phase simply runs with what it gets (e.g., plain scans).
  bool spillable = false;
};

/// A runnable query: phases plus bookkeeping identity.
struct QuerySpec {
  std::string name;
  /// Workload template id (paper template number); -1 for synthetic load.
  int template_id = -1;
  std::vector<Phase> phases;
  /// Immortal processes (spoiler streams) provide load but never complete.
  bool immortal = false;
  /// Memory pinned for the whole lifetime of the process, granted with
  /// priority at admission (the spoiler's RAM pin).
  double pinned_memory_bytes = 0.0;
};

/// Per-process accounting, the simulator's analogue of procfs counters.
struct ProcessResult {
  int process_id = -1;
  int template_id = -1;
  std::string name;
  double start_time = 0.0;
  double end_time = 0.0;
  bool completed = false;

  /// Virtual seconds during which the process had outstanding I/O.
  double io_busy_seconds = 0.0;
  /// Virtual seconds of CPU progress.
  double cpu_busy_seconds = 0.0;
  /// Bytes actually served from disk (excludes buffer-pool hits).
  double disk_bytes_read = 0.0;
  /// Bytes served from the buffer pool or shared scans.
  double bytes_saved_by_cache = 0.0;
  double bytes_saved_by_shared_scan = 0.0;
  /// Peak simultaneous memory grant.
  double max_memory_granted = 0.0;
  /// Total spill traffic induced by memory shortfalls.
  double spill_bytes = 0.0;

  /// Wall-clock (virtual) latency. A run cancelled before its start keeps
  /// end_time == 0 while start_time is positive; that underflow is clamped
  /// to zero here. A *completed* process with end_time < start_time is a
  /// simulator accounting bug and trips the debug check.
  [[nodiscard]] units::Seconds latency() const {
    CONTENDER_DCHECK(!completed || end_time >= start_time)
        << "completed process " << process_id << " ended (" << end_time
        << ") before it started (" << start_time << ")";
    return units::Seconds(std::max(0.0, end_time - start_time));
  }
  /// Fraction of execution time spent on I/O (the paper's p_t).
  [[nodiscard]] units::Fraction io_fraction() const {
    const units::Seconds lat = latency();
    return lat.value() > 0.0 ? units::Fraction::Clamp(io_busy_seconds /
                                                      lat.value())
                             : units::Fraction();
  }
};

}  // namespace contender::sim

#endif  // CONTENDER_SIM_QUERY_SPEC_H_

#include "sim/disk.h"

#include <cstddef>

namespace contender::sim {

DiskAllocation AllocateDiskBandwidth(const SimConfig& config,
                                     const DiskDemand& demand) {
  DiskAllocation out;
  const int randoms = static_cast<int>(demand.random_stream_caps.size());
  const int streams = demand.num_seq_groups + randoms;
  out.random_stream_rates.assign(demand.random_stream_caps.size(), 0.0);
  if (streams == 0) return out;

  out.effective_bandwidth =
      config.seq_bandwidth /
      (1.0 + config.seek_overhead * static_cast<double>(streams - 1));

  // Processor sharing of device *time*: each of the S streams owns 1/S of
  // the disk. A sequential group converts its slice at the (seek-degraded)
  // sequential bandwidth; a random stream converts its slice at its own
  // seek-bound intrinsic rate, so its throughput also falls as 1/S — on a
  // spindle, a seek-bound stream competing with S-1 others waits behind
  // their requests for every read.
  const double share = 1.0 / static_cast<double>(streams);
  out.seq_group_rate = out.effective_bandwidth * share;
  for (size_t i = 0; i < demand.random_stream_caps.size(); ++i) {
    out.random_stream_rates[i] = demand.random_stream_caps[i] * share;
  }
  return out;
}

}  // namespace contender::sim

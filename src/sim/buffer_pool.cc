#include "sim/buffer_pool.h"

namespace contender::sim {

void BufferPool::SetCapacity(double capacity_bytes) {
  capacity_bytes_ = capacity_bytes;
  EvictUntilFits(0.0);
}

bool BufferPool::IsCached(TableId table) const {
  return entries_.count(table) > 0;
}

void BufferPool::Admit(TableId table, double bytes) {
  if (bytes > capacity_bytes_) return;
  auto it = entries_.find(table);
  if (it != entries_.end()) {
    Touch(table);
    return;
  }
  EvictUntilFits(bytes);
  lru_.push_front(table);
  entries_[table] = Entry{bytes, lru_.begin()};
  cached_bytes_ += bytes;
}

void BufferPool::Touch(TableId table) {
  auto it = entries_.find(table);
  if (it == entries_.end()) return;
  lru_.erase(it->second.lru_it);
  lru_.push_front(table);
  it->second.lru_it = lru_.begin();
}

void BufferPool::EvictUntilFits(double incoming_bytes) {
  while (!lru_.empty() && cached_bytes_ + incoming_bytes > capacity_bytes_) {
    const TableId victim = lru_.back();
    lru_.pop_back();
    auto it = entries_.find(victim);
    cached_bytes_ -= it->second.bytes;
    entries_.erase(it);
  }
}

}  // namespace contender::sim

#include "sim/run_cache.h"

#include <bit>

namespace contender::sim {

namespace {
constexpr uint64_t kFnvPrime = 0x100000001b3ULL;

uint64_t MixByte(uint64_t state, uint8_t byte) {
  return (state ^ byte) * kFnvPrime;
}
}  // namespace

void RunHasher::Add(uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    state_ = MixByte(state_, static_cast<uint8_t>(v >> (8 * i)));
  }
}

void RunHasher::Add(double v) {
  // +0.0 and -0.0 compare equal but have distinct bit patterns; normalize
  // so equal inputs always hash equal.
  if (v == 0.0) v = 0.0;
  Add(std::bit_cast<uint64_t>(v));
}

void RunHasher::Add(std::string_view s) {
  Add(static_cast<uint64_t>(s.size()));
  for (char c : s) state_ = MixByte(state_, static_cast<uint8_t>(c));
}

void RunHasher::Add(const Phase& phase) {
  Add(phase.seq_io_bytes);
  Add(phase.rnd_io_bytes);
  Add(phase.cpu_seconds);
  Add(phase.table);
  Add(phase.table_bytes);
  Add(phase.cacheable);
  Add(phase.mem_demand_bytes);
  Add(phase.spillable);
}

void RunHasher::Add(const QuerySpec& spec) {
  Add(std::string_view(spec.name));
  Add(spec.template_id);
  Add(spec.immortal);
  Add(spec.pinned_memory_bytes);
  Add(static_cast<uint64_t>(spec.phases.size()));
  for (const Phase& phase : spec.phases) Add(phase);
}

void RunHasher::Add(const SimConfig& config) {
  Add(config.seq_bandwidth);
  Add(config.random_bandwidth);
  Add(config.spill_bandwidth);
  Add(config.seek_overhead);
  Add(config.ram_bytes);
  Add(config.os_reserved_bytes);
  Add(config.buffer_pool_fraction);
  Add(config.cores);
  Add(config.spill_amplification);
  Add(config.random_io_sigma);
  Add(config.spill_io_sigma);
  Add(config.cpu_jitter);
  Add(config.startup_cpu_seconds);
}

uint64_t HashEngineRun(const std::vector<QuerySpec>& specs,
                       const SimConfig& config, uint64_t seed,
                       int run_until_index) {
  RunHasher hasher;
  hasher.Add(config);
  hasher.Add(seed);
  hasher.Add(run_until_index);
  hasher.Add(static_cast<uint64_t>(specs.size()));
  for (const QuerySpec& spec : specs) hasher.Add(spec);
  return hasher.Digest();
}

RunCache::RunCache(size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

std::optional<RunCache::Entry> RunCache::Lookup(uint64_t key) {
  MutexLock lock(&mutex_);
  auto it = index_.find(key);
  if (it == index_.end()) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  lru_.splice(lru_.begin(), lru_, it->second);
  return it->second->second;
}

void RunCache::Insert(uint64_t key, Entry entry) {
  MutexLock lock(&mutex_);
  auto it = index_.find(key);
  if (it != index_.end()) {
    it->second->second = std::move(entry);
    lru_.splice(lru_.begin(), lru_, it->second);
    return;
  }
  lru_.emplace_front(key, std::move(entry));
  index_[key] = lru_.begin();
  while (lru_.size() > capacity_) {
    index_.erase(lru_.back().first);
    lru_.pop_back();
  }
}

void RunCache::Clear() {
  MutexLock lock(&mutex_);
  lru_.clear();
  index_.clear();
  hits_ = 0;
  misses_ = 0;
}

size_t RunCache::size() const {
  MutexLock lock(&mutex_);
  return lru_.size();
}

uint64_t RunCache::hits() const {
  MutexLock lock(&mutex_);
  return hits_;
}

uint64_t RunCache::misses() const {
  MutexLock lock(&mutex_);
  return misses_;
}

RunCache& RunCache::Global() {
  static RunCache* cache = new RunCache();
  return *cache;
}

}  // namespace contender::sim

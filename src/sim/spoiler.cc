#include "sim/spoiler.h"

#include <string>

namespace contender::sim {

namespace {
// Private table-id range for spoiler files; negative ids are never shared.
constexpr TableId kSpoilerTableBase = -1000;
// Effectively-infinite byte demand for immortal streams.
constexpr double kEndless = 1e30;
}  // namespace

std::vector<QuerySpec> MakeSpoiler(const SimConfig& config,
                                   units::Mpl level) {
  std::vector<QuerySpec> out;
  const int mpl = level.value();
  if (mpl < 2) return out;

  // Memory pin: (1 - 1/n) of RAM, held for the primary's whole run.
  QuerySpec pin;
  pin.name = "spoiler-pin";
  pin.immortal = true;
  pin.pinned_memory_bytes =
      (1.0 - 1.0 / static_cast<double>(mpl)) * config.ram_bytes;
  Phase idle;
  idle.cpu_seconds = kEndless;
  pin.phases.push_back(idle);
  out.push_back(pin);

  // n - 1 circular readers on distinct private files.
  for (int i = 0; i < mpl - 1; ++i) {
    QuerySpec reader;
    reader.name = "spoiler-io-" + std::to_string(i);
    reader.immortal = true;
    Phase read;
    read.seq_io_bytes = kEndless;
    read.table = kSpoilerTableBase - i;
    reader.phases.push_back(read);
    out.push_back(reader);
  }
  return out;
}

}  // namespace contender::sim

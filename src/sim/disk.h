// The disk bandwidth-sharing model: given the set of concurrent streams
// (sequential scan groups and random-I/O streams), computes the byte rate
// each stream receives.
//
// Model: processor sharing of device time. With S concurrent streams each
// stream owns 1/S of the disk; a sequential scan group converts its slice
// at the seek-degraded sequential bandwidth, while a random (seek-bound)
// stream converts its slice at its intrinsic random-I/O rate — so random
// throughput also falls as 1/S, as on a real spindle.

#ifndef CONTENDER_SIM_DISK_H_
#define CONTENDER_SIM_DISK_H_

#include <vector>

#include "sim/config.h"

namespace contender::sim {

/// Input: how many sequential scan groups are active, and the intrinsic
/// rate cap of each random stream.
struct DiskDemand {
  int num_seq_groups = 0;
  std::vector<double> random_stream_caps;
};

/// Output rates, aligned with the demand.
struct DiskAllocation {
  /// Rate granted to each sequential scan group (all groups equal).
  double seq_group_rate = 0.0;
  /// Rate granted to each random stream, same order as the caps.
  std::vector<double> random_stream_rates;
  /// Effective total bandwidth after seek degradation.
  double effective_bandwidth = 0.0;
};

/// Computes the fair-share allocation described above. With zero streams
/// all rates are zero.
DiskAllocation AllocateDiskBandwidth(const SimConfig& config,
                                     const DiskDemand& demand);

}  // namespace contender::sim

#endif  // CONTENDER_SIM_DISK_H_

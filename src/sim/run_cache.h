// Memoization cache for deterministic simulator runs. The engine is a pure
// function of (query specs, hardware config, seed, run mode), so a run can
// be keyed by a content hash of those inputs and its recorded per-process
// results replayed on a hit instead of re-simulating. Repeated benchmark and
// test invocations inside one process (shared fixtures, warm re-training,
// what-if sweeps) hit the cache and skip the dominant simulation cost.
//
// The cache is a bounded LRU and fully thread-safe: sim::BatchRunner
// consults it concurrently from pool workers.

#ifndef CONTENDER_SIM_RUN_CACHE_H_
#define CONTENDER_SIM_RUN_CACHE_H_

#include <cstdint>
#include <list>
#include <optional>
#include <string_view>
#include <unordered_map>
#include <utility>
#include <vector>

#include "sim/config.h"
#include "sim/query_spec.h"
#include "util/mutex.h"

namespace contender::sim {

/// Incremental FNV-1a (64-bit) content hasher over the simulator's input
/// types. Doubles are hashed through their IEEE-754 bit pattern, so the
/// digest is stable across platforms and process restarts.
class RunHasher {
 public:
  void Add(uint64_t v);
  void Add(int v) { Add(static_cast<uint64_t>(static_cast<int64_t>(v))); }
  void Add(bool v) { Add(static_cast<uint64_t>(v ? 1 : 0)); }
  void Add(double v);
  void Add(std::string_view s);
  void Add(const Phase& phase);
  void Add(const QuerySpec& spec);
  void Add(const SimConfig& config);

  uint64_t Digest() const { return state_; }

 private:
  static constexpr uint64_t kOffsetBasis = 0xcbf29ce484222325ULL;
  uint64_t state_ = kOffsetBasis;
};

/// Content hash identifying one engine run: the full spec set (in add
/// order), the hardware model, the seed, and which process the run waits
/// for (-1 = run everything to completion).
uint64_t HashEngineRun(const std::vector<QuerySpec>& specs,
                       const SimConfig& config, uint64_t seed,
                       int run_until_index);

/// Thread-safe bounded LRU cache of completed runs.
class RunCache {
 public:
  /// One memoized run. `results` carries engine per-process accounting;
  /// `series` carries caller-defined numeric channels (e.g. per-stream
  /// latency samples of a steady-state run, which lives above sim).
  struct Entry {
    std::vector<ProcessResult> results;
    std::vector<std::vector<double>> series;
    double duration = 0.0;
  };

  static constexpr size_t kDefaultCapacity = 4096;

  explicit RunCache(size_t capacity = kDefaultCapacity);

  /// Returns the entry for `key` (refreshing its recency), or nullopt.
  std::optional<Entry> Lookup(uint64_t key);

  /// Inserts or overwrites `key`, evicting the least-recently-used entry
  /// when over capacity.
  void Insert(uint64_t key, Entry entry);

  void Clear();

  size_t size() const;
  size_t capacity() const { return capacity_; }
  uint64_t hits() const;
  uint64_t misses() const;

  /// Process-wide shared cache (default for samplers and benches).
  static RunCache& Global();

 private:
  using LruList = std::list<std::pair<uint64_t, Entry>>;

  mutable Mutex mutex_;
  const size_t capacity_;
  LruList lru_ GUARDED_BY(mutex_);  // front = most recently used
  std::unordered_map<uint64_t, LruList::iterator> index_ GUARDED_BY(mutex_);
  uint64_t hits_ GUARDED_BY(mutex_) = 0;
  uint64_t misses_ GUARDED_BY(mutex_) = 0;
};

}  // namespace contender::sim

#endif  // CONTENDER_SIM_RUN_CACHE_H_

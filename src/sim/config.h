// Hardware model configuration for the execution simulator.
//
// Defaults approximate the paper's testbed: 8 cores, 8 GB RAM, a single
// disk with ~140 MB/s sequential bandwidth (PostgreSQL 8.4 era hardware).

#ifndef CONTENDER_SIM_CONFIG_H_
#define CONTENDER_SIM_CONFIG_H_

#include <cstdint>

namespace contender::sim {

constexpr double kMB = 1e6;
constexpr double kGB = 1e9;

/// Simulated machine parameters. All byte quantities are in bytes and all
/// rates in bytes/second; time is in (virtual) seconds.
struct SimConfig {
  /// Aggregate sequential read bandwidth of the I/O subsystem.
  double seq_bandwidth = 140.0 * kMB;

  /// Intrinsic throughput of one random-I/O stream (seek-bound).
  double random_bandwidth = 3.0 * kMB;

  /// Intrinsic throughput of spill/swap traffic: scattered page-sized
  /// writes and re-reads, faster than pure random reads but far below
  /// sequential bandwidth.
  double spill_bandwidth = 6.0 * kMB;

  /// Fractional efficiency loss per additional concurrent stream: with S
  /// streams the disk delivers seq_bandwidth / (1 + seek_overhead * (S-1)).
  double seek_overhead = 0.06;

  /// Physical RAM.
  double ram_bytes = 8.0 * kGB;

  /// RAM reserved for the OS and DBMS fixed structures; never grantable.
  double os_reserved_bytes = 1.4 * kGB;

  /// Fraction of currently-free RAM (after pins and working-memory grants)
  /// that acts as page cache for dimension tables. Models shared_buffers
  /// plus the OS page cache, which shrink under memory pressure.
  double buffer_pool_fraction = 0.85;

  /// CPU cores; queries time-share cores only when active queries > cores.
  int cores = 8;

  /// Bytes of extra I/O per byte of working set that does not fit in its
  /// memory grant (write out + read back, with some re-reading).
  double spill_amplification = 2.4;

  /// Lognormal sigma of the per-phase random-I/O service-rate multiplier.
  /// Individual page fetches vary by up to an order of magnitude (§6.2);
  /// aggregated over a phase of many fetches the multiplier tightens, but
  /// seek-bound phases remain the noisiest part of the machine.
  double random_io_sigma = 0.30;

  /// Lognormal sigma of the per-phase spill-traffic rate multiplier.
  /// Spill batches are large and amortized, so they vary far less than
  /// individual seeks.
  double spill_io_sigma = 0.10;

  /// Multiplicative jitter (std-dev) on per-phase CPU demand.
  double cpu_jitter = 0.02;

  /// Fixed per-query startup cost (plan generation, catalog access).
  double startup_cpu_seconds = 0.5;
};

}  // namespace contender::sim

#endif  // CONTENDER_SIM_CONFIG_H_

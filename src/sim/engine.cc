#include "sim/engine.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>

#include "sim/disk.h"
#include "util/logging.h"

namespace contender::sim {

namespace {
// Demand remainders below these thresholds count as exhausted.
constexpr double kByteEps = 0.5;
constexpr double kCpuEps = 1e-9;
}  // namespace

Engine::Engine(const SimConfig& config, uint64_t seed)
    : config_(config),
      rng_(seed),
      buffer_pool_(
          std::max(0.0, config.ram_bytes - config.os_reserved_bytes) *
          config.buffer_pool_fraction) {}

int Engine::AddProcess(const QuerySpec& spec, units::Seconds start) {
  const double start_time = start.value();
  CONTENDER_CHECK(start_time >= now_ - kEps)
      << "process scheduled in the past";
  Process p;
  p.spec = spec;
  if (!spec.immortal && config_.startup_cpu_seconds > 0.0) {
    Phase startup;
    startup.cpu_seconds = config_.startup_cpu_seconds;
    p.spec.phases.insert(p.spec.phases.begin(), startup);
  }
  const int id = static_cast<int>(processes_.size());
  p.result.process_id = id;
  p.result.template_id = spec.template_id;
  p.result.name = spec.name;
  p.result.start_time = start_time;
  processes_.push_back(std::move(p));
  pending_.push_back(id);
  std::sort(pending_.begin(), pending_.end(), [&](int a, int b) {
    const double ta = processes_[static_cast<size_t>(a)].result.start_time;
    const double tb = processes_[static_cast<size_t>(b)].result.start_time;
    if (ta != tb) return ta < tb;
    return a < b;  // deterministic tie-break: insertion order
  });
  return id;
}

units::Bytes Engine::memory_in_use() const {
  return units::Bytes(pinned_memory_ + granted_working_memory_);
}

const ProcessResult& Engine::result(int process_id) const {
  return processes_.at(static_cast<size_t>(process_id)).result;
}

void Engine::UpdateBufferPoolCapacity() {
  const double grantable =
      std::max(0.0, config_.ram_bytes - config_.os_reserved_bytes);
  const double free_ram =
      std::max(0.0, grantable - pinned_memory_ - granted_working_memory_);
  buffer_pool_.SetCapacity(free_ram * config_.buffer_pool_fraction);
}

void Engine::ActivateArrivals() {
  while (!pending_.empty()) {
    const int id = pending_.front();
    Process& p = processes_[static_cast<size_t>(id)];
    if (p.result.start_time > now_ + kEps) break;
    pending_.erase(pending_.begin());
    p.arrived = true;
    p.result.start_time = now_;
    // Pin memory with priority; the pin is bounded by what exists.
    const double grantable =
        std::max(0.0, config_.ram_bytes - config_.os_reserved_bytes);
    const double available =
        std::max(0.0, grantable - pinned_memory_ - granted_working_memory_);
    const double pin = std::min(p.spec.pinned_memory_bytes, available);
    pinned_memory_ += pin;
    p.result.max_memory_granted =
        std::max(p.result.max_memory_granted, pin);
    UpdateBufferPoolCapacity();
  }
}

double Engine::NextArrivalTime() const {
  if (pending_.empty()) return kInfinity;
  return processes_[static_cast<size_t>(pending_.front())].result.start_time;
}

bool Engine::PhaseDone(const Process& p) {
  return p.seq_remaining <= kByteEps && p.spill_remaining <= kByteEps &&
         p.rnd_remaining <= kByteEps && p.cpu_remaining <= kCpuEps;
}

void Engine::InitPhase(Process* p) {
  while (!p->done) {
    if (p->phase_index >= p->spec.phases.size()) {
      CompleteProcess(p);
      return;
    }
    const Phase& phase = p->spec.phases[p->phase_index];

    p->seq_remaining = phase.seq_io_bytes;
    p->seq_table = phase.table;
    p->seq_table_bytes = phase.table_bytes;
    p->seq_cacheable = phase.cacheable;
    p->seq_from_cache = false;
    if (p->seq_remaining > 0.0 && phase.cacheable &&
        buffer_pool_.IsCached(phase.table)) {
      buffer_pool_.Touch(phase.table);
      p->result.bytes_saved_by_cache += p->seq_remaining;
      p->seq_remaining = 0.0;
      p->seq_from_cache = true;
    }

    p->rnd_remaining = phase.rnd_io_bytes;
    if (p->rnd_remaining > 0.0) {
      const double sigma = config_.random_io_sigma;
      p->rnd_rate_multiplier =
          sigma > 0.0 ? rng_.LogNormal(-0.5 * sigma * sigma, sigma) : 1.0;
    } else {
      p->rnd_rate_multiplier = 1.0;
    }

    double cpu = phase.cpu_seconds;
    if (cpu > 0.0 && config_.cpu_jitter > 0.0) {
      cpu *= std::max(0.1, rng_.Normal(1.0, config_.cpu_jitter));
    }
    p->cpu_remaining = cpu;

    // Working-memory grant and spill calculus.
    p->mem_granted = 0.0;
    p->spill_remaining = 0.0;
    if (phase.mem_demand_bytes > 0.0) {
      const double grantable =
          std::max(0.0, config_.ram_bytes - config_.os_reserved_bytes);
      double available = std::max(
          0.0, grantable - pinned_memory_ - granted_working_memory_);
      if (phase.mem_demand_bytes > available) {
        // Memory pressure: the OS reclaims pages from the largest resident
        // working sets first. Revoke grants from processes holding more
        // than this phase demands; the victims re-read the swapped pages
        // (spill traffic). Pinned memory is never revoked.
        available += RevokeMemoryFromLargerHolders(
            p, phase.mem_demand_bytes - available, phase.mem_demand_bytes);
      }
      p->mem_granted = std::min(phase.mem_demand_bytes, available);
      granted_working_memory_ += p->mem_granted;
      p->result.max_memory_granted =
          std::max(p->result.max_memory_granted, p->mem_granted);
      const double shortfall = phase.mem_demand_bytes - p->mem_granted;
      if (phase.spillable && shortfall > 0.0) {
        p->spill_remaining = shortfall * config_.spill_amplification;
        p->result.spill_bytes += p->spill_remaining;
        const double sigma = config_.spill_io_sigma;
        p->spill_rate_multiplier =
            sigma > 0.0 ? rng_.LogNormal(-0.5 * sigma * sigma, sigma) : 1.0;
      }
      UpdateBufferPoolCapacity();
    }

    p->phase_ready = true;
    if (!PhaseDone(*p)) return;
    CompletePhase(p);
  }
}

double Engine::RevokeMemoryFromLargerHolders(Process* requester, double need,
                                             double requester_demand) {
  double freed = 0.0;
  while (need > 0.0) {
    Process* victim = nullptr;
    for (Process& cand : processes_) {
      if (&cand == requester || cand.done || !cand.arrived) continue;
      // Only working sets of comparable or larger size are reclaim
      // victims; small residents are left alone.
      if (cand.mem_granted <= 0.5 * requester_demand) continue;
      if (victim == nullptr || cand.mem_granted > victim->mem_granted) {
        victim = &cand;
      }
    }
    if (victim == nullptr) break;
    const double take = std::min(victim->mem_granted, need);
    victim->mem_granted -= take;
    granted_working_memory_ -= take;
    const double swap = take * config_.spill_amplification;
    victim->spill_remaining += swap;
    victim->result.spill_bytes += swap;
    if (victim->spill_rate_multiplier == 1.0 &&
        config_.spill_io_sigma > 0.0) {
      const double sigma = config_.spill_io_sigma;
      victim->spill_rate_multiplier =
          rng_.LogNormal(-0.5 * sigma * sigma, sigma);
    }
    freed += take;
    need -= take;
  }
  return freed;
}

void Engine::CompletePhase(Process* p) {
  const Phase& phase = p->spec.phases[p->phase_index];
  if (p->mem_granted > 0.0) {
    granted_working_memory_ -= p->mem_granted;
    p->mem_granted = 0.0;
    UpdateBufferPoolCapacity();
  }
  if (phase.cacheable && !p->seq_from_cache && phase.seq_io_bytes > 0.0 &&
      phase.seq_io_bytes >= phase.table_bytes - kByteEps) {
    buffer_pool_.Admit(phase.table, phase.table_bytes);
  }
  ++p->phase_index;
  p->phase_ready = false;
}

void Engine::CompleteProcess(Process* p) {
  p->done = true;
  p->phase_ready = false;
  p->result.end_time = now_;
  p->result.completed = true;
  if (p->spec.pinned_memory_bytes > 0.0) {
    // Release the (possibly clipped) pin. We pinned min(requested, available)
    // at arrival; to stay conservative release the same recomputation is not
    // possible, so track via max(0, ...) clamp.
    pinned_memory_ = std::max(0.0, pinned_memory_ - p->spec.pinned_memory_bytes);
    UpdateBufferPoolCapacity();
  }
  if (completion_callback_) completion_callback_(p->result);
}

bool Engine::Step() {
  const size_t pending_before = pending_.size();
  size_t done_before = 0;
  for (const Process& p : processes_) {
    if (p.done) ++done_before;
  }

  ActivateArrivals();

  for (Process& p : processes_) {
    if (p.arrived && !p.done && !p.phase_ready) InitPhase(&p);
  }

  // Build disk demand: shared scan groups for non-negative tables, private
  // sequential streams for negative tables, and seek-bound random streams
  // for index I/O and spill (swap) traffic.
  std::map<TableId, std::vector<size_t>> scan_groups;
  int private_streams = 0;
  enum class RndKind { kIndex, kSpill };
  std::vector<std::pair<size_t, RndKind>> rnd_streams;
  DiskDemand demand;
  for (size_t i = 0; i < processes_.size(); ++i) {
    Process& p = processes_[i];
    if (!p.arrived || p.done || !p.phase_ready) continue;
    if (p.seq_remaining > kByteEps) {
      if (p.seq_table >= 0) {
        scan_groups[p.seq_table].push_back(i);
      } else {
        ++private_streams;
      }
    }
    if (p.rnd_remaining > kByteEps) {
      rnd_streams.emplace_back(i, RndKind::kIndex);
      demand.random_stream_caps.push_back(config_.random_bandwidth *
                                          p.rnd_rate_multiplier);
    }
    if (p.spill_remaining > kByteEps) {
      rnd_streams.emplace_back(i, RndKind::kSpill);
      demand.random_stream_caps.push_back(config_.spill_bandwidth *
                                          p.spill_rate_multiplier);
    }
  }
  demand.num_seq_groups =
      static_cast<int>(scan_groups.size()) + private_streams;
  const DiskAllocation alloc = AllocateDiskBandwidth(config_, demand);

  // Per-process rates.
  const size_t n = processes_.size();
  std::vector<double> seq_rate(n, 0.0), spill_rate(n, 0.0), rnd_rate(n, 0.0);
  std::vector<int> group_size(n, 1);
  for (const auto& [table, members] : scan_groups) {
    for (size_t i : members) {
      seq_rate[i] = alloc.seq_group_rate;
      group_size[i] = static_cast<int>(members.size());
    }
  }
  for (size_t i = 0; i < n; ++i) {
    Process& p = processes_[i];
    if (!p.arrived || p.done || !p.phase_ready) continue;
    if (p.seq_remaining > kByteEps && p.seq_table < 0) {
      seq_rate[i] = alloc.seq_group_rate;
    }
  }
  for (size_t k = 0; k < rnd_streams.size(); ++k) {
    const auto& [i, kind] = rnd_streams[k];
    if (kind == RndKind::kIndex) {
      rnd_rate[i] = alloc.random_stream_rates[k];
    } else {
      spill_rate[i] = alloc.random_stream_rates[k];
    }
  }

  int cpu_active = 0;
  for (const Process& p : processes_) {
    if (p.arrived && !p.done && p.phase_ready && p.cpu_remaining > kCpuEps) {
      ++cpu_active;
    }
  }
  const double cpu_rate =
      cpu_active == 0
          ? 0.0
          : std::min(1.0, static_cast<double>(config_.cores) /
                              static_cast<double>(cpu_active));

  // Earliest completion among all active demands, capped by next arrival.
  double dt = kInfinity;
  for (size_t i = 0; i < n; ++i) {
    const Process& p = processes_[i];
    if (!p.arrived || p.done || !p.phase_ready) continue;
    if (p.seq_remaining > kByteEps && seq_rate[i] > 0.0) {
      dt = std::min(dt, p.seq_remaining / seq_rate[i]);
    }
    if (p.spill_remaining > kByteEps && spill_rate[i] > 0.0) {
      dt = std::min(dt, p.spill_remaining / spill_rate[i]);
    }
    if (p.rnd_remaining > kByteEps && rnd_rate[i] > 0.0) {
      dt = std::min(dt, p.rnd_remaining / rnd_rate[i]);
    }
    if (p.cpu_remaining > kCpuEps && cpu_rate > 0.0) {
      dt = std::min(dt, p.cpu_remaining / cpu_rate);
    }
  }
  const double arrival_gap = NextArrivalTime() - now_;
  const bool has_arrival = std::isfinite(arrival_gap);
  if (!std::isfinite(dt)) {
    if (has_arrival) {
      now_ += std::max(0.0, arrival_gap);
      return true;
    }
    // No advanceable demand: the step still made progress if it activated
    // arrivals or completed zero-demand processes (e.g., full cache hits).
    size_t done_now = 0;
    for (const Process& p : processes_) {
      if (p.done) ++done_now;
    }
    return done_now != done_before || pending_.size() != pending_before;
  }
  if (has_arrival && arrival_gap < dt) {
    dt = std::max(0.0, arrival_gap);
  }

  // Advance.
  now_ += dt;
  for (size_t i = 0; i < n; ++i) {
    Process& p = processes_[i];
    if (!p.arrived || p.done || !p.phase_ready) continue;
    const bool had_io = p.seq_remaining > kByteEps ||
                        p.spill_remaining > kByteEps ||
                        p.rnd_remaining > kByteEps;
    if (p.seq_remaining > kByteEps && seq_rate[i] > 0.0) {
      const double bytes = std::min(p.seq_remaining, seq_rate[i] * dt);
      p.seq_remaining -= bytes;
      const double share = static_cast<double>(group_size[i]);
      p.result.disk_bytes_read += bytes / share;
      p.result.bytes_saved_by_shared_scan += bytes * (share - 1.0) / share;
    }
    if (p.spill_remaining > kByteEps && spill_rate[i] > 0.0) {
      const double bytes = std::min(p.spill_remaining, spill_rate[i] * dt);
      p.spill_remaining -= bytes;
      p.result.disk_bytes_read += bytes;
    }
    if (p.rnd_remaining > kByteEps && rnd_rate[i] > 0.0) {
      const double bytes = std::min(p.rnd_remaining, rnd_rate[i] * dt);
      p.rnd_remaining -= bytes;
      p.result.disk_bytes_read += bytes;
    }
    if (p.cpu_remaining > kCpuEps && cpu_rate > 0.0) {
      const double work = std::min(p.cpu_remaining, cpu_rate * dt);
      p.cpu_remaining -= work;
      p.result.cpu_busy_seconds += dt;
    }
    if (had_io) p.result.io_busy_seconds += dt;

    if (p.seq_remaining <= kByteEps) p.seq_remaining = 0.0;
    if (p.spill_remaining <= kByteEps) p.spill_remaining = 0.0;
    if (p.rnd_remaining <= kByteEps) p.rnd_remaining = 0.0;
    if (p.cpu_remaining <= kCpuEps) p.cpu_remaining = 0.0;
  }

  // Phase / process completions (callbacks may add arrivals).
  for (size_t i = 0; i < n; ++i) {
    Process& p = processes_[i];
    if (!p.arrived || p.done || !p.phase_ready) continue;
    if (PhaseDone(p)) {
      CompletePhase(&p);
      InitPhase(&p);
    }
  }
  return true;
}

Status Engine::Run() {
  stop_requested_ = false;
  while (!stop_requested_) {
    bool mortal_active = false;
    for (const Process& p : processes_) {
      if (!p.spec.immortal && !p.done) {
        mortal_active = true;
        break;
      }
    }
    if (!mortal_active) break;
    if (!Step()) {
      return Status::Internal("engine stalled with unfinished processes");
    }
  }
  return Status::OK();
}

Status Engine::RunUntilProcessCompletes(int process_id) {
  if (process_id < 0 ||
      static_cast<size_t>(process_id) >= processes_.size()) {
    return Status::InvalidArgument("unknown process id");
  }
  stop_requested_ = false;
  while (!stop_requested_ &&
         !processes_[static_cast<size_t>(process_id)].done) {
    if (!Step()) {
      return Status::Internal("engine stalled before target completed");
    }
  }
  return Status::OK();
}

}  // namespace contender::sim

// Fans independent Engine runs across a ThreadPool, memoizing each run in a
// RunCache. This is the parallel substrate for the training phase: isolated
// profiles, spoiler runs at every MPL, scan-time measurements and
// steady-state mix observations are all mutually independent simulations.
//
// Determinism contract: every run's seed is supplied by the caller (derived
// before submission, never from scheduling), and results are returned
// ordered by submission index — so the output is bit-identical for any pool
// width, including 1.

#ifndef CONTENDER_SIM_BATCH_RUNNER_H_
#define CONTENDER_SIM_BATCH_RUNNER_H_

#include <future>
#include <type_traits>
#include <utility>
#include <vector>

#include "sim/config.h"
#include "sim/query_spec.h"
#include "sim/run_cache.h"
#include "util/statusor.h"
#include "util/thread_pool.h"

namespace contender::sim {

/// One self-contained engine run: every spec is added at t = 0 in order.
struct EngineRun {
  std::vector<QuerySpec> specs;
  SimConfig config;
  uint64_t seed = 0;
  /// Index into `specs` of the process the run waits for (spoiler runs wait
  /// for the primary); -1 runs until all mortal processes complete.
  int run_until = -1;
};

/// Outcome of one engine run.
struct EngineRunResult {
  /// Per-process accounting, index-aligned with EngineRun::specs.
  std::vector<ProcessResult> results;
  /// Virtual time at which the run stopped.
  double duration = 0.0;
  /// True when the result was replayed from the cache.
  bool from_cache = false;
};

/// Parallel, memoizing executor of independent engine runs.
class BatchRunner {
 public:
  struct Options {
    /// Pool width; <= 0 selects the machine's hardware concurrency.
    int threads = 0;
    /// Memoization cache; nullptr disables caching.
    RunCache* cache = &RunCache::Global();
  };

  BatchRunner();
  explicit BatchRunner(const Options& options);

  /// Executes one run synchronously on the calling thread, bypassing both
  /// the pool and the cache (the deterministic reference implementation).
  static StatusOr<EngineRunResult> Execute(const EngineRun& run);

  /// Executes one run synchronously through the cache.
  StatusOr<EngineRunResult> RunOne(const EngineRun& run);

  /// Fans the batch across the pool; result i corresponds to runs[i].
  std::vector<StatusOr<EngineRunResult>> Run(
      const std::vector<EngineRun>& runs);

  /// Ordered parallel map: evaluates fn(0..n-1) on the pool and returns the
  /// results by index. `fn` must be safe to invoke concurrently; exceptions
  /// propagate to the caller. Used for independent work that is not a plain
  /// engine run (e.g. steady-state mix observations).
  template <typename Fn>
  auto Map(size_t n, Fn fn) -> std::vector<std::invoke_result_t<Fn, size_t>> {
    using R = std::invoke_result_t<Fn, size_t>;
    std::vector<std::future<R>> futures;
    futures.reserve(n);
    for (size_t i = 0; i < n; ++i) {
      futures.push_back(pool_.Submit([fn, i] { return fn(i); }));
    }
    std::vector<R> out;
    out.reserve(n);
    for (std::future<R>& f : futures) out.push_back(f.get());
    return out;
  }

  ThreadPool& pool() { return pool_; }
  RunCache* cache() const { return cache_; }

 private:
  ThreadPool pool_;
  RunCache* cache_;
};

}  // namespace contender::sim

#endif  // CONTENDER_SIM_BATCH_RUNNER_H_

// The spoiler (paper §5.1): a synthetic antagonist that simulates the
// worst-case contention a primary query can face at MPL n. It pins
// (1 - 1/n) of RAM and circularly reads n - 1 large private files to keep
// n - 1 sequential I/O streams permanently busy.

#ifndef CONTENDER_SIM_SPOILER_H_
#define CONTENDER_SIM_SPOILER_H_

#include <vector>

#include "sim/config.h"
#include "sim/query_spec.h"
#include "util/units.h"

namespace contender::sim {

/// Builds the spoiler processes for MPL `mpl` (>= 2): one memory-pinning
/// process plus mpl - 1 immortal circular-read streams on distinct private
/// files. Add all of them to an engine before (or at) the primary's start.
[[nodiscard]] std::vector<QuerySpec> MakeSpoiler(const SimConfig& config,
                                                 units::Mpl mpl);

}  // namespace contender::sim

#endif  // CONTENDER_SIM_SPOILER_H_

// The execution engine: a deterministic fluid (rate-based) discrete-event
// simulator of concurrent analytical queries competing for one disk, a
// buffer pool, working memory, and CPU cores.
//
// Between events every active process progresses its current phase's
// demands at constant rates:
//   - sequential I/O: scan groups (one per table) share the disk fairly
//     with random streams (see disk.h); all members of a scan group advance
//     at the full group rate (synchronized scans);
//   - spill I/O: swap-style scattered traffic from memory shortfalls,
//     modeled as a private random stream (seek-bound, never shared);
//   - random I/O: capped by a per-phase stochastic intrinsic rate;
//   - CPU: one core per process, processor sharing when oversubscribed.
// The engine advances to the earliest demand completion / arrival, updates
// accounting, and re-solves rates.

#ifndef CONTENDER_SIM_ENGINE_H_
#define CONTENDER_SIM_ENGINE_H_

#include <functional>
#include <limits>
#include <vector>

#include "sim/buffer_pool.h"
#include "sim/config.h"
#include "sim/query_spec.h"
#include "util/random.h"
#include "util/status.h"
#include "util/units.h"

namespace contender::sim {

/// Concurrent query execution simulator. Single-threaded, deterministic
/// under a fixed seed. One Engine models one continuous machine run (the
/// buffer pool persists across queries added to the same engine).
class Engine {
 public:
  /// Invoked when a process completes; may call AddProcess (steady-state
  /// drivers) and may request a stop via RequestStop().
  using CompletionCallback = std::function<void(const ProcessResult&)>;

  Engine(const SimConfig& config, uint64_t seed);

  /// Schedules a query to start at `start_time` (>= now). Returns the
  /// process id. The engine prepends the per-query startup CPU cost for
  /// mortal processes.
  int AddProcess(const QuerySpec& spec, units::Seconds start_time);

  void SetCompletionCallback(CompletionCallback cb) {
    completion_callback_ = std::move(cb);
  }

  /// Runs until every mortal process has completed and no arrivals remain
  /// (immortal spoiler streams do not keep the engine alive), or until
  /// RequestStop() is called from the completion callback.
  Status Run();

  /// Runs until the given process completes (other processes keep running
  /// up to that instant, then the engine stops).
  Status RunUntilProcessCompletes(int process_id);

  /// Stops the run loop after the current event (valid inside callbacks).
  void RequestStop() { stop_requested_ = true; }

  units::Seconds now() const { return units::Seconds(now_); }
  const SimConfig& config() const { return config_; }
  const BufferPool& buffer_pool() const { return buffer_pool_; }
  /// Currently granted working memory plus pinned memory.
  units::Bytes memory_in_use() const;

  /// Accounting for any process ever added.
  const ProcessResult& result(int process_id) const;
  size_t num_processes() const { return processes_.size(); }

 private:
  struct Process {
    QuerySpec spec;
    ProcessResult result;
    bool arrived = false;
    bool done = false;
    size_t phase_index = 0;
    bool phase_ready = false;
    // Remaining demands of the current phase.
    double seq_remaining = 0.0;
    double spill_remaining = 0.0;
    double rnd_remaining = 0.0;
    double cpu_remaining = 0.0;
    // Per-phase draws and grants.
    double rnd_rate_multiplier = 1.0;
    double spill_rate_multiplier = 1.0;
    double mem_granted = 0.0;
    // Scan metadata for the current phase.
    TableId seq_table = kNoTable;
    double seq_table_bytes = 0.0;
    bool seq_cacheable = false;
    bool seq_from_cache = false;
  };

  /// Starts the process's next phase: memory grant, spill computation,
  /// cache check, noise draws. Recursively skips empty phases.
  void InitPhase(Process* p);

  /// True once every demand of the current phase is exhausted.
  static bool PhaseDone(const Process& p);

  void CompletePhase(Process* p);
  void CompleteProcess(Process* p);

  /// Memory-pressure reclaim: takes up to `need` bytes from arrived
  /// processes whose current grant exceeds `requester_demand` (largest
  /// first); victims incur swap (spill) traffic. Returns the bytes freed.
  double RevokeMemoryFromLargerHolders(Process* requester, double need,
                                       double requester_demand);

  /// One fluid step: solve rates, pick dt, advance. Returns false when
  /// nothing can make progress (no active demand and no pending arrival).
  bool Step();

  void ActivateArrivals();
  double NextArrivalTime() const;
  void UpdateBufferPoolCapacity();

  SimConfig config_;
  Rng rng_;
  double now_ = 0.0;
  bool stop_requested_ = false;

  std::vector<Process> processes_;
  // Indices of processes not yet arrived, kept sorted by start time.
  std::vector<int> pending_;

  BufferPool buffer_pool_;
  double pinned_memory_ = 0.0;
  double granted_working_memory_ = 0.0;

  CompletionCallback completion_callback_;

  static constexpr double kInfinity = std::numeric_limits<double>::infinity();
  static constexpr double kEps = 1e-7;
};

}  // namespace contender::sim

#endif  // CONTENDER_SIM_ENGINE_H_

// Buffer pool: caches small (dimension) tables with LRU eviction inside a
// capacity budget that shrinks as working memory is pinned or granted.
//
// Fact tables exceed the pool and are never cached; their reuse benefit
// comes from synchronized shared scans instead (see Engine).

#ifndef CONTENDER_SIM_BUFFER_POOL_H_
#define CONTENDER_SIM_BUFFER_POOL_H_

#include <list>
#include <unordered_map>

#include "sim/query_spec.h"

namespace contender::sim {

/// LRU table cache with a mutable capacity.
class BufferPool {
 public:
  explicit BufferPool(double capacity_bytes)
      : capacity_bytes_(capacity_bytes) {}

  /// Shrinks or grows the budget (memory pressure); evicts LRU victims as
  /// needed to fit the new capacity.
  void SetCapacity(double capacity_bytes);
  double capacity() const { return capacity_bytes_; }

  /// True if `table` is fully cached.
  bool IsCached(TableId table) const;

  /// Records a completed read of a cacheable table; admits it (evicting LRU
  /// victims) when it fits the capacity. Over-capacity tables are ignored.
  void Admit(TableId table, double bytes);

  /// Marks a cache hit (LRU touch).
  void Touch(TableId table);

  double cached_bytes() const { return cached_bytes_; }
  size_t num_cached_tables() const { return entries_.size(); }

 private:
  void EvictUntilFits(double incoming_bytes);

  double capacity_bytes_;
  double cached_bytes_ = 0.0;
  // MRU at front.
  std::list<TableId> lru_;
  struct Entry {
    double bytes;
    std::list<TableId>::iterator lru_it;
  };
  std::unordered_map<TableId, Entry> entries_;
};

}  // namespace contender::sim

#endif  // CONTENDER_SIM_BUFFER_POOL_H_

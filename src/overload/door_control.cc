#include "overload/door_control.h"

#include <string>

#include "util/failpoint.h"

namespace contender::overload {

namespace {
/// Chaos injection for door sheds: when armed, arrivals are shed at the
/// door with a seeded, replayable pattern (stamped kQueueDelay — from
/// the caller's perspective an injected shed is indistinguishable from
/// a real queue-delay shed, which is the point).
auto& kDoorShedFailPoint = CONTENDER_DEFINE_FAILPOINT("overload.door.shed");
}  // namespace

DoorController::DoorController(const DoorOptions& options)
    : options_(options),
      codel_(options.codel),
      brownout_(options.brownout),
      metastability_(options.metastability) {}

std::optional<ShedReason> DoorController::Decide(const DoorSample& sample) {
  ++stats_.decisions;
  auto shed = [&](ShedReason reason) {
    ++stats_.shed;
    ++stats_.shed_by_reason[reason];
    return reason;
  };

  // Every decision feeds the aggregate signals exactly once, before any
  // early-out, so the controller trajectory does not depend on which
  // branch fired.
  if (options_.enabled) {
    metastability_.Observe(sample.queue_delay, sample.predicted_completions);
    brownout_.Observe(sample.queue_delay.value() /
                      options_.codel.target.value());
    stats_.recovery_entries = metastability_.recovery_entries();
    stats_.brownout_escalations = brownout_.escalations();
    stats_.brownout_deescalations = brownout_.deescalations();
  }

  if (kDoorShedFailPoint.ShouldFail()) {
    ++stats_.chaos_sheds;
    return shed(ShedReason::kQueueDelay);
  }
  if (sample.quota_exceeded) {
    return shed(ShedReason::kQuota);
  }
  if (options_.enabled) {
    if (sample.memory_exceeded) {
      return shed(ShedReason::kMemoryPressure);
    }
    if (metastability_.in_recovery() &&
        sample.criticality < Criticality::kCritical) {
      ++stats_.recovery_sheds;
      return shed(ShedReason::kQueueDelay);
    }
    if (!brownout_.Admits(sample.criticality)) {
      return shed(ShedReason::kCriticalityBrownout);
    }
    if (sample.criticality < Criticality::kCritical &&
        codel_.ShouldShed(sample.now, sample.queue_delay)) {
      return shed(ShedReason::kQueueDelay);
    }
  }
  ++stats_.admitted;
  return std::nullopt;
}

const DoorStats& DoorController::stats() const { return stats_; }

Status DoorController::ShedStatus(ShedReason reason) {
  const std::string name = ShedReasonName(reason);
  switch (reason) {
    case ShedReason::kQuota:
    case ShedReason::kMemoryPressure:
    case ShedReason::kRetryBudget:
      return Status::ResourceExhausted("shed: " + name);
    case ShedReason::kQueueDelay:
    case ShedReason::kCriticalityBrownout:
      return Status::Unavailable("shed: " + name);
  }
  return Status::Unavailable("shed: " + name);
}

}  // namespace contender::overload

// Shed-reason taxonomy and tenant criticality tiers — the vocabulary the
// whole overload-control subsystem (DESIGN.md §16) speaks.
//
// Every dropped request in the stack must be stamped with a ShedReason
// (lint rule R10 bans silent drops), so FleetMetrics can keep a
// conservation ledger (admitted + shed == offered) broken out by tenant
// and reason, and the bench can say *which* controller shed *what*.
//
// Criticality is the brownout axis: under pressure the door sheds
// kSheddable work first, then kStandard, and only hard resource limits
// (quota, memory) ever reject kCritical work.

#ifndef CONTENDER_OVERLOAD_SHED_REASON_H_
#define CONTENDER_OVERLOAD_SHED_REASON_H_

#include <optional>
#include <string>
#include <vector>

namespace contender::overload {

/// Why a request was dropped instead of executed. Stamped on every
/// rejection in serve/sched/fleet — there is no anonymous drop.
enum class ShedReason {
  /// Queue delay (predicted or observed sojourn) exceeded the CoDel
  /// target for a full interval, or the metastability detector is in
  /// recovery mode and draining queues.
  kQueueDelay = 0,
  /// The tenant's static admission quota was full.
  kQuota,
  /// Predicted outstanding working-set bytes would exceed the node
  /// memory budget (the LearnedWMP-style pre-spill signal).
  kMemoryPressure,
  /// The brownout ladder's criticality floor excluded this tier.
  kCriticalityBrownout,
  /// A retry was denied because the tenant's retry budget ran dry.
  kRetryBudget,
};

/// Stable lowercase-hyphen name ("queue-delay", "quota", ...).
const char* ShedReasonName(ShedReason reason);

/// Inverse of ShedReasonName; nullopt for unrecognized names.
std::optional<ShedReason> ShedReasonFromString(const std::string& name);

/// Every ShedReason, in enum order (for ledgers and round-trip tests).
const std::vector<ShedReason>& AllShedReasons();

/// Tenant service tier: what the brownout ladder may shed. Higher values
/// are more protected; comparisons are meaningful (kCritical > kStandard).
enum class Criticality {
  /// Best-effort work, first to go in a brownout.
  kSheddable = 0,
  /// The default tier.
  kStandard = 1,
  /// Exempt from queue-delay and brownout shedding; only hard resource
  /// limits (quota, memory) may reject it.
  kCritical = 2,
};

/// Stable lowercase name ("sheddable", "standard", "critical").
const char* CriticalityName(Criticality criticality);

/// Inverse of CriticalityName; nullopt for unrecognized names.
std::optional<Criticality> CriticalityFromString(const std::string& name);

/// Every Criticality, from least to most protected.
const std::vector<Criticality>& AllCriticalities();

/// The default fleet tier ladder, a pure function of tenant id: tenant 0
/// (the heaviest Zipf share) is critical, and the ladder then rotates
/// standard → sheddable → critical → ... so every fleet population mixes
/// all three tiers deterministically.
Criticality CriticalityForTenant(int tenant_id);

}  // namespace contender::overload

#endif  // CONTENDER_OVERLOAD_SHED_REASON_H_

#include "overload/codel.h"

#include <cmath>

#include "util/logging.h"

namespace contender::overload {

CoDelController::CoDelController(const CoDelOptions& options)
    : options_(options) {
  CONTENDER_CHECK(options_.target > units::Seconds(0.0))
      << "CoDelController: target must be positive";
  CONTENDER_CHECK(options_.interval > units::Seconds(0.0))
      << "CoDelController: interval must be positive";
}

bool CoDelController::ShouldShed(units::Seconds now, units::Seconds sojourn) {
  if (sojourn < options_.target) {
    // Healthy sample ends any above-target episode and any drop state.
    above_target_ = false;
    first_above_armed_ = false;
    dropping_ = false;
    drop_count_ = 0;
    return false;
  }
  above_target_ = true;
  if (dropping_) {
    if (now >= drop_next_) {
      ++drop_count_;
      ++sheds_;
      drop_next_ =
          now + options_.interval * (1.0 / std::sqrt(
                                               static_cast<double>(
                                                   drop_count_ + 1)));
      return true;
    }
    return false;
  }
  if (!first_above_armed_) {
    first_above_armed_ = true;
    first_above_deadline_ = now + options_.interval;
    return false;
  }
  if (now >= first_above_deadline_) {
    // Delay stayed above target a full interval: enter the dropping
    // state and shed this candidate.
    dropping_ = true;
    drop_count_ = 1;
    ++sheds_;
    drop_next_ = now + options_.interval * (1.0 / std::sqrt(2.0));
    return true;
  }
  return false;
}

}  // namespace contender::overload

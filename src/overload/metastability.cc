#include "overload/metastability.h"

#include "util/logging.h"

namespace contender::overload {

MetastabilityDetector::MetastabilityDetector(
    const MetastabilityOptions& options)
    : options_(options) {
  CONTENDER_CHECK(options_.window >= 2)
      << "MetastabilityDetector: window must be >= 2";
  CONTENDER_CHECK(options_.goodput_fraction > 0.0 &&
                  options_.goodput_fraction < 1.0)
      << "MetastabilityDetector: goodput_fraction must be in (0, 1)";
  CONTENDER_CHECK(options_.delay_growth >= 1.0)
      << "MetastabilityDetector: delay_growth must be >= 1";
  CONTENDER_CHECK(options_.drain_delay >= units::Seconds(0.0))
      << "MetastabilityDetector: drain_delay must be >= 0";
}

void MetastabilityDetector::Observe(units::Seconds queue_delay,
                                    uint64_t completions_so_far) {
  if (!have_window_start_) {
    have_window_start_ = true;
    completions_at_window_start_ = completions_so_far;
  }
  // Recovery exits on drained queues, sampled continuously — waiting for
  // a window boundary would hold the aggressive mode past the drain.
  if (in_recovery_ && queue_delay <= options_.drain_delay) {
    in_recovery_ = false;
  }
  delay_sum_ += queue_delay.value();
  if (++samples_in_window_ < options_.window) return;

  ++windows_;
  const double mean_delay = delay_sum_ / samples_in_window_;
  const uint64_t offered = static_cast<uint64_t>(samples_in_window_);
  const uint64_t completed =
      completions_so_far - completions_at_window_start_;
  const bool goodput_collapsed =
      static_cast<double>(completed) <
      options_.goodput_fraction * static_cast<double>(offered);
  const bool delay_growing =
      have_prev_window_
          ? mean_delay > prev_mean_delay_ * options_.delay_growth
          : mean_delay > options_.drain_delay.value();
  if (!in_recovery_ && goodput_collapsed && delay_growing) {
    in_recovery_ = true;
    ++recovery_entries_;
  }
  prev_mean_delay_ = mean_delay;
  have_prev_window_ = true;
  samples_in_window_ = 0;
  delay_sum_ = 0.0;
  completions_at_window_start_ = completions_so_far;
}

}  // namespace contender::overload

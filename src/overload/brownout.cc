#include "overload/brownout.h"

#include "util/logging.h"

namespace contender::overload {

namespace {
// Rungs above "admit everything": shed kSheddable, then also kStandard.
constexpr int kMaxRung = static_cast<int>(Criticality::kCritical);
}  // namespace

BrownoutLadder::BrownoutLadder(const BrownoutOptions& options)
    : options_(options) {
  CONTENDER_CHECK(options_.enter_pressure > options_.exit_pressure)
      << "BrownoutLadder: enter_pressure must exceed exit_pressure "
         "(the hysteresis band)";
  CONTENDER_CHECK(options_.exit_pressure >= 0.0)
      << "BrownoutLadder: exit_pressure must be >= 0";
  CONTENDER_CHECK(options_.rung_streak >= 1)
      << "BrownoutLadder: rung_streak must be >= 1";
}

void BrownoutLadder::Observe(double pressure) {
  if (pressure >= options_.enter_pressure) {
    below_streak_ = 0;
    if (++above_streak_ >= options_.rung_streak) {
      above_streak_ = 0;
      if (rung_ < kMaxRung) {
        ++rung_;
        ++escalations_;
      }
    }
    return;
  }
  above_streak_ = 0;
  if (pressure <= options_.exit_pressure) {
    if (++below_streak_ >= options_.rung_streak) {
      below_streak_ = 0;
      if (rung_ > 0) {
        --rung_;
        ++deescalations_;
      }
    }
    return;
  }
  // Inside the hysteresis band: both streaks reset, the ladder holds.
  below_streak_ = 0;
}

Criticality BrownoutLadder::floor() const {
  return static_cast<Criticality>(rung_);
}

}  // namespace contender::overload

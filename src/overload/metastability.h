// Metastable-failure detector: notices when the system has fallen into a
// bad stable state (goodput persistently below offered load while queue
// delay keeps growing) and flips into a recovery mode that sheds
// aggressively until queues drain.
//
// The defining property of a metastable failure (Bronson et al., HotOS
// '21) is that the overload *sustains itself* after the trigger is gone —
// queues are long enough that work times out, timed-out work is retried,
// and the retries keep the queues long. No per-request controller breaks
// that loop, because every individual decision looks locally fine. This
// detector therefore watches the aggregate over a sliding window of door
// decisions: offered arrivals vs completions (goodput) and the trend of
// queue delay. Both bad together ⇒ the vicious cycle is running ⇒ enter
// recovery and stay there until delay actually drains, not merely until
// the next window looks marginally better — exiting early just re-enters
// the cycle.
//
// Deterministic: a pure function of the Observe() call sequence.

#ifndef CONTENDER_OVERLOAD_METASTABILITY_H_
#define CONTENDER_OVERLOAD_METASTABILITY_H_

#include <cstdint>

#include "util/units.h"

namespace contender::overload {

struct MetastabilityOptions {
  /// Door decisions per evaluation window.
  int window = 16;
  /// Recovery triggers when completions over a window fall below this
  /// fraction of offered arrivals...
  double goodput_fraction = 0.5;
  /// ...while the window's mean queue delay exceeds the previous
  /// window's by at least this factor (the "growing" requirement).
  double delay_growth = 1.1;
  /// Recovery ends only when an observed queue delay drains below this.
  units::Seconds drain_delay{1.0};
};

class MetastabilityDetector {
 public:
  explicit MetastabilityDetector(const MetastabilityOptions& options);

  /// One door decision: the candidate's queue delay and the system's
  /// cumulative completion count at that instant.
  void Observe(units::Seconds queue_delay, uint64_t completions_so_far);

  [[nodiscard]] bool in_recovery() const { return in_recovery_; }
  [[nodiscard]] uint64_t windows() const { return windows_; }
  [[nodiscard]] uint64_t recovery_entries() const { return recovery_entries_; }

 private:
  const MetastabilityOptions options_;
  bool in_recovery_ = false;
  int samples_in_window_ = 0;
  double delay_sum_ = 0.0;
  uint64_t completions_at_window_start_ = 0;
  bool have_window_start_ = false;
  double prev_mean_delay_ = 0.0;
  bool have_prev_window_ = false;
  uint64_t windows_ = 0;
  uint64_t recovery_entries_ = 0;
};

}  // namespace contender::overload

#endif  // CONTENDER_OVERLOAD_METASTABILITY_H_

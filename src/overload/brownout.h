// Criticality brownout ladder: under sustained pressure, shed the least
// critical work first, and restore it last.
//
// The ladder has one rung per Criticality tier below kCritical. Pressure
// (queue delay normalized by the CoDel target, so 1.0 = "at target") is
// observed once per door decision; a full streak of decisions above the
// enter threshold escalates one rung, and a full streak below the exit
// threshold de-escalates one rung. The enter/exit gap plus the streak
// requirement is the hysteresis that keeps the ladder from flapping on a
// single noisy sample.
//
// This composes with the serve-side degradation ladder from PR 5: that
// one degrades *prediction quality* (full QS → transferred QS →
// heuristic) when the model is the failing resource; this one degrades
// *admission* (sheddable → standard) when the node is.

#ifndef CONTENDER_OVERLOAD_BROWNOUT_H_
#define CONTENDER_OVERLOAD_BROWNOUT_H_

#include <cstdint>

#include "overload/shed_reason.h"

namespace contender::overload {

struct BrownoutOptions {
  /// Pressure (queue delay / CoDel target) at or above which a decision
  /// counts toward escalating the ladder.
  double enter_pressure = 2.0;
  /// Pressure at or below which a decision counts toward de-escalating.
  double exit_pressure = 0.75;
  /// Consecutive qualifying decisions needed to move one rung.
  int rung_streak = 8;
};

class BrownoutLadder {
 public:
  explicit BrownoutLadder(const BrownoutOptions& options);

  /// Feeds one door decision's pressure sample.
  void Observe(double pressure);

  /// The least critical tier currently admitted. Rung 0 admits
  /// everything (floor = kSheddable); the top rung admits only kCritical.
  [[nodiscard]] Criticality floor() const;

  /// Whether work of tier `criticality` passes the current floor.
  [[nodiscard]] bool Admits(Criticality criticality) const {
    return criticality >= floor();
  }

  [[nodiscard]] int rung() const { return rung_; }
  [[nodiscard]] uint64_t escalations() const { return escalations_; }
  [[nodiscard]] uint64_t deescalations() const { return deescalations_; }

 private:
  const BrownoutOptions options_;
  int rung_ = 0;  // 0 = admit all ... kMaxRung = critical only
  int above_streak_ = 0;
  int below_streak_ = 0;
  uint64_t escalations_ = 0;
  uint64_t deescalations_ = 0;
};

}  // namespace contender::overload

#endif  // CONTENDER_OVERLOAD_BROWNOUT_H_

#include "overload/node_control.h"

#include <algorithm>

namespace contender::overload {

NodeOverloadControl::NodeOverloadControl(const NodeOverloadOptions& options)
    : options_(options), limiter_(options.limiter), codel_(options.codel) {}

int NodeOverloadControl::EffectiveLimit(int target_mpl) const {
  if (!options_.adaptive_limit) return target_mpl;
  return std::min(target_mpl, limiter_.limit());
}

void NodeOverloadControl::OnCompletion(units::Seconds predicted,
                                       units::Seconds observed) {
  if (!options_.adaptive_limit) return;
  limiter_.OnCompletion(predicted, observed);
}

bool NodeOverloadControl::ShouldShedQueueHead(units::Seconds now,
                                              units::Seconds sojourn) {
  if (!options_.codel_shed) return false;
  return codel_.ShouldShed(now, sojourn);
}

}  // namespace contender::overload

// AIMD concurrency limiter driven by the observed-vs-predicted latency
// ratio — the prediction-driven replacement for a static MPL budget.
//
// Contender's predictor prices every admitted query before it runs:
// L(c|M) is what the mix *should* cost. When completions keep coming back
// slower than predicted, the node is running past its contention knee
// (spills, cache pressure — the regimes the model was not asked about),
// and the limiter multiplicatively backs the admission limit off. When
// completions track their predictions, the limit creeps back up one slot
// at a time. Classic AIMD, but the congestion signal is the model's own
// error instead of a latency SLO guess.
//
// Purely deterministic: state advances only on OnCompletion(), so a
// replayed schedule drives an identical limit trajectory at any thread
// count.

#ifndef CONTENDER_OVERLOAD_ADAPTIVE_LIMITER_H_
#define CONTENDER_OVERLOAD_ADAPTIVE_LIMITER_H_

#include <cstdint>

#include "util/units.h"

namespace contender::overload {

struct AdaptiveLimiterOptions {
  /// Hard floor/ceiling for the limit. The ceiling is typically the
  /// node's static target MPL — the limiter only ever *tightens* it.
  int min_limit = 1;
  int max_limit = 8;
  /// EWMA smoothing over per-completion observed/predicted ratios.
  double ewma_alpha = 0.3;
  /// EWMA ratio above this ⇒ the node is past its knee ⇒ decrease.
  double overload_ratio = 1.4;
  /// Multiplicative decrease factor applied to the limit (in (0, 1)).
  double decrease_factor = 0.7;
  /// Consecutive healthy completions before an additive +1 increase.
  int increase_period = 4;
  /// Minimum completions between two decreases, so one bad burst does
  /// not collapse the limit straight to the floor.
  int decrease_cooldown = 2;
};

class AdaptiveLimiter {
 public:
  explicit AdaptiveLimiter(const AdaptiveLimiterOptions& options);

  /// Feeds one completion's predicted and observed execution latency.
  /// Non-positive predictions are ignored (no signal).
  void OnCompletion(units::Seconds predicted, units::Seconds observed);

  /// The current admission limit, always in [min_limit, max_limit].
  [[nodiscard]] int limit() const { return limit_; }

  /// The smoothed observed/predicted ratio (1.0 = model-perfect).
  [[nodiscard]] double ratio_ewma() const { return ratio_ewma_; }

  [[nodiscard]] uint64_t completions() const { return completions_; }
  [[nodiscard]] uint64_t increases() const { return increases_; }
  [[nodiscard]] uint64_t decreases() const { return decreases_; }

 private:
  const AdaptiveLimiterOptions options_;
  int limit_;
  double ratio_ewma_ = 1.0;
  uint64_t completions_ = 0;
  uint64_t increases_ = 0;
  uint64_t decreases_ = 0;
  int healthy_streak_ = 0;
  uint64_t last_decrease_completion_ = 0;
  bool ever_decreased_ = false;
};

}  // namespace contender::overload

#endif  // CONTENDER_OVERLOAD_ADAPTIVE_LIMITER_H_

// Node-level overload control: the per-node composition of the AIMD
// adaptive limiter (how many slots the scheduler may fill) and a CoDel
// controller over the head of the admission queue (how stale a queued
// request may get before it is shed instead of started).
//
// ScheduleSimulator owns one NodeOverloadControl per run; both
// sub-controllers are disabled by default so existing schedules replay
// unchanged. All state advances on simulated time only.

#ifndef CONTENDER_OVERLOAD_NODE_CONTROL_H_
#define CONTENDER_OVERLOAD_NODE_CONTROL_H_

#include <cstdint>

#include "overload/adaptive_limiter.h"
#include "overload/codel.h"
#include "util/units.h"

namespace contender::overload {

struct NodeOverloadOptions {
  /// Replace the static MPL budget with the AIMD limiter (the static
  /// budget remains the limiter's ceiling).
  bool adaptive_limit = false;
  AdaptiveLimiterOptions limiter;
  /// Shed queued requests whose sojourn violates CoDel before starting
  /// them.
  bool codel_shed = false;
  CoDelOptions codel;
};

class NodeOverloadControl {
 public:
  explicit NodeOverloadControl(const NodeOverloadOptions& options);

  /// The admission limit to use where `target_mpl` was used before.
  /// With the adaptive limiter off this is exactly `target_mpl`.
  [[nodiscard]] int EffectiveLimit(int target_mpl) const;

  /// Feeds a completion into the adaptive limiter.
  void OnCompletion(units::Seconds predicted, units::Seconds observed);

  /// CoDel decision for the queue-head candidate with `sojourn` of
  /// queue delay at simulated time `now`. Always false when codel_shed
  /// is off.
  [[nodiscard]] bool ShouldShedQueueHead(units::Seconds now,
                                         units::Seconds sojourn);

  [[nodiscard]] const AdaptiveLimiter& limiter() const { return limiter_; }
  [[nodiscard]] const CoDelController& codel() const { return codel_; }
  [[nodiscard]] uint64_t queue_sheds() const { return codel_.sheds(); }

 private:
  const NodeOverloadOptions options_;
  AdaptiveLimiter limiter_;
  CoDelController codel_;
};

}  // namespace contender::overload

#endif  // CONTENDER_OVERLOAD_NODE_CONTROL_H_

#include "overload/shed_reason.h"

namespace contender::overload {

const char* ShedReasonName(ShedReason reason) {
  switch (reason) {
    case ShedReason::kQueueDelay:
      return "queue-delay";
    case ShedReason::kQuota:
      return "quota";
    case ShedReason::kMemoryPressure:
      return "memory-pressure";
    case ShedReason::kCriticalityBrownout:
      return "criticality-brownout";
    case ShedReason::kRetryBudget:
      return "retry-budget";
  }
  return "unknown";
}

std::optional<ShedReason> ShedReasonFromString(const std::string& name) {
  for (ShedReason reason : AllShedReasons()) {
    if (name == ShedReasonName(reason)) return reason;
  }
  return std::nullopt;
}

const std::vector<ShedReason>& AllShedReasons() {
  static const std::vector<ShedReason>* all = new std::vector<ShedReason>{
      ShedReason::kQueueDelay,          ShedReason::kQuota,
      ShedReason::kMemoryPressure,      ShedReason::kCriticalityBrownout,
      ShedReason::kRetryBudget,
  };
  return *all;
}

const char* CriticalityName(Criticality criticality) {
  switch (criticality) {
    case Criticality::kSheddable:
      return "sheddable";
    case Criticality::kStandard:
      return "standard";
    case Criticality::kCritical:
      return "critical";
  }
  return "unknown";
}

std::optional<Criticality> CriticalityFromString(const std::string& name) {
  for (Criticality criticality : AllCriticalities()) {
    if (name == CriticalityName(criticality)) return criticality;
  }
  return std::nullopt;
}

const std::vector<Criticality>& AllCriticalities() {
  static const std::vector<Criticality>* all = new std::vector<Criticality>{
      Criticality::kSheddable,
      Criticality::kStandard,
      Criticality::kCritical,
  };
  return *all;
}

Criticality CriticalityForTenant(int tenant_id) {
  if (tenant_id < 0) return Criticality::kStandard;
  switch (tenant_id % 3) {
    case 0:
      return Criticality::kCritical;
    case 1:
      return Criticality::kStandard;
    default:
      return Criticality::kSheddable;
  }
}

}  // namespace contender::overload

// CoDel ("controlled delay") queue-delay shedding, adapted from
// Nichols & Jacobson's AQM to admission/dequeue decisions on simulated
// time.
//
// The controller watches each candidate's sojourn (queue delay) at the
// moment a decision is made. Delay below `target` is a healthy standing
// queue; delay above it only matters once it has *persisted* for a full
// `interval` — that distinction is what lets bursts through while still
// catching the sustained bad state. Once shedding starts, the next shed
// comes at interval/sqrt(n) like the reference algorithm, so pressure on
// the queue ramps up the longer delay stays high, and stops the moment a
// sojourn dips back under target.
//
// Deterministic: state is a pure function of the (now, sojourn) call
// sequence — no wall clock, no randomness.

#ifndef CONTENDER_OVERLOAD_CODEL_H_
#define CONTENDER_OVERLOAD_CODEL_H_

#include <cstdint>

#include "util/units.h"

namespace contender::overload {

struct CoDelOptions {
  /// Acceptable standing queue delay.
  units::Seconds target{5.0};
  /// How long delay must stay above target before the first shed; also
  /// the base of the interval/sqrt(n) shed schedule.
  units::Seconds interval{20.0};
};

class CoDelController {
 public:
  explicit CoDelController(const CoDelOptions& options);

  /// One decision: candidate with queue delay `sojourn` examined at
  /// `now`. Returns true when the candidate should be shed. `now` must
  /// be non-decreasing across calls.
  bool ShouldShed(units::Seconds now, units::Seconds sojourn);

  /// Whether delay is currently sitting above target (the brownout and
  /// metastability signals key off this).
  [[nodiscard]] bool above_target() const { return above_target_; }
  [[nodiscard]] bool dropping() const { return dropping_; }
  [[nodiscard]] uint64_t sheds() const { return sheds_; }

 private:
  const CoDelOptions options_;
  bool above_target_ = false;
  bool dropping_ = false;
  /// When the current above-target episode would first justify a shed.
  units::Seconds first_above_deadline_{0.0};
  bool first_above_armed_ = false;
  /// Next scheduled shed while in the dropping state.
  units::Seconds drop_next_{0.0};
  uint64_t drop_count_ = 0;
  uint64_t sheds_ = 0;
};

}  // namespace contender::overload

#endif  // CONTENDER_OVERLOAD_CODEL_H_

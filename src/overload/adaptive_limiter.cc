#include "overload/adaptive_limiter.h"

#include <algorithm>
#include <cmath>

#include "util/logging.h"

namespace contender::overload {

AdaptiveLimiter::AdaptiveLimiter(const AdaptiveLimiterOptions& options)
    : options_(options), limit_(options.max_limit) {
  CONTENDER_CHECK(options_.min_limit >= 1)
      << "AdaptiveLimiter: min_limit must be >= 1";
  CONTENDER_CHECK(options_.max_limit >= options_.min_limit)
      << "AdaptiveLimiter: max_limit must be >= min_limit";
  CONTENDER_CHECK(options_.ewma_alpha > 0.0 && options_.ewma_alpha <= 1.0)
      << "AdaptiveLimiter: ewma_alpha must be in (0, 1]";
  CONTENDER_CHECK(options_.overload_ratio > 1.0)
      << "AdaptiveLimiter: overload_ratio must be > 1";
  CONTENDER_CHECK(options_.decrease_factor > 0.0 &&
                  options_.decrease_factor < 1.0)
      << "AdaptiveLimiter: decrease_factor must be in (0, 1)";
  CONTENDER_CHECK(options_.increase_period >= 1)
      << "AdaptiveLimiter: increase_period must be >= 1";
  CONTENDER_CHECK(options_.decrease_cooldown >= 1)
      << "AdaptiveLimiter: decrease_cooldown must be >= 1";
}

void AdaptiveLimiter::OnCompletion(units::Seconds predicted,
                                   units::Seconds observed) {
  if (predicted <= units::Seconds(0.0)) return;
  ++completions_;
  const double ratio = observed.value() / predicted.value();
  ratio_ewma_ = options_.ewma_alpha * ratio +
                (1.0 - options_.ewma_alpha) * ratio_ewma_;
  if (ratio_ewma_ > options_.overload_ratio) {
    healthy_streak_ = 0;
    const bool cooled =
        !ever_decreased_ ||
        completions_ - last_decrease_completion_ >=
            static_cast<uint64_t>(options_.decrease_cooldown);
    if (cooled && limit_ > options_.min_limit) {
      limit_ = std::max(
          options_.min_limit,
          static_cast<int>(std::floor(limit_ * options_.decrease_factor)));
      last_decrease_completion_ = completions_;
      ever_decreased_ = true;
      ++decreases_;
    }
    return;
  }
  if (++healthy_streak_ >= options_.increase_period) {
    healthy_streak_ = 0;
    if (limit_ < options_.max_limit) {
      ++limit_;
      ++increases_;
    }
  }
}

}  // namespace contender::overload

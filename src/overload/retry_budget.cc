#include "overload/retry_budget.h"

#include <algorithm>

#include "util/logging.h"

namespace contender::overload {

RetryBudget::RetryBudget(const RetryBudgetOptions& options)
    : options_(options) {
  CONTENDER_CHECK(options_.deposit_per_attempt >= 0.0)
      << "RetryBudget: deposit_per_attempt must be >= 0";
  CONTENDER_CHECK(options_.withdraw_per_retry > 0.0)
      << "RetryBudget: withdraw_per_retry must be positive";
  CONTENDER_CHECK(options_.initial_balance >= 0.0)
      << "RetryBudget: initial_balance must be >= 0";
  CONTENDER_CHECK(options_.max_balance >= options_.initial_balance)
      << "RetryBudget: max_balance must be >= initial_balance";
}

void RetryBudget::RecordAttempt(int key) {
  MutexLock lock(&mutex_);
  auto [it, inserted] = balances_.try_emplace(key, options_.initial_balance);
  it->second =
      std::min(options_.max_balance, it->second + options_.deposit_per_attempt);
}

bool RetryBudget::TryWithdraw(int key) {
  MutexLock lock(&mutex_);
  auto [it, inserted] = balances_.try_emplace(key, options_.initial_balance);
  if (it->second < options_.withdraw_per_retry) {
    ++denials_;
    return false;
  }
  it->second -= options_.withdraw_per_retry;
  ++withdrawals_;
  return true;
}

double RetryBudget::balance(int key) const {
  MutexLock lock(&mutex_);
  auto it = balances_.find(key);
  return it == balances_.end() ? options_.initial_balance : it->second;
}

uint64_t RetryBudget::withdrawals() const {
  MutexLock lock(&mutex_);
  return withdrawals_;
}

uint64_t RetryBudget::denials() const {
  MutexLock lock(&mutex_);
  return denials_;
}

Status RetryWithBudget(RetryBudget* budget, int key,
                       const RetryOptions& options, uint64_t jitter_seed,
                       Clock* clock, const std::function<Status()>& attempt) {
  if (budget == nullptr) {
    return RetryWithBackoff(options, jitter_seed, clock, attempt);
  }
  budget->RecordAttempt(key);
  int calls = 0;
  // The loop, deadline, and jitter all stay in util/retry; this wrapper
  // pre-pays each retry at failure time: when an attempt fails with a
  // retryable code and another attempt would follow, the token is
  // withdrawn right here — so a dry bucket converts the failure into the
  // non-retryable kResourceExhausted and RetryWithBackoff stops before
  // scheduling any backoff sleep.
  return RetryWithBackoff(options, jitter_seed, clock, [&]() -> Status {
    ++calls;
    Status status = attempt();
    if (status.ok() || !IsRetryableStatusCode(status.code())) return status;
    // The loop is out of attempts: no retry follows, nothing to pay for.
    if (calls >= options.max_attempts) return status;
    if (!budget->TryWithdraw(key)) {
      return Status::ResourceExhausted(
          "retry budget exhausted for key " + std::to_string(key));
    }
    return status;
  });
}

}  // namespace contender::overload

// The router-door admission controller: one Decide() per arriving
// request, composing every door-side overload signal in a fixed
// precedence order and stamping each drop with its ShedReason.
//
// Precedence (first match wins):
//   1. chaos       — the seeded "overload.door.shed" fail point, so chaos
//                    replay can exercise shed paths deterministically;
//   2. quota       — the tenant's static admission quota (a hard limit,
//                    applied even with the controller disabled and even
//                    to critical work);
//   3. memory      — predicted outstanding working-set bytes would blow
//                    the node memory budget on every healthy node (also
//                    a hard limit — admitting past it buys a spill
//                    cascade, not throughput);
//   4. recovery    — the metastability detector is draining queues;
//                    sheds everything below kCritical;
//   5. brownout    — the criticality ladder's floor excludes this tier;
//   6. queue-delay — CoDel on the best predicted wait across nodes;
//                    kCritical work is exempt.
//
// Signals (metastability, brownout) observe every decision exactly once
// before the precedence walk, so the controller state trajectory is a
// pure function of the decision sequence — the two-pass fleet design
// routes sequentially, which makes the whole door bit-reproducible at
// any thread count.

#ifndef CONTENDER_OVERLOAD_DOOR_CONTROL_H_
#define CONTENDER_OVERLOAD_DOOR_CONTROL_H_

#include <cstdint>
#include <map>
#include <optional>

#include "overload/brownout.h"
#include "overload/codel.h"
#include "overload/metastability.h"
#include "overload/shed_reason.h"
#include "util/status.h"
#include "util/units.h"

namespace contender::overload {

struct DoorOptions {
  /// Master switch for the adaptive signals (codel/brownout/recovery/
  /// memory). Quota and chaos are always live: quota is the legacy
  /// static limit, chaos only fires when armed.
  bool enabled = false;
  CoDelOptions codel;
  BrownoutOptions brownout;
  MetastabilityOptions metastability;
  /// Per-node budget for predicted outstanding working-set bytes;
  /// <= 0 disables the memory signal.
  units::Bytes node_memory_budget{0.0};
};

/// Everything the router knows at one door decision.
struct DoorSample {
  /// Arrival time of the candidate (simulated).
  units::Seconds now{0.0};
  /// Best predicted wait across healthy nodes — the door's queue-delay
  /// signal.
  units::Seconds queue_delay{0.0};
  Criticality criticality = Criticality::kStandard;
  /// Router-computed: the tenant's admission quota is full.
  bool quota_exceeded = false;
  /// Router-computed: no healthy node has memory headroom for the
  /// candidate's predicted working set.
  bool memory_exceeded = false;
  /// Router's cumulative predicted completions (the goodput proxy the
  /// metastability detector tracks).
  uint64_t predicted_completions = 0;
};

struct DoorStats {
  uint64_t decisions = 0;
  uint64_t admitted = 0;
  uint64_t shed = 0;
  std::map<ShedReason, uint64_t> shed_by_reason;
  /// Sheds issued while the metastability detector was in recovery
  /// (stamped kQueueDelay in shed_by_reason; this separates them).
  uint64_t recovery_sheds = 0;
  uint64_t recovery_entries = 0;
  uint64_t brownout_escalations = 0;
  uint64_t brownout_deescalations = 0;
  /// Sheds injected by the "overload.door.shed" chaos fail point.
  uint64_t chaos_sheds = 0;
};

class DoorController {
 public:
  explicit DoorController(const DoorOptions& options);

  /// Decides one arrival: nullopt admits, otherwise the stamped reason.
  std::optional<ShedReason> Decide(const DoorSample& sample);

  [[nodiscard]] const DoorStats& stats() const;
  [[nodiscard]] bool in_recovery() const {
    return metastability_.in_recovery();
  }
  [[nodiscard]] Criticality brownout_floor() const {
    return brownout_.floor();
  }

  /// The canonical Status for a shed: kResourceExhausted for the hard
  /// limits (quota, memory, retry-budget — retrying cannot help),
  /// kUnavailable for the transient load sheds (retry later may).
  static Status ShedStatus(ShedReason reason);

 private:
  const DoorOptions options_;
  CoDelController codel_;
  BrownoutLadder brownout_;
  MetastabilityDetector metastability_;
  DoorStats stats_;
};

}  // namespace contender::overload

#endif  // CONTENDER_OVERLOAD_DOOR_CONTROL_H_

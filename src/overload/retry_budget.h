// Per-key retry budgets (Finagle-style token buckets) that cap how much
// retry traffic any tenant may add on top of its first-attempt traffic.
//
// Every first attempt deposits `deposit_per_attempt` tokens; every retry
// withdraws `withdraw_per_retry`. With the defaults (1 in, 10 out) a
// tenant can sustain ~10% retry amplification — enough to ride out
// isolated chaos-injected failures — but a correlated failure burst
// drains the bucket and further retries are denied outright. That denial
// is what turns a would-be retry storm into a bounded, stamped
// kRetryBudget shed instead of offered-load amplification (the classic
// metastable-failure sustaining effect).
//
// RetryWithBudget is the integration point: it keeps util/retry's
// RetryWithBackoff loop, deadline, and seeded jitter, but consults the
// budget before every retry and converts a dry bucket into a terminal
// kResourceExhausted — which RetryWithBackoff treats as non-retryable, so
// the caller stops immediately without sleeping.

#ifndef CONTENDER_OVERLOAD_RETRY_BUDGET_H_
#define CONTENDER_OVERLOAD_RETRY_BUDGET_H_

#include <cstdint>
#include <functional>
#include <map>

#include "util/mutex.h"
#include "util/retry.h"
#include "util/status.h"
#include "util/thread_annotations.h"

namespace contender::overload {

struct RetryBudgetOptions {
  /// Tokens deposited by each first attempt.
  double deposit_per_attempt = 1.0;
  /// Tokens a single retry costs.
  double withdraw_per_retry = 10.0;
  /// Starting balance of a fresh bucket (lets cold tenants retry at all).
  double initial_balance = 20.0;
  /// Balance cap, so long quiet periods cannot bank unlimited retries.
  double max_balance = 200.0;
};

/// Thread-safe map of token buckets, one per integer key (tenant id,
/// controller id...). Deterministic: balances are a pure function of the
/// RecordAttempt/TryWithdraw call sequence.
class RetryBudget {
 public:
  explicit RetryBudget(const RetryBudgetOptions& options = {});

  /// Credits `key` for one first attempt.
  void RecordAttempt(int key);

  /// Debits one retry if `key` has the tokens; returns false (and counts
  /// a denial) when the bucket is dry.
  [[nodiscard]] bool TryWithdraw(int key);

  [[nodiscard]] double balance(int key) const;
  [[nodiscard]] uint64_t withdrawals() const;
  [[nodiscard]] uint64_t denials() const;

 private:
  const RetryBudgetOptions options_;
  mutable Mutex mutex_;
  std::map<int, double> balances_ GUARDED_BY(mutex_);
  uint64_t withdrawals_ GUARDED_BY(mutex_) = 0;
  uint64_t denials_ GUARDED_BY(mutex_) = 0;
};

/// RetryWithBackoff with `budget` gating every retry for `key`. The
/// first attempt is always allowed (and deposits into the budget); each
/// retry is pre-paid at the preceding failure, so a dry bucket converts
/// that failure into kResourceExhausted naming the retry budget —
/// non-retryable, which stops the backoff loop before it sleeps at all.
/// A null `budget` degrades to plain RetryWithBackoff.
Status RetryWithBudget(RetryBudget* budget, int key,
                       const RetryOptions& options, uint64_t jitter_seed,
                       Clock* clock, const std::function<Status()>& attempt);

}  // namespace contender::overload

#endif  // CONTENDER_OVERLOAD_RETRY_BUDGET_H_

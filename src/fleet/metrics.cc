#include "fleet/metrics.h"

#include <algorithm>
#include <cmath>

#include "util/summary_stats.h"

namespace contender::fleet {

FleetMetrics ComputeFleetMetrics(const FleetResult& result) {
  FleetMetrics m;
  m.requests = result.outcomes.size();
  m.makespan = result.makespan;
  m.failovers = result.router.failovers;
  m.degraded_routes = result.router.degraded_routes;
  m.drains = result.router.drains.size();

  SampleStats response;
  SampleStats queue_wait;
  double error_sum = 0.0;
  size_t error_count = 0;

  for (const FleetQueryOutcome& out : result.outcomes) {
    ++m.offered;
    ++m.offered_by_tenant[out.request.tenant_id];
    if (out.rejected) {
      ++m.rejected;
      ++m.rejected_by_tenant[out.request.tenant_id];
      ++m.shed_by_reason[out.shed_reason];
      ++m.shed_by_tenant[out.request.tenant_id][out.shed_reason];
      continue;
    }
    ++m.admitted;
    if (out.shed) {
      ++m.node_sheds;
      ++m.shed_by_reason[out.shed_reason];
      ++m.shed_by_tenant[out.request.tenant_id][out.shed_reason];
      continue;
    }
    if (!out.completed) continue;
    ++m.completed;
    response.Add(out.response_time.value());
    queue_wait.Add(out.queue_wait.value());
    const bool has_deadline = out.request.deadline.has_value();
    if (has_deadline) {
      ++m.deadline_requests;
      if (out.missed_deadline) ++m.deadline_misses;
    }
    if (!has_deadline || !out.missed_deadline) ++m.good_completions;
    m.per_tenant[out.request.tenant_id].Add(out.queue_wait,
                                            out.response_time, has_deadline,
                                            out.missed_deadline);
    if (out.execution_latency.value() > 0.0) {
      error_sum += std::abs(out.predicted_latency.value() -
                            out.execution_latency.value()) /
                   out.execution_latency.value();
      ++error_count;
    }
  }

  if (!response.empty()) {
    m.mean_response = units::Seconds(response.mean());
    m.p50_response = units::Seconds(response.p50());
    m.p95_response = units::Seconds(response.p95());
    m.p99_response = units::Seconds(response.p99());
    m.mean_queue_wait = units::Seconds(queue_wait.mean());
    m.max_queue_wait = units::Seconds(queue_wait.max());
  }
  if (m.deadline_requests > 0) {
    m.sla_miss_rate = static_cast<double>(m.deadline_misses) /
                      static_cast<double>(m.deadline_requests);
  }
  if (error_count > 0) {
    m.mean_prediction_error = error_sum / static_cast<double>(error_count);
  }
  m.shed_total = m.rejected + m.node_sheds;
  if (m.makespan.value() > 0.0) {
    m.goodput_per_s =
        static_cast<double>(m.good_completions) / m.makespan.value();
  }

  // Blame rollups. Each QueryBlame is exactly conservative (self + shares
  // == excess), so summing ledgers preserves conservation globally.
  for (const QueryBlame& blame : result.blame) {
    m.total_excess_s += blame.excess.value();
    m.total_self_blame_s += blame.self_blame.value();
    TenantBlameTotals& victim = m.blame_by_tenant[blame.tenant_id];
    victim.self_s += blame.self_blame.value();
    for (const BlameShare& share : blame.shares) {
      victim.received_s += share.seconds.value();
      m.blame_by_tenant[share.culprit_tenant].inflicted_s +=
          share.seconds.value();
      m.tenant_blame_matrix_s[{blame.tenant_id, share.culprit_tenant}] +=
          share.seconds.value();
      m.blame_by_template_s[share.culprit_template] +=
          share.seconds.value();
    }
  }
  return m;
}

}  // namespace contender::fleet

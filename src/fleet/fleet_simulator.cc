#include "fleet/fleet_simulator.h"

#include <algorithm>
#include <future>
#include <utility>

#include "util/logging.h"
#include "util/random.h"
#include "util/status.h"
#include "util/thread_pool.h"

namespace contender::fleet {

namespace {

/// Everything one node's execution task produces. Blame and the summary
/// are computed inside the task (against the node's own oracle) so the
/// assembly loop only concatenates.
struct NodeRun {
  NodeResult result;
  std::vector<QueryBlame> blame;
  FleetNodeSummary summary;
};

Status ValidateOptions(const FleetOptions& options) {
  if (options.num_nodes < 1) {
    return Status::InvalidArgument("FleetOptions: num_nodes must be >= 1");
  }
  if (options.target_mpl < 1) {
    return Status::InvalidArgument("FleetOptions: target_mpl must be >= 1");
  }
  if (options.threads < 0) {
    return Status::InvalidArgument("FleetOptions: threads must be >= 0");
  }
  for (const ScheduledDrain& drain : options.drains) {
    if (drain.node < 0 || drain.node >= options.num_nodes) {
      return Status::InvalidArgument(
          "FleetOptions: drain names an unknown node");
    }
    if (drain.time.value() < 0.0) {
      return Status::InvalidArgument(
          "FleetOptions: drain time must be non-negative");
    }
  }
  return Status::OK();
}

}  // namespace

FleetSimulator::FleetSimulator(const Workload* workload,
                               const sim::SimConfig& config,
                               const ContenderPredictor* predictor,
                               const sched::TemplateHealth* health)
    : workload_(workload),
      config_(config),
      predictor_(predictor),
      health_(health) {
  CONTENDER_CHECK(workload_ != nullptr);
  CONTENDER_CHECK(predictor_ != nullptr);
}

StatusOr<FleetResult> FleetSimulator::Run(const Population& population,
                                          const FleetOptions& options) const {
  CONTENDER_RETURN_IF_ERROR(ValidateOptions(options));

  // ---- Routing pass (sequential): fix every placement. ----------------
  sched::MixOracle::Options routing_oracle_options = options.oracle_options;
  routing_oracle_options.health = health_;
  sched::MixOracle routing_oracle(predictor_, routing_oracle_options);

  RouterOptions router_options;
  router_options.num_nodes = options.num_nodes;
  router_options.target_mpl = options.target_mpl;
  router_options.policy = options.policy;
  router_options.tenant_quota = options.tenant_quota;
  router_options.door = options.door;
  Router router(&routing_oracle, router_options);

  // Explicit drains interleave with the arrival scan by time (stable on
  // node id for simultaneous drains).
  std::vector<ScheduledDrain> drains = options.drains;
  std::stable_sort(drains.begin(), drains.end(),
                   [](const ScheduledDrain& a, const ScheduledDrain& b) {
                     return a.time < b.time;
                   });
  size_t next_drain = 0;
  for (const sched::Request& request : population.requests) {
    while (next_drain < drains.size() &&
           !(request.arrival_time < drains[next_drain].time)) {
      CONTENDER_RETURN_IF_ERROR(router.BeginDrain(
          drains[next_drain].node, drains[next_drain].time));
      ++next_drain;
    }
    CONTENDER_RETURN_IF_ERROR(router.Route(request).status());
  }
  // Drains past the last arrival still fail the predicted backlog over.
  for (; next_drain < drains.size(); ++next_drain) {
    CONTENDER_RETURN_IF_ERROR(
        router.BeginDrain(drains[next_drain].node, drains[next_drain].time));
  }

  const std::vector<Assignment>& assignments = router.assignments();
  CONTENDER_CHECK(assignments.size() == population.requests.size());

  // Per-node sub-streams: fleet-wide ids, effective arrivals. The node
  // itself remaps to dense local ids.
  std::vector<std::vector<sched::Request>> per_node(
      static_cast<size_t>(options.num_nodes));
  for (size_t id = 0; id < assignments.size(); ++id) {
    const Assignment& assignment = assignments[id];
    if (assignment.rejected) continue;
    sched::Request request = population.requests[id];
    request.arrival_time = assignment.effective_arrival;
    // Deadlines stay absolute: a failed-over request does not get SLA
    // credit for the time it spent stranded on the drained node.
    per_node[static_cast<size_t>(assignment.node)].push_back(request);
  }

  // ---- Execution pass (parallel): realize each node's sub-stream. -----
  // Seeds are drawn in node-id order before any task is submitted, and
  // results land in node-index slots, so the output is bit-identical at
  // every thread count.
  Rng root(options.seed);
  std::vector<uint64_t> node_seeds;
  node_seeds.reserve(static_cast<size_t>(options.num_nodes));
  for (int i = 0; i < options.num_nodes; ++i) {
    node_seeds.push_back(root.Next());
  }

  const int threads =
      options.threads > 0 ? options.threads : ThreadPool::DefaultThreads();
  ThreadPool pool(threads);
  std::vector<std::future<StatusOr<NodeRun>>> futures;
  futures.reserve(static_cast<size_t>(options.num_nodes));
  for (int i = 0; i < options.num_nodes; ++i) {
    futures.push_back(pool.Submit(
        [this, i, &per_node, &node_seeds, &options]() -> StatusOr<NodeRun> {
          NodeOptions node_options;
          node_options.node_id = i;
          node_options.target_mpl = options.target_mpl;
          node_options.policy = options.node_policy;
          node_options.seed = node_seeds[static_cast<size_t>(i)];
          node_options.oracle_options = options.oracle_options;
          node_options.overload = options.node_overload;
          Node node(workload_, config_, predictor_, node_options, health_);
          NodeRun run;
          CONTENDER_ASSIGN_OR_RETURN(
              run.result, node.Run(per_node[static_cast<size_t>(i)]));
          run.blame = ComputeNodeBlame(run.result, node.oracle());
          run.summary.node_id = i;
          run.summary.requests = run.result.schedule.outcomes.size();
          run.summary.makespan = run.result.schedule.makespan;
          run.summary.oracle_hits = node.oracle().hits();
          run.summary.oracle_misses = node.oracle().misses();
          run.summary.oracle_degradations = node.oracle().degradations();
          run.summary.queue_sheds = run.result.schedule.queue_sheds;
          run.summary.final_admission_limit =
              run.result.schedule.final_admission_limit;
          run.summary.limit_decreases = run.result.schedule.limit_decreases;
          return run;
        }));
  }

  // ---- Assembly (sequential, node order). ------------------------------
  FleetResult fleet;
  fleet.router = router.stats();
  fleet.door = router.door_stats();
  fleet.outcomes.resize(population.requests.size());
  for (size_t id = 0; id < population.requests.size(); ++id) {
    FleetQueryOutcome& out = fleet.outcomes[id];
    out.request = population.requests[id];
    out.node = assignments[id].node;
    out.rejected = assignments[id].rejected;
    out.shed_reason = assignments[id].shed_reason;
    out.failed_over = assignments[id].failed_over;
    out.degraded_route = assignments[id].degraded;
  }

  fleet.nodes.reserve(futures.size());
  for (std::future<StatusOr<NodeRun>>& future : futures) {
    NodeRun run;
    CONTENDER_ASSIGN_OR_RETURN(run, future.get());
    for (size_t local = 0; local < run.result.schedule.outcomes.size();
         ++local) {
      const sched::RequestOutcome& outcome =
          run.result.schedule.outcomes[local];
      const int id = run.result.global_ids[local];
      FleetQueryOutcome& out = fleet.outcomes[static_cast<size_t>(id)];
      CONTENDER_CHECK(!out.rejected && !out.completed && !out.shed);
      if (outcome.shed) {
        out.shed = true;
        out.shed_reason = outcome.shed_reason;
        out.queue_wait = outcome.queue_wait;
        continue;
      }
      out.completed = outcome.completed;
      out.admit_time = outcome.admit_time;
      out.execution_latency = outcome.execution_latency;
      out.completion_time = outcome.completion_time;
      out.predicted_latency = outcome.predicted_latency;
      out.missed_deadline = outcome.missed_deadline;
      // Fleet-level clocks run from the *original* arrival, so failover
      // stranding shows up as queue wait and response time.
      out.queue_wait = outcome.admit_time - out.request.arrival_time;
      out.response_time = outcome.completion_time - out.request.arrival_time;
    }
    if (run.result.schedule.makespan.value() > fleet.makespan.value()) {
      fleet.makespan = run.result.schedule.makespan;
    }
    fleet.blame.insert(fleet.blame.end(), run.blame.begin(), run.blame.end());
    fleet.nodes.push_back(run.summary);
  }

  // Every routed request must have been realized (or deliberately shed,
  // with a stamped reason) by exactly one node.
  for (const FleetQueryOutcome& out : fleet.outcomes) {
    CONTENDER_CHECK(out.rejected || out.completed || out.shed);
  }
  std::sort(fleet.blame.begin(), fleet.blame.end(),
            [](const QueryBlame& a, const QueryBlame& b) {
              return a.request_id < b.request_id;
            });
  return fleet;
}

}  // namespace contender::fleet

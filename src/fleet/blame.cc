#include "fleet/blame.h"

#include <algorithm>

namespace contender::fleet {

namespace {

/// Shared wall-clock of two execution intervals [admit, completion].
double Overlap(const sched::RequestOutcome& a,
               const sched::RequestOutcome& b) {
  const double lo =
      std::max(a.admit_time.value(), b.admit_time.value());
  const double hi =
      std::min(a.completion_time.value(), b.completion_time.value());
  return std::max(0.0, hi - lo);
}

}  // namespace

std::vector<QueryBlame> ComputeNodeBlame(const NodeResult& node,
                                         const sched::MixOracle& oracle) {
  const std::vector<sched::RequestOutcome>& outcomes =
      node.schedule.outcomes;
  std::vector<QueryBlame> blames;
  blames.reserve(outcomes.size());

  for (size_t i = 0; i < outcomes.size(); ++i) {
    const sched::RequestOutcome& victim = outcomes[i];
    QueryBlame blame;
    blame.request_id = node.global_ids[i];
    blame.tenant_id = victim.request.tenant_id;
    blame.template_index = victim.request.template_index;
    blame.isolated_latency =
        oracle.IsolatedLatency(victim.request.template_index);
    blame.execution_latency = victim.execution_latency;
    blame.excess = units::Seconds(
        std::max(0.0, (victim.execution_latency -
                       blame.isolated_latency).value()));

    // Co-residency scan: every other outcome whose execution interval
    // overlaps the victim's. Local ids are dense, so index order == id
    // order == deterministic share order (by culprit fleet id after the
    // node's sort, which preserves arrival order).
    struct Candidate {
      size_t index;
      double overlap;
      double weight;
    };
    std::vector<Candidate> candidates;
    double weighted_sum = 0.0;
    double overlap_sum = 0.0;
    for (size_t j = 0; j < outcomes.size(); ++j) {
      if (j == i) continue;
      const double overlap = Overlap(victim, outcomes[j]);
      if (overlap <= 0.0) continue;
      // Pairwise antagonism: how much a mix of exactly this co-runner is
      // predicted to slow the victim. One oracle probe per (victim tmpl,
      // culprit tmpl) pair — memoized, so the scan is cache-hits after
      // the first occurrence of each pair.
      const double antagonism =
          std::max(0.0,
                   (oracle.PredictInMix(
                        victim.request.template_index,
                        {outcomes[j].request.template_index}) -
                    blame.isolated_latency)
                       .value());
      candidates.push_back({j, overlap, overlap * antagonism});
      weighted_sum += overlap * antagonism;
      overlap_sum += overlap;
    }

    double attributed = 0.0;
    if (!candidates.empty() && blame.excess.value() > 0.0) {
      // Normalized split: antagonism-weighted when the predictor sees any
      // pairwise contention, pure overlap proportions otherwise.
      const bool use_weights = weighted_sum > 0.0;
      const double denom = use_weights ? weighted_sum : overlap_sum;
      for (const Candidate& c : candidates) {
        const double mass = use_weights ? c.weight : c.overlap;
        const double share = blame.excess.value() * (mass / denom);
        if (share <= 0.0) continue;
        const sched::RequestOutcome& culprit = outcomes[c.index];
        BlameShare s;
        s.culprit_request = node.global_ids[c.index];
        s.culprit_tenant = culprit.request.tenant_id;
        s.culprit_template = culprit.request.template_index;
        s.seconds = units::Seconds(share);
        blame.shares.push_back(s);
        attributed += share;
      }
    }
    // The float residue of the normalized split (and the whole excess
    // when nothing overlapped) stays with the query itself, keeping the
    // decomposition exactly conservative.
    blame.self_blame = units::Seconds(blame.excess.value() - attributed);
    blames.push_back(std::move(blame));
  }
  return blames;
}

}  // namespace contender::fleet

#include "fleet/node.h"

#include <algorithm>
#include <utility>

namespace contender::fleet {

Node::Node(const Workload* workload, const sim::SimConfig& config,
           const ContenderPredictor* predictor, const NodeOptions& options,
           const sched::TemplateHealth* health)
    : options_(options), simulator_(workload, config) {
  sched::MixOracle::Options oracle_options = options.oracle_options;
  oracle_options.health = health;
  oracle_ =
      std::make_unique<sched::MixOracle>(predictor, oracle_options);
  policy_ = sched::MakePolicy(options.policy);
}

StatusOr<NodeResult> Node::Run(
    const std::vector<sched::Request>& assigned) {
  NodeResult result;
  result.node_id = options_.node_id;

  // Dense local ids in (effective arrival, fleet id) order: the executed
  // stream is a pure function of the placement, independent of the order
  // the fleet layer accumulated assignments in.
  std::vector<sched::Request> local = assigned;
  std::stable_sort(local.begin(), local.end(),
                   [](const sched::Request& a, const sched::Request& b) {
                     if (a.arrival_time != b.arrival_time) {
                       return a.arrival_time < b.arrival_time;
                     }
                     return a.request_id < b.request_id;
                   });
  result.global_ids.reserve(local.size());
  for (size_t i = 0; i < local.size(); ++i) {
    result.global_ids.push_back(local[i].request_id);
    local[i].request_id = static_cast<int>(i);
  }

  sched::ScheduleOptions schedule_options;
  schedule_options.target_mpl = options_.target_mpl;
  schedule_options.seed = options_.seed;
  schedule_options.overload = options_.overload;
  CONTENDER_ASSIGN_OR_RETURN(
      result.schedule,
      simulator_.Run(local, policy_.get(), oracle_.get(),
                     schedule_options));
  return result;
}

}  // namespace contender::fleet

// One simulated machine of the fleet: a sched::ScheduleSimulator (which
// drives a private sim::Engine) plus the node's own MixOracle memo and MPL
// budget. Nodes are independent once the router has fixed placements — no
// shared mutable state — so the fleet's execution pass runs them on a
// thread pool with bit-identical results at any thread count (seeds are
// pre-derived per node, results land in node-index slots).

#ifndef CONTENDER_FLEET_NODE_H_
#define CONTENDER_FLEET_NODE_H_

#include <memory>
#include <vector>

#include "sched/metrics.h"
#include "sched/mix_oracle.h"
#include "sched/policy.h"
#include "sched/simulator.h"
#include "sim/config.h"
#include "util/statusor.h"
#include "workload/workload.h"

namespace contender::fleet {

struct NodeOptions {
  int node_id = 0;
  /// The node's MPL budget (slots held by its admission loop).
  int target_mpl = 3;
  /// Local admission policy the node runs over its own queue.
  sched::PolicyKind policy = sched::PolicyKind::kGreedyContention;
  /// Seeds the node's query-instance draws and engine (pre-derived by the
  /// fleet simulator from the root seed, in node-id order).
  uint64_t seed = 42;
  /// The node's private prediction memo.
  sched::MixOracle::Options oracle_options;
  /// Node-level overload control forwarded into the schedule loop
  /// (adaptive AIMD limiter + queue-head CoDel). Off by default.
  overload::NodeOverloadOptions overload;
};

/// The realized execution of one node's assigned sub-stream.
struct NodeResult {
  int node_id = 0;
  /// Outcomes indexed by node-local id; requests inside carry local ids.
  sched::ScheduleResult schedule;
  /// Node-local id -> fleet-wide request id.
  std::vector<int> global_ids;
};

class Node {
 public:
  /// `workload` and `predictor` must outlive the node; the node builds its
  /// own MixOracle over the shared immutable predictor (optionally wired
  /// to the shared `health` breaker bank for the degradation ladder).
  Node(const Workload* workload, const sim::SimConfig& config,
       const ContenderPredictor* predictor, const NodeOptions& options,
       const sched::TemplateHealth* health = nullptr);

  /// Executes `assigned` (fleet-wide ids, any order; arrival times are the
  /// router's effective arrivals) to completion under the node's policy
  /// and MPL. Requests are remapped to dense node-local ids in
  /// (arrival, fleet id) order; NodeResult::global_ids maps back.
  StatusOr<NodeResult> Run(const std::vector<sched::Request>& assigned);

  [[nodiscard]] const sched::MixOracle& oracle() const { return *oracle_; }
  [[nodiscard]] const NodeOptions& options() const { return options_; }

 private:
  const NodeOptions options_;
  sched::ScheduleSimulator simulator_;
  std::unique_ptr<sched::MixOracle> oracle_;
  std::unique_ptr<sched::Policy> policy_;
};

}  // namespace contender::fleet

#endif  // CONTENDER_FLEET_NODE_H_

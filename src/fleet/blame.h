// Per-query contention-blame attribution, following Kalmegh et al.
// ("Analyzing Query Performance and Attributing Blame for Contentions in
// a Cluster Computing Framework", PAPERS.md), adapted to Contender's
// latency continuum.
//
// A query's contention cost is its realized excess over the measured
// isolated latency: excess(q) = max(0, L_exec(q) - L_iso(q)). That excess
// is decomposed across the queries co-resident with q on its node —
// Kalmegh et al.'s "blame the co-runners for the waits they induced" —
// with each co-runner r weighted by
//
//     overlap(q, r) * antagonism(q, r)
//
// where overlap is the shared wall-clock of their execution intervals
// and antagonism is the predictor's own pairwise contention estimate
// L(q | {r}) - L_iso(q) (how much a mix of exactly r is predicted to
// slow q). Weights are normalized so the shares sum to excess(q) exactly
// (up to float residue, folded into self_blame): when every pairwise
// prediction is zero the split degrades to pure overlap proportions, and
// a query with no co-residency keeps its whole excess as self blame (the
// queue blamed nobody — e.g. cold-cache variance the predictor priced
// in). This makes the mix scores actionable: aggregated per tenant the
// shares say who slowed whom down by how many seconds, the
// tenant-accountability signal FleetMetrics reports.

#ifndef CONTENDER_FLEET_BLAME_H_
#define CONTENDER_FLEET_BLAME_H_

#include <vector>

#include "fleet/node.h"
#include "sched/mix_oracle.h"
#include "util/units.h"

namespace contender::fleet {

/// One co-runner's attributed share of a query's slowdown.
struct BlameShare {
  /// Fleet-wide id of the co-runner blamed.
  int culprit_request = -1;
  int culprit_tenant = 0;
  int culprit_template = -1;
  /// Seconds of the victim's excess attributed to this co-runner.
  units::Seconds seconds;
};

/// The full decomposition of one query's slowdown.
struct QueryBlame {
  /// Fleet-wide id of the slowed-down (victim) query.
  int request_id = -1;
  int tenant_id = 0;
  int template_index = -1;
  units::Seconds isolated_latency;
  units::Seconds execution_latency;
  /// max(0, execution - isolated): the attributed total.
  units::Seconds excess;
  /// Excess not attributable to any co-runner (no overlap, or the float
  /// residue of the normalized split). Invariant:
  /// self_blame + sum(shares) == excess.
  units::Seconds self_blame;
  std::vector<BlameShare> shares;
};

/// Attributes blame for every completed query of one node's realized
/// schedule. `oracle` supplies isolated latencies and the pairwise
/// antagonism weights (the node's own memo — identical answers to the
/// admission path's). Shares are ordered by culprit request id.
std::vector<QueryBlame> ComputeNodeBlame(const NodeResult& node,
                                         const sched::MixOracle& oracle);

}  // namespace contender::fleet

#endif  // CONTENDER_FLEET_BLAME_H_

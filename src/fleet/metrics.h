// Fleet-level quality metrics: latency/SLA aggregates over a FleetResult
// (reusing sched::TenantScheduleStats for the per-tenant percentiles, the
// same keyed accumulators ComputeScheduleMetrics fills per node) plus the
// blame rollups that make multi-tenancy accountable — who lost seconds to
// contention, who inflicted them, and along which (victim, culprit)
// tenant edges.

#ifndef CONTENDER_FLEET_METRICS_H_
#define CONTENDER_FLEET_METRICS_H_

#include <cstddef>
#include <map>
#include <utility>

#include "fleet/fleet_simulator.h"
#include "overload/door_control.h"
#include "sched/metrics.h"
#include "util/units.h"

namespace contender::fleet {

/// One tenant's blame ledger, in seconds of attributed slowdown.
struct TenantBlameTotals {
  /// Excess this tenant's queries suffered that was attributed to OTHER
  /// queries (any tenant, including its own co-located queries).
  double received_s = 0.0;
  /// Excess of other tenants' queries attributed to this tenant's queries.
  double inflicted_s = 0.0;
  /// Excess this tenant's queries kept as self blame (no co-residency, or
  /// split residue).
  double self_s = 0.0;
};

struct FleetMetrics {
  size_t requests = 0;
  size_t completed = 0;
  size_t rejected = 0;
  /// Requests shed by node-level overload control after admission.
  size_t node_sheds = 0;
  uint64_t failovers = 0;
  uint64_t degraded_routes = 0;
  size_t drains = 0;

  /// The conservation ledger (DESIGN.md §16). Offered = every population
  /// request; admitted = offered - door rejections; every admitted
  /// request either completes or is node-shed, so
  ///   offered == completed + shed_total  and
  ///   admitted == completed + node_sheds
  /// hold exactly (tested), fleet-wide and per tenant.
  size_t offered = 0;
  size_t admitted = 0;
  size_t shed_total = 0;
  /// Door + node sheds by stamped reason.
  std::map<overload::ShedReason, size_t> shed_by_reason;

  /// Last completion across all nodes.
  units::Seconds makespan;

  /// Fleet-level response time (original arrival -> completion) over
  /// completed requests.
  units::Seconds mean_response;
  units::Seconds p50_response;
  units::Seconds p95_response;
  units::Seconds p99_response;
  /// Fleet-level queue wait (original arrival -> admit).
  units::Seconds mean_queue_wait;
  units::Seconds max_queue_wait;

  /// Deadline accounting over completed requests (rejected requests never
  /// execute, so they are counted separately in `rejected`, not as SLA
  /// misses — admission control is a different failure than lateness).
  size_t deadline_requests = 0;
  size_t deadline_misses = 0;
  double sla_miss_rate = 0.0;

  /// Mean relative error of the admission-time in-mix predictions.
  double mean_prediction_error = 0.0;

  /// Completed requests that also met their deadline (or carried none) —
  /// the work the fleet actually delivered on time.
  size_t good_completions = 0;
  /// good_completions / makespan: the number the overload bench optimizes.
  double goodput_per_s = 0.0;

  /// Keyed by tenant id; exact percentiles via the retained-sample
  /// accumulators (identical machinery to the single-node per_tenant map).
  std::map<int, sched::TenantScheduleStats> per_tenant;
  std::map<int, size_t> rejected_by_tenant;
  /// The per-tenant conservation ledger: offered requests and every drop
  /// broken out by tenant and stamped ShedReason (door and node sheds
  /// combined). For each tenant, offered_by_tenant == completed +
  /// sum(shed_by_tenant[tenant]).
  std::map<int, size_t> offered_by_tenant;
  std::map<int, std::map<overload::ShedReason, size_t>> shed_by_tenant;

  /// Blame rollups. Conservation: for every tenant ledger, received + self
  /// sums (over all tenants) equal the total excess, and the matrix row
  /// sums reproduce `received_s` per victim.
  double total_excess_s = 0.0;
  double total_self_blame_s = 0.0;
  std::map<int, TenantBlameTotals> blame_by_tenant;
  /// (victim tenant, culprit tenant) -> attributed seconds.
  std::map<std::pair<int, int>, double> tenant_blame_matrix_s;
  /// Culprit template -> seconds of slowdown inflicted on others.
  std::map<int, double> blame_by_template_s;
};

/// Aggregates one fleet run. Pure function of the result.
FleetMetrics ComputeFleetMetrics(const FleetResult& result);

}  // namespace contender::fleet

#endif  // CONTENDER_FLEET_METRICS_H_

// Fleet-level placement: which node gets each arriving request.
//
// The router is the fleet's belief holder. It never sees ground-truth
// execution — it maintains a *predicted* per-node state machine (running
// mixes and FIFO backlogs advanced on predicted completions, the same
// L(c|M) estimates the single-node policies admit on) and routes against
// that belief, exactly as a real front-end routes on load reports rather
// than on the future. Placement decisions are therefore a pure function
// of (options, oracle, arrival stream, chaos seed) and bit-exactly
// reproducible; the execution pass later realizes each node's stream on
// the real sim::Engine.
//
// Policies:
//   kRoundRobin       cyclic over healthy nodes; the placement baseline.
//   kLeastLoaded      fewest outstanding (predicted running + backlog).
//   kContentionAware  minimize predicted wait + L(c|M)/L_iso slowdown of
//                     the candidate inside the node's predicted running
//                     mix. When the request's template (or a node's whole
//                     predicted mix) has an open circuit breaker, the
//                     score descends the PR 5 degradation ladder: the
//                     untrusted in-mix prediction is replaced by the
//                     measured isolated latency (tier 2), so routing
//                     degrades to least-predicted-wait instead of
//                     scheduling on garbage. Such decisions are counted in
//                     stats().degraded_routes.
//
// Drain/failover: BeginDrain (explicit, or fired by the seeded
// "fleet.node.drain" fail point — one evaluation per Route call, so chaos
// replays are bit-exact from the root seed alone) marks a node draining:
// it finishes its predicted-running queries but accepts nothing new, and
// every request still in its predicted backlog is immediately re-routed
// through the active policy among the remaining healthy nodes (counted in
// stats().failovers). The last healthy node can never drain.
//
// Tenancy: an optional per-tenant quota caps outstanding (predicted
// unfinished) requests fleet-wide; a request over quota is rejected at
// the door and never reaches a node.
//
// Thread-compat: a Router is externally synchronized by design — the
// routing pass is a sequential scan of the arrival stream (Route calls
// must have non-decreasing arrival times). All cross-thread work happens
// downstream in the execution pass, where nodes are independent.

#ifndef CONTENDER_FLEET_ROUTER_H_
#define CONTENDER_FLEET_ROUTER_H_

#include <cstdint>
#include <deque>
#include <map>
#include <string>
#include <vector>

#include "overload/door_control.h"
#include "sched/mix_oracle.h"
#include "sched/request.h"
#include "util/statusor.h"
#include "util/units.h"

namespace contender::fleet {

enum class RoutePolicy {
  kRoundRobin,
  kLeastLoaded,
  kContentionAware,
};

[[nodiscard]] const std::string& RoutePolicyName(RoutePolicy policy);
[[nodiscard]] const std::vector<RoutePolicy>& AllRoutePolicies();

struct RouterOptions {
  int num_nodes = 4;
  /// Per-node MPL budget the predicted state machines admit against
  /// (must match the MPL the execution pass runs nodes at).
  int target_mpl = 3;
  RoutePolicy policy = RoutePolicy::kContentionAware;
  /// Max outstanding (predicted unfinished) requests per tenant across
  /// the whole fleet; 0 = unlimited.
  int tenant_quota = 0;
  /// Door-side overload control (DESIGN.md §16): CoDel on predicted wait,
  /// the criticality brownout ladder, the metastability detector, and the
  /// predicted-working-set memory budget. Off by default; quota
  /// enforcement runs through the door either way so every rejection
  /// carries a ShedReason.
  overload::DoorOptions door;
};

/// Where one request ended up after the routing pass.
struct Assignment {
  /// Final node, or -1 when rejected.
  int node = -1;
  /// When the request became available on its final node: the original
  /// arrival, or the drain instant for failed-over requests.
  units::Seconds effective_arrival;
  bool rejected = false;
  /// Why the door shed it (meaningful only when `rejected`; every
  /// rejection is stamped — lint rule R10).
  overload::ShedReason shed_reason = overload::ShedReason::kQuota;
  /// True when a drain moved the request off its first node.
  bool failed_over = false;
  /// True when the placement score descended the degradation ladder.
  bool degraded = false;
};

/// One drain occurrence (explicit or chaos-fired).
struct DrainEvent {
  int node = -1;
  units::Seconds time;
  /// Backlog requests re-routed off the node by this drain.
  int failovers = 0;
};

struct RouterStats {
  uint64_t routed = 0;
  uint64_t rejected = 0;
  /// Door rejections broken out by stamped reason (sums to `rejected`).
  std::map<overload::ShedReason, uint64_t> rejected_by_reason;
  uint64_t failovers = 0;
  uint64_t degraded_routes = 0;
  std::vector<DrainEvent> drains;
};

class Router {
 public:
  /// `oracle` supplies predicted in-mix latencies (and the template-health
  /// signal for the degradation ladder) and must outlive the router.
  Router(const sched::MixOracle* oracle, const RouterOptions& options);

  /// Routes one request. Calls must be made in arrival order
  /// (non-decreasing arrival_time); each call first advances the predicted
  /// node states to the arrival instant, applies any chaos-fired drain,
  /// then places (or rejects) the request. Returns the chosen node, or -1
  /// for a quota rejection. The final placement (which a later drain may
  /// still change) is read back through assignments().
  StatusOr<int> Route(const sched::Request& request);

  /// Marks `node` draining as of `now` and fails its predicted backlog
  /// over to the remaining healthy nodes. No-op when already draining;
  /// InvalidArgument for an unknown node; FailedPrecondition when it
  /// would drain the last healthy node.
  Status BeginDrain(int node, units::Seconds now);

  [[nodiscard]] bool draining(int node) const;
  /// Outstanding (predicted running + backlog) on a node.
  [[nodiscard]] int Outstanding(int node) const;

  /// Final assignment per request id seen by Route (dense ids required).
  [[nodiscard]] const std::vector<Assignment>& assignments() const {
    return assignments_;
  }
  [[nodiscard]] const RouterStats& stats() const { return stats_; }
  [[nodiscard]] const RouterOptions& options() const { return options_; }
  /// The door controller's ledger (recovery entries, brownout rungs,
  /// chaos sheds...).
  [[nodiscard]] const overload::DoorStats& door_stats() const {
    return door_.stats();
  }
  [[nodiscard]] bool in_recovery() const { return door_.in_recovery(); }
  /// Predicted completions popped by Advance so far — the belief-side
  /// goodput proxy the metastability detector tracks.
  [[nodiscard]] uint64_t predicted_completions() const {
    return predicted_completions_;
  }

 private:
  /// One predicted-unfinished query on a node.
  struct PredictedQuery {
    units::Seconds completion;
    int template_index = -1;
    int tenant_id = 0;
    int request_id = -1;
  };

  /// The router's belief about one node.
  struct NodeState {
    std::vector<PredictedQuery> running;  // size <= target_mpl
    std::deque<sched::Request> backlog;   // FIFO, predicted-waiting
    bool draining = false;
  };

  /// Advances one node's predicted state to `now`: pops predicted
  /// completions and promotes backlog head(s) into freed slots.
  void Advance(NodeState* node, units::Seconds now);

  /// Places `request` on `node` at `now`: into a free slot (predicted
  /// completion = now + predicted in-mix latency) or the backlog.
  void Place(NodeState* node, const sched::Request& request,
             units::Seconds now);

  /// Predicted seconds until `node` can start one more request, given its
  /// current backlog depth (0 when a slot is free).
  [[nodiscard]] double PredictedWait(const NodeState& node,
                                     units::Seconds now) const;

  /// Healthy = not draining.
  [[nodiscard]] std::vector<int> HealthyNodes() const;

  /// The policy: picks among `candidates` (non-empty, healthy) for
  /// `request` at `now`; sets `*degraded` when the score descended the
  /// ladder.
  [[nodiscard]] int PickNode(const std::vector<int>& candidates,
                             const sched::Request& request,
                             units::Seconds now, bool* degraded);

  [[nodiscard]] int OutstandingForTenant(int tenant_id) const;

  /// Predicted outstanding working-set bytes on a node (running +
  /// backlog), from the profiles' LearnedWMP-style footprints.
  [[nodiscard]] units::Bytes PredictedNodeBytes(const NodeState& node) const;

  /// Best (smallest) predicted wait across `candidates` at `now` — the
  /// door's queue-delay signal.
  [[nodiscard]] units::Seconds BestPredictedWait(
      const std::vector<int>& candidates, units::Seconds now) const;

  const sched::MixOracle* const oracle_;
  const RouterOptions options_;
  std::vector<NodeState> nodes_;
  std::vector<Assignment> assignments_;
  RouterStats stats_;
  overload::DoorController door_;
  uint64_t predicted_completions_ = 0;
  /// Round-robin cursor (counts placements, not nodes, so draining nodes
  /// are skipped without skew).
  uint64_t round_robin_next_ = 0;
  /// Next chaos-drain victim (rotates over nodes).
  int next_chaos_drain_ = 0;
  /// Clock of the routing pass (Route enforces monotonicity against it).
  units::Seconds last_arrival_;
};

}  // namespace contender::fleet

#endif  // CONTENDER_FLEET_ROUTER_H_

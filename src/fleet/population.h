// Multi-tenant open-loop traffic generation for the fleet simulator.
//
// A ClientPopulation is a set of tenants, each an independent seeded
// Poisson source with its own arrival rate and template preference.
// Tenant rates follow a Zipf-like skew (tenant 0 heaviest), so one knob
// sweeps the population from uniform (skew 0) to one dominant tenant —
// the axis the BENCH_fleet grid explores. Every draw flows from per-tenant
// Rngs whose seeds are pre-derived from the root seed in tenant order, so
// the merged stream is a pure function of the options (the PR 1 / PR 3
// determinism idiom: derive all randomness before interleaving anything).

#ifndef CONTENDER_FLEET_POPULATION_H_
#define CONTENDER_FLEET_POPULATION_H_

#include <vector>

#include "overload/shed_reason.h"
#include "scenario/scenario.h"
#include "sched/request.h"
#include "util/statusor.h"
#include "util/units.h"

namespace contender::fleet {

/// One tenant of the population, with its derived traffic parameters.
struct TenantSpec {
  int tenant_id = 0;
  /// Fraction of the fleet-wide arrival rate this tenant generates.
  double rate_share = 0.0;
  /// Number of requests this tenant contributes to the stream.
  int num_requests = 0;
  /// Workload template indices this tenant draws from (uniformly).
  std::vector<int> templates;
  /// Service tier for the overload brownout ladder (stamped on every
  /// request of this tenant; see overload::CriticalityForTenant).
  overload::Criticality criticality = overload::Criticality::kStandard;
};

struct PopulationOptions {
  int num_tenants = 4;
  /// Total requests across all tenants.
  int num_requests = 128;
  /// Mean interarrival gap of the merged (fleet-wide) stream; per-tenant
  /// gaps are this divided by the tenant's rate share.
  units::Seconds mean_interarrival{5.0};
  /// Zipf exponent over tenant rates: share(i) ∝ 1 / (i+1)^skew.
  /// 0 = uniform shares; larger = tenant 0 increasingly dominant.
  double skew = 0.0;
  /// Size of each tenant's preferred-template block (a contiguous rotating
  /// window over the workload, so tenants overlap but differ — the overlap
  /// is what makes cross-tenant blame non-trivial). 0 = every tenant uses
  /// the whole workload.
  int templates_per_tenant = 0;
  /// Per-request SLA deadline parameters, as in sched::ArrivalOptions.
  double deadline_probability = 0.0;
  double min_slack = 2.0;
  double max_slack = 6.0;
  uint64_t seed = 42;
};

/// The generated population: the merged arrival stream (dense request ids
/// in arrival order, tenant stamped on every request) plus the per-tenant
/// specs the stream was drawn from.
struct Population {
  std::vector<sched::Request> requests;
  std::vector<TenantSpec> tenants;
};

/// Generates the population over `reference_latencies.size()` templates
/// (deadlines, as in sched::GenerateArrivals, are written against the
/// drawn template's reference latency). InvalidArgument on an empty
/// template set, non-positive tenant/request counts, a non-positive mean
/// interarrival gap, negative skew, a probability outside [0, 1], or an
/// inverted slack band.
StatusOr<Population> GeneratePopulation(
    const std::vector<units::Seconds>& reference_latencies,
    const PopulationOptions& options);

/// As above, but drives the tenants through `scenario` instead of the
/// default PoissonSteady shape — every tenant keeps its Zipf rate share,
/// request count, template window, and pre-derived seed; the scenario
/// decides when requests land and which window templates they draw
/// (fleet_demo's --scenario flag routes through this overload).
StatusOr<Population> GeneratePopulation(
    const std::vector<units::Seconds>& reference_latencies,
    const PopulationOptions& options,
    const scenario::Scenario& scenario);

}  // namespace contender::fleet

#endif  // CONTENDER_FLEET_POPULATION_H_

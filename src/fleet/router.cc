#include "fleet/router.h"

#include <algorithm>
#include <functional>
#include <limits>
#include <queue>

#include "util/failpoint.h"
#include "util/logging.h"

namespace contender::fleet {

namespace {

// Chaos seam: when armed, one evaluation per Route call; a fire begins a
// drain of the next rotating victim at the routed request's arrival
// instant. Firing is a pure hash of (root seed, evaluation index), so a
// whole fleet chaos run replays bit-exactly from one number.
auto& kDrainFailPoint = CONTENDER_DEFINE_FAILPOINT("fleet.node.drain");

}  // namespace

const std::string& RoutePolicyName(RoutePolicy policy) {
  static const std::string kRoundRobin = "round-robin";
  static const std::string kLeastLoaded = "least-loaded";
  static const std::string kContentionAware = "contention-aware";
  switch (policy) {
    case RoutePolicy::kRoundRobin:
      return kRoundRobin;
    case RoutePolicy::kLeastLoaded:
      return kLeastLoaded;
    case RoutePolicy::kContentionAware:
      return kContentionAware;
  }
  CONTENDER_CHECK(false) << "unknown RoutePolicy";
  return kRoundRobin;
}

const std::vector<RoutePolicy>& AllRoutePolicies() {
  static const std::vector<RoutePolicy>* kinds = new std::vector<RoutePolicy>{
      RoutePolicy::kRoundRobin, RoutePolicy::kLeastLoaded,
      RoutePolicy::kContentionAware};
  return *kinds;
}

Router::Router(const sched::MixOracle* oracle, const RouterOptions& options)
    : oracle_(oracle), options_(options), door_(options.door) {
  CONTENDER_CHECK(oracle_ != nullptr);
  CONTENDER_CHECK(options_.num_nodes >= 1);
  CONTENDER_CHECK(options_.target_mpl >= 1);
  CONTENDER_CHECK(options_.tenant_quota >= 0);
  nodes_.resize(static_cast<size_t>(options_.num_nodes));
}

void Router::Advance(NodeState* node, units::Seconds now) {
  for (;;) {
    // Earliest predicted completion; ties resolve to the lowest request
    // id so replay order never depends on container internals.
    size_t best = node->running.size();
    for (size_t i = 0; i < node->running.size(); ++i) {
      if (best == node->running.size() ||
          node->running[i].completion < node->running[best].completion ||
          (node->running[i].completion == node->running[best].completion &&
           node->running[i].request_id < node->running[best].request_id)) {
        best = i;
      }
    }
    if (best == node->running.size() ||
        node->running[best].completion > now) {
      return;
    }
    const units::Seconds freed = node->running[best].completion;
    node->running.erase(node->running.begin() +
                        static_cast<std::ptrdiff_t>(best));
    ++predicted_completions_;
    if (!node->backlog.empty()) {
      const sched::Request next = node->backlog.front();
      node->backlog.pop_front();
      // The promoted query was backlogged at its arrival (<= freed), so
      // its predicted start is the slot-free instant.
      Place(node, next, freed);
    }
  }
}

void Router::Place(NodeState* node, const sched::Request& request,
                   units::Seconds now) {
  if (static_cast<int>(node->running.size()) < options_.target_mpl) {
    std::vector<int> mix;
    mix.reserve(node->running.size());
    for (const PredictedQuery& q : node->running) {
      mix.push_back(q.template_index);
    }
    PredictedQuery entry;
    entry.template_index = request.template_index;
    entry.tenant_id = request.tenant_id;
    entry.request_id = request.request_id;
    entry.completion =
        now + oracle_->PredictInMix(request.template_index, mix);
    node->running.push_back(entry);
    return;
  }
  node->backlog.push_back(request);
}

double Router::PredictedWait(const NodeState& node,
                             units::Seconds now) const {
  if (static_cast<int>(node.running.size()) < options_.target_mpl) {
    return 0.0;
  }
  std::vector<double> remaining;
  remaining.reserve(node.running.size());
  for (const PredictedQuery& q : node.running) {
    remaining.push_back(std::max(0.0, (q.completion - now).value()));
  }
  // The new request starts once the whole predicted backlog ahead of it
  // has been started and one more slot frees. Replay the slot-free events:
  // pop the earliest predicted completion, start the next backlogged query
  // there (charged at its isolated latency — the then-current mix is
  // unknowable, and isolated is the stable floor that keeps deep backlogs
  // from looking cheap). O((mpl + backlog) log mpl) per candidate.
  std::priority_queue<double, std::vector<double>, std::greater<>> slots(
      remaining.begin(), remaining.end());
  for (const sched::Request& r : node.backlog) {
    const double freed = slots.top();
    slots.pop();
    slots.push(freed +
               oracle_->IsolatedLatency(r.template_index).value());
  }
  return slots.top();
}

std::vector<int> Router::HealthyNodes() const {
  std::vector<int> healthy;
  for (size_t i = 0; i < nodes_.size(); ++i) {
    if (!nodes_[i].draining) healthy.push_back(static_cast<int>(i));
  }
  return healthy;
}

int Router::OutstandingForTenant(int tenant_id) const {
  int outstanding = 0;
  for (const NodeState& node : nodes_) {
    for (const PredictedQuery& q : node.running) {
      if (q.tenant_id == tenant_id) ++outstanding;
    }
    for (const sched::Request& r : node.backlog) {
      if (r.tenant_id == tenant_id) ++outstanding;
    }
  }
  return outstanding;
}

units::Bytes Router::PredictedNodeBytes(const NodeState& node) const {
  const std::vector<TemplateProfile>& profiles =
      oracle_->predictor().profiles();
  units::Bytes total{0.0};
  for (const PredictedQuery& q : node.running) {
    total += profiles[static_cast<size_t>(q.template_index)].working_set_bytes;
  }
  for (const sched::Request& r : node.backlog) {
    total += profiles[static_cast<size_t>(r.template_index)].working_set_bytes;
  }
  return total;
}

units::Seconds Router::BestPredictedWait(const std::vector<int>& candidates,
                                         units::Seconds now) const {
  double best = std::numeric_limits<double>::infinity();
  for (int n : candidates) {
    best = std::min(best, PredictedWait(nodes_[static_cast<size_t>(n)], now));
  }
  return units::Seconds(candidates.empty() ? 0.0 : best);
}

int Router::Outstanding(int node) const {
  CONTENDER_CHECK(node >= 0 && node < static_cast<int>(nodes_.size()));
  const NodeState& state = nodes_[static_cast<size_t>(node)];
  return static_cast<int>(state.running.size() + state.backlog.size());
}

int Router::PickNode(const std::vector<int>& candidates,
                     const sched::Request& request, units::Seconds now,
                     bool* degraded) {
  CONTENDER_CHECK(!candidates.empty());
  switch (options_.policy) {
    case RoutePolicy::kRoundRobin:
      return candidates[round_robin_next_++ % candidates.size()];
    case RoutePolicy::kLeastLoaded: {
      int best = candidates.front();
      for (int n : candidates) {
        if (Outstanding(n) < Outstanding(best)) best = n;
      }
      return best;
    }
    case RoutePolicy::kContentionAware:
      break;
  }
  // Contention-aware: minimize the predicted response slowdown ratio
  // (wait + L(c|M)) / L_iso. The degradation ladder (PR 5): when the
  // candidate's template carries an open breaker, or a node's predicted
  // mix contains one, the in-mix prediction is untrusted — that term
  // drops to the measured isolated latency (tier 2), turning the score
  // into least-predicted-wait.
  const double isolated =
      oracle_->IsolatedLatency(request.template_index).value();
  const bool request_degraded = oracle_->Degraded(request.template_index);
  int best = candidates.front();
  double best_score = std::numeric_limits<double>::infinity();
  for (int n : candidates) {
    const NodeState& node = nodes_[static_cast<size_t>(n)];
    bool mix_degraded = request_degraded;
    std::vector<int> mix;
    mix.reserve(node.running.size());
    for (const PredictedQuery& q : node.running) {
      mix.push_back(q.template_index);
      mix_degraded = mix_degraded || oracle_->Degraded(q.template_index);
    }
    const double latency_term =
        mix_degraded
            ? isolated
            : oracle_->PredictInMix(request.template_index, mix).value();
    const double score =
        (PredictedWait(node, now) + latency_term) / isolated;
    if (mix_degraded && degraded != nullptr) *degraded = true;
    if (score < best_score) {
      best = n;
      best_score = score;
    }
  }
  return best;
}

StatusOr<int> Router::Route(const sched::Request& request) {
  if (request.request_id != static_cast<int>(assignments_.size())) {
    return Status::InvalidArgument(
        "Router::Route: request ids must be dense and in order");
  }
  if (!assignments_.empty() && request.arrival_time < last_arrival_) {
    // Arrival order is the routing pass's clock; going backwards would
    // silently corrupt every predicted state.
    return Status::InvalidArgument(
        "Router::Route: arrivals must be non-decreasing");
  }
  last_arrival_ = request.arrival_time;
  const units::Seconds now = request.arrival_time;
  for (NodeState& node : nodes_) {
    Advance(&node, now);
  }

  // Chaos: a fired "fleet.node.drain" evaluation begins a drain of the
  // next rotating victim that would not empty the fleet.
  if (kDrainFailPoint.ShouldFail()) {
    for (int tries = 0; tries < options_.num_nodes; ++tries) {
      const int victim = next_chaos_drain_;
      next_chaos_drain_ = (next_chaos_drain_ + 1) % options_.num_nodes;
      if (!nodes_[static_cast<size_t>(victim)].draining &&
          HealthyNodes().size() > 1) {
        CONTENDER_CHECK(BeginDrain(victim, now).ok());
        break;
      }
    }
  }

  Assignment assignment;
  assignment.effective_arrival = now;

  // The door: every rejection — static quota included — flows through
  // the overload controller and comes back stamped with its ShedReason.
  const std::vector<int> healthy = HealthyNodes();
  overload::DoorSample sample;
  sample.now = now;
  sample.queue_delay = BestPredictedWait(healthy, now);
  sample.criticality = request.criticality;
  sample.predicted_completions = predicted_completions_;
  sample.quota_exceeded =
      options_.tenant_quota > 0 &&
      OutstandingForTenant(request.tenant_id) >= options_.tenant_quota;
  if (options_.door.enabled &&
      options_.door.node_memory_budget > units::Bytes(0.0)) {
    const units::Bytes footprint =
        oracle_->predictor()
            .profiles()[static_cast<size_t>(request.template_index)]
            .working_set_bytes;
    bool any_headroom = false;
    for (int n : healthy) {
      if (PredictedNodeBytes(nodes_[static_cast<size_t>(n)]) + footprint <=
          options_.door.node_memory_budget) {
        any_headroom = true;
        break;
      }
    }
    sample.memory_exceeded = !any_headroom;
  }
  if (const std::optional<overload::ShedReason> reason =
          door_.Decide(sample)) {
    assignment.rejected = true;
    assignment.shed_reason = *reason;
    assignments_.push_back(assignment);
    ++stats_.rejected;
    ++stats_.rejected_by_reason[*reason];
    return -1;
  }

  bool degraded = false;
  const int pick = PickNode(healthy, request, now, &degraded);
  Place(&nodes_[static_cast<size_t>(pick)], request, now);
  assignment.node = pick;
  assignment.degraded = degraded;
  assignments_.push_back(assignment);
  ++stats_.routed;
  if (degraded) ++stats_.degraded_routes;
  return pick;
}

Status Router::BeginDrain(int node, units::Seconds now) {
  if (node < 0 || node >= static_cast<int>(nodes_.size())) {
    return Status::InvalidArgument("Router::BeginDrain: unknown node");
  }
  NodeState& draining = nodes_[static_cast<size_t>(node)];
  if (draining.draining) return Status::OK();
  if (HealthyNodes().size() <= 1) {
    return Status::FailedPrecondition(
        "Router::BeginDrain: cannot drain the last healthy node");
  }
  Advance(&draining, now);
  draining.draining = true;

  DrainEvent event;
  event.node = node;
  event.time = now;

  // Failover: the predicted backlog re-routes through the active policy
  // among the remaining healthy nodes, in FIFO order. Predicted-running
  // queries stay — drain means "finish what you started, accept nothing
  // new".
  std::deque<sched::Request> displaced;
  displaced.swap(draining.backlog);
  for (const sched::Request& r : displaced) {
    bool degraded = false;
    const std::vector<int> healthy = HealthyNodes();
    const int pick = PickNode(healthy, r, now, &degraded);
    Place(&nodes_[static_cast<size_t>(pick)], r, now);
    Assignment& assignment =
        assignments_[static_cast<size_t>(r.request_id)];
    assignment.node = pick;
    assignment.effective_arrival = now;
    assignment.failed_over = true;
    assignment.degraded = assignment.degraded || degraded;
    ++stats_.failovers;
    ++event.failovers;
    if (degraded) ++stats_.degraded_routes;
  }
  stats_.drains.push_back(event);
  return Status::OK();
}

bool Router::draining(int node) const {
  CONTENDER_CHECK(node >= 0 && node < static_cast<int>(nodes_.size()));
  return nodes_[static_cast<size_t>(node)].draining;
}

}  // namespace contender::fleet

// The fleet orchestration layer: N Nodes behind a Router, fed by a
// multi-tenant ClientPopulation, with drain/failover chaos and per-query
// blame attribution. Composes every layer below it — core predictor
// (via MixOracle), sim::Engine (via each Node's ScheduleSimulator),
// sched policies, the serve health/failpoint machinery and util's thread
// pool — under one deterministic two-pass run:
//
//   Routing pass (sequential):   the Router scans the merged arrival
//     stream in time order and fixes every request's placement against
//     its *predicted* node states (plus quota rejections, chaos drains
//     and failovers). Placements are final after this pass.
//   Execution pass (parallel):   each node realizes its fixed sub-stream
//     on a private sim::Engine through its own MixOracle and MPL budget.
//     Nodes share nothing mutable, so the pass fans out over a
//     ThreadPool; per-node seeds are pre-derived in node-id order and
//     results land in node-index slots, making the whole FleetResult
//     bit-identical at every thread count (the PR 1 determinism idiom).
//
// Blame attribution (fleet/blame.h) then decomposes each query's
// realized slowdown across its co-residents, the per-tenant
// accountability signal FleetMetrics aggregates.

#ifndef CONTENDER_FLEET_FLEET_SIMULATOR_H_
#define CONTENDER_FLEET_FLEET_SIMULATOR_H_

#include <vector>

#include "fleet/blame.h"
#include "fleet/node.h"
#include "fleet/population.h"
#include "fleet/router.h"
#include "sched/mix_oracle.h"
#include "sched/policy.h"
#include "sim/config.h"
#include "util/statusor.h"
#include "util/units.h"
#include "workload/workload.h"

namespace contender::fleet {

/// An explicit (non-chaos) drain: `node` stops accepting work at `time`.
struct ScheduledDrain {
  int node = -1;
  units::Seconds time;
};

struct FleetOptions {
  int num_nodes = 4;
  /// Per-node MPL budget (router belief and node execution both use it).
  int target_mpl = 3;
  /// Fleet placement policy.
  RoutePolicy policy = RoutePolicy::kContentionAware;
  /// Per-node local admission policy.
  sched::PolicyKind node_policy = sched::PolicyKind::kGreedyContention;
  /// Max outstanding requests per tenant fleet-wide; 0 = unlimited.
  int tenant_quota = 0;
  /// Root seed: node engine/instance seeds derive from it in node order.
  uint64_t seed = 42;
  /// Execution-pass parallelism; 0 = hardware concurrency. Results are
  /// bit-identical for every value.
  int threads = 1;
  /// Explicit drains, applied at their times during the routing pass
  /// (chaos drains additionally fire from the "fleet.node.drain" fail
  /// point).
  std::vector<ScheduledDrain> drains;
  /// Memo options for the router's and every node's MixOracle.
  sched::MixOracle::Options oracle_options;
  /// Door-side overload control for the router (DESIGN.md §16).
  overload::DoorOptions door;
  /// Node-level overload control, forwarded into every node.
  overload::NodeOverloadOptions node_overload;
};

/// One request's journey through the fleet. Latency fields are only
/// meaningful when `completed`; a rejected request never executes.
struct FleetQueryOutcome {
  /// The original population request (fleet-wide id, original arrival).
  sched::Request request;
  /// Final executing node; -1 when rejected.
  int node = -1;
  /// Shed at the router door (never reached a node).
  bool rejected = false;
  /// Shed by node-level overload control after admission to a node.
  bool shed = false;
  /// Why the drop happened (meaningful when `rejected` or `shed`; every
  /// drop is stamped — lint rule R10).
  overload::ShedReason shed_reason = overload::ShedReason::kQuota;
  bool failed_over = false;
  /// The placement decision descended the degradation ladder.
  bool degraded_route = false;
  bool completed = false;
  bool missed_deadline = false;
  units::Seconds admit_time;
  /// admit - original fleet arrival (includes time stranded on a drained
  /// node's backlog before failover).
  units::Seconds queue_wait;
  units::Seconds execution_latency;
  units::Seconds completion_time;
  /// completion - original fleet arrival: the fleet-level SLA clock.
  units::Seconds response_time;
  /// The node admission loop's in-mix prediction for this request.
  units::Seconds predicted_latency;
};

/// Per-node execution summary.
struct FleetNodeSummary {
  int node_id = 0;
  size_t requests = 0;
  units::Seconds makespan;
  uint64_t oracle_hits = 0;
  uint64_t oracle_misses = 0;
  uint64_t oracle_degradations = 0;
  /// Node overload control: requests CoDel-shed off the local queue and
  /// the AIMD limiter's final state.
  uint64_t queue_sheds = 0;
  int final_admission_limit = 0;
  uint64_t limit_decreases = 0;
};

struct FleetResult {
  /// Indexed by fleet-wide request id.
  std::vector<FleetQueryOutcome> outcomes;
  /// Last completion across all nodes.
  units::Seconds makespan;
  RouterStats router;
  /// The router door's overload ledger (sheds by reason, recovery
  /// entries, brownout transitions, chaos sheds).
  overload::DoorStats door;
  /// Per-query blame decompositions, ordered by request id (rejected
  /// requests carry none).
  std::vector<QueryBlame> blame;
  std::vector<FleetNodeSummary> nodes;
};

class FleetSimulator {
 public:
  /// `workload` and `predictor` must outlive the simulator. `health`, when
  /// given, wires the serve-layer breaker bank into the router's and every
  /// node's oracle (the degradation ladder at fleet scale); it must also
  /// outlive the simulator.
  FleetSimulator(const Workload* workload, const sim::SimConfig& config,
                 const ContenderPredictor* predictor,
                 const sched::TemplateHealth* health = nullptr);

  /// Runs the population to completion. Bit-exactly deterministic for a
  /// fixed (population, options, chaos root seed) at any thread count.
  StatusOr<FleetResult> Run(const Population& population,
                            const FleetOptions& options) const;

 private:
  const Workload* workload_;
  sim::SimConfig config_;
  const ContenderPredictor* predictor_;
  const sched::TemplateHealth* health_;
};

}  // namespace contender::fleet

#endif  // CONTENDER_FLEET_FLEET_SIMULATOR_H_

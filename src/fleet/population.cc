#include "fleet/population.h"

#include <algorithm>
#include <cmath>

#include "util/random.h"

namespace contender::fleet {

namespace {

/// Merged-stream order: arrival, then tenant, then the tenant-local draw
/// index (encoded by generation order within a tenant) — fully
/// deterministic even when two tenants draw the same instant.
struct Draw {
  sched::Request request;  // request_id unset until the final pass
  int tenant_seq = 0;
};

bool DrawBefore(const Draw& a, const Draw& b) {
  if (a.request.arrival_time != b.request.arrival_time) {
    return a.request.arrival_time < b.request.arrival_time;
  }
  if (a.request.tenant_id != b.request.tenant_id) {
    return a.request.tenant_id < b.request.tenant_id;
  }
  return a.tenant_seq < b.tenant_seq;
}

}  // namespace

StatusOr<Population> GeneratePopulation(
    const std::vector<units::Seconds>& reference_latencies,
    const PopulationOptions& options) {
  if (reference_latencies.empty()) {
    return Status::InvalidArgument(
        "GeneratePopulation: need at least one template");
  }
  if (options.num_tenants < 1) {
    return Status::InvalidArgument(
        "GeneratePopulation: num_tenants must be >= 1");
  }
  if (options.num_requests < 0) {
    return Status::InvalidArgument(
        "GeneratePopulation: num_requests must be >= 0");
  }
  if (!(options.mean_interarrival.value() > 0.0)) {
    return Status::InvalidArgument(
        "GeneratePopulation: mean_interarrival must be positive");
  }
  if (!(options.skew >= 0.0)) {  // NaN also fails
    return Status::InvalidArgument(
        "GeneratePopulation: skew must be >= 0");
  }
  if (options.deadline_probability < 0.0 ||
      options.deadline_probability > 1.0) {
    return Status::InvalidArgument(
        "GeneratePopulation: deadline_probability outside [0, 1]");
  }
  if (options.max_slack < options.min_slack) {
    return Status::InvalidArgument(
        "GeneratePopulation: max_slack below min_slack");
  }
  const int num_templates = static_cast<int>(reference_latencies.size());
  if (options.templates_per_tenant < 0 ||
      options.templates_per_tenant > num_templates) {
    return Status::InvalidArgument(
        "GeneratePopulation: templates_per_tenant outside [0, templates]");
  }

  Population population;
  population.tenants.resize(static_cast<size_t>(options.num_tenants));

  // Zipf-like rate shares: share(i) ∝ 1/(i+1)^skew.
  double weight_sum = 0.0;
  for (int i = 0; i < options.num_tenants; ++i) {
    weight_sum += std::pow(static_cast<double>(i + 1), -options.skew);
  }
  // Request counts: largest-remainder apportionment of num_requests over
  // the shares, so counts are exact, deterministic, and sum correctly.
  std::vector<double> exact(static_cast<size_t>(options.num_tenants));
  std::vector<int> counts(static_cast<size_t>(options.num_tenants));
  int assigned = 0;
  for (int i = 0; i < options.num_tenants; ++i) {
    const double share =
        std::pow(static_cast<double>(i + 1), -options.skew) / weight_sum;
    exact[static_cast<size_t>(i)] = share * options.num_requests;
    counts[static_cast<size_t>(i)] =
        static_cast<int>(std::floor(exact[static_cast<size_t>(i)]));
    assigned += counts[static_cast<size_t>(i)];
    population.tenants[static_cast<size_t>(i)].tenant_id = i;
    population.tenants[static_cast<size_t>(i)].rate_share = share;
  }
  // Distribute the remainder by descending fractional part (ties to the
  // lower tenant id).
  std::vector<int> order(static_cast<size_t>(options.num_tenants));
  for (int i = 0; i < options.num_tenants; ++i) {
    order[static_cast<size_t>(i)] = i;
  }
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    const double fa = exact[static_cast<size_t>(a)] -
                      std::floor(exact[static_cast<size_t>(a)]);
    const double fb = exact[static_cast<size_t>(b)] -
                      std::floor(exact[static_cast<size_t>(b)]);
    return fa > fb;
  });
  for (int r = 0; r < options.num_requests - assigned; ++r) {
    ++counts[static_cast<size_t>(
        order[static_cast<size_t>(r % options.num_tenants)])];
  }

  // Per-tenant template windows: contiguous rotating blocks so adjacent
  // tenants overlap (shared scans → contention → cross-tenant blame).
  const int block = options.templates_per_tenant == 0
                        ? num_templates
                        : options.templates_per_tenant;
  for (int i = 0; i < options.num_tenants; ++i) {
    TenantSpec& spec = population.tenants[static_cast<size_t>(i)];
    spec.num_requests = counts[static_cast<size_t>(i)];
    const int start = options.templates_per_tenant == 0
                          ? 0
                          : (i * std::max(1, block / 2)) % num_templates;
    for (int k = 0; k < block; ++k) {
      spec.templates.push_back((start + k) % num_templates);
    }
    std::sort(spec.templates.begin(), spec.templates.end());
    spec.templates.erase(
        std::unique(spec.templates.begin(), spec.templates.end()),
        spec.templates.end());
  }

  // Pre-derive every tenant's seed in tenant order, then draw each
  // tenant's stream independently (PR 1 idiom: no interleaved Rng state).
  Rng root(options.seed);
  std::vector<uint64_t> tenant_seeds;
  tenant_seeds.reserve(static_cast<size_t>(options.num_tenants));
  for (int i = 0; i < options.num_tenants; ++i) {
    tenant_seeds.push_back(root.Next());
  }

  std::vector<Draw> draws;
  draws.reserve(static_cast<size_t>(options.num_requests));
  for (int i = 0; i < options.num_tenants; ++i) {
    const TenantSpec& spec = population.tenants[static_cast<size_t>(i)];
    if (spec.num_requests == 0) continue;
    Rng rng(tenant_seeds[static_cast<size_t>(i)]);
    // The tenant's mean gap: the merged stream has the requested aggregate
    // mean gap when every tenant contributes at its rate share.
    const units::Seconds tenant_gap =
        options.mean_interarrival * (1.0 / spec.rate_share);
    units::Seconds clock;
    for (int k = 0; k < spec.num_requests; ++k) {
      Draw d;
      d.tenant_seq = k;
      d.request.tenant_id = i;
      d.request.template_index = spec.templates[static_cast<size_t>(
          rng.UniformInt(static_cast<uint64_t>(spec.templates.size())))];
      // Exponential gaps; every tenant's first request gets a gap too, so
      // heavy tenants start earlier in expectation but not all at t = 0.
      clock += tenant_gap * (-std::log1p(-rng.Uniform01()));
      d.request.arrival_time = clock;
      if (options.deadline_probability > 0.0 &&
          rng.Uniform01() < options.deadline_probability) {
        const double slack =
            rng.Uniform(options.min_slack, options.max_slack);
        d.request.deadline =
            d.request.arrival_time +
            reference_latencies[static_cast<size_t>(
                d.request.template_index)] *
                slack;
      }
      draws.push_back(std::move(d));
    }
  }
  std::stable_sort(draws.begin(), draws.end(), DrawBefore);

  population.requests.reserve(draws.size());
  for (size_t id = 0; id < draws.size(); ++id) {
    draws[id].request.request_id = static_cast<int>(id);
    population.requests.push_back(draws[id].request);
  }
  return population;
}

}  // namespace contender::fleet

#include "fleet/population.h"

#include <utility>

#include "scenario/scenario.h"
#include "util/logging.h"

namespace contender::fleet {

// The population generator is a thin adapter over the scenario library's
// fleet mode: the Zipf share / largest-remainder / rotating-window tenant
// planner, the per-tenant seed pre-derivation, and the deterministic
// merge all live in scenario::Scenario::GenerateFleetTrace now, bit-exact
// to the sampler that used to live here. The default shape is
// PoissonSteady; fleet_demo --scenario routes any registered scenario
// through the same fleet.

StatusOr<Population> GeneratePopulation(
    const std::vector<units::Seconds>& reference_latencies,
    const PopulationOptions& options) {
  const scenario::Scenario* poisson =
      scenario::FindScenario(scenario::kPoissonSteadyName);
  CONTENDER_CHECK(poisson != nullptr)
      << "poisson-steady missing from the scenario registry";
  return GeneratePopulation(reference_latencies, options, *poisson);
}

StatusOr<Population> GeneratePopulation(
    const std::vector<units::Seconds>& reference_latencies,
    const PopulationOptions& options,
    const scenario::Scenario& scenario) {
  scenario::ScenarioParams params;
  params.num_requests = options.num_requests;
  params.mean_interarrival = options.mean_interarrival;
  params.deadline_probability = options.deadline_probability;
  params.min_slack = options.min_slack;
  params.max_slack = options.max_slack;
  params.num_tenants = options.num_tenants;
  params.skew = options.skew;
  params.templates_per_tenant = options.templates_per_tenant;
  params.seed = options.seed;
  CONTENDER_ASSIGN_OR_RETURN(
      scenario::ScenarioTrace trace,
      scenario.GenerateFleetTrace(reference_latencies, params));

  Population population;
  population.requests = std::move(trace.requests);
  // Criticality tiers are stamped here — a pure function of tenant id —
  // rather than in the scenario driver, so scenario traces (and their
  // digests) stay byte-identical to the pre-overload sampler.
  for (sched::Request& request : population.requests) {
    request.criticality = overload::CriticalityForTenant(request.tenant_id);
  }
  population.tenants.reserve(trace.tenants.size());
  for (scenario::TenantTraffic& tenant : trace.tenants) {
    TenantSpec spec{tenant.tenant_id, tenant.rate_share, tenant.num_requests,
                    std::move(tenant.templates)};
    spec.criticality = overload::CriticalityForTenant(tenant.tenant_id);
    population.tenants.push_back(std::move(spec));
  }
  return population;
}

}  // namespace contender::fleet

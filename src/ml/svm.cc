#include "ml/svm.h"

#include <algorithm>
#include <cmath>

#include "math/kernel.h"
#include "util/summary_stats.h"

namespace contender {

namespace {

// Change in the dual objective for moving (β_i, β_j) by (+delta, -delta):
//   ΔW = delta·g0 − η·delta²/2 − ε(|βi+δ| − |βi| + |βj−δ| − |βj|)
double ObjectiveDelta(double delta, double g0, double eta, double eps,
                      double beta_i, double beta_j) {
  return delta * g0 - 0.5 * eta * delta * delta -
         eps * (std::fabs(beta_i + delta) - std::fabs(beta_i) +
                std::fabs(beta_j - delta) - std::fabs(beta_j));
}

}  // namespace

StatusOr<SvrModel> SvrModel::Fit(const std::vector<Vector>& features,
                                 const std::vector<double>& labels,
                                 const Options& options) {
  if (features.size() != labels.size()) {
    return Status::InvalidArgument("SvrModel: size mismatch");
  }
  if (features.size() < 2) {
    return Status::InvalidArgument("SvrModel: need >= 2 examples");
  }
  const size_t n = features.size();
  const size_t d = features[0].size();
  for (const auto& f : features) {
    if (f.size() != d) {
      return Status::InvalidArgument("SvrModel: ragged features");
    }
  }

  SvrModel model;
  model.options_ = options;

  // Feature normalization.
  model.feature_mean_.assign(d, 0.0);
  model.feature_scale_.assign(d, 1.0);
  if (options.normalize) {
    for (const auto& f : features) {
      for (size_t j = 0; j < d; ++j) model.feature_mean_[j] += f[j];
    }
    for (size_t j = 0; j < d; ++j) {
      model.feature_mean_[j] /= static_cast<double>(n);
    }
    Vector var(d, 0.0);
    for (const auto& f : features) {
      for (size_t j = 0; j < d; ++j) {
        const double diff = f[j] - model.feature_mean_[j];
        var[j] += diff * diff;
      }
    }
    for (size_t j = 0; j < d; ++j) {
      const double sd = std::sqrt(var[j] / static_cast<double>(n));
      model.feature_scale_[j] = sd > 1e-12 ? sd : 1.0;
    }
  }
  std::vector<Vector> x(n);
  for (size_t i = 0; i < n; ++i) x[i] = model.Normalize(features[i]);

  // Label z-scoring keeps C and epsilon scale-free.
  SummaryStats label_stats;
  for (double v : labels) label_stats.Add(v);
  model.label_mean_ = label_stats.mean();
  model.label_scale_ =
      label_stats.stddev() > 1e-12 ? label_stats.stddev() : 1.0;
  std::vector<double> y(n);
  for (size_t i = 0; i < n; ++i) {
    y[i] = (labels[i] - model.label_mean_) / model.label_scale_;
  }

  model.gamma_ =
      options.gamma > 0.0 ? options.gamma : MedianHeuristicGamma(x);

  const Matrix k = GaussianGramMatrix(x, model.gamma_);
  const double c = options.c;
  const double eps = options.epsilon;

  std::vector<double> beta(n, 0.0);
  // Cached f_i = Σ_k β_k K_ik (no bias).
  std::vector<double> f(n, 0.0);

  Rng rng(options.seed);
  // Hoisted out of the pair loop: at most 4 breakpoints + 4 per-sign
  // optima, so one allocation serves the whole fit.
  std::vector<double> candidates;
  candidates.reserve(8);
  for (int epoch = 0; epoch < options.max_epochs; ++epoch) {
    double epoch_best = 0.0;
    std::vector<int> order = rng.Permutation(static_cast<int>(n));
    for (int ii : order) {
      const size_t i = static_cast<size_t>(ii);
      // Pick partner j maximizing the first-order gain proxy |g0| among a
      // random candidate pool.
      size_t j = i;
      double best_gain = -1.0;
      const int pool = std::min<int>(16, static_cast<int>(n) - 1);
      for (int trial = 0; trial < pool; ++trial) {
        size_t cand = static_cast<size_t>(rng.UniformInt(
            static_cast<uint64_t>(n)));
        if (cand == i) continue;
        const double g = std::fabs((y[i] - f[i]) - (y[cand] - f[cand]));
        if (g > best_gain) {
          best_gain = g;
          j = cand;
        }
      }
      if (j == i) continue;

      const double eta = k(i, i) + k(j, j) - 2.0 * k(i, j);
      const double g0 = (y[i] - y[j]) - (f[i] - f[j]);
      const double lo = std::max(-c - beta[i], beta[j] - c);
      const double hi = std::min(c - beta[i], beta[j] + c);
      if (lo >= hi) continue;

      // Candidate deltas: per-sign-region optima plus the breakpoints.
      candidates.assign({-beta[i], beta[j], lo, hi});
      if (eta > 1e-12) {
        for (double si : {-1.0, 1.0}) {
          for (double sj : {-1.0, 1.0}) {
            candidates.push_back((g0 - eps * si + eps * sj) / eta);
          }
        }
      }
      double best_delta = 0.0;
      double best_gain_obj = 0.0;
      for (double cand : candidates) {
        const double delta = std::clamp(cand, lo, hi);
        const double gain =
            ObjectiveDelta(delta, g0, eta, eps, beta[i], beta[j]);
        if (gain > best_gain_obj) {
          best_gain_obj = gain;
          best_delta = delta;
        }
      }
      if (best_gain_obj <= 0.0) continue;
      epoch_best = std::max(epoch_best, best_gain_obj);

      beta[i] += best_delta;
      beta[j] -= best_delta;
      for (size_t kk = 0; kk < n; ++kk) {
        f[kk] += best_delta * (k(i, kk) - k(j, kk));
      }
    }
    if (epoch_best < options.tolerance) break;
  }

  // Bias from free support vectors: f(x_i) should equal y_i − ε·sign(β_i).
  std::vector<double> bias_estimates;
  for (size_t i = 0; i < n; ++i) {
    if (std::fabs(beta[i]) > 1e-9 && std::fabs(beta[i]) < c - 1e-9) {
      const double sign = beta[i] > 0.0 ? 1.0 : -1.0;
      bias_estimates.push_back(y[i] - f[i] - eps * sign);
    }
  }
  if (bias_estimates.empty()) {
    for (size_t i = 0; i < n; ++i) bias_estimates.push_back(y[i] - f[i]);
  }
  model.bias_ = Median(std::move(bias_estimates));

  for (size_t i = 0; i < n; ++i) {
    if (std::fabs(beta[i]) > 1e-9) {
      model.support_.push_back(x[i]);
      model.support_beta_.push_back(beta[i]);
    }
  }
  return model;
}

Vector SvrModel::Normalize(const Vector& v) const {
  Vector out(v.size());
  for (size_t j = 0; j < v.size(); ++j) {
    out[j] = (v[j] - feature_mean_[j]) / feature_scale_[j];
  }
  return out;
}

double SvrModel::Predict(const Vector& query) const {
  const Vector q = Normalize(query);
  double s = bias_;
  for (size_t i = 0; i < support_.size(); ++i) {
    s += support_beta_[i] * GaussianKernel(support_[i], q, gamma_);
  }
  return s * label_scale_ + label_mean_;
}

}  // namespace contender

// k-fold cross-validation index splitting (paper §2 uses k = 5, §3 k = 6).

#ifndef CONTENDER_ML_KFOLD_H_
#define CONTENDER_ML_KFOLD_H_

#include <cstddef>
#include <vector>

#include "util/random.h"

namespace contender {

/// One train/test partition of example indices.
struct FoldSplit {
  std::vector<size_t> train;
  std::vector<size_t> test;
};

/// Shuffles 0..n-1 and splits into k folds of near-equal size; fold i's
/// members form split i's test set and the remainder its training set.
/// k is clamped to [1, n]; n == 0 yields no splits.
std::vector<FoldSplit> KFoldSplits(size_t n, int k, Rng* rng);

/// Leave-one-out splits: n folds, each testing exactly one example.
std::vector<FoldSplit> LeaveOneOutSplits(size_t n);

}  // namespace contender

#endif  // CONTENDER_ML_KFOLD_H_

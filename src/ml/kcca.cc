#include "ml/kcca.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <numeric>

#include "math/eigen.h"
#include "math/kernel.h"

namespace contender {

StatusOr<KccaModel> KccaModel::Fit(const std::vector<Vector>& features,
                                   const std::vector<Vector>& performance,
                                   const Options& options) {
  if (features.size() != performance.size()) {
    return Status::InvalidArgument("KccaModel: size mismatch");
  }
  if (features.size() < 4) {
    return Status::InvalidArgument("KccaModel: need >= 4 examples");
  }
  if (options.num_projections <= 0) {
    return Status::InvalidArgument("KccaModel: num_projections must be > 0");
  }

  // Deterministic stride subsample when the training set exceeds the cap;
  // otherwise alias the caller's storage instead of copying it.
  std::vector<Vector> kept_features;
  std::vector<Vector> kept_performance;
  const std::vector<Vector>* selected_features = &features;
  const std::vector<Vector>* selected_performance = &performance;
  if (options.max_training_examples > 0 &&
      features.size() >
          static_cast<size_t>(options.max_training_examples)) {
    const size_t cap = static_cast<size_t>(options.max_training_examples);
    kept_features.reserve(cap);
    kept_performance.reserve(cap);
    for (size_t k = 0; k < cap; ++k) {
      const size_t idx = k * features.size() / cap;
      kept_features.push_back(features[idx]);
      kept_performance.push_back(performance[idx]);
    }
    selected_features = &kept_features;
    selected_performance = &kept_performance;
  }
  const std::vector<Vector>& train_features = *selected_features;
  const std::vector<Vector>& train_performance = *selected_performance;
  const size_t n = train_features.size();

  KccaModel model;
  model.options_ = options;

  // Z-score the feature view (the performance view is kernelized as-is
  // after a log transform upstream if desired).
  const size_t d = train_features[0].size();
  model.feature_mean_.assign(d, 0.0);
  model.feature_scale_.assign(d, 1.0);
  for (const auto& f : train_features) {
    if (f.size() != d) {
      return Status::InvalidArgument("KccaModel: ragged features");
    }
    for (size_t j = 0; j < d; ++j) model.feature_mean_[j] += f[j];
  }
  for (size_t j = 0; j < d; ++j) {
    model.feature_mean_[j] /= static_cast<double>(n);
  }
  Vector var(d, 0.0);
  for (const auto& f : train_features) {
    for (size_t j = 0; j < d; ++j) {
      const double diff = f[j] - model.feature_mean_[j];
      var[j] += diff * diff;
    }
  }
  for (size_t j = 0; j < d; ++j) {
    const double sd = std::sqrt(var[j] / static_cast<double>(n));
    model.feature_scale_[j] = sd > 1e-12 ? sd : 1.0;
  }
  model.train_features_.reserve(n);
  for (const auto& f : train_features) {
    model.train_features_.push_back(model.NormalizeFeatures(f));
  }
  model.train_latency_.reserve(n);
  for (const auto& p : train_performance) {
    if (p.empty()) {
      return Status::InvalidArgument("KccaModel: empty performance row");
    }
    model.train_latency_.push_back(p[0]);
  }

  model.gamma_x_ = options.gamma_x > 0.0
                       ? options.gamma_x
                       : MedianHeuristicGamma(model.train_features_);
  const double gamma_y = options.gamma_y > 0.0
                             ? options.gamma_y
                             : MedianHeuristicGamma(train_performance);

  const Matrix kx_raw = GaussianGramMatrix(model.train_features_,
                                           model.gamma_x_);
  const Matrix ky_raw = GaussianGramMatrix(train_performance, gamma_y);

  // Stash centering statistics for projecting new examples.
  model.kx_col_mean_.assign(n, 0.0);
  double total = 0.0;
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) model.kx_col_mean_[i] += kx_raw(i, j);
    model.kx_col_mean_[i] /= static_cast<double>(n);
    total += model.kx_col_mean_[i];
  }
  model.kx_total_mean_ = total / static_cast<double>(n);

  const Matrix kx = CenterGramMatrix(kx_raw);
  const Matrix ky = CenterGramMatrix(ky_raw);

  // Hardoon et al. regularized KCCA:
  //   A = [ 0        Kx·Ky ]      B = [ (Kx + κI)²     0        ]
  //       [ Ky·Kx    0     ]          [ 0              (Ky + κI)² ]
  // A is symmetric because (Kx·Ky)ᵀ = Ky·Kx; B is SPD for κ > 0.
  const double kappa = options.kappa * static_cast<double>(n) / 100.0 + 1e-3;
  Matrix kx_reg = kx;
  kx_reg.AddToDiagonal(kappa * static_cast<double>(n));
  Matrix ky_reg = ky;
  ky_reg.AddToDiagonal(kappa * static_cast<double>(n));

  const Matrix kxky = kx.Multiply(ky);
  const Matrix kykx = kxky.Transpose();
  const Matrix bx = kx_reg.Multiply(kx_reg);
  const Matrix by = ky_reg.Multiply(ky_reg);

  Matrix a(2 * n, 2 * n);
  Matrix b(2 * n, 2 * n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      a(i, n + j) = kxky(i, j);
      a(n + i, j) = kykx(i, j);
      b(i, j) = bx(i, j);
      b(n + i, n + j) = by(i, j);
    }
  }

  StatusOr<EigenDecomposition> eig = GeneralizedSymmetricEigen(a, b);
  if (!eig.ok()) return eig.status();

  const size_t p = std::min<size_t>(
      static_cast<size_t>(options.num_projections), n);
  model.alpha_ = Matrix(n, p);
  for (size_t c = 0; c < p; ++c) {
    // Keep the Kx-side half of the eigenvector, normalized.
    double norm = 0.0;
    for (size_t r = 0; r < n; ++r) {
      const double v = eig->vectors(r, c);
      norm += v * v;
    }
    norm = std::sqrt(std::max(norm, 1e-30));
    for (size_t r = 0; r < n; ++r) {
      model.alpha_(r, c) = eig->vectors(r, c) / norm;
    }
  }

  model.train_projections_.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Vector proj(p, 0.0);
    for (size_t c = 0; c < p; ++c) {
      double s = 0.0;
      for (size_t r = 0; r < n; ++r) s += kx(i, r) * model.alpha_(r, c);
      proj[c] = s;
    }
    model.train_projections_.push_back(std::move(proj));
  }
  return model;
}

Vector KccaModel::NormalizeFeatures(const Vector& v) const {
  Vector out(v.size());
  for (size_t j = 0; j < v.size(); ++j) {
    out[j] = (v[j] - feature_mean_[j]) / feature_scale_[j];
  }
  return out;
}

Vector KccaModel::Project(const Vector& query) const {
  const Vector q = NormalizeFeatures(query);
  const size_t n = train_features_.size();
  Vector k(n);
  double k_mean = 0.0;
  for (size_t i = 0; i < n; ++i) {
    k[i] = GaussianKernel(train_features_[i], q, gamma_x_);
    k_mean += k[i];
  }
  k_mean /= static_cast<double>(n);
  // Center against training statistics.
  for (size_t i = 0; i < n; ++i) {
    k[i] = k[i] - kx_col_mean_[i] - k_mean + kx_total_mean_;
  }
  Vector proj(alpha_.cols(), 0.0);
  for (size_t c = 0; c < alpha_.cols(); ++c) {
    double s = 0.0;
    for (size_t r = 0; r < n; ++r) s += k[r] * alpha_(r, c);
    proj[c] = s;
  }
  return proj;
}

double KccaModel::PredictLatency(const Vector& query) const {
  const Vector proj = Project(query);
  std::vector<size_t> idx(train_projections_.size());
  std::iota(idx.begin(), idx.end(), 0);
  const size_t k = std::min<size_t>(
      static_cast<size_t>(std::max(options_.num_neighbors, 1)), idx.size());
  std::partial_sort(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(k),
                    idx.end(),
                    [&](size_t a, size_t b) {
                      return SquaredDistance(train_projections_[a], proj) <
                             SquaredDistance(train_projections_[b], proj);
                    });
  double s = 0.0;
  for (size_t i = 0; i < k; ++i) s += train_latency_[idx[i]];
  return s / static_cast<double>(k);
}

}  // namespace contender

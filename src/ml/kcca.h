// Kernel Canonical Correlation Analysis (Hardoon et al. formulation), the
// KCCA baseline of paper §3: Gaussian kernels over the query-plan feature
// space and the performance space, a regularized generalized eigenproblem,
// and latency prediction by averaging the k nearest projected neighbors.

#ifndef CONTENDER_ML_KCCA_H_
#define CONTENDER_ML_KCCA_H_

#include <vector>

#include "math/matrix.h"
#include "util/statusor.h"

namespace contender {

/// KCCA projection model mapping feature vectors into a low-dimensional
/// maximally-correlated space; prediction is kNN over training projections.
class KccaModel {
 public:
  struct Options {
    /// Number of canonical projection directions retained.
    int num_projections = 2;
    /// Neighbors averaged for a latency prediction (paper uses 3).
    int num_neighbors = 3;
    /// Regularization κ added to the kernel matrices (scaled by n).
    double kappa = 0.1;
    /// RBF widths; <= 0 selects the median heuristic per view.
    double gamma_x = -1.0;
    double gamma_y = -1.0;
    /// Training-set cap: the 2n x 2n generalized eigenproblem is O(n^3), so
    /// larger training sets are deterministically subsampled (stride) down
    /// to this many examples. The paper's §3 static experiment itself
    /// trains on 250 mixes. <= 0 disables the cap.
    int max_training_examples = 250;
  };

  /// Trains on `features` (query-plan view) and `performance` (one row per
  /// example; in the paper a latency vector, here usually 1-D).
  static StatusOr<KccaModel> Fit(const std::vector<Vector>& features,
                                 const std::vector<Vector>& performance,
                                 const Options& options);

  /// Projects a feature vector into canonical space.
  Vector Project(const Vector& query) const;

  /// Predicts latency: averages performance[0] of the nearest training
  /// examples in projection space.
  double PredictLatency(const Vector& query) const;

 private:
  KccaModel() = default;

  Vector NormalizeFeatures(const Vector& v) const;

  Options options_;
  double gamma_x_ = 1.0;
  Vector feature_mean_;
  Vector feature_scale_;
  std::vector<Vector> train_features_;  // normalized
  std::vector<double> train_latency_;
  // Kernel-centering statistics for new columns.
  Vector kx_col_mean_;
  double kx_total_mean_ = 0.0;
  // α: n × num_projections basis from the generalized eigenproblem.
  Matrix alpha_;
  // Projections of the training examples (n × num_projections).
  std::vector<Vector> train_projections_;
};

}  // namespace contender

#endif  // CONTENDER_ML_KCCA_H_

// Latin Hypercube Sampling of concurrent query mixes (paper §2, Fig. 1).
//
// A single LHS run over n templates at multiprogramming level k builds a
// k-dimensional hypercube whose axes each enumerate the n templates, and
// selects n cells such that every template appears exactly once per
// dimension: mix i = (perm_1[i], ..., perm_k[i]) for independent random
// permutations perm_d.

#ifndef CONTENDER_ML_LHS_H_
#define CONTENDER_ML_LHS_H_

#include <vector>

#include "util/random.h"
#include "util/statusor.h"

namespace contender {

/// One concurrent mix: the template index for each of the k slots.
using MixSelection = std::vector<int>;

/// Produces the n mixes of one LHS run over `num_templates` templates at
/// MPL `mpl`. Requires num_templates > 0 and mpl > 0.
StatusOr<std::vector<MixSelection>> LatinHypercubeSample(int num_templates,
                                                         int mpl, Rng* rng);

/// Runs `runs` disjoint-seeded LHS rounds and concatenates their mixes
/// (the paper evaluates four LHS runs per MPL for MPL 3–5).
StatusOr<std::vector<MixSelection>> LatinHypercubeRuns(int num_templates,
                                                       int mpl, int runs,
                                                       Rng* rng);

/// All n-choose-2-with-replacement pairs (i <= j), as used at MPL 2.
std::vector<MixSelection> AllPairs(int num_templates);

/// Number of distinct mixes with replacement: C(n + k - 1, k) (paper §2).
/// Saturates at the maximum uint64_t on overflow.
uint64_t DistinctMixCount(int num_templates, int mpl);

}  // namespace contender

#endif  // CONTENDER_ML_LHS_H_

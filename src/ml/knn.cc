#include "ml/knn.h"

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <numeric>
#include <utility>

namespace contender {

StatusOr<KnnRegressor> KnnRegressor::Fit(std::vector<Vector> features,
                                         std::vector<Vector> targets,
                                         const Options& options) {
  if (features.size() != targets.size()) {
    return Status::InvalidArgument("KnnRegressor: size mismatch");
  }
  if (features.empty()) {
    return Status::InvalidArgument("KnnRegressor: empty training set");
  }
  if (options.k <= 0) {
    return Status::InvalidArgument("KnnRegressor: k must be positive");
  }
  const size_t d = features[0].size();
  const size_t t = targets[0].size();
  for (const auto& f : features) {
    if (f.size() != d) {
      return Status::InvalidArgument("KnnRegressor: ragged features");
    }
  }
  for (const auto& y : targets) {
    if (y.size() != t) {
      return Status::InvalidArgument("KnnRegressor: ragged targets");
    }
  }

  KnnRegressor model;
  model.options_ = options;
  model.targets_ = std::move(targets);
  model.mean_.assign(d, 0.0);
  model.stddev_.assign(d, 1.0);

  if (options.normalize) {
    for (const auto& f : features) {
      for (size_t j = 0; j < d; ++j) model.mean_[j] += f[j];
    }
    for (size_t j = 0; j < d; ++j) {
      model.mean_[j] /= static_cast<double>(features.size());
    }
    Vector var(d, 0.0);
    for (const auto& f : features) {
      for (size_t j = 0; j < d; ++j) {
        const double diff = f[j] - model.mean_[j];
        var[j] += diff * diff;
      }
    }
    for (size_t j = 0; j < d; ++j) {
      const double sd =
          std::sqrt(var[j] / static_cast<double>(features.size()));
      model.stddev_[j] = sd > 1e-12 ? sd : 1.0;
    }
  }

  if (options.normalize) {
    model.features_.reserve(features.size());
    for (const auto& f : features) {
      model.features_.push_back(model.Normalize(f));
    }
  } else {
    // Normalize() is the identity here; adopt the caller's storage.
    model.features_ = std::move(features);
  }
  return model;
}

Vector KnnRegressor::Normalize(const Vector& v) const {
  if (!options_.normalize) return v;
  Vector out(v.size());
  for (size_t j = 0; j < v.size(); ++j) {
    out[j] = (v[j] - mean_[j]) / stddev_[j];
  }
  return out;
}

std::vector<size_t> KnnRegressor::Neighbors(const Vector& query) const {
  const Vector q = Normalize(query);
  std::vector<size_t> idx(features_.size());
  std::iota(idx.begin(), idx.end(), 0);
  const size_t k = std::min<size_t>(static_cast<size_t>(options_.k),
                                    features_.size());
  std::partial_sort(idx.begin(), idx.begin() + static_cast<std::ptrdiff_t>(k),
                    idx.end(),
                    [&](size_t a, size_t b) {
                      return SquaredDistance(features_[a], q) <
                             SquaredDistance(features_[b], q);
                    });
  idx.resize(k);
  return idx;
}

Vector KnnRegressor::Predict(const Vector& query) const {
  const std::vector<size_t> nn = Neighbors(query);
  Vector out(targets_[0].size(), 0.0);
  for (size_t i : nn) {
    for (size_t j = 0; j < out.size(); ++j) out[j] += targets_[i][j];
  }
  for (double& v : out) v /= static_cast<double>(nn.size());
  return out;
}

}  // namespace contender

#include "ml/lhs.h"

#include <limits>

namespace contender {

StatusOr<std::vector<MixSelection>> LatinHypercubeSample(int num_templates,
                                                         int mpl, Rng* rng) {
  if (num_templates <= 0) {
    return Status::InvalidArgument("LHS: num_templates must be positive");
  }
  if (mpl <= 0) {
    return Status::InvalidArgument("LHS: mpl must be positive");
  }
  std::vector<std::vector<int>> perms(static_cast<size_t>(mpl));
  for (auto& p : perms) p = rng->Permutation(num_templates);

  std::vector<MixSelection> mixes(static_cast<size_t>(num_templates));
  for (int i = 0; i < num_templates; ++i) {
    MixSelection mix(static_cast<size_t>(mpl));
    for (int d = 0; d < mpl; ++d) {
      mix[static_cast<size_t>(d)] =
          perms[static_cast<size_t>(d)][static_cast<size_t>(i)];
    }
    mixes[static_cast<size_t>(i)] = std::move(mix);
  }
  return mixes;
}

StatusOr<std::vector<MixSelection>> LatinHypercubeRuns(int num_templates,
                                                       int mpl, int runs,
                                                       Rng* rng) {
  std::vector<MixSelection> all;
  for (int r = 0; r < runs; ++r) {
    auto one = LatinHypercubeSample(num_templates, mpl, rng);
    if (!one.ok()) return one.status();
    all.insert(all.end(), one->begin(), one->end());
  }
  return all;
}

std::vector<MixSelection> AllPairs(int num_templates) {
  std::vector<MixSelection> pairs;
  for (int i = 0; i < num_templates; ++i) {
    for (int j = i; j < num_templates; ++j) {
      pairs.push_back({i, j});
    }
  }
  return pairs;
}

uint64_t DistinctMixCount(int num_templates, int mpl) {
  // C(n + k - 1, k) computed multiplicatively with overflow saturation.
  // Guard non-positive inputs: num_templates == 0 would otherwise make
  // numer == 0 on the first iteration and divide by zero below.
  if (num_templates <= 0 || mpl <= 0) return 0;
  const uint64_t kMax = std::numeric_limits<uint64_t>::max();
  uint64_t result = 1;
  for (int i = 1; i <= mpl; ++i) {
    const uint64_t numer = static_cast<uint64_t>(num_templates - 1 + i);
    if (result > kMax / numer) return kMax;
    result = result * numer / static_cast<uint64_t>(i);
  }
  return result;
}

}  // namespace contender
